#!/bin/sh
# Repository check: build, full test suite, and a quick solver-kernel bench
# smoke run (same entry points CI uses).  Usage: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest (hypersparse kernels) =="
RAS_LP_KERNELS=sparse dune runtest

# the same suite again with the dense-oracle triangular-solve kernels
# forced: the two modes take bit-identical pivot sequences, so every test
# must pass under either (--force because dune does not track the env var)
echo "== dune runtest (dense-oracle kernels) =="
RAS_LP_KERNELS=dense dune runtest --force

echo "== bench smoke (kernels --quick, incl. continuous-loop + large rows) =="
dune exec bench/main.exe -- --quick kernels

# the region-scale and tier-1 reactive batteries again at the full
# 10^6-server preset (the quick runtest above covers the reduced sweep and
# skips the scale-gated reactive pins); kept separate so a laptop run can
# skip them by exporting RAS_SCALE_TESTS=quick first
if [ "${RAS_SCALE_TESTS:-full}" = "full" ]; then
  echo "== region-scale sweep at 10^6 servers (RAS_SCALE_TESTS=full) =="
  RAS_SCALE_TESTS=full dune exec test/test_main.exe -- test region_scale
  echo "== tier-1 reactive battery at 10^6 servers (RAS_SCALE_TESTS=full) =="
  RAS_SCALE_TESTS=full dune exec test/test_main.exe -- test reactive
fi

echo "== check OK =="
