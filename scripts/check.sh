#!/bin/sh
# Repository check: build, full test suite, and a quick solver-kernel bench
# smoke run (same entry points CI uses).  Usage: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke (kernels --quick, incl. continuous-loop rows) =="
dune exec bench/main.exe -- --quick kernels

echo "== check OK =="
