#!/bin/sh
# Repository check: build, full test suite, and a quick solver-kernel bench
# smoke run (same entry points CI uses).  Usage: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest (hypersparse kernels) =="
RAS_LP_KERNELS=sparse dune runtest

# the same suite again with the dense-oracle triangular-solve kernels
# forced: the two modes take bit-identical pivot sequences, so every test
# must pass under either (--force because dune does not track the env var)
echo "== dune runtest (dense-oracle kernels) =="
RAS_LP_KERNELS=dense dune runtest --force

echo "== bench smoke (kernels --quick, incl. continuous-loop rows) =="
dune exec bench/main.exe -- --quick kernels

echo "== check OK =="
