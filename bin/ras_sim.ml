(* ras_sim: command-line driver for the RAS reproduction.

   Subcommands:
     region   — generate a synthetic region and print its topology/hardware mix
     solve    — one Async Solver pass over a generated scenario, with reports
     simulate — run the full system (health, hourly solves, mover, containers)
                for N days and dump the metric time series
     drill    — MSB-failure drill on a solved region *)

open Cmdliner
module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Generator = Ras_topology.Generator
module Service = Ras_workload.Service
module Failure_model = Ras_failures.Failure_model
module Unavail = Ras_failures.Unavail

(* ---------- shared args ---------- *)

let dcs =
  Arg.(value & opt int 2 & info [ "dcs" ] ~docv:"N" ~doc:"Number of datacenters.")

let msbs =
  Arg.(value & opt int 3 & info [ "msbs" ] ~docv:"N" ~doc:"MSBs per datacenter.")

let racks =
  Arg.(value & opt int 4 & info [ "racks" ] ~docv:"N" ~doc:"Racks per MSB.")

let servers =
  Arg.(value & opt int 6 & info [ "servers" ] ~docv:"N" ~doc:"Servers per rack.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let utilization =
  Arg.(
    value
    & opt float 0.45
    & info [ "utilization" ] ~docv:"FRAC" ~doc:"Target capacity utilization of the request set.")

let make_region ~dcs ~msbs ~racks ~servers ~seed =
  Generator.generate
    {
      Generator.name = "cli-region";
      num_dcs = dcs;
      msbs_per_dc = msbs;
      racks_per_msb = racks;
      servers_per_rack = servers;
      seed;
    }

let make_scenario region ~seed ~utilization =
  let rng = Ras_stats.Rng.create seed in
  Ras_workload.Request_gen.scenario rng ~region ~services:Service.default_catalog
    ~target_utilization:utilization

let reservations_of region requests =
  List.map Ras.Reservation.of_request requests
  @ Ras.Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000

(* ---------- region ---------- *)

let region_cmd =
  let run dcs msbs racks servers seed =
    let region = make_region ~dcs ~msbs ~racks ~servers ~seed in
    Format.printf "%a@." Region.pp_summary region;
    for m = 0 to region.Region.num_msbs - 1 do
      let mix = Region.hw_mix_of_msb region m in
      Format.printf "MSB %2d (DC%d): %s@." m region.Region.msb_dc.(m)
        (String.concat ", "
           (List.map
              (fun (hw, c) -> Printf.sprintf "%s x%d" hw.Ras_topology.Hardware.code c)
              mix))
    done
  in
  Cmd.v
    (Cmd.info "region" ~doc:"Generate a synthetic region and print its hardware layout.")
    Term.(const run $ dcs $ msbs $ racks $ servers $ seed)

(* ---------- solve ---------- *)

let solve_cmd =
  let nodes =
    Arg.(value & opt int 300 & info [ "nodes" ] ~docv:"N" ~doc:"Branch-and-bound node limit (0 = heuristic only).")
  in
  let time_limit =
    Arg.(value & opt float 10.0 & info [ "time-limit" ] ~docv:"SEC" ~doc:"MIP time limit per phase.")
  in
  let decompose =
    Arg.(
      value & opt int 0
      & info [ "decompose" ] ~docv:"K"
          ~doc:"Solve phase 1 POP-decomposed into K concurrent partitions (0 = monolithic).")
  in
  let run dcs msbs racks servers seed utilization nodes time_limit decompose =
    let region = make_region ~dcs ~msbs ~racks ~servers ~seed in
    let broker = Broker.create region in
    let requests = make_scenario region ~seed:(seed + 10) ~utilization in
    Printf.printf "scenario: %d capacity requests\n" (List.length requests);
    let reservations = reservations_of region requests in
    let params =
      {
        Ras.Async_solver.default_params with
        Ras.Async_solver.node_limit = nodes;
        phase1_time_limit_s = time_limit;
        phase2_time_limit_s = time_limit /. 2.0;
        decompose = (if decompose > 1 then Some decompose else None);
      }
    in
    let snapshot = Ras.Snapshot.take broker reservations in
    let stats = Ras.Async_solver.solve ~params snapshot in
    print_string (Ras.Explain.solve_report stats);
    (match Ras.Explain.shadow_prices ~top:5 stats.Ras.Async_solver.phase1 with
    | [] -> ()
    | prices ->
      print_endline "most binding constraints (root-LP shadow prices):";
      List.iter (fun (name, p) -> Printf.printf "  %-24s %.1f per unit\n" name p) prices);
    let mover = Ras.Online_mover.create broker in
    Ras.Online_mover.set_reservations mover reservations;
    ignore (Ras.Online_mover.apply_plan mover stats.Ras.Async_solver.plan);
    let snapshot = Ras.Snapshot.take broker reservations in
    List.iter
      (fun res ->
        if not (Ras.Reservation.is_buffer res) then
          print_string (Ras.Explain.reservation_report snapshot res))
      reservations;
    List.iter
      (fun (rid, short) ->
        match List.find_opt (fun r -> r.Ras.Reservation.id = rid) reservations with
        | Some res -> print_endline (Ras.Explain.shortfall_reason snapshot res ~shortfall:short)
        | None -> ())
      stats.Ras.Async_solver.shortfalls
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run one Async Solver pass and explain the result.")
    Term.(
      const run $ dcs $ msbs $ racks $ servers $ seed $ utilization $ nodes $ time_limit
      $ decompose)

(* ---------- simulate ---------- *)

let simulate_cmd =
  let days =
    Arg.(value & opt float 2.0 & info [ "days" ] ~docv:"DAYS" ~doc:"Simulated days of region time.")
  in
  let failures =
    Arg.(value & flag & info [ "failures" ] ~doc:"Inject the stochastic failure schedule.")
  in
  let run dcs msbs racks servers seed utilization days failures =
    let region = make_region ~dcs ~msbs ~racks ~servers ~seed in
    let broker = Broker.create region in
    let requests = make_scenario region ~seed:(seed + 10) ~utilization in
    let config =
      {
        Ras.System.default_config with
        Ras.System.solver =
          { Ras.Async_solver.default_params with Ras.Async_solver.node_limit = 0 };
      }
    in
    let sys = Ras.System.create ~config broker in
    List.iter (Ras.System.add_request sys) requests;
    if failures then begin
      let events =
        Failure_model.generate (Ras_stats.Rng.create (seed + 20)) region
          Failure_model.default_params ~horizon_days:days
      in
      Printf.printf "installing %d failure events\n%!" (List.length events);
      Ras.System.install_failures sys events
    end;
    Ras.System.start sys;
    let t0 = Unix.gettimeofday () in
    Ras.System.run sys ~until_h:(days *. 24.0);
    Printf.printf "simulated %.1f days in %.1fs wall clock (%d solves)\n\n" days
      (Unix.gettimeofday () -. t0)
      (List.length (Ras.System.solve_history sys));
    Format.printf "%a@." Ras_sim.Metrics.pp (Ras.System.metrics sys);
    Printf.printf "failure replacements: %d done, %d failed\n"
      (Ras.Online_mover.replacements_done (Ras.System.mover sys))
      (Ras.Online_mover.replacements_failed (Ras.System.mover sys))
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the full RAS system under simulated region time.")
    Term.(const run $ dcs $ msbs $ racks $ servers $ seed $ utilization $ days $ failures)

(* ---------- drill ---------- *)

let drill_cmd =
  let msb = Arg.(value & opt int 0 & info [ "kill-msb" ] ~docv:"MSB" ~doc:"MSB index to fail.") in
  let run dcs msbs racks servers seed utilization msb =
    let region = make_region ~dcs ~msbs ~racks ~servers ~seed in
    let broker = Broker.create region in
    let requests = make_scenario region ~seed:(seed + 10) ~utilization in
    let reservations = reservations_of region requests in
    let mover = Ras.Online_mover.create broker in
    Ras.Online_mover.set_reservations mover reservations;
    let stats = Ras.Async_solver.solve (Ras.Snapshot.take broker reservations) in
    ignore (Ras.Online_mover.apply_plan mover stats.Ras.Async_solver.plan);
    let short = List.map fst stats.Ras.Async_solver.shortfalls in
    Printf.printf "killing MSB %d (%d servers)\n" msb
      (List.length (Region.servers_of_msb region msb));
    List.iter
      (fun (s : Region.server) -> Broker.mark_down broker s.Region.id Unavail.Correlated)
      (Region.servers_of_msb region msb);
    let snapshot = Ras.Snapshot.take broker reservations in
    List.iter
      (fun res ->
        if (not (Ras.Reservation.is_buffer res)) && not (List.mem res.Ras.Reservation.id short)
        then begin
          let left = Ras.Snapshot.current_rru snapshot res in
          Printf.printf "%-24s %.1f/%.1f RRU surviving  %s\n" res.Ras.Reservation.name left
            res.Ras.Reservation.capacity_rru
            (if left >= res.Ras.Reservation.capacity_rru -. 1e-6 then "OK"
             else if res.Ras.Reservation.embedded_buffer then "** GUARANTEE BROKEN **"
             else "(no embedded buffer requested)")
        end)
      reservations
  in
  Cmd.v
    (Cmd.info "drill" ~doc:"Fail a whole MSB and audit every reservation's guarantee.")
    Term.(const run $ dcs $ msbs $ racks $ servers $ seed $ utilization $ msb)

(* ---------- submit (portal admission) ---------- *)

let submit_cmd =
  let rru =
    Arg.(value & opt float 20.0 & info [ "rru" ] ~docv:"RRU" ~doc:"Requested capacity in RRUs.")
  in
  let profile =
    Arg.(
      value
      & opt string "web"
      & info [ "profile" ] ~docv:"NAME"
          ~doc:"Service profile: web, feed, datastore, cache, ml, presto, video, generic.")
  in
  let min_gen =
    Arg.(value & opt int 1 & info [ "min-gen" ] ~docv:"G" ~doc:"Oldest acceptable CPU generation.")
  in
  let run dcs msbs racks servers seed utilization rru profile min_gen =
    let region = make_region ~dcs ~msbs ~racks ~servers ~seed in
    let broker = Broker.create region in
    (* pre-commit the scenario's requests so admission sees a loaded region *)
    let existing = make_scenario region ~seed:(seed + 10) ~utilization in
    let portal = Ras.Portal.create () in
    let snapshot = Ras.Snapshot.take broker [] in
    List.iter (fun r -> ignore (Ras.Portal.submit portal snapshot r)) existing;
    let p =
      match profile with
      | "web" -> Service.Web
      | "feed" -> Service.Feed1
      | "datastore" -> Service.Data_store
      | "cache" -> Service.Cache
      | "ml" -> Service.Ml_training
      | "presto" -> Service.Presto_batch
      | "video" -> Service.Video_encoding
      | _ -> Service.Generic
    in
    let service =
      Service.make ~id:500 ~name:(Printf.sprintf "%s-cli" profile) ~profile:p
        ~min_generation:min_gen ()
    in
    let req = Ras_workload.Capacity_request.make ~id:500 ~service ~rru () in
    Printf.printf "region holds %d accepted requests; submitting %s for %.1f RRU...\n"
      (List.length (Ras.Portal.requests portal))
      service.Service.name rru;
    match Ras.Portal.submit portal snapshot req with
    | Ras.Portal.Accepted -> print_endline "ACCEPTED: the next solve will materialize it"
    | Ras.Portal.Rejected reason -> Printf.printf "REJECTED: %s\n" reason
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"Validate a capacity request through the portal (paragraph 5.3).")
    Term.(const run $ dcs $ msbs $ racks $ servers $ seed $ utilization $ rru $ profile $ min_gen)

let () =
  let doc = "RAS reproduction: region-wide datacenter resource allocation" in
  let info = Cmd.info "ras_sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ region_cmd; solve_cmd; simulate_cmd; drill_cmd; submit_cmd ]))
