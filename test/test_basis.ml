(* Numerical-stability tests for the factorized basis (Ras_mip.Basis):
   FTRAN/BTRAN round trips through the LU factors and the eta file,
   refactorization policy triggers, rejection of near-singular pivots, and
   Dense-vs-Lu backend agreement on random matrices. *)

open Ras_mip
module R = Ras_stats.Rng

(* A random diagonally dominant m×m matrix in column-callback form (the shape
   Basis.refactorize consumes): well-conditioned by construction, sparse off
   the diagonal. *)
let random_matrix rng m =
  let cols = Array.make m [] in
  for j = 0 to m - 1 do
    let entries = ref [ (j, 4.0 +. R.float rng 4.0) ] in
    let offdiag = R.int rng 4 in
    for _ = 1 to offdiag do
      let i = R.int rng m in
      if i <> j then entries := (i, R.float rng 2.0 -. 1.0) :: !entries
    done;
    (* deduplicate rows, keeping the first entry *)
    let seen = Hashtbl.create 8 in
    cols.(j) <-
      List.filter
        (fun (i, _) ->
          if Hashtbl.mem seen i then false
          else begin
            Hashtbl.add seen i ();
            true
          end)
        !entries
  done;
  cols

let col_fn cols j f = List.iter (fun (i, v) -> f i v) cols.(j)

(* b_row = sum_i A_{basis.(i)}(row) * x_i, for checking B x = b *)
let apply_matrix cols basis x m =
  let b = Array.make m 0.0 in
  Array.iteri
    (fun pos j -> List.iter (fun (i, v) -> b.(i) <- b.(i) +. (v *. x.(pos))) cols.(j))
    basis;
  b

let refactorized kind rng m =
  let cols = random_matrix rng m in
  let basis = Array.init m (fun i -> i) in
  R.shuffle rng basis;
  let t = Basis.create kind ~m in
  Basis.refactorize t ~basis ~col:(col_fn cols);
  (t, cols, basis)

let max_abs_diff a b =
  let worst = ref 0.0 in
  Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.(i)))) a;
  !worst

let test_ftran_round_trip () =
  let rng = R.create 11 in
  List.iter
    (fun m ->
      let t, cols, basis = refactorized Basis.Lu rng m in
      let b = Array.init m (fun _ -> R.float rng 10.0 -. 5.0) in
      let x = Basis.ftran_dense t (Array.copy b) in
      let back = apply_matrix cols basis x m in
      Alcotest.(check bool)
        (Printf.sprintf "B (B^-1 b) = b at m=%d (err %g)" m (max_abs_diff back b))
        true
        (max_abs_diff back b < 1e-8))
    [ 1; 2; 7; 20; 40 ]

let test_btran_round_trip () =
  let rng = R.create 12 in
  List.iter
    (fun m ->
      let t, cols, basis = refactorized Basis.Lu rng m in
      let c = Array.init m (fun _ -> R.float rng 10.0 -. 5.0) in
      let y = Basis.btran_dense t (Array.copy c) in
      (* y^T B = c^T: component i is y . A_{basis.(i)} *)
      let back =
        Array.map (fun j -> List.fold_left (fun acc (i, v) -> acc +. (y.(i) *. v)) 0.0 cols.(j)) basis
      in
      Alcotest.(check bool)
        (Printf.sprintf "(B^-T c)^T B = c at m=%d (err %g)" m (max_abs_diff back c))
        true
        (max_abs_diff back c < 1e-8))
    [ 1; 2; 7; 20; 40 ]

let test_ftran_btran_adjoint () =
  (* <c, B^-1 b> = <B^-T c, b> — exercises both solves against each other,
     including through a nonempty eta file *)
  let rng = R.create 13 in
  let m = 15 in
  let t, _, _ = refactorized Basis.Lu rng m in
  (* push a few eta updates through *)
  for k = 0 to 4 do
    let col = Array.init m (fun _ -> R.float rng 2.0 -. 1.0) in
    let alpha = Basis.ftran_dense t (Array.copy col) in
    let row = k mod m in
    if Float.abs alpha.(row) > 1e-6 then ignore (Basis.update t ~alpha ~row)
  done;
  let b = Array.init m (fun _ -> R.float rng 4.0 -. 2.0) in
  let c = Array.init m (fun _ -> R.float rng 4.0 -. 2.0) in
  let x = Basis.ftran_dense t (Array.copy b) in
  let y = Basis.btran_dense t (Array.copy c) in
  let lhs = ref 0.0 and rhs = ref 0.0 in
  for i = 0 to m - 1 do
    lhs := !lhs +. (c.(i) *. x.(i));
    rhs := !rhs +. (y.(i) *. b.(i))
  done;
  Alcotest.(check (float 1e-7)) "adjoint identity" !lhs !rhs

let test_eta_limit_triggers_refactorize () =
  let m = 6 in
  let t = Basis.create Basis.Lu ~m in
  Alcotest.(check bool) "fresh identity needs no refactor" false (Basis.should_refactorize t);
  let fired = ref (-1) in
  let k = ref 0 in
  while !fired < 0 && !k < 1000 do
    (* replace the basic column in row (k mod m) with 2*e_row: alpha = 2 e_row
       against the current factors scaled on that row, always an acceptable
       pivot *)
    let row = !k mod m in
    let alpha = Basis.ftran_unit t row in
    Array.iteri (fun i v -> alpha.(i) <- 2.0 *. v) alpha;
    Alcotest.(check bool) "update accepted" true (Basis.update t ~alpha ~row);
    incr k;
    if Basis.should_refactorize t then fired := !k
  done;
  Alcotest.(check bool)
    (Printf.sprintf "eta budget fires (after %d updates)" !fired)
    true
    (!fired > 0 && !fired <= 64);
  Alcotest.(check int) "update counter matches" !fired (Basis.updates_since_refactor t);
  Alcotest.(check bool) "eta file is nonempty" true (Basis.eta_nnz t > 0)

let test_near_singular_pivot_refused () =
  let rng = R.create 14 in
  let m = 10 in
  let t, _, _ = refactorized Basis.Lu rng m in
  let before_updates = Basis.updates_since_refactor t in
  let probe = Array.init m (fun _ -> R.float rng 2.0 -. 1.0) in
  let x_before = Basis.ftran_dense t (Array.copy probe) in
  (* absolute test: pivot element ~1e-12 *)
  let alpha = Array.make m 0.1 in
  alpha.(3) <- 1e-12;
  Alcotest.(check bool) "tiny pivot refused" false (Basis.update t ~alpha ~row:3);
  (* relative test: pivot 1.0 dwarfed by a 1e9 entry elsewhere *)
  let alpha = Array.make m 0.0 in
  alpha.(3) <- 1.0;
  alpha.(7) <- 1e9;
  Alcotest.(check bool) "relatively tiny pivot refused" false (Basis.update t ~alpha ~row:3);
  (* the refused updates left the factorization untouched *)
  Alcotest.(check int) "no update recorded" before_updates (Basis.updates_since_refactor t);
  let x_after = Basis.ftran_dense t (Array.copy probe) in
  Alcotest.(check bool) "solves unchanged" true (max_abs_diff x_before x_after = 0.0)

let test_singular_matrix_raises () =
  let m = 4 in
  let cols = Array.make m [ (0, 1.0); (1, 1.0) ] in
  (* every column identical: rank 1 *)
  let basis = Array.init m (fun i -> i) in
  let t = Basis.create Basis.Lu ~m in
  (match Basis.refactorize t ~basis ~col:(col_fn cols) with
  | () -> Alcotest.fail "singular matrix must raise"
  | exception Basis.Singular -> ());
  (* the failed refactorization left the identity factors usable *)
  let x = Basis.ftran_dense t [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check bool) "state survives" true (max_abs_diff x [| 1.0; 2.0; 3.0; 4.0 |] < 1e-12)

let test_dense_lu_agree () =
  let rng = R.create 15 in
  for _ = 1 to 20 do
    let m = 1 + R.int rng 25 in
    let cols = random_matrix rng m in
    let basis = Array.init m (fun i -> i) in
    R.shuffle rng basis;
    let lu = Basis.create Basis.Lu ~m in
    let dn = Basis.create Basis.Dense ~m in
    Basis.refactorize lu ~basis ~col:(col_fn cols);
    Basis.refactorize dn ~basis ~col:(col_fn cols);
    let b = Array.init m (fun _ -> R.float rng 10.0 -. 5.0) in
    let xl = Basis.ftran_dense lu (Array.copy b) in
    let xd = Basis.ftran_dense dn (Array.copy b) in
    Alcotest.(check bool)
      (Printf.sprintf "ftran agrees at m=%d (err %g)" m (max_abs_diff xl xd))
      true
      (max_abs_diff xl xd < 1e-8);
    let yl = Basis.btran_dense lu (Array.copy b) in
    let yd = Basis.btran_dense dn (Array.copy b) in
    Alcotest.(check bool)
      (Printf.sprintf "btran agrees at m=%d (err %g)" m (max_abs_diff yl yd))
      true
      (max_abs_diff yl yd < 1e-8)
  done

let test_copy_is_independent () =
  let rng = R.create 16 in
  let m = 8 in
  let t, _, _ = refactorized Basis.Lu rng m in
  let probe = Array.init m (fun _ -> R.float rng 2.0 -. 1.0) in
  let x_before = Basis.ftran_dense t (Array.copy probe) in
  let snap = Basis.copy t in
  (* mutate the copy with an eta update *)
  let alpha = Basis.ftran_unit snap 2 in
  Array.iteri (fun i v -> alpha.(i) <- 3.0 *. v) alpha;
  Alcotest.(check bool) "update on copy ok" true (Basis.update snap ~alpha ~row:2);
  (* the original is untouched *)
  Alcotest.(check int) "original update count" 0 (Basis.updates_since_refactor t);
  let x_after = Basis.ftran_dense t (Array.copy probe) in
  Alcotest.(check bool) "original solves unchanged" true (max_abs_diff x_before x_after = 0.0)

let suite =
  [
    Alcotest.test_case "ftran round trip" `Quick test_ftran_round_trip;
    Alcotest.test_case "btran round trip" `Quick test_btran_round_trip;
    Alcotest.test_case "ftran/btran adjoint identity" `Quick test_ftran_btran_adjoint;
    Alcotest.test_case "eta budget triggers refactorization" `Quick
      test_eta_limit_triggers_refactorize;
    Alcotest.test_case "near-singular pivot refused" `Quick test_near_singular_pivot_refused;
    Alcotest.test_case "singular matrix raises" `Quick test_singular_matrix_raises;
    Alcotest.test_case "dense and LU backends agree" `Quick test_dense_lu_agree;
    Alcotest.test_case "copy is independent" `Quick test_copy_is_independent;
  ]
