(* Tests for ras_mip: the modeling layer, the bounded-variable simplex and
   branch-and-bound, including a brute-force cross-check on random integer
   programs. *)

open Ras_mip

let feasible std x =
  match Model.check_solution std x with Ok () -> true | Error _ -> false

(* ---------- Lin_expr ---------- *)

let test_lin_expr_combine () =
  let e = Lin_expr.of_terms [ (1.0, 0); (2.0, 1); (3.0, 0) ] in
  Alcotest.(check (float 1e-9)) "combined coef" 4.0 (Lin_expr.coef e 0);
  Alcotest.(check (float 1e-9)) "other coef" 2.0 (Lin_expr.coef e 1);
  Alcotest.(check int) "terms" 2 (Lin_expr.num_terms e)

let test_lin_expr_cancel () =
  let e = Lin_expr.sub (Lin_expr.var 0) (Lin_expr.var 0) in
  Alcotest.(check int) "cancels" 0 (Lin_expr.num_terms e)

let test_lin_expr_eval () =
  let e = Lin_expr.of_terms ~constant:1.5 [ (2.0, 0); (-1.0, 1) ] in
  Alcotest.(check (float 1e-9)) "eval" 4.5 (Lin_expr.eval e (fun v -> if v = 0 then 2.0 else 1.0))

let test_lin_expr_scale () =
  let e = Lin_expr.scale 2.0 (Lin_expr.of_terms ~constant:1.0 [ (3.0, 0) ]) in
  Alcotest.(check (float 1e-9)) "scaled coef" 6.0 (Lin_expr.coef e 0);
  Alcotest.(check (float 1e-9)) "scaled const" 2.0 (Lin_expr.get_constant e)

(* ---------- Model ---------- *)

let test_model_bounds_validation () =
  let m = Model.create () in
  Alcotest.check_raises "lb > ub" (Invalid_argument "Model.add_var: lb > ub") (fun () ->
      ignore (Model.add_var ~lb:2.0 ~ub:1.0 m))

let test_model_unknown_var_in_row () =
  let m = Model.create () in
  let _ = Model.add_var m in
  let _ = Model.add_constraint m (Lin_expr.var 5) Model.Le 1.0 in
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Model.compile: row r0 references unknown variable 5") (fun () ->
      ignore (Model.compile m))

let test_model_constant_folded_into_rhs () =
  let m = Model.create () in
  let x = Model.add_var ~ub:10.0 m in
  (* x + 3 <= 5  =>  x <= 2 *)
  let _ = Model.add_constraint m (Lin_expr.of_terms ~constant:3.0 [ (1.0, x) ]) Model.Le 5.0 in
  Model.set_objective m (Lin_expr.term (-1.0) x);
  match Simplex.solve (Model.compile m) with
  | Simplex.Optimal { x = sol; _ } -> Alcotest.(check (float 1e-6)) "x = 2" 2.0 sol.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_check_solution_detects_violations () =
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 ~kind:Model.Integer m in
  let _ = Model.add_constraint m (Lin_expr.var x) Model.Le 0.5 in
  let std = Model.compile m in
  Alcotest.(check bool) "bound violation" false (feasible std [| 2.0 |]);
  Alcotest.(check bool) "integrality violation" false (feasible std [| 0.4 |]);
  Alcotest.(check bool) "row violation" false (feasible std [| 1.0 |]);
  Alcotest.(check bool) "ok" true (feasible std [| 0.0 |])

let test_pos_part_helper () =
  let m = Model.create () in
  let x = Model.add_var ~ub:10.0 m in
  let _ = Model.add_constraint m (Lin_expr.var x) Model.Ge 7.0 in
  (* objective: 5 * max(0, x - 4): optimum picks x = 7, cost 15 *)
  let _ = Model.add_pos_part m ~weight:5.0 (Lin_expr.of_terms ~constant:(-4.0) [ (1.0, x) ]) in
  match Simplex.solve (Model.compile m) with
  | Simplex.Optimal { obj; _ } -> Alcotest.(check (float 1e-6)) "cost" 15.0 obj
  | _ -> Alcotest.fail "expected optimal"

let test_max_over_helper () =
  let m = Model.create () in
  let x = Model.add_var ~lb:2.0 ~ub:2.0 m in
  let y = Model.add_var ~lb:5.0 ~ub:5.0 m in
  let z = Model.add_max_over m ~weight:1.0 [ Lin_expr.var x; Lin_expr.var y ] in
  (match Simplex.solve (Model.compile m) with
  | Simplex.Optimal { x = sol; obj; _ } ->
    Alcotest.(check (float 1e-6)) "z = max" 5.0 sol.(z);
    Alcotest.(check (float 1e-6)) "obj" 5.0 obj
  | _ -> Alcotest.fail "expected optimal")

let test_pos_part_rejects_negative_weight () =
  let m = Model.create () in
  Alcotest.check_raises "negative weight" (Invalid_argument "Model.add_pos_part: negative weight")
    (fun () -> ignore (Model.add_pos_part m ~weight:(-1.0) Lin_expr.zero))

(* ---------- Simplex ---------- *)

let test_lp_basic () =
  let m = Model.create () in
  let x = Model.add_var ~ub:2.5 m in
  let y = Model.add_var ~ub:3.0 m in
  let _ = Model.add_constraint m Lin_expr.(add (var x) (var y)) Model.Le 4.0 in
  Model.set_objective m Lin_expr.(add (term (-1.0) x) (term (-1.0) y));
  match Simplex.solve (Model.compile m) with
  | Simplex.Optimal { obj; _ } -> Alcotest.(check (float 1e-6)) "max x+y = 4" (-4.0) obj
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible () =
  let m = Model.create () in
  let x = Model.add_var ~ub:2.0 m in
  let _ = Model.add_constraint m (Lin_expr.var x) Model.Ge 5.0 in
  match Simplex.solve (Model.compile m) with
  | Simplex.Infeasible _ -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_lp_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m in
  let _ = Model.add_constraint m (Lin_expr.var x) Model.Ge 1.0 in
  Model.set_objective m (Lin_expr.term (-1.0) x);
  match Simplex.solve (Model.compile m) with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_lp_equality_negative_bounds () =
  let m = Model.create () in
  let x = Model.add_var ~lb:(-1.0) ~ub:10.0 m in
  let y = Model.add_var ~ub:3.5 m in
  let _ = Model.add_constraint m Lin_expr.(add (var x) (var y)) Model.Eq 3.0 in
  Model.set_objective m (Lin_expr.var x);
  match Simplex.solve (Model.compile m) with
  | Simplex.Optimal { obj; _ } -> Alcotest.(check (float 1e-6)) "min x" (-0.5) obj
  | _ -> Alcotest.fail "expected optimal"

let test_lp_free_variable () =
  let m = Model.create () in
  let x = Model.add_var ~lb:neg_infinity m in
  let _ = Model.add_constraint m (Lin_expr.var x) Model.Ge (-7.0) in
  Model.set_objective m (Lin_expr.var x);
  match Simplex.solve (Model.compile m) with
  | Simplex.Optimal { obj; _ } -> Alcotest.(check (float 1e-6)) "min free x" (-7.0) obj
  | _ -> Alcotest.fail "expected optimal"

let test_lp_no_constraints () =
  let m = Model.create () in
  let x = Model.add_var ~lb:1.0 ~ub:4.0 m in
  let y = Model.add_var ~lb:(-2.0) ~ub:2.0 m in
  Model.set_objective m Lin_expr.(add (var x) (term (-1.0) y));
  match Simplex.solve (Model.compile m) with
  | Simplex.Optimal { obj; _ } -> Alcotest.(check (float 1e-6)) "bounds-only" (-1.0) obj
  | _ -> Alcotest.fail "expected optimal"

let test_lp_fixed_variable () =
  let m = Model.create () in
  let x = Model.add_var ~lb:3.0 ~ub:3.0 m in
  let y = Model.add_var ~ub:10.0 m in
  let _ = Model.add_constraint m Lin_expr.(add (var x) (var y)) Model.Le 8.0 in
  Model.set_objective m (Lin_expr.term (-1.0) y);
  match Simplex.solve (Model.compile m) with
  | Simplex.Optimal { x = sol; _ } ->
    Alcotest.(check (float 1e-6)) "x stays fixed" 3.0 sol.(0);
    Alcotest.(check (float 1e-6)) "y fills remainder" 5.0 sol.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_degenerate () =
  (* multiple redundant constraints at the optimum *)
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m in
  let y = Model.add_var ~ub:1.0 m in
  let _ = Model.add_constraint m Lin_expr.(add (var x) (var y)) Model.Le 1.0 in
  let _ = Model.add_constraint m (Lin_expr.var x) Model.Le 1.0 in
  let _ = Model.add_constraint m Lin_expr.(add (scale 2.0 (var x)) (scale 2.0 (var y))) Model.Le 2.0 in
  Model.set_objective m Lin_expr.(add (term (-1.0) x) (term (-1.0) y));
  match Simplex.solve (Model.compile m) with
  | Simplex.Optimal { obj; _ } -> Alcotest.(check (float 1e-6)) "degenerate opt" (-1.0) obj
  | _ -> Alcotest.fail "expected optimal"

(* ---------- Branch and bound ---------- *)

let test_mip_knapsack () =
  let m = Model.create () in
  let a = Model.add_var ~kind:Model.Integer ~ub:1.0 m in
  let b = Model.add_var ~kind:Model.Integer ~ub:1.0 m in
  let c = Model.add_var ~kind:Model.Integer ~ub:1.0 m in
  let _ =
    Model.add_constraint m (Lin_expr.of_terms [ (2.0, a); (3.0, b); (1.0, c) ]) Model.Le 5.0
  in
  Model.set_objective m (Lin_expr.of_terms [ (-5.0, a); (-4.0, b); (-3.0, c) ]);
  let out = Branch_bound.solve (Model.compile m) in
  Alcotest.(check bool) "optimal" true (out.Branch_bound.status = Branch_bound.Optimal);
  Alcotest.(check (float 1e-6)) "objective" (-9.0) out.Branch_bound.objective

let test_mip_infeasible () =
  let m = Model.create () in
  let x = Model.add_var ~kind:Model.Integer ~ub:10.0 m in
  (* 0.4 <= x <= 0.6 has no integer point *)
  let _ = Model.add_constraint m (Lin_expr.var x) Model.Ge 0.4 in
  let _ = Model.add_constraint m (Lin_expr.var x) Model.Le 0.6 in
  let out = Branch_bound.solve (Model.compile m) in
  Alcotest.(check bool) "infeasible" true (out.Branch_bound.status = Branch_bound.Infeasible)

let test_mip_respects_initial_incumbent () =
  let m = Model.create () in
  let x = Model.add_var ~kind:Model.Integer ~ub:5.0 m in
  let _ = Model.add_constraint m (Lin_expr.var x) Model.Ge 1.0 in
  Model.set_objective m (Lin_expr.var x);
  let std = Model.compile m in
  let options =
    { Branch_bound.default_options with Branch_bound.node_limit = 0; initial = Some [| 3.0 |] }
  in
  let out = Branch_bound.solve ~options std in
  Alcotest.(check (float 1e-6)) "incumbent used" 3.0 out.Branch_bound.objective

let test_mip_invalid_initial_ignored () =
  let m = Model.create () in
  let x = Model.add_var ~kind:Model.Integer ~ub:5.0 m in
  let _ = Model.add_constraint m (Lin_expr.var x) Model.Ge 1.0 in
  Model.set_objective m (Lin_expr.var x);
  let std = Model.compile m in
  let options =
    { Branch_bound.default_options with Branch_bound.initial = Some [| -1.0 |] }
  in
  let out = Branch_bound.solve ~options std in
  Alcotest.(check (float 1e-6)) "solves anyway" 1.0 out.Branch_bound.objective

let test_mip_gap_reported () =
  let m = Model.create () in
  let x = Model.add_var ~kind:Model.Integer ~ub:9.0 m in
  let y = Model.add_var ~kind:Model.Integer ~ub:9.0 m in
  let _ = Model.add_constraint m Lin_expr.(add (scale 2.0 (var x)) (scale 2.0 (var y))) Model.Ge 3.0 in
  Model.set_objective m Lin_expr.(add (var x) (var y));
  let out = Branch_bound.solve (Model.compile m) in
  Alcotest.(check bool) "gap closed at optimum" true (out.Branch_bound.gap < 1e-6);
  Alcotest.(check (float 1e-6)) "objective 2 (ceil of 1.5)" 2.0 out.Branch_bound.objective

let test_mip_mixed_integer () =
  (* x integer, y continuous: min -x - 10y st x + 2y <= 4.5, y <= 1.3 *)
  let m = Model.create () in
  let x = Model.add_var ~kind:Model.Integer ~ub:10.0 m in
  let y = Model.add_var ~ub:1.3 m in
  let _ = Model.add_constraint m Lin_expr.(add (var x) (scale 2.0 (var y))) Model.Le 4.5 in
  Model.set_objective m Lin_expr.(add (term (-1.0) x) (term (-10.0) y));
  let out = Branch_bound.solve (Model.compile m) in
  (* optimum is x = 2, y = 1.25: -2 - 12.5 = -14.5 (beats y = 1.3, x = 1) *)
  Alcotest.(check (float 1e-6)) "objective" (-14.5) out.Branch_bound.objective;
  match out.Branch_bound.solution with
  | Some sol ->
    Alcotest.(check (float 1e-6)) "x integral" 2.0 sol.(0);
    Alcotest.(check (float 1e-6)) "y continuous" 1.25 sol.(1)
  | None -> Alcotest.fail "no solution"

(* ---------- LP format ---------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let test_lp_format_sections () =
  let m = Model.create () in
  let x = Model.add_var ~name:"alpha" ~kind:Model.Integer ~ub:3.0 m in
  let _ = Model.add_constraint ~name:"cap" m (Lin_expr.var x) Model.Le 2.0 in
  Model.set_objective m (Lin_expr.var x);
  let text = Lp_format.to_string (Model.compile m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true (contains text needle))
    [ "Minimize"; "Subject To"; "Bounds"; "General"; "End"; "alpha"; "cap" ]

(* ---------- LP parse round trip ---------- *)

let std_equal (a : Model.std) (b : Model.std) =
  let feq x y =
    (Float.is_finite x && Float.is_finite y && Float.abs (x -. y) <= 1e-9 *. (1.0 +. Float.abs x))
    || x = y
  in
  a.Model.nvars = b.Model.nvars
  && a.Model.nrows = b.Model.nrows
  && Array.for_all2 feq a.Model.lb b.Model.lb
  && Array.for_all2 feq a.Model.ub b.Model.ub
  && Array.for_all2 ( = ) a.Model.integer b.Model.integer
  && Array.for_all2 feq a.Model.obj b.Model.obj
  && Array.for_all2 ( = ) a.Model.row_sense b.Model.row_sense
  && Array.for_all2 feq a.Model.rhs b.Model.rhs
  && Array.for_all2
       (fun c1 c2 -> Array.to_list c1 = Array.to_list c2)
       a.Model.row_cols b.Model.row_cols
  && Array.for_all2
       (fun c1 c2 -> List.for_all2 feq (Array.to_list c1) (Array.to_list c2))
       a.Model.row_coefs b.Model.row_coefs

let test_lp_round_trip () =
  let m = Model.create () in
  let x = Model.add_var ~name:"x" ~lb:(-2.5) ~ub:7.0 ~kind:Model.Integer m in
  let y = Model.add_var ~name:"y" ~lb:neg_infinity m in
  let z = Model.add_var ~name:"z" ~lb:3.0 ~ub:3.0 m in
  let _ = Model.add_constraint ~name:"row1" m (Lin_expr.of_terms [ (2.0, x); (-1.5, y) ]) Model.Le 4.0 in
  let _ = Model.add_constraint ~name:"row2" m (Lin_expr.of_terms [ (1.0, y); (1.0, z) ]) Model.Ge (-1.0) in
  let _ = Model.add_constraint ~name:"row3" m (Lin_expr.of_terms [ (1.0, x) ]) Model.Eq 2.0 in
  Model.set_objective m (Lin_expr.of_terms [ (-1.0, x); (0.25, y) ]);
  let std = Model.compile m in
  match Lp_parse.parse (Lp_format.to_string std) with
  | Ok parsed -> Alcotest.(check bool) "round trip equal" true (std_equal std parsed)
  | Error e -> Alcotest.fail e

let test_lp_parse_rejects_garbage () =
  (match Lp_parse.parse "Minimize\n obj: 1 ghost\nBounds\nEnd\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown variable must be rejected");
  match Lp_parse.parse "Minimize\n obj: 0\nSubject To\n r: 1 x 4\nBounds\n 0 <= x <= 1\nEnd\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "row without comparison must be rejected"

let test_lp_parse_duplicate_bounds () =
  (* duplicates intersect rather than registering the variable twice *)
  (match
     Lp_parse.parse
       "Minimize\n obj: 1 x\nSubject To\n r: 1 x >= 0\nBounds\n 0 <= x <= 10\n 2 <= x <= 5\nEnd\n"
   with
  | Ok std ->
    Alcotest.(check int) "one variable" 1 std.Model.nvars;
    Alcotest.(check (float 1e-9)) "lb intersected" 2.0 std.Model.lb.(0);
    Alcotest.(check (float 1e-9)) "ub intersected" 5.0 std.Model.ub.(0)
  | Error e -> Alcotest.fail e);
  match
    Lp_parse.parse
      "Minimize\n obj: 1 x\nSubject To\n r: 1 x >= 0\nBounds\n 0 <= x <= 1\n 3 <= x <= 5\nEnd\n"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "contradictory duplicate bounds must be rejected"

let prop_lp_round_trip_preserves_optimum =
  QCheck.Test.make ~name:"LP write/parse preserves the optimum" ~count:150 QCheck.int
    (fun seed ->
      let module R = Ras_stats.Rng in
      let rng = R.create seed in
      let n = 2 + R.int rng 4 in
      let m = Model.create () in
      let vars =
        Array.init n (fun i ->
            let kind = if R.int rng 2 = 0 then Model.Integer else Model.Continuous in
            Model.add_var
              ~name:(Printf.sprintf "v%d" i)
              ~lb:(float_of_int (R.int rng 3 - 1))
              ~ub:(float_of_int (2 + R.int rng 5))
              ~kind m)
      in
      for r = 0 to R.int rng 3 do
        let e =
          Lin_expr.of_terms
            (List.init n (fun i -> (float_of_int (R.int rng 9 - 4), vars.(i))))
        in
        let sense = if R.int rng 2 = 0 then Model.Le else Model.Ge in
        ignore
          (Model.add_constraint
             ~name:(Printf.sprintf "r%d" r)
             m e sense
             (float_of_int (R.int rng 21 - 5)))
      done;
      Model.set_objective m
        (Lin_expr.of_terms (List.init n (fun i -> (float_of_int (R.int rng 9 - 4), vars.(i)))));
      let std = Model.compile m in
      match Lp_parse.parse (Lp_format.to_string std) with
      | Error _ -> false
      | Ok parsed ->
        let a = Branch_bound.solve std and b = Branch_bound.solve parsed in
        (match (a.Branch_bound.status, b.Branch_bound.status) with
        | Branch_bound.Optimal, Branch_bound.Optimal ->
          Float.abs (a.Branch_bound.objective -. b.Branch_bound.objective) <= 1e-6
        | sa, sb -> sa = sb))

(* ---------- MPS writer ---------- *)

let test_mps_sections () =
  let m = Model.create () in
  let x = Model.add_var ~name:"x" ~kind:Model.Integer ~ub:3.0 m in
  let y = Model.add_var ~name:"y" ~lb:(-1.0) ~ub:2.0 m in
  let z = Model.add_var ~name:"z" ~lb:5.0 ~ub:5.0 m in
  let _ = Model.add_constraint ~name:"cap" m (Lin_expr.of_terms [ (1.0, x); (2.0, y) ]) Model.Le 4.0 in
  let _ = Model.add_constraint ~name:"floor" m (Lin_expr.of_terms [ (1.0, z) ]) Model.Ge 1.0 in
  Model.set_objective m (Lin_expr.var x);
  let text = Mps_format.to_string (Model.compile m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true (contains text needle))
    [ "NAME"; "ROWS"; " L  cap"; " G  floor"; "COLUMNS"; "INTORG"; "INTEND"; "RHS";
      "BOUNDS"; " FX BND"; " UP BND"; "ENDATA" ]

(* ---------- randomized cross-check ---------- *)

let brute_force_case rng =
  let module R = Ras_stats.Rng in
  let n = 2 + R.int rng 3 in
  let m_rows = 1 + R.int rng 3 in
  let ubs = Array.init n (fun _ -> float_of_int (1 + R.int rng 3)) in
  let model = Model.create () in
  let vars = Array.init n (fun i -> Model.add_var ~kind:Model.Integer ~ub:ubs.(i) model) in
  let coef () = float_of_int (R.int rng 11 - 5) in
  let rows =
    Array.init m_rows (fun _ ->
        let cs = Array.init n (fun _ -> coef ()) in
        let sense =
          match R.int rng 3 with 0 -> Model.Le | 1 -> Model.Ge | _ -> Model.Eq
        in
        (cs, sense, float_of_int (R.int rng 15 - 5)))
  in
  Array.iter
    (fun (cs, sense, rhs) ->
      let e = Lin_expr.of_terms (List.init n (fun i -> (cs.(i), vars.(i)))) in
      ignore (Model.add_constraint model e sense rhs))
    rows;
  let obj = Array.init n (fun _ -> coef ()) in
  Model.set_objective model (Lin_expr.of_terms (List.init n (fun i -> (obj.(i), vars.(i)))));
  let std = Model.compile model in
  let best = ref infinity in
  let x = Array.make n 0 in
  let rec enum i =
    if i = n then begin
      let ok =
        Array.for_all
          (fun (cs, sense, rhs) ->
            let lhs = ref 0.0 in
            Array.iteri (fun k v -> lhs := !lhs +. (cs.(k) *. float_of_int v)) x;
            match sense with
            | Model.Le -> !lhs <= rhs +. 1e-9
            | Model.Ge -> !lhs >= rhs -. 1e-9
            | Model.Eq -> Float.abs (!lhs -. rhs) <= 1e-9)
          rows
      in
      if ok then begin
        let v = ref 0.0 in
        Array.iteri (fun k xv -> v := !v +. (obj.(k) *. float_of_int xv)) x;
        if !v < !best then best := !v
      end
    end
    else
      for v = 0 to int_of_float ubs.(i) do
        x.(i) <- v;
        enum (i + 1)
      done
  in
  enum 0;
  let out = Branch_bound.solve std in
  match (out.Branch_bound.status, Float.is_finite !best) with
  | Branch_bound.Optimal, true ->
    Float.abs (out.Branch_bound.objective -. !best) <= 1e-6
    && (match out.Branch_bound.solution with Some sol -> feasible std sol | None -> false)
  | Branch_bound.Infeasible, false -> true
  | _, _ -> false

let prop_bb_matches_brute_force =
  QCheck.Test.make ~name:"branch-and-bound matches brute force" ~count:400 QCheck.int
    (fun seed ->
      let rng = Ras_stats.Rng.create seed in
      brute_force_case rng)

let prop_lp_no_worse_than_feasible_point =
  (* construct an LP around a known feasible point; the solver must match or
     beat that point's objective *)
  QCheck.Test.make ~name:"LP optimum dominates a known feasible point" ~count:300 QCheck.int
    (fun seed ->
      let module R = Ras_stats.Rng in
      let rng = R.create seed in
      let n = 2 + R.int rng 4 in
      let model = Model.create () in
      let vars = Array.init n (fun _ -> Model.add_var ~lb:(-10.0) ~ub:10.0 model) in
      let point = Array.init n (fun _ -> float_of_int (R.int rng 9 - 4)) in
      for _ = 1 to 1 + R.int rng 4 do
        let cs = Array.init n (fun _ -> float_of_int (R.int rng 9 - 4)) in
        let lhs = ref 0.0 in
        Array.iteri (fun i c -> lhs := !lhs +. (c *. point.(i))) cs;
        (* rhs chosen so the point is feasible *)
        let e = Lin_expr.of_terms (List.init n (fun i -> (cs.(i), vars.(i)))) in
        ignore (Model.add_constraint model e Model.Le (!lhs +. float_of_int (R.int rng 3)))
      done;
      let obj = Array.init n (fun _ -> float_of_int (R.int rng 9 - 4)) in
      Model.set_objective model (Lin_expr.of_terms (List.init n (fun i -> (obj.(i), vars.(i)))));
      let point_obj = ref 0.0 in
      Array.iteri (fun i c -> point_obj := !point_obj +. (c *. point.(i))) obj;
      match Simplex.solve (Model.compile model) with
      | Simplex.Optimal { obj = solved; x; _ } ->
        solved <= !point_obj +. 1e-6 && feasible (Model.compile model) x
      | Simplex.Unbounded -> true
      | Simplex.Infeasible _ | Simplex.Iteration_limit _ -> false)

(* ---------- Golden regression corpus (test/fixtures/*.lp) ----------

   Small hand-written instances covering the solver's awkward corners
   (degeneracy, dual degeneracy, free and fixed variables, infeasibility,
   unboundedness) with hand-computed expected results.  Each fixture runs on
   both basis backends, so a factorization regression is caught by a fixed
   instance and not only by the random differential harness. *)

type golden_expect =
  | Lp_opt of float  (* LP relaxation optimum *)
  | Lp_infeas
  | Lp_unbounded
  | Mip_opt of float  (* branch-and-bound optimum *)
  | Mip_infeas

let golden_fixtures =
  [
    ("basic.lp", Lp_opt (-5.0));
    (* x is bounded twice ([0,10] then [2,5]); the declarations intersect
       and x keeps a single variable index (the duplicate used to skew every
       later index and trip an assert) *)
    ("dup_bound.lp", Lp_opt 4.0);
    ("beale.lp", Lp_opt (-0.05));
    ("kuhn_cycle.lp", Lp_opt (-2.0));
    ("degenerate.lp", Lp_opt (-2.0));
    ("dual_degenerate.lp", Lp_opt (-3.0));
    ("free_var.lp", Lp_opt (-3.0));
    ("infeasible.lp", Lp_infeas);
    ("unbounded.lp", Lp_unbounded);
    ("equality.lp", Lp_opt 4.0);
    ("negative_bounds.lp", Lp_opt (-5.0));
    ("fixed_var.lp", Lp_opt 4.0);
    ("mip_knapsack.lp", Mip_opt (-9.0));
    ("mip_infeasible.lp", Mip_infeas);
    (* 3-class symmetry-aggregated RAS allocation (see the fixture header):
       the LP relaxation covers r1's last RRU with half a c2 server (0.75);
       branch-and-bound must round it up to a whole one (0.8) *)
    ("region_scale_small.lp", Mip_opt 0.8);
    (* x1 = x2 = 1, x3 = 0.5 basic; tightening x3's upper bound to 0 turns
       the dual re-optimization into two bound flips plus one pivot — the
       warm-restart side lives in test_sparse_kernels.ml *)
    ("bound_flip.lp", Lp_opt (-10.5));
    (* d appears in every row, so its FTRAN reach is the whole factor
       pattern: the hypersparse traversal must fall back to the full scan
       and still agree with the oracle (d = 4 caps every row, x_i = 0) *)
    ("dense_col.lp", Lp_opt (-80.0));
  ]

let load_fixture name =
  match Lp_parse.parse_file (Filename.concat "fixtures" name) with
  | Ok std -> std
  | Error msg -> Alcotest.failf "%s: parse error: %s" name msg

let check_golden ?pricing backend (name, expect) =
  let std = load_fixture name in
  match expect with
  | Lp_opt want -> (
    match Simplex.solve ?pricing ~backend std with
    | Simplex.Optimal { obj; x; _ } ->
      Alcotest.(check (float 1e-6)) (name ^ " objective") want obj;
      Alcotest.(check bool) (name ^ " solution feasible") true (feasible std x)
    | _ -> Alcotest.failf "%s: expected optimal" name)
  | Lp_infeas -> (
    match Simplex.solve ?pricing ~backend std with
    | Simplex.Infeasible _ -> ()
    | _ -> Alcotest.failf "%s: expected infeasible" name)
  | Lp_unbounded -> (
    match Simplex.solve ?pricing ~backend std with
    | Simplex.Unbounded -> ()
    | _ -> Alcotest.failf "%s: expected unbounded" name)
  | Mip_opt want -> (
    let options = { Branch_bound.default_options with Branch_bound.lp_backend = backend } in
    match Branch_bound.solve ~options std with
    | { Branch_bound.status = Branch_bound.Optimal; objective; _ } ->
      Alcotest.(check (float 1e-6)) (name ^ " objective") want objective
    | o -> Alcotest.failf "%s: expected MIP optimal, got some other status (bound %g)" name
             o.Branch_bound.best_bound)
  | Mip_infeas -> (
    let options = { Branch_bound.default_options with Branch_bound.lp_backend = backend } in
    match Branch_bound.solve ~options std with
    | { Branch_bound.status = Branch_bound.Infeasible; _ } -> ()
    | _ -> Alcotest.failf "%s: expected MIP infeasible" name)

let test_golden_lu () = List.iter (check_golden Basis.Lu) golden_fixtures
let test_golden_dense () = List.iter (check_golden Basis.Dense) golden_fixtures

let test_golden_pricing_rules () =
  (* the whole corpus again under each explicit pricing rule: a pricing
     regression must be caught by a fixed instance, not only by the random
     differential harness *)
  List.iter
    (fun pricing -> List.iter (check_golden ~pricing Basis.Lu) golden_fixtures)
    [ Simplex.Dantzig; Simplex.Partial; Simplex.Devex ]

(* ---------- Cycling-prone fixtures and the Bland fallback ----------

   Beale's and Kuhn's examples cycle under naive most-negative-reduced-cost
   pricing; the solver must terminate with the right optimum under every
   pricing rule on both backends, and the Bland anti-cycling fallback must
   demonstrably engage when the degenerate-pivot budget is exhausted. *)

let cycling_fixtures = [ ("beale.lp", -0.05); ("kuhn_cycle.lp", -2.0) ]

let test_cycling_terminates_all_rules () =
  List.iter
    (fun (name, want) ->
      let std = load_fixture name in
      List.iter
        (fun pricing ->
          List.iter
            (fun backend ->
              match Simplex.solve ~pricing ~backend std with
              | Simplex.Optimal { obj; x; _ } ->
                Alcotest.(check (float 1e-6)) (name ^ " objective") want obj;
                Alcotest.(check bool) (name ^ " solution feasible") true (feasible std x)
              | _ -> Alcotest.failf "%s: expected optimal" name)
            [ Basis.Lu; Basis.Dense ])
        [ Simplex.Dantzig; Simplex.Partial; Simplex.Devex ])
    cycling_fixtures

let test_bland_fallback_triggers () =
  (* both fixtures start degenerate at the origin, so with a zero
     degenerate-pivot budget the very first degenerate pivot flips the
     solve into Bland mode — observable through [bland_iterations] — and
     the answer must not change *)
  let hits = ref 0 in
  List.iter
    (fun (name, want) ->
      let std = load_fixture name in
      List.iter
        (fun pricing ->
          match Simplex.solve ~pricing ~degen_limit:0 std with
          | Simplex.Optimal { obj; bland_iterations; _ } ->
            Alcotest.(check (float 1e-6)) (name ^ " objective under bland") want obj;
            if bland_iterations > 0 then incr hits
          | _ -> Alcotest.failf "%s: expected optimal under degen_limit:0" name)
        [ Simplex.Dantzig; Simplex.Partial; Simplex.Devex ])
    cycling_fixtures;
  Alcotest.(check bool)
    (Printf.sprintf "bland fallback engaged (%d solves)" !hits)
    true (!hits > 0)

let test_golden_corpus_complete () =
  (* every committed fixture must appear in the expectation table *)
  let on_disk =
    Sys.readdir "fixtures"
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".lp")
    |> List.sort compare
  in
  let listed = List.map fst golden_fixtures |> List.sort compare in
  Alcotest.(check (list string)) "fixtures all have expectations" on_disk listed

let suite =
  [
    Alcotest.test_case "lin_expr combines duplicates" `Quick test_lin_expr_combine;
    Alcotest.test_case "lin_expr cancellation" `Quick test_lin_expr_cancel;
    Alcotest.test_case "lin_expr eval" `Quick test_lin_expr_eval;
    Alcotest.test_case "lin_expr scale" `Quick test_lin_expr_scale;
    Alcotest.test_case "model bounds validation" `Quick test_model_bounds_validation;
    Alcotest.test_case "model unknown var" `Quick test_model_unknown_var_in_row;
    Alcotest.test_case "model folds expr constant" `Quick test_model_constant_folded_into_rhs;
    Alcotest.test_case "check_solution" `Quick test_check_solution_detects_violations;
    Alcotest.test_case "pos_part helper" `Quick test_pos_part_helper;
    Alcotest.test_case "max_over helper" `Quick test_max_over_helper;
    Alcotest.test_case "pos_part weight check" `Quick test_pos_part_rejects_negative_weight;
    Alcotest.test_case "lp basic" `Quick test_lp_basic;
    Alcotest.test_case "lp infeasible" `Quick test_lp_infeasible;
    Alcotest.test_case "lp unbounded" `Quick test_lp_unbounded;
    Alcotest.test_case "lp equality + negative bounds" `Quick test_lp_equality_negative_bounds;
    Alcotest.test_case "lp free variable" `Quick test_lp_free_variable;
    Alcotest.test_case "lp bounds only" `Quick test_lp_no_constraints;
    Alcotest.test_case "lp fixed variable" `Quick test_lp_fixed_variable;
    Alcotest.test_case "lp degenerate" `Quick test_lp_degenerate;
    Alcotest.test_case "mip knapsack" `Quick test_mip_knapsack;
    Alcotest.test_case "mip infeasible window" `Quick test_mip_infeasible;
    Alcotest.test_case "mip initial incumbent" `Quick test_mip_respects_initial_incumbent;
    Alcotest.test_case "mip invalid initial ignored" `Quick test_mip_invalid_initial_ignored;
    Alcotest.test_case "mip gap and rounding" `Quick test_mip_gap_reported;
    Alcotest.test_case "mip mixed integer" `Quick test_mip_mixed_integer;
    Alcotest.test_case "lp format sections" `Quick test_lp_format_sections;
    Alcotest.test_case "mps sections" `Quick test_mps_sections;
    Alcotest.test_case "lp parse round trip" `Quick test_lp_round_trip;
    Alcotest.test_case "lp parse rejects garbage" `Quick test_lp_parse_rejects_garbage;
    Alcotest.test_case "lp parse duplicate bounds" `Quick test_lp_parse_duplicate_bounds;
    Alcotest.test_case "golden corpus (LU backend)" `Quick test_golden_lu;
    Alcotest.test_case "golden corpus (dense backend)" `Quick test_golden_dense;
    Alcotest.test_case "golden corpus covers all fixtures" `Quick test_golden_corpus_complete;
    Alcotest.test_case "golden corpus under all pricing rules" `Quick
      test_golden_pricing_rules;
    Alcotest.test_case "cycling fixtures terminate under all rules" `Quick
      test_cycling_terminates_all_rules;
    Alcotest.test_case "bland anti-cycling fallback triggers" `Quick
      test_bland_fallback_triggers;
    QCheck_alcotest.to_alcotest prop_lp_round_trip_preserves_optimum;
    QCheck_alcotest.to_alcotest prop_bb_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_lp_no_worse_than_feasible_point;
  ]
