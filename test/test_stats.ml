(* Tests for ras_stats: deterministic RNG, distributions, summaries and time
   series. *)

open Ras_stats

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let c1 = Rng.bits64 child and p1 = Rng.bits64 parent in
  Alcotest.(check bool) "child differs from parent" true (c1 <> p1)

let test_rng_copy () =
  let a = Rng.create 3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 6 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_shuffle_permutation () =
  let rng = Rng.create 8 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

let test_exponential_mean () =
  let rng = Rng.create 9 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Dist.exponential rng ~rate:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 1/rate" true (Float.abs (mean -. 0.5) < 0.02)

let test_normal_moments () =
  let rng = Rng.create 10 in
  let n = 20_000 in
  let s = Summary.create () in
  for _ = 1 to n do
    Summary.add s (Dist.normal rng ~mean:3.0 ~stddev:2.0)
  done;
  Alcotest.(check bool) "mean near 3" true (Float.abs (Summary.mean s -. 3.0) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (Float.abs (Summary.stddev s -. 2.0) < 0.1)

let test_categorical_respects_zeros () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let i = Dist.categorical rng [| 0.0; 1.0; 0.0 |] in
    Alcotest.(check int) "only index 1" 1 i
  done

let test_categorical_rejects_all_zero () =
  let rng = Rng.create 11 in
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Dist.categorical: zero total weight") (fun () ->
      ignore (Dist.categorical rng [| 0.0; 0.0 |]))

let test_zipf_rank_one_most_common () =
  let rng = Rng.create 12 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let r = Dist.zipf rng ~n:10 ~s:1.0 in
    counts.(r - 1) <- counts.(r - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 beats rank 10" true (counts.(0) > counts.(9) * 3)

let test_poisson_mean () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Dist.poisson rng ~mean:4.0
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (Float.abs (mean -. 4.0) < 0.1)

let test_summary_exact () =
  let s = Summary.create () in
  Summary.add_list s [ 1.0; 2.0; 3.0; 4.0 ];
  check_float "mean" 2.5 (Summary.mean s);
  check_float "total" 10.0 (Summary.total s);
  check_float "min" 1.0 (Summary.min_value s);
  check_float "max" 4.0 (Summary.max_value s);
  check_float "p0" 1.0 (Summary.percentile s 0.0);
  check_float "p100" 4.0 (Summary.percentile s 100.0);
  check_float "p50" 2.5 (Summary.percentile s 50.0);
  check_float "variance" 1.25 (Summary.variance s)

let test_summary_variance_large_offset () =
  (* samples clustered around 1e9: the naive E[x^2] - E[x]^2 formula loses
     all significant digits here (and could even go negative); Welford's
     update keeps the exact spread *)
  let s = Summary.create () in
  Summary.add_list s [ 1e9; 1e9 +. 1.0; 1e9 +. 2.0 ];
  check_float "mean" (1e9 +. 1.0) (Summary.mean s);
  check_float "variance" (2.0 /. 3.0) (Summary.variance s);
  check_float "stddev" (sqrt (2.0 /. 3.0)) (Summary.stddev s)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Summary.mean s));
  Alcotest.(check bool) "p50 nan" true (Float.is_nan (Summary.percentile s 50.0))

let test_summary_percentile_bounds () =
  let s = Summary.create () in
  Summary.add s 1.0;
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Summary.percentile: p outside [0, 100]") (fun () ->
      ignore (Summary.percentile s 101.0))

let test_summary_interleaved_sort () =
  (* adding after reading percentiles must keep results correct *)
  let s = Summary.create () in
  Summary.add s 5.0;
  ignore (Summary.percentile s 50.0);
  Summary.add s 1.0;
  check_float "min updates" 1.0 (Summary.min_value s)

let test_histogram () =
  let s = Summary.create () in
  Summary.add_list s [ 0.0; 0.5; 1.0; 1.5; 2.0 ];
  let h = Summary.histogram s ~bins:2 in
  Alcotest.(check int) "total count preserved" 5 (Array.fold_left ( + ) 0 h.Summary.counts)

let test_timeseries_basics () =
  let ts = Timeseries.create ~name:"t" in
  Timeseries.record ts ~time:0.0 1.0;
  Timeseries.record ts ~time:1.0 2.0;
  Timeseries.record ts ~time:1.0 3.0;
  Alcotest.(check int) "length" 3 (Timeseries.length ts);
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9)))) "last" (Some (1.0, 3.0))
    (Timeseries.last ts)

let test_timeseries_monotonic () =
  let ts = Timeseries.create ~name:"t" in
  Timeseries.record ts ~time:5.0 1.0;
  Alcotest.check_raises "backwards time" (Invalid_argument "Timeseries.record: time went backwards")
    (fun () -> Timeseries.record ts ~time:4.0 1.0)

let test_timeseries_value_at () =
  let ts = Timeseries.create ~name:"t" in
  Timeseries.record ts ~time:1.0 10.0;
  Timeseries.record ts ~time:3.0 30.0;
  Alcotest.(check (option (float 1e-9))) "before first" None (Timeseries.value_at ts 0.5);
  Alcotest.(check (option (float 1e-9))) "at first" (Some 10.0) (Timeseries.value_at ts 1.0);
  Alcotest.(check (option (float 1e-9))) "between" (Some 10.0) (Timeseries.value_at ts 2.0);
  Alcotest.(check (option (float 1e-9))) "after last" (Some 30.0) (Timeseries.value_at ts 9.0)

let test_timeseries_bucketize () =
  let ts = Timeseries.create ~name:"t" in
  List.iter (fun (t, v) -> Timeseries.record ts ~time:t v)
    [ (0.0, 1.0); (0.5, 3.0); (1.2, 5.0) ];
  let buckets = Timeseries.bucketize ts ~width:1.0 ~f:(Array.fold_left ( +. ) 0.0) in
  Alcotest.(check int) "two buckets" 2 (Array.length buckets);
  check_float "first bucket sum" 4.0 (snd buckets.(0));
  check_float "second bucket sum" 5.0 (snd buckets.(1))

let test_timeseries_window_mean () =
  let ts = Timeseries.create ~name:"t" in
  List.iter (fun (t, v) -> Timeseries.record ts ~time:t v) [ (0.0, 2.0); (1.0, 4.0); (2.0, 9.0) ];
  check_float "window [0,2)" 3.0 (Timeseries.window_mean ts ~lo:0.0 ~hi:2.0)

(* qcheck properties *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Summary.create () in
      Summary.add_list s xs;
      let p25 = Summary.percentile s 25.0
      and p50 = Summary.percentile s 50.0
      and p75 = Summary.percentile s 75.0 in
      p25 <= p50 +. 1e-9 && p50 <= p75 +. 1e-9)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Summary.create () in
      Summary.add_list s xs;
      Summary.variance s >= -1e-6)

let prop_rng_int_uniformish =
  QCheck.Test.make ~name:"Rng.int covers its range" ~count:20 QCheck.(int_range 2 20)
    (fun n ->
      let rng = Rng.create n in
      let seen = Array.make n false in
      for _ = 1 to n * 200 do
        seen.(Rng.int rng n) <- true
      done;
      Array.for_all (fun b -> b) seen)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy" `Quick test_rng_copy;
    Alcotest.test_case "rng int range" `Quick test_rng_int_range;
    Alcotest.test_case "rng int rejects non-positive" `Quick test_rng_int_rejects_nonpositive;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "categorical zeros" `Quick test_categorical_respects_zeros;
    Alcotest.test_case "categorical all-zero rejected" `Quick test_categorical_rejects_all_zero;
    Alcotest.test_case "zipf rank 1 most common" `Quick test_zipf_rank_one_most_common;
    Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
    Alcotest.test_case "summary exact values" `Quick test_summary_exact;
    Alcotest.test_case "summary variance large offset" `Quick
      test_summary_variance_large_offset;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary percentile bounds" `Quick test_summary_percentile_bounds;
    Alcotest.test_case "summary interleaved sort" `Quick test_summary_interleaved_sort;
    Alcotest.test_case "histogram count" `Quick test_histogram;
    Alcotest.test_case "timeseries basics" `Quick test_timeseries_basics;
    Alcotest.test_case "timeseries monotonic" `Quick test_timeseries_monotonic;
    Alcotest.test_case "timeseries value_at" `Quick test_timeseries_value_at;
    Alcotest.test_case "timeseries bucketize" `Quick test_timeseries_bucketize;
    Alcotest.test_case "timeseries window mean" `Quick test_timeseries_window_mean;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_variance_nonneg;
    QCheck_alcotest.to_alcotest prop_rng_int_uniformish;
  ]
