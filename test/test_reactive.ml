(* Tier-1 reactive repair battery.

   Pins, in order: the incremental availability index never drifts from a
   fresh rebuild under churn (including region growth); the columnar
   emergency grant is grant-for-grant identical to the retained full-scan
   oracle while visiting a bounded prefix of the region; the columnar
   replacement search equals the reference scan decision-for-decision on
   seeded failure storms; the reactive (price-guided) paths stay inside the
   reference's preference classes and respect the dual prices; the
   replace_failed swap leaves no double-counted capacity behind (checked
   through the Symmetry current-owner histograms); loan bookkeeping
   round-trips under double failures; and the tier-2 objective drift caused
   by tier-1 repairs is bounded against oracle-repaired state.

   RAS_SCALE_TESTS=full adds the 10^6-server pins: per-event visited
   servers/classes bounded by class structure (not region size) and
   allocation-bounded emergency grants. *)

open Ras
module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Generator = Ras_topology.Generator
module Hw = Ras_topology.Hardware
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request
module Unavail = Ras_failures.Unavail
module Rng = Ras_stats.Rng

let full_scale () = Sys.getenv_opt "RAS_SCALE_TESTS" = Some "full"

let web = Service.make ~id:1 ~name:"web" ~profile:Service.Web ()

let reservation_of_rru ~id rru =
  Reservation.of_request (Capacity_request.make ~id ~service:web ~rru ())

(* Two structurally identical worlds: the differential tests run the same
   deterministic op sequence against both and compare outcomes. *)
let fresh_broker ?(params = Generator.small_params) () =
  Broker.create (Generator.generate params)

let check_index_matches_rebuild t =
  (* a freshly built index over the same broker is the ground truth the
     incremental one must agree with, bucket-for-bucket *)
  let fresh = Reactive.create (Reactive.broker t) in
  let region = Broker.region (Reactive.broker t) in
  for msb = 0 to region.Region.num_msbs - 1 do
    for hw = 0 to Hw.count - 1 do
      List.iter
        (fun source ->
          Alcotest.(check int)
            (Printf.sprintf "bucket m%d h%d" msb hw)
            (Reactive.available_in_bucket fresh ~source ~msb ~hw)
            (Reactive.available_in_bucket t ~source ~msb ~hw))
        [ `Free; `Buffer ]
    done
  done

let test_index_tracks_churn () =
  let broker = fresh_broker () in
  let t = Reactive.create broker in
  let n = Broker.num_servers broker in
  let rng = Rng.create 42 in
  for _ = 1 to 2000 do
    let id = Rng.int rng n in
    (match Rng.int rng 6 with
    | 0 -> Broker.move broker id Broker.Shared_buffer
    | 1 -> Broker.move broker id Broker.Free
    | 2 -> Broker.move broker id (Broker.Reservation (1 + Rng.int rng 3))
    | 3 -> Broker.mark_down broker id Unavail.Unplanned_hw
    | 4 -> Broker.mark_up broker id
    | _ -> Broker.set_in_use broker id (Rng.int rng 2 = 0));
    ()
  done;
  check_index_matches_rebuild t;
  Alcotest.(check bool) "index absorbed updates" true
    ((Reactive.counters t).Reactive.index_updates > 0)

let test_index_survives_region_growth () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let t = Reactive.create broker in
  let before = Reactive.num_buckets t in
  let grown =
    Generator.extend region ~new_msbs_per_dc:1 ~racks_per_msb:2 ~servers_per_rack:2 ~seed:99
  in
  Broker.extend_region broker grown;
  Alcotest.(check bool) "bucket space grew with the region" true
    (Reactive.num_buckets t > before);
  check_index_matches_rebuild t;
  (* adopted servers arrive Free and healthy: they must be in the pools *)
  let total_free = ref 0 in
  let r = Broker.region broker in
  for msb = 0 to r.Region.num_msbs - 1 do
    for hw = 0 to Hw.count - 1 do
      total_free := !total_free + Reactive.available_in_bucket t ~source:`Free ~msb ~hw
    done
  done;
  Alcotest.(check int) "every free healthy server indexed" (Broker.count_owner broker Broker.Free)
    !total_free

(* ---------- emergency grant: columnar vs full-scan oracle ---------- *)

(* Run the same pre-grant damage on both brokers so their columns agree. *)
let seed_buffer_and_damage broker =
  let n = Broker.num_servers broker in
  let rng = Rng.create 7 in
  for _ = 1 to n / 4 do
    Broker.move broker (Rng.int rng n) Broker.Shared_buffer
  done;
  for _ = 1 to n / 10 do
    Broker.mark_down broker (Rng.int rng n) Unavail.Unplanned_sw
  done;
  for _ = 1 to n / 10 do
    Broker.set_in_use broker (Rng.int rng n) true
  done

let test_grant_matches_oracle () =
  let a = fresh_broker () and b = fresh_broker () in
  seed_buffer_and_damage a;
  seed_buffer_and_damage b;
  let res = reservation_of_rru ~id:1 6.0 in
  List.iter
    (fun allow_buffer ->
      let g = Emergency.grant a ~reservation:res ~rru:6.0 ~allow_buffer in
      let o = Emergency.grant_reference b ~reservation:res ~rru:6.0 ~allow_buffer in
      Alcotest.(check (list int))
        (Printf.sprintf "same servers (allow_buffer=%b)" allow_buffer)
        o.Emergency.servers g.Emergency.servers;
      Alcotest.(check (float 1e-9)) "same rru" o.Emergency.granted_rru g.Emergency.granted_rru;
      Alcotest.(check int) "same buffer draw" o.Emergency.took_from_buffer
        g.Emergency.took_from_buffer;
      Alcotest.(check bool) "columnar visits no more than the oracle" true
        (g.Emergency.visited <= o.Emergency.visited))
    [ false; true ]

let test_grant_terminates_early () =
  let broker = fresh_broker () in
  let res = reservation_of_rru ~id:1 2.0 in
  let n = Broker.num_servers broker in
  let alloc0 = Gc.allocated_bytes () in
  let g = Emergency.grant broker ~reservation:res ~rru:2.0 ~allow_buffer:false in
  let alloc = Gc.allocated_bytes () -. alloc0 in
  Alcotest.(check bool) "covered" true (g.Emergency.granted_rru >= 2.0);
  (* the whole free pool is acceptable compute-heavy supply, so coverage
     must come from a short prefix — not a full scan *)
  Alcotest.(check bool)
    (Printf.sprintf "early termination (visited %d of %d)" g.Emergency.visited n)
    true
    (g.Emergency.visited < n);
  (* columnar path materializes no records: allocation is O(grant), not
     O(region) — a generous fixed budget catches an O(n) record build *)
  Alcotest.(check bool)
    (Printf.sprintf "allocation bounded (%.0f bytes)" alloc)
    true (alloc < 64_000.0)

(* ---------- replacement search: columnar vs oracle on storms ---------- *)

let storm_world () =
  let broker = fresh_broker () in
  let res = reservation_of_rru ~id:1 10.0 in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover [ res ];
  (* bind some compute to the reservation, park some in the buffer *)
  let bound = ref [] in
  let count_res = ref 0 and count_buf = ref 0 in
  Broker.iter broker ~f:(fun r ->
      if res.Reservation.rru_of r.Broker.server.Region.hw > 0.0 then begin
        let id = r.Broker.server.Region.id in
        if !count_res < 10 then begin
          Broker.move broker id (Broker.Reservation 1);
          bound := id :: !bound;
          incr count_res
        end
        else if !count_buf < 6 then begin
          Broker.move broker id Broker.Shared_buffer;
          incr count_buf
        end
      end);
  (broker, res, mover, List.rev !bound)

let test_replacement_matches_oracle_on_storm () =
  let broker, res, mover, bound = storm_world () in
  let rng = Rng.create 13 in
  List.iter
    (fun victim ->
      if Broker.healthy_at broker victim then begin
        let failed_hw =
          (Broker.region broker).Region.servers.(victim).Region.hw.Hw.index
        in
        (* decision equality BEFORE the state advances... *)
        let fast = Online_mover.find_replacement mover res ~failed_hw in
        let slow = Online_mover.find_replacement_reference mover res ~failed_hw in
        Alcotest.(check (option int)) "scan equals oracle" slow fast;
        (* ...then advance it: fail the victim, let the mover repair *)
        Broker.mark_down broker victim Unavail.Unplanned_hw;
        (* occasionally sprinkle extra churn between events *)
        if Rng.int rng 2 = 0 then
          Broker.set_in_use broker (Rng.int rng (Broker.num_servers broker)) true
      end)
    bound;
  Alcotest.(check bool) "storm produced replacements" true
    (Online_mover.replacements_done mover > 0)

let test_reactive_replacement_same_class () =
  (* the reactive path may pick a different server than the scans, but only
     inside the same preference class: same subtype-match rank and same
     source kind *)
  let broker, res, mover, bound = storm_world () in
  let reactive = Reactive.create broker in
  let rmover = Online_mover.create ~reactive broker in
  Online_mover.set_reservations rmover [ res ];
  let region = Broker.region broker in
  List.iter
    (fun victim ->
      let failed_hw = region.Region.servers.(victim).Region.hw.Hw.index in
      let reference = Online_mover.find_replacement_reference mover res ~failed_hw in
      let fast = Online_mover.find_replacement rmover res ~failed_hw in
      match (reference, fast) with
      | None, None -> ()
      | Some r, Some f ->
        let cls id =
          ( region.Region.servers.(id).Region.hw.Hw.index = failed_hw,
            Broker.current_code broker id )
        in
        Alcotest.(check (pair bool int)) "same preference class" (cls r) (cls f)
      | Some _, None -> Alcotest.fail "reactive found nothing where the oracle found a server"
      | None, Some _ -> Alcotest.fail "reactive found a server the oracle could not")
    bound

let test_reactive_respects_prices () =
  let broker = fresh_broker () in
  let reactive = Reactive.create broker in
  let region = Broker.region broker in
  (* make msb 0 expensive for every subtype; everything else free *)
  let row_names =
    Array.init Hw.count (fun hw -> Printf.sprintf "supply_m0h%du0a0" hw)
  in
  let duals = Array.make Hw.count 5.0 in
  Reactive.set_prices reactive (Solver_state.price_table ~row_names ~duals ());
  let res = reservation_of_rru ~id:1 3.0 in
  let g = Reactive.grant reactive ~reservation:res ~rru:3.0 ~allow_buffer:false in
  Alcotest.(check bool) "granted" true (g.Reactive.granted_rru >= 3.0);
  List.iter
    (fun id ->
      Alcotest.(check bool) "avoided the expensive msb" true
        (region.Region.servers.(id).Region.loc.Region.msb <> 0))
    g.Reactive.servers

let test_price_table_parsing () =
  let row_names =
    [| "supply_m3h5u1a0"; "supply_m3k7h5u0a2"; "supply_m12h0u0a0"; "capacity_r42"; "spread_x" |]
  in
  let duals = [| -2.0; 3.5; 1e-15; -7.25; 9.9 |] in
  let p = Solver_state.price_table ~round:4 ~row_names ~duals () in
  (* max |dual| over the class variants of (msb 3, hw 5), rack rows folded *)
  Alcotest.(check (float 1e-9)) "class max-abs aggregate" 3.5
    (Solver_state.class_price p ~msb:3 ~hw:5);
  Alcotest.(check (float 1e-9)) "negligible dual skipped" 0.0
    (Solver_state.class_price p ~msb:12 ~hw:0);
  Alcotest.(check (float 1e-9)) "capacity dual kept signed" (-7.25)
    (Solver_state.capacity_price p 42);
  Alcotest.(check (float 1e-9)) "unknown scope prices 0" 0.0
    (Solver_state.class_price p ~msb:0 ~hw:0)

(* ---------- replace_failed swap accounting ---------- *)

let test_replace_failed_releases_dead_server () =
  let broker = fresh_broker () in
  let res = reservation_of_rru ~id:1 4.0 in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover [ res ];
  Broker.move broker 0 (Broker.Reservation 1);
  Broker.move broker 1 Broker.Shared_buffer;
  let owned_before = Broker.count_owner broker (Broker.Reservation 1) in
  Broker.mark_down broker 0 Unavail.Unplanned_hw;
  Alcotest.(check int) "one replacement" 1 (Online_mover.replacements_done mover);
  (* the swap: replacement in, dead server out to the shared buffer *)
  Alcotest.(check bool) "replacement bound" true
    ((Broker.record broker 1).Broker.current = Broker.Reservation 1);
  Alcotest.(check bool) "dead server released to the buffer" true
    ((Broker.record broker 0).Broker.current = Broker.Shared_buffer);
  Alcotest.(check bool) "target follows" true
    ((Broker.record broker 0).Broker.target = Broker.Shared_buffer);
  Alcotest.(check int) "no double-counted membership" owned_before
    (Broker.count_owner broker (Broker.Reservation 1));
  (* the accounting the solver sees: symmetry's current-owner histograms
     must attribute exactly [owned_before] servers to the reservation even
     after the failed one heals *)
  Broker.mark_up broker 0;
  let snapshot = Snapshot.take broker [ res ] in
  let symmetry = Symmetry.build snapshot in
  let counted =
    Array.fold_left
      (fun acc cls -> acc + Symmetry.current_count symmetry cls (Broker.Reservation 1))
      0 symmetry.Symmetry.classes
  in
  Alcotest.(check int) "symmetry histogram agrees" owned_before counted

let test_double_failure_loan_round_trip () =
  let broker = fresh_broker () in
  let res = reservation_of_rru ~id:1 6.0 in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover [ res ];
  (* two reservation servers; buffer supply exists only as loans to an
     elastic reservation, so replacements must reclaim loans *)
  Broker.move broker 0 (Broker.Reservation 1);
  Broker.move broker 1 (Broker.Reservation 1);
  Broker.move broker 2 Broker.Shared_buffer;
  Broker.move broker 3 Broker.Shared_buffer;
  Broker.move broker 4 Broker.Shared_buffer;
  let lent = Online_mover.lend_idle mover ~elastic_id:9000 ~max_servers:3 in
  Alcotest.(check int) "three loans out" 3 lent;
  Alcotest.(check int) "loans tracked" 3 (Online_mover.loans_outstanding mover);
  Broker.mark_down broker 0 Unavail.Unplanned_hw;
  Broker.mark_down broker 1 Unavail.Unplanned_sw;
  Alcotest.(check int) "both failures replaced" 2 (Online_mover.replacements_done mover);
  Alcotest.(check int) "replacements consumed loans" 1 (Online_mover.loans_outstanding mover);
  Alcotest.(check int) "reservation back to strength" 2
    (Broker.count_owner broker (Broker.Reservation 1));
  Alcotest.(check int) "dead servers parked in the buffer" 2
    (Broker.count_owner broker Broker.Shared_buffer);
  (* the surviving loan still round-trips home *)
  let revoked = Online_mover.revoke mover ~elastic_id:9000 in
  Alcotest.(check int) "remaining loan revoked" 1 revoked;
  Alcotest.(check int) "no loans left" 0 (Online_mover.loans_outstanding mover);
  Alcotest.(check int) "no elastic holdings left" 0
    (Broker.count_owner broker (Broker.Elastic 9000))

(* ---------- tier-2 drift bound ---------- *)

let test_tier1_repair_drift_bounded () =
  (* identical worlds; one repaired by tier-1 (reactive), one by the legacy
     oracle scans.  Re-solving both repaired states must give objectives
     within a small relative band: tier-1's price-guided picks may differ
     server-for-server, never materially in tier-2 cost. *)
  let build () =
    let region = Generator.generate Generator.small_params in
    let broker = Broker.create region in
    let rng = Rng.create 11 in
    let requests =
      Ras_workload.Request_gen.scenario rng ~region ~services:Service.default_catalog
        ~target_utilization:0.4
    in
    let reservations =
      List.map Reservation.of_request requests
      @ Buffers.shared_buffer_reservations region ~fraction:0.05 ~first_id:8000
    in
    (broker, reservations)
  in
  let solve_objective broker reservations =
    let snapshot = Snapshot.take broker reservations in
    let result = Phases.run ~mip_node_limit:0 snapshot reservations in
    result.Phases.outcome.Ras_mip.Branch_bound.objective
  in
  let repair use_reactive =
    let broker, reservations = build () in
    let reactive = if use_reactive then Some (Reactive.create broker) else None in
    let mover = Online_mover.create ?reactive broker in
    Online_mover.set_reservations mover reservations;
    (* bind capacity with one heuristic round *)
    let snapshot = Snapshot.take broker reservations in
    let stats =
      Async_solver.solve
        ~params:{ Async_solver.default_params with Async_solver.node_limit = 0 }
        snapshot
    in
    ignore (Online_mover.apply_plan mover stats.Async_solver.plan);
    (match (reactive, stats.Async_solver.price_table) with
    | Some ri, Some p -> Reactive.set_prices ri p
    | _ -> ());
    (* deterministic storm over reservation-bound servers *)
    let victims = ref [] in
    Broker.iter broker ~f:(fun r ->
        match r.Broker.current with
        | Broker.Reservation rid when rid < 8000 && List.length !victims < 8 ->
          victims := r.Broker.server.Region.id :: !victims
        | _ -> ());
    List.iter (fun id -> Broker.mark_down broker id Unavail.Unplanned_hw) (List.rev !victims);
    (solve_objective broker reservations, Online_mover.replacements_done mover)
  in
  let obj_oracle, repl_oracle = repair false in
  let obj_reactive, repl_reactive = repair true in
  Alcotest.(check int) "both repaired the same storm" repl_oracle repl_reactive;
  let drift = Float.abs (obj_reactive -. obj_oracle) in
  let bound = 0.05 *. Float.max 1.0 (Float.abs obj_oracle) in
  Alcotest.(check bool)
    (Printf.sprintf "tier-2 objective drift %.3f within %.3f" drift bound)
    true (drift <= bound)

(* ---------- region scale (RAS_SCALE_TESTS=full) ---------- *)

let scale_world () =
  let region = Generator.generate Generator.region_scale_params in
  let broker = Broker.create region in
  let rng = Rng.create 31 in
  let n = Broker.num_servers broker in
  (* a realistic event-path state: some reservation-bound servers, a
     populated shared buffer — placed columnar, no solve needed *)
  let res = reservation_of_rru ~id:1 1e9 in
  let bound = ref [] in
  for _ = 1 to 4000 do
    let id = Rng.int rng n in
    if
      Broker.current_code broker id = Broker.owner_code Broker.Free
      && res.Reservation.rru_of region.Region.servers.(id).Region.hw > 0.0
    then begin
      Broker.move broker id (Broker.Reservation 1);
      bound := id :: !bound
    end
  done;
  for _ = 1 to 8000 do
    let id = Rng.int rng n in
    if Broker.current_code broker id = Broker.owner_code Broker.Free then
      Broker.move broker id Broker.Shared_buffer
  done;
  (broker, res, !bound)

let test_scale_reactive_visits_classes_not_servers () =
  if not (full_scale ()) then () (* 10^6-server pin: RAS_SCALE_TESTS=full only *)
  else begin
    let broker, res, bound = scale_world () in
    let reactive = Reactive.create broker in
    let mover = Online_mover.create ~reactive broker in
    Online_mover.set_reservations mover [ res ];
    let n = Broker.num_servers broker in
    let buckets = Reactive.num_buckets reactive in
    Reactive.reset_counters reactive;
    let events = 50 in
    let victims = List.filteri (fun i _ -> i < events) bound in
    let alloc0 = Gc.allocated_bytes () in
    List.iter (fun id -> Broker.mark_down broker id Unavail.Unplanned_hw) victims;
    let alloc = Gc.allocated_bytes () -. alloc0 in
    let c = Reactive.counters reactive in
    Alcotest.(check int) "every event repaired" events (Online_mover.replacements_done mover);
    let per_event_classes = c.Reactive.visited_classes / events in
    let per_event_servers = c.Reactive.visited_servers / events in
    Alcotest.(check bool)
      (Printf.sprintf "classes/event %d bounded by bucket count %d (region %d)"
         per_event_classes buckets n)
      true
      (per_event_classes <= buckets);
    Alcotest.(check bool)
      (Printf.sprintf "servers/event %d is O(1), not O(n=%d)" per_event_servers n)
      true (per_event_servers <= 2);
    (* repair allocation per event must not scale with the region *)
    Alcotest.(check bool)
      (Printf.sprintf "alloc/event %.0f bytes bounded" (alloc /. float_of_int events))
      true
      (alloc /. float_of_int events < 128_000.0)
  end

let test_scale_grant_bounded () =
  if not (full_scale ()) then () (* 10^6-server pin: RAS_SCALE_TESTS=full only *)
  else begin
    let broker, res, _ = scale_world () in
    let n = Broker.num_servers broker in
    let alloc0 = Gc.allocated_bytes () in
    let g = Emergency.grant broker ~reservation:res ~rru:50.0 ~allow_buffer:false in
    let alloc = Gc.allocated_bytes () -. alloc0 in
    Alcotest.(check bool) "covered" true (g.Emergency.granted_rru >= 50.0);
    Alcotest.(check bool)
      (Printf.sprintf "visited %d of %d: early termination held" g.Emergency.visited n)
      true
      (g.Emergency.visited < n / 10);
    Alcotest.(check bool)
      (Printf.sprintf "grant allocation %.0f bytes bounded" alloc)
      true (alloc < 1_000_000.0)
  end

let suite =
  [
    Alcotest.test_case "index tracks churn" `Quick test_index_tracks_churn;
    Alcotest.test_case "index survives region growth" `Quick test_index_survives_region_growth;
    Alcotest.test_case "grant matches oracle" `Quick test_grant_matches_oracle;
    Alcotest.test_case "grant terminates early" `Quick test_grant_terminates_early;
    Alcotest.test_case "replacement matches oracle on storm" `Quick
      test_replacement_matches_oracle_on_storm;
    Alcotest.test_case "reactive replacement stays in class" `Quick
      test_reactive_replacement_same_class;
    Alcotest.test_case "reactive grant respects prices" `Quick test_reactive_respects_prices;
    Alcotest.test_case "price table parsing" `Quick test_price_table_parsing;
    Alcotest.test_case "replace_failed releases dead server" `Quick
      test_replace_failed_releases_dead_server;
    Alcotest.test_case "double failure loan round trip" `Quick
      test_double_failure_loan_round_trip;
    Alcotest.test_case "tier-1 repair drift bounded" `Quick test_tier1_repair_drift_bounded;
    Alcotest.test_case "scale: visits classes not servers" `Slow
      test_scale_reactive_visits_classes_not_servers;
    Alcotest.test_case "scale: grant bounded" `Slow test_scale_grant_bounded;
  ]
