(* Cross-cutting property tests: concretization realizes solver counts with
   minimal movement, the simplex survives badly-scaled data, and the whole
   simulated system is deterministic in its seeds. *)

open Ras
module Broker = Ras_broker.Broker
module Generator = Ras_topology.Generator
module Region = Ras_topology.Region
module Service = Ras_workload.Service
module Model = Ras_mip.Model
module Lin_expr = Ras_mip.Lin_expr
module Simplex = Ras_mip.Simplex

(* ---------- concretize: counts realized, movement minimal ---------- *)

let fixture () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let rng = Ras_stats.Rng.create 11 in
  let requests =
    Ras_workload.Request_gen.scenario rng ~region ~services:Service.default_catalog
      ~target_utilization:0.4
  in
  let reservations =
    List.map Reservation.of_request requests
    @ Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  (* put the broker in a non-trivial starting state *)
  ignore (Ras_twine.Greedy.fulfill broker requests);
  let snapshot = Snapshot.take broker reservations in
  let symmetry = Symmetry.build snapshot in
  Formulation.build symmetry reservations

let owner_of (res : Reservation.t) =
  match res.Reservation.kind with
  | Reservation.Guaranteed -> Broker.Reservation res.Reservation.id
  | Reservation.Random_failure_buffer _ -> Broker.Shared_buffer

let prop_concretize_realizes_random_counts =
  QCheck.Test.make ~name:"concretize realizes random counts with minimal movement" ~count:25
    QCheck.int
    (fun seed ->
      let f = fixture () in
      let rng = Ras_stats.Rng.create seed in
      (* random feasible counts: walk classes, hand out supply to random
         acceptable reservations *)
      let counts = Hashtbl.create 64 in
      Array.iter
        (fun (cls : Symmetry.cls) ->
          let pairs =
            List.filter (fun (p : Formulation.pair) -> p.Formulation.cls == cls) f.Formulation.pairs
          in
          if pairs <> [] then begin
            let budget = ref (Symmetry.size cls) in
            List.iter
              (fun (p : Formulation.pair) ->
                if !budget > 0 then begin
                  let take = Ras_stats.Rng.int rng (!budget + 1) in
                  if take > 0 then begin
                    Hashtbl.replace counts
                      (cls.Symmetry.index, p.Formulation.res.Reservation.id)
                      take;
                    budget := !budget - take
                  end
                end)
              pairs
          end)
        f.Formulation.symmetry.Symmetry.classes;
      let count_of (p : Formulation.pair) =
        try Hashtbl.find counts (p.Formulation.cls.Symmetry.index, p.Formulation.res.Reservation.id)
        with Not_found -> 0
      in
      let solution = Formulation.encode f count_of in
      let assignment = Formulation.decode f solution in
      let plan = Concretize.plan f assignment in
      let target_of = Hashtbl.create 256 in
      List.iter (fun (id, o) -> Hashtbl.replace target_of id o) plan.Concretize.targets;
      let snapshot = f.Formulation.symmetry.Symmetry.snapshot in
      (* 1. realized counts match (buffer reservations pool per category, so
         check guaranteed ones exactly) *)
      let realized_ok =
        List.for_all
          (fun (p : Formulation.pair) ->
            Reservation.is_buffer p.Formulation.res
            ||
            let owner = owner_of p.Formulation.res in
            let got =
              Array.fold_left
                (fun acc id ->
                  if Hashtbl.find_opt target_of id = Some owner then acc + 1 else acc)
                0 p.Formulation.cls.Symmetry.members
            in
            got = count_of p)
          f.Formulation.pairs
      in
      (* 2. movement minimality: per guaranteed pair, exactly
         max(0, N0 - n) members leave the owner *)
      let movement_ok =
        List.for_all
          (fun (p : Formulation.pair) ->
            Reservation.is_buffer p.Formulation.res
            ||
            let owner = owner_of p.Formulation.res in
            let n0 = Symmetry.current_count f.Formulation.symmetry p.Formulation.cls owner in
            let stayed =
              Array.fold_left
                (fun acc id ->
                  if
                    Snapshot.current snapshot id = owner
                    && Hashtbl.find_opt target_of id = Some owner
                  then acc + 1
                  else acc)
                0 p.Formulation.cls.Symmetry.members
            in
            stayed = min n0 (count_of p))
          f.Formulation.pairs
      in
      realized_ok && movement_ok)

(* ---------- symmetry aggregation invariants ---------- *)

(* Randomized regions with random churn (greedy fulfillment, failures of
   every kind, a random-modulus placement attribute) exercise the streaming
   aggregation path far from the presets. *)
let aggregation_scenario seed =
  let module R = Ras_stats.Rng in
  let rng = R.create seed in
  let params =
    {
      Generator.name = "prop-agg";
      Generator.num_dcs = 1 + R.int rng 3;
      msbs_per_dc = 1 + R.int rng 3;
      racks_per_msb = 1 + R.int rng 4;
      servers_per_rack = 1 + R.int rng 6;
      seed = R.int rng 10_000;
    }
  in
  let region = Generator.generate params in
  let broker = Broker.create region in
  let requests =
    Ras_workload.Request_gen.scenario rng ~region ~services:Service.default_catalog
      ~target_utilization:(0.2 +. R.float rng 0.4)
  in
  let reservations =
    List.map Reservation.of_request requests
    @ Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  ignore (Ras_twine.Greedy.fulfill broker requests);
  let n = Broker.num_servers broker in
  for _ = 1 to R.int rng (1 + (n / 10)) do
    let id = R.int rng n in
    let kind =
      match R.int rng 4 with
      | 0 -> Ras_failures.Unavail.Planned_maintenance
      | 1 -> Ras_failures.Unavail.Unplanned_sw
      | 2 -> Ras_failures.Unavail.Unplanned_hw
      | _ -> Ras_failures.Unavail.Correlated
    in
    Broker.mark_down broker id kind
  done;
  let attr_mod = 2 + R.int rng 8 in
  let attr_of id = if id mod attr_mod = 0 then 1 else 0 in
  (Snapshot.take ~attr_of broker reservations, reservations)

let prop_aggregation_invariants =
  QCheck.Test.make ~name:"symmetry aggregation invariants (200-seed corpus)" ~count:200
    QCheck.int
    (fun seed ->
      let snapshot, reservations = aggregation_scenario seed in
      let sym = Symmetry.build snapshot in
      let reference = Symmetry.build_reference snapshot in
      (* 1. the streaming build matches the materializing oracle *)
      let matches_reference =
        Symmetry.num_classes sym = Symmetry.num_classes reference
        && Array.for_all2
             (fun (a : Symmetry.cls) (b : Symmetry.cls) ->
               Symmetry.class_name a = Symmetry.class_name b
               && a.Symmetry.members = b.Symmetry.members)
             sym.Symmetry.classes reference.Symmetry.classes
      in
      (* 2. class counts sum to the usable server count *)
      let usable = ref 0 in
      for id = 0 to Snapshot.num_servers snapshot - 1 do
        if Snapshot.usable_at snapshot id then incr usable
      done;
      let counts_sum = Symmetry.total_members sym = !usable in
      (* 3. members really are interchangeable with the representative:
         identical hardware subtype, in-use flag and attribute, so any
         per-class capacity is the representative's value times the count *)
      let representative_ok =
        Array.for_all
          (fun (c : Symmetry.cls) ->
            let hw = Symmetry.hw_of c in
            Array.for_all
              (fun id ->
                let v = Snapshot.view snapshot id in
                v.Snapshot.server.Region.hw.Ras_topology.Hardware.index
                = hw.Ras_topology.Hardware.index
                && v.Snapshot.in_use = c.Symmetry.in_use
                && v.Snapshot.attr = c.Symmetry.attr)
              c.Symmetry.members)
          sym.Symmetry.classes
      in
      let capacity_ok =
        List.for_all
          (fun (res : Reservation.t) ->
            Array.for_all
              (fun (c : Symmetry.cls) ->
                let per = res.Reservation.rru_of (Symmetry.hw_of c) in
                let summed =
                  Array.fold_left
                    (fun acc id ->
                      acc +. res.Reservation.rru_of (Snapshot.server snapshot id).Region.hw)
                    0.0 c.Symmetry.members
                in
                Float.abs (summed -. (per *. float_of_int (Symmetry.size c)))
                <= 1e-9 *. (1.0 +. Float.abs summed))
              sym.Symmetry.classes)
          reservations
      in
      (* 4. the O(1) owner histograms cover every member exactly once *)
      let histogram_ok =
        Array.for_all
          (fun (c : Symmetry.cls) ->
            let tbl = sym.Symmetry.owner_counts.(c.Symmetry.index) in
            Hashtbl.fold (fun _ k acc -> acc + k) tbl 0 = Symmetry.size c)
          sym.Symmetry.classes
      in
      (* 5. aggregation o disaggregation is the identity on the current
         assignment: encoding the status quo and concretizing it moves
         nothing *)
      let f = Formulation.build sym reservations in
      let assignment = Formulation.decode f (Formulation.status_quo f) in
      let plan = Concretize.plan f assignment in
      let identity_ok =
        plan.Concretize.moves = []
        && List.for_all
             (fun (id, o) -> Snapshot.current snapshot id = o)
             plan.Concretize.targets
      in
      matches_reference && counts_sum && representative_ok && capacity_ok && histogram_ok
      && identity_ok)

(* ---------- simplex under bad scaling ---------- *)

let prop_simplex_survives_bad_scaling =
  QCheck.Test.make ~name:"simplex handles wide coefficient ranges" ~count:100 QCheck.int
    (fun seed ->
      let module R = Ras_stats.Rng in
      let rng = R.create seed in
      let n = 2 + R.int rng 3 in
      let m = Model.create () in
      let scale_of () = [| 1e-2; 1.0; 1e2; 1e4 |].(R.int rng 4) in
      let vars = Array.init n (fun _ -> Model.add_var ~ub:(10.0 *. scale_of ()) m) in
      let point = Array.init n (fun i -> Ras_stats.Rng.float rng (Model.var_bounds m vars.(i) |> snd)) in
      for _ = 1 to 1 + R.int rng 3 do
        let cs = Array.init n (fun _ -> scale_of () *. float_of_int (R.int rng 9 - 4)) in
        let lhs = ref 0.0 in
        Array.iteri (fun i c -> lhs := !lhs +. (c *. point.(i))) cs;
        let e = Lin_expr.of_terms (List.init n (fun i -> (cs.(i), vars.(i)))) in
        ignore (Model.add_constraint m e Model.Le (!lhs +. Float.abs !lhs *. 0.01 +. 1.0))
      done;
      Model.set_objective m
        (Lin_expr.of_terms (List.init n (fun i -> (float_of_int (R.int rng 9 - 4), vars.(i)))));
      let std = Model.compile m in
      match Simplex.solve std with
      | Simplex.Optimal { x; _ } ->
        (* relative feasibility: residuals scale with row magnitude *)
        let ok = ref true in
        for i = 0 to std.Model.nrows - 1 do
          let lhs = ref 0.0 and mag = ref 1.0 in
          Array.iteri
            (fun k j ->
              let term = std.Model.row_coefs.(i).(k) *. x.(j) in
              lhs := !lhs +. term;
              mag := !mag +. Float.abs term)
            std.Model.row_cols.(i);
          let slack = std.Model.rhs.(i) -. !lhs in
          (match std.Model.row_sense.(i) with
          | Model.Le -> if slack < -1e-6 *. !mag then ok := false
          | Model.Ge -> if slack > 1e-6 *. !mag then ok := false
          | Model.Eq -> if Float.abs slack > 1e-6 *. !mag then ok := false)
        done;
        !ok
      | Simplex.Unbounded -> true
      | Simplex.Infeasible _ | Simplex.Iteration_limit _ -> false)

(* ---------- Devex pricing invariants ---------- *)

(* Feasible-by-construction bounded random LP: finite boxes and rows
   anchored on an interior point, so every solve is Optimal and the Devex
   machinery actually pivots. *)
let random_bounded_lp seed =
  let module R = Ras_stats.Rng in
  let rng = R.create seed in
  let n = 3 + R.int rng 10 in
  let mrows = 2 + R.int rng 8 in
  let m = Model.create () in
  let lbs = Array.make n 0.0 and ubs = Array.make n 0.0 in
  let vars =
    Array.init n (fun j ->
        let lo = R.float rng 10.0 -. 5.0 in
        let hi = lo +. 1.0 +. R.float rng 9.0 in
        lbs.(j) <- lo;
        ubs.(j) <- hi;
        Model.add_var ~lb:lo ~ub:hi m)
  in
  let point = Array.init n (fun j -> lbs.(j) +. R.float rng (ubs.(j) -. lbs.(j))) in
  for _ = 1 to mrows do
    let k = 1 + R.int rng (min 6 n) in
    let picked = Array.init n (fun i -> i) in
    R.shuffle rng picked;
    let terms =
      List.init k (fun t ->
          ((1.0 +. R.float rng 4.0) *. (if R.bool rng then 1.0 else -1.0), picked.(t)))
    in
    let at_point = List.fold_left (fun acc (c, j) -> acc +. (c *. point.(j))) 0.0 terms in
    let e = Lin_expr.of_terms (List.map (fun (c, j) -> (c, vars.(j))) terms) in
    let sense, rhs =
      match R.int rng 5 with
      | 0 -> (Model.Eq, at_point)
      | 1 | 2 -> (Model.Le, at_point +. R.float rng 5.0)
      | _ -> (Model.Ge, at_point -. R.float rng 5.0)
    in
    ignore (Model.add_constraint m e sense rhs)
  done;
  Model.set_objective m
    (Lin_expr.of_terms (List.init n (fun j -> (R.float rng 10.0 -. 5.0, vars.(j)))));
  Model.compile m

(* Reference-framework weights start at 1 and only ever grow through
   max-updates, so the minimum over all columns must stay >= 1 after every
   single pivot — checked via the solver's trace hook. *)
let prop_devex_weights_ge_one =
  QCheck.Test.make ~name:"devex weights stay >= 1 after every pivot" ~count:100 QCheck.int
    (fun seed ->
      let std = random_bounded_lp seed in
      let ok = ref true and pivots = ref 0 in
      let trace ~iteration:_ ~min_devex_weight =
        incr pivots;
        if min_devex_weight < 1.0 then ok := false
      in
      match Simplex.solve ~pricing:Simplex.Devex ~trace std with
      | Simplex.Optimal _ -> !ok
      | _ -> false)

(* A framework reset mid-solve restarts the weights from a different basis
   but must not change what the solver converges to: same objective, and on
   these continuously-random (tie-free) instances the same optimal basis. *)
let prop_devex_reset_equivalence =
  QCheck.Test.make ~name:"devex mid-solve weight reset preserves the answer" ~count:100
    QCheck.int (fun seed ->
      let std = random_bounded_lp seed in
      let plain = Simplex.solve ~pricing:Simplex.Devex std in
      let reset = Simplex.solve ~pricing:Simplex.Devex ~devex_reset_period:3 std in
      match (plain, reset) with
      | Simplex.Optimal a, Simplex.Optimal b ->
        let same_basis =
          let sorted w = List.sort compare (Array.to_list w.Simplex.wcols) in
          sorted a.basis = sorted b.basis
        in
        Float.abs (a.obj -. b.obj) <= 1e-6 *. (1.0 +. Float.abs a.obj) && same_basis
      | _ -> false)

(* ---------- whole-system determinism ---------- *)

let run_system () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let rng = Ras_stats.Rng.create 11 in
  let requests =
    Ras_workload.Request_gen.scenario rng ~region ~services:Service.default_catalog
      ~target_utilization:0.4
  in
  let config =
    {
      System.default_config with
      System.solver = { Async_solver.default_params with Async_solver.node_limit = 0 };
    }
  in
  let sys = System.create ~config broker in
  List.iter (System.add_request sys) requests;
  let failures =
    Ras_failures.Failure_model.generate (Ras_stats.Rng.create 5) region
      Ras_failures.Failure_model.default_params ~horizon_days:0.5
  in
  System.install_failures sys failures;
  System.start sys;
  System.run sys ~until_h:12.0;
  let m = System.metrics sys in
  List.map
    (fun name ->
      match Ras_sim.Metrics.find m name with
      | Some s -> (name, Ras_stats.Timeseries.points s)
      | None -> (name, [||]))
    [ "max_msb_share"; "moves_unused"; "unavailable_frac"; "free_servers" ]

let test_system_deterministic () =
  let a = run_system () and b = run_system () in
  List.iter2
    (fun (name_a, pts_a) (name_b, pts_b) ->
      Alcotest.(check string) "same series" name_a name_b;
      Alcotest.(check int) (name_a ^ " same length") (Array.length pts_a) (Array.length pts_b);
      Array.iteri
        (fun i (t, v) ->
          let t', v' = pts_b.(i) in
          Alcotest.(check (float 1e-12)) (name_a ^ " time") t t';
          Alcotest.(check (float 1e-12)) (name_a ^ " value") v v')
        pts_a)
    a b

let suite =
  [
    QCheck_alcotest.to_alcotest prop_concretize_realizes_random_counts;
    QCheck_alcotest.to_alcotest prop_aggregation_invariants;
    QCheck_alcotest.to_alcotest prop_simplex_survives_bad_scaling;
    QCheck_alcotest.to_alcotest prop_devex_weights_ge_one;
    QCheck_alcotest.to_alcotest prop_devex_reset_equivalence;
    Alcotest.test_case "system runs are deterministic" `Slow test_system_deterministic;
  ]
