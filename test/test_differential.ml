(* Differential solver harness: every pricing rule (Dantzig, Partial,
   Devex) on every basis backend (dense inverse, LU + eta) against one
   reference configuration — full Dantzig scan on the dense inverse with
   the dual-simplex phase off — on a 280-instance seeded corpus of random
   bounded LPs and MIPs (140 LP + 60 warm-restart LP + 80 MIP).

   Every generated instance is solved under all six pricing×backend
   combinations; each must agree with the reference on the feasibility
   verdict, the objective value (within 1e-6, scale-relative) and — for
   MIPs — the branch-and-bound best bound.  The generator covers sizes up
   to ~60 rows × 120 columns for LPs and small bounded integer programs
   for MIPs, with free/fixed/one-sided/negative variable bounds and all
   three row senses.

   The same 280-instance corpus is then re-solved under both
   triangular-solve kernels (hypersparse traversal vs the dense-oracle
   full scan) with a strictly tighter contract: bit-identical pivot
   counts, bases, and search traces, objectives within 1e-9. *)

open Ras_mip
module R = Ras_stats.Rng

let reference_backend = Basis.Dense
let production_backend = Basis.Lu

(* the full pricing × backend matrix every instance is solved under *)
let all_pricings =
  [ ("dantzig", Simplex.Dantzig); ("partial", Simplex.Partial); ("devex", Simplex.Devex) ]

let all_backends = [ ("dense", Basis.Dense); ("lu", Basis.Lu) ]

let iter_configs f =
  List.iter
    (fun (pname, pricing) ->
      List.iter (fun (bname, backend) -> f ~pname ~pricing ~bname ~backend) all_backends)
    all_pricings

(* ------------------------------------------------------------------ *)
(* Instance generator                                                  *)

let random_bounds rng ~finite_only =
  let roll = R.int rng 100 in
  if roll < 50 then (0.0, 1.0 +. R.float rng 9.0) (* [0, U] *)
  else if roll < 65 then
    let lo = -.(1.0 +. R.float rng 5.0) in
    (lo, lo +. 1.0 +. R.float rng 8.0) (* [L, U], L < 0 *)
  else if roll < 75 then
    let v = R.float rng 6.0 -. 3.0 in
    (v, v) (* fixed *)
  else if roll < 90 then if finite_only then (0.0, 4.0 +. R.float rng 6.0) else (0.0, infinity)
  else if finite_only then (-5.0, 5.0)
  else (neg_infinity, infinity) (* free *)

let random_model ?(finite_bounds = false) rng ~max_rows ~max_cols ~integer_frac =
  let finite_only = finite_bounds || integer_frac > 0.0 in
  let n = 1 + R.int rng max_cols in
  let m = 1 + R.int rng max_rows in
  let mdl = Model.create () in
  let vars =
    Array.init n (fun _ ->
        let lb, ub = random_bounds rng ~finite_only in
        let kind =
          if integer_frac > 0.0 && R.float rng 1.0 < integer_frac then Model.Integer
          else Model.Continuous
        in
        let lb, ub =
          if kind = Model.Integer then (Float.round lb, Float.round ub) else (lb, ub)
        in
        Model.add_var ~lb ~ub ~kind mdl)
  in
  for _ = 1 to m do
    let k = 1 + R.int rng (min 6 n) in
    let picked = Array.init n (fun i -> i) in
    R.shuffle rng picked;
    let terms =
      List.init k (fun t ->
          let c = (1.0 +. R.float rng 4.0) *. if R.bool rng then 1.0 else -1.0 in
          (c, vars.(picked.(t))))
    in
    let sense = R.pick rng [| Model.Le; Model.Ge; Model.Eq |] in
    let rhs = R.float rng 40.0 -. 20.0 in
    ignore (Model.add_constraint mdl (Lin_expr.of_terms terms) sense rhs)
  done;
  let obj_terms =
    List.init n (fun j -> (R.float rng 10.0 -. 5.0, vars.(j)))
    |> List.filter (fun _ -> R.int rng 10 < 8)
  in
  Model.set_objective mdl (Lin_expr.of_terms obj_terms);
  Model.compile mdl

(* ------------------------------------------------------------------ *)
(* LP differential                                                     *)

let obj_tol a = 1e-6 *. (1.0 +. Float.abs a)

let lp_verdict = function
  | Simplex.Optimal { obj; _ } -> Printf.sprintf "optimal %g" obj
  | Simplex.Infeasible _ -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit _ -> "iteration-limit"

let check_lp_instance seed std =
  let reference =
    Simplex.solve ~pricing:Simplex.Dantzig ~backend:reference_backend ~dual_simplex:false
      std
  in
  iter_configs (fun ~pname ~pricing ~bname ~backend ->
      let produced = Simplex.solve ~pricing ~backend std in
      match (reference, produced) with
      | Simplex.Optimal r, Simplex.Optimal p ->
        if Float.abs (r.obj -. p.obj) > obj_tol r.obj then
          Alcotest.failf "seed %d [%s/%s]: objectives differ: ref %.9g vs %.9g" seed pname
            bname r.obj p.obj;
        (match Model.check_solution std p.x with
        | Ok () -> ()
        | Error msg ->
          Alcotest.failf "seed %d [%s/%s]: solution infeasible: %s" seed pname bname msg)
      | Simplex.Infeasible _, Simplex.Infeasible _ -> ()
      | Simplex.Unbounded, Simplex.Unbounded -> ()
      | r, p ->
        Alcotest.failf "seed %d [%s/%s]: verdicts differ: ref %s vs %s" seed pname bname
          (lp_verdict r) (lp_verdict p))

let test_lp_differential () =
  let count = ref 0 in
  for seed = 1 to 140 do
    let rng = R.create (7000 + seed) in
    let std = random_model rng ~max_rows:60 ~max_cols:120 ~integer_frac:0.0 in
    check_lp_instance seed std;
    incr count
  done;
  Alcotest.(check bool) "enough LP instances" true (!count >= 140)

(* Feasible-by-construction generator for the warm-restart differential:
   bounds are finite and every row's rhs is anchored on a random interior
   point, so the first solve is always Optimal and the tightened re-solve
   below actually runs. *)
let random_feasible_model rng ~max_rows ~max_cols =
  let n = 2 + R.int rng max_cols in
  let m = 1 + R.int rng max_rows in
  let mdl = Model.create () in
  let lbs = Array.make n 0.0 and ubs = Array.make n 0.0 in
  let vars =
    Array.init n (fun j ->
        let lo = R.float rng 10.0 -. 5.0 in
        let hi = lo +. 1.0 +. R.float rng 9.0 in
        lbs.(j) <- lo;
        ubs.(j) <- hi;
        Model.add_var ~lb:lo ~ub:hi mdl)
  in
  let point = Array.init n (fun j -> lbs.(j) +. R.float rng (ubs.(j) -. lbs.(j))) in
  for _ = 1 to m do
    let k = 1 + R.int rng (min 6 n) in
    let picked = Array.init n (fun i -> i) in
    R.shuffle rng picked;
    let terms =
      List.init k (fun t ->
          let c = (1.0 +. R.float rng 4.0) *. if R.bool rng then 1.0 else -1.0 in
          (c, picked.(t)))
    in
    let at_point = List.fold_left (fun acc (c, j) -> acc +. (c *. point.(j))) 0.0 terms in
    let terms = List.map (fun (c, j) -> (c, vars.(j))) terms in
    let sense, rhs =
      match R.int rng 5 with
      | 0 -> (Model.Eq, at_point)
      | 1 | 2 -> (Model.Le, at_point +. R.float rng 5.0)
      | _ -> (Model.Ge, at_point -. R.float rng 5.0)
    in
    ignore (Model.add_constraint mdl (Lin_expr.of_terms terms) sense rhs)
  done;
  Model.set_objective mdl
    (Lin_expr.of_terms (List.init n (fun j -> (R.float rng 10.0 -. 5.0, vars.(j)))));
  Model.compile mdl

(* Warm-started differential: re-solve with tightened bounds from the first
   solve's basis — the branch-and-bound child pattern, which is the code
   path where the dual simplex actually runs. *)
let test_lp_warm_differential () =
  let exercised = ref 0 in
  for seed = 1 to 60 do
    let rng = R.create (9000 + seed) in
    let std = random_feasible_model rng ~max_rows:30 ~max_cols:60 in
    match Simplex.solve ~backend:production_backend std with
    | Simplex.Optimal { basis; x; _ } ->
      (* tighten a random variable's bound past its LP value *)
      let j = R.int rng std.Model.nvars in
      let ub = Array.copy std.Model.ub in
      let lb = Array.copy std.Model.lb in
      if R.bool rng then ub.(j) <- Float.min ub.(j) (Float.floor x.(j))
      else lb.(j) <- Float.max lb.(j) (Float.ceil x.(j));
      if lb.(j) <= ub.(j) then begin
        incr exercised;
        let reference =
          Simplex.solve ~pricing:Simplex.Dantzig ~backend:reference_backend
            ~dual_simplex:false ~lb ~ub std
        in
        iter_configs (fun ~pname ~pricing ~bname ~backend ->
            (* Devex restarts adopt the snapshot's weights: the carry path
               is the risky one, so it is the one differentially tested *)
            let produced =
              Simplex.solve ~pricing ~devex_carry:(pricing = Simplex.Devex) ~backend
                ~basis ~lb ~ub std
            in
            match (reference, produced) with
            | Simplex.Optimal r, Simplex.Optimal p ->
              if Float.abs (r.obj -. p.obj) > obj_tol r.obj then
                Alcotest.failf "warm seed %d [%s/%s]: objectives differ: %.9g vs %.9g"
                  seed pname bname r.obj p.obj
            | Simplex.Infeasible _, Simplex.Infeasible _ -> ()
            | Simplex.Unbounded, Simplex.Unbounded -> ()
            | r, p ->
              Alcotest.failf "warm seed %d [%s/%s]: verdicts differ: %s vs %s" seed pname
                bname (lp_verdict r) (lp_verdict p))
      end
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "warm restarts exercised (%d)" !exercised)
    true (!exercised >= 30)

(* ------------------------------------------------------------------ *)
(* MIP differential                                                    *)

let status_name = function
  | Branch_bound.Optimal -> "optimal"
  | Branch_bound.Feasible -> "feasible"
  | Branch_bound.Infeasible -> "infeasible"
  | Branch_bound.Unbounded -> "unbounded"
  | Branch_bound.Unknown -> "unknown"

let check_mip_instance seed std =
  let solve pricing backend dual =
    let options =
      {
        Branch_bound.default_options with
        Branch_bound.lp_pricing = pricing;
        lp_backend = backend;
        dual_restart = dual;
        node_limit = 20_000;
      }
    in
    Branch_bound.solve ~options std
  in
  let reference = solve Simplex.Dantzig reference_backend false in
  iter_configs (fun ~pname ~pricing ~bname ~backend ->
      let produced = solve pricing backend true in
      if reference.Branch_bound.status <> produced.Branch_bound.status then
        Alcotest.failf "seed %d [%s/%s]: MIP status differs: ref %s vs %s" seed pname bname
          (status_name reference.Branch_bound.status)
          (status_name produced.Branch_bound.status);
      match reference.Branch_bound.status with
      | Branch_bound.Optimal ->
        let r = reference.Branch_bound.objective and p = produced.Branch_bound.objective in
        if Float.abs (r -. p) > obj_tol r then
          Alcotest.failf "seed %d [%s/%s]: MIP objectives differ: ref %.9g vs %.9g" seed
            pname bname r p;
        let rb = reference.Branch_bound.best_bound
        and pb = produced.Branch_bound.best_bound in
        if Float.abs (rb -. pb) > obj_tol rb then
          Alcotest.failf "seed %d [%s/%s]: MIP bounds differ: ref %.9g vs %.9g" seed pname
            bname rb pb
      | _ -> ())

let test_mip_differential () =
  let count = ref 0 in
  for seed = 1 to 80 do
    let rng = R.create (8000 + seed) in
    let std = random_model rng ~max_rows:8 ~max_cols:8 ~integer_frac:0.7 in
    check_mip_instance seed std;
    incr count
  done;
  Alcotest.(check bool) "enough MIP instances" true (!count >= 80)

(* ------------------------------------------------------------------ *)
(* Sparse-vs-dense kernel differential                                 *)

(* The two triangular-solve kernels ({!Basis.Hypersparse} graph traversal
   vs {!Basis.Dense_oracle} full scans) perform bit-identical floating
   point operations — the entries a traversal skips are structural zeros —
   so a solve under either kernel must take the *same pivot sequence*, not
   merely reach the same optimum.  The full 280-instance corpus (the same
   140 LP + 60 warm-restart + 80 MIP seeds as above) is re-solved here
   under both kernels × all three pricing rules on the production LU
   backend, asserting identical pivot counts, identical final bases,
   matching verdicts, and objectives within 1e-9. *)

let kernel_tol a = 1e-9 *. (1.0 +. Float.abs a)

let check_lp_kernel_pair ?basis ?lb ?ub tag std =
  List.iter
    (fun (pname, pricing) ->
      let solve kernels =
        Simplex.solve ~pricing ~backend:production_backend ~kernels ?basis ?lb ?ub std
      in
      let sparse = solve Basis.Hypersparse and oracle = solve Basis.Dense_oracle in
      match (sparse, oracle) with
      | ( Simplex.Optimal
            { iterations = si; dual_iterations = sdi; obj = so; basis = sb; kstats = sk; _ },
          Simplex.Optimal
            { iterations = oi; dual_iterations = odi; obj = oo; basis = ob; kstats = ok; _ } )
        ->
        if si <> oi || sdi <> odi then
          Alcotest.failf "%s [%s]: pivot counts differ: sparse %d/%d vs oracle %d/%d" tag
            pname si sdi oi odi;
        if Float.abs (so -. oo) > kernel_tol oo then
          Alcotest.failf "%s [%s]: objectives differ: %.12g vs %.12g" tag pname so oo;
        if sb.Simplex.wcols <> ob.Simplex.wcols || sb.Simplex.wstatus <> ob.Simplex.wstatus
        then Alcotest.failf "%s [%s]: final bases differ" tag pname;
        if sk.Simplex.bound_flips <> ok.Simplex.bound_flips then
          Alcotest.failf "%s [%s]: bound-flip counts differ: %d vs %d" tag pname
            sk.Simplex.bound_flips ok.Simplex.bound_flips
      | ( Simplex.Infeasible { infeasibility = a },
          Simplex.Infeasible { infeasibility = b } ) ->
        if a <> b then
          Alcotest.failf "%s [%s]: infeasibility counts differ: %d vs %d" tag pname a b
      | Simplex.Unbounded, Simplex.Unbounded -> ()
      | s, o ->
        Alcotest.failf "%s [%s]: verdicts differ: sparse %s vs oracle %s" tag pname
          (lp_verdict s) (lp_verdict o))
    all_pricings

let test_lp_kernel_differential () =
  for seed = 1 to 140 do
    let rng = R.create (7000 + seed) in
    let std = random_model rng ~max_rows:60 ~max_cols:120 ~integer_frac:0.0 in
    check_lp_kernel_pair (Printf.sprintf "lp seed %d" seed) std
  done

let test_lp_warm_kernel_differential () =
  let exercised = ref 0 in
  for seed = 1 to 60 do
    let rng = R.create (9000 + seed) in
    let std = random_feasible_model rng ~max_rows:30 ~max_cols:60 in
    match Simplex.solve ~backend:production_backend std with
    | Simplex.Optimal { basis; x; _ } ->
      let j = R.int rng std.Model.nvars in
      let ub = Array.copy std.Model.ub in
      let lb = Array.copy std.Model.lb in
      if R.bool rng then ub.(j) <- Float.min ub.(j) (Float.floor x.(j))
      else lb.(j) <- Float.max lb.(j) (Float.ceil x.(j));
      if lb.(j) <= ub.(j) then begin
        incr exercised;
        (* warm restart with the dual phase on: the bound-flip ratio test
           runs here, and its flip counts must agree across kernels too *)
        check_lp_kernel_pair ~basis ~lb ~ub (Printf.sprintf "warm seed %d" seed) std
      end
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "warm restarts exercised (%d)" !exercised)
    true (!exercised >= 30)

let test_mip_kernel_differential () =
  for seed = 1 to 80 do
    let rng = R.create (8000 + seed) in
    let std = random_model rng ~max_rows:8 ~max_cols:8 ~integer_frac:0.7 in
    List.iter
      (fun (pname, pricing) ->
        let solve kernels =
          let options =
            {
              Branch_bound.default_options with
              Branch_bound.lp_pricing = pricing;
              lp_backend = production_backend;
              lp_kernels = Some kernels;
              node_limit = 20_000;
            }
          in
          Branch_bound.solve ~options std
        in
        let s = solve Basis.Hypersparse and o = solve Basis.Dense_oracle in
        if s.Branch_bound.status <> o.Branch_bound.status then
          Alcotest.failf "mip seed %d [%s]: statuses differ: %s vs %s" seed pname
            (status_name s.Branch_bound.status)
            (status_name o.Branch_bound.status);
        if s.Branch_bound.nodes <> o.Branch_bound.nodes
           || s.Branch_bound.lp_iterations <> o.Branch_bound.lp_iterations
           || s.Branch_bound.dual_pivots <> o.Branch_bound.dual_pivots
           || s.Branch_bound.bound_flips <> o.Branch_bound.bound_flips
        then
          Alcotest.failf
            "mip seed %d [%s]: search traces differ: %d/%d/%d/%d vs %d/%d/%d/%d" seed pname
            s.Branch_bound.nodes s.Branch_bound.lp_iterations s.Branch_bound.dual_pivots
            s.Branch_bound.bound_flips o.Branch_bound.nodes o.Branch_bound.lp_iterations
            o.Branch_bound.dual_pivots o.Branch_bound.bound_flips;
        match s.Branch_bound.status with
        | Branch_bound.Optimal ->
          if
            Float.abs (s.Branch_bound.objective -. o.Branch_bound.objective)
            > kernel_tol o.Branch_bound.objective
            || Float.abs (s.Branch_bound.best_bound -. o.Branch_bound.best_bound)
               > kernel_tol o.Branch_bound.best_bound
          then
            Alcotest.failf "mip seed %d [%s]: objectives/bounds differ: %.12g/%.12g vs %.12g/%.12g"
              seed pname s.Branch_bound.objective s.Branch_bound.best_bound
              o.Branch_bound.objective o.Branch_bound.best_bound
        | _ -> ())
      all_pricings
  done

(* ------------------------------------------------------------------ *)
(* Decomposition differential                                          *)

(* POP decomposition against the monolith oracle: a merged solution that
   validates must be feasible for the original model (check_solution) and
   can never beat the monolith's proven bound; and reruns are bit-identical
   (same seed => same allocation), which the deterministic pool ordering
   guarantees even when subproblems finish out of order. *)
let test_decompose_differential () =
  let module D = Ras_mip.Decompose in
  let feasible = ref 0 and total = ref 0 in
  for seed = 1 to 39 do
    if seed mod 2 = 1 then begin
      let make () =
        let rng = R.create (8000 + seed) in
        random_model rng ~max_rows:8 ~max_cols:8 ~integer_frac:0.7
      in
      let std = make () in
      let monolith = Branch_bound.solve std in
      List.iter
        (fun k ->
          incr total;
          let var_part j = j mod k in
          let r = D.solve ~num_parts:k ~var_part std in
          (match r.D.outcome.Branch_bound.solution with
          | Some x ->
            incr feasible;
            (match Model.check_solution std x with
            | Ok () -> ()
            | Error msg ->
              Alcotest.failf "seed %d k=%d: merged solution invalid: %s" seed k msg);
            let obj = r.D.outcome.Branch_bound.objective in
            if obj < monolith.Branch_bound.best_bound -. obj_tol monolith.Branch_bound.best_bound
            then
              Alcotest.failf "seed %d k=%d: merged objective %.9g beats monolith bound %.9g"
                seed k obj monolith.Branch_bound.best_bound
          | None ->
            if r.D.outcome.Branch_bound.status <> Branch_bound.Unknown then
              Alcotest.failf "seed %d k=%d: no solution but status not Unknown" seed k);
          let rerun = D.solve ~num_parts:k ~var_part std in
          if rerun.D.outcome.Branch_bound.solution <> r.D.outcome.Branch_bound.solution then
            Alcotest.failf "seed %d k=%d: decomposed solve not deterministic" seed k)
        [ 2; 4 ]
    end
  done;
  (* scaled capacities make some subs infeasible by construction; the corpus
     must still produce a healthy share of feasible merges for the
     comparison to mean anything *)
  Alcotest.(check bool)
    (Printf.sprintf "feasible merges (%d/%d)" !feasible !total)
    true
    (!feasible >= 10)

let suite =
  [
    Alcotest.test_case "lp: 3 pricing rules x 2 backends match oracle (140 instances)"
      `Quick test_lp_differential;
    Alcotest.test_case "lp warm restart: all configs match oracle (60 seeds)" `Quick
      test_lp_warm_differential;
    Alcotest.test_case "mip: all configs match oracle bounds/verdicts (80 instances)"
      `Quick test_mip_differential;
    Alcotest.test_case
      "kernels lp: sparse vs dense-oracle bit-identical pivots (140 instances)" `Quick
      test_lp_kernel_differential;
    Alcotest.test_case
      "kernels warm lp: sparse vs dense-oracle incl. bound flips (60 seeds)" `Quick
      test_lp_warm_kernel_differential;
    Alcotest.test_case
      "kernels mip: sparse vs dense-oracle identical search traces (80 instances)" `Quick
      test_mip_kernel_differential;
    Alcotest.test_case "decompose: merged solutions feasible, bounded, deterministic"
      `Quick test_decompose_differential;
  ]
