(* Region-scale battery: the streaming, symmetry-aggregated pipeline at the
   north-star preset (§3.3.1: 36 MSBs, ~10^6 servers).

   The region-scale preset varies only [servers_per_rack] between scales;
   rack hardware is drawn once per rack, so the same logical region exists
   at ~2x10^4 (spr=1), ~10^5 (spr=5) and ~10^6 (spr=48) raw servers with
   identical class structure.  That gives three pins:

   - equivalence: the streaming [Symmetry.build] must agree with the
     retained pre-columnar oracle [Symmetry.build_reference] class-for-class
     and produce the same compiled model, which must solve to the same
     verdict/objective under every pricing rule and both kernel backends;
   - disaggregation: a class-level solution concretized to per-server
     targets and re-aggregated must encode back to a feasible vector with
     the same objective;
   - ceilings: compiled size must be independent of raw server count
     (Fig. 10/11 regime), formulation+compile allocation must be bounded by
     model size (not server count), and the columnar snapshot/symmetry live
     footprint must stay a few words per server.

   [dune runtest] keeps the sweep at spr <= 5; RAS_SCALE_TESTS=full adds
   the 10^6 run (the dedicated CI job sets it). *)

open Ras
module Broker = Ras_broker.Broker
module Generator = Ras_topology.Generator
module Region = Ras_topology.Region
module Unavail = Ras_failures.Unavail
module Model = Ras_mip.Model
module Simplex = Ras_mip.Simplex
module Basis = Ras_mip.Basis

let full_scale () = Sys.getenv_opt "RAS_SCALE_TESTS" = Some "full"

let params_at ~servers_per_rack =
  { Generator.region_scale_params with Generator.servers_per_rack }

(* The bench preset's workload (kernels.ml scenario_snapshot), plus churn:
   greedy fulfillment, scattered failures of every kind, and a sparse
   placement attribute, so symmetry sees non-trivial in_use/usable/attr
   columns. *)
let scale_snapshot ?(churn = true) ~servers_per_rack () =
  let region = Generator.generate (params_at ~servers_per_rack) in
  let broker = Broker.create region in
  let services =
    List.filter
      (fun s -> s.Ras_workload.Service.id <= 12 || s.Ras_workload.Service.id = 13
                || s.Ras_workload.Service.id = 17)
      Ras_workload.Service.default_catalog
  in
  let rng = Ras_stats.Rng.create 11 in
  let requests =
    Ras_workload.Request_gen.scenario rng ~region ~services ~target_utilization:0.45
  in
  let reservations =
    List.map Reservation.of_request requests
    @ Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  if churn then begin
    ignore (Ras_twine.Greedy.fulfill broker requests);
    let n = Broker.num_servers broker in
    let frng = Ras_stats.Rng.create 23 in
    for _ = 1 to n / 200 do
      let id = Ras_stats.Rng.int frng n in
      let kind =
        match Ras_stats.Rng.int frng 4 with
        | 0 -> Unavail.Planned_maintenance
        | 1 -> Unavail.Unplanned_sw
        | 2 -> Unavail.Unplanned_hw
        | _ -> Unavail.Correlated
      in
      Broker.mark_down broker id kind
    done
  end;
  (* note: an id-keyed attribute is deliberately confined to the churn
     configuration — server ids shift with [servers_per_rack], so the scale
     sweep (churn = false) must stay attribute-free to remain invariant *)
  let attr_of = if churn then fun id -> if id mod 97 = 0 then 1 else 0 else fun _ -> 0 in
  (Snapshot.take ~attr_of broker reservations, reservations)

(* ---------- aggregation equivalence: streaming vs reference oracle ----- *)

let check_symmetry_equal (a : Symmetry.t) (b : Symmetry.t) =
  Alcotest.(check int) "same class count" (Symmetry.num_classes b) (Symmetry.num_classes a);
  Array.iteri
    (fun i (ca : Symmetry.cls) ->
      let cb = b.Symmetry.classes.(i) in
      Alcotest.(check string) "class name" (Symmetry.class_name cb) (Symmetry.class_name ca);
      Alcotest.(check int) "class index" cb.Symmetry.index ca.Symmetry.index;
      Alcotest.(check (array int)) "class members" cb.Symmetry.members ca.Symmetry.members)
    a.Symmetry.classes

let check_std_equal (a : Model.std) (b : Model.std) =
  Alcotest.(check int) "nvars" b.Model.nvars a.Model.nvars;
  Alcotest.(check int) "nrows" b.Model.nrows a.Model.nrows;
  Alcotest.(check (array string)) "var names" b.Model.var_names a.Model.var_names;
  Alcotest.(check (array string)) "row names" b.Model.row_names a.Model.row_names;
  let farr name xa xb = Alcotest.(check (array (float 0.0))) name xb xa in
  farr "obj" a.Model.obj b.Model.obj;
  Alcotest.(check (float 0.0)) "obj offset" b.Model.obj_offset a.Model.obj_offset;
  farr "lb" a.Model.lb b.Model.lb;
  farr "ub" a.Model.ub b.Model.ub;
  farr "rhs" a.Model.rhs b.Model.rhs;
  Alcotest.(check (array bool)) "integer" b.Model.integer a.Model.integer;
  Alcotest.(check bool) "row senses" true (a.Model.row_sense = b.Model.row_sense);
  Alcotest.(check (array int)) "col_ptr" b.Model.col_ptr a.Model.col_ptr;
  Alcotest.(check (array int)) "col_ind" b.Model.col_ind a.Model.col_ind;
  farr "col_val" a.Model.col_val b.Model.col_val

let test_streaming_matches_reference () =
  let snapshot, reservations = scale_snapshot ~servers_per_rack:1 () in
  let streamed = Symmetry.build snapshot in
  let reference = Symmetry.build_reference snapshot in
  check_symmetry_equal streamed reference;
  (* O(1) owner histograms agree with a direct member scan *)
  let owners =
    Broker.Free :: Broker.Shared_buffer
    :: List.filter_map
         (fun (r : Reservation.t) ->
           if Reservation.is_buffer r then None
           else Some (Broker.Reservation r.Reservation.id))
         reservations
  in
  Array.iter
    (fun (c : Symmetry.cls) ->
      List.iter
        (fun owner ->
          let scanned =
            Array.fold_left
              (fun acc id -> if Snapshot.current snapshot id = owner then acc + 1 else acc)
              0 c.Symmetry.members
          in
          Alcotest.(check int) "current_count vs scan" scanned
            (Symmetry.current_count streamed c owner))
        owners)
    streamed.Symmetry.classes;
  (* same compiled model, bit for bit *)
  let std_of sym =
    let f = Formulation.build sym reservations in
    Model.compile f.Formulation.model
  in
  check_std_equal (std_of streamed) (std_of reference);
  (* rack-level and filtered builds agree too *)
  let filter (v : Snapshot.server_view) = v.Snapshot.server.Region.id mod 3 <> 0 in
  check_symmetry_equal
    (Symmetry.build ~rack_level:true ~include_server:filter snapshot)
    (Symmetry.build_reference ~rack_level:true ~include_server:filter snapshot)

(* ---------- solve equivalence across pricing rules and kernel backends -- *)

let test_solves_agree_across_rules_and_kernels () =
  let snapshot, reservations = scale_snapshot ~servers_per_rack:1 () in
  let symmetry = Symmetry.build snapshot in
  let f = Formulation.build symmetry reservations in
  let std = Model.compile f.Formulation.model in
  let solve pricing kernels =
    match Simplex.solve ~pricing ~kernels std with
    | Simplex.Optimal { obj; iterations; _ } -> (obj, iterations)
    | _ -> Alcotest.fail "region-scale root LP must be optimal"
  in
  let reference_obj, _ = solve Simplex.Devex Basis.Hypersparse in
  List.iter
    (fun pricing ->
      (* the two kernel modes perform bit-identical fp operations, so pivot
         counts and objectives must agree exactly per rule *)
      let sparse_obj, sparse_iters = solve pricing Basis.Hypersparse in
      let oracle_obj, oracle_iters = solve pricing Basis.Dense_oracle in
      Alcotest.(check int) "pivot counts identical across kernels" sparse_iters oracle_iters;
      Alcotest.(check (float 0.0)) "objectives identical across kernels" sparse_obj oracle_obj;
      (* pricing rules may take different paths but land on the same LP
         optimum *)
      Alcotest.(check bool) "objective agrees across pricing rules" true
        (Float.abs (sparse_obj -. reference_obj)
        <= 1e-6 *. Float.max 1.0 (Float.abs reference_obj)))
    [ Simplex.Dantzig; Simplex.Partial; Simplex.Devex ]

(* ---------- disaggregation round trip ---------- *)

let owner_of (res : Reservation.t) =
  match res.Reservation.kind with
  | Reservation.Guaranteed -> Broker.Reservation res.Reservation.id
  | Reservation.Random_failure_buffer _ -> Broker.Shared_buffer

let objective_of (std : Model.std) x =
  let acc = ref std.Model.obj_offset in
  Array.iteri (fun v c -> acc := !acc +. (c *. x.(v))) std.Model.obj;
  !acc

let test_disaggregation_round_trip () =
  let snapshot, reservations = scale_snapshot ~servers_per_rack:1 () in
  let result = Phases.run ~mip_node_limit:0 snapshot reservations in
  let f = result.Phases.formulation in
  let std = result.Phases.compiled in
  let solution = result.Phases.solution in
  Alcotest.(check bool) "solver solution is feasible" true
    (Model.check_solution std solution = Ok ());
  (* class counts -> per-server assignment *)
  let assignment = Formulation.decode f solution in
  let plan = Concretize.plan f assignment in
  let target_of = Hashtbl.create 4096 in
  List.iter (fun (id, o) -> Hashtbl.replace target_of id o) plan.Concretize.targets;
  (* re-aggregate the per-server assignment back into per-pair counts.
     Guaranteed reservations own their targets directly; buffer reservations
     pool [Shared_buffer] servers per hardware category, and every class has
     one hardware subtype, so membership is unambiguous per pair. *)
  let count_of (p : Formulation.pair) =
    let res = p.Formulation.res in
    Array.fold_left
      (fun acc id ->
        match Hashtbl.find_opt target_of id with
        | Some Broker.Shared_buffer when Reservation.is_buffer res ->
          if res.Reservation.rru_of (Snapshot.server snapshot id).Region.hw > 0.0 then
            acc + 1
          else acc
        | Some o when o = owner_of res && not (Reservation.is_buffer res) -> acc + 1
        | Some _ | None -> acc)
      0 p.Formulation.cls.Symmetry.members
  in
  let rebuilt = Formulation.encode f count_of in
  Alcotest.(check bool) "re-aggregated solution is feasible" true
    (Model.check_solution std rebuilt = Ok ());
  let obj_orig = objective_of std solution and obj_rebuilt = objective_of std rebuilt in
  Alcotest.(check bool)
    (Printf.sprintf "objective preserved (%.6f vs %.6f)" obj_orig obj_rebuilt)
    true
    (Float.abs (obj_orig -. obj_rebuilt) <= 1e-9 *. Float.max 1.0 (Float.abs obj_orig))

(* ---------- scale sweep: compiled size independent of raw server count -- *)

let compiled_at ~servers_per_rack =
  let snapshot, reservations = scale_snapshot ~churn:false ~servers_per_rack () in
  let symmetry = Symmetry.build snapshot in
  let f = Formulation.build symmetry reservations in
  let std = Model.compile f.Formulation.model in
  let names = Array.map Symmetry.class_name symmetry.Symmetry.classes in
  (Snapshot.num_servers snapshot, names, std)

let test_scale_invariance () =
  let sweep = if full_scale () then [ 1; 5; 48 ] else [ 1; 5 ] in
  let results = List.map (fun spr -> (spr, compiled_at ~servers_per_rack:spr)) sweep in
  let _, (_, names0, std0) = List.hd results in
  List.iter
    (fun (spr, (n, names, std)) ->
      Alcotest.(check int)
        (Printf.sprintf "server count at spr=%d" spr)
        (20_880 * spr) n;
      Alcotest.(check (array string))
        (Printf.sprintf "identical class names at spr=%d" spr)
        names0 names;
      Alcotest.(check int) (Printf.sprintf "identical nvars at spr=%d" spr)
        std0.Model.nvars std.Model.nvars;
      Alcotest.(check int) (Printf.sprintf "identical nrows at spr=%d" spr)
        std0.Model.nrows std.Model.nrows)
    results;
  (* the Fig. 10/11 regime: a region-scale model compiles to thousands of
     variables, not millions *)
  Alcotest.(check bool) "compiled size in the aggregated regime" true
    (std0.Model.nvars < 20_000 && std0.Model.nrows < 20_000);
  if full_scale () then begin
    (* and the full 10^6-server pipeline solves end to end *)
    let snapshot, reservations = scale_snapshot ~servers_per_rack:48 () in
    let result = Phases.run ~mip_node_limit:0 snapshot reservations in
    Alcotest.(check bool) "million-server heuristic solve is feasible" true
      (Model.check_solution result.Phases.compiled result.Phases.solution = Ok ())
  end

(* ---------- memory ceilings ---------- *)

(* Allocation during Formulation.build + Model.compile must track model
   size, not raw server count: 5x the servers with the same class structure
   may not cost more than ~1.5x the build allocation. *)
let test_build_allocation_scale_independent () =
  let measure ~servers_per_rack =
    let snapshot, reservations = scale_snapshot ~churn:false ~servers_per_rack () in
    let symmetry = Symmetry.build snapshot in
    (* warm up so one-time lazy setup is not billed to either measurement *)
    ignore (Formulation.build symmetry reservations);
    let before = Gc.allocated_bytes () in
    let f = Formulation.build symmetry reservations in
    let std = Model.compile f.Formulation.model in
    let after = Gc.allocated_bytes () in
    ignore (Sys.opaque_identity std);
    after -. before
  in
  let small = measure ~servers_per_rack:1 in
  let large = measure ~servers_per_rack:5 in
  Alcotest.(check bool)
    (Printf.sprintf "5x servers => %.2fx build allocation (limit 1.5x)" (large /. small))
    true
    (large <= 1.5 *. small)

(* The columnar stores must cost O(1) words per server: snapshot columns
   (owner codes + attr ints, two byte columns) and symmetry member arrays
   plus per-class tables. *)
let test_live_words_per_server () =
  let servers_per_rack = 5 in
  let snapshot, _ = scale_snapshot ~servers_per_rack () in
  let n = Snapshot.num_servers snapshot in
  let words o = Obj.reachable_words (Obj.repr o) in
  let snapshot_words =
    words snapshot.Snapshot.current + words snapshot.Snapshot.in_use
    + words snapshot.Snapshot.usable + words snapshot.Snapshot.attr
  in
  (* two int columns (1 word/server) + two byte columns (1/8 word/server) *)
  Alcotest.(check bool)
    (Printf.sprintf "snapshot columns: %.2f words/server (limit 4)"
       (float_of_int snapshot_words /. float_of_int n))
    true
    (snapshot_words <= (4 * n) + 1024);
  let symmetry = Symmetry.build snapshot in
  let symmetry_words =
    words symmetry.Symmetry.classes + words symmetry.Symmetry.owner_counts
  in
  (* member id arrays (1 word/usable server) + class records + histograms *)
  Alcotest.(check bool)
    (Printf.sprintf "symmetry: %.2f words/server (limit 2 + 256K)"
       (float_of_int symmetry_words /. float_of_int n))
    true
    (symmetry_words <= (2 * n) + (256 * 1024))

let suite =
  [
    Alcotest.test_case "streaming symmetry build matches the reference oracle" `Quick
      test_streaming_matches_reference;
    Alcotest.test_case "aggregated model solves identically across rules and kernels" `Quick
      test_solves_agree_across_rules_and_kernels;
    Alcotest.test_case "disaggregation round trip preserves feasibility and objective" `Slow
      test_disaggregation_round_trip;
    Alcotest.test_case "compiled model size is invariant in raw server count" `Slow
      test_scale_invariance;
    Alcotest.test_case "build allocation is bounded by model size, not server count" `Slow
      test_build_allocation_scale_independent;
    Alcotest.test_case "columnar stores cost O(1) words per server" `Quick
      test_live_words_per_server;
  ]
