(* Property tests pinning the hypersparse triangular-solve kernels
   directly at the {!Basis} layer (the solver-level pinning lives in
   test_differential.ml's kernel battery):

   - seeded random sparse systems: FTRAN/BTRAN under the hypersparse
     traversal must be bit-identical to the dense-oracle full scan, and
     both must agree with the plain dense entry points to 1e-9;
   - round trips: B·(B⁻¹b) recovers b through the factorization, before
     and after product-form eta updates;
   - the fully-dense-column worst case, where the traversal's reach is the
     whole factor pattern and the kernel falls back to the full scan;
   - the bound-flip (long-step) dual ratio test on the bound_flip.lp
     golden fixture, warm-restarted the way branch-and-bound does it;
   - the solver-owned workspace: repeated warm solves through one
     workspace must allocate O(result) fresh words per solve, bounded via
     a [Gc.minor_words] delta. *)

open Ras_mip
module R = Ras_stats.Rng

(* ------------------------------------------------------------------ *)
(* Random sparse triangular systems                                    *)

(* Random m×m strictly column-diagonally-dominant sparse matrix: diagonal
   in [2,5], up to three off-diagonal entries per column in (-0.5, 0.5) —
   nonsingular by Gershgorin, so Markowitz elimination always completes. *)
let random_sparse_matrix rng m =
  Array.init m (fun j ->
      let entries = ref [ (j, 2.0 +. R.float rng 3.0) ] in
      for _ = 1 to R.int rng 4 do
        let i = R.int rng m in
        if i <> j && not (List.mem_assoc i !entries) then
          entries := (i, R.float rng 1.0 -. 0.5) :: !entries
      done;
      !entries)

let factorized rng kernels m cols =
  ignore rng;
  let t = Basis.create ~kernels Basis.Lu ~m in
  Basis.refactorize t
    ~basis:(Array.init m (fun i -> i))
    ~col:(fun j f -> List.iter (fun (i, v) -> f i v) cols.(j));
  t

(* a random sparse right-hand-side column as parallel rows/coefs arrays *)
let random_rhs rng m =
  let k = 1 + R.int rng (max 1 (m / 4)) in
  let seen = Hashtbl.create 8 in
  let picked = ref [] in
  for _ = 1 to k do
    let i = R.int rng m in
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      picked := (i, R.float rng 4.0 -. 2.0) :: !picked
    end
  done;
  let l = List.sort compare !picked in
  (Array.of_list (List.map fst l), Array.of_list (List.map snd l))

let svec_dense m (s : Basis.Svec.t) =
  let d = Array.make m 0.0 in
  for k = 0 to s.Basis.Svec.n - 1 do
    let i = s.Basis.Svec.idx.(k) in
    d.(i) <- s.Basis.Svec.vals.(i)
  done;
  d

let check_bit_identical tag a b =
  Array.iteri
    (fun i va ->
      if va <> b.(i) then
        Alcotest.failf "%s: kernels disagree at %d: %h vs %h" tag i va b.(i))
    a

(* B·x for the tracked column set, x indexed by basis position *)
let apply_matrix m cur x =
  let b = Array.make m 0.0 in
  Array.iteri
    (fun pos entries -> List.iter (fun (i, v) -> b.(i) <- b.(i) +. (v *. x.(pos))) entries)
    cur;
  b

let check_round_trip tag m cur x rows coefs =
  let b = apply_matrix m cur x in
  let want = Array.make m 0.0 in
  Array.iteri (fun k i -> want.(i) <- coefs.(k)) rows;
  Array.iteri
    (fun i v ->
      if Float.abs (v -. want.(i)) > 1e-9 *. (1.0 +. Float.abs want.(i)) then
        Alcotest.failf "%s: round trip off at row %d: %.12g vs %.12g" tag i v want.(i))
    b

let test_random_sparse_triangular () =
  for seed = 1 to 40 do
    let rng = R.create (11_000 + seed) in
    let m = 5 + R.int rng 56 in
    let cols = random_sparse_matrix rng m in
    let th = factorized rng Basis.Hypersparse m cols in
    let td = factorized rng Basis.Dense_oracle m cols in
    (* current basis columns by position; updated as etas are applied *)
    let cur = Array.init m (fun i -> cols.(i)) in
    for pass = 1 to 3 do
      (* FTRAN: traversal vs oracle bit-identical, dense path to 1e-9 *)
      let rows, coefs = random_rhs rng m in
      let tag = Printf.sprintf "seed %d pass %d" seed pass in
      let xh = svec_dense m (Basis.ftran_col_sparse th rows coefs ~off:0 ~len:(Array.length rows)) in
      let xd = svec_dense m (Basis.ftran_col_sparse td rows coefs ~off:0 ~len:(Array.length rows)) in
      check_bit_identical (tag ^ " ftran") xh xd;
      let x_dense = Basis.ftran_col th rows coefs in
      Array.iteri
        (fun i v ->
          if Float.abs (v -. x_dense.(i)) > 1e-9 *. (1.0 +. Float.abs v) then
            Alcotest.failf "%s: sparse vs dense ftran at %d: %.12g vs %.12g" tag i v
              x_dense.(i))
        xh;
      check_round_trip (tag ^ " ftran") m cur xh rows coefs;
      (* BTRAN: a random row of the inverse, traversal vs oracle vs dense *)
      let r = R.int rng m in
      let yh = svec_dense m (Basis.btran_unit_sparse th r) in
      let yd = svec_dense m (Basis.btran_unit_sparse td r) in
      check_bit_identical (tag ^ " btran") yh yd;
      let y_dense = Basis.row_of_inverse th r in
      Array.iteri
        (fun i v ->
          if Float.abs (v -. y_dense.(i)) > 1e-9 *. (1.0 +. Float.abs v) then
            Alcotest.failf "%s: sparse vs dense btran at %d: %.12g vs %.12g" tag i v
              y_dense.(i))
        yh;
      (* push a product-form eta and keep testing against the updated basis:
         enter a fresh random column at the position of its largest alpha *)
      let erows, ecoefs = random_rhs rng m in
      let ah = Basis.ftran_col_sparse th erows ecoefs ~off:0 ~len:(Array.length erows) in
      let alpha = svec_dense m ah in
      let row = ref 0 in
      Array.iteri (fun i v -> if Float.abs v > Float.abs alpha.(!row) then row := i) alpha;
      if Float.abs alpha.(!row) > 0.1 then begin
        let ad = Basis.ftran_col_sparse td erows ecoefs ~off:0 ~len:(Array.length erows) in
        let okh = Basis.update_sparse th ~alpha:ah ~row:!row in
        let okd = Basis.update_sparse td ~alpha:ad ~row:!row in
        if okh <> okd then Alcotest.failf "%s: update verdicts differ" tag;
        if okh then
          cur.(!row) <-
            List.init (Array.length erows) (fun k -> (erows.(k), ecoefs.(k)))
      end
    done
  done

let test_dense_column_fallback () =
  (* one column touching every row: the traversal's reach is the entire
     factor pattern, forcing the full-scan fallback — which must stay
     bit-identical to the oracle and still solve correctly *)
  for seed = 1 to 10 do
    let rng = R.create (12_000 + seed) in
    let m = 20 + R.int rng 21 in
    let cols = random_sparse_matrix rng m in
    cols.(0) <-
      List.init m (fun i -> (i, if i = 0 then 3.0 +. R.float rng 2.0 else R.float rng 1.0 -. 0.5));
    let th = factorized rng Basis.Hypersparse m cols in
    let td = factorized rng Basis.Dense_oracle m cols in
    let rows = Array.init m (fun i -> i) in
    let coefs = Array.init m (fun _ -> R.float rng 4.0 -. 2.0) in
    let tag = Printf.sprintf "dense-col seed %d" seed in
    let xh = svec_dense m (Basis.ftran_col_sparse th rows coefs ~off:0 ~len:m) in
    let xd = svec_dense m (Basis.ftran_col_sparse td rows coefs ~off:0 ~len:m) in
    check_bit_identical tag xh xd;
    check_round_trip tag m (Array.init m (fun i -> cols.(i))) xh rows coefs
  done

(* ------------------------------------------------------------------ *)
(* Bound-flip dual ratio test (bound_flip.lp warm restart)             *)

let load_fixture name =
  match Lp_parse.parse_file (Filename.concat "fixtures" name) with
  | Ok std -> std
  | Error msg -> Alcotest.failf "%s: parse error: %s" name msg

let test_bound_flip_dual_restart () =
  let std = load_fixture "bound_flip.lp" in
  match Simplex.solve std with
  | Simplex.Optimal { basis; obj; _ } ->
    Alcotest.(check (float 1e-6)) "cold objective" (-10.5) obj;
    (* branch x3 down: its basic value 0.5 becomes an upper-bound
       violation, and the dual ratio test's two cheapest breakpoints (x4,
       x5) have boxes too small to absorb it — two bound flips, then one
       pivot brings x6 in *)
    let ub = Array.copy std.Model.ub in
    ub.(2) <- 0.0;
    List.iter
      (fun kernels ->
        match Simplex.solve ~basis ~ub ~kernels std with
        | Simplex.Optimal { obj; dual_iterations; kstats; _ } ->
          Alcotest.(check (float 1e-6)) "warm objective" (-9.725) obj;
          Alcotest.(check bool) "dual phase ran" true (dual_iterations > 0);
          Alcotest.(check int) "long-step bound flips" 2
            kstats.Simplex.bound_flips
        | _ -> Alcotest.fail "warm restart: expected optimal")
      [ Basis.Hypersparse; Basis.Dense_oracle ]
  | _ -> Alcotest.fail "bound_flip.lp: expected optimal"

(* ------------------------------------------------------------------ *)
(* Workspace reuse: per-solve allocation bound                         *)

let alloc_test_model () =
  let rng = R.create 4242 in
  let n = 60 and m = 30 in
  let mdl = Model.create () in
  let vars = Array.init n (fun _ -> Model.add_var ~lb:0.0 ~ub:10.0 mdl) in
  for _ = 1 to m do
    let k = 2 + R.int rng 4 in
    let picked = Array.init n (fun i -> i) in
    R.shuffle rng picked;
    let terms = List.init k (fun t -> (1.0 +. R.float rng 3.0, vars.(picked.(t)))) in
    ignore (Model.add_constraint mdl (Lin_expr.of_terms terms) Model.Le (10.0 +. R.float rng 30.0))
  done;
  Model.set_objective mdl
    (Lin_expr.of_terms (List.init n (fun j -> (-.(R.float rng 5.0), vars.(j)))));
  Model.compile mdl

let test_workspace_alloc_bound () =
  let std = alloc_test_model () in
  let basis =
    match Simplex.solve std with
    | Simplex.Optimal { basis; _ } -> basis
    | _ -> Alcotest.fail "alloc model: expected optimal"
  in
  let solves = 8 in
  let measure ws_of =
    let words0 = Gc.minor_words () in
    for _ = 1 to solves do
      match Simplex.solve ~ws:(ws_of ()) ~basis std with
      | Simplex.Optimal _ -> ()
      | _ -> Alcotest.fail "warm re-solve: expected optimal"
    done;
    (Gc.minor_words () -. words0) /. float_of_int solves
  in
  (* warm-up sizes the shared workspace so the measured loop only sees
     steady-state reuse *)
  let shared = Simplex.create_workspace () in
  (match Simplex.solve ~ws:shared ~basis std with
  | Simplex.Optimal _ -> ()
  | _ -> Alcotest.fail "warm-up: expected optimal");
  let reused = measure (fun () -> shared) in
  let fresh = measure (fun () -> Simplex.create_workspace ()) in
  (* the re-solve is pivot-free, so a reused workspace leaves only the
     result arrays (x, duals, basis snapshot + factorization copy): O(rows
     + cols + factor nnz) words, far under the fresh-workspace cost *)
  if reused >= fresh then
    Alcotest.failf "workspace reuse saves nothing: %.0f vs %.0f words/solve" reused fresh;
  if reused > 25_000.0 then
    Alcotest.failf "reused-workspace solve allocates %.0f words (bound 25000)" reused

(* ------------------------------------------------------------------ *)
(* Kernel-mode selection via the environment                           *)

let test_kernels_of_env () =
  let saved = Sys.getenv_opt "RAS_LP_KERNELS" in
  let restore () =
    match saved with Some v -> Unix.putenv "RAS_LP_KERNELS" v | None -> Unix.putenv "RAS_LP_KERNELS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "RAS_LP_KERNELS" "dense";
      Alcotest.(check bool) "dense forces the oracle" true
        (Basis.kernels_of_env () = Basis.Dense_oracle);
      Unix.putenv "RAS_LP_KERNELS" "sparse";
      Alcotest.(check bool) "anything else is hypersparse" true
        (Basis.kernels_of_env () = Basis.Hypersparse))

let suite =
  [
    Alcotest.test_case "random sparse systems: traversal == oracle, round trips" `Quick
      test_random_sparse_triangular;
    Alcotest.test_case "fully dense column falls back without diverging" `Quick
      test_dense_column_fallback;
    Alcotest.test_case "bound-flip dual ratio test (bound_flip.lp warm restart)" `Quick
      test_bound_flip_dual_restart;
    Alcotest.test_case "workspace reuse bounds per-solve allocation" `Quick
      test_workspace_alloc_bound;
    Alcotest.test_case "RAS_LP_KERNELS selects the kernel" `Quick test_kernels_of_env;
  ]
