(* Tests for the ras core: reservations, snapshots, symmetry classes, the
   MIP formulation and its heuristics, concretization, the async solver, the
   online mover, health replay, the emergency path and the whole system —
   including the paper's headline invariant: a reservation with an embedded
   buffer survives the loss of any single MSB. *)

open Ras
module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Generator = Ras_topology.Generator
module Hw = Ras_topology.Hardware
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request
module Unavail = Ras_failures.Unavail
module Model = Ras_mip.Model
module Simplex = Ras_mip.Simplex

let web = Service.make ~id:1 ~name:"web" ~profile:Service.Web ()
let ds = Service.make ~id:2 ~name:"ds" ~profile:Service.Data_store ()

(* ---------- shared solved fixture ---------- *)

type fixture = {
  broker : Broker.t;
  reservations : Reservation.t list;
  stats : Async_solver.stats;
}

let build_fixture () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let rng = Ras_stats.Rng.create 11 in
  let requests =
    Ras_workload.Request_gen.scenario rng ~region ~services:Service.default_catalog
      ~target_utilization:0.4
  in
  let reservations =
    List.map Reservation.of_request requests
    @ Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  let snapshot = Snapshot.take broker reservations in
  let params = { Async_solver.default_params with Async_solver.node_limit = 40 } in
  let stats = Async_solver.solve ~params snapshot in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover reservations;
  ignore (Online_mover.apply_plan mover stats.Async_solver.plan);
  { broker; reservations; stats }

let fixture = lazy (build_fixture ())

(* ---------- Reservation ---------- *)

let test_reservation_of_request () =
  let req =
    Capacity_request.make ~id:5 ~service:web ~rru:20.0 ~msb_spread_limit:0.2
      ~dc_affinity:[ (0, 0.9) ] ()
  in
  let r = Reservation.of_request req in
  Alcotest.(check int) "id" 5 r.Reservation.id;
  Alcotest.(check (float 1e-9)) "capacity" 20.0 r.Reservation.capacity_rru;
  Alcotest.(check bool) "guaranteed" false (Reservation.is_buffer r);
  Alcotest.(check bool) "accepts compute" true
    (Reservation.accepts r (Option.get (Hw.find_by_code "C3")));
  Alcotest.(check bool) "rejects storage" false
    (Reservation.accepts r (Option.get (Hw.find_by_code "C4-S1")))

let test_shared_buffer_reservation () =
  let r = Reservation.shared_buffer ~id:8000 ~category:Hw.Storage ~capacity_rru:50.0 in
  Alcotest.(check bool) "is buffer" true (Reservation.is_buffer r);
  Alcotest.(check bool) "no embedded buffer" false r.Reservation.embedded_buffer;
  Alcotest.(check bool) "accepts its category" true
    (Reservation.accepts r (Option.get (Hw.find_by_code "C4-S1")));
  Alcotest.(check bool) "rejects others" false
    (Reservation.accepts r (Option.get (Hw.find_by_code "C1")))

(* ---------- Snapshot ---------- *)

let test_snapshot_ownership_accounting () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let res = Reservation.of_request (Capacity_request.make ~id:1 ~service:web ~rru:5.0 ()) in
  (* bind two compute servers *)
  let bound = ref [] in
  Broker.iter broker ~f:(fun r ->
      if List.length !bound < 2 && res.Reservation.rru_of r.Broker.server.Region.hw > 0.0 then begin
        Broker.move broker r.Broker.server.Region.id (Broker.Reservation 1);
        bound := r.Broker.server.Region.id :: !bound
      end);
  let snap = Snapshot.take broker [ res ] in
  let expected =
    List.fold_left
      (fun acc id ->
        acc +. res.Reservation.rru_of (Broker.record broker id).Broker.server.Region.hw)
      0.0 !bound
  in
  Alcotest.(check (float 1e-9)) "current rru" expected (Snapshot.current_rru snap res);
  let by_msb = Snapshot.rru_by_msb snap res in
  Alcotest.(check (float 1e-9)) "per-msb sums to total" expected
    (Array.fold_left ( +. ) 0.0 by_msb)

let test_snapshot_excludes_unusable () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let res = Reservation.of_request (Capacity_request.make ~id:1 ~service:web ~rru:5.0 ()) in
  Broker.iter broker ~f:(fun r ->
      if res.Reservation.rru_of r.Broker.server.Region.hw > 0.0 then
        Broker.move broker r.Broker.server.Region.id (Broker.Reservation 1));
  let before = Snapshot.current_rru (Snapshot.take broker [ res ]) res in
  (* down one bound server with an unplanned event *)
  let victim =
    List.hd (Broker.servers_with_owner broker (Broker.Reservation 1))
  in
  Broker.mark_down broker victim Unavail.Correlated;
  let after = Snapshot.current_rru (Snapshot.take broker [ res ]) res in
  Alcotest.(check bool) "unusable capacity excluded" true (after < before);
  (* planned maintenance still counts (§3.5.1) *)
  Broker.mark_up broker victim;
  Broker.mark_down broker victim Unavail.Planned_maintenance;
  let planned = Snapshot.current_rru (Snapshot.take broker [ res ]) res in
  Alcotest.(check (float 1e-9)) "planned counts as usable" before planned

let test_snapshot_home_overlay () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  Broker.move broker 0 (Broker.Elastic 9000);
  let snap =
    Snapshot.take ~home_of:(fun id -> if id = 0 then Some Broker.Shared_buffer else None) broker []
  in
  Alcotest.(check bool) "lent server resolved home" true
    (Snapshot.current snap 0 = Broker.Shared_buffer)

(* ---------- Symmetry ---------- *)

let test_symmetry_partition () =
  let lazy { broker; reservations; _ } = fixture in
  let snap = Snapshot.take broker reservations in
  let sym = Symmetry.build snap in
  let usable = List.length (Snapshot.usable_servers snap) in
  Alcotest.(check int) "classes cover usable servers" usable (Symmetry.total_members sym);
  (* members are homogeneous *)
  Array.iter
    (fun (c : Symmetry.cls) ->
      Array.iter
        (fun id ->
          let v = Snapshot.view snap id in
          Alcotest.(check int) "hw matches" c.Symmetry.hw v.Snapshot.server.Region.hw.Hw.index;
          Alcotest.(check int) "msb matches" c.Symmetry.msb v.Snapshot.server.Region.loc.Region.msb;
          Alcotest.(check bool) "in_use matches" c.Symmetry.in_use v.Snapshot.in_use)
        c.Symmetry.members)
    sym.Symmetry.classes

let test_symmetry_rack_level_finer () =
  let lazy { broker; reservations; _ } = fixture in
  let snap = Snapshot.take broker reservations in
  let msb_level = Symmetry.build snap in
  let rack_level = Symmetry.build ~rack_level:true snap in
  Alcotest.(check bool) "rack classes >= msb classes" true
    (Symmetry.num_classes rack_level >= Symmetry.num_classes msb_level);
  Alcotest.(check bool) "grouped <= raw" true
    (Symmetry.grouped_variable_count msb_level ~reservations
    <= Symmetry.raw_variable_count msb_level ~reservations)

let test_symmetry_current_count () =
  let lazy { broker; reservations; _ } = fixture in
  let snap = Snapshot.take broker reservations in
  let sym = Symmetry.build snap in
  (* summed per-class counts for an owner equal the owner's usable servers *)
  let res = List.find (fun r -> not (Reservation.is_buffer r)) reservations in
  let owner = Broker.Reservation res.Reservation.id in
  let from_classes =
    Array.fold_left
      (fun acc c -> acc + Symmetry.current_count sym c owner)
      0 sym.Symmetry.classes
  in
  let direct =
    Broker.fold broker ~init:0 ~f:(fun acc r ->
        if r.Broker.current = owner && Broker.available r then acc + 1 else acc)
  in
  Alcotest.(check int) "class counts match broker" direct from_classes

(* ---------- Formulation ---------- *)

let formulation_fixture () =
  let lazy { broker; reservations; _ } = fixture in
  let snap = Snapshot.take broker reservations in
  let sym = Symmetry.build snap in
  (Formulation.build sym reservations, snap)

let test_status_quo_feasible () =
  let f, _ = formulation_fixture () in
  let std = Model.compile f.Formulation.model in
  match Model.check_solution std (Formulation.status_quo f) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_round_lp_feasible () =
  let f, _ = formulation_fixture () in
  let std = Model.compile f.Formulation.model in
  match Simplex.solve std with
  | Simplex.Optimal { x; _ } -> (
    let rounded = Formulation.round_lp f x in
    (match Model.check_solution std rounded with Ok () -> () | Error e -> Alcotest.fail e);
    let repaired = Formulation.repair f rounded in
    match Model.check_solution std repaired with Ok () -> () | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "LP should solve"

let test_repair_improves_shortfalls () =
  let f, _ = formulation_fixture () in
  let std = Model.compile f.Formulation.model in
  match Simplex.solve std with
  | Simplex.Optimal { x; _ } ->
    let rounded = Formulation.round_lp f x in
    let repaired = Formulation.repair f rounded in
    let total sol =
      List.fold_left (fun acc (_, v) -> acc +. v) 0.0 (Formulation.capacity_shortfalls f sol)
    in
    Alcotest.(check bool) "repair does not increase shortfall" true
      (total repaired <= total rounded +. 1e-6)
  | _ -> Alcotest.fail "LP should solve"

let test_encode_aux_semantics () =
  (* encode must set every pos-part auxiliary to exactly max(0, e) *)
  let f, _ = formulation_fixture () in
  let sq = Formulation.status_quo f in
  List.iter
    (fun (v, exprs) ->
      let expect =
        List.fold_left
          (fun acc e -> Float.max acc (Ras_mip.Lin_expr.eval e (fun i -> sq.(i))))
          0.0 exprs
      in
      Alcotest.(check (float 1e-6)) "aux at its floor" expect sq.(v))
    f.Formulation.aux_defs

let test_status_quo_zero_movement () =
  let f, _ = formulation_fixture () in
  let sq = Formulation.status_quo f in
  Alcotest.(check (float 1e-6)) "no in-use movement" 0.0
    (Formulation.movement_units f sq ~in_use:true);
  Alcotest.(check (float 1e-6)) "no idle movement" 0.0
    (Formulation.movement_units f sq ~in_use:false)

(* ---------- Concretize ---------- *)

let test_concretize_stability_and_cover () =
  let f, snap = formulation_fixture () in
  let sq = Formulation.status_quo f in
  let assignment = Formulation.decode f sq in
  let plan = Concretize.plan f assignment in
  Alcotest.(check int) "status quo has no moves" 0 (List.length plan.Concretize.moves);
  (* targets cover every usable classed server *)
  let sym = f.Formulation.symmetry in
  Alcotest.(check int) "targets cover classes" (Symmetry.total_members sym)
    (List.length plan.Concretize.targets);
  List.iter
    (fun (id, _) ->
      Alcotest.(check bool) "target ids usable" true (Snapshot.usable_at snap id))
    plan.Concretize.targets

let test_concretize_counts_respected () =
  let f, _ = formulation_fixture () in
  let std = Model.compile f.Formulation.model in
  match Simplex.solve std with
  | Simplex.Optimal { x; _ } ->
    let sol = Formulation.repair f (Formulation.round_lp f x) in
    let assignment = Formulation.decode f sol in
    let plan = Concretize.plan f assignment in
    (* per (class, reservation) the number of targeted servers equals the
       decoded count *)
    let target_of = Hashtbl.create 256 in
    List.iter (fun (id, o) -> Hashtbl.replace target_of id o) plan.Concretize.targets;
    List.iter
      (fun ((c : Symmetry.cls), (res : Reservation.t), count) ->
        let owner =
          match res.Reservation.kind with
          | Reservation.Guaranteed -> Broker.Reservation res.Reservation.id
          | Reservation.Random_failure_buffer _ -> Broker.Shared_buffer
        in
        let got =
          Array.fold_left
            (fun acc id -> if Hashtbl.find_opt target_of id = Some owner then acc + 1 else acc)
            0 c.Symmetry.members
        in
        (* shared-buffer owners pool across category reservations *)
        if not (Reservation.is_buffer res) then
          Alcotest.(check int) "count realized" count got)
      assignment.Formulation.counts
  | _ -> Alcotest.fail "LP should solve"

(* ---------- Async solver end-to-end ---------- *)

let test_solver_meets_capacity () =
  let lazy { broker; reservations; stats } = fixture in
  let snap = Snapshot.take broker reservations in
  let short_ids = List.map fst stats.Async_solver.shortfalls in
  List.iter
    (fun res ->
      if (not (Reservation.is_buffer res)) && not (List.mem res.Reservation.id short_ids) then begin
        let bound = Snapshot.current_rru snap res in
        Alcotest.(check bool)
          (Printf.sprintf "capacity met for %s" res.Reservation.name)
          true
          (bound >= res.Reservation.capacity_rru -. 1e-6)
      end)
    reservations

let test_embedded_buffer_survives_any_msb () =
  (* the paper's headline guarantee (expression 6): after losing ANY single
     MSB, a buffered reservation still holds its requested capacity *)
  let lazy { broker; reservations; stats } = fixture in
  let snap = Snapshot.take broker reservations in
  let short_ids = List.map fst stats.Async_solver.shortfalls in
  List.iter
    (fun res ->
      if
        res.Reservation.embedded_buffer
        && (not (Reservation.is_buffer res))
        && not (List.mem res.Reservation.id short_ids)
      then begin
        let per_msb = Snapshot.rru_by_msb snap res in
        let total = Array.fold_left ( +. ) 0.0 per_msb in
        Array.iteri
          (fun msb v ->
            Alcotest.(check bool)
              (Printf.sprintf "%s survives loss of MSB %d" res.Reservation.name msb)
              true
              (total -. v >= res.Reservation.capacity_rru -. 1e-6))
          per_msb
      end)
    reservations

let test_solver_duration_and_phases () =
  let lazy { stats; _ } = fixture in
  Alcotest.(check bool) "positive duration" true (stats.Async_solver.duration_s > 0.0);
  Alcotest.(check bool) "phase1 has variables" true
    (stats.Async_solver.phase1.Phases.grouped_vars > 0);
  Alcotest.(check bool) "raw >= grouped" true
    (stats.Async_solver.phase1.Phases.raw_vars >= stats.Async_solver.phase1.Phases.grouped_vars)

(* ---------- storage quorum spread (paragraph 3.3.2) ---------- *)

let test_quorum_cap_helper () =
  Alcotest.(check (float 1e-9)) "R=3 Q=2" (1.0 /. 3.0)
    (Capacity_request.quorum_cap ~replicas:3 ~quorum:2);
  Alcotest.(check (float 1e-9)) "R=5 Q=3" 0.4 (Capacity_request.quorum_cap ~replicas:5 ~quorum:3);
  Alcotest.(check bool) "bad quorum rejected" true
    (try
       ignore (Capacity_request.quorum_cap ~replicas:3 ~quorum:4);
       false
     with Invalid_argument _ -> true)

let test_quorum_spread_enforced () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let req =
    Capacity_request.make ~id:1 ~service:ds ~rru:12.0 ~embedded_buffer:false
      ~hard_msb_cap:(Capacity_request.quorum_cap ~replicas:3 ~quorum:2)
      ~msb_spread_limit:0.5 ()
  in
  let reservations = [ Reservation.of_request req ] in
  let stats = Async_solver.solve (Snapshot.take broker reservations) in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover reservations;
  ignore (Online_mover.apply_plan mover stats.Async_solver.plan);
  let snap = Snapshot.take broker reservations in
  let res = List.hd reservations in
  let per_msb = Snapshot.rru_by_msb snap res in
  let total = Array.fold_left ( +. ) 0.0 per_msb in
  Alcotest.(check bool) "capacity met" true (total >= 12.0 -. 1e-6);
  let worst = Array.fold_left Float.max 0.0 per_msb /. total in
  (* one server of granularity tolerance on top of the 1/3 cap *)
  Alcotest.(check bool)
    (Printf.sprintf "max MSB share %.2f within quorum cap" worst)
    true
    (worst <= (1.0 /. 3.0) +. 0.15)

(* ---------- Online mover ---------- *)

let test_mover_failure_replacement () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let res = Reservation.of_request (Capacity_request.make ~id:1 ~service:web ~rru:5.0 ()) in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover [ res ];
  (* one server in the reservation, one compatible in the shared buffer *)
  let compute =
    Broker.fold broker ~init:[] ~f:(fun acc r ->
        if res.Reservation.rru_of r.Broker.server.Region.hw > 0.0 then
          r.Broker.server.Region.id :: acc
        else acc)
  in
  (match compute with
  | a :: b :: _ ->
    Broker.move broker a (Broker.Reservation 1);
    Broker.move broker b Broker.Shared_buffer;
    Broker.mark_down broker a Unavail.Unplanned_hw;
    Alcotest.(check int) "replacement done" 1 (Online_mover.replacements_done mover);
    Alcotest.(check bool) "buffer server moved in" true
      ((Broker.record broker b).Broker.current = Broker.Reservation 1)
  | _ -> Alcotest.fail "fixture too small")

let test_mover_replacement_fails_without_buffer () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let res = Reservation.of_request (Capacity_request.make ~id:1 ~service:web ~rru:5.0 ()) in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover [ res ];
  Broker.move broker 0 (Broker.Reservation 1);
  Broker.mark_down broker 0 Unavail.Unplanned_hw;
  Alcotest.(check int) "no replacement available" 1 (Online_mover.replacements_failed mover)

let test_mover_planned_no_replacement () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let res = Reservation.of_request (Capacity_request.make ~id:1 ~service:web ~rru:5.0 ()) in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover [ res ];
  Broker.move broker 0 (Broker.Reservation 1);
  Broker.mark_down broker 0 Unavail.Planned_maintenance;
  Alcotest.(check int) "planned events need no mover action" 0
    (Online_mover.replacements_done mover + Online_mover.replacements_failed mover)

let test_mover_lend_and_revoke () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let mover = Online_mover.create broker in
  Broker.move broker 0 Broker.Shared_buffer;
  Broker.move broker 1 Broker.Shared_buffer;
  let lent = Online_mover.lend_idle mover ~elastic_id:9000 ~max_servers:5 in
  Alcotest.(check int) "both lent" 2 lent;
  Alcotest.(check int) "loans tracked" 2 (Online_mover.loans_outstanding mover);
  Alcotest.(check bool) "owner is elastic" true
    ((Broker.record broker 0).Broker.current = Broker.Elastic 9000);
  Alcotest.(check bool) "home resolved" true
    (Online_mover.home_of mover 0 = Some Broker.Shared_buffer);
  let revoked = Online_mover.revoke mover ~elastic_id:9000 in
  Alcotest.(check int) "revoked" 2 revoked;
  Alcotest.(check bool) "back home" true
    ((Broker.record broker 0).Broker.current = Broker.Shared_buffer);
  Alcotest.(check int) "no loans left" 0 (Online_mover.loans_outstanding mover)

let test_mover_replacement_revokes_loan () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let res = Reservation.of_request (Capacity_request.make ~id:1 ~service:web ~rru:5.0 ()) in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover [ res ];
  let compute =
    Broker.fold broker ~init:[] ~f:(fun acc r ->
        if res.Reservation.rru_of r.Broker.server.Region.hw > 0.0 then
          r.Broker.server.Region.id :: acc
        else acc)
  in
  match compute with
  | a :: b :: _ ->
    Broker.move broker a (Broker.Reservation 1);
    Broker.move broker b Broker.Shared_buffer;
    ignore (Online_mover.lend_idle mover ~elastic_id:9000 ~max_servers:5);
    Alcotest.(check bool) "b lent out" true
      ((Broker.record broker b).Broker.current = Broker.Elastic 9000);
    Broker.mark_down broker a Unavail.Unplanned_hw;
    Alcotest.(check bool) "loan revoked for replacement" true
      ((Broker.record broker b).Broker.current = Broker.Reservation 1)
  | _ -> Alcotest.fail "fixture too small"

let test_solver_converges_to_stability () =
  (* continuous optimization must reach a fixed point: after a few
     solve/apply rounds on a static region, plans stop moving servers *)
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let rng = Ras_stats.Rng.create 11 in
  let requests =
    Ras_workload.Request_gen.scenario rng ~region ~services:Service.default_catalog
      ~target_utilization:0.4
  in
  let reservations =
    List.map Reservation.of_request requests
    @ Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover reservations;
  let params = { Async_solver.default_params with Async_solver.node_limit = 0 } in
  let last_moves = ref max_int in
  for _ = 1 to 4 do
    let stats = Async_solver.solve ~params (Snapshot.take broker reservations) in
    ignore (Online_mover.apply_plan mover stats.Async_solver.plan);
    last_moves := List.length stats.Async_solver.plan.Concretize.moves
  done;
  Alcotest.(check bool)
    (Printf.sprintf "converged (last plan had %d moves)" !last_moves)
    true (!last_moves <= 2)

let test_mover_replacement_sla () =
  (* with an engine attached, replacements land one simulated minute after
     the failure, not before (paragraph 3.3.1's replacement SLO) *)
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let engine = Ras_sim.Engine.create () in
  let res = Reservation.of_request (Capacity_request.make ~id:1 ~service:web ~rru:5.0 ()) in
  let mover = Online_mover.create ~engine broker in
  Online_mover.set_reservations mover [ res ];
  let compute =
    Broker.fold broker ~init:[] ~f:(fun acc r ->
        if res.Reservation.rru_of r.Broker.server.Region.hw > 0.0 then
          r.Broker.server.Region.id :: acc
        else acc)
  in
  match compute with
  | a :: b :: _ ->
    Broker.move broker a (Broker.Reservation 1);
    Broker.move broker b Broker.Shared_buffer;
    Ras_sim.Engine.run_until engine 10.0;
    Broker.mark_down broker a Unavail.Unplanned_hw;
    Alcotest.(check int) "nothing replaced synchronously" 0
      (Online_mover.replacements_done mover);
    Ras_sim.Engine.run_until engine (10.0 +. (0.5 /. 60.0));
    Alcotest.(check int) "still pending at 30s" 0 (Online_mover.replacements_done mover);
    Ras_sim.Engine.run_until engine (10.0 +. (1.5 /. 60.0));
    Alcotest.(check int) "replaced within the minute" 1
      (Online_mover.replacements_done mover)
  | _ -> Alcotest.fail "fixture too small"

let test_mover_skips_recovered_server () =
  (* if the server comes back before the one-minute mark, no replacement is
     spent on it *)
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let engine = Ras_sim.Engine.create () in
  let res = Reservation.of_request (Capacity_request.make ~id:1 ~service:web ~rru:5.0 ()) in
  let mover = Online_mover.create ~engine broker in
  Online_mover.set_reservations mover [ res ];
  Broker.move broker 0 (Broker.Reservation 1);
  Broker.move broker 1 Broker.Shared_buffer;
  Broker.mark_down broker 0 Unavail.Unplanned_sw;
  Ras_sim.Engine.run_until engine (0.5 /. 60.0);
  Broker.mark_up broker 0;
  Ras_sim.Engine.run_until engine 1.0;
  Alcotest.(check int) "no replacement for a bounced server" 0
    (Online_mover.replacements_done mover)

(* ---------- Health ---------- *)

let test_health_overlap_severity () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let engine = Ras_sim.Engine.create () in
  let events =
    [
      { Unavail.id = 0; scope = Unavail.Server 0; kind = Unavail.Planned_maintenance; start_h = 1.0; duration_h = 10.0 };
      { Unavail.id = 1; scope = Unavail.Server 0; kind = Unavail.Correlated; start_h = 2.0; duration_h = 2.0 };
    ]
  in
  let _ = Health.install engine broker events in
  Ras_sim.Engine.run_until engine 1.5;
  Alcotest.(check bool) "planned active" true
    ((Broker.record broker 0).Broker.down = Some Unavail.Planned_maintenance);
  Ras_sim.Engine.run_until engine 3.0;
  Alcotest.(check bool) "correlated overrides" true
    ((Broker.record broker 0).Broker.down = Some Unavail.Correlated);
  Ras_sim.Engine.run_until engine 5.0;
  Alcotest.(check bool) "falls back to planned" true
    ((Broker.record broker 0).Broker.down = Some Unavail.Planned_maintenance);
  Ras_sim.Engine.run_until engine 12.0;
  Alcotest.(check bool) "healthy at the end" true (Broker.healthy (Broker.record broker 0))

(* ---------- Emergency ---------- *)

let test_emergency_grant () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let res = Reservation.of_request (Capacity_request.make ~id:1 ~service:web ~rru:4.0 ()) in
  let grant = Emergency.grant broker ~reservation:res ~rru:4.0 ~allow_buffer:false in
  Alcotest.(check bool) "granted" true (grant.Emergency.granted_rru >= 4.0);
  Alcotest.(check int) "nothing from buffer" 0 grant.Emergency.took_from_buffer;
  List.iter
    (fun id ->
      Alcotest.(check bool) "bound directly" true
        ((Broker.record broker id).Broker.current = Broker.Reservation 1))
    grant.Emergency.servers

let test_emergency_buffer_opt_in () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  (* put ALL compute in the shared buffer so the free pool cannot satisfy *)
  let res = Reservation.of_request (Capacity_request.make ~id:1 ~service:web ~rru:2.0 ()) in
  Broker.iter broker ~f:(fun r ->
      if res.Reservation.rru_of r.Broker.server.Region.hw > 0.0 then
        Broker.move broker r.Broker.server.Region.id Broker.Shared_buffer);
  let no_buffer = Emergency.grant broker ~reservation:res ~rru:2.0 ~allow_buffer:false in
  Alcotest.(check (float 1e-9)) "nothing without opt-in" 0.0 no_buffer.Emergency.granted_rru;
  let with_buffer = Emergency.grant broker ~reservation:res ~rru:2.0 ~allow_buffer:true in
  Alcotest.(check bool) "buffer drained with opt-in" true
    (with_buffer.Emergency.granted_rru >= 2.0 && with_buffer.Emergency.took_from_buffer > 0)

let test_solve_repairs_emergency_damage () =
  (* the out-of-band path may drain the shared buffer; the next solve must
     restore the buffer reservation to its capacity (paper §5.4) *)
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let reservations =
    Buffers.shared_buffer_reservations region ~fraction:0.05 ~first_id:8000
  in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover reservations;
  let params = { Async_solver.default_params with Async_solver.node_limit = 0 } in
  let solve_apply () =
    let stats = Async_solver.solve ~params (Snapshot.take broker reservations) in
    ignore (Online_mover.apply_plan mover stats.Async_solver.plan)
  in
  solve_apply ();
  let buffer_capacity snap =
    List.fold_left
      (fun acc res -> acc +. Snapshot.current_rru snap res)
      0.0 reservations
  in
  let before = buffer_capacity (Snapshot.take broker reservations) in
  Alcotest.(check bool) "buffers filled" true (before > 0.0);
  (* occupy the free compute pool so the urgent grant must dip into the
     shared buffer *)
  let urgent = Reservation.of_request (Capacity_request.make ~id:99 ~service:web ~rru:8.0 ()) in
  Broker.iter broker ~f:(fun r ->
      if
        r.Broker.current = Broker.Free
        && urgent.Reservation.rru_of r.Broker.server.Region.hw > 0.0
      then Broker.move broker r.Broker.server.Region.id (Broker.Reservation 77));
  let grant = Emergency.grant broker ~reservation:urgent ~rru:8.0 ~allow_buffer:true in
  Alcotest.(check bool) "emergency took buffer servers" true
    (grant.Emergency.took_from_buffer > 0);
  let drained = buffer_capacity (Snapshot.take broker reservations) in
  Alcotest.(check bool) "buffer depleted" true (drained < before);
  (* release the artificial squatter, then the next solve (with the urgent
     reservation now a first-class citizen) refills the shared buffer *)
  Broker.iter broker ~f:(fun r ->
      if r.Broker.current = Broker.Reservation 77 then
        Broker.move broker r.Broker.server.Region.id Broker.Free);
  let reservations' = urgent :: reservations in
  Online_mover.set_reservations mover reservations';
  let stats = Async_solver.solve ~params (Snapshot.take broker reservations') in
  ignore (Online_mover.apply_plan mover stats.Async_solver.plan);
  let snap = Snapshot.take broker reservations' in
  List.iter
    (fun res ->
      Alcotest.(check bool)
        (Printf.sprintf "%s restored" res.Reservation.name)
        true
        (Snapshot.current_rru snap res >= res.Reservation.capacity_rru -. 1e-6))
    reservations;
  Alcotest.(check bool) "urgent reservation kept its capacity" true
    (Snapshot.current_rru snap urgent >= 8.0 -. 1e-6)

(* ---------- Buffers ---------- *)

let test_shared_buffer_sizing () =
  let region = Generator.generate Generator.small_params in
  let buffers = Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000 in
  Alcotest.(check bool) "at least one category" true (buffers <> []);
  List.iter
    (fun b ->
      Alcotest.(check bool) "buffer kind" true (Reservation.is_buffer b);
      Alcotest.(check bool) "positive capacity" true (b.Reservation.capacity_rru >= 1.0))
    buffers

let test_buffer_bounds_ordering () =
  let lazy { broker; reservations; _ } = fixture in
  let snap = Snapshot.take broker reservations in
  let perfect = Buffers.perfect_spread_bound (Broker.region broker) in
  let hw_bound = Buffers.hardware_aware_bound snap reservations in
  let achieved = Buffers.embedded_buffer_fraction snap in
  Alcotest.(check (float 1e-9)) "perfect bound = 1/6" (1.0 /. 6.0) perfect;
  if not (Float.is_nan hw_bound) then
    Alcotest.(check bool) "hardware bound >= perfect - eps" true (hw_bound >= perfect -. 0.02);
  if not (Float.is_nan achieved) && not (Float.is_nan hw_bound) then
    Alcotest.(check bool) "achieved >= hardware bound - eps" true (achieved >= hw_bound -. 0.02)

(* ---------- Explain ---------- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let test_explain_reports () =
  let lazy { broker; reservations; stats } = fixture in
  let snap = Snapshot.take broker reservations in
  let res = List.find (fun r -> not (Reservation.is_buffer r)) reservations in
  let report = Explain.reservation_report snap res in
  Alcotest.(check bool) "names the reservation" true (contains report res.Reservation.name);
  Alcotest.(check bool) "mentions spread" true (contains report "spread");
  let solve = Explain.solve_report stats in
  Alcotest.(check bool) "mentions phases" true (contains solve "phase 1");
  let reason = Explain.shortfall_reason snap res ~shortfall:1.0 in
  Alcotest.(check bool) "reason non-empty" true (String.length reason > 20)

let test_shadow_prices_surface_binding_rows () =
  (* a reservation competing for scarce GPU hardware makes its capacity row
     (or the GPU supply rows) carry a non-trivial shadow price *)
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let ml =
    Service.make ~id:1 ~name:"ml" ~profile:Service.Ml_training ~min_generation:2 ()
  in
  let req =
    Capacity_request.make ~id:1 ~service:ml ~rru:500.0 ~embedded_buffer:false
      ~msb_spread_limit:0.5 ()
  in
  let reservations = [ Reservation.of_request req ] in
  let result = Phases.run ~mip_node_limit:0 (Snapshot.take broker reservations) reservations in
  let prices = Explain.shadow_prices ~top:5 result in
  Alcotest.(check bool) "some constraint binds" true (prices <> []);
  List.iter
    (fun (name, price) ->
      Alcotest.(check bool) "named row" true (String.length name > 0);
      Alcotest.(check bool) "non-trivial price" true (Float.abs price > 1e-6))
    prices

(* ---------- System ---------- *)

let test_system_end_to_end () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let rng = Ras_stats.Rng.create 11 in
  let requests =
    Ras_workload.Request_gen.scenario rng ~region ~services:Service.default_catalog
      ~target_utilization:0.4
  in
  let config =
    {
      System.default_config with
      System.solver = { Async_solver.default_params with Async_solver.node_limit = 0 };
    }
  in
  let sys = System.create ~config broker in
  List.iter (System.add_request sys) requests;
  let failures =
    Ras_failures.Failure_model.generate (Ras_stats.Rng.create 5) region
      Ras_failures.Failure_model.calm_params ~horizon_days:1.0
  in
  System.install_failures sys failures;
  System.start sys;
  System.run sys ~until_h:24.0;
  Alcotest.(check bool) "solves happened" true (List.length (System.solve_history sys) >= 24);
  let metrics = System.metrics sys in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " recorded") true (Ras_sim.Metrics.find metrics name <> None))
    [ "max_msb_share"; "power_variance"; "moves_in_use"; "moves_unused"; "unavailable_frac" ];
  (* reservations hold their capacity at the end *)
  let snap = System.snapshot sys in
  let last_shortfalls =
    match List.rev (System.solve_history sys) with
    | last :: _ -> List.map fst last.Async_solver.shortfalls
    | [] -> []
  in
  List.iter
    (fun res ->
      if (not (Reservation.is_buffer res)) && not (List.mem res.Reservation.id last_shortfalls)
      then
        Alcotest.(check bool)
          (Printf.sprintf "%s capacity held" res.Reservation.name)
          true
          (Snapshot.current_rru snap res >= res.Reservation.capacity_rru -. 1e-6))
    (System.reservations sys)

let test_system_remove_reservation () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let sys = System.create broker in
  let req = Capacity_request.make ~id:1 ~service:ds ~rru:4.0 () in
  System.add_request sys req;
  ignore (System.solve_now sys);
  Alcotest.(check bool) "servers bound" true
    (Broker.count_owner broker (Broker.Reservation 1) > 0);
  System.remove_reservation sys 1;
  Alcotest.(check int) "servers released" 0 (Broker.count_owner broker (Broker.Reservation 1))

let suite =
  [
    Alcotest.test_case "reservation of_request" `Quick test_reservation_of_request;
    Alcotest.test_case "shared buffer reservation" `Quick test_shared_buffer_reservation;
    Alcotest.test_case "snapshot ownership" `Quick test_snapshot_ownership_accounting;
    Alcotest.test_case "snapshot excludes unusable" `Quick test_snapshot_excludes_unusable;
    Alcotest.test_case "snapshot home overlay" `Quick test_snapshot_home_overlay;
    Alcotest.test_case "symmetry partition" `Slow test_symmetry_partition;
    Alcotest.test_case "symmetry rack level finer" `Slow test_symmetry_rack_level_finer;
    Alcotest.test_case "symmetry current_count" `Slow test_symmetry_current_count;
    Alcotest.test_case "status quo feasible" `Slow test_status_quo_feasible;
    Alcotest.test_case "round_lp + repair feasible" `Slow test_round_lp_feasible;
    Alcotest.test_case "repair improves shortfalls" `Slow test_repair_improves_shortfalls;
    Alcotest.test_case "encode aux semantics" `Slow test_encode_aux_semantics;
    Alcotest.test_case "status quo zero movement" `Slow test_status_quo_zero_movement;
    Alcotest.test_case "concretize stability" `Slow test_concretize_stability_and_cover;
    Alcotest.test_case "concretize counts" `Slow test_concretize_counts_respected;
    Alcotest.test_case "solver meets capacity" `Slow test_solver_meets_capacity;
    Alcotest.test_case "embedded buffer survives any MSB" `Slow test_embedded_buffer_survives_any_msb;
    Alcotest.test_case "solver duration/phases" `Slow test_solver_duration_and_phases;
    Alcotest.test_case "quorum cap helper" `Quick test_quorum_cap_helper;
    Alcotest.test_case "quorum spread enforced" `Slow test_quorum_spread_enforced;
    Alcotest.test_case "mover failure replacement" `Quick test_mover_failure_replacement;
    Alcotest.test_case "mover replacement fails w/o buffer" `Quick test_mover_replacement_fails_without_buffer;
    Alcotest.test_case "mover ignores planned" `Quick test_mover_planned_no_replacement;
    Alcotest.test_case "mover lend and revoke" `Quick test_mover_lend_and_revoke;
    Alcotest.test_case "mover replacement revokes loan" `Quick test_mover_replacement_revokes_loan;
    Alcotest.test_case "solver converges to stability" `Slow test_solver_converges_to_stability;
    Alcotest.test_case "mover replacement SLA" `Quick test_mover_replacement_sla;
    Alcotest.test_case "mover skips recovered server" `Quick test_mover_skips_recovered_server;
    Alcotest.test_case "health overlap severity" `Quick test_health_overlap_severity;
    Alcotest.test_case "emergency grant" `Quick test_emergency_grant;
    Alcotest.test_case "emergency buffer opt-in" `Quick test_emergency_buffer_opt_in;
    Alcotest.test_case "solve repairs emergency damage" `Slow test_solve_repairs_emergency_damage;
    Alcotest.test_case "shared buffer sizing" `Quick test_shared_buffer_sizing;
    Alcotest.test_case "buffer bounds ordering" `Slow test_buffer_bounds_ordering;
    Alcotest.test_case "explain reports" `Slow test_explain_reports;
    Alcotest.test_case "shadow prices surface binding rows" `Quick
      test_shadow_prices_surface_binding_rows;
    Alcotest.test_case "system end to end" `Slow test_system_end_to_end;
    Alcotest.test_case "system remove reservation" `Quick test_system_remove_reservation;
  ]
