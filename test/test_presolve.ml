(* Tests for ras_mip presolve reductions and the dual values exposed by the
   simplex at optimality. *)

open Ras_mip

let compile_of build =
  let m = Model.create () in
  let r = build m in
  (Model.compile m, r)

let test_singleton_row_becomes_bound () =
  let std, x =
    compile_of (fun m ->
        let x = Model.add_var ~ub:10.0 m in
        let _ = Model.add_constraint m (Lin_expr.scale 2.0 (Lin_expr.var x)) Model.Le 6.0 in
        x)
  in
  match Presolve.run std with
  | Presolve.Reduced { std = reduced; dropped_rows; _ } ->
    Alcotest.(check int) "row dropped" 1 dropped_rows;
    Alcotest.(check int) "no rows left" 0 reduced.Model.nrows;
    Alcotest.(check (float 1e-9)) "ub tightened" 3.0 reduced.Model.ub.(x)
  | Presolve.Proven_infeasible r -> Alcotest.fail r

let test_fixed_variable_substitution () =
  let std, (x, y) =
    compile_of (fun m ->
        let x = Model.add_var ~lb:2.0 ~ub:2.0 m in
        let y = Model.add_var ~ub:10.0 m in
        (* x + y <= 5 becomes y <= 3 (then a bound, then dropped) *)
        let _ = Model.add_constraint m Lin_expr.(add (var x) (var y)) Model.Le 5.0 in
        Model.set_objective m (Lin_expr.of_terms [ (1.0, x); (-1.0, y) ]);
        (x, y))
  in
  match Presolve.run std with
  | Presolve.Reduced { std = reduced; fixed; _ } ->
    Alcotest.(check bool) "x reported fixed" true (List.mem_assoc x fixed);
    Alcotest.(check (float 1e-9)) "x value" 2.0 (List.assoc x fixed);
    Alcotest.(check (float 1e-9)) "offset carries x's cost" 2.0 reduced.Model.obj_offset;
    Alcotest.(check (float 1e-9)) "y bound tightened" 3.0 reduced.Model.ub.(y);
    Alcotest.(check int) "all rows gone" 0 reduced.Model.nrows
  | Presolve.Proven_infeasible r -> Alcotest.fail r

let test_integer_bound_rounding () =
  let std, x =
    compile_of (fun m ->
        let x = Model.add_var ~lb:0.3 ~ub:4.7 ~kind:Model.Integer m in
        x)
  in
  match Presolve.run std with
  | Presolve.Reduced { std = reduced; _ } ->
    Alcotest.(check (float 1e-9)) "lb ceil" 1.0 reduced.Model.lb.(x);
    Alcotest.(check (float 1e-9)) "ub floor" 4.0 reduced.Model.ub.(x)
  | Presolve.Proven_infeasible r -> Alcotest.fail r

let test_infeasible_window_detected () =
  let std, _ =
    compile_of (fun m ->
        let x = Model.add_var ~lb:0.4 ~ub:0.6 ~kind:Model.Integer m in
        x)
  in
  match Presolve.run std with
  | Presolve.Proven_infeasible _ -> ()
  | Presolve.Reduced _ -> Alcotest.fail "0.4 <= int <= 0.6 must be infeasible"

let test_infeasible_row_detected () =
  let std, _ =
    compile_of (fun m ->
        let x = Model.add_var ~ub:1.0 m in
        let y = Model.add_var ~ub:1.0 m in
        let _ = Model.add_constraint m Lin_expr.(add (var x) (var y)) Model.Ge 5.0 in
        (x, y))
  in
  match Presolve.run std with
  | Presolve.Proven_infeasible _ -> ()
  | Presolve.Reduced _ -> Alcotest.fail "activity bound should prove infeasibility"

let test_redundant_row_dropped () =
  let std, _ =
    compile_of (fun m ->
        let x = Model.add_var ~ub:1.0 m in
        let y = Model.add_var ~ub:1.0 m in
        (* x + y <= 5 can never bind *)
        let _ = Model.add_constraint m Lin_expr.(add (var x) (var y)) Model.Le 5.0 in
        (x, y))
  in
  match Presolve.run std with
  | Presolve.Reduced { std = reduced; dropped_rows; _ } ->
    Alcotest.(check int) "dropped" 1 dropped_rows;
    Alcotest.(check int) "empty model" 0 reduced.Model.nrows
  | Presolve.Proven_infeasible r -> Alcotest.fail r

let test_zero_coef_on_free_var () =
  (* a zero coefficient multiplied against a free variable's infinite bound
     used to poison the row's activity bounds with NaN, so neither redundancy
     nor infeasibility was ever detected.  Model.compile filters exact zeros,
     so forge one into the compiled std the way a numerically cancelled
     coefficient would appear. *)
  let forge_zero std f =
    Array.iteri
      (fun k j -> if j = f then std.Model.row_coefs.(0).(k) <- 0.0)
      std.Model.row_cols.(0)
  in
  let build sense rhs m =
    let f = Model.add_var ~name:"f" ~lb:neg_infinity ~ub:infinity m in
    let y = Model.add_var ~name:"y" ~ub:1.0 m in
    let _ = Model.add_constraint m Lin_expr.(add (var f) (var y)) sense rhs in
    f
  in
  let std, f = compile_of (build Model.Le 100.0) in
  forge_zero std f;
  (match Presolve.run std with
  | Presolve.Reduced { dropped_rows; _ } ->
    Alcotest.(check int) "redundant row dropped despite 0 coef" 1 dropped_rows
  | Presolve.Proven_infeasible r -> Alcotest.fail r);
  (* with the zero skipped, 0*f + y >= 10 is provably unsatisfiable *)
  let std, f = compile_of (build Model.Ge 10.0) in
  forge_zero std f;
  match Presolve.run std with
  | Presolve.Proven_infeasible _ -> ()
  | Presolve.Reduced _ -> Alcotest.fail "unsatisfiable row not detected"

let test_presolve_preserves_optimum () =
  (* knapsack solved with and without presolve must agree *)
  let build m =
    let a = Model.add_var ~kind:Model.Integer ~ub:1.0 m in
    let b = Model.add_var ~kind:Model.Integer ~ub:1.0 m in
    let c = Model.add_var ~lb:1.0 ~ub:1.0 m in
    (* c fixed *)
    let _ =
      Model.add_constraint m (Lin_expr.of_terms [ (2.0, a); (3.0, b); (1.0, c) ]) Model.Le 4.0
    in
    Model.set_objective m (Lin_expr.of_terms [ (-5.0, a); (-4.0, b); (-3.0, c) ]);
    (a, b, c)
  in
  let std, _ = compile_of build in
  let out = Branch_bound.solve std in
  Alcotest.(check (float 1e-6)) "optimal with fixed var" (-8.0) out.Branch_bound.objective;
  match out.Branch_bound.solution with
  | Some sol -> (
    match Model.check_solution std sol with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("restored solution invalid: " ^ e))
  | None -> Alcotest.fail "no solution"

let test_restore () =
  let restored = Presolve.restore ~fixed:[ (1, 7.0) ] [| 1.0; 0.0; 3.0 |] in
  Alcotest.(check (array (float 1e-9))) "fixed written back" [| 1.0; 7.0; 3.0 |] restored

let test_duals_of_binding_constraint () =
  (* min -x st x <= 4 (x unbounded above otherwise): dual of the row is the
     objective improvement per unit of rhs: -1 *)
  let std, _ =
    compile_of (fun m ->
        let x = Model.add_var m in
        let _ = Model.add_constraint m (Lin_expr.var x) Model.Le 4.0 in
        Model.set_objective m (Lin_expr.term (-1.0) x);
        x)
  in
  match Simplex.solve std with
  | Simplex.Optimal { obj; duals; _ } ->
    Alcotest.(check (float 1e-6)) "objective" (-4.0) obj;
    Alcotest.(check int) "one dual" 1 (Array.length duals);
    Alcotest.(check (float 1e-6)) "shadow price" (-1.0) duals.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_duals_zero_when_slack () =
  (* the constraint never binds: its shadow price is 0 *)
  let std, _ =
    compile_of (fun m ->
        let x = Model.add_var ~ub:1.0 m in
        let _ = Model.add_constraint m (Lin_expr.var x) Model.Le 100.0 in
        Model.set_objective m (Lin_expr.term (-1.0) x);
        x)
  in
  match Simplex.solve std with
  | Simplex.Optimal { duals; _ } ->
    Alcotest.(check (float 1e-6)) "non-binding row" 0.0 duals.(0)
  | _ -> Alcotest.fail "expected optimal"

let prop_presolve_equivalent =
  (* random IPs: solving with internal presolve (default path) matches a
     brute-force enumeration — inherited from the main B&B property but with
     bound structures presolve likes (fixed vars, singleton rows) *)
  QCheck.Test.make ~name:"presolve preserves optima" ~count:200 QCheck.int (fun seed ->
      let module R = Ras_stats.Rng in
      let rng = R.create seed in
      let n = 2 + R.int rng 3 in
      let m = Model.create () in
      let ubs = Array.init n (fun _ -> float_of_int (R.int rng 4)) in
      let vars =
        Array.init n (fun i ->
            (* some variables arrive pre-fixed *)
            let lb = if R.int rng 4 = 0 then ubs.(i) else 0.0 in
            Model.add_var ~lb ~ub:ubs.(i) ~kind:Model.Integer m)
      in
      (* a singleton row and a general row *)
      let j = R.int rng n in
      let _ =
        Model.add_constraint m (Lin_expr.var vars.(j)) Model.Le (float_of_int (R.int rng 5))
      in
      let cs = Array.init n (fun _ -> float_of_int (R.int rng 7 - 3)) in
      let _ =
        Model.add_constraint m
          (Lin_expr.of_terms (List.init n (fun i -> (cs.(i), vars.(i)))))
          Model.Le
          (float_of_int (R.int rng 10))
      in
      let obj = Array.init n (fun _ -> float_of_int (R.int rng 7 - 3)) in
      Model.set_objective m (Lin_expr.of_terms (List.init n (fun i -> (obj.(i), vars.(i)))));
      let std = Model.compile m in
      (* brute force *)
      let best = ref infinity in
      let x = Array.make n 0.0 in
      let rec enum i =
        if i = n then begin
          match Model.check_solution std x with
          | Ok () ->
            let v = ref 0.0 in
            Array.iteri (fun k xv -> v := !v +. (obj.(k) *. xv)) x;
            if !v < !best then best := !v
          | Error _ -> ()
        end
        else
          for v = int_of_float std.Model.lb.(i) to int_of_float std.Model.ub.(i) do
            x.(i) <- float_of_int v;
            enum (i + 1)
          done
      in
      enum 0;
      let out = Branch_bound.solve std in
      match (out.Branch_bound.status, Float.is_finite !best) with
      | Branch_bound.Optimal, true -> Float.abs (out.Branch_bound.objective -. !best) <= 1e-6
      | Branch_bound.Infeasible, false -> true
      | _ -> false)

let suite =
  [
    Alcotest.test_case "singleton row to bound" `Quick test_singleton_row_becomes_bound;
    Alcotest.test_case "fixed variable substitution" `Quick test_fixed_variable_substitution;
    Alcotest.test_case "integer bound rounding" `Quick test_integer_bound_rounding;
    Alcotest.test_case "infeasible integer window" `Quick test_infeasible_window_detected;
    Alcotest.test_case "infeasible row" `Quick test_infeasible_row_detected;
    Alcotest.test_case "redundant row dropped" `Quick test_redundant_row_dropped;
    Alcotest.test_case "zero coef on free var" `Quick test_zero_coef_on_free_var;
    Alcotest.test_case "presolve preserves optimum" `Quick test_presolve_preserves_optimum;
    Alcotest.test_case "restore" `Quick test_restore;
    Alcotest.test_case "duals of binding constraint" `Quick test_duals_of_binding_constraint;
    Alcotest.test_case "duals zero when slack" `Quick test_duals_zero_when_slack;
    QCheck_alcotest.to_alcotest prop_presolve_equivalent;
  ]
