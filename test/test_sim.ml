(* Tests for ras_sim: event queue ordering, engine scheduling semantics and
   the metrics registry. *)

module Event_queue = Ras_sim.Event_queue
module Engine = Ras_sim.Engine
module Metrics = Ras_sim.Metrics

let test_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] [ first; second; third ]

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:1.0 i
  done;
  let out = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order on ties" (List.init 10 (fun i -> i))
    (List.rev !out)

let test_queue_stress_sorted () =
  let q = Event_queue.create () in
  let rng = Ras_stats.Rng.create 14 in
  for i = 0 to 999 do
    Event_queue.push q ~time:(Ras_stats.Rng.float rng 100.0) i
  done;
  let last = ref neg_infinity in
  let rec drain n =
    match Event_queue.pop q with
    | Some (t, _) ->
      Alcotest.(check bool) "monotone pops" true (t >= !last);
      last := t;
      drain (n + 1)
    | None -> n
  in
  Alcotest.(check int) "all popped" 1000 (drain 0)

let test_queue_pop_releases_payload () =
  (* a popped entry must not stay reachable through the heap's backing
     array — only weak pointers may still see it after a full major GC *)
  let q = Event_queue.create () in
  let w = Weak.create 3 in
  for i = 0 to 2 do
    let payload = ref i in
    Weak.set w i (Some payload);
    Event_queue.push q ~time:(float_of_int i) payload
  done;
  let drop () = match Event_queue.pop q with Some _ -> () | None -> () in
  drop ();
  drop ();
  Gc.full_major ();
  Alcotest.(check bool) "popped payload 0 collected" false (Weak.check w 0);
  Alcotest.(check bool) "popped payload 1 collected" false (Weak.check w 1);
  Alcotest.(check bool) "queued payload 2 still live" true (Weak.check w 2);
  drop ();
  Gc.full_major ();
  Alcotest.(check bool) "drained payload collected" false (Weak.check w 2)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:2.0 (fun _ -> log := 2 :: !log);
  Engine.schedule e ~at:1.0 (fun _ -> log := 1 :: !log);
  Engine.run_until e 3.0;
  Alcotest.(check (list int)) "order" [ 1; 2 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "now advanced to horizon" 3.0 (Engine.now e)

let test_engine_horizon_excludes_future () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~at:5.0 (fun _ -> fired := true);
  Engine.run_until e 4.0;
  Alcotest.(check bool) "future event pending" false !fired;
  Alcotest.(check int) "still queued" 1 (Engine.pending e);
  Engine.run_until e 6.0;
  Alcotest.(check bool) "fires later" true !fired

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.run_until e 10.0;
  Alcotest.(check bool) "past rejected" true
    (try
       Engine.schedule e ~at:5.0 (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_engine_callback_schedules_more () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.schedule e ~at:1.0 (fun e ->
      incr count;
      Engine.schedule e ~at:2.0 (fun _ -> incr count));
  Engine.run_until e 3.0;
  Alcotest.(check int) "chained events" 2 !count

let test_schedule_every_and_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.schedule_every e ~first:1.0 ~period:1.0 (fun _ ->
      incr count;
      if !count >= 3 then raise Engine.Stop_recurring);
  Engine.run_until e 100.0;
  Alcotest.(check int) "stopped after three" 3 !count

let test_schedule_every_rejects_bad_period () =
  let e = Engine.create () in
  Alcotest.(check bool) "bad period" true
    (try
       Engine.schedule_every e ~first:0.0 ~period:0.0 (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.record m "a" ~time:0.0 1.0;
  Metrics.record m "b" ~time:0.0 2.0;
  Metrics.record m "a" ~time:1.0 3.0;
  Alcotest.(check (list string)) "names sorted" [ "a"; "b" ] (Metrics.names m);
  (match Metrics.find m "a" with
  | Some s -> Alcotest.(check int) "two points" 2 (Ras_stats.Timeseries.length s)
  | None -> Alcotest.fail "series a missing");
  Alcotest.(check bool) "missing series" true (Metrics.find m "zzz" = None)

let suite =
  [
    Alcotest.test_case "queue ordering" `Quick test_queue_ordering;
    Alcotest.test_case "queue fifo ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue stress sorted" `Quick test_queue_stress_sorted;
    Alcotest.test_case "queue pop releases payload" `Quick test_queue_pop_releases_payload;
    Alcotest.test_case "engine order" `Quick test_engine_runs_in_order;
    Alcotest.test_case "engine horizon" `Quick test_engine_horizon_excludes_future;
    Alcotest.test_case "engine rejects past" `Quick test_engine_rejects_past;
    Alcotest.test_case "engine chained events" `Quick test_engine_callback_schedules_more;
    Alcotest.test_case "schedule_every stop" `Quick test_schedule_every_and_stop;
    Alcotest.test_case "schedule_every bad period" `Quick test_schedule_every_rejects_bad_period;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
  ]
