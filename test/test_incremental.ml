(* Cross-round incremental re-solve: the correctness contracts behind the
   continuous-loop perf numbers.

   - apply-diff bit-identity: reconstructing [next] from [prev] plus the
     name-keyed diff gives exactly the freshly compiled model, over
     randomized churn (variables and rows added, removed and perturbed);
   - incremental-vs-cold equivalence: re-solving with a mapped warm basis
     (LP chains) or a mapped basis + patched seed (B&B chains) reaches the
     same objective as a cold solve — the warm path is a pure perf change;
   - naming stability: failing a server changes only the entities that
     actually changed — surviving variable/row names are preserved, so the
     cross-round diff stays proportional to the churn;
   - stale seeds degrade gracefully: an invalid carried incumbent is
     repaired or rejected (and counted), never an exception. *)

open Ras
module Broker = Ras_broker.Broker
module Generator = Ras_topology.Generator
module Service = Ras_workload.Service
module Unavail = Ras_failures.Unavail
module Model = Ras_mip.Model
module Lin_expr = Ras_mip.Lin_expr
module Simplex = Ras_mip.Simplex
module Incremental = Ras_mip.Incremental
module Branch_bound = Ras_mip.Branch_bound

(* ---------- randomized named-model worlds ---------- *)

(* A world is a list of named variables and named rows over them; churn
   mutates the world the way region churn mutates the formulation: some
   entities disappear, fresh ones appear, surviving ones drift. *)

type vspec = { vid : int; vlb : float; vub : float; vobj : float; vint : bool }

type rspec = {
  rid : int;
  terms : (int * float) list; (* (vid, coef) *)
  sense : Model.sense;
  rrhs : float;
}

type world = { vs : vspec list; rs : rspec list; fresh : int }

let frand rng lo hi = lo +. Ras_stats.Rng.float rng (hi -. lo)

let random_var rng vid =
  let vlb = frand rng (-3.0) 0.0 in
  {
    vid;
    vlb;
    vub = vlb +. frand rng 0.5 4.0;
    vobj = frand rng (-5.0) 5.0;
    vint = Ras_stats.Rng.int rng 3 = 0;
  }

let random_row rng rid vs =
  let terms =
    List.filter_map
      (fun v ->
        if Ras_stats.Rng.int rng 3 = 0 then
          Some (v.vid, frand rng (-4.0) 4.0)
        else None)
      vs
  in
  let sense =
    match Ras_stats.Rng.int rng 3 with
    | 0 -> Model.Le
    | 1 -> Model.Ge
    | _ -> Model.Eq
  in
  { rid; terms; sense; rrhs = frand rng (-6.0) 8.0 }

let random_world rng =
  let nv = 4 + Ras_stats.Rng.int rng 8 in
  let nr = 3 + Ras_stats.Rng.int rng 6 in
  let vs = List.init nv (random_var rng) in
  { vs; rs = List.init nr (fun i -> random_row rng i vs); fresh = nv + nr }

(* Small churn: each entity independently removed or perturbed with low
   probability, and a couple of fresh entities appear at the end. *)
let churn rng w =
  let keep p = Ras_stats.Rng.float rng 1.0 >= p in
  let vs =
    List.filter_map
      (fun v ->
        if not (keep 0.1) then None
        else if keep 0.7 then Some v
        else
          (* drift bounds/objective; occasionally flip integrality *)
          let vlb = v.vlb +. frand rng (-0.3) 0.3 in
          Some
            {
              v with
              vlb;
              vub = Float.max (vlb +. 0.1) (v.vub +. frand rng (-0.3) 0.3);
              vobj = v.vobj +. frand rng (-1.0) 1.0;
            })
      w.vs
  in
  let alive = List.map (fun v -> v.vid) vs in
  let fresh = ref w.fresh in
  let new_vs =
    List.init (Ras_stats.Rng.int rng 3) (fun _ ->
        incr fresh;
        random_var rng !fresh)
  in
  let vs = vs @ new_vs in
  let rs =
    List.filter_map
      (fun r ->
        if not (keep 0.1) then None
        else
          let terms = List.filter (fun (vid, _) -> List.mem vid alive) r.terms in
          if keep 0.7 then Some { r with terms }
          else if keep 0.5 then Some { r with terms; rrhs = r.rrhs +. frand rng (-1.0) 1.0 }
          else
            Some
              {
                r with
                terms = List.map (fun (vid, c) -> (vid, c +. frand rng (-0.5) 0.5)) terms;
              })
      w.rs
  in
  let new_rs =
    List.init (Ras_stats.Rng.int rng 2) (fun _ ->
        incr fresh;
        random_row rng !fresh vs)
  in
  { vs; rs = rs @ new_rs; fresh = !fresh }

let compile_world w =
  let m = Model.create () in
  let index = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let var =
        Model.add_var
          ~name:(Printf.sprintf "v%d" v.vid)
          ~lb:v.vlb ~ub:v.vub
          ~kind:(if v.vint then Model.Integer else Model.Continuous)
          m
      in
      Hashtbl.replace index v.vid var)
    w.vs;
  List.iter
    (fun r ->
      let terms =
        List.filter_map
          (fun (vid, c) ->
            match Hashtbl.find_opt index vid with
            | Some var -> Some (c, var)
            | None -> None)
          r.terms
      in
      ignore
        (Model.add_constraint
           ~name:(Printf.sprintf "r%d" r.rid)
           m (Lin_expr.of_terms terms) r.sense r.rrhs))
    w.rs;
  Model.set_objective m
    (Lin_expr.of_terms
       (List.filter_map
          (fun v ->
            if v.vobj = 0.0 then None else Some (v.vobj, Hashtbl.find index v.vid))
          w.vs));
  Model.compile m

(* ---------- bit-identity of apply ---------- *)

let std_equal (a : Model.std) (b : Model.std) =
  a.Model.nvars = b.Model.nvars && a.Model.nrows = b.Model.nrows
  && a.Model.obj = b.Model.obj
  && a.Model.obj_offset = b.Model.obj_offset
  && a.Model.lb = b.Model.lb && a.Model.ub = b.Model.ub
  && a.Model.integer = b.Model.integer
  && a.Model.row_sense = b.Model.row_sense
  && a.Model.rhs = b.Model.rhs
  && a.Model.col_ptr = b.Model.col_ptr
  && a.Model.col_ind = b.Model.col_ind
  && a.Model.col_val = b.Model.col_val
  && a.Model.row_cols = b.Model.row_cols
  && a.Model.row_coefs = b.Model.row_coefs
  && a.Model.var_names = b.Model.var_names
  && a.Model.row_names = b.Model.row_names

let prop_apply_bit_identity =
  QCheck.Test.make ~name:"apply(prev, diff) is bit-identical to next" ~count:200
    QCheck.int (fun seed ->
      let rng = Ras_stats.Rng.create seed in
      let w = ref (random_world rng) in
      let ok = ref true in
      for _ = 1 to 3 do
        let prev = compile_world !w in
        w := churn rng !w;
        let next = compile_world !w in
        let d = Incremental.diff ~prev ~next in
        ok := !ok && std_equal (Incremental.apply ~prev d) next
      done;
      !ok)

let prop_diff_self_empty =
  QCheck.Test.make ~name:"diff(model, model) reports zero changes" ~count:50
    QCheck.int (fun seed ->
      let rng = Ras_stats.Rng.create seed in
      let std = compile_world (random_world rng) in
      let d = Incremental.diff ~prev:std ~next:std in
      let s = Incremental.stats d in
      Incremental.total_changes s = 0 && s.Incremental.structure_identical)

(* ---------- incremental-vs-cold equivalence ---------- *)

(* LP chains: each churned successor is solved cold and with the mapped
   previous basis; both must agree on status and objective.  The mapped
   basis is advisory by contract, so this pins both the mapping and the
   rank-repairing restart underneath it. *)
let lp_relax (std : Model.std) = { std with Model.integer = Array.make std.Model.nvars false }

let prop_lp_incremental_equiv =
  QCheck.Test.make ~name:"LP re-solve from mapped basis matches cold" ~count:120
    QCheck.int (fun seed ->
      let rng = Ras_stats.Rng.create seed in
      let w = ref (random_world rng) in
      let prev = ref None in
      let ok = ref true in
      for _ = 1 to 4 do
        let std = lp_relax (compile_world !w) in
        let cold = Simplex.solve std in
        let warm =
          match !prev with
          | None -> cold
          | Some (pstd, pbasis) -> (
            let d = Incremental.diff ~prev:pstd ~next:std in
            match Incremental.map_basis d ~prev_basis:pbasis with
            | None -> cold
            | Some (wb, _) -> Simplex.solve ~basis:wb std)
        in
        (match (cold, warm) with
        | Simplex.Optimal { obj = cobj; _ }, Simplex.Optimal { obj = wobj; basis; _ } ->
          let scale = Float.max 1.0 (Float.abs cobj) in
          ok := !ok && Float.abs (cobj -. wobj) <= 1e-6 *. scale;
          prev := Some (std, basis)
        | Simplex.Infeasible _, Simplex.Infeasible _
        | Simplex.Unbounded, Simplex.Unbounded ->
          prev := None
        | _ ->
          ok := false;
          prev := None);
        w := churn rng !w
      done;
      !ok)

(* B&B chains: warm rounds get last round's root basis and its solution as
   the seed; default options solve these small MIPs exactly, so the
   objectives must agree. *)
let prop_mip_incremental_equiv =
  QCheck.Test.make ~name:"B&B re-solve from mapped basis + seed matches cold"
    ~count:60 QCheck.int (fun seed ->
      let rng = Ras_stats.Rng.create seed in
      let w = ref (random_world rng) in
      let prev = ref None in
      let ok = ref true in
      for _ = 1 to 3 do
        let std = compile_world !w in
        let cold = Branch_bound.solve std in
        let options =
          match !prev with
          | None -> Branch_bound.default_options
          | Some (pstd, pbasis, psol) -> (
            let d = Incremental.diff ~prev:pstd ~next:std in
            let root_basis =
              Option.map fst (Incremental.map_basis d ~prev_basis:pbasis)
            in
            {
              Branch_bound.default_options with
              Branch_bound.root_basis;
              initial = Option.map (Incremental.map_solution d) psol;
            })
        in
        let warm = Branch_bound.solve ~options std in
        ok := !ok && cold.Branch_bound.status = warm.Branch_bound.status;
        (match cold.Branch_bound.status with
        | Branch_bound.Optimal ->
          let scale = Float.max 1.0 (Float.abs cold.Branch_bound.objective) in
          ok :=
            !ok
            && Float.abs (cold.Branch_bound.objective -. warm.Branch_bound.objective)
               <= 1e-5 *. scale
        | _ -> ());
        (match Simplex.solve (lp_relax std) with
        | Simplex.Optimal { basis; _ } ->
          prev := Some (std, basis, warm.Branch_bound.solution)
        | _ -> prev := None);
        w := churn rng !w
      done;
      !ok)

(* ---------- naming stability under churn ---------- *)

let web = Service.make ~id:1 ~name:"web" ~profile:Service.Web ()

let region_snapshot () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let rng = Ras_stats.Rng.create 7 in
  let requests =
    Ras_workload.Request_gen.scenario rng ~region ~services:[ web ]
      ~target_utilization:0.35
  in
  let reservations = List.map Reservation.of_request requests in
  (broker, reservations)

let compile_snapshot broker reservations =
  let snapshot = Snapshot.take broker reservations in
  let symmetry = Symmetry.build snapshot in
  let f = Formulation.build symmetry snapshot.Snapshot.reservations in
  Model.compile f.Formulation.model

let test_naming_stability () =
  let broker, reservations = region_snapshot () in
  let before = compile_snapshot broker reservations in
  (* fail one server: its symmetry class shrinks by one, nothing else
     about the world changes *)
  let victim = ref (-1) in
  Broker.iter broker ~f:(fun r ->
      if !victim < 0 then victim := r.Broker.server.Ras_topology.Region.id);
  Alcotest.(check bool) "found a server" true (!victim >= 0);
  Broker.mark_down broker !victim Unavail.Unplanned_sw;
  let after = compile_snapshot broker reservations in
  let names a = Array.to_list a.Model.var_names in
  let surviving = List.filter (fun n -> List.mem n (names before)) (names after) in
  (* every surviving name must appear in both compilations — the diff then
     matches them instead of treating index shifts as add/remove pairs *)
  Alcotest.(check bool)
    "most variables survive one server failure" true
    (List.length surviving > Array.length after.Model.var_names * 9 / 10);
  let d = Incremental.diff ~prev:before ~next:after in
  let s = Incremental.stats d in
  let touched =
    s.Incremental.vars_added + s.Incremental.vars_removed + s.Incremental.rows_added
    + s.Incremental.rows_removed
  in
  (* one failed server may shrink a class (bound change) or retire it
     entirely; either way the structural churn stays a sliver of the model *)
  Alcotest.(check bool)
    (Printf.sprintf "structural diff is small (%d touched of %d vars/%d rows)" touched
       before.Model.nvars before.Model.nrows)
    true
    (touched * 10 < before.Model.nvars + before.Model.nrows)

(* ---------- stale seeds are repaired or rejected, never an exception ---- *)

let bounded_mip () =
  let m = Model.create () in
  let x = Model.add_var ~name:"x" ~ub:5.0 ~kind:Model.Integer m in
  let y = Model.add_var ~name:"y" ~ub:5.0 ~kind:Model.Integer m in
  ignore
    (Model.add_constraint ~name:"cap" m
       (Lin_expr.of_terms [ (1.0, x); (1.0, y) ])
       Model.Le 6.0);
  Model.set_objective m (Lin_expr.of_terms [ (-1.0, x); (-2.0, y) ]);
  Model.compile m

let test_stale_seed_repaired () =
  let std = bounded_mip () in
  (* out-of-bounds and fractional: clamping + rounding makes it feasible *)
  let options =
    { Branch_bound.default_options with Branch_bound.initial = Some [| 9.5; -3.2 |] }
  in
  let out = Branch_bound.solve ~options std in
  Alcotest.(check bool)
    "repaired seed counted" true
    (out.Branch_bound.seed = Branch_bound.Seed_repaired);
  Alcotest.(check (float 1e-6)) "still solves to optimality" (-11.0) out.Branch_bound.objective

let test_stale_seed_rejected () =
  let std = bounded_mip () in
  (* wrong dimension: nothing to repair, must be rejected without raising *)
  let options =
    { Branch_bound.default_options with Branch_bound.initial = Some [| 1.0 |] }
  in
  let out = Branch_bound.solve ~options std in
  Alcotest.(check bool)
    "wrong-length seed rejected" true
    (out.Branch_bound.seed = Branch_bound.Seed_rejected);
  Alcotest.(check (float 1e-6)) "solve unaffected" (-11.0) out.Branch_bound.objective

let test_valid_seed_accepted () =
  let std = bounded_mip () in
  let options =
    { Branch_bound.default_options with Branch_bound.initial = Some [| 1.0; 5.0 |] }
  in
  let out = Branch_bound.solve ~options std in
  Alcotest.(check bool)
    "valid seed accepted" true
    (out.Branch_bound.seed = Branch_bound.Seed_accepted);
  Alcotest.(check (float 1e-6)) "optimal from seed" (-11.0) out.Branch_bound.objective

(* ---------- end-to-end: Solver_state threads through Phases ---------- *)

let test_solver_state_rounds () =
  let broker, reservations = region_snapshot () in
  let state = Solver_state.create () in
  let params =
    { Async_solver.default_params with Async_solver.node_limit = 20; run_phase2 = false }
  in
  let objs = ref [] in
  for _ = 0 to 1 do
    let snapshot = Snapshot.take broker reservations in
    let stats = Async_solver.solve ~params ~state snapshot in
    (match stats.Async_solver.incremental with
    | Some r -> objs := r.Solver_state.round :: !objs
    | None -> Alcotest.fail "incremental stats missing when state supplied");
    ignore stats
  done;
  Alcotest.(check (list int)) "rounds numbered" [ 1; 0 ] !objs;
  match Solver_state.history state with
  | [ r0; r1 ] ->
    Alcotest.(check bool) "round 0 is cold" true (r0.Solver_state.diff = None);
    Alcotest.(check bool) "round 1 has a diff" true (r1.Solver_state.diff <> None);
    (* the world did not change between rounds: the whole basis carries *)
    Alcotest.(check bool)
      "full basis reuse on an unchanged world" true
      (Solver_state.basis_reuse_rate r1 > 0.99)
  | h -> Alcotest.fail (Printf.sprintf "expected 2 history rounds, got %d" (List.length h))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_apply_bit_identity;
    QCheck_alcotest.to_alcotest prop_diff_self_empty;
    QCheck_alcotest.to_alcotest prop_lp_incremental_equiv;
    QCheck_alcotest.to_alcotest prop_mip_incremental_equiv;
    Alcotest.test_case "naming stability under server failure" `Quick test_naming_stability;
    Alcotest.test_case "stale seed repaired" `Quick test_stale_seed_repaired;
    Alcotest.test_case "stale seed rejected" `Quick test_stale_seed_rejected;
    Alcotest.test_case "valid seed accepted" `Quick test_valid_seed_accepted;
    Alcotest.test_case "solver state threads through rounds" `Quick test_solver_state_rounds;
  ]
