(* Tests for the POP-style decomposition layer: the Solver_pool domain pool,
   Decompose.split/solve invariants, and the Phases/Async_solver wiring. *)

open Ras
module Broker = Ras_broker.Broker
module Generator = Ras_topology.Generator
module Service = Ras_workload.Service
module Model = Ras_mip.Model
module Lin_expr = Ras_mip.Lin_expr
module Branch_bound = Ras_mip.Branch_bound
module Decompose = Ras_mip.Decompose
module Solver_pool = Ras_mip.Solver_pool

(* ---------- Solver_pool ---------- *)

let test_pool_map_deterministic () =
  Solver_pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check int) "size" 2 (Solver_pool.size pool);
      let inputs = Array.init 20 Fun.id in
      let expected = Array.map (fun i -> i * i) inputs in
      let got = Solver_pool.map pool (fun i -> i * i) inputs in
      Alcotest.(check (array int)) "results in input order" expected got;
      (* the pool is reusable across map calls *)
      let got2 = Solver_pool.map pool (fun i -> i + 1) inputs in
      Alcotest.(check (array int)) "second map" (Array.map succ inputs) got2)

let test_pool_map_sequential_fallback () =
  (* a pool of size 1 never spawns a domain: map runs inline *)
  Solver_pool.with_pool ~domains:1 (fun pool ->
      let got = Solver_pool.map pool string_of_int [| 1; 2; 3 |] in
      Alcotest.(check (array string)) "inline map" [| "1"; "2"; "3" |] got)

let test_pool_map_empty_and_errors () =
  Solver_pool.with_pool ~domains:2 (fun pool ->
      Alcotest.(check (array int)) "empty input" [||]
        (Solver_pool.map pool (fun i -> i) [||]);
      (* one failing job: the exception reaches the caller after the batch
         drains, and the pool remains usable *)
      (match Solver_pool.map pool (fun i -> if i = 3 then failwith "boom" else i)
               [| 1; 2; 3; 4 |]
       with
      | _ -> Alcotest.fail "expected the job's exception to propagate"
      | exception Failure msg -> Alcotest.(check string) "first error" "boom" msg);
      let got = Solver_pool.map pool (fun i -> i * 2) [| 1; 2 |] in
      Alcotest.(check (array int)) "pool survives a failed batch" [| 2; 4 |] got)

let test_pool_shutdown_idempotent () =
  let pool = Solver_pool.create ~domains:2 () in
  ignore (Solver_pool.map pool Fun.id [| 1 |]);
  Solver_pool.shutdown pool;
  Solver_pool.shutdown pool;
  Alcotest.(check bool) "rejects bad size" true
    (try
       ignore (Solver_pool.create ~domains:0 ());
       false
     with Invalid_argument _ -> true)

(* ---------- Decompose.split ---------- *)

(* 4 integer vars in [0, 5]; a coupled row over all of them, plus one
   single-partition row per half.  Minimizing -sum pushes everything up
   against the coupled capacity. *)
let coupled_std () =
  let m = Model.create () in
  let vars =
    Array.init 4 (fun i ->
        Model.add_var ~name:(Printf.sprintf "x%d" i) ~ub:5.0 ~kind:Model.Integer m)
  in
  let all = Lin_expr.of_terms (Array.to_list (Array.map (fun v -> (1.0, v)) vars)) in
  let _ = Model.add_constraint ~name:"cap" m all Model.Le 10.0 in
  let _ =
    Model.add_constraint ~name:"left" m
      (Lin_expr.of_terms [ (1.0, vars.(0)); (1.0, vars.(1)) ])
      Model.Le 8.0
  in
  let _ =
    Model.add_constraint ~name:"right" m
      (Lin_expr.of_terms [ (1.0, vars.(2)); (1.0, vars.(3)) ])
      Model.Le 8.0
  in
  Model.set_objective m
    (Lin_expr.of_terms (Array.to_list (Array.map (fun v -> (-1.0, v)) vars)));
  Model.compile m

let var_part_halves v = if v < 2 then 0 else 1

let test_split_invariants () =
  let std = coupled_std () in
  let subs = Decompose.split ~num_parts:2 ~var_part:var_part_halves std in
  Alcotest.(check int) "two subproblems" 2 (Array.length subs);
  (* every original variable appears in exactly one sub *)
  let seen = Array.make std.Model.nvars 0 in
  Array.iter
    (fun (_, to_full) -> Array.iter (fun v -> seen.(v) <- seen.(v) + 1) to_full)
    subs;
  Alcotest.(check (array int)) "partition of the variables" [| 1; 1; 1; 1 |] seen;
  (* the coupled row's scaled copies sum back to the original rhs, and each
     sub also keeps its own single-partition row verbatim *)
  let scaled_total = ref 0.0 in
  Array.iter
    (fun (sub, _) ->
      Alcotest.(check int) "rows per sub" 2 sub.Model.nrows;
      for i = 0 to sub.Model.nrows - 1 do
        let name = sub.Model.row_names.(i) in
        if String.length name >= 4 && String.sub name 0 4 = "cap#" then
          scaled_total := !scaled_total +. sub.Model.rhs.(i)
        else Alcotest.(check (float 1e-9)) "verbatim rhs" 8.0 sub.Model.rhs.(i)
      done)
    subs;
  Alcotest.(check (float 1e-9)) "shares sum to the coupled rhs" 10.0 !scaled_total;
  Alcotest.(check bool) "rejects bad partition" true
    (try
       ignore (Decompose.split ~num_parts:2 ~var_part:(fun _ -> 5) std);
       false
     with Invalid_argument _ -> true)

let test_decompose_solves_separable_optimum () =
  let std = coupled_std () in
  let r = Decompose.solve ~num_parts:2 ~var_part:var_part_halves std in
  (match r.Decompose.outcome.Branch_bound.status with
  | Branch_bound.Feasible -> ()
  | _ -> Alcotest.fail "expected a feasible merged solution");
  (match r.Decompose.outcome.Branch_bound.solution with
  | Some x -> (
    match Model.check_solution std x with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "merged solution invalid: %s" msg)
  | None -> Alcotest.fail "no merged solution");
  (* balanced halves: each sub fills its 1/2-scaled capacity exactly, so the
     merge hits the monolith optimum *)
  Alcotest.(check (float 1e-6)) "objective" (-10.0) r.Decompose.outcome.Branch_bound.objective;
  Alcotest.(check int) "one coupled row" 1 r.Decompose.stats.Decompose.coupled_rows;
  Alcotest.(check int) "both parts reported" 2 (Array.length r.Decompose.stats.Decompose.parts);
  Array.iter
    (fun p -> Alcotest.(check (float 1e-6)) "per-part objective" (-5.0) p.Decompose.objective)
    r.Decompose.stats.Decompose.parts

let test_decompose_deterministic () =
  let std = coupled_std () in
  let solve () =
    let r = Decompose.solve ~num_parts:2 ~var_part:var_part_halves std in
    match r.Decompose.outcome.Branch_bound.solution with
    | Some x -> Array.copy x
    | None -> [||]
  in
  let a = solve () and b = solve () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

(* ---------- RAS scenario through Phases / Async_solver / Explain ---------- *)

let test_async_solver_decomposed () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let rng = Ras_stats.Rng.create 23 in
  let requests =
    Ras_workload.Request_gen.scenario rng ~region ~services:Service.default_catalog
      ~target_utilization:0.4
  in
  let reservations = List.map Reservation.of_request requests in
  let snapshot = Snapshot.take broker reservations in
  let params =
    {
      Async_solver.default_params with
      Async_solver.node_limit = 40;
      decompose = Some 4;
      run_phase2 = false;
    }
  in
  let stats = Async_solver.solve ~params snapshot in
  (match stats.Async_solver.decompose with
  | None -> Alcotest.fail "decomposition stats missing"
  | Some d ->
    Alcotest.(check bool) "at least 2 partitions" true
      (Array.length d.Ras_mip.Decompose.parts >= 2);
    Alcotest.(check bool) "no unresolved rows after repair" true
      (d.Ras_mip.Decompose.unresolved_rows >= 0));
  let p1 = stats.Async_solver.phase1 in
  (match p1.Phases.outcome.Branch_bound.status with
  | Branch_bound.Feasible | Branch_bound.Optimal -> ()
  | _ -> Alcotest.fail "decomposed phase 1 must keep a feasible incumbent");
  (match Model.check_solution p1.Phases.compiled p1.Phases.solution with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "phase-1 solution invalid: %s" msg);
  (* the partition map covers every model variable with a valid partition *)
  let part = Formulation.partition_vars p1.Phases.formulation ~parts:4 in
  Alcotest.(check int) "partition map covers the model" p1.Phases.compiled.Model.nvars
    (Array.length part);
  Array.iter
    (fun p -> Alcotest.(check bool) "partition in range" true (p >= 0 && p < 4))
    part;
  let report = Explain.solve_report stats in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec loop i = i + n <= m && (String.sub s i n = sub || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "report mentions the decomposition" true
    (contains ~sub:"decomposition:" report)

let suite =
  [
    Alcotest.test_case "pool map order + reuse" `Quick test_pool_map_deterministic;
    Alcotest.test_case "pool size-1 inline" `Quick test_pool_map_sequential_fallback;
    Alcotest.test_case "pool empty + error propagation" `Quick test_pool_map_empty_and_errors;
    Alcotest.test_case "pool shutdown idempotent" `Quick test_pool_shutdown_idempotent;
    Alcotest.test_case "split invariants" `Quick test_split_invariants;
    Alcotest.test_case "separable optimum recovered" `Quick
      test_decompose_solves_separable_optimum;
    Alcotest.test_case "decompose deterministic" `Quick test_decompose_deterministic;
    Alcotest.test_case "async solver decomposed" `Quick test_async_solver_decomposed;
  ]
