(* Aggregated test entry point: one Alcotest suite per library.

   The [registry] suite audits this file against the test directory: every
   [test_*.ml] compiled into the runner must be registered below, so a suite
   that is written but never wired up fails `dune runtest` instead of
   silently not running. *)

let suites =
  [
    ("stats", Test_stats.suite);
    ("mip", Test_mip.suite);
    ("basis", Test_basis.suite);
    ("differential", Test_differential.suite);
    ("sparse_kernels", Test_sparse_kernels.suite);
    ("decompose", Test_decompose.suite);
    ("warmstart", Test_warmstart.suite);
    ("incremental", Test_incremental.suite);
    ("presolve", Test_presolve.suite);
    ("topology", Test_topology.suite);
    ("workload", Test_workload.suite);
    ("failures", Test_failures.suite);
    ("broker", Test_broker.suite);
    ("twine", Test_twine.suite);
    ("sim", Test_sim.suite);
    ("core", Test_core.suite);
    ("reactive", Test_reactive.suite);
    ("portal", Test_portal.suite);
    ("wear", Test_wear.suite);
    ("properties", Test_properties.suite);
    ("region_scale", Test_region_scale.suite);
  ]

(* dune copies the test sources next to the runner, so the files on disk at
   runtime are exactly the modules linked into this executable *)
let audit_registration () =
  let registered = List.map fst suites in
  let on_disk =
    Sys.readdir "."
    |> Array.to_list
    |> List.filter_map (fun f ->
           if
             String.length f > 8
             && String.sub f 0 5 = "test_"
             && Filename.check_suffix f ".ml"
           then Some (Filename.chop_suffix (String.sub f 5 (String.length f - 5)) ".ml")
           else None)
    |> List.filter (fun name -> name <> "main")
    |> List.sort compare
  in
  let missing = List.filter (fun name -> not (List.mem name registered)) on_disk in
  if missing <> [] then
    Alcotest.failf "test suites compiled but not registered in test_main.ml: %s"
      (String.concat ", " missing)

let registry_suite =
  [ Alcotest.test_case "every test_*.ml suite is registered" `Quick audit_registration ]

let () = Alcotest.run "ras-reproduction" (suites @ [ ("registry", registry_suite) ])
