(* Aggregated test entry point: one Alcotest suite per library. *)

let () =
  Alcotest.run "ras-reproduction"
    [
      ("stats", Test_stats.suite);
      ("mip", Test_mip.suite);
      ("warmstart", Test_warmstart.suite);
      ("presolve", Test_presolve.suite);
      ("topology", Test_topology.suite);
      ("workload", Test_workload.suite);
      ("failures", Test_failures.suite);
      ("broker", Test_broker.suite);
      ("twine", Test_twine.suite);
      ("sim", Test_sim.suite);
      ("core", Test_core.suite);
      ("portal", Test_portal.suite);
      ("wear", Test_wear.suite);
      ("properties", Test_properties.suite);
    ]
