(* Warm-start equivalence and determinism.

   The warm-start machinery (Simplex.solve ~basis, Branch_bound warm nodes,
   candidate-list pricing) is a pure performance change: on any input it must
   return the same status and the same objective (within gap_abs) as the
   cold-start configuration, and repeated runs must be bit-identical.  These
   tests pin that contract on a corpus of small random MIPs plus direct
   simplex restart checks. *)

module Model = Ras_mip.Model
module Lin_expr = Ras_mip.Lin_expr
module Simplex = Ras_mip.Simplex
module Branch_bound = Ras_mip.Branch_bound

(* ---------- random MIP corpus ---------- *)

(* Slightly larger than the brute-force cross-check cases in Test_mip so
   branch-and-bound actually opens several nodes and exercises the basis
   hand-off; integer coefficients keep objectives exactly representable. *)
let random_mip rng =
  let module R = Ras_stats.Rng in
  let n = 3 + R.int rng 5 in
  let m_rows = 2 + R.int rng 4 in
  let model = Model.create () in
  let vars =
    Array.init n (fun _ ->
        let kind = if R.int rng 4 = 0 then Model.Continuous else Model.Integer in
        Model.add_var ~kind ~ub:(float_of_int (1 + R.int rng 5)) model)
  in
  let coef () = float_of_int (R.int rng 13 - 6) in
  for _ = 1 to m_rows do
    let e = Lin_expr.of_terms (List.init n (fun i -> (coef (), vars.(i)))) in
    let sense =
      match R.int rng 3 with 0 -> Model.Le | 1 -> Model.Ge | _ -> Model.Eq
    in
    ignore (Model.add_constraint model e sense (float_of_int (R.int rng 21 - 6)))
  done;
  Model.set_objective model
    (Lin_expr.of_terms (List.init n (fun i -> (coef (), vars.(i)))));
  Model.compile model

let cold_options =
  {
    Branch_bound.default_options with
    Branch_bound.warm_start = false;
    lp_pricing = Simplex.Dantzig;
  }

(* ---------- equivalence: warm-started B&B = cold-started B&B ---------- *)

let prop_warm_matches_cold =
  QCheck.Test.make ~name:"warm-started B&B matches cold start" ~count:300
    QCheck.int (fun seed ->
      let rng = Ras_stats.Rng.create seed in
      let std = random_mip rng in
      let cold = Branch_bound.solve ~options:cold_options std in
      let warm = Branch_bound.solve std in
      let tol = Branch_bound.default_options.Branch_bound.gap_abs in
      cold.Branch_bound.status = warm.Branch_bound.status
      && (match cold.Branch_bound.status with
         | Branch_bound.Optimal ->
           Float.abs (cold.Branch_bound.objective -. warm.Branch_bound.objective)
           <= tol
         | Branch_bound.Feasible | Branch_bound.Infeasible
         | Branch_bound.Unbounded | Branch_bound.Unknown ->
           true))

(* ---------- determinism: repeated warm runs are bit-identical ---------- *)

let fingerprint (out : Branch_bound.outcome) =
  ( out.Branch_bound.status,
    Int64.bits_of_float out.Branch_bound.objective,
    Int64.bits_of_float out.Branch_bound.best_bound,
    out.Branch_bound.nodes,
    out.Branch_bound.lp_iterations,
    out.Branch_bound.warm_started_nodes,
    Option.map (Array.map Int64.bits_of_float) out.Branch_bound.solution )

let prop_warm_deterministic =
  QCheck.Test.make ~name:"warm-started B&B is deterministic" ~count:150
    QCheck.int (fun seed ->
      let rng = Ras_stats.Rng.create seed in
      let std = random_mip rng in
      let a = Branch_bound.solve std in
      let b = Branch_bound.solve std in
      fingerprint a = fingerprint b)

(* ---------- direct simplex restart checks ---------- *)

(* A feasible LP with enough structure that phase 1 does real work. *)
let restart_lp () =
  let m = Model.create () in
  let n_src = 6 and n_dst = 5 in
  let vars =
    Array.init n_src (fun _ -> Array.init n_dst (fun _ -> Model.add_var ~ub:30.0 m))
  in
  for i = 0 to n_src - 1 do
    let e = Lin_expr.of_terms (List.init n_dst (fun j -> (1.0, vars.(i).(j)))) in
    ignore (Model.add_constraint m e Model.Le 25.0)
  done;
  for j = 0 to n_dst - 1 do
    let e = Lin_expr.of_terms (List.init n_src (fun i -> (1.0, vars.(i).(j)))) in
    ignore (Model.add_constraint m e Model.Ge 12.0)
  done;
  Model.set_objective m
    (Lin_expr.of_terms
       (List.concat
          (List.init n_src (fun i ->
               List.init n_dst (fun j ->
                   (float_of_int (((i * 5) + (j * 7)) mod 9), vars.(i).(j)))))));
  Model.compile m

type lp_opt = { obj : float; iterations : int; basis : Simplex.warm_basis }

let solve_exn ?basis ?lb ?ub std =
  match Simplex.solve ?basis ?lb ?ub std with
  | Simplex.Optimal { obj; iterations; basis; _ } -> { obj; iterations; basis }
  | Simplex.Infeasible _ -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Simplex.Iteration_limit _ -> Alcotest.fail "unexpected iteration limit"

let test_restart_same_bounds () =
  let std = restart_lp () in
  let first = solve_exn std in
  Alcotest.(check bool) "cold solve does work" true (first.iterations > 1);
  (* restarting from the optimal basis with unchanged bounds must confirm
     optimality in the single dry pricing pass (the iteration counter counts
     loop passes, so zero pivots reports as 1) *)
  let again = solve_exn ~basis:first.basis std in
  Alcotest.(check int) "no pivots on restart" 1 again.iterations;
  Alcotest.(check (float 1e-9)) "same objective" first.obj again.obj

let test_restart_tightened_bound () =
  let std = restart_lp () in
  let first = solve_exn std in
  (* branch-style bound change: clamp one structural variable *)
  let ub = Array.copy std.Model.ub in
  ub.(0) <- 0.0;
  let cold = solve_exn ~ub std in
  let warm = solve_exn ~basis:first.basis ~ub std in
  Alcotest.(check (float 1e-6)) "same objective" cold.obj warm.obj;
  Alcotest.(check bool)
    (Printf.sprintf "warm restart is cheaper (%d <= %d)" warm.iterations
       cold.iterations)
    true
    (warm.iterations <= cold.iterations)

let test_restart_without_inverse () =
  (* the O(columns) snapshot (factorization dropped, as stored on B&B nodes)
     must reconstruct the same optimum *)
  let std = restart_lp () in
  let first = solve_exn std in
  let stripped = { first.basis with Simplex.wfac = None } in
  let ub = Array.copy std.Model.ub in
  ub.(1) <- 1.0;
  let cold = solve_exn ~ub std in
  let warm = solve_exn ~basis:stripped ~ub std in
  Alcotest.(check (float 1e-6)) "same objective" cold.obj warm.obj

let test_stale_basis_falls_back () =
  (* a structurally invalid snapshot must degrade to a cold start, not
     crash or change the answer *)
  let std = restart_lp () in
  let first = solve_exn std in
  let bogus =
    {
      Simplex.wcols = Array.make (Array.length first.basis.Simplex.wcols) 0;
      wstatus = first.basis.Simplex.wstatus;
      wfac = None;
      wdevex = None;
    }
  in
  let out = solve_exn ~basis:bogus std in
  Alcotest.(check (float 1e-9)) "same objective" first.obj out.obj

let suite =
  [
    Alcotest.test_case "simplex restart, unchanged bounds" `Quick
      test_restart_same_bounds;
    Alcotest.test_case "simplex restart, tightened bound" `Quick
      test_restart_tightened_bound;
    Alcotest.test_case "simplex restart from stripped snapshot" `Quick
      test_restart_without_inverse;
    Alcotest.test_case "stale basis falls back to cold start" `Quick
      test_stale_basis_falls_back;
    QCheck_alcotest.to_alcotest prop_warm_matches_cold;
    QCheck_alcotest.to_alcotest prop_warm_deterministic;
  ]
