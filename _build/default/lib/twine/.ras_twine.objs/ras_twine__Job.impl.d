lib/twine/job.ml: List
