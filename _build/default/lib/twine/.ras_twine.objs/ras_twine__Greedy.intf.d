lib/twine/greedy.mli: Ras_broker Ras_workload
