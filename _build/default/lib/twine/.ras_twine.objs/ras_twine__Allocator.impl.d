lib/twine/allocator.ml: Hashtbl Job List Printf Ras_broker Ras_topology
