lib/twine/greedy.ml: Float List Ras_broker Ras_topology Ras_workload
