lib/twine/job.mli:
