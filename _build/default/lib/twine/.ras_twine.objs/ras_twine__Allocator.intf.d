lib/twine/allocator.mli: Job Ras_broker Ras_topology
