(** Container jobs: the second level of the two-level architecture.

    A job asks for [replicas] containers of a given RRU size to run inside
    one reservation.  Containers from different jobs may stack on the same
    server (§3.1). *)

type t = {
  id : int;
  reservation : int;  (** reservation the job is entitled to *)
  replicas : int;
  rru_per_replica : float;
  spread_msbs : bool;  (** spread replicas across MSBs where possible *)
}

type container = { job : t; index : int }
(** A single replica of a job. *)

val make :
  id:int -> reservation:int -> replicas:int -> rru_per_replica:float -> ?spread_msbs:bool ->
  unit -> t
(** Defaults: [spread_msbs = true].  Raises [Invalid_argument] on
    non-positive replica count or size. *)

val containers : t -> container list

val total_rru : t -> float
