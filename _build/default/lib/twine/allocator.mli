(** In-reservation container allocator (the "Twine Allocator & Scheduler" box
    of Fig. 6).

    Works exclusively within a single reservation (§5.4 "rigid capacity
    boundaries"): candidate servers are those whose broker [current] owner is
    the reservation and which are healthy.  Placement is capacity-based
    stacking — a server hosts containers up to its RRU value for the
    reservation's service — with optional MSB spread so a job survives a
    correlated failure.

    The allocator reacts to broker unavailability events by re-placing the
    containers of a failed server onto remaining capacity (the buffer servers
    RAS embedded into the reservation). *)

type t

type failure_stats = { replaced : int; stranded : int }
(** Containers successfully re-placed vs. left pending after unavailability
    (stranded containers are retried on the next placement call). *)

val create :
  Ras_broker.Broker.t ->
  reservation:int ->
  rru_of:(Ras_topology.Hardware.t -> float) ->
  t
(** The allocator subscribes itself to broker unavailability events. *)

val reservation : t -> int

val place_job : t -> Job.t -> (unit, string) result
(** Place all replicas.  Fails (placing nothing) when the reservation lacks
    capacity; the error names the shortfall.  Raises [Invalid_argument] if
    the job references a different reservation. *)

val stop_job : t -> Job.t -> unit
(** Remove all of the job's containers; servers left empty are marked not
    in-use. *)

val placed_containers : t -> int

val pending_containers : t -> int
(** Containers displaced by failures and not yet re-placed. *)

val retry_pending : t -> failure_stats
(** Attempt to place pending containers (called after replacement capacity
    arrives). *)

val evict_server : t -> int -> unit
(** Preempt every container on the server (they become pending).  The Online
    Mover calls this before moving an in-use server to another owner. *)

val server_of_container : t -> Job.container -> int option

val used_rru : t -> float

val capacity_rru : t -> float
(** Total RRU of healthy servers currently owned by the reservation. *)

val servers_in_use : t -> int list
