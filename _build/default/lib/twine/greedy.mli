(** The pre-RAS baseline: Twine's greedy server acquisition (paper §1.1).

    When capacity is needed, a free server is greedily acquired from the
    shared region free pool — the first acceptable server in pool order,
    with no regard for fault-domain spread, hardware mixture balance or
    correlated-failure buffers.  Because the free pool is laid out
    rack-by-rack, consecutive grabs cluster in whichever MSBs happen to hold
    free capacity; the paper measured services concentrating up to 15.1% of
    their servers in a single MSB under this policy (Fig. 12's starting
    point).

    This module is the comparison baseline for Figs. 12 and 14. *)

val fulfill :
  Ras_broker.Broker.t ->
  Ras_workload.Capacity_request.t list ->
  (int * float) list
(** Greedily bind free servers to each request (in request order) until the
    requested RRUs are covered, setting broker [current] and [target] to the
    request's reservation.  Returns per-request [(reservation id, shortfall
    rru)] — shortfall 0 when fully satisfied. *)

val release : Ras_broker.Broker.t -> reservation:int -> unit
(** Return every server of a reservation to the free pool. *)
