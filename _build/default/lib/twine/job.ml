type t = {
  id : int;
  reservation : int;
  replicas : int;
  rru_per_replica : float;
  spread_msbs : bool;
}

type container = { job : t; index : int }

let make ~id ~reservation ~replicas ~rru_per_replica ?(spread_msbs = true) () =
  if replicas <= 0 then invalid_arg "Job.make: replicas must be positive";
  if rru_per_replica <= 0.0 then invalid_arg "Job.make: rru_per_replica must be positive";
  { id; reservation; replicas; rru_per_replica; spread_msbs }

let containers t = List.init t.replicas (fun index -> { job = t; index })

let total_rru t = float_of_int t.replicas *. t.rru_per_replica
