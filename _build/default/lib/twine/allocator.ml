module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware

type key = int * int (* job id, replica index *)

type t = {
  broker : Broker.t;
  res_id : int;
  rru_of : Hw.t -> float;
  container_server : (key, int) Hashtbl.t;
  server_load : (int, float) Hashtbl.t;
  server_containers : (int, Job.container list) Hashtbl.t;
  mutable pending : Job.container list;
}

type failure_stats = { replaced : int; stranded : int }

let key (c : Job.container) = (c.Job.job.Job.id, c.Job.index)

let reservation t = t.res_id

let load t sid = try Hashtbl.find t.server_load sid with Not_found -> 0.0

let server_capacity t (r : Broker.record) = t.rru_of r.Broker.server.Region.hw

let remaining t r = server_capacity t r -. load t r.Broker.server.Region.id

(* The allocator works within its reservation; elastic reservations own
   servers under the [Elastic] constructor. *)
let owned_by_me t (r : Broker.record) =
  match r.Broker.current with
  | Broker.Reservation id | Broker.Elastic id -> id = t.res_id
  | Broker.Free | Broker.Shared_buffer -> false

let candidates t =
  Broker.fold t.broker ~init:[] ~f:(fun acc r ->
      if owned_by_me t r && Broker.healthy r then r :: acc else acc)

let attach t c sid =
  Hashtbl.replace t.container_server (key c) sid;
  Hashtbl.replace t.server_load sid (load t sid +. c.Job.job.Job.rru_per_replica);
  let existing = try Hashtbl.find t.server_containers sid with Not_found -> [] in
  Hashtbl.replace t.server_containers sid (c :: existing);
  Broker.set_in_use t.broker sid true

let detach t c =
  match Hashtbl.find_opt t.container_server (key c) with
  | None -> ()
  | Some sid ->
    Hashtbl.remove t.container_server (key c);
    let new_load = load t sid -. c.Job.job.Job.rru_per_replica in
    if new_load <= 1e-9 then Hashtbl.remove t.server_load sid
    else Hashtbl.replace t.server_load sid new_load;
    let rest =
      List.filter
        (fun c' -> key c' <> key c)
        (try Hashtbl.find t.server_containers sid with Not_found -> [])
    in
    if rest = [] then begin
      Hashtbl.remove t.server_containers sid;
      Broker.set_in_use t.broker sid false
    end
    else Hashtbl.replace t.server_containers sid rest

(* Place one container: among servers with room, prefer the least-loaded MSB
   (for the job's replicas) and within it the largest remaining capacity. *)
let place_one t ~msb_replicas ~spread c =
  let size = c.Job.job.Job.rru_per_replica in
  let best = ref None in
  let consider r =
    let rem = remaining t r in
    if rem >= size -. 1e-9 then begin
      let msb = r.Broker.server.Region.loc.Region.msb in
      let reps = try Hashtbl.find msb_replicas msb with Not_found -> 0 in
      let score = if spread then (reps, -.rem) else (0, -.rem) in
      match !best with
      | Some (bscore, _) when bscore <= score -> ()
      | _ -> best := Some (score, r)
    end
  in
  List.iter consider (candidates t);
  match !best with
  | None -> None
  | Some (_, r) ->
    let sid = r.Broker.server.Region.id in
    attach t c sid;
    let msb = r.Broker.server.Region.loc.Region.msb in
    Hashtbl.replace msb_replicas msb (1 + (try Hashtbl.find msb_replicas msb with Not_found -> 0));
    Some sid

let retry_pending t =
  let still = ref [] and replaced = ref 0 in
  let msb_replicas = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match place_one t ~msb_replicas ~spread:c.Job.job.Job.spread_msbs c with
      | Some _ -> incr replaced
      | None -> still := c :: !still)
    t.pending;
  t.pending <- List.rev !still;
  { replaced = !replaced; stranded = List.length t.pending }

let evict_server t sid =
  match Hashtbl.find_opt t.server_containers sid with
  | None -> ()
  | Some cs ->
    List.iter (fun c -> detach t c) cs;
    t.pending <- cs @ t.pending

let create broker ~reservation ~rru_of =
  let t =
    {
      broker;
      res_id = reservation;
      rru_of;
      container_server = Hashtbl.create 256;
      server_load = Hashtbl.create 256;
      server_containers = Hashtbl.create 256;
      pending = [];
    }
  in
  let on_event = function
    | Broker.Went_down (sid, _) ->
      let r = Broker.record broker sid in
      if owned_by_me t r && not (Broker.healthy r) then begin
        evict_server t sid;
        ignore (retry_pending t)
      end
    | Broker.Came_up _ -> ignore (retry_pending t)
  in
  Broker.subscribe broker on_event;
  t

let place_job t job =
  if job.Job.reservation <> t.res_id then
    invalid_arg "Allocator.place_job: job belongs to a different reservation";
  let placed = ref [] in
  let msb_replicas = Hashtbl.create 8 in
  let rec loop = function
    | [] -> Ok ()
    | c :: rest -> (
      match place_one t ~msb_replicas ~spread:job.Job.spread_msbs c with
      | Some _ ->
        placed := c :: !placed;
        loop rest
      | None ->
        (* roll back: jobs place atomically *)
        List.iter (fun c' -> detach t c') !placed;
        Error
          (Printf.sprintf "reservation %d cannot fit job %d (%d x %.2f rru)" t.res_id
             job.Job.id job.Job.replicas job.Job.rru_per_replica))
  in
  loop (Job.containers job)

let stop_job t job = List.iter (fun c -> detach t c) (Job.containers job)

let placed_containers t = Hashtbl.length t.container_server

let pending_containers t = List.length t.pending

let server_of_container t c = Hashtbl.find_opt t.container_server (key c)

let used_rru t = Hashtbl.fold (fun _ l acc -> acc +. l) t.server_load 0.0

let capacity_rru t =
  List.fold_left (fun acc r -> acc +. server_capacity t r) 0.0 (candidates t)

let servers_in_use t = Hashtbl.fold (fun sid _ acc -> sid :: acc) t.server_containers []
