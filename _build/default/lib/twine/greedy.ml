module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request

let fulfill broker requests =
  let n = Broker.num_servers broker in
  let fulfill_one req =
    let service = req.Capacity_request.service in
    let needed = ref req.Capacity_request.rru in
    let sid = ref 0 in
    (* first-acceptable-in-pool-order: the greedy policy under test *)
    while !needed > 1e-9 && !sid < n do
      let r = Broker.record broker !sid in
      if r.Broker.current = Broker.Free && Broker.available r then begin
        let v = Service.rru_of service r.Broker.server.Region.hw in
        if v > 0.0 then begin
          Broker.move broker !sid (Broker.Reservation req.Capacity_request.id);
          Broker.set_target broker !sid (Broker.Reservation req.Capacity_request.id);
          needed := !needed -. v
        end
      end;
      incr sid
    done;
    (req.Capacity_request.id, Float.max 0.0 !needed)
  in
  List.map fulfill_one requests

let release broker ~reservation =
  Broker.iter broker ~f:(fun r ->
      if r.Broker.current = Broker.Reservation reservation then begin
        Broker.move broker r.Broker.server.Region.id Broker.Free;
        Broker.set_target broker r.Broker.server.Region.id Broker.Free
      end)
