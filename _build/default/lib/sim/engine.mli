(** Discrete-event simulation engine.

    Time is in hours of region time.  Callbacks scheduled at a time run in
    schedule order; a callback may schedule further events (including at the
    current time).  The engine never moves backwards. *)

type t

val create : unit -> t

val now : t -> float

val schedule : t -> at:float -> (t -> unit) -> unit
(** Raises [Invalid_argument] when [at] is in the past. *)

val schedule_every : t -> first:float -> period:float -> (t -> unit) -> unit
(** Recurring event; the callback re-arms itself until {!cancel_recurring}
    conditions: recurrence stops when the callback raises [Stop_recurring]. *)

exception Stop_recurring

val run_until : t -> float -> unit
(** Process all events with time <= the horizon, advancing [now] to the
    horizon. *)

val pending : t -> int
