lib/sim/metrics.mli: Format Ras_stats
