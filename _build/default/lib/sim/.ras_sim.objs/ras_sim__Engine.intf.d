lib/sim/engine.mli:
