lib/sim/metrics.ml: Format Hashtbl List Ras_stats
