type t = (string, Ras_stats.Timeseries.t) Hashtbl.t

let create () = Hashtbl.create 32

let series t name =
  match Hashtbl.find_opt t name with
  | Some s -> s
  | None ->
    let s = Ras_stats.Timeseries.create ~name in
    Hashtbl.replace t name s;
    s

let record t name ~time v = Ras_stats.Timeseries.record (series t name) ~time v

let names t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let find t name = Hashtbl.find_opt t name

let pp ppf t =
  List.iter
    (fun name ->
      match find t name with
      | Some s -> Format.fprintf ppf "%a@." (Ras_stats.Timeseries.pp_table ?max_rows:None) s
      | None -> ())
    (names t)
