type t = { mutable now : float; queue : (t -> unit) Event_queue.t }

exception Stop_recurring

let create () = { now = 0.0; queue = Event_queue.create () }

let now t = t.now

let schedule t ~at f =
  if at < t.now -. 1e-9 then
    invalid_arg (Printf.sprintf "Engine.schedule: %.3f is in the past (now %.3f)" at t.now);
  Event_queue.push t.queue ~time:(Float.max at t.now) f

let schedule_every t ~first ~period f =
  if period <= 0.0 then invalid_arg "Engine.schedule_every: period must be positive";
  let rec arm at =
    schedule t ~at (fun t ->
        match f t with () -> arm (at +. period) | exception Stop_recurring -> ())
  in
  arm first

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time when time <= horizon +. 1e-9 -> (
      match Event_queue.pop t.queue with
      | Some (time, f) ->
        t.now <- Float.max t.now time;
        f t
      | None -> continue := false)
    | Some _ | None -> continue := false
  done;
  t.now <- Float.max t.now horizon

let pending t = Event_queue.length t.queue
