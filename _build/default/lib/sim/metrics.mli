(** Named metric registry: each metric is a {!Ras_stats.Timeseries.t} keyed
    by name.  Scenario code records into it; benchmark code reads the series
    out to print the paper's figures. *)

type t

val create : unit -> t

val series : t -> string -> Ras_stats.Timeseries.t
(** Get-or-create. *)

val record : t -> string -> time:float -> float -> unit

val names : t -> string list
(** Sorted. *)

val find : t -> string -> Ras_stats.Timeseries.t option

val pp : Format.formatter -> t -> unit
