(** Priority queue of timed events for the discrete-event engine.

    Events at equal times pop in insertion order (a monotonic sequence
    number breaks ties), which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option
