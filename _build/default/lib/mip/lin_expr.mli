(** Linear expressions over integer-indexed decision variables.

    An expression is [sum_i (coef_i * var_i) + constant].  Variables are the
    opaque indices handed out by {!Model.add_var}; this module never checks
    that an index is valid — {!Model} does that when the expression is used. *)

type t

val zero : t

val constant : float -> t

val term : float -> int -> t
(** [term c v] is the single-term expression [c * v]. *)

val var : int -> t
(** [var v] is [term 1.0 v]. *)

val of_terms : ?constant:float -> (float * int) list -> t
(** Build from a coefficient/variable list; duplicate variables are summed. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val add_term : t -> float -> int -> t
(** [add_term e c v] is [e + c * v]. *)

val get_constant : t -> float

val coef : t -> int -> float
(** Coefficient of a variable (0 when absent). *)

val terms : t -> (float * int) list
(** Combined terms with non-zero coefficients, in increasing variable order. *)

val num_terms : t -> int

val eval : t -> (int -> float) -> float
(** [eval e value_of] substitutes variable values. *)

val pp : Format.formatter -> t -> unit
