(** CPLEX-LP-format writer for compiled models.

    Lets any model built in this repository be dumped to a [.lp] file and
    cross-checked against an external solver, and gives the test suite a
    human-readable rendering of formulations.  Only writing is supported. *)

val to_string : Model.std -> string
(** Render the model in LP format: [Minimize], [Subject To], [Bounds],
    [General] (integer variables) and [End] sections.  The constant
    objective offset has no LP-format representation and is not emitted;
    {!Lp_parse} round trips everything else. *)

val to_channel : out_channel -> Model.std -> unit
