(* Expressions are kept as an unsorted term list plus a constant and combined
   lazily: building is O(1) per operation, and [normalize] merges duplicates
   once when the expression is consumed. *)

type t = { terms : (float * int) list; const : float }

let zero = { terms = []; const = 0.0 }

let constant c = { terms = []; const = c }

let term c v = { terms = [ (c, v) ]; const = 0.0 }

let var v = term 1.0 v

let add a b = { terms = List.rev_append a.terms b.terms; const = a.const +. b.const }

let scale k e =
  if k = 0.0 then { zero with const = 0.0 }
  else { terms = List.map (fun (c, v) -> (k *. c, v)) e.terms; const = k *. e.const }

let sub a b = add a (scale (-1.0) b)

let add_term e c v = { e with terms = (c, v) :: e.terms }

let of_terms ?(constant = 0.0) terms = { terms; const = constant }

let get_constant e = e.const

let normalize e =
  let tbl = Hashtbl.create (max 8 (List.length e.terms)) in
  let merge (c, v) =
    let prev = try Hashtbl.find tbl v with Not_found -> 0.0 in
    Hashtbl.replace tbl v (prev +. c)
  in
  List.iter merge e.terms;
  let combined = Hashtbl.fold (fun v c acc -> if c <> 0.0 then (c, v) :: acc else acc) tbl [] in
  List.sort (fun (_, v1) (_, v2) -> compare v1 v2) combined

let coef e v = List.fold_left (fun acc (c, v') -> if v' = v then acc +. c else acc) 0.0 e.terms

let terms e = normalize e

let num_terms e = List.length (normalize e)

let eval e value_of =
  List.fold_left (fun acc (c, v) -> acc +. (c *. value_of v)) e.const e.terms

let pp ppf e =
  let ts = normalize e in
  if ts = [] then Format.fprintf ppf "%g" e.const
  else begin
    let pp_term first (c, v) =
      if first then Format.fprintf ppf "%gx%d" c v
      else if c >= 0.0 then Format.fprintf ppf " + %gx%d" c v
      else Format.fprintf ppf " - %gx%d" (-.c) v;
      false
    in
    let _ = List.fold_left pp_term true ts in
    if e.const <> 0.0 then Format.fprintf ppf " + %g" e.const
  end
