(** CPLEX-LP-format reader for the dialect {!Lp_format} writes.

    Together with the writer this gives the solver a round-trippable
    external representation: models can be dumped, inspected or edited by
    hand, re-read, and solved.  The supported grammar is the writer's
    output: a [Minimize] section with one objective row, [Subject To] rows
    ([<=], [>=], [=]), a [Bounds] section (one line per variable: either
    [name = v] or [lo <= name <= hi] with [-inf]/[+inf]), an optional
    [General] integer section and [End].

    Variables are indexed in [Bounds]-section order, which is how the
    writer emits them, so a write→parse round trip preserves variable
    indices. *)

val parse : string -> (Model.std, string) result
(** Parse a model; the error string carries the offending line. *)

val parse_file : string -> (Model.std, string) result
