lib/mip/lp_parse.mli: Model
