lib/mip/lp_format.ml: Array Buffer Float List Model Printf String
