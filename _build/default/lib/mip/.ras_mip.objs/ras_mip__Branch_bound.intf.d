lib/mip/branch_bound.mli: Model
