lib/mip/lin_expr.ml: Format Hashtbl List
