lib/mip/simplex.mli: Model
