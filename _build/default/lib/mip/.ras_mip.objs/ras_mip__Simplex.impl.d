lib/mip/simplex.ml: Array Float Model
