lib/mip/lp_format.mli: Model
