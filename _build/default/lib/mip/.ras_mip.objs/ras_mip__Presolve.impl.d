lib/mip/presolve.ml: Array Float List Model Printf
