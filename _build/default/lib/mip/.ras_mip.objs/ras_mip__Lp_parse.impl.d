lib/mip/lp_parse.ml: Array Buffer Hashtbl In_channel Lin_expr List Model Printf String
