lib/mip/mps_format.mli: Model
