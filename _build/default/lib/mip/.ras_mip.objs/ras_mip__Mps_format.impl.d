lib/mip/mps_format.ml: Array Buffer Float Model Printf String
