lib/mip/branch_bound.ml: Array Float List Model Presolve Simplex Unix
