lib/mip/lin_expr.mli: Format
