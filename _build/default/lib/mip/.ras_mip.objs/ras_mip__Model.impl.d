lib/mip/model.ml: Array Float Format Lin_expr List Printf
