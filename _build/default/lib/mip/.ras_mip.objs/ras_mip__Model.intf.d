lib/mip/model.mli: Format Lin_expr
