lib/mip/presolve.mli: Model
