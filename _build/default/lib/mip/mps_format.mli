(** Free-form MPS writer for compiled models.

    MPS is the oldest and most widely accepted exchange format for linear
    and mixed-integer programs; emitting it lets any external solver consume
    models built here (the LP format in {!Lp_format} is the more readable
    sibling).  Sections emitted: [NAME], [ROWS], [COLUMNS] (with
    [MARKER]/[INTORG]/[INTEND] for integer variables), [RHS], [BOUNDS] and
    [ENDATA].  Like the LP writer, the constant objective offset has no
    representation and is dropped. *)

val to_string : ?name:string -> Model.std -> string

val to_channel : ?name:string -> out_channel -> Model.std -> unit
