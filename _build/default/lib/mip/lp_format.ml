let sanitize name =
  (* LP-format identifiers must avoid operators and cannot start with a
     digit or a letter 'e' followed by a digit; a conservative mangle keeps
     names readable. *)
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  if s = "" then "_"
  else
    match s.[0] with
    | '0' .. '9' | '.' -> "v" ^ s
    | _ -> s

let write_terms buf names cols coefs =
  let n = Array.length cols in
  if n = 0 then Buffer.add_string buf "0";
  for k = 0 to n - 1 do
    let c = coefs.(k) in
    if k = 0 then
      if c < 0.0 then Buffer.add_string buf (Printf.sprintf "- %.12g %s" (-.c) (sanitize names.(cols.(k))))
      else Buffer.add_string buf (Printf.sprintf "%.12g %s" c (sanitize names.(cols.(k))))
    else if c < 0.0 then
      Buffer.add_string buf (Printf.sprintf " - %.12g %s" (-.c) (sanitize names.(cols.(k))))
    else Buffer.add_string buf (Printf.sprintf " + %.12g %s" c (sanitize names.(cols.(k))))
  done

let to_buffer buf (std : Model.std) =
  Buffer.add_string buf "Minimize\n obj: ";
  let ocols = ref [] and ocoefs = ref [] in
  for j = std.nvars - 1 downto 0 do
    if std.obj.(j) <> 0.0 then begin
      ocols := j :: !ocols;
      ocoefs := std.obj.(j) :: !ocoefs
    end
  done;
  if !ocols = [] then Buffer.add_string buf "0"
  else write_terms buf std.var_names (Array.of_list !ocols) (Array.of_list !ocoefs);
  Buffer.add_string buf "\nSubject To\n";
  for i = 0 to std.nrows - 1 do
    Buffer.add_string buf (Printf.sprintf " %s: " (sanitize std.row_names.(i)));
    if Array.length std.row_cols.(i) = 0 then Buffer.add_string buf "0"
    else write_terms buf std.var_names std.row_cols.(i) std.row_coefs.(i);
    let op = match std.row_sense.(i) with Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "=" in
    Buffer.add_string buf (Printf.sprintf " %s %.12g\n" op std.rhs.(i))
  done;
  Buffer.add_string buf "Bounds\n";
  for j = 0 to std.nvars - 1 do
    let name = sanitize std.var_names.(j) in
    let lo = std.lb.(j) and hi = std.ub.(j) in
    if lo = hi then Buffer.add_string buf (Printf.sprintf " %s = %.12g\n" name lo)
    else begin
      let lo_s = if Float.is_finite lo then Printf.sprintf "%.12g" lo else "-inf" in
      let hi_s = if Float.is_finite hi then Printf.sprintf "%.12g" hi else "+inf" in
      Buffer.add_string buf (Printf.sprintf " %s <= %s <= %s\n" lo_s name hi_s)
    end
  done;
  let ints = ref [] in
  for j = std.nvars - 1 downto 0 do
    if std.integer.(j) then ints := j :: !ints
  done;
  if !ints <> [] then begin
    Buffer.add_string buf "General\n";
    List.iter (fun j -> Buffer.add_string buf (Printf.sprintf " %s\n" (sanitize std.var_names.(j)))) !ints
  end;
  Buffer.add_string buf "End\n"

let to_string std =
  let buf = Buffer.create 4096 in
  to_buffer buf std;
  Buffer.contents buf

let to_channel oc std = output_string oc (to_string std)
