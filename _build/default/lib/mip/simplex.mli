(** Bounded-variable primal simplex for linear programs in {!Model.std} form.

    The implementation is a revised simplex with an explicitly maintained
    dense basis inverse:

    - slack columns are appended internally (one per row) so the working
      problem is [min c.x  s.t.  Ax + s = b] with bounds on every column;
    - infeasible starts are handled by a piecewise-linear phase 1 that
      minimizes the total bound violation of basic variables (no artificial
      columns are added);
    - pricing is Dantzig's rule with an automatic switch to Bland's rule
      after a run of degenerate pivots, which guarantees termination;
    - the basis inverse is refactorized (rebuilt by Gauss–Jordan elimination
      from the current basis) periodically and before declaring optimality,
      bounding numerical drift.

    Integrality markers in the input are ignored: this is the LP relaxation
    solver used by {!Branch_bound}. *)

type result =
  | Optimal of {
      x : float array;
      obj : float;
      iterations : int;
      duals : float array;
    }
      (** [x] has one entry per structural variable; [obj] includes the
          model's objective offset; [duals] holds one simplex multiplier per
          row — the shadow price of the constraint at the optimum (zero for
          non-binding rows). *)
  | Infeasible of { infeasibility : int }
      (** Phase 1 converged with the given number of still-violated basic
          variables. *)
  | Unbounded
  | Iteration_limit of { feasible : bool; obj : float }
      (** The iteration budget ran out; [obj] is meaningful only when
          [feasible]. *)

val solve :
  ?max_iters:int ->
  ?feas_tol:float ->
  ?dual_tol:float ->
  ?lb:float array ->
  ?ub:float array ->
  Model.std ->
  result
(** [solve std] solves the LP relaxation.  [lb]/[ub] override the structural
    variable bounds without touching [std] (this is how branch-and-bound
    explores nodes).  Defaults: [max_iters] scales with problem size,
    [feas_tol = 1e-7], [dual_tol = 1e-7]. *)
