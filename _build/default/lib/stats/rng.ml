type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 output function: xor-shift-multiply finalizer over a Weyl
   sequence.  Constants from the reference implementation. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int; the modulo
     bias is negligible for n << 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  (* 53 random bits scaled to [0, 1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
