(** Descriptive statistics over samples: means, variance, percentiles and
    fixed-width histograms.  Used by every benchmark to report the same
    aggregates the paper plots (mean / p95 / p99, variance, distributions). *)

type t
(** An online accumulator of float samples.  Samples are retained so exact
    percentiles can be computed. *)

val create : unit -> t

val add : t -> float -> unit

val add_list : t -> float list -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** Mean of the samples; [nan] when empty. *)

val variance : t -> float
(** Population variance; [nan] when empty. *)

val stddev : t -> float

val min_value : t -> float
(** Smallest sample; [nan] when empty. *)

val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in \[0, 100\] with linear interpolation between
    order statistics; [nan] when empty.  Raises [Invalid_argument] for [p]
    outside the range. *)

val samples : t -> float array
(** A sorted copy of all samples. *)

type histogram = { lo : float; hi : float; counts : int array }
(** Equal-width bins over \[lo, hi); samples outside are clamped to the
    extreme bins. *)

val histogram : t -> bins:int -> histogram
(** Raises [Invalid_argument] if [bins <= 0] or the accumulator is empty. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: count, mean, p50/p95/p99, min/max. *)
