let uniform rng ~lo ~hi = lo +. Rng.float rng (hi -. lo)

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  let u = 1.0 -. Rng.float rng 1.0 in
  -.log u /. rate

let normal rng ~mean ~stddev =
  let u1 = 1.0 -. Rng.float rng 1.0 in
  let u2 = Rng.float rng 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~stddev:sigma)

let zipf rng ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let u = Rng.float rng total in
  let rec loop i acc =
    if i = n - 1 then n
    else
      let acc = acc +. weights.(i) in
      if u < acc then i + 1 else loop (i + 1) acc
  in
  loop 0 0.0

let poisson rng ~mean =
  if mean <= 0.0 then 0
  else if mean > 30.0 then
    (* Normal approximation with continuity correction. *)
    let x = normal rng ~mean ~stddev:(sqrt mean) in
    max 0 (int_of_float (Float.round x))
  else
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. Rng.float rng 1.0 in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0

let categorical rng weights =
  let total =
    Array.fold_left
      (fun acc w ->
        if w < 0.0 then invalid_arg "Dist.categorical: negative weight";
        acc +. w)
      0.0 weights
  in
  if total <= 0.0 then invalid_arg "Dist.categorical: zero total weight";
  let u = Rng.float rng total in
  let n = Array.length weights in
  let rec loop i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else loop (i + 1) acc
  in
  loop 0 0.0

let bernoulli rng ~p = Rng.float rng 1.0 < p
