(** Random distributions used by the synthetic workload, topology and failure
    generators.  All samplers take an explicit {!Rng.t} stream. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform in \[lo, hi). *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with rate [rate] (mean [1 /. rate]).  Used for failure
    inter-arrival times.  Raises [Invalid_argument] if [rate <= 0]. *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** Log-normal: [exp (normal mu sigma)].  Capacity-request sizes in the paper
    (Fig. 4) span 1–30,000 units with a heavy upper tail, which a log-normal
    reproduces. *)

val zipf : Rng.t -> n:int -> s:float -> int
(** Zipf-like rank in \[1, n\] with exponent [s], sampled by inverse CDF over
    precomputed weights.  Used for service popularity. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson counts (Knuth's method for small means, normal approximation for
    large ones). *)

val categorical : Rng.t -> float array -> int
(** [categorical rng weights] picks index [i] with probability proportional
    to [weights.(i)].  Raises [Invalid_argument] if all weights are zero or
    any is negative. *)

val bernoulli : Rng.t -> p:float -> bool
(** True with probability [p]. *)
