lib/stats/rng.mli:
