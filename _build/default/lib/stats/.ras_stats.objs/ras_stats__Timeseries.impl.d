lib/stats/timeseries.ml: Array Format Hashtbl List
