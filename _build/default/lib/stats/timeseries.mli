(** Time-stamped metric series collected during simulation.  Every evaluation
    figure that plots a quantity over weeks or months of region time is backed
    by one of these. *)

type t

val create : name:string -> t

val name : t -> string

val record : t -> time:float -> float -> unit
(** Append an observation.  Times need not be distinct but must be
    non-decreasing; raises [Invalid_argument] otherwise. *)

val length : t -> int

val points : t -> (float * float) array
(** All (time, value) points in recording order. *)

val last : t -> (float * float) option

val value_at : t -> float -> float option
(** [value_at t time] is the most recent value recorded at or before [time]. *)

val window_mean : t -> lo:float -> hi:float -> float
(** Mean of values with time in \[lo, hi); [nan] when no points fall in the
    window. *)

val bucketize : t -> width:float -> f:(float array -> float) -> (float * float) array
(** [bucketize t ~width ~f] groups points into consecutive time buckets of
    [width] starting at the first point's time and reduces each non-empty
    bucket with [f] (e.g. mean, max).  Returns (bucket start, reduced value)
    pairs.  Used to produce the paper's "per 60-minute window" style plots. *)

val pp_table : ?max_rows:int -> Format.formatter -> t -> unit
(** Render as a two-column table, sub-sampling to at most [max_rows]
    (default 20). *)
