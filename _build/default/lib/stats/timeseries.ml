type t = {
  name : string;
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create ~name = { name; times = Array.make 16 0.0; values = Array.make 16 0.0; len = 0 }

let name t = t.name

let grow t =
  let cap = Array.length t.times in
  if t.len = cap then begin
    let times = Array.make (2 * cap) 0.0 and values = Array.make (2 * cap) 0.0 in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.values 0 values 0 t.len;
    t.times <- times;
    t.values <- values
  end

let record t ~time v =
  if t.len > 0 && time < t.times.(t.len - 1) then
    invalid_arg "Timeseries.record: time went backwards";
  grow t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- v;
  t.len <- t.len + 1

let length t = t.len

let points t = Array.init t.len (fun i -> (t.times.(i), t.values.(i)))

let last t = if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))

let value_at t time =
  (* Binary search for the rightmost index with times.(i) <= time. *)
  if t.len = 0 || t.times.(0) > time then None
  else begin
    let lo = ref 0 and hi = ref (t.len - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.times.(mid) <= time then lo := mid else hi := mid - 1
    done;
    Some t.values.(!lo)
  end

let window_mean t ~lo ~hi =
  let sum = ref 0.0 and n = ref 0 in
  for i = 0 to t.len - 1 do
    if t.times.(i) >= lo && t.times.(i) < hi then begin
      sum := !sum +. t.values.(i);
      incr n
    end
  done;
  if !n = 0 then nan else !sum /. float_of_int !n

let bucketize t ~width ~f =
  if t.len = 0 then [||]
  else begin
    let start = t.times.(0) in
    let buckets = Hashtbl.create 64 in
    for i = 0 to t.len - 1 do
      let b = int_of_float ((t.times.(i) -. start) /. width) in
      let existing = try Hashtbl.find buckets b with Not_found -> [] in
      Hashtbl.replace buckets b (t.values.(i) :: existing)
    done;
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) buckets [] in
    let keys = List.sort compare keys in
    let row k =
      let vs = Array.of_list (List.rev (Hashtbl.find buckets k)) in
      (start +. (float_of_int k *. width), f vs)
    in
    Array.of_list (List.map row keys)
  end

let pp_table ?(max_rows = 20) ppf t =
  Format.fprintf ppf "@[<v>%s (%d points)@," t.name t.len;
  if t.len > 0 then begin
    let step = max 1 (t.len / max_rows) in
    let i = ref 0 in
    while !i < t.len do
      Format.fprintf ppf "  t=%-12.1f %g@," t.times.(!i) t.values.(!i);
      i := !i + step
    done
  end;
  Format.fprintf ppf "@]"
