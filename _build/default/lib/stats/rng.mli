(** Deterministic, splittable pseudo-random number generator.

    All stochastic inputs in this repository flow through this module so that
    every experiment regenerates bit-identically from a seed.  The generator
    is splitmix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, fast, high
    quality 64-bit generator whose state advances by a Weyl sequence, which
    makes it trivially splittable into independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent child generator and advances [t].
    Streams obtained by successive splits are statistically independent. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in \[0, n).  Raises [Invalid_argument] if [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in \[0, x). *)

val bool : t -> bool
(** Fair coin. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.  Raises [Invalid_argument] on an
    empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
