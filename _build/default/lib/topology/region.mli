(** Regional datacenter topology (paper §2.1, Fig. 1).

    A region is a set of datacenters connected by a low-latency network; each
    datacenter contains several main-switch-board (MSB) fault domains; an MSB
    contains racks of servers.  The MSB is the largest failure/maintenance
    scope RAS prepares for, so most of the allocator reasons at MSB
    granularity with racks appearing only in phase-2 spread goals.

    Identifiers are dense region-global indices so solver code can use plain
    arrays: datacenters are [0 .. num_dcs-1], MSBs [0 .. num_msbs-1], racks
    [0 .. num_racks-1] and servers [0 .. num_servers-1]. *)

type location = {
  dc : int;  (** region-global datacenter index *)
  msb : int;  (** region-global MSB index *)
  rack : int;  (** region-global rack index *)
}

type server = { id : int; hw : Hardware.t; loc : location }

type t = {
  name : string;
  num_dcs : int;
  num_msbs : int;
  num_racks : int;
  servers : server array;  (** indexed by server id *)
  msb_dc : int array;  (** datacenter of each MSB *)
  rack_msb : int array;  (** MSB of each rack *)
  msb_deploy_order : int array;
      (** MSB indices ordered oldest-first; Fig. 13 orders its x-axis this
          way and the generator skews hardware mixes by age *)
}

val num_servers : t -> int

val servers_of_msb : t -> int -> server list
(** Servers located in the given MSB (region-global index). *)

val msbs_of_dc : t -> int -> int list

val validate : t -> (unit, string) result
(** Structural invariants: every index in range, [rack_msb]/[msb_dc]
    consistent with server locations, deploy order a permutation. *)

val hw_mix_of_msb : t -> int -> (Hardware.t * int) list
(** Count of servers per hardware subtype within one MSB (only subtypes
    present), sorted by catalog index — the per-bar data of Fig. 2. *)

val total_rru : t -> float
(** Sum of [base_rru] over all servers. *)

val pp_summary : Format.formatter -> t -> unit
