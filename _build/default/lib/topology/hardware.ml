type category = Compute | Storage | Memory | Flash | Gpu | Asic | Compute_dense

type t = {
  index : int;
  code : string;
  category : category;
  subtype : int;
  cpu_generation : int;
  cores : int;
  mem_gb : int;
  flash_tb : float;
  gpus : int;
  power_watts : float;
  base_rru : float;
}

(* The sixteen <C-S> tuples of the paper's Fig. 2 legend.  base_rru grows
   with CPU generation and core count so that newer compute is worth more
   RRUs to generation-sensitive services, while storage/flash value is
   dominated by capacity rather than generation. *)
let make index code category subtype cpu_generation cores mem_gb flash_tb gpus power_watts base_rru =
  { index; code; category; subtype; cpu_generation; cores; mem_gb; flash_tb; gpus; power_watts; base_rru }

let catalog =
  [|
    make 0 "C1" Compute 1 1 16 32 0.5 0 250.0 1.0;
    make 1 "C2-S1" Compute 1 2 24 64 0.5 0 300.0 1.3;
    make 2 "C2-S2" Compute 2 2 24 128 1.0 0 330.0 1.35;
    make 3 "C3" Compute 1 3 36 64 1.0 0 360.0 1.7;
    make 4 "C4-S1" Storage 1 1 8 32 16.0 0 400.0 1.0;
    make 5 "C4-S2" Storage 2 2 12 64 24.0 0 420.0 1.4;
    make 6 "C4-S3" Storage 3 3 16 64 32.0 0 450.0 1.8;
    make 7 "C5" Memory 1 2 24 512 1.0 0 380.0 1.4;
    make 8 "C6-S1" Flash 1 2 16 128 8.0 0 350.0 1.2;
    make 9 "C6-S2" Flash 2 3 24 128 16.0 0 380.0 1.6;
    make 10 "C7-S1" Gpu 1 1 12 128 2.0 4 900.0 1.0;
    make 11 "C7-S2" Gpu 2 2 16 256 2.0 8 1400.0 2.2;
    make 12 "C7-S3" Gpu 3 3 24 512 4.0 8 1800.0 3.5;
    make 13 "C8" Asic 1 2 12 64 1.0 2 500.0 1.5;
    make 14 "C9-S1" Compute_dense 1 3 48 128 1.0 0 420.0 2.0;
    make 15 "C9-S2" Compute_dense 2 3 64 256 2.0 0 480.0 2.4;
  |]

let count = Array.length catalog

let find_by_code code = Array.find_opt (fun h -> h.code = code) catalog

let generation_share gen =
  let n = Array.fold_left (fun acc h -> if h.cpu_generation = gen then acc + 1 else acc) 0 catalog in
  float_of_int n /. float_of_int count

let pp ppf h =
  Format.fprintf ppf "%s(gen%d, %d cores, %dGB, %.1fTB, %dgpu, %.0fW, %.2frru)" h.code
    h.cpu_generation h.cores h.mem_gb h.flash_tb h.gpus h.power_watts h.base_rru
