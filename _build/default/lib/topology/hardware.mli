(** Server hardware catalog.

    The paper (§2.2, Fig. 2) breaks hardware into [<C-S>] tuples: a category
    [C] (compute, storage, GPU, ...) and a subtype [S] within the category
    when subtypes differ enough in performance to matter.  Its example region
    exposes nine categories and the Fig. 2 legend enumerates sixteen [<C-S>]
    tuples; this catalog reproduces those sixteen entries with plausible
    resource shapes and per-generation performance. *)

type category =
  | Compute  (** general-purpose CPU servers, one per generation *)
  | Storage  (** high-capacity disk servers *)
  | Memory  (** memory-optimized *)
  | Flash  (** NVMe-heavy *)
  | Gpu  (** accelerator hosts *)
  | Asic  (** video/AI inference accelerators *)
  | Compute_dense  (** newest-generation high-core-count compute *)

type t = {
  index : int;  (** dense index into {!catalog} *)
  code : string;  (** the paper's label, e.g. "C4-S2" *)
  category : category;
  subtype : int;  (** S within the category, 1-based *)
  cpu_generation : int;  (** 1..3, drives Relative Value (Fig. 3) *)
  cores : int;
  mem_gb : int;
  flash_tb : float;
  gpus : int;
  power_watts : float;  (** nameplate draw, used by the Fig. 14 power model *)
  base_rru : float;
      (** throughput of this server type for a generation-neutral workload,
          in relative resource units; service-specific RRU values scale this
          by the service's relative value on the server's generation *)
}

val catalog : t array
(** All sixteen subtypes, ordered by [index].  The array is shared and must
    not be mutated. *)

val count : int
(** [Array.length catalog]. *)

val find_by_code : string -> t option

val generation_share : int -> float
(** Fraction of the default catalog that is of the given CPU generation
    (used by tests as a sanity check on the catalog's shape). *)

val pp : Format.formatter -> t -> unit
