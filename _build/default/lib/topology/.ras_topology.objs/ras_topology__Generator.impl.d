lib/topology/generator.ml: Array Hardware List Ras_stats Region
