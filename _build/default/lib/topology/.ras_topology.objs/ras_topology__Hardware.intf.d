lib/topology/hardware.mli: Format
