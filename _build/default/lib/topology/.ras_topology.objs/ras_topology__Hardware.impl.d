lib/topology/hardware.ml: Array Format
