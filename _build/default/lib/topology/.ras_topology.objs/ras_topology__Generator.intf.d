lib/topology/generator.mli: Region
