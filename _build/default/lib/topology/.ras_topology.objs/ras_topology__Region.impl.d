lib/topology/region.ml: Array Format Hardware
