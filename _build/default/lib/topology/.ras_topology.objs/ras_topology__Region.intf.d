lib/topology/region.mli: Format Hardware
