type location = { dc : int; msb : int; rack : int }

type server = { id : int; hw : Hardware.t; loc : location }

type t = {
  name : string;
  num_dcs : int;
  num_msbs : int;
  num_racks : int;
  servers : server array;
  msb_dc : int array;
  rack_msb : int array;
  msb_deploy_order : int array;
}

let num_servers t = Array.length t.servers

let servers_of_msb t msb =
  Array.fold_right (fun s acc -> if s.loc.msb = msb then s :: acc else acc) t.servers []

let msbs_of_dc t dc =
  let out = ref [] in
  for m = t.num_msbs - 1 downto 0 do
    if t.msb_dc.(m) = dc then out := m :: !out
  done;
  !out

let validate t =
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  if Array.length t.msb_dc <> t.num_msbs then fail "msb_dc length mismatch";
  if Array.length t.rack_msb <> t.num_racks then fail "rack_msb length mismatch";
  Array.iter (fun dc -> if dc < 0 || dc >= t.num_dcs then fail "msb_dc out of range") t.msb_dc;
  Array.iter (fun m -> if m < 0 || m >= t.num_msbs then fail "rack_msb out of range") t.rack_msb;
  Array.iteri
    (fun i s ->
      if s.id <> i then fail "server id mismatch";
      if s.loc.dc < 0 || s.loc.dc >= t.num_dcs then fail "server dc out of range";
      if s.loc.msb < 0 || s.loc.msb >= t.num_msbs then fail "server msb out of range";
      if s.loc.rack < 0 || s.loc.rack >= t.num_racks then fail "server rack out of range";
      if s.loc.rack >= 0 && s.loc.rack < t.num_racks && t.rack_msb.(s.loc.rack) <> s.loc.msb then
        fail "server rack/msb inconsistent";
      if s.loc.msb >= 0 && s.loc.msb < t.num_msbs && t.msb_dc.(s.loc.msb) <> s.loc.dc then
        fail "server msb/dc inconsistent")
    t.servers;
  if Array.length t.msb_deploy_order <> t.num_msbs then fail "deploy order length mismatch"
  else begin
    let seen = Array.make t.num_msbs false in
    Array.iter
      (fun m ->
        if m < 0 || m >= t.num_msbs then fail "deploy order out of range"
        else if seen.(m) then fail "deploy order repeats an MSB"
        else seen.(m) <- true)
      t.msb_deploy_order
  end;
  match !error with None -> Ok () | Some msg -> Error msg

let hw_mix_of_msb t msb =
  let counts = Array.make Hardware.count 0 in
  Array.iter (fun s -> if s.loc.msb = msb then counts.(s.hw.Hardware.index) <- counts.(s.hw.Hardware.index) + 1) t.servers;
  let out = ref [] in
  for i = Hardware.count - 1 downto 0 do
    if counts.(i) > 0 then out := (Hardware.catalog.(i), counts.(i)) :: !out
  done;
  !out

let total_rru t = Array.fold_left (fun acc s -> acc +. s.hw.Hardware.base_rru) 0.0 t.servers

let pp_summary ppf t =
  Format.fprintf ppf "region %s: %d DCs, %d MSBs, %d racks, %d servers" t.name t.num_dcs
    t.num_msbs t.num_racks (num_servers t)
