module Region = Ras_topology.Region
module Unavail = Ras_failures.Unavail

type owner = Free | Reservation of int | Shared_buffer | Elastic of int

type record = {
  server : Region.server;
  mutable current : owner;
  mutable target : owner;
  mutable down : Unavail.kind option;
  mutable in_use : bool;
}

type event = Went_down of int * Unavail.kind | Came_up of int

type t = {
  mutable reg : Region.t;
  mutable records : record array;
  mutable subscribers : (event -> unit) list;  (* reversed subscription order *)
}

let fresh_record server = { server; current = Free; target = Free; down = None; in_use = false }

let create reg =
  { reg; records = Array.map fresh_record reg.Region.servers; subscribers = [] }

let region t = t.reg

let num_servers t = Array.length t.records

let record t id =
  if id < 0 || id >= Array.length t.records then
    invalid_arg (Printf.sprintf "Broker.record: unknown server %d" id);
  t.records.(id)

let subscribe t f = t.subscribers <- f :: t.subscribers

let notify t ev = List.iter (fun f -> f ev) (List.rev t.subscribers)

let set_target t id owner = (record t id).target <- owner

let move t id owner =
  let r = record t id in
  if r.current <> owner then begin
    r.current <- owner;
    r.in_use <- false
  end

let mark_down t id kind =
  let r = record t id in
  if r.down <> Some kind then begin
    r.down <- Some kind;
    notify t (Went_down (id, kind))
  end

let mark_up t id =
  let r = record t id in
  if r.down <> None then begin
    r.down <- None;
    notify t (Came_up id)
  end

let set_in_use t id flag = (record t id).in_use <- flag

let extend_region t reg =
  let old_n = Array.length t.records in
  if Region.num_servers reg < old_n then
    invalid_arg "Broker.extend_region: new region is smaller";
  for i = 0 to old_n - 1 do
    if reg.Region.servers.(i).Region.id <> t.records.(i).server.Region.id then
      invalid_arg "Broker.extend_region: existing server ids changed"
  done;
  let added =
    Array.init
      (Region.num_servers reg - old_n)
      (fun k -> fresh_record reg.Region.servers.(old_n + k))
  in
  t.records <- Array.append t.records added;
  t.reg <- reg

let fold t ~init ~f = Array.fold_left f init t.records

let iter t ~f = Array.iter f t.records

let servers_with_owner t owner =
  fold t ~init:[] ~f:(fun acc r -> if r.current = owner then r.server.Region.id :: acc else acc)
  |> List.rev

let count_owner t owner =
  fold t ~init:0 ~f:(fun acc r -> if r.current = owner then acc + 1 else acc)

let available r =
  match r.down with
  | None | Some Unavail.Planned_maintenance -> true
  | Some (Unavail.Unplanned_sw | Unavail.Unplanned_hw | Unavail.Correlated) -> false

let healthy r = r.down = None
