lib/broker/broker.ml: Array List Printf Ras_failures Ras_topology
