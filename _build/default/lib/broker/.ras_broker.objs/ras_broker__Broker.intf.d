lib/broker/broker.mli: Ras_failures Ras_topology
