(** The out-of-band emergency path (paper §5.4, "capacity-request delays").

    When capacity is needed for an urgent outage, waiting up to an hour for
    the Async Solver is not acceptable; RAS allows writing server
    assignments directly to the Resource Broker without obeying all
    placement guarantees.  The next solve then repairs whatever those direct
    writes broke.

    The grant policy is deliberately simple (free pool first, then the
    shared buffer): quality comes later, from the solver. *)

type grant = {
  requested_rru : float;
  granted_rru : float;
  servers : int list;
  took_from_buffer : int;  (** servers pulled from the shared buffer *)
}

val grant :
  Ras_broker.Broker.t -> reservation:Reservation.t -> rru:float -> allow_buffer:bool -> grant
(** Bind healthy acceptable servers directly to the reservation (current and
    target both updated) until [rru] is covered or supply runs out.  With
    [allow_buffer] the shared random-failure buffer may be drained —
    dangerous, and exactly the "dipping into buffers" §5.3 warns about, so
    callers must opt in. *)
