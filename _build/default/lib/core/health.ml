module Engine = Ras_sim.Engine
module Broker = Ras_broker.Broker
module Unavail = Ras_failures.Unavail

type t = {
  broker : Broker.t;
  active_kinds : (int, Unavail.kind list ref) Hashtbl.t;  (* server -> active events *)
  mutable active : int;
}

let severity = function
  | Unavail.Correlated -> 3
  | Unavail.Unplanned_hw -> 2
  | Unavail.Unplanned_sw -> 1
  | Unavail.Planned_maintenance -> 0

let most_severe kinds =
  List.fold_left
    (fun acc k ->
      match acc with Some best when severity best >= severity k -> acc | _ -> Some k)
    None kinds

let sync t server =
  let kinds = match Hashtbl.find_opt t.active_kinds server with Some l -> !l | None -> [] in
  match most_severe kinds with
  | Some kind -> Broker.mark_down t.broker server kind
  | None -> Broker.mark_up t.broker server

let start_event t event =
  t.active <- t.active + 1;
  let servers = Unavail.servers_of (Broker.region t.broker) event in
  List.iter
    (fun server ->
      let kinds =
        match Hashtbl.find_opt t.active_kinds server with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace t.active_kinds server l;
          l
      in
      kinds := event.Unavail.kind :: !kinds;
      sync t server)
    servers

let end_event t event =
  t.active <- t.active - 1;
  let servers = Unavail.servers_of (Broker.region t.broker) event in
  List.iter
    (fun server ->
      (match Hashtbl.find_opt t.active_kinds server with
      | Some kinds ->
        (* remove one occurrence of this event's kind *)
        let removed = ref false in
        kinds :=
          List.filter
            (fun k ->
              if (not !removed) && k = event.Unavail.kind then begin
                removed := true;
                false
              end
              else true)
            !kinds
      | None -> ());
      sync t server)
    servers

let install engine broker events =
  let t = { broker; active_kinds = Hashtbl.create 1024; active = 0 } in
  List.iter
    (fun e ->
      let valid =
        match e.Unavail.scope with
        | Unavail.Server id -> id >= 0 && id < Broker.num_servers broker
        | Unavail.Rack _ | Unavail.Msb _ -> true
      in
      if valid then begin
        Engine.schedule engine ~at:e.Unavail.start_h (fun _ -> start_event t e);
        Engine.schedule engine ~at:(Unavail.end_h e) (fun _ -> end_event t e)
      end)
    events;
  t

let active_events t = t.active
