module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Engine = Ras_sim.Engine
module Unavail = Ras_failures.Unavail

type apply_stats = { moved_in_use : int; moved_unused : int; skipped_unavailable : int }

type t = {
  broker : Broker.t;
  engine : Engine.t option;
  mutable reservations : Reservation.t list;
  loans : (int, Broker.owner) Hashtbl.t;  (* lent server -> home owner *)
  mutable preempt : int -> unit;
  mutable replacements_done : int;
  mutable replacements_failed : int;
}

let set_reservations t reservations = t.reservations <- reservations

let on_preempt t f = t.preempt <- f

let home_of t id = Hashtbl.find_opt t.loans id

let reservation_of t id =
  List.find_opt (fun r -> r.Reservation.id = id && not (Reservation.is_buffer r)) t.reservations

(* Move one server, preempting its containers when in use and clearing any
   loan bookkeeping. *)
let do_move t id owner =
  let r = Broker.record t.broker id in
  if r.Broker.current <> owner then begin
    if r.Broker.in_use then t.preempt id;
    Hashtbl.remove t.loans id;
    Broker.move t.broker id owner
  end

(* Replacement search: a healthy shared-buffer server the reservation can
   use; same hardware subtype preferred.  Falls back to revoking an elastic
   loan whose home is the shared buffer. *)
let find_replacement t res ~failed_hw =
  let candidate_score (r : Broker.record) ~lent =
    (* a lent server may be reclaimed even while running opportunistic
       containers — that is the elastic contract (§3.4) *)
    if (not (Broker.healthy r)) || (r.Broker.in_use && not lent) then None
    else begin
      let hw = r.Broker.server.Region.hw in
      if res.Reservation.rru_of hw <= 0.0 then None
      else begin
        let same_subtype = hw.Ras_topology.Hardware.index = failed_hw in
        Some
          ( (if same_subtype then 0 else 1),
            (if lent then 1 else 0),
            (if r.Broker.in_use then 1 else 0),
            r.Broker.server.Region.id )
      end
    end
  in
  let best = ref None in
  Broker.iter t.broker ~f:(fun r ->
      let id = r.Broker.server.Region.id in
      let scored =
        match r.Broker.current with
        | Broker.Shared_buffer -> candidate_score r ~lent:false
        | Broker.Elastic _ when Hashtbl.find_opt t.loans id = Some Broker.Shared_buffer ->
          candidate_score r ~lent:true
        | Broker.Free | Broker.Reservation _ | Broker.Elastic _ -> None
      in
      match scored with
      | Some score -> (
        match !best with
        | Some (s, _) when s <= score -> ()
        | _ -> best := Some (score, id))
      | None -> ());
  Option.map snd !best

let replace_failed t id =
  let r = Broker.record t.broker id in
  match r.Broker.current with
  | Broker.Reservation rid -> (
    match reservation_of t rid with
    | None -> ()
    | Some res -> (
      let failed_hw = r.Broker.server.Region.hw.Ras_topology.Hardware.index in
      match find_replacement t res ~failed_hw with
      | Some replacement ->
        do_move t replacement (Broker.Reservation rid);
        Broker.set_target t.broker replacement (Broker.Reservation rid);
        t.replacements_done <- t.replacements_done + 1
      | None -> t.replacements_failed <- t.replacements_failed + 1))
  | Broker.Free | Broker.Shared_buffer | Broker.Elastic _ -> ()

let create ?engine broker =
  let t =
    {
      broker;
      engine;
      reservations = [];
      loans = Hashtbl.create 256;
      preempt = (fun _ -> ());
      replacements_done = 0;
      replacements_failed = 0;
    }
  in
  let on_event = function
    (* random failures only: planned maintenance and correlated failures are
       absorbed by capacity already inside the reservations (§3.3.1) *)
    | Broker.Went_down (id, (Unavail.Unplanned_sw | Unavail.Unplanned_hw as kind)) -> (
      ignore kind;
      (* replacement within one minute (§3.3.1) *)
      match t.engine with
      | Some engine ->
        Engine.schedule engine
          ~at:(Engine.now engine +. (1.0 /. 60.0))
          (fun _ ->
            let r = Broker.record t.broker id in
            if not (Broker.healthy r) then replace_failed t id)
      | None -> replace_failed t id)
    | Broker.Went_down _ | Broker.Came_up _ -> ()
  in
  Broker.subscribe broker on_event;
  t

let apply_plan t (plan : Concretize.plan) =
  List.iter (fun (id, owner) -> Broker.set_target t.broker id owner) plan.Concretize.targets;
  let stats = ref { moved_in_use = 0; moved_unused = 0; skipped_unavailable = 0 } in
  List.iter
    (fun (m : Concretize.move) ->
      let r = Broker.record t.broker m.Concretize.server in
      if not (Broker.available r) then
        stats := { !stats with skipped_unavailable = !stats.skipped_unavailable + 1 }
      else begin
        let in_use = r.Broker.in_use in
        do_move t m.Concretize.server m.Concretize.to_;
        if in_use then stats := { !stats with moved_in_use = !stats.moved_in_use + 1 }
        else stats := { !stats with moved_unused = !stats.moved_unused + 1 }
      end)
    plan.Concretize.moves;
  !stats

let lend_idle t ~elastic_id ~max_servers =
  let lent = ref 0 in
  Broker.iter t.broker ~f:(fun r ->
      if
        !lent < max_servers
        && r.Broker.current = Broker.Shared_buffer
        && Broker.healthy r
        && not r.Broker.in_use
      then begin
        let id = r.Broker.server.Region.id in
        Hashtbl.replace t.loans id Broker.Shared_buffer;
        Broker.move t.broker id (Broker.Elastic elastic_id);
        incr lent
      end);
  !lent

let revoke t ~elastic_id =
  let revoked = ref 0 in
  let to_revoke =
    Broker.fold t.broker ~init:[] ~f:(fun acc r ->
        if r.Broker.current = Broker.Elastic elastic_id then r.Broker.server.Region.id :: acc
        else acc)
  in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.loans id with
      | Some home ->
        let r = Broker.record t.broker id in
        if r.Broker.in_use then t.preempt id;
        Hashtbl.remove t.loans id;
        Broker.move t.broker id home;
        incr revoked
      | None -> ())
    to_revoke;
  !revoked

let loans_outstanding t = Hashtbl.length t.loans

let replacements_done t = t.replacements_done

let replacements_failed t = t.replacements_failed
