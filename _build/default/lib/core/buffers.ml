module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware
module Simplex = Ras_mip.Simplex
module Model = Ras_mip.Model

let all_categories =
  [ Hw.Compute; Hw.Storage; Hw.Memory; Hw.Flash; Hw.Gpu; Hw.Asic; Hw.Compute_dense ]

let shared_buffer_reservations region ~fraction ~first_id =
  let capacity_of category =
    Array.fold_left
      (fun acc (s : Region.server) ->
        if s.Region.hw.Hw.category = category then acc +. s.Region.hw.Hw.base_rru else acc)
      0.0 region.Region.servers
  in
  let _, reservations =
    List.fold_left
      (fun (id, acc) category ->
        let cap = fraction *. capacity_of category in
        if cap >= 1.0 then
          (id + 1, Reservation.shared_buffer ~id ~category ~capacity_rru:cap :: acc)
        else (id, acc))
      (first_id, []) all_categories
  in
  List.rev reservations

let embedded_buffer_fraction (snapshot : Snapshot.t) =
  let buffer_sum = ref 0.0 and total_sum = ref 0.0 in
  List.iter
    (fun res ->
      if (not (Reservation.is_buffer res)) && res.Reservation.embedded_buffer then begin
        let per_msb = Snapshot.rru_by_msb snapshot res in
        let total = Array.fold_left ( +. ) 0.0 per_msb in
        if total > 0.0 then begin
          buffer_sum := !buffer_sum +. Array.fold_left Float.max 0.0 per_msb;
          total_sum := !total_sum +. total
        end
      end)
    snapshot.Snapshot.reservations;
  if !total_sum > 0.0 then !buffer_sum /. !total_sum else nan

let perfect_spread_bound (region : Region.t) =
  if region.Region.num_msbs = 0 then nan else 1.0 /. float_of_int region.Region.num_msbs

let hardware_aware_bound (snapshot : Snapshot.t) reservations =
  (* buffer-only objective: no stability or spread costs, capacity enforced
     through heavy softening; the continuous relaxation gives the floor *)
  let params =
    {
      Formulation.move_cost_unused = 0.0;
      move_cost_in_use = 0.0;
      spread_penalty = 0.0;
      buffer_cost = 1.0;
      capacity_slack_cost = 1e7;
      affinity_slack_cost = 0.0;
      assignment_cost = 0.0;
      wear_penalty = 0.0;
    }
  in
  let symmetry = Symmetry.build snapshot in
  let f = Formulation.build ~params symmetry reservations in
  let std = Model.compile f.Formulation.model in
  match Simplex.solve std with
  | Simplex.Optimal { x; _ } ->
    let buffer_sum =
      List.fold_left
        (fun acc (_, z) -> acc +. x.(z))
        0.0 f.Formulation.buffer_var
    in
    let total_sum =
      List.fold_left
        (fun acc (p : Formulation.pair) ->
          if p.Formulation.res.Reservation.embedded_buffer then
            acc
            +. (p.Formulation.res.Reservation.rru_of (Symmetry.hw_of p.Formulation.cls)
                *. x.(p.Formulation.var))
          else acc)
        0.0 f.Formulation.pairs
    in
    if total_sum > 0.0 then buffer_sum /. total_sum else nan
  | Simplex.Infeasible _ | Simplex.Unbounded | Simplex.Iteration_limit _ -> nan
