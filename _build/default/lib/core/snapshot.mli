(** Solver input: an immutable view of broker state plus the reservation
    set, taken at the start of a solve (Fig. 6 step 2).

    Servers that are down with an {e unplanned} event are excluded from the
    assignable pool (the availability constraint, §3.5.1); servers under
    planned maintenance remain assignable because their replacement capacity
    is pre-baked into reservations. *)

type server_view = {
  server : Ras_topology.Region.server;
  current : Ras_broker.Broker.owner;
      (** home owner: elastic lending is resolved back to the lender before
          the snapshot is taken *)
  in_use : bool;
  usable : bool;
  attr : int;
      (** generic placement attribute (0 = none): extra server state the
          formulation prices, e.g. the SSD wear bucket of §5.2.  It is part
          of the symmetry key, so non-zero attributes deliberately break
          server symmetry — exactly the cost the paper warns new placement
          goals carry *)
}

type t = {
  region : Ras_topology.Region.t;
  servers : server_view array;  (** indexed by server id *)
  reservations : Reservation.t list;
}

val take :
  ?home_of:(int -> Ras_broker.Broker.owner option) ->
  ?attr_of:(int -> int) ->
  Ras_broker.Broker.t ->
  Reservation.t list ->
  t
(** [home_of id] resolves an elastically-lent server to its home owner
    (provided by the Online Mover); defaults to no lending.  [attr_of id]
    supplies the placement attribute (defaults to 0 everywhere). *)

val usable_servers : t -> server_view list

val current_rru : t -> Reservation.t -> float
(** Usable RRU currently bound to the reservation. *)

val rru_by_msb : t -> Reservation.t -> float array
(** Usable RRU of the reservation per MSB. *)

val rru_by_dc : t -> Reservation.t -> float array

val max_msb_share : t -> Reservation.t -> float
(** Largest per-MSB fraction of the reservation's current capacity — the
    quantity Fig. 12 tracks; [nan] when the reservation holds nothing. *)
