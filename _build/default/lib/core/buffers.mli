(** Failure-buffer sizing (paper §3.3).

    Random failures are covered by a {e shared} buffer — one special
    reservation per hardware category, sized from the long-term failure
    forecast (2% of region capacity in production).  Correlated failures are
    covered by {e embedded} buffers: every reservation holds enough extra
    capacity to survive the loss of its fullest MSB, which the solver
    minimizes by spreading (expression 4).

    This module sizes the shared buffers and computes the paper's embedded
    buffer reference points: the achieved buffer fraction, the
    hardware-aware lower bound (4.06% in the paper's 36-MSB region), and the
    perfect-spread bound (100/36 = 2.8%). *)

val shared_buffer_reservations :
  Ras_topology.Region.t -> fraction:float -> first_id:int -> Reservation.t list
(** One shared-buffer reservation per hardware category present in the
    region, each sized to [fraction] of that category's total base RRU.
    Categories with negligible capacity are skipped. *)

val embedded_buffer_fraction : Snapshot.t -> float
(** Achieved embedded-buffer share: sum over guaranteed reservations of
    their fullest-MSB capacity, divided by total allocated capacity — the
    Fig. 12 y-axis ("machines % in max MSB", capacity-weighted). *)

val perfect_spread_bound : Ras_topology.Region.t -> float
(** [1 / num_msbs]: the bound if hardware were perfectly spread. *)

val hardware_aware_bound :
  Snapshot.t -> Reservation.t list -> float
(** LP lower bound on the achievable embedded-buffer fraction given actual
    hardware placement: the continuous relaxation of the assignment problem
    with only the buffer objective (no stability costs).  This is the
    paper's "minimal required buffer capacity" (4.06%). *)
