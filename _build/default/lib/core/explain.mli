(** Visibility into optimization decisions (paper §5.3, "Lessons Learned").

    Operating a capacity system at scale requires explaining {e why} a
    reservation received its particular hardware mix and spread, and giving
    actionable reasons when requests cannot be met.  These reports are used
    by the CLI and the examples. *)

val reservation_report : Snapshot.t -> Reservation.t -> string
(** Composition of the reservation's current binding: capacity vs. request,
    hardware-subtype breakdown, per-MSB spread against the alpha_F limit,
    per-datacenter split against any affinity, and embedded-buffer coverage
    (can it survive its fullest MSB?). *)

val shortfall_reason : Snapshot.t -> Reservation.t -> shortfall:float -> string
(** Actionable explanation of a capacity shortfall: how much acceptable
    hardware exists region-wide, how much is already claimed, and which
    acceptability constraint (category/generation) is binding. *)

val solve_report : Async_solver.stats -> string
(** Timing breakdown per phase, model sizes, MIP gap in preemption units,
    move counts and remaining softened violations. *)

val shadow_prices : ?top:int -> Phases.result -> (string * float) list
(** The most expensive binding constraints of the phase's root LP: row name
    and shadow price, sorted by absolute price, at most [top] (default 10).
    A large price on a capacity row means the reservation is supply-
    constrained; on a supply row it identifies contended hardware — the
    "why did I get this composition" answer of §5.3. *)
