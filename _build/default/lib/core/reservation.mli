(** Reservations: RAS's capacity abstraction (paper §1.2, §3.1).

    A reservation is a logical cluster — a set of servers dynamically
    assigned by the solver — that provides a guaranteed amount of capacity
    in relative resource units (RRUs).  Guaranteed reservations come from
    capacity requests; RAS additionally constructs one special reservation
    per hardware category for the shared random-failure buffer (§3.5.3
    "Shared random-failure buffer"). *)

type kind =
  | Guaranteed  (** a service's reservation, from a capacity request *)
  | Random_failure_buffer of Ras_topology.Hardware.category
      (** shared buffer pool: sized by failure forecasting, spread wide, no
          embedded buffer of its own *)

type t = {
  id : int;
  name : string;
  kind : kind;
  capacity_rru : float;  (** [C_r] *)
  rru_of : Ras_topology.Hardware.t -> float;  (** [V_{s,r}]; 0 = unacceptable *)
  msb_spread_limit : float;  (** [alpha_F] *)
  rack_spread_limit : float option;  (** [alpha_K] (phase-2 goal) *)
  dc_affinity : (int * float) list;  (** [A_{r,G}] *)
  affinity_tolerance : float;  (** [theta] *)
  embedded_buffer : bool;  (** enforce expression 6 *)
  hard_msb_cap : float option;
      (** storage quorum spread (§3.3.2): cap on any MSB's fraction of the
          reservation's total bound capacity *)
  io_intensity : float;
      (** §5.2 IO-aware placement: weight of the wear objective for this
          reservation (0 disables it) *)
}

val of_request : Ras_workload.Capacity_request.t -> t
(** Reservation ids reuse request ids; guaranteed reservations of storage
    and compute alike keep their request's placement policy. *)

val shared_buffer :
  id:int -> category:Ras_topology.Hardware.category -> capacity_rru:float -> t
(** The shared random-failure buffer for one hardware category.  Treated by
    the solver "just like a large, important service that cannot be
    downsized" (§5.3). *)

val is_buffer : t -> bool

val accepts : t -> Ras_topology.Hardware.t -> bool

val pp : Format.formatter -> t -> unit
