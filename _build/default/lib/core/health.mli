(** Health Check Service (Fig. 6): replays an unavailability schedule into
    the broker as simulation time advances.

    A server may be covered by several overlapping events; the broker is
    shown the most severe active one (correlated > hardware > software >
    planned) and marked up only when the last event covering it ends. *)

type t

val install :
  Ras_sim.Engine.t -> Ras_broker.Broker.t -> Ras_failures.Unavail.t list -> t
(** Schedules down/up transitions for every event.  Events whose servers do
    not exist (e.g. from a schedule generated before a region extension) are
    ignored. *)

val active_events : t -> int
(** Events currently in their active window. *)

val severity : Ras_failures.Unavail.kind -> int
(** Correlated = 3, hardware = 2, software = 1, planned = 0. *)
