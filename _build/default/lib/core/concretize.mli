(** Turn the solver's per-class counts back into concrete server bindings.

    Within a class all members are interchangeable, so the mapping is free
    to prefer stability: members already owned by a reservation fill that
    reservation's quota first, and only the surplus moves.  Free servers are
    consumed before servers are taken away from other owners.  The result is
    the solver output of Fig. 6 step 3: a target owner per server. *)

type move = {
  server : int;
  from_ : Ras_broker.Broker.owner;
  to_ : Ras_broker.Broker.owner;
  was_in_use : bool;
}

type plan = {
  moves : move list;  (** servers whose owner changes, ascending id *)
  targets : (int * Ras_broker.Broker.owner) list;
      (** target owner for every server the solve covered (including the
          ones that stay put), ascending id *)
}

val plan : Formulation.t -> Formulation.assignment -> plan

val moves_in_use : plan -> int

val moves_unused : plan -> int
