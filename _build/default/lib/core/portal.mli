(** Capacity Portal: the validated front door for capacity requests
    (Fig. 6 step 1, §3.2, §5.3).

    Service owners create, modify and delete capacity requests here; the
    request state is the input of every solve.  Following §5.3's lesson
    ("when a capacity request gets rejected ... the rejection message needs
    to explain the reason; otherwise it is not actionable"), submission runs
    an admission check against the current snapshot and rejections carry a
    concrete, human-readable reason:

    - no acceptable hardware subtype exists in the catalog;
    - the region does not have enough acceptable hardware even if the
      request got all of it;
    - the uncommitted supply (total acceptable minus what other accepted
      requests already claim) cannot cover the request plus its buffer
      overhead.

    Admission is intentionally conservative-but-fast: it proves obvious
    infeasibility without running the solver; the solver remains the
    authority on placement-feasible allocations. *)

type t

type decision = Accepted | Rejected of string

val create : unit -> t

val submit :
  t -> Snapshot.t -> Ras_workload.Capacity_request.t -> decision
(** Validate against the snapshot and, when accepted, store the request
    (replacing any previous request with the same id). *)

val modify :
  t -> Snapshot.t -> Ras_workload.Capacity_request.t -> decision
(** Like {!submit}, but the request's own current claim is excluded from
    the committed supply while validating the new size (so growing an
    existing reservation is judged on the delta). *)

val delete : t -> int -> bool
(** Remove a request by id; false when unknown. *)

val requests : t -> Ras_workload.Capacity_request.t list
(** All accepted requests, by ascending id. *)

val find : t -> int -> Ras_workload.Capacity_request.t option

type event =
  | Submitted of int * decision
  | Modified of int * decision
  | Deleted of int

val log : t -> event list
(** Audit trail, oldest first. *)

val buffer_overhead : Ras_topology.Region.t -> Ras_workload.Capacity_request.t -> float
(** The capacity multiplier admission assumes: requests with an embedded
    buffer need roughly [1 + 1/(num_msbs - 1)] times their RRUs; plain and
    quorum requests need 1x. *)
