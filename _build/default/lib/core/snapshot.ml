module Broker = Ras_broker.Broker
module Region = Ras_topology.Region

type server_view = {
  server : Region.server;
  current : Broker.owner;
  in_use : bool;
  usable : bool;
  attr : int;
}

type t = {
  region : Region.t;
  servers : server_view array;
  reservations : Reservation.t list;
}

let take ?(home_of = fun _ -> None) ?(attr_of = fun _ -> 0) broker reservations =
  let view (r : Broker.record) =
    let id = r.Broker.server.Region.id in
    let current =
      match home_of id with Some home -> home | None -> r.Broker.current
    in
    {
      server = r.Broker.server;
      current;
      in_use = r.Broker.in_use;
      usable = Broker.available r;
      attr = attr_of id;
    }
  in
  let n = Broker.num_servers broker in
  {
    region = Broker.region broker;
    servers = Array.init n (fun id -> view (Broker.record broker id));
    reservations;
  }

let usable_servers t =
  Array.fold_right (fun v acc -> if v.usable then v :: acc else acc) t.servers []

let owned_by res v =
  match v.current with
  | Broker.Reservation id -> id = res.Reservation.id && not (Reservation.is_buffer res)
  | Broker.Shared_buffer ->
    (* buffer reservations are per hardware category, so category membership
       identifies which buffer reservation holds the server *)
    Reservation.is_buffer res && res.Reservation.rru_of v.server.Region.hw > 0.0
  | Broker.Free | Broker.Elastic _ -> false

let current_rru t res =
  Array.fold_left
    (fun acc v ->
      if v.usable && owned_by res v then acc +. res.Reservation.rru_of v.server.Region.hw
      else acc)
    0.0 t.servers

let rru_by_msb t res =
  let out = Array.make t.region.Region.num_msbs 0.0 in
  Array.iter
    (fun v ->
      if v.usable && owned_by res v then begin
        let m = v.server.Region.loc.Region.msb in
        out.(m) <- out.(m) +. res.Reservation.rru_of v.server.Region.hw
      end)
    t.servers;
  out

let rru_by_dc t res =
  let out = Array.make t.region.Region.num_dcs 0.0 in
  Array.iter
    (fun v ->
      if v.usable && owned_by res v then begin
        let d = v.server.Region.loc.Region.dc in
        out.(d) <- out.(d) +. res.Reservation.rru_of v.server.Region.hw
      end)
    t.servers;
  out

let max_msb_share t res =
  let per_msb = rru_by_msb t res in
  let total = Array.fold_left ( +. ) 0.0 per_msb in
  if total <= 0.0 then nan
  else Array.fold_left Float.max 0.0 per_msb /. total
