module Broker = Ras_broker.Broker
module Region = Ras_topology.Region

type grant = {
  requested_rru : float;
  granted_rru : float;
  servers : int list;
  took_from_buffer : int;
}

let grant broker ~reservation ~rru ~allow_buffer =
  let owner = Broker.Reservation reservation.Reservation.id in
  let granted = ref 0.0 and servers = ref [] and from_buffer = ref 0 in
  let try_take ~source =
    Broker.iter broker ~f:(fun r ->
        if !granted < rru && r.Broker.current = source && Broker.healthy r && not r.Broker.in_use
        then begin
          let v = reservation.Reservation.rru_of r.Broker.server.Region.hw in
          if v > 0.0 then begin
            let id = r.Broker.server.Region.id in
            Broker.move broker id owner;
            Broker.set_target broker id owner;
            granted := !granted +. v;
            servers := id :: !servers;
            if source = Broker.Shared_buffer then incr from_buffer
          end
        end)
  in
  try_take ~source:Broker.Free;
  if !granted < rru && allow_buffer then try_take ~source:Broker.Shared_buffer;
  {
    requested_rru = rru;
    granted_rru = !granted;
    servers = List.rev !servers;
    took_from_buffer = !from_buffer;
  }
