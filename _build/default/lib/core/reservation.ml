module Hw = Ras_topology.Hardware
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request

type kind = Guaranteed | Random_failure_buffer of Hw.category

type t = {
  id : int;
  name : string;
  kind : kind;
  capacity_rru : float;
  rru_of : Hw.t -> float;
  msb_spread_limit : float;
  rack_spread_limit : float option;
  dc_affinity : (int * float) list;
  affinity_tolerance : float;
  embedded_buffer : bool;
  hard_msb_cap : float option;
  io_intensity : float;
}

let of_request (req : Capacity_request.t) =
  {
    id = req.Capacity_request.id;
    name = req.Capacity_request.service.Service.name;
    kind = Guaranteed;
    capacity_rru = req.Capacity_request.rru;
    rru_of = Service.rru_of req.Capacity_request.service;
    msb_spread_limit = req.Capacity_request.msb_spread_limit;
    rack_spread_limit = req.Capacity_request.rack_spread_limit;
    dc_affinity = req.Capacity_request.dc_affinity;
    affinity_tolerance = req.Capacity_request.affinity_tolerance;
    embedded_buffer = req.Capacity_request.embedded_buffer;
    hard_msb_cap = req.Capacity_request.hard_msb_cap;
    io_intensity = req.Capacity_request.io_intensity;
  }

let category_name = function
  | Hw.Compute -> "compute"
  | Hw.Storage -> "storage"
  | Hw.Memory -> "memory"
  | Hw.Flash -> "flash"
  | Hw.Gpu -> "gpu"
  | Hw.Asic -> "asic"
  | Hw.Compute_dense -> "compute-dense"

let shared_buffer ~id ~category ~capacity_rru =
  {
    id;
    name = Printf.sprintf "shared-buffer-%s" (category_name category);
    kind = Random_failure_buffer category;
    capacity_rru;
    rru_of = (fun hw -> if hw.Hw.category = category then hw.Hw.base_rru else 0.0);
    msb_spread_limit = 0.15;
    rack_spread_limit = None;
    dc_affinity = [];
    affinity_tolerance = 0.1;
    embedded_buffer = false;
    hard_msb_cap = None;
    io_intensity = 0.0;
  }

let is_buffer t = match t.kind with Random_failure_buffer _ -> true | Guaranteed -> false

let accepts t hw = t.rru_of hw > 0.0

let pp ppf t =
  Format.fprintf ppf "reservation#%d %s C=%.1f spread<=%.2f buffer=%b" t.id t.name
    t.capacity_rru t.msb_spread_limit t.embedded_buffer
