lib/core/online_mover.mli: Concretize Ras_broker Ras_sim Reservation
