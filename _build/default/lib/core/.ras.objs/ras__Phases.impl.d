lib/core/phases.ml: Array Formulation Gc Ras_mip Symmetry Unix
