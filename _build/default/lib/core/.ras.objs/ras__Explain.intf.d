lib/core/explain.mli: Async_solver Phases Reservation Snapshot
