lib/core/concretize.ml: Array Formulation Hashtbl List Ras_broker Reservation Snapshot Symmetry
