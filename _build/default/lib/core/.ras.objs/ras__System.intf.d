lib/core/system.mli: Async_solver Online_mover Ras_broker Ras_failures Ras_sim Ras_twine Ras_workload Reservation Snapshot
