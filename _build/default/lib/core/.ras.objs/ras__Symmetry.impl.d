lib/core/symmetry.ml: Array Hashtbl List Ras_broker Ras_topology Reservation Snapshot
