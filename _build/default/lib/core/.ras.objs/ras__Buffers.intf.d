lib/core/buffers.mli: Ras_topology Reservation Snapshot
