lib/core/async_solver.ml: Array Concretize Float Formulation Hashtbl Int List Phases Ras_broker Ras_mip Ras_topology Reservation Snapshot Unix
