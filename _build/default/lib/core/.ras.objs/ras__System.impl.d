lib/core/system.ml: Async_solver Buffers Float Hashtbl Health List Online_mover Printf Ras_broker Ras_sim Ras_topology Ras_twine Ras_workload Reservation Snapshot
