lib/core/health.ml: Hashtbl List Ras_broker Ras_failures Ras_sim
