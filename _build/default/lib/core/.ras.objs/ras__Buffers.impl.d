lib/core/buffers.ml: Array Float Formulation List Ras_mip Ras_topology Reservation Snapshot Symmetry
