lib/core/async_solver.mli: Concretize Formulation Phases Snapshot
