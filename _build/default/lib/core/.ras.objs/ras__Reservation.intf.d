lib/core/reservation.mli: Format Ras_topology Ras_workload
