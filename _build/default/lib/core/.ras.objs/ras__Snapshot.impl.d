lib/core/snapshot.ml: Array Float Ras_broker Ras_topology Reservation
