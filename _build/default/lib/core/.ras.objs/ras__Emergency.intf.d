lib/core/emergency.mli: Ras_broker Reservation
