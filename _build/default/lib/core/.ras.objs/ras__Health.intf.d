lib/core/health.mli: Ras_broker Ras_failures Ras_sim
