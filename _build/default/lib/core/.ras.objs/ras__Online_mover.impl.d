lib/core/online_mover.ml: Concretize Hashtbl List Option Ras_broker Ras_failures Ras_sim Ras_topology Reservation
