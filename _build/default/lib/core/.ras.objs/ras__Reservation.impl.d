lib/core/reservation.ml: Format Printf Ras_topology Ras_workload
