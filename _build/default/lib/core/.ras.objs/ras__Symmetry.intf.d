lib/core/symmetry.mli: Ras_broker Ras_topology Reservation Snapshot
