lib/core/phases.mli: Formulation Ras_mip Reservation Snapshot
