lib/core/snapshot.mli: Ras_broker Ras_topology Reservation
