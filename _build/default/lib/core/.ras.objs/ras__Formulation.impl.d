lib/core/formulation.ml: Array Float Hashtbl List Printf Ras_broker Ras_mip Ras_topology Reservation Symmetry
