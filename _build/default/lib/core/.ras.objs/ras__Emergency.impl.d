lib/core/emergency.ml: List Ras_broker Ras_topology Reservation
