lib/core/formulation.mli: Ras_mip Reservation Symmetry
