lib/core/explain.ml: Array Async_solver Buffer Float List Phases Printf Ras_broker Ras_mip Ras_topology Reservation Snapshot
