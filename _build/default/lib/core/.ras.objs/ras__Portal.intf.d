lib/core/portal.mli: Ras_topology Ras_workload Snapshot
