lib/core/portal.ml: Array Hashtbl List Printf Ras_topology Ras_workload Snapshot
