lib/core/concretize.mli: Formulation Ras_broker
