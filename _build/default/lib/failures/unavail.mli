(** Server-unavailability events (paper §2.5, Fig. 5).

    An event makes every server under its scope unavailable for a period.
    Scopes mirror the fault domains RAS reasons about: a single server (the
    paper's "random failures", including ToR-switch losses which we fold
    into rack scope), a rack, or a whole MSB (the largest correlated-failure
    and planned-maintenance granularity). *)

type scope = Server of int | Rack of int | Msb of int

type kind =
  | Planned_maintenance  (** infrastructure-controlled; replacement capacity
                             is pre-baked into reservations, §3.3.1 *)
  | Unplanned_sw  (** software events: short, frequent *)
  | Unplanned_hw  (** hardware repairs: rare, last weeks *)
  | Correlated  (** power/network/cooling domain loss, up to a full MSB *)

type t = {
  id : int;
  scope : scope;
  kind : kind;
  start_h : float;  (** hours since scenario start *)
  duration_h : float;
}

val planned : t -> bool
(** Planned events count as usable capacity for solver purposes (§3.5.1):
    only [Planned_maintenance]. *)

val end_h : t -> float

val active_at : t -> float -> bool

val servers_of : Ras_topology.Region.t -> t -> int list
(** Ids of all servers the event covers. *)

val kind_name : kind -> string

val pp : Format.formatter -> t -> unit
