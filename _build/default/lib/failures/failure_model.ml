module Rng = Ras_stats.Rng
module Dist = Ras_stats.Dist
module Region = Ras_topology.Region

type params = {
  maintenance_cycle_days : float;
  maintenance_hours : float;
  sw_events_per_server_day : float;
  sw_hours_mean : float;
  hw_events_per_server_day : float;
  hw_days_mean : float;
  correlated_per_month : float;
  correlated_hours_mean : float;
  sw_spike_per_month : float;
  sw_spike_fraction : float;
}

let default_params =
  {
    maintenance_cycle_days = 14.0;
    maintenance_hours = 6.0;
    (* ~0.3% down at a time with 3h mean duration => 0.024 arrivals/server/day *)
    sw_events_per_server_day = 0.024;
    sw_hours_mean = 3.0;
    (* ~0.1% of fleet in repair, repairs last ~2 weeks *)
    hw_events_per_server_day = 0.001 /. 14.0;
    hw_days_mean = 14.0;
    correlated_per_month = 1.0;
    correlated_hours_mean = 12.0;
    sw_spike_per_month = 1.5;
    sw_spike_fraction = 0.03;
  }

let calm_params =
  {
    default_params with
    sw_events_per_server_day = 0.0;
    hw_events_per_server_day = 0.0;
    correlated_per_month = 0.0;
    sw_spike_per_month = 0.0;
  }

(* Rolling maintenance: each MSB gets one pass per cycle, staggered so MSBs
   do not overlap unnecessarily; a pass runs four sequential batches of 25%
   of the MSB's racks (§3.3.1: concurrent maintenance is limited to 25% of
   an MSB). *)
let maintenance_events rng region p ~horizon_days next_id =
  let events = ref [] in
  let cycle_h = p.maintenance_cycle_days *. 24.0 in
  let horizon_h = horizon_days *. 24.0 in
  let racks_of_msb =
    Array.make region.Region.num_msbs []
  in
  Array.iteri
    (fun r m -> racks_of_msb.(m) <- r :: racks_of_msb.(m))
    region.Region.rack_msb;
  for msb = 0 to region.Region.num_msbs - 1 do
    let offset = Rng.float rng cycle_h in
    let racks = Array.of_list racks_of_msb.(msb) in
    let nracks = Array.length racks in
    if nracks > 0 then begin
      let batch = max 1 ((nracks + 3) / 4) in
      let start = ref offset in
      while !start < horizon_h do
        for b = 0 to 3 do
          let batch_start = !start +. (float_of_int b *. p.maintenance_hours) in
          if batch_start < horizon_h then
            for k = b * batch to min ((b + 1) * batch) nracks - 1 do
              let id = !next_id in
              incr next_id;
              events :=
                {
                  Unavail.id;
                  scope = Unavail.Rack racks.(k);
                  kind = Unavail.Planned_maintenance;
                  start_h = batch_start;
                  duration_h = p.maintenance_hours;
                }
                :: !events
            done
        done;
        start := !start +. cycle_h
      done
    end
  done;
  !events

let poisson_stream rng ~rate_per_h ~horizon_h ~make =
  let events = ref [] in
  if rate_per_h > 0.0 then begin
    let t = ref (Dist.exponential rng ~rate:rate_per_h) in
    while !t < horizon_h do
      events := make !t :: !events;
      t := !t +. Dist.exponential rng ~rate:rate_per_h
    done
  end;
  !events

let generate rng region p ~horizon_days =
  let horizon_h = horizon_days *. 24.0 in
  let n = Region.num_servers region in
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  let maint = maintenance_events rng region p ~horizon_days next_id in
  let sw =
    poisson_stream rng
      ~rate_per_h:(p.sw_events_per_server_day *. float_of_int n /. 24.0)
      ~horizon_h
      ~make:(fun t ->
        {
          Unavail.id = fresh ();
          scope = Unavail.Server (Rng.int rng n);
          kind = Unavail.Unplanned_sw;
          start_h = t;
          duration_h = Float.max 0.25 (Dist.exponential rng ~rate:(1.0 /. p.sw_hours_mean));
        })
  in
  let hw =
    poisson_stream rng
      ~rate_per_h:(p.hw_events_per_server_day *. float_of_int n /. 24.0)
      ~horizon_h
      ~make:(fun t ->
        {
          Unavail.id = fresh ();
          scope = Unavail.Server (Rng.int rng n);
          kind = Unavail.Unplanned_hw;
          start_h = t;
          duration_h = 24.0 *. Float.max 1.0 (Dist.exponential rng ~rate:(1.0 /. p.hw_days_mean));
        })
  in
  let correlated =
    poisson_stream rng
      ~rate_per_h:(p.correlated_per_month /. (30.0 *. 24.0))
      ~horizon_h
      ~make:(fun t ->
        {
          Unavail.id = fresh ();
          scope = Unavail.Msb (Rng.int rng region.Region.num_msbs);
          kind = Unavail.Correlated;
          start_h = t;
          duration_h =
            Float.max 1.0 (Dist.exponential rng ~rate:(1.0 /. p.correlated_hours_mean));
        })
  in
  (* Region-wide bad software pushes: many simultaneous single-server events
     produce the >3% unplanned spikes of Fig. 5. *)
  let spikes =
    poisson_stream rng
      ~rate_per_h:(p.sw_spike_per_month /. (30.0 *. 24.0))
      ~horizon_h
      ~make:(fun t ->
        {
          Unavail.id = fresh ();
          scope = Unavail.Server (Rng.int rng n);
          kind = Unavail.Unplanned_sw;
          start_h = t;
          duration_h = 1.0;
        })
  in
  let expand_spike e =
    (* replicate a spike seed across a random sample of servers *)
    let count = int_of_float (p.sw_spike_fraction *. float_of_int n) in
    List.init count (fun _ ->
        {
          Unavail.id = fresh ();
          scope = Unavail.Server (Rng.int rng n);
          kind = Unavail.Unplanned_sw;
          start_h = e.Unavail.start_h;
          duration_h = Dist.uniform rng ~lo:0.5 ~hi:2.0;
        })
  in
  let spike_events = List.concat_map expand_spike spikes in
  let all = maint @ sw @ hw @ correlated @ spike_events in
  List.sort (fun a b -> compare a.Unavail.start_h b.Unavail.start_h) all

let unavailable_fraction region events ~at ~kinds =
  let n = Region.num_servers region in
  if n = 0 then 0.0
  else begin
    let down = Array.make n false in
    List.iter
      (fun e ->
        if List.mem e.Unavail.kind kinds && Unavail.active_at e at then
          List.iter (fun s -> down.(s) <- true) (Unavail.servers_of region e))
      events;
    let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 down in
    float_of_int count /. float_of_int n
  end

let series region events ~horizon_days ~window_h ~kinds =
  let horizon_h = horizon_days *. 24.0 in
  let windows = int_of_float (horizon_h /. window_h) in
  Array.init windows (fun w ->
      let t = (float_of_int w +. 0.5) *. window_h in
      (t, unavailable_fraction region events ~at:t ~kinds))
