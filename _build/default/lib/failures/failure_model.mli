(** Stochastic unavailability schedule generator, parameterized with the
    paper's measured rates:

    - planned maintenance dominates capacity loss and proceeds at MSB
      granularity with at most 25% of one MSB's racks concurrently under
      maintenance (§3.3.1);
    - unplanned software events keep ~0.3% of servers down at a time with
      occasional multi-rack spikes above 3% (Fig. 5);
    - hardware repairs hold ~0.1% of the fleet for weeks (§2.5);
    - correlated failures take out most or all of an MSB roughly once a
      month per region (§2.5). *)

type params = {
  maintenance_cycle_days : float;
      (** every MSB receives one maintenance pass per cycle *)
  maintenance_hours : float;  (** duration of one 25%-of-MSB batch *)
  sw_events_per_server_day : float;
  sw_hours_mean : float;
  hw_events_per_server_day : float;
  hw_days_mean : float;
  correlated_per_month : float;
  correlated_hours_mean : float;
  sw_spike_per_month : float;  (** region-wide software pushes gone wrong *)
  sw_spike_fraction : float;  (** fraction of servers a spike takes down *)
}

val default_params : params

val calm_params : params
(** Failure-free except a light maintenance schedule; for tests that need a
    deterministic quiet background. *)

val generate :
  Ras_stats.Rng.t -> Ras_topology.Region.t -> params -> horizon_days:float -> Unavail.t list
(** Events sorted by start time, ids dense from 0. *)

val unavailable_fraction :
  Ras_topology.Region.t -> Unavail.t list -> at:float -> kinds:Unavail.kind list -> float
(** Fraction of servers down at a time instant from events of the given
    kinds (a server under several events counts once). *)

val series :
  Ras_topology.Region.t ->
  Unavail.t list ->
  horizon_days:float ->
  window_h:float ->
  kinds:Unavail.kind list ->
  (float * float) array
(** Sampled [unavailable_fraction] per window — the Fig. 5 curves. *)
