module Region = Ras_topology.Region

type scope = Server of int | Rack of int | Msb of int

type kind = Planned_maintenance | Unplanned_sw | Unplanned_hw | Correlated

type t = { id : int; scope : scope; kind : kind; start_h : float; duration_h : float }

let planned t = t.kind = Planned_maintenance

let end_h t = t.start_h +. t.duration_h

let active_at t time = time >= t.start_h && time < end_h t

let servers_of region t =
  match t.scope with
  | Server id -> if id >= 0 && id < Region.num_servers region then [ id ] else []
  | Rack r ->
    Array.fold_right
      (fun s acc -> if s.Region.loc.Region.rack = r then s.Region.id :: acc else acc)
      region.Region.servers []
  | Msb m ->
    Array.fold_right
      (fun s acc -> if s.Region.loc.Region.msb = m then s.Region.id :: acc else acc)
      region.Region.servers []

let kind_name = function
  | Planned_maintenance -> "planned"
  | Unplanned_sw -> "unplanned-sw"
  | Unplanned_hw -> "unplanned-hw"
  | Correlated -> "correlated"

let scope_name = function
  | Server id -> Printf.sprintf "server:%d" id
  | Rack r -> Printf.sprintf "rack:%d" r
  | Msb m -> Printf.sprintf "msb:%d" m

let pp ppf t =
  Format.fprintf ppf "event#%d %s %s t=[%.1f, %.1f)" t.id (kind_name t.kind) (scope_name t.scope)
    t.start_h (end_h t)
