lib/failures/unavail.ml: Array Format Printf Ras_topology
