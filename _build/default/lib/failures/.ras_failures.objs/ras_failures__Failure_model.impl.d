lib/failures/failure_model.ml: Array Float List Ras_stats Ras_topology Unavail
