lib/failures/failure_model.mli: Ras_stats Ras_topology Unavail
