lib/failures/unavail.mli: Format Ras_topology
