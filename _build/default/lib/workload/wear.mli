(** SSD wear model (paper §5.2, future placement goals).

    The paper plans "SSD burnout reduction through IO-aware server
    assignments": flash devices have a finite write endurance, so servers
    whose SSDs are already worn should not be handed to IO-heavy services.
    This module models per-server wear and buckets it coarsely — coarse
    buckets matter because every attribute added to the server-equivalence
    key multiplies the solver's variable count (§5.2: "we will likely add
    more phases when we introduce additional placement goals that
    significantly break server symmetry"). *)

type t
(** Wear state for a region: a wear fraction in [0, 1] per server. *)

val generate : Ras_stats.Rng.t -> Ras_topology.Region.t -> t
(** Synthesize wear: older MSBs carry more-worn flash; servers without
    flash have wear 0. *)

val of_array : float array -> t
(** For tests: explicit per-server wear fractions. *)

val fraction : t -> int -> float
(** Wear of one server (0 when the id is out of range). *)

val buckets : int
(** Number of coarse buckets (3: fresh < 0.4 <= worn < 0.75 <= critical). *)

val bucket : t -> int -> int
(** Bucket index of one server: 0 fresh, 1 worn, 2 critical. *)

val has_flash : Ras_topology.Region.server -> bool
(** Whether the server carries flash at all (wear is 0 otherwise). *)
