type t = {
  id : int;
  service : Service.t;
  rru : float;
  msb_spread_limit : float;
  rack_spread_limit : float option;
  dc_affinity : (int * float) list;
  affinity_tolerance : float;
  embedded_buffer : bool;
  hard_msb_cap : float option;
  io_intensity : float;
  arrival_time : float;
}

let make ~id ~service ~rru ?(msb_spread_limit = 0.1) ?rack_spread_limit ?(dc_affinity = [])
    ?(affinity_tolerance = 0.1) ?(embedded_buffer = true) ?hard_msb_cap
    ?(io_intensity = 0.0) ?(arrival_time = 0.0) () =
  if rru <= 0.0 then invalid_arg "Capacity_request.make: rru must be positive";
  (match hard_msb_cap with
  | Some c when c <= 0.0 || c > 1.0 ->
    invalid_arg "Capacity_request.make: hard_msb_cap outside (0, 1]"
  | Some _ | None -> ());
  {
    id;
    service;
    rru;
    msb_spread_limit;
    rack_spread_limit;
    dc_affinity;
    affinity_tolerance;
    embedded_buffer;
    hard_msb_cap;
    io_intensity;
    arrival_time;
  }

let quorum_cap ~replicas ~quorum =
  if quorum <= 0 || quorum > replicas then
    invalid_arg "Capacity_request.quorum_cap: need 0 < quorum <= replicas";
  float_of_int (replicas - quorum) /. float_of_int replicas

let acceptable_hw_types t =
  Array.fold_left
    (fun acc hw -> if Service.acceptable t.service hw then acc + 1 else acc)
    0 Ras_topology.Hardware.catalog

let pp ppf t =
  Format.fprintf ppf "req#%d %s rru=%.1f spread<=%.2f buffer=%b" t.id t.service.Service.name
    t.rru t.msb_spread_limit t.embedded_buffer
