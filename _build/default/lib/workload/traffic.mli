(** Cross-datacenter network traffic model (paper §4.5, Fig. 15).

    A service whose data lives in one datacenter generates traffic between
    its compute servers and that datacenter; compute placed in the data's
    datacenter keeps traffic local, compute placed elsewhere crosses the
    region's scarce inter-datacenter links.  The Fig. 15 metric is the
    percentage of a service's traffic that is cross-datacenter, which for
    this model equals the capacity share placed outside the data's
    datacenter. *)

val cross_dc_fraction :
  data_dc:int -> capacity_per_dc:float array -> float
(** Fraction of capacity (hence traffic) outside [data_dc]; [nan] when the
    total capacity is zero. *)

val cross_dc_gb :
  service:Service.t -> data_dc:int -> capacity_per_dc:float array -> hours:float -> float
(** Absolute cross-datacenter volume over a period, using the service's
    traffic intensity. *)

val cross_dc_working_fraction :
  data_dc:int -> capacity_per_dc:float array -> requested:float -> float
(** Cross-datacenter share of the {e working} capacity: embedded-buffer
    servers beyond the requested RRUs are idle and generate no traffic, so
    the working set is the requested amount served preferentially from the
    data's datacenter.  [1 - min(local, requested) / requested]; [nan] when
    [requested <= 0]. *)
