(** Capacity-request stream generator.

    Two generators:

    - {!paper_distribution} samples requests with the joint shape of Fig. 4
      (sizes spanning 1 to ~30,000 capacity units on a heavy-tailed
      log-normal; flexibility concentrated at 1 and ~8 acceptable hardware
      types with a small 10+ tail), independent of any concrete region —
      used by the Fig. 4 bench;
    - {!scenario} sizes a request set to a target utilization of a concrete
      region so simulations are feasible, drawing services from a Zipf over
      the catalog and arrival times from a diurnal profile (Fig. 16's
      working-hours request spikes). *)

type sized_request = { units : float; hw_types : int }

val paper_distribution : Ras_stats.Rng.t -> n:int -> sized_request list
(** [n] independent (size, flexibility) samples. *)

val scenario :
  Ras_stats.Rng.t ->
  region:Ras_topology.Region.t ->
  services:Service.t list ->
  target_utilization:float ->
  Capacity_request.t list
(** Builds one request per service, sized proportionally to a Zipf weight
    over the service list and scaled so the requests' total RRU demand is
    [target_utilization] of what the region can supply for each service mix.
    Requests arrive at time 0. *)

val arrivals_over :
  Ras_stats.Rng.t ->
  days:int ->
  mean_per_workday:float ->
  float list
(** Request arrival times (hours) over [days] with a diurnal working-hours
    profile: most arrivals fall in hours 9-18 of weekdays, few on weekends.
    Drives the churn spikes of Fig. 16. *)
