(** Service catalog: workload profiles with hardware preferences and
    per-generation Relative Value (paper §2.3, Fig. 3).

    A service's Relative Value on a CPU generation captures how much
    throughput it gains from that generation relative to generation 1: Web
    gains 1.47x/1.82x on generations 2/3, DataStore is storage-bound and
    gains nothing, one Feed variant gains from one generation but not the
    next.  RAS turns these into the per-server RRU values [V_{s,r}] of the
    MIP (Table 1). *)

type profile =
  | Web
  | Feed1
  | Feed2
  | Data_store
  | Ml_training  (** GPU-bound, bandwidth-constrained to one datacenter *)
  | Presto_batch  (** batch SQL over data pinned in a datacenter (Fig. 15) *)
  | Presto_interactive
  | Cache
  | Video_encoding  (** prefers ASIC accelerators *)
  | Batch_async  (** elastic/opportunistic consumer (§3.4) *)
  | Generic

type t = {
  id : int;
  name : string;
  profile : profile;
  categories : Ras_topology.Hardware.category list;  (** acceptable hardware *)
  min_generation : int;  (** oldest CPU generation the service can run on *)
  max_generation : int;
      (** newest qualified generation — services "not yet ready to utilize
          the newest hardware" (Fig. 13, services 6 and 15) set this < 3 *)
  network_gb_per_rru : float;  (** traffic intensity, drives Fig. 15 *)
  data_locality : int option;  (** datacenter index holding the data *)
}

val relative_value : profile -> int -> float
(** [relative_value p gen] for [gen] in 1..3; Fig. 3's table, extended with
    plausible values for the profiles the figure aggregates as "Fleet Avg". *)

val acceptable : t -> Ras_topology.Hardware.t -> bool

val rru_of : t -> Ras_topology.Hardware.t -> float
(** [V_{s,r}]: the RRU value of a server of this hardware type for the
    service — 0 when the hardware is unacceptable.  Compute-bound profiles
    value cores scaled by Relative Value; storage profiles value flash
    capacity; ML values GPUs. *)

val make :
  id:int ->
  name:string ->
  profile:profile ->
  ?min_generation:int ->
  ?max_generation:int ->
  ?data_locality:int ->
  unit ->
  t
(** Builds a service with the profile's default hardware acceptability and
    network intensity. *)

val default_catalog : t list
(** Thirty services echoing Fig. 13's top-30: a few very large generation-
    sensitive services, storage and cache tiers, one ML service pinned to a
    datacenter, two Presto services, and a tail of generic services. *)

val profile_name : profile -> string
