let cross_dc_fraction ~data_dc ~capacity_per_dc =
  let total = Array.fold_left ( +. ) 0.0 capacity_per_dc in
  if total <= 0.0 then nan
  else begin
    let local = if data_dc >= 0 && data_dc < Array.length capacity_per_dc then capacity_per_dc.(data_dc) else 0.0 in
    (total -. local) /. total
  end

let cross_dc_working_fraction ~data_dc ~capacity_per_dc ~requested =
  if requested <= 0.0 then nan
  else begin
    let local =
      if data_dc >= 0 && data_dc < Array.length capacity_per_dc then capacity_per_dc.(data_dc)
      else 0.0
    in
    1.0 -. (Float.min local requested /. requested)
  end

let cross_dc_gb ~service ~data_dc ~capacity_per_dc ~hours =
  let total = Array.fold_left ( +. ) 0.0 capacity_per_dc in
  let frac = cross_dc_fraction ~data_dc ~capacity_per_dc in
  if Float.is_nan frac then 0.0
  else total *. frac *. service.Service.network_gb_per_rru *. hours
