lib/workload/service.ml: Array List Printf Ras_topology
