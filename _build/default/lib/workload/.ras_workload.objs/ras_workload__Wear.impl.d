lib/workload/wear.ml: Array Float Ras_stats Ras_topology Stdlib
