lib/workload/capacity_request.mli: Format Service
