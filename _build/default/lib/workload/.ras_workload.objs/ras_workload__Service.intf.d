lib/workload/service.mli: Ras_topology
