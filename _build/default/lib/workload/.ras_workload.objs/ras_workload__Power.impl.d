lib/workload/power.ml: Array Ras_topology
