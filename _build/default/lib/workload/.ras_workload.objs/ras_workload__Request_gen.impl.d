lib/workload/request_gen.ml: Array Capacity_request Float List Ras_stats Ras_topology Service
