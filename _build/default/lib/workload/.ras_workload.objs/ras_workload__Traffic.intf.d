lib/workload/traffic.mli: Service
