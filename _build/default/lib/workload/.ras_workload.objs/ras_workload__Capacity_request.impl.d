lib/workload/capacity_request.ml: Array Format Ras_topology Service
