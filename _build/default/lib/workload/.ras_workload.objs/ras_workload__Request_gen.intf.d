lib/workload/request_gen.mli: Capacity_request Ras_stats Ras_topology Service
