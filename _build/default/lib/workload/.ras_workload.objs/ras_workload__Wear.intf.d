lib/workload/wear.mli: Ras_stats Ras_topology
