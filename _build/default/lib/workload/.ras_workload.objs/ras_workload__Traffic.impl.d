lib/workload/traffic.ml: Array Float Service
