lib/workload/power.mli: Ras_topology
