module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware

type usage = Idle_free | Assigned_idle | Assigned_busy

let draw_watts hw usage =
  let fraction =
    match usage with Idle_free -> 0.30 | Assigned_idle -> 0.55 | Assigned_busy -> 0.88
  in
  fraction *. hw.Hw.power_watts

let msb_power region ~usage_of =
  let totals = Array.make region.Region.num_msbs 0.0 in
  Array.iter
    (fun s ->
      let w = draw_watts s.Region.hw (usage_of s) in
      totals.(s.Region.loc.Region.msb) <- totals.(s.Region.loc.Region.msb) +. w)
    region.Region.servers;
  totals

let normalized_variance values =
  let n = Array.length values in
  if n = 0 then nan
  else begin
    let mean = Array.fold_left ( +. ) 0.0 values /. float_of_int n in
    if mean = 0.0 then nan
    else begin
      let var =
        Array.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0.0 values
        /. float_of_int n
      in
      var /. (mean *. mean)
    end
  end

let headroom ~capacity_watts ~draw_watts =
  let n = Array.length capacity_watts in
  if n = 0 || Array.length draw_watts <> n then invalid_arg "Power.headroom: length mismatch";
  let best = ref infinity in
  for i = 0 to n - 1 do
    if capacity_watts.(i) > 0.0 then begin
      let h = (capacity_watts.(i) -. draw_watts.(i)) /. capacity_watts.(i) in
      if h < !best then best := h
    end
  done;
  !best
