(** Server power model (paper §4.4, Fig. 14).

    Power is a limiting resource per MSB; RAS's spread objectives double as
    power balancing.  Draw is modeled as a fraction of the hardware's
    nameplate watts depending on how the server is used. *)

type usage = Idle_free | Assigned_idle | Assigned_busy

val draw_watts : Ras_topology.Hardware.t -> usage -> float
(** Free idle servers draw ~30% of nameplate, assigned-but-idle ~55%, busy
    ~88%. *)

val msb_power :
  Ras_topology.Region.t -> usage_of:(Ras_topology.Region.server -> usage) -> float array
(** Total draw per MSB given a usage classifier. *)

val normalized_variance : float array -> float
(** Variance of the values normalized by the square of their mean —
    dimensionless imbalance measure, the y-axis of Fig. 14 (0 = perfectly
    uniform).  [nan] on empty or all-zero input. *)

val headroom : capacity_watts:float array -> draw_watts:float array -> float
(** Minimum relative headroom over MSBs: [min_i (cap_i - draw_i) / cap_i].
    The paper reports RAS lifting the most-loaded MSB's headroom from ~0 to
    11%. *)
