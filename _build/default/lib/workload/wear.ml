module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware

type t = float array

let has_flash (s : Region.server) = s.Region.hw.Hw.flash_tb > 0.0

let generate rng (region : Region.t) =
  let num_msbs = Stdlib.max 1 region.Region.num_msbs in
  Array.map
    (fun (s : Region.server) ->
      if not (has_flash s) then 0.0
      else begin
        (* older MSBs have been writing longer *)
        let age = 1.0 -. (float_of_int s.Region.loc.Region.msb /. float_of_int num_msbs) in
        let base = 0.55 *. age in
        Float.max 0.0 (Float.min 1.0 (base +. Ras_stats.Dist.uniform rng ~lo:0.0 ~hi:0.4))
      end)
    region.Region.servers

let of_array a = Array.copy a

let fraction t id = if id >= 0 && id < Array.length t then t.(id) else 0.0

let buckets = 3

let bucket t id =
  let w = fraction t id in
  if w < 0.4 then 0 else if w < 0.75 then 1 else 2
