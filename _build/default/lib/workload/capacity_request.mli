(** Capacity requests (paper §2.4): the unit of intent a service owner files
    through the Capacity Portal.  A request asks for an aggregate amount of
    RRUs, names the service whose RRU valuation applies, and carries the
    placement policy RAS must uphold (spread limits, datacenter affinity,
    whether an embedded correlated-failure buffer is required). *)

type t = {
  id : int;
  service : Service.t;
  rru : float;  (** requested guaranteed capacity, [C_r] in the MIP *)
  msb_spread_limit : float;
      (** [alpha_F]: max fraction of the reservation's capacity allowed in
          one MSB before the spread objective penalizes it *)
  rack_spread_limit : float option;  (** [alpha_K], enforced in phase 2 *)
  dc_affinity : (int * float) list;
      (** [A_{r,G}]: desired capacity fraction per datacenter (§3.5.3
          expression 7); empty = no affinity *)
  affinity_tolerance : float;  (** [theta] *)
  embedded_buffer : bool;
      (** when set, expression 6 guarantees capacity survives any single
          MSB failure *)
  hard_msb_cap : float option;
      (** storage-service quorum spread (paper §3.3.2): no MSB may hold more
          than this fraction of the reservation's {e total} capacity, so a
          replicated store keeps quorum (or an erasure-coded one bounds
          reconstruction) through an MSB loss.  For replication factor R and
          quorum Q use [(R - Q) / R], e.g. 1/3 for R=3, Q=2. *)
  io_intensity : float;
      (** write-heaviness in [0, 1] for the IO/wear-aware placement goal of
          §5.2: IO-heavy reservations should avoid servers with worn flash *)
  arrival_time : float;  (** hours since scenario start *)
}

val make :
  id:int ->
  service:Service.t ->
  rru:float ->
  ?msb_spread_limit:float ->
  ?rack_spread_limit:float ->
  ?dc_affinity:(int * float) list ->
  ?affinity_tolerance:float ->
  ?embedded_buffer:bool ->
  ?hard_msb_cap:float ->
  ?io_intensity:float ->
  ?arrival_time:float ->
  unit ->
  t
(** Defaults: [msb_spread_limit] 0.1, no rack limit, no affinity,
    [affinity_tolerance] 0.1, [embedded_buffer] true, no quorum cap,
    [arrival_time] 0. *)

val quorum_cap : replicas:int -> quorum:int -> float
(** [(replicas - quorum) / replicas]; raises [Invalid_argument] unless
    [0 < quorum <= replicas]. *)

val acceptable_hw_types : t -> int
(** Number of catalog hardware subtypes that can serve this request — the
    x-axis of Fig. 4. *)

val pp : Format.formatter -> t -> unit
