module Hw = Ras_topology.Hardware

type profile =
  | Web
  | Feed1
  | Feed2
  | Data_store
  | Ml_training
  | Presto_batch
  | Presto_interactive
  | Cache
  | Video_encoding
  | Batch_async
  | Generic

type t = {
  id : int;
  name : string;
  profile : profile;
  categories : Hw.category list;
  min_generation : int;
  max_generation : int;
  network_gb_per_rru : float;
  data_locality : int option;
}

(* Fig. 3: per-generation gain normalized to generation 1.  Web gains the
   most; DataStore is storage-bound and flat; Feed1 gains from generation 2
   but not 3; Feed2 the other way around.  Remaining profiles approximate
   the figure's "Fleet Avg" bar. *)
let relative_value p gen =
  let table =
    match p with
    | Web -> [| 1.0; 1.47; 1.82 |]
    | Feed1 -> [| 1.0; 1.36; 1.38 |]
    | Feed2 -> [| 1.0; 1.06; 1.45 |]
    | Data_store -> [| 1.0; 1.0; 1.0 |]
    | Ml_training -> [| 1.0; 1.9; 3.2 |]
    | Presto_batch | Presto_interactive -> [| 1.0; 1.3; 1.55 |]
    | Cache -> [| 1.0; 1.1; 1.2 |]
    | Video_encoding -> [| 1.0; 1.5; 1.9 |]
    | Batch_async | Generic -> [| 1.0; 1.25; 1.5 |]
  in
  let gen = if gen < 1 then 1 else if gen > 3 then 3 else gen in
  table.(gen - 1)

let default_categories = function
  | Web | Feed1 | Feed2 -> [ Hw.Compute; Hw.Compute_dense ]
  | Data_store -> [ Hw.Storage ]
  | Ml_training -> [ Hw.Gpu ]
  | Presto_batch | Presto_interactive -> [ Hw.Compute; Hw.Compute_dense; Hw.Flash ]
  | Cache -> [ Hw.Memory; Hw.Flash ]
  | Video_encoding -> [ Hw.Asic; Hw.Gpu ]
  | Batch_async | Generic -> [ Hw.Compute; Hw.Compute_dense; Hw.Storage; Hw.Flash; Hw.Memory ]

(* GB transferred per RRU-hour of work; only the heavy tail matters for the
   cross-datacenter figure. *)
let default_network = function
  | Presto_batch -> 40.0
  | Presto_interactive -> 15.0
  | Ml_training -> 80.0
  | Data_store -> 5.0
  | _ -> 1.0

let acceptable t hw =
  List.mem hw.Hw.category t.categories
  && hw.Hw.cpu_generation >= t.min_generation
  && hw.Hw.cpu_generation <= t.max_generation

let rru_of t hw =
  if not (acceptable t hw) then 0.0
  else
    let rel = relative_value t.profile hw.Hw.cpu_generation in
    match t.profile with
    | Data_store -> hw.Hw.flash_tb /. 8.0
    | Ml_training -> float_of_int hw.Hw.gpus *. rel /. 4.0
    | Cache -> (float_of_int hw.Hw.mem_gb /. 128.0) *. rel
    | Video_encoding -> (1.0 +. float_of_int hw.Hw.gpus) *. rel /. 2.0
    | Web | Feed1 | Feed2 | Presto_batch | Presto_interactive | Batch_async | Generic ->
      float_of_int hw.Hw.cores /. 16.0 *. rel

let make ~id ~name ~profile ?(min_generation = 1) ?(max_generation = 3) ?data_locality () =
  {
    id;
    name;
    profile;
    categories = default_categories profile;
    min_generation;
    max_generation;
    network_gb_per_rru = default_network profile;
    data_locality;
  }

let profile_name = function
  | Web -> "web"
  | Feed1 -> "feed1"
  | Feed2 -> "feed2"
  | Data_store -> "datastore"
  | Ml_training -> "ml-training"
  | Presto_batch -> "presto-batch"
  | Presto_interactive -> "presto-interactive"
  | Cache -> "cache"
  | Video_encoding -> "video"
  | Batch_async -> "batch-async"
  | Generic -> "generic"

let default_catalog =
  (* Thirty services shaped like Fig. 13's top-30: ids 1 and 2 need new
     hardware (min generation 2), ids 25-30 prefer discontinued hardware
     (max generation below 3), id 13 is the datacenter-pinned ML service,
     ids 6 and 15 are not yet qualified on the newest generation. *)
  let svc id profile ?min_generation ?max_generation ?data_locality () =
    make ~id ~name:(Printf.sprintf "%s-%d" (profile_name profile) id) ~profile ?min_generation
      ?max_generation ?data_locality ()
  in
  [
    svc 1 Web ~min_generation:2 ();
    svc 2 Feed1 ~min_generation:2 ();
    svc 3 Web ();
    svc 4 Feed2 ();
    svc 5 Data_store ();
    svc 6 Web ~max_generation:2 ();
    svc 7 Cache ();
    svc 8 Generic ();
    svc 9 Presto_batch ~data_locality:0 ();
    svc 10 Presto_interactive ~data_locality:1 ();
    svc 11 Feed1 ();
    svc 12 Generic ();
    svc 13 Ml_training ~min_generation:2 ~data_locality:2 ();
    svc 14 Cache ();
    svc 15 Feed2 ~max_generation:2 ();
    svc 16 Generic ();
    svc 17 Data_store ();
    svc 18 Video_encoding ();
    svc 19 Generic ();
    svc 20 Batch_async ();
    svc 21 Generic ();
    svc 22 Web ();
    svc 23 Generic ();
    svc 24 Cache ();
    svc 25 Generic ~max_generation:1 ();
    svc 26 Data_store ~max_generation:2 ();
    svc 27 Generic ~max_generation:1 ();
    svc 28 Generic ~max_generation:2 ();
    svc 29 Batch_async ~max_generation:2 ();
    svc 30 Generic ~max_generation:1 ();
  ]
