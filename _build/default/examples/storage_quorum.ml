(* Storage services (§3.3.2): a replicated store keeps every byte available
   through an MSB failure not by holding idle buffer servers but by capping
   how much of itself lives in any one MSB — with replication factor 3 and
   quorum 2, at most a third of the capacity may share an MSB.

   We allocate the same store twice (quorum spread vs. embedded buffer),
   fail its fullest MSB, and compare the capacity bill for the same
   guarantee.

   Run with: dune exec examples/storage_quorum.exe *)

open Ras
module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Generator = Ras_topology.Generator
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request
module Unavail = Ras_failures.Unavail

let store = Service.make ~id:1 ~name:"blobstore" ~profile:Service.Data_store ()

let allocate req =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let reservations = [ Reservation.of_request req ] in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover reservations;
  let stats = Async_solver.solve (Snapshot.take broker reservations) in
  ignore (Online_mover.apply_plan mover stats.Async_solver.plan);
  (region, broker, List.hd reservations)

let audit label (region, broker, res) =
  let snap = Snapshot.take broker [ res ] in
  let per_msb = Snapshot.rru_by_msb snap res in
  let total = Array.fold_left ( +. ) 0.0 per_msb in
  (* fail the fullest MSB *)
  let worst = ref 0 in
  Array.iteri (fun m v -> if v > per_msb.(!worst) then worst := m) per_msb;
  List.iter
    (fun (s : Region.server) -> Broker.mark_down broker s.Region.id Unavail.Correlated)
    (Region.servers_of_msb region !worst);
  let surviving = Snapshot.current_rru (Snapshot.take broker [ res ]) res in
  Printf.printf
    "%-16s bound %.1f RRU (%.2fx the %.1f requested); after losing MSB %d: %.1f RRU %s\n" label
    total (total /. res.Reservation.capacity_rru) res.Reservation.capacity_rru !worst surviving
    (if surviving >= res.Reservation.capacity_rru *. 2.0 /. 3.0 then
       "(quorum of a 3-way replica set intact)"
     else if surviving >= res.Reservation.capacity_rru then "(full capacity intact)"
     else "(guarantee broken!)")

let () =
  Printf.printf "the same 12-RRU replicated store, two protection strategies:\n\n";
  let quorum_req =
    Capacity_request.make ~id:1 ~service:store ~rru:12.0 ~embedded_buffer:false
      ~hard_msb_cap:(Capacity_request.quorum_cap ~replicas:3 ~quorum:2)
      ~msb_spread_limit:0.5 ()
  in
  audit "quorum spread" (allocate quorum_req);
  let buffered_req =
    Capacity_request.make ~id:1 ~service:store ~rru:12.0 ~msb_spread_limit:0.5 ()
  in
  audit "embedded buffer" (allocate buffered_req);
  Printf.printf
    "\nwith quorum spread the store pays no idle buffer: its own replicas are the buffer.\n";
  (* quorum math, for the README-inclined *)
  List.iter
    (fun (r, q) ->
      Printf.printf "replication %d, quorum %d -> at most %.0f%% of capacity per MSB\n" r q
        (100.0 *. Capacity_request.quorum_cap ~replicas:r ~quorum:q))
    [ (3, 2); (5, 3) ]
