(* MSB failure drill: the paper's headline guarantee in action (§3.3.1).

   A reservation with an embedded correlated-failure buffer must keep its
   containers running when an entire MSB (thousands of servers in
   production) fails at once — with NO mover action on the critical path:
   the buffer servers are already inside the reservation.

   The drill: allocate, fill with containers, kill the MSB that hosts the
   most of them, and verify every container is re-placed instantly on the
   surviving in-reservation capacity.  Then trigger a single-server random
   failure and watch the Online Mover pull a replacement from the shared
   buffer instead.

   Run with: dune exec examples/msb_failure_drill.exe *)

open Ras
module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Generator = Ras_topology.Generator
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request
module Unavail = Ras_failures.Unavail
module Allocator = Ras_twine.Allocator
module Job = Ras_twine.Job

let () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let web = Service.make ~id:1 ~name:"frontend" ~profile:Service.Web () in
  let request =
    Capacity_request.make ~id:1 ~service:web ~rru:20.0 ~msb_spread_limit:0.3 ()
  in
  let reservations =
    [ Reservation.of_request request ]
    @ Buffers.shared_buffer_reservations region ~fraction:0.03 ~first_id:8000
  in
  let res = List.hd reservations in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover reservations;

  let stats = Async_solver.solve (Snapshot.take broker reservations) in
  ignore (Online_mover.apply_plan mover stats.Async_solver.plan);
  let snapshot = Snapshot.take broker reservations in
  Printf.printf "allocated %.1f RRU for a %.1f RRU request (embedded buffer included)\n"
    (Snapshot.current_rru snapshot res)
    res.Reservation.capacity_rru;

  (* fill the requested capacity with containers *)
  let alloc = Allocator.create broker ~reservation:1 ~rru_of:res.Reservation.rru_of in
  let job = Job.make ~id:1 ~reservation:1 ~replicas:20 ~rru_per_replica:1.0 () in
  (match Allocator.place_job alloc job with
  | Ok () -> Printf.printf "running %d containers\n" (Allocator.placed_containers alloc)
  | Error e -> failwith e);

  (* find the MSB hosting the most containers and kill all of it *)
  let msb_load = Hashtbl.create 8 in
  List.iter
    (fun sid ->
      let msb = (Broker.record broker sid).Broker.server.Region.loc.Region.msb in
      Hashtbl.replace msb_load msb (1 + (try Hashtbl.find msb_load msb with Not_found -> 0)))
    (Allocator.servers_in_use alloc);
  let worst_msb, hosted =
    Hashtbl.fold (fun m c (bm, bc) -> if c > bc then (m, c) else (bm, bc)) msb_load (-1, 0)
  in
  Printf.printf "\n*** correlated failure: MSB %d goes dark (%d container-hosting servers) ***\n"
    worst_msb hosted;
  let replacements_before = Online_mover.replacements_done mover in
  List.iter
    (fun (s : Region.server) -> Broker.mark_down broker s.Region.id Unavail.Correlated)
    (Region.servers_of_msb region worst_msb);

  Printf.printf "containers still running: %d/20 (pending: %d)\n"
    (Allocator.placed_containers alloc)
    (Allocator.pending_containers alloc);
  Printf.printf "mover actions used for the correlated failure: %d (buffer was embedded)\n"
    (Online_mover.replacements_done mover - replacements_before);

  (* now a random single-server failure: the shared buffer replaces it *)
  (match Allocator.servers_in_use alloc with
  | sid :: _ ->
    Printf.printf "\n*** random failure: server %d dies ***\n" sid;
    Broker.mark_down broker sid Unavail.Unplanned_hw;
    Printf.printf "mover replacements from shared buffer: %d, containers running: %d/20\n"
      (Online_mover.replacements_done mover - replacements_before)
      (Allocator.placed_containers alloc)
  | [] -> ());

  (* recovery: the MSB comes back, the next solve re-optimizes *)
  List.iter
    (fun (s : Region.server) -> Broker.mark_up broker s.Region.id)
    (Region.servers_of_msb region worst_msb);
  let stats = Async_solver.solve (Snapshot.take broker reservations) in
  ignore (Online_mover.apply_plan mover stats.Async_solver.plan);
  Printf.printf "\nafter recovery solve: %d moves, %d shortfalls\n"
    (List.length stats.Async_solver.plan.Concretize.moves)
    (List.length stats.Async_solver.shortfalls)
