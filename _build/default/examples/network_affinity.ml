(* Network affinity (§3.5.3 expression 7, §4.5): a Presto-like SQL service
   whose data lives in one datacenter should get most of its compute from
   that datacenter, trading a little fault-domain spread for a large cut in
   cross-datacenter traffic.

   We solve the same region twice — without and with the affinity
   constraint — and compare the cross-DC share of the service's working
   capacity, i.e. the quantity Fig. 15 tracks.

   Run with: dune exec examples/network_affinity.exe *)

open Ras
module Broker = Ras_broker.Broker
module Generator = Ras_topology.Generator
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request
module Traffic = Ras_workload.Traffic

let data_dc = 0

let run_once ~with_affinity =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let presto =
    Service.make ~id:1 ~name:"presto-batch" ~profile:Service.Presto_batch
      ~data_locality:data_dc ()
  in
  let filler = Service.make ~id:2 ~name:"filler" ~profile:Service.Generic () in
  let dc_affinity = if with_affinity then [ (data_dc, 0.85) ] else [] in
  let requests =
    [
      Capacity_request.make ~id:1 ~service:presto ~rru:20.0 ~msb_spread_limit:0.3 ~dc_affinity
        ~affinity_tolerance:0.1 ();
      Capacity_request.make ~id:2 ~service:filler ~rru:30.0 ~msb_spread_limit:0.3 ();
    ]
  in
  let reservations =
    List.map Reservation.of_request requests
    @ Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover reservations;
  let stats = Async_solver.solve (Snapshot.take broker reservations) in
  ignore (Online_mover.apply_plan mover stats.Async_solver.plan);
  let snapshot = Snapshot.take broker reservations in
  let res = List.hd reservations in
  let per_dc = Snapshot.rru_by_dc snapshot res in
  let cross =
    Traffic.cross_dc_working_fraction ~data_dc ~capacity_per_dc:per_dc
      ~requested:res.Reservation.capacity_rru
  in
  let volume =
    Traffic.cross_dc_gb ~service:presto ~data_dc ~capacity_per_dc:per_dc ~hours:24.0
  in
  (per_dc, cross, volume, Snapshot.max_msb_share snapshot res)

let () =
  let per_dc0, cross0, gb0, spread0 = run_once ~with_affinity:false in
  let per_dc1, cross1, gb1, spread1 = run_once ~with_affinity:true in
  let show label per_dc cross gb spread =
    Printf.printf "%-18s per-DC RRU = [%s]  cross-DC traffic = %.0f%% (%.0f GB/day)  max-MSB share = %.0f%%\n"
      label
      (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.1f") per_dc)))
      (100.0 *. cross) gb (100.0 *. spread)
  in
  Printf.printf "presto-batch, data in DC%d:\n" data_dc;
  show "without affinity" per_dc0 cross0 gb0 spread0;
  show "with affinity" per_dc1 cross1 gb1 spread1;
  if cross1 < cross0 then
    Printf.printf "\naffinity cut cross-DC traffic %.1fx (paper: 2.3x for Presto batch)\n"
      (cross0 /. Float.max 0.01 cross1)
  else
    Printf.printf "\nno improvement — region too small for the affinity window\n";
  Printf.printf "note the spread trade-off: %.0f%% -> %.0f%% max-MSB share (§4.5)\n"
    (100.0 *. spread0) (100.0 *. spread1)
