(* Elastic reservations (§3.4): buffers that are not actively absorbing a
   failure are lent to opportunistic workloads (async compute, offline ML
   training) and revoked the moment failure handling needs them back.

   Run with: dune exec examples/elastic_harvest.exe *)

open Ras
module Broker = Ras_broker.Broker
module Generator = Ras_topology.Generator
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request
module Unavail = Ras_failures.Unavail
module Allocator = Ras_twine.Allocator
module Job = Ras_twine.Job

let elastic_id = 9000

let () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let web = Service.make ~id:1 ~name:"frontend" ~profile:Service.Web () in
  let reservations =
    [ Reservation.of_request (Capacity_request.make ~id:1 ~service:web ~rru:12.0 ()) ]
    @ Buffers.shared_buffer_reservations region ~fraction:0.05 ~first_id:8000
  in
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover reservations;
  let stats = Async_solver.solve (Snapshot.take broker reservations) in
  ignore (Online_mover.apply_plan mover stats.Async_solver.plan);
  Printf.printf "shared buffer holds %d servers\n"
    (Broker.count_owner broker Broker.Shared_buffer);

  (* lend idle buffer capacity to the elastic reservation *)
  let lent = Online_mover.lend_idle mover ~elastic_id ~max_servers:max_int in
  Printf.printf "lent %d idle buffer servers to elastic reservation %d\n" lent elastic_id;

  (* an opportunistic batch job runs on the elastic reservation *)
  let batch = Service.make ~id:2 ~name:"batch" ~profile:Service.Batch_async () in
  let alloc =
    Allocator.create broker ~reservation:elastic_id ~rru_of:(Service.rru_of batch)
  in
  let job = Job.make ~id:1 ~reservation:elastic_id ~replicas:lent ~rru_per_replica:0.5 () in
  (match Allocator.place_job alloc job with
  | Ok () ->
    Printf.printf "batch job: %d opportunistic containers running\n"
      (Allocator.placed_containers alloc)
  | Error e -> Printf.printf "batch job could not start: %s\n" e);

  (* a guaranteed server fails: the mover revokes a loan for the replacement *)
  let victim = List.hd (Broker.servers_with_owner broker (Broker.Reservation 1)) in
  Printf.printf "\n*** server %d of the guaranteed reservation fails ***\n" victim;
  Broker.mark_down broker victim Unavail.Unplanned_hw;
  Printf.printf "replacements done: %d; loans outstanding: %d (was %d)\n"
    (Online_mover.replacements_done mover)
    (Online_mover.loans_outstanding mover)
    lent;
  Printf.printf "batch containers still running: %d (evicted ones pend for retry)\n"
    (Allocator.placed_containers alloc);

  (* wind the experiment down: revoke everything *)
  let revoked = Online_mover.revoke mover ~elastic_id in
  Printf.printf "\nrevoked %d remaining loans; buffer back to %d servers\n" revoked
    (Broker.count_owner broker Broker.Shared_buffer)
