examples/elastic_harvest.ml: Async_solver Buffers List Online_mover Printf Ras Ras_broker Ras_failures Ras_topology Ras_twine Ras_workload Reservation Snapshot
