examples/msb_failure_drill.mli:
