examples/quickstart.mli:
