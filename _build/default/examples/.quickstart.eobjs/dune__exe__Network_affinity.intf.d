examples/network_affinity.mli:
