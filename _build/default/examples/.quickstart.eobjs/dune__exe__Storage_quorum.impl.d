examples/storage_quorum.ml: Array Async_solver List Online_mover Printf Ras Ras_broker Ras_failures Ras_topology Ras_workload Reservation Snapshot
