examples/elastic_harvest.mli:
