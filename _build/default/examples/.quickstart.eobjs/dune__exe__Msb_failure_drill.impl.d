examples/msb_failure_drill.ml: Async_solver Buffers Concretize Hashtbl List Online_mover Printf Ras Ras_broker Ras_failures Ras_topology Ras_twine Ras_workload Reservation Snapshot
