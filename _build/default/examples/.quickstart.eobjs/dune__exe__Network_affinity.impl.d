examples/network_affinity.ml: Array Async_solver Buffers Float List Online_mover Printf Ras Ras_broker Ras_topology Ras_workload Reservation Snapshot String
