examples/storage_quorum.mli:
