examples/quickstart.ml: Async_solver Buffers Explain Format List Online_mover Printf Ras Ras_broker Ras_topology Ras_twine Ras_workload Reservation Snapshot
