(* Quickstart: the smallest end-to-end RAS flow.

   Build a synthetic two-datacenter region, file three capacity requests,
   run one Async Solver pass, execute the plan with the Online Mover, and
   print what each reservation received and why.

   Run with: dune exec examples/quickstart.exe *)

open Ras
module Broker = Ras_broker.Broker
module Generator = Ras_topology.Generator
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request

let () =
  (* 1. a region: 2 DCs x 3 MSBs x 4 racks x 6 servers *)
  let region = Generator.generate Generator.small_params in
  Format.printf "%a@." Ras_topology.Region.pp_summary region;
  let broker = Broker.create region in

  (* 2. capacity requests: a web service that wants newer CPUs, a storage
     tier, and a cache; all sized in RRUs *)
  let web = Service.make ~id:1 ~name:"frontend" ~profile:Service.Web ~min_generation:2 () in
  let store = Service.make ~id:2 ~name:"blobstore" ~profile:Service.Data_store () in
  let cache = Service.make ~id:3 ~name:"memcache" ~profile:Service.Cache () in
  let requests =
    [
      Capacity_request.make ~id:1 ~service:web ~rru:14.0 ~msb_spread_limit:0.35 ();
      Capacity_request.make ~id:2 ~service:store ~rru:8.0 ~msb_spread_limit:0.4 ();
      Capacity_request.make ~id:3 ~service:cache ~rru:4.0 ~msb_spread_limit:0.5
        ~embedded_buffer:false ();
    ]
  in
  let reservations =
    List.map Reservation.of_request requests
    (* plus the shared random-failure buffer, 2% per hardware category *)
    @ Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in

  (* 3. one continuous-optimization pass *)
  let snapshot = Snapshot.take broker reservations in
  let stats = Async_solver.solve snapshot in
  print_string (Explain.solve_report stats);

  (* 4. execute the binding intent *)
  let mover = Online_mover.create broker in
  Online_mover.set_reservations mover reservations;
  let apply = Online_mover.apply_plan mover stats.Async_solver.plan in
  Printf.printf "mover executed %d moves (%d preempting)\n\n"
    (apply.Online_mover.moved_unused + apply.Online_mover.moved_in_use)
    apply.Online_mover.moved_in_use;

  (* 5. what did everyone get? *)
  let snapshot = Snapshot.take broker reservations in
  List.iter
    (fun res ->
      if not (Reservation.is_buffer res) then
        print_string (Explain.reservation_report snapshot res))
    reservations;

  (* 6. place containers on the web reservation through the Twine allocator *)
  let web_res = List.hd reservations in
  let alloc =
    Ras_twine.Allocator.create broker ~reservation:web_res.Reservation.id
      ~rru_of:web_res.Reservation.rru_of
  in
  let job =
    Ras_twine.Job.make ~id:1 ~reservation:web_res.Reservation.id ~replicas:10
      ~rru_per_replica:1.0 ()
  in
  (match Ras_twine.Allocator.place_job alloc job with
  | Ok () ->
    Printf.printf "placed %d containers on %d servers\n"
      (Ras_twine.Allocator.placed_containers alloc)
      (List.length (Ras_twine.Allocator.servers_in_use alloc))
  | Error e -> Printf.printf "placement failed: %s\n" e)
