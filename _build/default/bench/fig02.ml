(* Fig. 2: hardware mixture across MSBs.  Expect large per-MSB variation and
   an age skew: generation-1 subtypes only in old MSBs, generation-3 only in
   new ones. *)

module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware

let run () =
  Report.heading "Figure 2: hardware heterogeneity across MSBs"
    ~paper:"capacity % per <C-S> subtype for 14 MSBs + region average"
    ~expect:"strong per-MSB variation; gen-1 absent from newest MSBs and gen-3 from oldest";
  let region = Scenarios.region_of Scenarios.Wide in
  let sample_msbs =
    (* like the paper, show a representative sample plus the average *)
    List.init 14 (fun i -> i * region.Region.num_msbs / 14)
  in
  let mix msb =
    let counts = Array.make Hw.count 0 in
    let total = ref 0 in
    Array.iter
      (fun (s : Region.server) ->
        if msb < 0 || s.Region.loc.Region.msb = msb then begin
          counts.(s.Region.hw.Hw.index) <- counts.(s.Region.hw.Hw.index) + 1;
          incr total
        end)
      region.Region.servers;
    Array.map (fun c -> 100.0 *. float_of_int c /. float_of_int (Stdlib.max 1 !total)) counts
  in
  Report.row "%-6s" "MSB";
  Array.iter (fun h -> Report.row "%7s" h.Hw.code) Hw.catalog;
  Report.row "\n";
  let print_row label percentages =
    Report.row "%-6s" label;
    Array.iter (fun p -> if p > 0.0 then Report.row "%6.1f%%" p else Report.row "%7s" "-") percentages;
    Report.row "\n"
  in
  List.iter (fun m -> print_row (Printf.sprintf "%c" (Char.chr (Char.code 'A' + List.length (List.filter (fun x -> x < m) sample_msbs)))) (mix m)) sample_msbs;
  print_row "Avg" (mix (-1));
  (* verify the age-skew claim *)
  let oldest = mix 0 and newest = mix (region.Region.num_msbs - 1) in
  let share gen m =
    Array.fold_left ( +. ) 0.0
      (Array.mapi (fun i p -> if Hw.catalog.(i).Hw.cpu_generation = gen then p else 0.0) m)
  in
  Report.row "gen-3 share: oldest MSB %.1f%% vs newest MSB %.1f%%\n" (share 3 oldest)
    (share 3 newest);
  Report.row "gen-1 share: oldest MSB %.1f%% vs newest MSB %.1f%%\n" (share 1 oldest)
    (share 1 newest)
