(* Fig. 5: server unavailability events over one month, in 60-minute
   windows.  Planned maintenance dominates; unplanned stays under ~0.5% with
   spikes above 3%; one correlated event takes ~an MSB (~4% of a 36-MSB
   region at the paper's scale, 1/36=2.8% of ours). *)

module Failure_model = Ras_failures.Failure_model
module Unavail = Ras_failures.Unavail
module Summary = Ras_stats.Summary

let run () =
  Report.heading "Figure 5: server unavailability over one month"
    ~paper:"total 2-6% dominated by planned; unplanned <0.5% spiking >3%; ~4% correlated event"
    ~expect:"same bands from the stochastic failure schedule";
  let region = Scenarios.region_of Scenarios.Wide in
  let rng = Ras_stats.Rng.create 99 in
  let horizon_days = float_of_int (Scenarios.scaled 28) in
  let events =
    Failure_model.generate rng region Failure_model.default_params ~horizon_days
  in
  Report.row "events generated: %d\n" (List.length events);
  let series kinds =
    Failure_model.series region events ~horizon_days ~window_h:1.0 ~kinds
  in
  let stats name kinds =
    let s = Summary.create () in
    Array.iter (fun (_, v) -> Summary.add s (100.0 *. v)) (series kinds);
    Report.row "%-22s mean %5.2f%%  p95 %5.2f%%  max %5.2f%%\n" name (Summary.mean s)
      (Summary.percentile s 95.0) (Summary.max_value s)
  in
  stats "planned maintenance" [ Unavail.Planned_maintenance ];
  stats "unplanned (sw+hw)" [ Unavail.Unplanned_sw; Unavail.Unplanned_hw ];
  stats "unplanned hardware" [ Unavail.Unplanned_hw ];
  stats "correlated" [ Unavail.Correlated ];
  stats "total"
    [ Unavail.Planned_maintenance; Unavail.Unplanned_sw; Unavail.Unplanned_hw; Unavail.Correlated ];
  (* weekly profile of the total, like the figure's four weeks *)
  let total =
    series
      [ Unavail.Planned_maintenance; Unavail.Unplanned_sw; Unavail.Unplanned_hw; Unavail.Correlated ]
  in
  let weeks = int_of_float (horizon_days /. 7.0) in
  for w = 0 to Stdlib.max 0 (weeks - 1) do
    let s = Summary.create () in
    Array.iter
      (fun (t, v) ->
        if t >= float_of_int w *. 168.0 && t < float_of_int (w + 1) *. 168.0 then
          Summary.add s (100.0 *. v))
      total;
    if Summary.count s > 0 then
      Report.row "week %d: mean %5.2f%%  max %5.2f%%\n" (w + 1) (Summary.mean s)
        (Summary.max_value s)
  done
