(* Bechamel micro-benchmarks of the solver kernels that back the timing
   figures (7, 8, 10, 11): simplex LP solve, symmetry grouping, formulation
   build, model compile, and a full phase-1 solve. *)

open Bechamel
open Toolkit

let lp_problem () =
  (* a representative mid-size LP: transportation-like structure *)
  let m = Ras_mip.Model.create () in
  let n_src = 12 and n_dst = 10 in
  let vars =
    Array.init n_src (fun i ->
        Array.init n_dst (fun j ->
            Ras_mip.Model.add_var ~name:(Printf.sprintf "x%d_%d" i j) ~ub:50.0 m))
  in
  for i = 0 to n_src - 1 do
    let e = Ras_mip.Lin_expr.of_terms (List.init n_dst (fun j -> (1.0, vars.(i).(j)))) in
    ignore (Ras_mip.Model.add_constraint m e Ras_mip.Model.Le 40.0)
  done;
  for j = 0 to n_dst - 1 do
    let e = Ras_mip.Lin_expr.of_terms (List.init n_src (fun i -> (1.0, vars.(i).(j)))) in
    ignore (Ras_mip.Model.add_constraint m e Ras_mip.Model.Ge 20.0)
  done;
  let obj =
    Ras_mip.Lin_expr.of_terms
      (List.concat
         (List.init n_src (fun i ->
              List.init n_dst (fun j -> (float_of_int (((i * 7) + (j * 3)) mod 11), vars.(i).(j))))))
  in
  Ras_mip.Model.set_objective m obj;
  Ras_mip.Model.compile m

let small_scenario () =
  let region = Scenarios.region_of Scenarios.Small in
  let broker = Ras_broker.Broker.create region in
  let requests = Scenarios.requests_of Scenarios.Small region in
  let reservations =
    List.map Ras.Reservation.of_request requests
    @ Ras.Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  Ras.Snapshot.take broker reservations

let tests () =
  let std = lp_problem () in
  let snapshot = small_scenario () in
  let symmetry = Ras.Symmetry.build snapshot in
  let formulation = Ras.Formulation.build symmetry snapshot.Ras.Snapshot.reservations in
  [
    Test.make ~name:"simplex-lp-120var" (Staged.stage (fun () -> Ras_mip.Simplex.solve std));
    Test.make ~name:"symmetry-build" (Staged.stage (fun () -> Ras.Symmetry.build snapshot));
    Test.make ~name:"formulation-build"
      (Staged.stage (fun () ->
           Ras.Formulation.build symmetry snapshot.Ras.Snapshot.reservations));
    Test.make ~name:"model-compile"
      (Staged.stage (fun () -> Ras_mip.Model.compile formulation.Ras.Formulation.model));
    Test.make ~name:"phase1-heuristic-solve"
      (Staged.stage (fun () ->
           Ras.Phases.run ~mip_node_limit:0 snapshot snapshot.Ras.Snapshot.reservations));
  ]

let run () =
  Report.heading "Bechamel kernel micro-benchmarks"
    ~paper:"(methodology) wall-clock kernels behind Figs. 7/8/10/11"
    ~expect:"stable per-run estimates; build kernels far cheaper than LP solves";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 100) ()
  in
  let grouped = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Report.row "%-40s %12.0f ns/run\n" name est
      | Some _ | None -> Report.row "%-40s (no estimate)\n" name)
    results
