(* Benchmark harness entry point: one experiment per paper table/figure plus
   ablations and kernel micro-benchmarks.

   Usage: main.exe [--quick] [experiment ...]
   Experiments: table1 fig2 fig3 fig4 fig5 fig7 fig8 fig9 fig10 fig11 fig12
                fig13 fig14 fig15 fig16 ablations kernels
   With no experiment arguments, everything runs. *)

let experiments : (string * (unit -> unit)) list =
  [
    ("table1", Table1.run);
    ("fig2", Fig02.run);
    ("fig3", Fig03.run);
    ("fig4", Fig04.run);
    ("fig5", Fig05.run);
    ("fig7", Fig07.run);
    ("fig8", Fig08.run);
    ("fig9", Fig09.run);
    ("fig10", Fig10_11.run_fig10);
    ("fig11", Fig10_11.run_fig11);
    ("fig12", Fig12.run);
    ("fig13", Fig13.run);
    ("fig14", Fig14.run);
    ("fig15", Fig15.run);
    ("fig16", Fig16.run);
    ("ablations", Ablations.run);
    ("kernels", Kernels.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  Scenarios.quick := quick;
  let selected = List.filter (fun a -> a <> "--quick") args in
  let to_run =
    if selected = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S (known: %s)\n" name
              (String.concat " " (List.map fst experiments));
            exit 2)
        selected
  in
  Printf.printf "RAS reproduction benchmarks%s - %d experiment(s)\n"
    (if quick then " (quick mode)" else "")
    (List.length to_run);
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      let t = Unix.gettimeofday () in
      f ();
      Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t))
    to_run;
  Printf.printf "\nall experiments done in %.1fs\n" (Unix.gettimeofday () -. t0)
