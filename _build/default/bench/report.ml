(* Text-table rendering for the figure benchmarks: every experiment prints a
   header with its paper reference and expectation, then rows of data. *)

let heading id ~paper ~expect =
  Printf.printf "\n=== %s ===\n" id;
  Printf.printf "paper:    %s\n" paper;
  Printf.printf "expected: %s\n" expect;
  Printf.printf "%s\n" (String.make 72 '-')

let row fmt = Printf.printf fmt

let series ~name ~unit_ points =
  Printf.printf "%s (%s):\n" name unit_;
  Array.iter (fun (t, v) -> Printf.printf "  %10.1f  %g\n" t v) points

let series_weekly ~name ~unit_ points =
  Printf.printf "%s (%s, weekly buckets):\n" name unit_;
  Array.iter (fun (t, v) -> Printf.printf "  week %4.1f  %.4f\n" (t /. 168.0) v) points

let summary name (s : Ras_stats.Summary.t) =
  Printf.printf "%-28s %s\n" name (Format.asprintf "%a" Ras_stats.Summary.pp s)

let pct x = 100.0 *. x
