(* Fig. 16: weekly server-movement churn, in-use vs unused moves.  The paper
   measures unused moves ~10.6x more frequent than in-use moves, with spikes
   during working hours (capacity requests) and a failure-driven floor
   off-hours. *)

module Broker = Ras_broker.Broker
module Capacity_request = Ras_workload.Capacity_request
module Failure_model = Ras_failures.Failure_model
module Request_gen = Ras_workload.Request_gen
module Timeseries = Ras_stats.Timeseries

let run () =
  Report.heading "Figure 16: in-use vs unused server moves over one week"
    ~paper:"unused moves 10.6x in-use moves; spikes during working hours"
    ~expect:"unused >> in-use; request-driven spikes on weekdays";
  let region = Scenarios.region_of Scenarios.Medium in
  let broker = Broker.create region in
  let requests = Scenarios.requests_of ~utilization:0.40 Scenarios.Medium region in
  let config =
    {
      Ras.System.default_config with
      Ras.System.solver = Scenarios.simulation_solver;
      job_fill_fraction = 0.8;
    }
  in
  let sys = Ras.System.create ~config broker in
  List.iter (Ras.System.add_request sys) requests;
  let days = Scenarios.scaled 7 in
  let horizon = float_of_int days *. 24.0 in
  let failures =
    Failure_model.generate (Ras_stats.Rng.create 3) region Failure_model.default_params
      ~horizon_days:(float_of_int days)
  in
  Ras.System.install_failures sys failures;
  (* diurnal capacity-request stream: resize an existing reservation at each
     arrival, the dominant churn source during working hours *)
  let arrivals =
    Request_gen.arrivals_over (Ras_stats.Rng.create 8) ~days ~mean_per_workday:6.0
  in
  let resize_rng = Ras_stats.Rng.create 21 in
  let req_array = Array.of_list requests in
  List.iter
    (fun at ->
      if at < horizon then
        Ras_sim.Engine.schedule (Ras.System.engine sys) ~at (fun _ ->
            let r = req_array.(Ras_stats.Rng.int resize_rng (Array.length req_array)) in
            (* capacity requests skew toward growth (paper §2.4); large
               shrinks that preempt running containers are rare *)
            let factor = 0.95 +. Ras_stats.Rng.float resize_rng 0.25 in
            let resized =
              { r with Capacity_request.rru = Stdlib.max 1.0 (r.Capacity_request.rru *. factor) }
            in
            Ras.System.resize_request sys resized))
    arrivals;
  Ras.System.start sys;
  Ras.System.run sys ~until_h:horizon;
  let m = Ras.System.metrics sys in
  let total name =
    match Ras_sim.Metrics.find m name with
    | Some s -> Array.fold_left (fun acc (_, v) -> acc +. v) 0.0 (Timeseries.points s)
    | None -> 0.0
  in
  let in_use = total "moves_in_use" and unused = total "moves_unused" in
  Report.row "total moves: %.0f unused, %.0f in-use; ratio %.1fx (paper: 10.6x)\n" unused in_use
    (if in_use > 0.0 then unused /. in_use else infinity);
  (* daily profile *)
  (match Ras_sim.Metrics.find m "moves_unused" with
  | Some s ->
    let buckets = Timeseries.bucketize s ~width:24.0 ~f:(Array.fold_left ( +. ) 0.0) in
    Array.iteri
      (fun i (_, v) ->
        let day = [| "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat"; "Sun" |].(i mod 7) in
        Report.row "  %s: %4.0f unused moves\n" day v)
      buckets
  | None -> ());
  Report.row "failure replacements executed: %d (failed: %d)\n"
    (Ras.Online_mover.replacements_done (Ras.System.mover sys))
    (Ras.Online_mover.replacements_failed (Ras.System.mover sys))
