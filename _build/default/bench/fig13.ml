(* Fig. 13: spread of the top services across all MSBs after RAS reaches
   steady state.  Most services should show near-uniform shares across MSBs;
   the explained exceptions must appear: generation-pinned services miss the
   oldest/newest MSBs, and the ML service is confined to one datacenter. *)

module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Service = Ras_workload.Service

let run () =
  Report.heading "Figure 13: spread of services across MSBs"
    ~paper:"top-30 services nearly uniform; new-hw services skip old MSBs and vice versa; ML pinned to one DC"
    ~expect:"uniform rows except the constrained services (marked)";
  let region = Scenarios.region_of Scenarios.Wide in
  let broker = Broker.create region in
  let requests = Scenarios.requests_of ~utilization:0.42 Scenarios.Wide region in
  let reservations =
    List.map Ras.Reservation.of_request requests
    @ Ras.Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  let mover = Ras.Online_mover.create broker in
  Ras.Online_mover.set_reservations mover reservations;
  (* a few solve iterations to steady state *)
  for _ = 1 to Scenarios.scaled 4 do
    let snapshot = Ras.Snapshot.take broker reservations in
    let stats = Ras.Async_solver.solve ~params:Scenarios.simulation_solver snapshot in
    ignore (Ras.Online_mover.apply_plan mover stats.Ras.Async_solver.plan)
  done;
  let snapshot = Ras.Snapshot.take broker reservations in
  Report.row "%-24s" "service \\ MSB (oldest->newest)";
  for m = 0 to region.Region.num_msbs - 1 do
    Report.row "%3d" m
  done;
  Report.row "   max%%\n";
  List.iter
    (fun res ->
      if not (Ras.Reservation.is_buffer res) then begin
        let per_msb = Ras.Snapshot.rru_by_msb snapshot res in
        let total = Array.fold_left ( +. ) 0.0 per_msb in
        if total > 0.0 then begin
          Report.row "%-24s" res.Ras.Reservation.name;
          Array.iter
            (fun v ->
              let share = v /. total in
              if share <= 0.0 then Report.row "  ."
              else if share < 0.04 then Report.row "  -"
              else if share < 0.08 then Report.row "  o"
              else Report.row "  O")
            per_msb;
          Report.row "  %4.1f\n" (Report.pct (Array.fold_left Float.max 0.0 per_msb /. total))
        end
      end)
    reservations;
  Report.row "(legend: '.' none, '-' <4%%, 'o' 4-8%%, 'O' >8%% of the service's capacity)\n";
  (* verify the narrative constraints *)
  let find name =
    List.find_opt (fun r -> r.Ras.Reservation.name = name) reservations
  in
  (match find "ml-training-13" with
  | Some res ->
    let per_dc = Ras.Snapshot.rru_by_dc snapshot res in
    let total = Array.fold_left ( +. ) 0.0 per_dc in
    if total > 0.0 then
      Report.row "ML service DC shares:%s (affinity to DC2)\n"
        (String.concat ""
           (Array.to_list (Array.mapi (fun d v -> Printf.sprintf " DC%d=%.0f%%" d (Report.pct (v /. total))) per_dc)))
  | None -> ());
  List.iter
    (fun (name, expect) ->
      match find name with
      | Some res ->
        let per_msb = Ras.Snapshot.rru_by_msb snapshot res in
        let oldest = per_msb.(0) and newest = per_msb.(region.Region.num_msbs - 1) in
        Report.row "%s: oldest MSB %.1f RRU, newest MSB %.1f RRU (%s)\n" name oldest newest expect
      | None -> ())
    [ ("web-1", "needs gen>=2: expect 0 in oldest"); ("web-6", "gen<=2 only: expect 0 in newest") ]
