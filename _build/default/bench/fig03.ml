(* Fig. 3: Relative Value across processor generations for the four large
   services plus the fleet average. *)

module Service = Ras_workload.Service

let run () =
  Report.heading "Figure 3: relative value per processor generation"
    ~paper:"Web 1.00/1.47/1.82; DataStore flat; Feed gains on one generation only; fleet avg rises"
    ~expect:"same table (Web/Feed values encoded from the figure)";
  let profiles =
    [
      ("DataStore", Service.Data_store);
      ("Feed1", Service.Feed1);
      ("Feed2", Service.Feed2);
      ("Web", Service.Web);
      ("Fleet Avg", Service.Generic);
    ]
  in
  Report.row "%-12s %8s %8s %8s\n" "service" "gen I" "gen II" "gen III";
  List.iter
    (fun (name, p) ->
      Report.row "%-12s %8.2f %8.2f %8.2f\n" name (Service.relative_value p 1)
        (Service.relative_value p 2) (Service.relative_value p 3))
    profiles
