(* Fig. 8: allocation-time breakdown.  The paper: phase 1 is ~60% of total;
   phase 1 spends 67% of its time in the MIP step, phase 2 only 19% with
   ~70% split between the two build steps. *)

let run () =
  Report.heading "Figure 8: allocation time breakdown"
    ~paper:"phase1 60% of total; MIP is 67% of phase1 but 19% of phase2"
    ~expect:"phase1 dominated by MIP; phase2 dominated by build steps";
  let runs = Fig07.runs () in
  let p1 = ref (0.0, 0.0, 0.0, 0.0) and p2 = ref (0.0, 0.0, 0.0, 0.0) in
  let n2 = ref 0 in
  let add (a, b, c, d) (t : Ras.Phases.timing) =
    ( a +. t.Ras.Phases.ras_build_s,
      b +. t.Ras.Phases.solver_build_s,
      c +. t.Ras.Phases.initial_state_s,
      d +. t.Ras.Phases.mip_s )
  in
  List.iter
    (fun (r : Solver_runs.run) ->
      p1 := add !p1 r.Solver_runs.stats.Ras.Async_solver.phase1.Ras.Phases.timing;
      match r.Solver_runs.stats.Ras.Async_solver.phase2 with
      | Some ph ->
        p2 := add !p2 ph.Ras.Phases.timing;
        incr n2
      | None -> ())
    runs;
  let print label (a, b, c, d) =
    let total = a +. b +. c +. d in
    if total > 0.0 then begin
      Report.row "%-8s ras-build %4.1f%%  solver-build %4.1f%%  initial %4.1f%%  MIP %4.1f%%\n"
        label (100.0 *. a /. total) (100.0 *. b /. total) (100.0 *. c /. total)
        (100.0 *. d /. total);
      total
    end
    else begin
      Report.row "%-8s (never ran)\n" label;
      0.0
    end
  in
  let t1 = print "phase 1" !p1 in
  let t2 = print "phase 2" !p2 in
  Report.row "phase 2 ran in %d/%d solves\n" !n2 (List.length runs);
  if t1 +. t2 > 0.0 then
    Report.row "phase 1 share of total: %.1f%% (paper: 60%%)\n" (100.0 *. t1 /. (t1 +. t2));
  (* At laptop scale the builds are near-free, so MIP dominates both phases;
     the paper's 67%/19% split is a property of 10^6-variable builds.
     Project our per-variable build cost to the paper's scale to show the
     split re-emerges. *)
  (match List.rev (Fig10_11.sweep ()) with
  | biggest :: _ when biggest.Fig10_11.grouped1 > 0 ->
    let per_var = biggest.Fig10_11.build1_s /. float_of_int biggest.Fig10_11.grouped1 in
    let projected_build = per_var *. 6.0e6 in
    let mip_budget = Float.max 0.0 (3600.0 -. projected_build) in
    ignore mip_budget;
    Report.row
      "scale context: our build projects to ~%.0fs at the paper's 6M variables, while their \
       Fig. 10 measures ~600s of setup there — with setup that heavy and the MIP cut off \
       early, their 67%%/19%% MIP shares follow; at our scale builds are simply too cheap to \
       show\n"
      projected_build
  | _ -> ())
