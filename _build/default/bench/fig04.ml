(* Fig. 4: requested capacity vs. number of hardware types that can fulfill
   the request.  Joint distribution: sizes 1..30000 with most mass at a few
   hundred; flexibility modes at 1 and ~8 types, small tail at 10-12. *)

module Request_gen = Ras_workload.Request_gen
module Summary = Ras_stats.Summary

let run () =
  Report.heading "Figure 4: capacity requested vs acceptable hardware types"
    ~paper:"log-scale sizes 1..30000, modes at 1 and 8 hw types, few requests accept 10-12"
    ~expect:"matching joint histogram from the request generator";
  let rng = Ras_stats.Rng.create 42 in
  let n = Scenarios.scaled 4000 in
  let samples = Request_gen.paper_distribution rng ~n in
  (* histogram: hw types x size decade *)
  let decades = [| 1.0; 10.0; 100.0; 1000.0; 10000.0; 100000.0 |] in
  let counts = Array.make_matrix 12 (Array.length decades - 1) 0 in
  List.iter
    (fun (s : Request_gen.sized_request) ->
      let d = ref 0 in
      for k = 0 to Array.length decades - 2 do
        if s.Request_gen.units >= decades.(k) then d := k
      done;
      counts.(s.Request_gen.hw_types - 1).(!d) <-
        counts.(s.Request_gen.hw_types - 1).(!d) + 1)
    samples;
  Report.row "%-9s %8s %8s %8s %8s %8s %8s\n" "hw types" "1-9" "10-99" "100-999" "1k-9k"
    "10k+" "total";
  Array.iteri
    (fun i row ->
      let total = Array.fold_left ( + ) 0 row in
      Report.row "%-9d %8d %8d %8d %8d %8d %8d\n" (i + 1) row.(0) row.(1) row.(2) row.(3)
        row.(4) total)
    counts;
  let sizes = Summary.create () in
  List.iter (fun (s : Request_gen.sized_request) -> Summary.add sizes s.Request_gen.units) samples;
  Report.summary "request size (units)" sizes;
  let max_size = Summary.max_value sizes and min_size = Summary.min_value sizes in
  Report.row "size span: %.0f .. %.0f (paper: 1 .. ~30000)\n" min_size max_size
