(* Figs. 10 & 11: setup time (RAS build + solver build + initial state) and
   solver memory as a function of the number of assignment variables, for
   both phases.  Both should grow roughly linearly; phase 2 stays smaller
   because it is capped. *)

module Generator = Ras_topology.Generator
module Broker = Ras_broker.Broker

type point = {
  grouped1 : int;
  raw1 : int;
  build1_s : float;  (* RAS build + solver build *)
  setup1_s : float;  (* build + initial-state LP *)
  bytes1 : int;
  grouped2 : int option;
  setup2_s : float option;
  bytes2 : int option;
}

let measure ~dcs ~msbs ~racks ~servers =
  let params =
    {
      Generator.name = "sweep";
      num_dcs = dcs;
      msbs_per_dc = msbs;
      racks_per_msb = racks;
      servers_per_rack = servers;
      seed = 5;
    }
  in
  let region = Generator.generate params in
  let broker = Broker.create region in
  let requests =
    Solver_runs.with_rack_limits
      (Ras_workload.Request_gen.scenario (Ras_stats.Rng.create 11) ~region
         ~services:(Scenarios.services_of Scenarios.Wide) ~target_utilization:0.45)
  in
  let reservations =
    List.map Ras.Reservation.of_request requests
    @ Ras.Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  let snapshot = Ras.Snapshot.take broker reservations in
  let stats =
    Ras.Async_solver.solve ~params:Scenarios.simulation_solver snapshot
  in
  let p1 = stats.Ras.Async_solver.phase1 in
  let build t = t.Ras.Phases.ras_build_s +. t.Ras.Phases.solver_build_s in
  let setup t = build t +. t.Ras.Phases.initial_state_s in
  {
    grouped1 = p1.Ras.Phases.grouped_vars;
    raw1 = p1.Ras.Phases.raw_vars;
    build1_s = build p1.Ras.Phases.timing;
    setup1_s = setup p1.Ras.Phases.timing;
    bytes1 = p1.Ras.Phases.setup_bytes;
    grouped2 = Option.map (fun p -> p.Ras.Phases.grouped_vars) stats.Ras.Async_solver.phase2;
    setup2_s = Option.map (fun p -> setup p.Ras.Phases.timing) stats.Ras.Async_solver.phase2;
    bytes2 = Option.map (fun p -> p.Ras.Phases.setup_bytes) stats.Ras.Async_solver.phase2;
  }

let sweep_cache : point list option ref = ref None

let sweep () =
  match !sweep_cache with
  | Some s -> s
  | None ->
    let sizes =
      if !Scenarios.quick then [ (2, 3, 4, 6); (3, 4, 4, 8) ]
      else [ (2, 3, 4, 6); (3, 4, 4, 8); (3, 6, 6, 8); (4, 8, 6, 10); (4, 9, 8, 12) ]
    in
    let s = List.map (fun (d, m, r, v) -> measure ~dcs:d ~msbs:m ~racks:r ~servers:v) sizes in
    sweep_cache := Some s;
    s

let run_fig10 () =
  Report.heading "Figure 10: setup time vs assignment variables"
    ~paper:"RAS build + solver build + initial state grows linearly with variables; phase2 < phase1"
    ~expect:"monotone, roughly linear growth; phase-2 problems capped smaller";
  Report.row "%-12s %-12s %-12s %-14s %-12s %-12s\n" "grouped-P1" "raw-P1" "build-P1(s)"
    "+initLP-P1(s)" "grouped-P2" "setup-P2(s)";
  List.iter
    (fun p ->
      Report.row "%-12d %-12d %-12.3f %-14.3f %-12s %-12s\n" p.grouped1 p.raw1 p.build1_s
        p.setup1_s
        (match p.grouped2 with Some g -> string_of_int g | None -> "-")
        (match p.setup2_s with Some s -> Printf.sprintf "%.3f" s | None -> "-"))
    (sweep ());
  (* linearity check: time per variable should be roughly constant *)
  let ratios =
    List.filter_map
      (fun p -> if p.grouped1 > 0 then Some (p.build1_s /. float_of_int p.grouped1) else None)
      (sweep ())
  in
  (match (ratios, List.rev ratios) with
  | first :: _, last :: _ when first > 0.0 ->
    Report.row "build seconds per grouped variable: first %.2e, last %.2e (ratio %.2f)\n" first
      last (last /. first);
    Report.row
      "(the initial-state LP is cold-started here and grows superlinearly; the paper's\n \
       production solver warm-starts it, see EXPERIMENTS.md)\n"
  | _ -> ())

let run_fig11 () =
  Report.heading "Figure 11: solver memory vs assignment variables"
    ~paper:"memory grows linearly, ~24GB at 6M variables"
    ~expect:"allocation during build grows roughly linearly with variables";
  Report.row "%-12s %-14s %-12s %-14s\n" "grouped-P1" "MB-P1" "grouped-P2" "MB-P2";
  List.iter
    (fun p ->
      Report.row "%-12d %-14.1f %-12s %-14s\n" p.grouped1
        (float_of_int p.bytes1 /. 1048576.0)
        (match p.grouped2 with Some g -> string_of_int g | None -> "-")
        (match p.bytes2 with
        | Some b -> Printf.sprintf "%.1f" (float_of_int b /. 1048576.0)
        | None -> "-"))
    (sweep ())
