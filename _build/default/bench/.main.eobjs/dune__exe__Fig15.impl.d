bench/fig15.ml: List Printf Ras Ras_broker Ras_workload Report Scenarios Stdlib String
