bench/fig03.ml: List Ras_workload Report
