bench/fig05.ml: Array List Ras_failures Ras_stats Report Scenarios Stdlib
