bench/ablations.ml: Array Float Format List Ras Ras_broker Ras_failures Ras_mip Ras_stats Ras_topology Ras_workload Report Scenarios Solver_runs Stdlib Unix
