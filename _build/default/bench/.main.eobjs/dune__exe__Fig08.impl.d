bench/fig08.ml: Fig07 Fig10_11 Float List Ras Report Solver_runs
