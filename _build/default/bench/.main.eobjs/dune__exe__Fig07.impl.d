bench/fig07.ml: Array List Ras Ras_stats Report Scenarios Solver_runs String
