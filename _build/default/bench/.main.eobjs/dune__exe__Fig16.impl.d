bench/fig16.ml: Array List Ras Ras_broker Ras_failures Ras_sim Ras_stats Ras_workload Report Scenarios Stdlib
