bench/fig04.ml: Array List Ras_stats Ras_workload Report Scenarios
