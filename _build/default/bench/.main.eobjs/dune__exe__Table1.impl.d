bench/table1.ml: Format List Ras Ras_broker Ras_mip Ras_topology Report Scenarios String
