bench/fig02.ml: Array Char List Printf Ras_topology Report Scenarios Stdlib
