bench/kernels.ml: Analyze Array Bechamel Benchmark Hashtbl Instance List Measure Printf Ras Ras_broker Ras_mip Report Scenarios Staged Test Time Toolkit
