bench/main.ml: Ablations Array Fig02 Fig03 Fig04 Fig05 Fig07 Fig08 Fig09 Fig10_11 Fig12 Fig13 Fig14 Fig15 Fig16 Kernels List Printf Scenarios String Sys Table1 Unix
