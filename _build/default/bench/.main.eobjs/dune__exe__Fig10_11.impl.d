bench/fig10_11.ml: List Option Printf Ras Ras_broker Ras_stats Ras_topology Ras_workload Report Scenarios Solver_runs
