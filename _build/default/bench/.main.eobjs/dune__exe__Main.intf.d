bench/main.mli:
