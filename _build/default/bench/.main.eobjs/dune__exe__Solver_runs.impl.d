bench/solver_runs.ml: List Ras Ras_broker Ras_failures Ras_stats Ras_topology Ras_workload Scenarios Stdlib
