bench/report.ml: Array Format Printf Ras_stats String
