bench/fig14.ml: List Ras Ras_broker Ras_topology Ras_twine Ras_workload Report Scenarios Stdlib
