bench/fig09.ml: Fig07 Float List Ras Ras_stats Report Solver_runs
