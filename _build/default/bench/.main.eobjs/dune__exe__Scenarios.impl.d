bench/scenarios.ml: List Ras Ras_stats Ras_topology Ras_workload Stdlib
