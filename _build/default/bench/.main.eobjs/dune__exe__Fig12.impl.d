bench/fig12.ml: Float List Ras Ras_broker Ras_topology Ras_twine Ras_workload Report Scenarios Stdlib
