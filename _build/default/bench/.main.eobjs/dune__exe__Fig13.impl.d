bench/fig13.ml: Array Float List Printf Ras Ras_broker Ras_topology Ras_workload Report Scenarios String
