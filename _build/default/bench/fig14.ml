(* Fig. 14: normalized power-consumption variance across MSBs over four
   months, starting from the greedy baseline.  The paper's variance falls
   from ~0.9 to ~0.2 (normalized), and the most-loaded MSB's headroom rises
   from ~0 to 11%. *)

module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Power = Ras_workload.Power
module Greedy = Ras_twine.Greedy

let power_state broker =
  let usage_of (s : Region.server) =
    let r = Broker.record broker s.Region.id in
    match r.Broker.current with
    | Broker.Free -> Power.Idle_free
    | Broker.Shared_buffer -> Power.Assigned_idle
    | Broker.Reservation _ | Broker.Elastic _ -> Power.Assigned_busy
  in
  let draw = Power.msb_power (Broker.region broker) ~usage_of in
  let capacity = Power.msb_power (Broker.region broker) ~usage_of:(fun _ -> Power.Assigned_busy) in
  (Power.normalized_variance draw, Power.headroom ~capacity_watts:capacity ~draw_watts:draw)

let run () =
  Report.heading "Figure 14: power variance across MSBs"
    ~paper:"normalized variance 0.9 -> 0.2 over four months; worst-MSB headroom ~0 -> 11%"
    ~expect:"monotone-ish variance decrease after RAS enablement; headroom improves";
  let region = Scenarios.region_of Scenarios.Wide in
  let broker = Broker.create region in
  let requests = Scenarios.requests_of ~utilization:0.42 Scenarios.Wide region in
  ignore (Greedy.fulfill broker requests);
  let v0, h0 = power_state broker in
  Report.row "month 0.0 (greedy): normalized variance %.3f (=1.00 rel), headroom %.1f%%\n" v0
    (Report.pct h0);
  let reservations =
    List.map Ras.Reservation.of_request requests
    @ Ras.Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  let mover = Ras.Online_mover.create broker in
  Ras.Online_mover.set_reservations mover reservations;
  let months = Scenarios.scaled 4 in
  (* weekly solves over four months; RAS coverage ramps over the first month *)
  for week = 0 to (months * 4) - 1 do
    let coverage = Stdlib.min 1.0 (float_of_int (week + 1) /. 4.0) in
    let guaranteed = List.filter (fun r -> not (Ras.Reservation.is_buffer r)) reservations in
    let enabled_n =
      Stdlib.max 1 (int_of_float (coverage *. float_of_int (List.length guaranteed)))
    in
    let enabled =
      List.filteri (fun i _ -> i < enabled_n) guaranteed
      @ List.filter Ras.Reservation.is_buffer reservations
    in
    let snapshot = Ras.Snapshot.take broker enabled in
    let stats = Ras.Async_solver.solve ~params:Scenarios.simulation_solver snapshot in
    ignore (Ras.Online_mover.apply_plan mover stats.Ras.Async_solver.plan);
    if (week + 1) mod 4 = 0 then begin
      let v, h = power_state broker in
      Report.row "month %.1f: normalized variance %.3f (%.2f rel to start), headroom %.1f%%\n"
        (float_of_int (week + 1) /. 4.0)
        v (v /. v0) (Report.pct h)
    end
  done
