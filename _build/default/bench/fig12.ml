(* Fig. 12: correlated-failure buffer reduction as RAS is gradually enabled.
   The paper starts from Twine's greedy assignment (15.1% of a service's
   machines in its fullest MSB, capacity-weighted), drops to 5.8% as RAS
   takes over reservation after reservation, and to 4.2% once additional
   MSBs land — near the hardware-aware lower bound of 4.06% (perfect-spread
   bound 100/36 = 2.8%). *)

module Broker = Ras_broker.Broker
module Generator = Ras_topology.Generator
module Region = Ras_topology.Region
module Greedy = Ras_twine.Greedy

let run () =
  Report.heading "Figure 12: machines % in max MSB over two months"
    ~paper:"greedy 15.1% -> RAS 5.8% -> 4.2% after MSB additions; bounds 4.06% / 2.8%"
    ~expect:"large drop from greedy baseline toward the LP bound; further drop after extension";
  (* start at 32 MSBs, extend to 36 at week 5 so the final perfect-spread
     bound matches the paper's 2.8% *)
  let params = { (Scenarios.params_of Scenarios.Wide) with Generator.msbs_per_dc = 8 } in
  let region = Generator.generate params in
  let broker = Broker.create region in
  let requests = Scenarios.requests_of ~utilization:0.42 Scenarios.Wide region in
  let requests =
    List.sort
      (fun a b ->
        compare b.Ras_workload.Capacity_request.rru a.Ras_workload.Capacity_request.rru)
      requests
  in
  let greedy_result = Greedy.fulfill broker requests in
  let unmet = List.filter (fun (_, short) -> short > 0.0) greedy_result in
  if unmet <> [] then
    Report.row "note: greedy left %d requests short (they stay short until RAS)\n"
      (List.length unmet);
  let all_res = List.map Ras.Reservation.of_request requests in
  let buffers () =
    Ras.Buffers.shared_buffer_reservations (Broker.region broker) ~fraction:0.02 ~first_id:8000
  in
  let measure () =
    let snap = Ras.Snapshot.take broker all_res in
    Ras.Buffers.embedded_buffer_fraction snap
  in
  Report.row "week  0.0 (greedy baseline): %5.1f%% machines in max MSB\n"
    (Report.pct (measure ()));
  let mover = Ras.Online_mover.create broker in
  let weeks = Scenarios.scaled 8 in
  let total = List.length all_res in
  let series = ref [] in
  for day = 0 to (weeks * 7) - 1 do
    let week = day / 7 in
    (* enable reservations progressively over the first six weeks *)
    let enabled_count = Stdlib.min total (Stdlib.max 1 ((week + 1) * total / 6)) in
    let enabled = List.filteri (fun i _ -> i < enabled_count) all_res in
    (* datacenter expansion at the start of week 5 *)
    if day = 5 * 7 && (Broker.region broker).Region.num_msbs = 32 then begin
      let extended =
        Generator.extend (Broker.region broker) ~new_msbs_per_dc:1
          ~racks_per_msb:params.Generator.racks_per_msb
          ~servers_per_rack:params.Generator.servers_per_rack ~seed:77
      in
      Broker.extend_region broker extended;
      Report.row "week  5.0: region extended to %d MSBs\n" extended.Region.num_msbs
    end;
    let reservations = enabled @ buffers () in
    Ras.Online_mover.set_reservations mover reservations;
    let enabled_owners =
      List.map
        (fun r ->
          match r.Ras.Reservation.kind with
          | Ras.Reservation.Guaranteed -> Broker.Reservation r.Ras.Reservation.id
          | Ras.Reservation.Random_failure_buffer _ -> Broker.Shared_buffer)
        reservations
    in
    let include_server (v : Ras.Snapshot.server_view) =
      v.Ras.Snapshot.current = Broker.Free
      || v.Ras.Snapshot.current = Broker.Shared_buffer
      || List.mem v.Ras.Snapshot.current enabled_owners
    in
    let snapshot = Ras.Snapshot.take broker reservations in
    let stats =
      Ras.Async_solver.solve ~params:Scenarios.simulation_solver ~include_server snapshot
    in
    ignore (Ras.Online_mover.apply_plan mover stats.Ras.Async_solver.plan);
    series := (float_of_int (day + 1) /. 7.0, measure ()) :: !series
  done;
  List.iter
    (fun (w, v) ->
      if Float.rem w 1.0 < 0.01 || w = float_of_int weeks then
        Report.row "week %4.1f: %5.1f%% machines in max MSB\n" w (Report.pct v))
    (List.rev !series);
  (* bounds *)
  let final_snap = Ras.Snapshot.take broker (all_res @ buffers ()) in
  let hw_bound = Ras.Buffers.hardware_aware_bound final_snap (all_res @ buffers ()) in
  Report.row "hardware-aware lower bound: %5.1f%%  (paper: 4.06%%)\n" (Report.pct hw_bound);
  Report.row "perfect-spread bound 1/%d:  %5.1f%%  (paper: 2.8%%)\n"
    (Broker.region broker).Region.num_msbs
    (Report.pct (Ras.Buffers.perfect_spread_bound (Broker.region broker)))
