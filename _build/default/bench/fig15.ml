(* Fig. 15: cross-datacenter traffic share for the two Presto services as
   the expression-(7) affinity constraints are enabled.  The paper reports a
   2.3x reduction for Presto Batch and 1.6x for Presto Interactive over two
   months. *)

module Broker = Ras_broker.Broker
module Capacity_request = Ras_workload.Capacity_request
module Traffic = Ras_workload.Traffic

let run () =
  Report.heading "Figure 15: cross-datacenter traffic for Presto"
    ~paper:"batch cut 2.3x, interactive cut 1.6x after affinity constraints roll out"
    ~expect:"large cross-DC share before the constraint, dropping toward theta once enabled";
  let region = Scenarios.region_of Scenarios.Medium in
  let broker = Broker.create region in
  let requests = Scenarios.requests_of Scenarios.Medium region in
  (* Presto must be large enough that a +/- theta affinity window spans
     several servers *)
  let requests =
    List.map
      (fun (r : Capacity_request.t) ->
        if
          r.Capacity_request.service.Ras_workload.Service.profile
          = Ras_workload.Service.Presto_batch
          || r.Capacity_request.service.Ras_workload.Service.profile
             = Ras_workload.Service.Presto_interactive
        then { r with Capacity_request.rru = Stdlib.max 40.0 r.Capacity_request.rru }
        else r)
      requests
  in
  (* strip affinity first: the 'before' period places Presto without it *)
  let strip (r : Capacity_request.t) = { r with Capacity_request.dc_affinity = [] } in
  let is_presto (r : Capacity_request.t) =
    let p = r.Capacity_request.service.Ras_workload.Service.profile in
    p = Ras_workload.Service.Presto_batch || p = Ras_workload.Service.Presto_interactive
  in
  let data_dc_of (r : Capacity_request.t) =
    match r.Capacity_request.service.Ras_workload.Service.profile with
    | Ras_workload.Service.Presto_batch -> 0
    | _ -> 1
  in
  let with_affinity (r : Capacity_request.t) =
    if is_presto r then
      { r with Capacity_request.dc_affinity = [ (data_dc_of r, 0.85) ];
        affinity_tolerance = 0.1 }
    else r
  in
  let buffers = Ras.Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000 in
  let mover = Ras.Online_mover.create broker in
  let weeks = Scenarios.scaled 8 in
  let presto_res reservations =
    List.filter
      (fun res ->
        List.exists
          (fun (r : Capacity_request.t) ->
            is_presto r && r.Capacity_request.id = res.Ras.Reservation.id)
          requests)
      reservations
  in
  for week = 0 to weeks - 1 do
    (* affinity constraints are enabled at the start of week 2 *)
    let reqs =
      if week < 2 then List.map strip requests else List.map with_affinity requests
    in
    let reservations = List.map Ras.Reservation.of_request reqs @ buffers in
    Ras.Online_mover.set_reservations mover reservations;
    let snapshot = Ras.Snapshot.take broker reservations in
    let stats = Ras.Async_solver.solve ~params:Scenarios.simulation_solver snapshot in
    ignore (Ras.Online_mover.apply_plan mover stats.Ras.Async_solver.plan);
    let snapshot = Ras.Snapshot.take broker reservations in
    let line =
      List.map
        (fun res ->
          (* measure against the data DC regardless of declared affinity *)
          let data_dc =
            match
              List.find_opt
                (fun (r : Capacity_request.t) -> r.Capacity_request.id = res.Ras.Reservation.id)
                requests
            with
            | Some r -> data_dc_of r
            | None -> 0
          in
          let frac =
            Traffic.cross_dc_working_fraction ~data_dc
              ~capacity_per_dc:(Ras.Snapshot.rru_by_dc snapshot res)
              ~requested:res.Ras.Reservation.capacity_rru
          in
          Printf.sprintf "%s %.0f%%" res.Ras.Reservation.name (Report.pct frac))
        (presto_res reservations)
    in
    Report.row "week %d%s: %s\n" (week + 1)
      (if week = 2 - 1 then " (affinity off->on next week)" else "")
      (String.concat ", " line)
  done
