(* Fig. 9: phase-1 MIP quality gap under the solve timeout.  90% of the
   paper's solves are optimal within 200 preemption-units of cost; 99% are
   proven optimal with respect to fixing all softened constraints. *)

module Summary = Ras_stats.Summary

let run () =
  Report.heading "Figure 9: phase-1 MIP quality gap"
    ~paper:"90% of solves proven within 200 preemptions of optimal; 99% proven optimal on fixing softened constraints"
    ~expect:"high share of solves inside both thresholds despite timeouts";
  let runs = Fig07.runs () in
  let gaps = Summary.create () in
  let within_200 = ref 0 and constraints_ok = ref 0 and n = ref 0 in
  List.iter
    (fun (r : Solver_runs.run) ->
      let s = r.Solver_runs.stats in
      incr n;
      if Float.is_finite s.Ras.Async_solver.gap_preemptions then
        Summary.add gaps s.Ras.Async_solver.gap_preemptions;
      if s.Ras.Async_solver.gap_preemptions <= 200.0 then incr within_200;
      if s.Ras.Async_solver.proven_constraints_fixed then incr constraints_ok)
    runs;
  Report.summary "gap (preemption units)" gaps;
  Report.row "proven within 200 preemptions: %d/%d = %.0f%%  (paper: 90%%)\n" !within_200 !n
    (100.0 *. float_of_int !within_200 /. float_of_int !n);
  Report.row "proven optimal on softened constraints: %d/%d = %.0f%%  (paper: 99%%)\n"
    !constraints_ok !n
    (100.0 *. float_of_int !constraints_ok /. float_of_int !n)
