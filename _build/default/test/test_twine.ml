(* Tests for ras_twine: jobs, the in-reservation container allocator
   (stacking, spread, failure handling) and the greedy baseline. *)

module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Generator = Ras_topology.Generator
module Hw = Ras_topology.Hardware
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request
module Job = Ras_twine.Job
module Allocator = Ras_twine.Allocator
module Greedy = Ras_twine.Greedy
module Unavail = Ras_failures.Unavail

let rru_of hw = hw.Hw.base_rru

let setup ?(owned = 12) () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  (* give reservation 1 the first [owned] servers *)
  for id = 0 to owned - 1 do
    Broker.move broker id (Broker.Reservation 1)
  done;
  let alloc = Allocator.create broker ~reservation:1 ~rru_of in
  (broker, alloc)

let test_job_validation () =
  Alcotest.check_raises "zero replicas" (Invalid_argument "Job.make: replicas must be positive")
    (fun () -> ignore (Job.make ~id:1 ~reservation:1 ~replicas:0 ~rru_per_replica:1.0 ()));
  let j = Job.make ~id:1 ~reservation:1 ~replicas:3 ~rru_per_replica:2.0 () in
  Alcotest.(check (float 1e-9)) "total rru" 6.0 (Job.total_rru j);
  Alcotest.(check int) "containers" 3 (List.length (Job.containers j))

let test_place_and_stop () =
  let broker, alloc = setup () in
  let job = Job.make ~id:1 ~reservation:1 ~replicas:4 ~rru_per_replica:0.5 () in
  (match Allocator.place_job alloc job with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "placed" 4 (Allocator.placed_containers alloc);
  Alcotest.(check (float 1e-9)) "used rru" 2.0 (Allocator.used_rru alloc);
  let in_use = Allocator.servers_in_use alloc in
  List.iter
    (fun sid ->
      Alcotest.(check bool) "broker marked in use" true (Broker.record broker sid).Broker.in_use)
    in_use;
  Allocator.stop_job alloc job;
  Alcotest.(check int) "stopped" 0 (Allocator.placed_containers alloc);
  List.iter
    (fun sid ->
      Alcotest.(check bool) "in_use cleared" false (Broker.record broker sid).Broker.in_use)
    in_use

let test_wrong_reservation_rejected () =
  let _, alloc = setup () in
  let job = Job.make ~id:1 ~reservation:2 ~replicas:1 ~rru_per_replica:1.0 () in
  Alcotest.check_raises "wrong reservation"
    (Invalid_argument "Allocator.place_job: job belongs to a different reservation") (fun () ->
      ignore (Allocator.place_job alloc job))

let test_capacity_rejection_atomic () =
  let _, alloc = setup ~owned:2 () in
  let huge = Job.make ~id:2 ~reservation:1 ~replicas:100 ~rru_per_replica:5.0 () in
  (match Allocator.place_job alloc huge with
  | Ok () -> Alcotest.fail "should not fit"
  | Error _ -> ());
  Alcotest.(check int) "atomic rollback" 0 (Allocator.placed_containers alloc)

let test_stacking_respects_capacity () =
  let _, alloc = setup () in
  let job = Job.make ~id:3 ~reservation:1 ~replicas:20 ~rru_per_replica:0.4 ~spread_msbs:false () in
  (match Allocator.place_job alloc job with Ok () -> () | Error e -> Alcotest.fail e);
  (* no server may exceed its own RRU value *)
  let loads = Hashtbl.create 16 in
  List.iter
    (fun c ->
      match Allocator.server_of_container alloc c with
      | Some sid ->
        Hashtbl.replace loads sid
          (0.4 +. (try Hashtbl.find loads sid with Not_found -> 0.0))
      | None -> Alcotest.fail "unplaced container")
    (Job.containers job);
  Alcotest.(check bool) "stacked" true (Hashtbl.length loads < 20)

let test_spread_across_msbs () =
  (* server ids are rack-major within MSB: 0..23 are MSB 0, 24..47 MSB 1;
     give the reservation capacity in both *)
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  List.iter (fun id -> Broker.move broker id (Broker.Reservation 1))
    [ 0; 1; 2; 24; 25; 26 ];
  let alloc = Allocator.create broker ~reservation:1 ~rru_of in
  let job = Job.make ~id:4 ~reservation:1 ~replicas:6 ~rru_per_replica:0.25 () in
  (match Allocator.place_job alloc job with Ok () -> () | Error e -> Alcotest.fail e);
  let msbs = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match Allocator.server_of_container alloc c with
      | Some sid ->
        let msb = (Broker.record broker sid).Broker.server.Region.loc.Region.msb in
        Hashtbl.replace msbs msb ()
      | None -> ())
    (Job.containers job);
  Alcotest.(check bool) "replicas span several msbs" true (Hashtbl.length msbs >= 2)

let test_failure_replacement () =
  let broker, alloc = setup ~owned:12 () in
  let job = Job.make ~id:5 ~reservation:1 ~replicas:3 ~rru_per_replica:0.5 () in
  (match Allocator.place_job alloc job with Ok () -> () | Error e -> Alcotest.fail e);
  let victim = List.hd (Allocator.servers_in_use alloc) in
  Broker.mark_down broker victim Unavail.Unplanned_hw;
  (* containers re-placed on remaining capacity automatically *)
  Alcotest.(check int) "all replicas still placed" 3 (Allocator.placed_containers alloc);
  Alcotest.(check int) "none pending" 0 (Allocator.pending_containers alloc);
  List.iter
    (fun sid -> Alcotest.(check bool) "victim evacuated" true (sid <> victim))
    (Allocator.servers_in_use alloc)

let test_failure_without_capacity_goes_pending () =
  let broker, alloc = setup ~owned:1 () in
  let hw = (Broker.record broker 0).Broker.server.Region.hw in
  let job = Job.make ~id:6 ~reservation:1 ~replicas:1 ~rru_per_replica:(rru_of hw) () in
  (match Allocator.place_job alloc job with Ok () -> () | Error e -> Alcotest.fail e);
  Broker.mark_down broker 0 Unavail.Unplanned_hw;
  Alcotest.(check int) "pending" 1 (Allocator.pending_containers alloc);
  (* capacity arrives: a new server joins the reservation *)
  Broker.move broker 1 (Broker.Reservation 1);
  let stats = Allocator.retry_pending alloc in
  Alcotest.(check int) "replaced" 1 stats.Allocator.replaced;
  Alcotest.(check int) "no strand" 0 stats.Allocator.stranded

let test_evict_server () =
  let _, alloc = setup () in
  let job = Job.make ~id:7 ~reservation:1 ~replicas:2 ~rru_per_replica:0.5 () in
  (match Allocator.place_job alloc job with Ok () -> () | Error e -> Alcotest.fail e);
  match Allocator.servers_in_use alloc with
  | sid :: _ ->
    Allocator.evict_server alloc sid;
    Alcotest.(check bool) "pending or re-placed" true
      (Allocator.pending_containers alloc >= 0);
    Alcotest.(check bool) "server no longer hosts" true
      (not (List.mem sid (Allocator.servers_in_use alloc)))
  | [] -> Alcotest.fail "nothing placed"

let web = Service.make ~id:1 ~name:"web" ~profile:Service.Web ()

let test_greedy_fulfill_and_release () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let req = Capacity_request.make ~id:1 ~service:web ~rru:10.0 () in
  let result = Greedy.fulfill broker [ req ] in
  (match result with
  | [ (1, shortfall) ] -> Alcotest.(check (float 1e-9)) "fully satisfied" 0.0 shortfall
  | _ -> Alcotest.fail "unexpected result shape");
  let owned = Broker.servers_with_owner broker (Broker.Reservation 1) in
  Alcotest.(check bool) "servers bound" true (List.length owned > 0);
  (* greedy takes servers in pool order: concentrated in early MSBs *)
  let msbs =
    List.map (fun sid -> (Broker.record broker sid).Broker.server.Region.loc.Region.msb) owned
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "concentrated placement" true (List.length msbs <= 3);
  Greedy.release broker ~reservation:1;
  Alcotest.(check int) "released" 0 (Broker.count_owner broker (Broker.Reservation 1))

let test_greedy_reports_shortfall () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let req = Capacity_request.make ~id:1 ~service:web ~rru:1e9 () in
  match Greedy.fulfill broker [ req ] with
  | [ (1, shortfall) ] -> Alcotest.(check bool) "shortfall reported" true (shortfall > 0.0)
  | _ -> Alcotest.fail "unexpected result shape"

let test_greedy_skips_unacceptable_hw () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  let storage = Service.make ~id:2 ~name:"ds" ~profile:Service.Data_store () in
  let req = Capacity_request.make ~id:2 ~service:storage ~rru:5.0 () in
  ignore (Greedy.fulfill broker [ req ]);
  List.iter
    (fun sid ->
      let hw = (Broker.record broker sid).Broker.server.Region.hw in
      Alcotest.(check bool) "only storage hardware" true (hw.Hw.category = Hw.Storage))
    (Broker.servers_with_owner broker (Broker.Reservation 2))

let suite =
  [
    Alcotest.test_case "job validation" `Quick test_job_validation;
    Alcotest.test_case "place and stop" `Quick test_place_and_stop;
    Alcotest.test_case "wrong reservation rejected" `Quick test_wrong_reservation_rejected;
    Alcotest.test_case "capacity rejection atomic" `Quick test_capacity_rejection_atomic;
    Alcotest.test_case "stacking respects capacity" `Quick test_stacking_respects_capacity;
    Alcotest.test_case "spread across msbs" `Quick test_spread_across_msbs;
    Alcotest.test_case "failure replacement" `Quick test_failure_replacement;
    Alcotest.test_case "failure goes pending" `Quick test_failure_without_capacity_goes_pending;
    Alcotest.test_case "evict server" `Quick test_evict_server;
    Alcotest.test_case "greedy fulfill/release" `Quick test_greedy_fulfill_and_release;
    Alcotest.test_case "greedy reports shortfall" `Quick test_greedy_reports_shortfall;
    Alcotest.test_case "greedy hw acceptability" `Quick test_greedy_skips_unacceptable_hw;
  ]
