(* Tests for the Capacity Portal: admission validation with actionable
   rejection reasons (§5.3). *)

open Ras
module Broker = Ras_broker.Broker
module Generator = Ras_topology.Generator
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let web = Service.make ~id:1 ~name:"web" ~profile:Service.Web ()

let snapshot () =
  let region = Generator.generate Generator.small_params in
  let broker = Broker.create region in
  Snapshot.take broker []

let test_accepts_reasonable_request () =
  let portal = Portal.create () in
  let req = Capacity_request.make ~id:1 ~service:web ~rru:10.0 () in
  (match Portal.submit portal (snapshot ()) req with
  | Portal.Accepted -> ()
  | Portal.Rejected r -> Alcotest.fail r);
  Alcotest.(check int) "stored" 1 (List.length (Portal.requests portal));
  Alcotest.(check bool) "findable" true (Portal.find portal 1 <> None)

let test_rejects_impossible_hardware () =
  let portal = Portal.create () in
  (* a service acceptable to nothing: GPU-only with an impossible generation
     window *)
  let impossible =
    Service.make ~id:9 ~name:"impossible" ~profile:Service.Ml_training ~min_generation:3
      ~max_generation:1 ()
  in
  let req = Capacity_request.make ~id:9 ~service:impossible ~rru:1.0 () in
  match Portal.submit portal (snapshot ()) req with
  | Portal.Rejected reason ->
    Alcotest.(check bool) "reason names the service" true (contains reason "impossible");
    Alcotest.(check int) "not stored" 0 (List.length (Portal.requests portal))
  | Portal.Accepted -> Alcotest.fail "must reject"

let test_rejects_oversized_request () =
  let portal = Portal.create () in
  let req = Capacity_request.make ~id:2 ~service:web ~rru:1e6 () in
  match Portal.submit portal (snapshot ()) req with
  | Portal.Rejected reason ->
    Alcotest.(check bool) "reason quantifies supply" true (contains reason "RRU")
  | Portal.Accepted -> Alcotest.fail "must reject"

let test_rejects_overcommit () =
  let portal = Portal.create () in
  let snap = snapshot () in
  (* web-acceptable supply in the small region is ~240 RRU; two requests of
     110 with 1.2x buffer overhead (132 each) cannot both fit *)
  let r1 = Capacity_request.make ~id:1 ~service:web ~rru:110.0 () in
  let r2 = Capacity_request.make ~id:2 ~service:web ~rru:110.0 () in
  (match Portal.submit portal snap r1 with
  | Portal.Accepted -> ()
  | Portal.Rejected r -> Alcotest.fail ("first should fit: " ^ r));
  match Portal.submit portal snap r2 with
  | Portal.Rejected reason ->
    Alcotest.(check bool) "mentions committed capacity" true (contains reason "committed")
  | Portal.Accepted -> Alcotest.fail "second must be rejected"

let test_modify_excludes_own_claim () =
  let portal = Portal.create () in
  let snap = snapshot () in
  let r1 = Capacity_request.make ~id:1 ~service:web ~rru:110.0 () in
  (match Portal.submit portal snap r1 with
  | Portal.Accepted -> ()
  | Portal.Rejected r -> Alcotest.fail r);
  (* growing 110 -> 150 must be judged without double-counting the 110 *)
  let grown = Capacity_request.make ~id:1 ~service:web ~rru:150.0 () in
  (match Portal.modify portal snap grown with
  | Portal.Accepted -> ()
  | Portal.Rejected r -> Alcotest.fail ("modify should pass: " ^ r));
  match Portal.find portal 1 with
  | Some r -> Alcotest.(check (float 1e-9)) "stored new size" 150.0 r.Capacity_request.rru
  | None -> Alcotest.fail "lost the request"

let test_delete_and_log () =
  let portal = Portal.create () in
  let snap = snapshot () in
  let r1 = Capacity_request.make ~id:1 ~service:web ~rru:5.0 () in
  ignore (Portal.submit portal snap r1);
  Alcotest.(check bool) "delete known" true (Portal.delete portal 1);
  Alcotest.(check bool) "delete unknown" false (Portal.delete portal 77);
  match Portal.log portal with
  | [ Portal.Submitted (1, Portal.Accepted); Portal.Deleted 1 ] -> ()
  | l -> Alcotest.failf "unexpected log (%d entries)" (List.length l)

let test_buffer_overhead () =
  let region = Generator.generate Generator.small_params in
  let with_buffer = Capacity_request.make ~id:1 ~service:web ~rru:10.0 () in
  let without =
    Capacity_request.make ~id:2 ~service:web ~rru:10.0 ~embedded_buffer:false ()
  in
  Alcotest.(check (float 1e-9)) "1 + 1/(msbs-1)" (1.0 +. (1.0 /. 5.0))
    (Portal.buffer_overhead region with_buffer);
  Alcotest.(check (float 1e-9)) "plain 1x" 1.0 (Portal.buffer_overhead region without)

let suite =
  [
    Alcotest.test_case "accepts reasonable request" `Quick test_accepts_reasonable_request;
    Alcotest.test_case "rejects impossible hardware" `Quick test_rejects_impossible_hardware;
    Alcotest.test_case "rejects oversized request" `Quick test_rejects_oversized_request;
    Alcotest.test_case "rejects overcommit" `Quick test_rejects_overcommit;
    Alcotest.test_case "modify excludes own claim" `Quick test_modify_excludes_own_claim;
    Alcotest.test_case "delete and audit log" `Quick test_delete_and_log;
    Alcotest.test_case "buffer overhead" `Quick test_buffer_overhead;
  ]
