(* Tests for ras_topology: hardware catalog, region structure and the
   synthetic generator's age-skew properties. *)

module Hw = Ras_topology.Hardware
module Region = Ras_topology.Region
module Generator = Ras_topology.Generator

let test_catalog_shape () =
  Alcotest.(check int) "sixteen subtypes" 16 Hw.count;
  let codes = Array.to_list (Array.map (fun h -> h.Hw.code) Hw.catalog) in
  Alcotest.(check int) "codes unique" 16 (List.length (List.sort_uniq compare codes));
  Array.iteri (fun i h -> Alcotest.(check int) "dense index" i h.Hw.index) Hw.catalog

let test_catalog_generations () =
  Array.iter
    (fun h ->
      Alcotest.(check bool) "generation 1..3" true (h.Hw.cpu_generation >= 1 && h.Hw.cpu_generation <= 3);
      Alcotest.(check bool) "positive rru" true (h.Hw.base_rru > 0.0);
      Alcotest.(check bool) "positive power" true (h.Hw.power_watts > 0.0))
    Hw.catalog

let test_find_by_code () =
  (match Hw.find_by_code "C4-S2" with
  | Some h -> Alcotest.(check int) "storage gen 2" 2 h.Hw.cpu_generation
  | None -> Alcotest.fail "C4-S2 missing");
  Alcotest.(check bool) "unknown code" true (Hw.find_by_code "C99" = None)

let test_generation_share_sums () =
  let total = Hw.generation_share 1 +. Hw.generation_share 2 +. Hw.generation_share 3 in
  Alcotest.(check (float 1e-9)) "shares sum to 1" 1.0 total

let test_generate_valid () =
  let region = Generator.generate Generator.small_params in
  (match Region.validate region with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "server count" (2 * 3 * 4 * 6) (Region.num_servers region);
  Alcotest.(check int) "msb count" 6 region.Region.num_msbs;
  Alcotest.(check int) "rack count" 24 region.Region.num_racks

let test_generate_deterministic () =
  let a = Generator.generate Generator.small_params in
  let b = Generator.generate Generator.small_params in
  Array.iteri
    (fun i (s : Region.server) ->
      Alcotest.(check string) "same hardware" s.Region.hw.Hw.code
        b.Region.servers.(i).Region.hw.Hw.code)
    a.Region.servers

let test_racks_homogeneous () =
  let region = Generator.generate Generator.small_params in
  let rack_hw = Hashtbl.create 32 in
  Array.iter
    (fun (s : Region.server) ->
      match Hashtbl.find_opt rack_hw s.Region.loc.Region.rack with
      | Some code -> Alcotest.(check string) "rack homogeneous" code s.Region.hw.Hw.code
      | None -> Hashtbl.replace rack_hw s.Region.loc.Region.rack s.Region.hw.Hw.code)
    region.Region.servers

let test_age_skew () =
  let region = Generator.generate Generator.default_params in
  let gen_share msb gen =
    let total = ref 0 and matching = ref 0 in
    Array.iter
      (fun (s : Region.server) ->
        if s.Region.loc.Region.msb = msb then begin
          incr total;
          if s.Region.hw.Hw.cpu_generation = gen then incr matching
        end)
      region.Region.servers;
    float_of_int !matching /. float_of_int (max 1 !total)
  in
  let newest = region.Region.num_msbs - 1 in
  Alcotest.(check (float 1e-9)) "no gen-3 in oldest MSB" 0.0 (gen_share 0 3);
  Alcotest.(check (float 1e-9)) "no gen-1 in newest MSB" 0.0 (gen_share newest 1)

let test_age_of_msb_ordering () =
  let region = Generator.generate Generator.small_params in
  Alcotest.(check (float 1e-9)) "oldest age 0" 0.0 (Generator.age_of_msb region 0);
  Alcotest.(check (float 1e-9)) "newest age 1" 1.0
    (Generator.age_of_msb region (region.Region.num_msbs - 1))

let test_extend_preserves_ids () =
  let region = Generator.generate Generator.small_params in
  let bigger =
    Generator.extend region ~new_msbs_per_dc:1 ~racks_per_msb:4 ~servers_per_rack:6 ~seed:2
  in
  (match Region.validate bigger with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "msbs grew" (region.Region.num_msbs + 2) bigger.Region.num_msbs;
  Array.iteri
    (fun i (s : Region.server) ->
      Alcotest.(check int) "old ids stable" s.Region.id bigger.Region.servers.(i).Region.id;
      Alcotest.(check string) "old hardware stable" s.Region.hw.Hw.code
        bigger.Region.servers.(i).Region.hw.Hw.code)
    region.Region.servers;
  (* new MSBs are the youngest: they must carry no generation-1 hardware *)
  let new_msb = bigger.Region.num_msbs - 1 in
  Array.iter
    (fun (s : Region.server) ->
      if s.Region.loc.Region.msb = new_msb then
        Alcotest.(check bool) "new msb has new hw" true (s.Region.hw.Hw.cpu_generation >= 2))
    bigger.Region.servers

let test_hw_mix_and_rru () =
  let region = Generator.generate Generator.small_params in
  let mix = Region.hw_mix_of_msb region 0 in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 mix in
  Alcotest.(check int) "mix covers msb servers" (4 * 6) total;
  Alcotest.(check bool) "total rru positive" true (Region.total_rru region > 0.0)

let test_servers_of_msb () =
  let region = Generator.generate Generator.small_params in
  let all =
    List.init region.Region.num_msbs (fun m -> List.length (Region.servers_of_msb region m))
  in
  Alcotest.(check int) "partition covers all" (Region.num_servers region)
    (List.fold_left ( + ) 0 all)

let test_msbs_of_dc () =
  let region = Generator.generate Generator.small_params in
  let counts = List.init region.Region.num_dcs (fun d -> List.length (Region.msbs_of_dc region d)) in
  Alcotest.(check (list int)) "3 msbs per dc" [ 3; 3 ] counts

let prop_validate_rejects_corruption =
  QCheck.Test.make ~name:"validate rejects corrupted rack_msb" ~count:50 QCheck.(int_range 0 23)
    (fun rack ->
      let region = Generator.generate Generator.small_params in
      let bad_rack_msb = Array.copy region.Region.rack_msb in
      bad_rack_msb.(rack) <- (bad_rack_msb.(rack) + 1) mod region.Region.num_msbs;
      let corrupted = { region with Region.rack_msb = bad_rack_msb } in
      match Region.validate corrupted with Ok () -> false | Error _ -> true)

let suite =
  [
    Alcotest.test_case "catalog shape" `Quick test_catalog_shape;
    Alcotest.test_case "catalog generations" `Quick test_catalog_generations;
    Alcotest.test_case "find_by_code" `Quick test_find_by_code;
    Alcotest.test_case "generation shares" `Quick test_generation_share_sums;
    Alcotest.test_case "generate valid" `Quick test_generate_valid;
    Alcotest.test_case "generate deterministic" `Quick test_generate_deterministic;
    Alcotest.test_case "racks homogeneous" `Quick test_racks_homogeneous;
    Alcotest.test_case "age skew" `Quick test_age_skew;
    Alcotest.test_case "age of msb" `Quick test_age_of_msb_ordering;
    Alcotest.test_case "extend preserves ids" `Quick test_extend_preserves_ids;
    Alcotest.test_case "hw mix and rru" `Quick test_hw_mix_and_rru;
    Alcotest.test_case "servers_of_msb partition" `Quick test_servers_of_msb;
    Alcotest.test_case "msbs_of_dc" `Quick test_msbs_of_dc;
    QCheck_alcotest.to_alcotest prop_validate_rejects_corruption;
  ]
