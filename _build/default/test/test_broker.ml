(* Tests for ras_broker: ownership, targets, unavailability subscriptions
   and region extension. *)

module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Generator = Ras_topology.Generator
module Unavail = Ras_failures.Unavail

let broker () = Broker.create (Generator.generate Generator.small_params)

let test_initial_state () =
  let b = broker () in
  Alcotest.(check int) "all free" (Broker.num_servers b) (Broker.count_owner b Broker.Free);
  let r = Broker.record b 0 in
  Alcotest.(check bool) "healthy" true (Broker.healthy r);
  Alcotest.(check bool) "available" true (Broker.available r);
  Alcotest.(check bool) "target free" true (r.Broker.target = Broker.Free)

let test_record_bounds () =
  let b = broker () in
  Alcotest.check_raises "unknown id" (Invalid_argument "Broker.record: unknown server 9999")
    (fun () -> ignore (Broker.record b 9999))

let test_move_resets_in_use () =
  let b = broker () in
  Broker.move b 0 (Broker.Reservation 1);
  Broker.set_in_use b 0 true;
  Broker.move b 0 (Broker.Reservation 1);
  Alcotest.(check bool) "same owner keeps in_use" true (Broker.record b 0).Broker.in_use;
  Broker.move b 0 (Broker.Reservation 2);
  Alcotest.(check bool) "owner change preempts" false (Broker.record b 0).Broker.in_use

let test_owner_queries () =
  let b = broker () in
  Broker.move b 3 Broker.Shared_buffer;
  Broker.move b 5 Broker.Shared_buffer;
  Alcotest.(check (list int)) "servers_with_owner" [ 3; 5 ]
    (Broker.servers_with_owner b Broker.Shared_buffer);
  Alcotest.(check int) "count_owner" 2 (Broker.count_owner b Broker.Shared_buffer)

let test_availability_semantics () =
  let b = broker () in
  Broker.mark_down b 0 Unavail.Planned_maintenance;
  let r = Broker.record b 0 in
  Alcotest.(check bool) "planned is available" true (Broker.available r);
  Alcotest.(check bool) "planned is not healthy" false (Broker.healthy r);
  Broker.mark_down b 0 Unavail.Correlated;
  Alcotest.(check bool) "correlated is unavailable" false (Broker.available (Broker.record b 0));
  Broker.mark_up b 0;
  Alcotest.(check bool) "healthy again" true (Broker.healthy (Broker.record b 0))

let test_subscription_events () =
  let b = broker () in
  let log = ref [] in
  Broker.subscribe b (fun e -> log := e :: !log);
  Broker.mark_down b 2 Unavail.Unplanned_sw;
  Broker.mark_down b 2 Unavail.Unplanned_sw;
  (* idempotent *)
  Broker.mark_up b 2;
  Broker.mark_up b 2;
  match List.rev !log with
  | [ Broker.Went_down (2, Unavail.Unplanned_sw); Broker.Came_up 2 ] -> ()
  | l -> Alcotest.failf "unexpected events (%d)" (List.length l)

let test_subscriber_order () =
  let b = broker () in
  let order = ref [] in
  Broker.subscribe b (fun _ -> order := 1 :: !order);
  Broker.subscribe b (fun _ -> order := 2 :: !order);
  Broker.mark_down b 1 Unavail.Unplanned_hw;
  Alcotest.(check (list int)) "subscription order" [ 1; 2 ] (List.rev !order)

let test_extend_region () =
  let region = Generator.generate Generator.small_params in
  let b = Broker.create region in
  Broker.move b 0 (Broker.Reservation 7);
  let bigger = Generator.extend region ~new_msbs_per_dc:1 ~racks_per_msb:2 ~servers_per_rack:3 ~seed:9 in
  Broker.extend_region b bigger;
  Alcotest.(check int) "more servers" (Region.num_servers bigger) (Broker.num_servers b);
  Alcotest.(check bool) "old state kept" true
    ((Broker.record b 0).Broker.current = Broker.Reservation 7);
  Alcotest.(check bool) "new servers free" true
    ((Broker.record b (Region.num_servers region)).Broker.current = Broker.Free)

let test_extend_rejects_shrink () =
  let region = Generator.generate Generator.small_params in
  let b = Broker.create region in
  let tiny = Generator.generate { Generator.small_params with Generator.num_dcs = 1 } in
  Alcotest.check_raises "shrink rejected"
    (Invalid_argument "Broker.extend_region: new region is smaller") (fun () ->
      Broker.extend_region b tiny)

let test_fold_iter_consistency () =
  let b = broker () in
  let n_fold = Broker.fold b ~init:0 ~f:(fun acc _ -> acc + 1) in
  let n_iter = ref 0 in
  Broker.iter b ~f:(fun _ -> incr n_iter);
  Alcotest.(check int) "fold = iter = size" n_fold !n_iter;
  Alcotest.(check int) "equals num_servers" (Broker.num_servers b) n_fold

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "record bounds" `Quick test_record_bounds;
    Alcotest.test_case "move resets in_use" `Quick test_move_resets_in_use;
    Alcotest.test_case "owner queries" `Quick test_owner_queries;
    Alcotest.test_case "availability semantics" `Quick test_availability_semantics;
    Alcotest.test_case "subscription events" `Quick test_subscription_events;
    Alcotest.test_case "subscriber order" `Quick test_subscriber_order;
    Alcotest.test_case "extend region" `Quick test_extend_region;
    Alcotest.test_case "extend rejects shrink" `Quick test_extend_rejects_shrink;
    Alcotest.test_case "fold/iter consistency" `Quick test_fold_iter_consistency;
  ]
