(* Tests for ras_failures: event scoping, schedule generation and the
   unavailability accounting that backs Fig. 5. *)

module Region = Ras_topology.Region
module Generator = Ras_topology.Generator
module Unavail = Ras_failures.Unavail
module Failure_model = Ras_failures.Failure_model

let region () = Generator.generate Generator.small_params

let test_event_activity_window () =
  let e = { Unavail.id = 0; scope = Unavail.Server 0; kind = Unavail.Unplanned_sw; start_h = 2.0; duration_h = 3.0 } in
  Alcotest.(check bool) "before" false (Unavail.active_at e 1.9);
  Alcotest.(check bool) "at start" true (Unavail.active_at e 2.0);
  Alcotest.(check bool) "inside" true (Unavail.active_at e 4.9);
  Alcotest.(check bool) "at end (exclusive)" false (Unavail.active_at e 5.0);
  Alcotest.(check (float 1e-9)) "end_h" 5.0 (Unavail.end_h e)

let test_servers_of_scopes () =
  let r = region () in
  let server_event = { Unavail.id = 0; scope = Unavail.Server 3; kind = Unavail.Unplanned_hw; start_h = 0.0; duration_h = 1.0 } in
  Alcotest.(check (list int)) "server scope" [ 3 ] (Unavail.servers_of r server_event);
  let rack_event = { server_event with Unavail.scope = Unavail.Rack 0 } in
  Alcotest.(check int) "rack scope covers the rack" 6 (List.length (Unavail.servers_of r rack_event));
  let msb_event = { server_event with Unavail.scope = Unavail.Msb 0 } in
  Alcotest.(check int) "msb scope covers the msb" 24 (List.length (Unavail.servers_of r msb_event));
  let bogus = { server_event with Unavail.scope = Unavail.Server 9999 } in
  Alcotest.(check (list int)) "unknown server empty" [] (Unavail.servers_of r bogus)

let test_planned_classification () =
  let planned = { Unavail.id = 0; scope = Unavail.Server 0; kind = Unavail.Planned_maintenance; start_h = 0.0; duration_h = 1.0 } in
  Alcotest.(check bool) "planned" true (Unavail.planned planned);
  Alcotest.(check bool) "correlated is unplanned" false
    (Unavail.planned { planned with Unavail.kind = Unavail.Correlated })

let test_generate_sorted_and_in_horizon () =
  let r = region () in
  let rng = Ras_stats.Rng.create 5 in
  let events = Failure_model.generate rng r Failure_model.default_params ~horizon_days:7.0 in
  Alcotest.(check bool) "non-empty" true (events <> []);
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "sorted by start" true (a.Unavail.start_h <= b.Unavail.start_h);
      check_sorted rest
    | _ -> ()
  in
  check_sorted events;
  List.iter
    (fun e -> Alcotest.(check bool) "starts within horizon" true (e.Unavail.start_h < 7.0 *. 24.0))
    events

let test_calm_params_no_unplanned () =
  let r = region () in
  let rng = Ras_stats.Rng.create 5 in
  let events = Failure_model.generate rng r Failure_model.calm_params ~horizon_days:7.0 in
  List.iter
    (fun e ->
      Alcotest.(check bool) "only planned" true (e.Unavail.kind = Unavail.Planned_maintenance))
    events

let test_maintenance_covers_all_msbs () =
  let r = region () in
  let rng = Ras_stats.Rng.create 5 in
  let events = Failure_model.generate rng r Failure_model.calm_params ~horizon_days:28.0 in
  (* every MSB must see at least one maintenance rack batch per cycle *)
  let touched = Array.make r.Region.num_msbs false in
  List.iter
    (fun e ->
      match e.Unavail.scope with
      | Unavail.Rack rack -> touched.(r.Region.rack_msb.(rack)) <- true
      | Unavail.Server _ | Unavail.Msb _ -> ())
    events;
  Array.iteri
    (fun m t -> Alcotest.(check bool) (Printf.sprintf "msb %d maintained" m) true t)
    touched

let test_maintenance_concurrency_limit () =
  let r = region () in
  let rng = Ras_stats.Rng.create 5 in
  let events = Failure_model.generate rng r Failure_model.calm_params ~horizon_days:14.0 in
  (* at any sampled hour, no MSB has more than ~25% of its racks (rounded up
     to one batch) under maintenance *)
  let racks_per_msb = r.Region.num_racks / r.Region.num_msbs in
  let batch = max 1 ((racks_per_msb + 3) / 4) in
  for hour = 0 to (14 * 24) - 1 do
    let t = float_of_int hour +. 0.5 in
    let down_racks = Array.make r.Region.num_msbs 0 in
    List.iter
      (fun e ->
        match e.Unavail.scope with
        | Unavail.Rack rack when Unavail.active_at e t ->
          down_racks.(r.Region.rack_msb.(rack)) <- down_racks.(r.Region.rack_msb.(rack)) + 1
        | Unavail.Rack _ | Unavail.Server _ | Unavail.Msb _ -> ())
      events;
    Array.iter
      (fun d -> Alcotest.(check bool) "concurrency <= one batch" true (d <= batch))
      down_racks
  done

let test_unavailable_fraction_bounds () =
  let r = region () in
  let rng = Ras_stats.Rng.create 6 in
  let events = Failure_model.generate rng r Failure_model.default_params ~horizon_days:7.0 in
  let kinds = [ Unavail.Planned_maintenance; Unavail.Unplanned_sw; Unavail.Unplanned_hw; Unavail.Correlated ] in
  for hour = 0 to 20 do
    let f = Failure_model.unavailable_fraction r events ~at:(float_of_int hour *. 8.0) ~kinds in
    Alcotest.(check bool) "fraction in [0,1]" true (f >= 0.0 && f <= 1.0)
  done

let test_series_shape () =
  let r = region () in
  let rng = Ras_stats.Rng.create 6 in
  let events = Failure_model.generate rng r Failure_model.default_params ~horizon_days:2.0 in
  let s = Failure_model.series r events ~horizon_days:2.0 ~window_h:1.0 ~kinds:[ Unavail.Planned_maintenance ] in
  Alcotest.(check int) "48 windows" 48 (Array.length s)

let test_overlapping_events_count_once () =
  let r = region () in
  let mk id scope = { Unavail.id; scope; kind = Unavail.Unplanned_sw; start_h = 0.0; duration_h = 5.0 } in
  let events = [ mk 0 (Unavail.Server 1); mk 1 (Unavail.Server 1); mk 2 (Unavail.Server 2) ] in
  let f = Failure_model.unavailable_fraction r events ~at:1.0 ~kinds:[ Unavail.Unplanned_sw ] in
  Alcotest.(check (float 1e-9)) "two distinct servers down" (2.0 /. 144.0) f

let suite =
  [
    Alcotest.test_case "event activity window" `Quick test_event_activity_window;
    Alcotest.test_case "servers_of scopes" `Quick test_servers_of_scopes;
    Alcotest.test_case "planned classification" `Quick test_planned_classification;
    Alcotest.test_case "generate sorted + horizon" `Quick test_generate_sorted_and_in_horizon;
    Alcotest.test_case "calm params only planned" `Quick test_calm_params_no_unplanned;
    Alcotest.test_case "maintenance covers all MSBs" `Quick test_maintenance_covers_all_msbs;
    Alcotest.test_case "maintenance concurrency" `Slow test_maintenance_concurrency_limit;
    Alcotest.test_case "unavailable fraction bounds" `Quick test_unavailable_fraction_bounds;
    Alcotest.test_case "series shape" `Quick test_series_shape;
    Alcotest.test_case "overlap counts once" `Quick test_overlapping_events_count_once;
  ]
