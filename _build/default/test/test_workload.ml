(* Tests for ras_workload: service catalog, RRU valuation, request
   generation, power and traffic models. *)

module Hw = Ras_topology.Hardware
module Region = Ras_topology.Region
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request
module Request_gen = Ras_workload.Request_gen
module Power = Ras_workload.Power
module Traffic = Ras_workload.Traffic

let web = Service.make ~id:1 ~name:"web" ~profile:Service.Web ()

let test_relative_value_table () =
  Alcotest.(check (float 1e-9)) "web gen1" 1.0 (Service.relative_value Service.Web 1);
  Alcotest.(check (float 1e-9)) "web gen2" 1.47 (Service.relative_value Service.Web 2);
  Alcotest.(check (float 1e-9)) "web gen3" 1.82 (Service.relative_value Service.Web 3);
  Alcotest.(check (float 1e-9)) "datastore flat" 1.0 (Service.relative_value Service.Data_store 3)

let test_relative_value_clamps () =
  Alcotest.(check (float 1e-9)) "gen 0 clamps to 1" 1.0 (Service.relative_value Service.Web 0);
  Alcotest.(check (float 1e-9)) "gen 9 clamps to 3" 1.82 (Service.relative_value Service.Web 9)

let test_rru_of_respects_acceptability () =
  let storage_hw = Option.get (Hw.find_by_code "C4-S1") in
  Alcotest.(check (float 1e-9)) "web rejects storage" 0.0 (Service.rru_of web storage_hw);
  let c3 = Option.get (Hw.find_by_code "C3") in
  Alcotest.(check bool) "web values compute" true (Service.rru_of web c3 > 0.0)

let test_rru_of_generation_scaling () =
  let c1 = Option.get (Hw.find_by_code "C1") in
  let c3 = Option.get (Hw.find_by_code "C3") in
  let v1 = Service.rru_of web c1 and v3 = Service.rru_of web c3 in
  (* C3 has more cores AND a generation bonus *)
  Alcotest.(check bool) "gen3 compute worth more to web" true (v3 > v1 *. 1.8)

let test_generation_pinning () =
  let pinned = Service.make ~id:2 ~name:"new-only" ~profile:Service.Web ~min_generation:2 () in
  let c1 = Option.get (Hw.find_by_code "C1") in
  Alcotest.(check (float 1e-9)) "gen1 unacceptable" 0.0 (Service.rru_of pinned c1);
  let legacy = Service.make ~id:3 ~name:"old-only" ~profile:Service.Web ~max_generation:1 () in
  let c3 = Option.get (Hw.find_by_code "C3") in
  Alcotest.(check (float 1e-9)) "gen3 unacceptable to legacy" 0.0 (Service.rru_of legacy c3)

let test_default_catalog_shape () =
  Alcotest.(check int) "thirty services" 30 (List.length Service.default_catalog);
  let ids = List.map (fun s -> s.Service.id) Service.default_catalog in
  Alcotest.(check int) "ids unique" 30 (List.length (List.sort_uniq compare ids))

let test_capacity_request_validation () =
  Alcotest.check_raises "zero rru" (Invalid_argument "Capacity_request.make: rru must be positive")
    (fun () -> ignore (Capacity_request.make ~id:1 ~service:web ~rru:0.0 ()))

let test_acceptable_hw_types () =
  let req = Capacity_request.make ~id:1 ~service:web ~rru:10.0 () in
  let n = Capacity_request.acceptable_hw_types req in
  Alcotest.(check bool) "web accepts several compute types" true (n >= 4 && n <= 8)

let test_paper_distribution_ranges () =
  let rng = Ras_stats.Rng.create 4 in
  let samples = Request_gen.paper_distribution rng ~n:2000 in
  List.iter
    (fun (s : Request_gen.sized_request) ->
      Alcotest.(check bool) "units in [1, 30000]" true
        (s.Request_gen.units >= 1.0 && s.Request_gen.units <= 30000.0);
      Alcotest.(check bool) "hw types in [1, 12]" true
        (s.Request_gen.hw_types >= 1 && s.Request_gen.hw_types <= 12))
    samples;
  (* bimodal flexibility: 1 and 8 are the two most common *)
  let counts = Array.make 12 0 in
  List.iter
    (fun (s : Request_gen.sized_request) ->
      counts.(s.Request_gen.hw_types - 1) <- counts.(s.Request_gen.hw_types - 1) + 1)
    samples;
  let sorted = Array.to_list (Array.mapi (fun i c -> (c, i + 1)) counts) in
  let top2 = List.sort (fun a b -> compare b a) sorted |> fun l -> List.filteri (fun i _ -> i < 2) l in
  let top_types = List.map snd top2 |> List.sort compare in
  Alcotest.(check (list int)) "modes at 1 and 8" [ 1; 8 ] top_types

let small_region () = Ras_topology.Generator.generate Ras_topology.Generator.small_params

let test_scenario_feasible_sizing () =
  let region = small_region () in
  let rng = Ras_stats.Rng.create 7 in
  let requests =
    Request_gen.scenario rng ~region ~services:Service.default_catalog ~target_utilization:0.5
  in
  Alcotest.(check bool) "some requests" true (List.length requests > 5);
  (* total demand per service must not exceed what the region could supply
     exclusively to that service *)
  List.iter
    (fun (r : Capacity_request.t) ->
      let supply =
        Array.fold_left
          (fun acc (s : Region.server) -> acc +. Service.rru_of r.Capacity_request.service s.Region.hw)
          0.0 region.Region.servers
      in
      Alcotest.(check bool) "demand below exclusive supply" true (r.Capacity_request.rru <= supply))
    requests

let test_scenario_small_requests_skip_buffer () =
  let region = small_region () in
  let rng = Ras_stats.Rng.create 7 in
  let requests =
    Request_gen.scenario rng ~region ~services:Service.default_catalog ~target_utilization:0.5
  in
  List.iter
    (fun (r : Capacity_request.t) ->
      if r.Capacity_request.rru < 10.0 then
        Alcotest.(check bool) "small request has no embedded buffer" false
          r.Capacity_request.embedded_buffer)
    requests

let test_arrivals_sorted_diurnal () =
  let rng = Ras_stats.Rng.create 9 in
  let arrivals = Request_gen.arrivals_over rng ~days:14 ~mean_per_workday:10.0 in
  let sorted = List.sort compare arrivals in
  Alcotest.(check bool) "sorted" true (arrivals = sorted);
  List.iter
    (fun t -> Alcotest.(check bool) "within horizon" true (t >= 0.0 && t < 14.0 *. 24.0))
    arrivals;
  (* weekday hours cluster in working hours *)
  let weekday_count = ref 0 and weekend_count = ref 0 in
  List.iter
    (fun t ->
      let day = int_of_float (t /. 24.0) mod 7 in
      if day < 5 then incr weekday_count else incr weekend_count)
    arrivals;
  Alcotest.(check bool) "weekdays dominate" true (!weekday_count > !weekend_count * 3)

let test_power_draw_ordering () =
  let hw = Hw.catalog.(0) in
  let idle = Power.draw_watts hw Power.Idle_free in
  let assigned = Power.draw_watts hw Power.Assigned_idle in
  let busy = Power.draw_watts hw Power.Assigned_busy in
  Alcotest.(check bool) "idle < assigned < busy" true (idle < assigned && assigned < busy);
  Alcotest.(check bool) "busy below nameplate" true (busy <= hw.Hw.power_watts)

let test_power_variance_uniform_zero () =
  Alcotest.(check (float 1e-12)) "uniform variance" 0.0
    (Power.normalized_variance [| 5.0; 5.0; 5.0 |]);
  Alcotest.(check bool) "imbalance positive" true
    (Power.normalized_variance [| 1.0; 9.0 |] > 0.0)

let test_power_headroom () =
  let h = Power.headroom ~capacity_watts:[| 100.0; 100.0 |] ~draw_watts:[| 50.0; 90.0 |] in
  Alcotest.(check (float 1e-9)) "min headroom" 0.1 h

let test_msb_power_totals () =
  let region = small_region () in
  let draw = Power.msb_power region ~usage_of:(fun _ -> Power.Assigned_busy) in
  Alcotest.(check int) "per-msb entries" region.Region.num_msbs (Array.length draw);
  Array.iter (fun w -> Alcotest.(check bool) "positive draw" true (w > 0.0)) draw

let test_traffic_fractions () =
  Alcotest.(check (float 1e-9)) "all local" 0.0
    (Traffic.cross_dc_fraction ~data_dc:0 ~capacity_per_dc:[| 10.0; 0.0 |]);
  Alcotest.(check (float 1e-9)) "half remote" 0.5
    (Traffic.cross_dc_fraction ~data_dc:0 ~capacity_per_dc:[| 5.0; 5.0 |]);
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Traffic.cross_dc_fraction ~data_dc:0 ~capacity_per_dc:[| 0.0; 0.0 |]))

let test_traffic_working_fraction () =
  (* 10 requested, 10 local, 5 extra buffer elsewhere: working set is local *)
  Alcotest.(check (float 1e-9)) "buffer not counted" 0.0
    (Traffic.cross_dc_working_fraction ~data_dc:0 ~capacity_per_dc:[| 10.0; 5.0 |] ~requested:10.0);
  Alcotest.(check (float 1e-9)) "half the working set remote" 0.5
    (Traffic.cross_dc_working_fraction ~data_dc:0 ~capacity_per_dc:[| 5.0; 5.0 |] ~requested:10.0)

let suite =
  [
    Alcotest.test_case "relative value table" `Quick test_relative_value_table;
    Alcotest.test_case "relative value clamps" `Quick test_relative_value_clamps;
    Alcotest.test_case "rru_of acceptability" `Quick test_rru_of_respects_acceptability;
    Alcotest.test_case "rru_of generation scaling" `Quick test_rru_of_generation_scaling;
    Alcotest.test_case "generation pinning" `Quick test_generation_pinning;
    Alcotest.test_case "default catalog shape" `Quick test_default_catalog_shape;
    Alcotest.test_case "capacity request validation" `Quick test_capacity_request_validation;
    Alcotest.test_case "acceptable hw types" `Quick test_acceptable_hw_types;
    Alcotest.test_case "paper distribution ranges" `Quick test_paper_distribution_ranges;
    Alcotest.test_case "scenario feasible sizing" `Quick test_scenario_feasible_sizing;
    Alcotest.test_case "small requests skip buffer" `Quick test_scenario_small_requests_skip_buffer;
    Alcotest.test_case "arrivals sorted diurnal" `Quick test_arrivals_sorted_diurnal;
    Alcotest.test_case "power draw ordering" `Quick test_power_draw_ordering;
    Alcotest.test_case "power variance" `Quick test_power_variance_uniform_zero;
    Alcotest.test_case "power headroom" `Quick test_power_headroom;
    Alcotest.test_case "msb power totals" `Quick test_msb_power_totals;
    Alcotest.test_case "traffic fractions" `Quick test_traffic_fractions;
    Alcotest.test_case "traffic working fraction" `Quick test_traffic_working_fraction;
  ]
