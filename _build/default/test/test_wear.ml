(* Tests for the §5.2 IO/wear-aware placement extension. *)

open Ras
module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Generator = Ras_topology.Generator
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request
module Wear = Ras_workload.Wear

let region () = Generator.generate Generator.small_params

let test_wear_generation_bounds () =
  let r = region () in
  let wear = Wear.generate (Ras_stats.Rng.create 3) r in
  Array.iter
    (fun (s : Region.server) ->
      let w = Wear.fraction wear s.Region.id in
      Alcotest.(check bool) "wear in [0,1]" true (w >= 0.0 && w <= 1.0);
      if not (Wear.has_flash s) then
        Alcotest.(check (float 1e-9)) "no flash, no wear" 0.0 w)
    r.Region.servers

let test_wear_buckets () =
  let wear = Wear.of_array [| 0.0; 0.39; 0.4; 0.74; 0.75; 1.0 |] in
  Alcotest.(check (list int)) "bucket thresholds" [ 0; 0; 1; 1; 2; 2 ]
    (List.init 6 (fun i -> Wear.bucket wear i));
  Alcotest.(check int) "out of range is fresh" 0 (Wear.bucket wear 99);
  Alcotest.(check int) "three buckets" 3 Wear.buckets

let test_wear_age_skew () =
  let r = region () in
  let wear = Wear.generate (Ras_stats.Rng.create 3) r in
  (* average flash wear in the oldest MSB exceeds the newest *)
  let mean_for msb =
    let total = ref 0.0 and n = ref 0 in
    Array.iter
      (fun (s : Region.server) ->
        if s.Region.loc.Region.msb = msb && Wear.has_flash s then begin
          total := !total +. Wear.fraction wear s.Region.id;
          incr n
        end)
      r.Region.servers;
    if !n = 0 then nan else !total /. float_of_int !n
  in
  let old_w = mean_for 0 and new_w = mean_for (r.Region.num_msbs - 1) in
  if (not (Float.is_nan old_w)) && not (Float.is_nan new_w) then
    Alcotest.(check bool) "older MSBs carry more wear" true (old_w >= new_w)

let test_attr_splits_classes () =
  let r = region () in
  let broker = Broker.create r in
  let plain = Snapshot.take broker [] in
  let attributed = Snapshot.take ~attr_of:(fun id -> id mod 2) broker [] in
  let plain_classes = Symmetry.num_classes (Symmetry.build plain) in
  let attr_classes = Symmetry.num_classes (Symmetry.build attributed) in
  Alcotest.(check bool) "attribute breaks symmetry" true (attr_classes > plain_classes)

let test_wear_objective_prefers_fresh_flash () =
  let r = region () in
  let broker = Broker.create r in
  let wear = Wear.generate (Ras_stats.Rng.create 7) r in
  let cache = Service.make ~id:1 ~name:"io-heavy" ~profile:Service.Cache () in
  let run ~io =
    (* fresh broker each run *)
    let broker = Broker.create r in
    let req =
      Capacity_request.make ~id:1 ~service:cache ~rru:6.0 ~embedded_buffer:false
        ~msb_spread_limit:0.5 ~io_intensity:io ()
    in
    let reservations = [ Reservation.of_request req ] in
    let snapshot = Snapshot.take ~attr_of:(Wear.bucket wear) broker reservations in
    let params = { Async_solver.default_params with Async_solver.node_limit = 0 } in
    let stats = Async_solver.solve ~params snapshot in
    let mover = Online_mover.create broker in
    Online_mover.set_reservations mover reservations;
    ignore (Online_mover.apply_plan mover stats.Async_solver.plan);
    let total = ref 0.0 and n = ref 0 in
    Broker.iter broker ~f:(fun rec_ ->
        if rec_.Broker.current = Broker.Reservation 1 && Wear.has_flash rec_.Broker.server
        then begin
          total := !total +. Wear.fraction wear rec_.Broker.server.Region.id;
          incr n
        end);
    if !n = 0 then nan else !total /. float_of_int !n
  in
  ignore broker;
  let aware = run ~io:1.0 and blind = run ~io:0.0 in
  if (not (Float.is_nan aware)) && not (Float.is_nan blind) then
    Alcotest.(check bool)
      (Printf.sprintf "aware %.2f <= blind %.2f" aware blind)
      true (aware <= blind +. 1e-9)

let suite =
  [
    Alcotest.test_case "wear generation bounds" `Quick test_wear_generation_bounds;
    Alcotest.test_case "wear buckets" `Quick test_wear_buckets;
    Alcotest.test_case "wear age skew" `Quick test_wear_age_skew;
    Alcotest.test_case "attr splits classes" `Quick test_attr_splits_classes;
    Alcotest.test_case "wear objective prefers fresh flash" `Slow
      test_wear_objective_prefers_fresh_flash;
  ]
