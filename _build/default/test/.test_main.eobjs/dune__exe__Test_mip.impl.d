test/test_mip.ml: Alcotest Array Branch_bound Float Lin_expr List Lp_format Lp_parse Model Mps_format Printf QCheck QCheck_alcotest Ras_mip Ras_stats Simplex String
