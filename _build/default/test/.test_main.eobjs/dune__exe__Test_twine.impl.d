test/test_twine.ml: Alcotest Hashtbl List Ras_broker Ras_failures Ras_topology Ras_twine Ras_workload
