test/test_broker.ml: Alcotest List Ras_broker Ras_failures Ras_topology
