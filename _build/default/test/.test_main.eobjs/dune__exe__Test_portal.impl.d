test/test_portal.ml: Alcotest List Portal Ras Ras_broker Ras_topology Ras_workload Snapshot String
