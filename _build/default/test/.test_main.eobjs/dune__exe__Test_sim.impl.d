test/test_sim.ml: Alcotest List Ras_sim Ras_stats
