test/test_failures.ml: Alcotest Array List Printf Ras_failures Ras_stats Ras_topology
