test/test_topology.ml: Alcotest Array Hashtbl List QCheck QCheck_alcotest Ras_topology
