test/test_presolve.ml: Alcotest Array Branch_bound Float Lin_expr List Model Presolve QCheck QCheck_alcotest Ras_mip Ras_stats Simplex
