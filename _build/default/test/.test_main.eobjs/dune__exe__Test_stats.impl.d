test/test_stats.ml: Alcotest Array Dist Float Gen List QCheck QCheck_alcotest Ras_stats Rng Summary Timeseries
