test/test_wear.ml: Alcotest Array Async_solver Float List Online_mover Printf Ras Ras_broker Ras_stats Ras_topology Ras_workload Reservation Snapshot Symmetry
