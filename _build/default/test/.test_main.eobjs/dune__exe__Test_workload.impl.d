test/test_workload.ml: Alcotest Array Float List Option Ras_stats Ras_topology Ras_workload
