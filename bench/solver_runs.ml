(* Shared driver for the solver-performance figures (7, 8, 9): a sequence of
   region solves under production-like conditions — each solve sees a
   slightly different world (random failures, capacity resizes) so the
   distribution of allocation times and quality gaps is meaningful. *)

module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Unavail = Ras_failures.Unavail
module Capacity_request = Ras_workload.Capacity_request

type run = { stats : Ras.Async_solver.stats; solve_index : int }

(* Aggregate B&B kernel counters over a run sequence: total nodes, LP
   pivots and warm-started nodes (see Async_solver solver_* stats). *)
let solver_totals runs =
  List.fold_left
    (fun (n, it, w) r ->
      let s = r.stats in
      ( n + s.Ras.Async_solver.solver_nodes,
        it + s.Ras.Async_solver.solver_lp_iterations,
        w + s.Ras.Async_solver.solver_warm_starts ))
    (0, 0, 0) runs

let with_rack_limits requests =
  List.map
    (fun (r : Capacity_request.t) ->
      if r.Capacity_request.rru >= 5.0 then
        { r with Capacity_request.rack_spread_limit = Some 0.06 }
      else r)
    requests

let collect ?(preset = Scenarios.Small) ?(solver = Scenarios.interactive_solver) ~solves () =
  let region = Scenarios.region_of preset in
  let broker = Broker.create region in
  let rng = Ras_stats.Rng.create 2024 in
  let requests = with_rack_limits (Scenarios.requests_of preset region) in
  let reservations =
    List.map Ras.Reservation.of_request requests
    @ Ras.Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  let mover = Ras.Online_mover.create broker in
  Ras.Online_mover.set_reservations mover reservations;
  let runs = ref [] in
  for i = 0 to solves - 1 do
    (* perturb the world: ~1% of servers fail for the duration of the solve,
       and some servers flip their in-use bit (container churn) *)
    let n = Broker.num_servers broker in
    let down = List.init (Stdlib.max 1 (n / 100)) (fun _ -> Ras_stats.Rng.int rng n) in
    List.iter (fun id -> Broker.mark_down broker id Unavail.Unplanned_sw) down;
    Broker.iter broker ~f:(fun r ->
        match r.Broker.current with
        | Broker.Reservation _ ->
          if Ras_stats.Rng.float rng 1.0 < 0.7 then
            Broker.set_in_use broker r.Broker.server.Region.id true
        | Broker.Free | Broker.Shared_buffer | Broker.Elastic _ -> ());
    let snapshot = Ras.Snapshot.take broker reservations in
    let stats = Ras.Async_solver.solve ~params:solver snapshot in
    ignore (Ras.Online_mover.apply_plan mover stats.Ras.Async_solver.plan);
    List.iter (fun id -> Broker.mark_up broker id) down;
    runs := { stats; solve_index = i } :: !runs
  done;
  List.rev !runs
