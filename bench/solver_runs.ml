(* Shared driver for the solver-performance figures (7, 8, 9): a sequence of
   region solves under production-like conditions — each solve sees a
   slightly different world (random failures, capacity resizes) so the
   distribution of allocation times and quality gaps is meaningful. *)

module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Unavail = Ras_failures.Unavail
module Capacity_request = Ras_workload.Capacity_request

type run = { stats : Ras.Async_solver.stats; solve_index : int }

(* Aggregate B&B kernel counters over a run sequence: total nodes, LP
   pivots and warm-started nodes (see Async_solver solver_* stats). *)
let solver_totals runs =
  List.fold_left
    (fun (n, it, w) r ->
      let s = r.stats in
      ( n + s.Ras.Async_solver.solver_nodes,
        it + s.Ras.Async_solver.solver_lp_iterations,
        w + s.Ras.Async_solver.solver_warm_starts ))
    (0, 0, 0) runs

(* Per-solve wall-time distribution — the aggregate counters above hide the
   spread, which is the quantity Fig. 7 (and the continuous-loop kernel's
   p50/p99 rows) actually report. *)
let duration_summary runs =
  let s = Ras_stats.Summary.create () in
  List.iter
    (fun r -> Ras_stats.Summary.add s r.stats.Ras.Async_solver.duration_s)
    runs;
  s

let with_rack_limits requests =
  List.map
    (fun (r : Capacity_request.t) ->
      if r.Capacity_request.rru >= 5.0 then
        { r with Capacity_request.rack_spread_limit = Some 0.06 }
      else r)
    requests

let collect ?(preset = Scenarios.Small) ?(solver = Scenarios.interactive_solver)
    ?(churn = 0.01) ?(flip_prob = 0.7) ?incremental ~solves () =
  let region = Scenarios.region_of preset in
  let broker = Broker.create region in
  let rng = Ras_stats.Rng.create 2024 in
  let requests = with_rack_limits (Scenarios.requests_of preset region) in
  let reservations =
    List.map Ras.Reservation.of_request requests
    @ Ras.Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  let mover = Ras.Online_mover.create broker in
  Ras.Online_mover.set_reservations mover reservations;
  let runs = ref [] in
  for i = 0 to solves - 1 do
    (* perturb the world: a [churn] fraction of servers fail for the
       duration of the solve, and some servers flip their in-use bit
       (container churn) *)
    let n = Broker.num_servers broker in
    let down =
      List.init
        (Stdlib.max 1 (int_of_float (float_of_int n *. churn)))
        (fun _ -> Ras_stats.Rng.int rng n)
    in
    List.iter (fun id -> Broker.mark_down broker id Unavail.Unplanned_sw) down;
    Broker.iter broker ~f:(fun r ->
        match r.Broker.current with
        | Broker.Reservation _ ->
          if Ras_stats.Rng.float rng 1.0 < flip_prob then
            Broker.set_in_use broker r.Broker.server.Region.id true
        | Broker.Free | Broker.Shared_buffer | Broker.Elastic _ -> ());
    let snapshot = Ras.Snapshot.take broker reservations in
    (* [incremental] is the continuous loop's persistent cross-round solver
       state: the same object is threaded through every round, so round i's
       phase 1 warm-starts from round i-1's basis and incumbent *)
    let stats = Ras.Async_solver.solve ~params:solver ?state:incremental snapshot in
    ignore (Ras.Online_mover.apply_plan mover stats.Ras.Async_solver.plan);
    List.iter (fun id -> Broker.mark_up broker id) down;
    runs := { stats; solve_index = i } :: !runs
  done;
  List.rev !runs
