(* Ablation benches for the design choices DESIGN.md calls out: symmetry
   grouping, two-phase solving, the shared random-failure buffer, and the
   in-use/unused movement-cost ratio. *)

module Broker = Ras_broker.Broker
module Failure_model = Ras_failures.Failure_model

let scenario preset =
  let region = Scenarios.region_of preset in
  let broker = Broker.create region in
  let requests = Solver_runs.with_rack_limits (Scenarios.requests_of preset region) in
  let reservations =
    List.map Ras.Reservation.of_request requests
    @ Ras.Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  (region, broker, reservations)

let run_symmetry () =
  Report.heading "Ablation: symmetry grouping"
    ~paper:"§3.5.2: grouping identical servers is what makes region solves fit the SLO"
    ~expect:"grouped variables orders of magnitude below per-server variables";
  List.iter
    (fun preset ->
      let _, broker, reservations = scenario preset in
      let snapshot = Ras.Snapshot.take broker reservations in
      let t0 = Unix.gettimeofday () in
      let msb_level = Ras.Symmetry.build snapshot in
      let f = Ras.Formulation.build msb_level reservations in
      let std = Ras_mip.Model.compile f.Ras.Formulation.model in
      let t_grouped = Unix.gettimeofday () -. t0 in
      let t0 = Unix.gettimeofday () in
      let rack_level = Ras.Symmetry.build ~rack_level:true snapshot in
      let f_rack = Ras.Formulation.build ~rack_level:true rack_level reservations in
      let std_rack = Ras_mip.Model.compile f_rack.Ras.Formulation.model in
      let t_rack = Unix.gettimeofday () -. t0 in
      Report.row
        "%-8s per-server vars %6d | MSB-grouped %5d (build %.2fs, %s) | rack-grouped %5d (build %.2fs, %s)\n"
        (Scenarios.label_of preset)
        (Ras.Symmetry.raw_variable_count msb_level ~reservations)
        (Ras.Symmetry.grouped_variable_count msb_level ~reservations)
        t_grouped
        (Format.asprintf "%a" Ras_mip.Model.pp_stats std)
        (Ras.Symmetry.grouped_variable_count rack_level ~reservations)
        t_rack
        (Format.asprintf "%a" Ras_mip.Model.pp_stats std_rack))
    [ Scenarios.Small; Scenarios.Medium ]

let run_phasing () =
  Report.heading "Ablation: two-phase vs single-phase solving"
    ~paper:"§3.5.2: rack goals for all reservations at once blow up the problem"
    ~expect:"single-phase (rack goals everywhere) costs more setup+solve time than two phases";
  let _, broker, reservations = scenario Scenarios.Small in
  let snapshot = Ras.Snapshot.take broker reservations in
  let t0 = Unix.gettimeofday () in
  let two_phase =
    Ras.Async_solver.solve
      ~params:{ Scenarios.interactive_solver with Ras.Async_solver.node_limit = 60 }
      snapshot
  in
  let t_two = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let single =
    Ras.Phases.run ~rack_level:true ~mip_time_limit:8.0 ~mip_node_limit:60 snapshot
      reservations
  in
  let t_single = Unix.gettimeofday () -. t0 in
  Report.row "two-phase:    %.2fs total; phase1 %d vars + phase2 %s vars\n" t_two
    two_phase.Ras.Async_solver.phase1.Ras.Phases.grouped_vars
    (match two_phase.Ras.Async_solver.phase2 with
    | Some p -> string_of_int p.Ras.Phases.grouped_vars
    | None -> "0 (skipped)");
  Report.row "single-phase: %.2fs total; %d vars in one model\n" t_single
    single.Ras.Phases.grouped_vars

let run_buffers () =
  Report.heading "Ablation: shared random-failure buffer"
    ~paper:"§3.3.1: a 2% shared buffer serves all reservations' random failures"
    ~expect:"with the buffer, failures get replacements; without it, replacements fail";
  let trial fraction =
    let region = Scenarios.region_of Scenarios.Small in
    let broker = Broker.create region in
    let requests = Scenarios.requests_of Scenarios.Small region in
    let config =
      {
        Ras.System.default_config with
        Ras.System.solver = Scenarios.simulation_solver;
        shared_buffer_fraction = fraction;
        job_fill_fraction = 0.7;
      }
    in
    let sys = Ras.System.create ~config broker in
    List.iter (Ras.System.add_request sys) requests;
    let failures =
      Failure_model.generate (Ras_stats.Rng.create 17) region
        { Failure_model.default_params with Failure_model.sw_events_per_server_day = 0.08 }
        ~horizon_days:2.0
    in
    Ras.System.install_failures sys failures;
    Ras.System.start sys;
    Ras.System.run sys ~until_h:48.0;
    ( Ras.Online_mover.replacements_done (Ras.System.mover sys),
      Ras.Online_mover.replacements_failed (Ras.System.mover sys) )
  in
  let ok2, fail2 = trial 0.02 in
  let ok0, fail0 = trial 0.0 in
  Report.row "with 2%% shared buffer:    %3d replacements ok, %3d failed\n" ok2 fail2;
  Report.row "without shared buffer:    %3d replacements ok, %3d failed\n" ok0 fail0

let run_move_cost () =
  Report.heading "Ablation: in-use movement-cost ratio"
    ~paper:"§4.6: in-use moves cost 10x, keeping preemption rare"
    ~expect:"ratio 1x produces more in-use moves than ratio 10x";
  let trial ratio =
    let solver =
      {
        Scenarios.interactive_solver with
        Ras.Async_solver.node_limit = 60;
        formulation =
          {
            Ras.Formulation.default_params with
            Ras.Formulation.move_cost_in_use =
              ratio *. Ras.Formulation.default_params.Ras.Formulation.move_cost_unused;
          };
      }
    in
    let runs = Solver_runs.collect ~solver ~solves:(Scenarios.scaled 8) () in
    List.fold_left
      (fun (iu, uu) (r : Solver_runs.run) ->
        ( iu + r.Solver_runs.stats.Ras.Async_solver.moves_in_use,
          uu + r.Solver_runs.stats.Ras.Async_solver.moves_unused ))
      (0, 0) runs
  in
  let iu10, uu10 = trial 10.0 in
  let iu1, uu1 = trial 1.0 in
  Report.row "ratio 10x: %4d in-use moves, %4d unused\n" iu10 uu10;
  Report.row "ratio  1x: %4d in-use moves, %4d unused\n" iu1 uu1

let run_quorum () =
  Report.heading "Ablation: storage quorum spread vs embedded buffer (paragraph 3.3.2)"
    ~paper:"storage services use all capacity for replicas and survive MSB loss via spread, not idle buffers"
    ~expect:"quorum reservation binds ~1.0x its request and still survives; buffered one binds ~1.2x";
  let region = Scenarios.region_of Scenarios.Small in
  let ds =
    Ras_workload.Service.make ~id:1 ~name:"store" ~profile:Ras_workload.Service.Data_store ()
  in
  let trial ~use_quorum =
    let broker = Broker.create region in
    let req =
      if use_quorum then
        Ras_workload.Capacity_request.make ~id:1 ~service:ds ~rru:12.0 ~embedded_buffer:false
          ~hard_msb_cap:(Ras_workload.Capacity_request.quorum_cap ~replicas:3 ~quorum:2)
          ~msb_spread_limit:0.5 ()
      else
        Ras_workload.Capacity_request.make ~id:1 ~service:ds ~rru:12.0 ~msb_spread_limit:0.5 ()
    in
    let reservations = [ Ras.Reservation.of_request req ] in
    let mover = Ras.Online_mover.create broker in
    Ras.Online_mover.set_reservations mover reservations;
    let stats =
      Ras.Async_solver.solve ~params:Scenarios.simulation_solver
        (Ras.Snapshot.take broker reservations)
    in
    ignore (Ras.Online_mover.apply_plan mover stats.Ras.Async_solver.plan);
    let snap = Ras.Snapshot.take broker reservations in
    let res = List.hd reservations in
    let per_msb = Ras.Snapshot.rru_by_msb snap res in
    let total = Array.fold_left ( +. ) 0.0 per_msb in
    let worst = Array.fold_left Float.max 0.0 per_msb in
    (total, total -. worst)
  in
  let t_q, surv_q = trial ~use_quorum:true in
  let t_b, surv_b = trial ~use_quorum:false in
  Report.row "quorum spread:    %.1f RRU bound (%.2fx request), %.1f surviving an MSB loss\n"
    t_q (t_q /. 12.0) surv_q;
  Report.row "embedded buffer:  %.1f RRU bound (%.2fx request), %.1f surviving an MSB loss\n"
    t_b (t_b /. 12.0) surv_b

let run_wear () =
  Report.heading "Ablation: IO/wear-aware placement (paragraph 5.2, future work)"
    ~paper:"planned goal: SSD burnout reduction via IO-aware assignment; new attributes break symmetry"
    ~expect:"IO-heavy service gets fresher flash when the goal is on; variable count grows";
  let region = Scenarios.region_of Scenarios.Medium in
  let wear = Ras_workload.Wear.generate (Ras_stats.Rng.create 31) region in
  let flashy =
    Ras_workload.Service.make ~id:1 ~name:"io-heavy" ~profile:Ras_workload.Service.Cache ()
  in
  let trial ~aware =
    let broker = Broker.create region in
    let req =
      Ras_workload.Capacity_request.make ~id:1 ~service:flashy ~rru:12.0
        ~embedded_buffer:false ~msb_spread_limit:0.5
        ~io_intensity:(if aware then 1.0 else 0.0)
        ()
    in
    let reservations = [ Ras.Reservation.of_request req ] in
    let attr_of = if aware then Ras_workload.Wear.bucket wear else fun _ -> 0 in
    let snapshot = Ras.Snapshot.take ~attr_of broker reservations in
    let stats = Ras.Async_solver.solve ~params:Scenarios.simulation_solver snapshot in
    let mover = Ras.Online_mover.create broker in
    Ras.Online_mover.set_reservations mover reservations;
    ignore (Ras.Online_mover.apply_plan mover stats.Ras.Async_solver.plan);
    (* mean wear of the flash servers the reservation received *)
    let total = ref 0.0 and n = ref 0 in
    Broker.iter broker ~f:(fun r ->
        if
          r.Ras_broker.Broker.current = Ras_broker.Broker.Reservation 1
          && Ras_workload.Wear.has_flash r.Ras_broker.Broker.server
        then begin
          total :=
            !total
            +. Ras_workload.Wear.fraction wear
                 r.Ras_broker.Broker.server.Ras_topology.Region.id;
          incr n
        end);
    let mean = if !n = 0 then nan else !total /. float_of_int !n in
    (mean, stats.Ras.Async_solver.phase1.Ras.Phases.grouped_vars)
  in
  let wear_on, vars_on = trial ~aware:true in
  let wear_off, vars_off = trial ~aware:false in
  Report.row "wear-aware ON:  mean flash wear %.2f over %d grouped vars\n" wear_on vars_on;
  Report.row "wear-aware OFF: mean flash wear %.2f over %d grouped vars\n" wear_off vars_off;
  Report.row "symmetry cost of the new attribute: %d -> %d variables (%.1fx)\n" vars_off vars_on
    (float_of_int vars_on /. float_of_int (Stdlib.max 1 vars_off))

let run () =
  run_symmetry ();
  run_phasing ();
  run_buffers ();
  run_move_cost ();
  run_quorum ();
  run_wear ()
