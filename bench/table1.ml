(* Table 1: the MIP notation.  There is no data to reproduce; instead we
   demonstrate that the implemented model instantiates every symbol of the
   table by building the formulation for a small region and printing the
   constructed rows grouped by the expression they implement. *)

let run () =
  Report.heading "Table 1: MIP model notation"
    ~paper:"notation table for the §3.5.3 model"
    ~expect:"every symbol instantiated by Ras.Formulation (counts below)";
  let region = Scenarios.region_of Scenarios.Small in
  let broker = Ras_broker.Broker.create region in
  let requests = Scenarios.requests_of Scenarios.Small region in
  let reservations =
    List.map Ras.Reservation.of_request requests
    @ Ras.Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  let snapshot = Ras.Snapshot.take broker reservations in
  let symmetry = Ras.Symmetry.build snapshot in
  let f = Ras.Formulation.build symmetry reservations in
  let std = Ras_mip.Model.compile f.Ras.Formulation.model in
  Report.row "S  (servers):                 %d usable\n"
    (List.length (Ras.Snapshot.usable_servers snapshot));
  Report.row "R  (reservations):            %d (%d guaranteed + %d shared-buffer)\n"
    (List.length reservations)
    (List.length requests)
    (List.length reservations - List.length requests);
  Report.row "x_{s,r} -> n_{c,r} (grouped): %d assignment variables over %d classes\n"
    (Ras.Formulation.num_assignment_vars f)
    (Ras.Symmetry.num_classes symmetry);
  Report.row "M_s  (movement costs):        unused %.1f / in-use %.1f\n"
    f.Ras.Formulation.params.Ras.Formulation.move_cost_unused
    f.Ras.Formulation.params.Ras.Formulation.move_cost_in_use;
  Report.row "beta (spread penalty):        %.1f   tau (buffer cost): %.1f\n"
    f.Ras.Formulation.params.Ras.Formulation.spread_penalty
    f.Ras.Formulation.params.Ras.Formulation.buffer_cost;
  Report.row "alpha_F/alpha_K, theta:       per-reservation (0.10 default spread, 0.10 theta)\n";
  Report.row "V_{s,r}, C_r:                 service RRU valuations / requested RRUs\n";
  Report.row "Psi_F (MSB partitions):       %d MSBs;  Psi_D: %d DCs;  Psi_K: %d racks\n"
    region.Ras_topology.Region.num_msbs region.Ras_topology.Region.num_dcs
    region.Ras_topology.Region.num_racks;
  Report.row "z_r  (expr 4/6 auxiliaries):  %d;  capacity slacks (softening): %d\n"
    (List.length f.Ras.Formulation.buffer_var)
    (List.length f.Ras.Formulation.capacity_slack);
  Report.row "compiled model:               %s\n"
    (Format.asprintf "%a" Ras_mip.Model.pp_stats std);
  (* POP decomposition view of the same model: reservations dealt across 4
     partitions, coupled capacity rows split with scaled right-hand sides *)
  let part = Ras.Formulation.partition_vars f ~parts:4 in
  let subs = Ras_mip.Decompose.split ~num_parts:4 ~var_part:(fun v -> part.(v)) std in
  Report.row "POP split (k=4):              %s\n"
    (String.concat " + "
       (Array.to_list
          (Array.map
             (fun ((s : Ras_mip.Model.std), _) ->
               Printf.sprintf "%dv/%dr" s.Ras_mip.Model.nvars s.Ras_mip.Model.nrows)
             subs)));
  (* prove the LP rendering works: first lines of the model *)
  let lp = Ras_mip.Lp_format.to_string std in
  let first_lines = String.split_on_char '\n' lp in
  Report.row "LP-format rendering (first 3 lines of %d, truncated):\n" (List.length first_lines);
  List.iteri
    (fun i l ->
      if i < 3 then
        if String.length l > 100 then Report.row "  %s...\n" (String.sub l 0 100)
        else Report.row "  %s\n" l)
    first_lines
