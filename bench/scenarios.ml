(* Shared scenario presets for the figure benchmarks.  Region sizes are
   scaled down from the paper's production regions; the solver-facing shape
   (MSB counts, hardware mixture skew, reservation counts) is preserved. *)

module Generator = Ras_topology.Generator
module Region = Ras_topology.Region
module Service = Ras_workload.Service
module Request_gen = Ras_workload.Request_gen
module Rng = Ras_stats.Rng

type preset = Small | Medium | Wide | Region_scale

let params_of = function
  | Small -> Generator.small_params
  | Region_scale ->
    (* the north-star preset: 36 MSBs, ~10^6 servers (§3.3.1 scale).
       Symmetry aggregation keeps the compiled model in the same variable
       regime as [Wide] despite ~600x more raw servers. *)
    Generator.region_scale_params
  | Medium ->
    {
      Generator.name = "region-medium";
      num_dcs = 3;
      msbs_per_dc = 6;
      racks_per_msb = 6;
      servers_per_rack = 8;
      seed = 3;
    }
  | Wide ->
    (* 36 MSBs like the production region of §3.3.1, so the perfect-spread
       bound is the paper's 2.8% *)
    {
      Generator.name = "region-wide";
      num_dcs = 4;
      msbs_per_dc = 9;
      racks_per_msb = 8;
      servers_per_rack = 4;
      seed = 4;
    }

let label_of = function
  | Small -> "small"
  | Medium -> "medium"
  | Wide -> "wide"
  | Region_scale -> "large"

let region_of preset = Generator.generate (params_of preset)

(* A trimmed service list keeps wide-region solves tractable while keeping
   the interesting constraints (generation-pinned, storage, ML affinity,
   Presto affinity). *)
let services_of = function
  | Small | Medium -> Service.default_catalog
  | Wide | Region_scale ->
    List.filter
      (fun s -> s.Service.id <= 12 || s.Service.id = 13 || s.Service.id = 17)
      Service.default_catalog

let requests_of ?(utilization = 0.45) ?(seed = 11) preset region =
  let rng = Rng.create seed in
  Request_gen.scenario rng ~region ~services:(services_of preset) ~target_utilization:utilization

(* Solver presets: [interactive] runs real branch-and-bound under a time
   budget (for the solver-quality figures); [simulation] is the
   heuristic-only mode used inside long-horizon simulations. *)
let interactive_solver =
  {
    Ras.Async_solver.default_params with
    Ras.Async_solver.phase1_time_limit_s = 8.0;
    phase2_time_limit_s = 3.0;
    node_limit = 150;
  }

let simulation_solver =
  { Ras.Async_solver.default_params with Ras.Async_solver.node_limit = 0 }

(* Global quick-mode flag: trims horizons and repetition counts so the whole
   suite runs in a couple of minutes. *)
let quick = ref false

let scaled n = if !quick then Stdlib.max 1 (n / 4) else n
