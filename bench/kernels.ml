(* Solver kernel benchmarks.

   Two layers:
   - Bechamel micro-benchmarks of the build kernels behind the timing
     figures (7, 8, 10, 11): simplex LP solve, symmetry grouping,
     formulation build, model compile, and a full phase-1 solve.
   - Direct wall-clock benchmarks of the LP/MIP hot path on the Table-1
     scenario sizes: LP pivots/sec under full-Dantzig vs candidate-list
     pricing and under the dense-inverse vs LU+eta basis backends, and
     branch-and-bound nodes/sec in three generations — cold-started
     (the seed implementation's behaviour), warm-started with primal
     restarts on the dense inverse (PR 1), and warm-started with
     dual-simplex restarts on the factorized basis (current default).
     Each pair prints its speedup and bound agreement; nothing is
     asserted.

   Every result row is also appended to BENCH_kernels.json (kernel name,
   size, wall time, rates) so future changes have a perf trajectory to
   compare against. *)

open Bechamel
open Toolkit
module Simplex = Ras_mip.Simplex
module Branch_bound = Ras_mip.Branch_bound
module Model = Ras_mip.Model

(* ---------------------------------------------------------------- *)
(* JSON result sink                                                  *)

let json_entries : string list ref = ref []

let record ~kernel ~size ~wall_s fields =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf ", %S: %s" k v) fields)
  in
  json_entries :=
    Printf.sprintf "  {\"kernel\": %S, \"size\": %S, \"wall_s\": %.6f%s}" kernel size wall_s
      extra
    :: !json_entries

let flt v = Printf.sprintf "%.6g" v

let write_json () =
  let oc = open_out "BENCH_kernels.json" in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !json_entries));
  output_string oc "\n]\n";
  close_out oc;
  Report.row "results written to BENCH_kernels.json (%d entries)\n"
    (List.length !json_entries)

(* ---------------------------------------------------------------- *)
(* Problem builders                                                  *)

let lp_problem () =
  (* a representative mid-size LP: transportation-like structure *)
  let m = Ras_mip.Model.create () in
  let n_src = 12 and n_dst = 10 in
  let vars =
    Array.init n_src (fun i ->
        Array.init n_dst (fun j ->
            Ras_mip.Model.add_var ~name:(Printf.sprintf "x%d_%d" i j) ~ub:50.0 m))
  in
  for i = 0 to n_src - 1 do
    let e = Ras_mip.Lin_expr.of_terms (List.init n_dst (fun j -> (1.0, vars.(i).(j)))) in
    ignore (Ras_mip.Model.add_constraint m e Ras_mip.Model.Le 40.0)
  done;
  for j = 0 to n_dst - 1 do
    let e = Ras_mip.Lin_expr.of_terms (List.init n_src (fun i -> (1.0, vars.(i).(j)))) in
    ignore (Ras_mip.Model.add_constraint m e Ras_mip.Model.Ge 20.0)
  done;
  let obj =
    Ras_mip.Lin_expr.of_terms
      (List.concat
         (List.init n_src (fun i ->
              List.init n_dst (fun j -> (float_of_int (((i * 7) + (j * 3)) mod 11), vars.(i).(j))))))
  in
  Ras_mip.Model.set_objective m obj;
  Ras_mip.Model.compile m

let scenario_snapshot preset =
  let region = Scenarios.region_of preset in
  let broker = Ras_broker.Broker.create region in
  let requests = Scenarios.requests_of preset region in
  let reservations =
    List.map Ras.Reservation.of_request requests
    @ Ras.Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  Ras.Snapshot.take broker reservations

let scenario_formulation preset =
  let snapshot = scenario_snapshot preset in
  let symmetry = Ras.Symmetry.build snapshot in
  let formulation = Ras.Formulation.build symmetry snapshot.Ras.Snapshot.reservations in
  (formulation, Ras_mip.Model.compile formulation.Ras.Formulation.model)

let scenario_std preset = snd (scenario_formulation preset)

let size_of (std : Model.std) = Printf.sprintf "nvars=%d nrows=%d" std.Model.nvars std.Model.nrows

(* ---------------------------------------------------------------- *)
(* LP kernel: pivots/sec under the two pricing schemes               *)

let lp_kernel ~label ~repeats ?(with_dense = true) (std : Model.std) =
  let ws = Simplex.create_workspace () in
  let run pricing backend kernels =
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    let status = ref "?" and obj = ref nan in
    let ks = ref { Simplex.avg_ftran_nnz = 0.0; avg_btran_nnz = 0.0; bound_flips = 0 } in
    for _ = 1 to repeats do
      match Simplex.solve ~pricing ~backend ~kernels ~ws std with
      | Simplex.Optimal { iterations; obj = o; kstats; _ } ->
        iters := !iters + iterations;
        obj := o;
        ks := kstats;
        status := "optimal"
      | Simplex.Infeasible _ -> status := "infeasible"
      | Simplex.Unbounded -> status := "unbounded"
      | Simplex.Iteration_limit _ -> status := "iteration-limit"
    done;
    let dt = Unix.gettimeofday () -. t0 in
    (dt, !iters, !status, !obj, !ks)
  in
  let rates = Hashtbl.create 4 and objs = Hashtbl.create 4 in
  let pivots = Hashtbl.create 4 and walls = Hashtbl.create 4 in
  List.iter
    (fun (mode, pricing, backend, kernels) ->
      let dt, iters, status, obj, ks = run pricing backend kernels in
      let name = Printf.sprintf "lp-%s-%s" label mode in
      let rate = float_of_int iters /. dt in
      Hashtbl.replace rates mode rate;
      Hashtbl.replace objs mode obj;
      Hashtbl.replace pivots mode iters;
      Hashtbl.replace walls mode dt;
      Report.row
        "%-34s %8.3fs  %6d pivots  %9.0f pivots/s  %6.1f LP/s  ftran %.1f / btran %.1f nnz  [%s]\n"
        name dt iters rate
        (float_of_int repeats /. dt)
        ks.Simplex.avg_ftran_nnz ks.Simplex.avg_btran_nnz status;
      record ~kernel:name ~size:(size_of std) ~wall_s:dt
        [
          ("pivots", string_of_int iters);
          ("pivots_per_sec", flt rate);
          ("lps_per_sec", flt (float_of_int repeats /. dt));
          ("avg_ftran_nnz", flt ks.Simplex.avg_ftran_nnz);
          ("avg_btran_nnz", flt ks.Simplex.avg_btran_nnz);
          ("bound_flips", string_of_int ks.Simplex.bound_flips);
        ])
    ([
       ("dantzig-pricing", Simplex.Dantzig, Ras_mip.Basis.Lu, Ras_mip.Basis.Hypersparse);
       ("partial-pricing", Simplex.Partial, Ras_mip.Basis.Lu, Ras_mip.Basis.Hypersparse);
       ("devex-pricing", Simplex.Devex, Ras_mip.Basis.Lu, Ras_mip.Basis.Hypersparse);
     ]
    @ (if with_dense then
         [ ("dense-inverse", Simplex.Partial, Ras_mip.Basis.Dense, Ras_mip.Basis.Hypersparse) ]
       else [])
    @ [ ("dense-oracle-kernels", Simplex.Devex, Ras_mip.Basis.Lu, Ras_mip.Basis.Dense_oracle) ]);
  (* sparse-vs-dense kernels: same pricing, same LU factors — only the
     triangular-solve traversal differs, so the pivot counts must be
     identical (the differential pin) and the speedup is pure kernel
     win. *)
  let sp_wall = Hashtbl.find walls "devex-pricing" in
  let dk_wall = Hashtbl.find walls "dense-oracle-kernels" in
  let sp_piv = Hashtbl.find pivots "devex-pricing" in
  let dk_piv = Hashtbl.find pivots "dense-oracle-kernels" in
  let sp_obj = Hashtbl.find objs "devex-pricing" in
  let dk_obj = Hashtbl.find objs "dense-oracle-kernels" in
  let kernels_obj_agree =
    (Float.is_nan sp_obj && Float.is_nan dk_obj)
    || Float.abs (sp_obj -. dk_obj) <= 1e-9 *. Float.max 1.0 (Float.abs dk_obj)
  in
  Report.row "%-34s %.2fx wall speedup, pivots equal: %b, objectives agree: %b\n"
    (Printf.sprintf "lp-%s sparse-vs-dense-kernels" label)
    (dk_wall /. sp_wall) (sp_piv = dk_piv) kernels_obj_agree;
  record
    ~kernel:(Printf.sprintf "lp-%s-sparse-vs-dense-kernels" label)
    ~size:(size_of std) ~wall_s:0.0
    [
      ("wall_speedup", flt (dk_wall /. sp_wall));
      ("pivots_equal", string_of_bool (sp_piv = dk_piv));
      ("objectives_agree", string_of_bool kernels_obj_agree);
      ("sparse_pivots", string_of_int sp_piv);
      ("dense_oracle_pivots", string_of_int dk_piv);
    ];
  (* eta-vs-dense: same pricing scheme, the basis backend is the only
     difference.  The dense inverse refactorizes in O(m^3), so this variant
     only runs where [with_dense] allows it. *)
  if with_dense then begin
    let lu_rate = Hashtbl.find rates "partial-pricing" in
    let dn_rate = Hashtbl.find rates "dense-inverse" in
    let lu_obj = Hashtbl.find objs "partial-pricing" in
    let dn_obj = Hashtbl.find objs "dense-inverse" in
    let obj_agree =
      (Float.is_nan lu_obj && Float.is_nan dn_obj)
      || Float.abs (lu_obj -. dn_obj) <= 1e-4 *. Float.max 1.0 (Float.abs dn_obj)
    in
    Report.row "%-34s %.2fx pivots/s speedup, objectives agree: %b\n"
      (Printf.sprintf "lp-%s eta-vs-dense" label)
      (lu_rate /. dn_rate) obj_agree;
    record
      ~kernel:(Printf.sprintf "lp-%s-eta-vs-dense" label)
      ~size:(size_of std) ~wall_s:0.0
      [
        ("pivots_per_sec_ratio", flt (lu_rate /. dn_rate));
        ("objectives_agree", string_of_bool obj_agree);
      ]
  end;
  (* pricing-rule comparison on the same (LU) backend: total pivot counts,
     not just rates, so iteration-count claims live in the JSON.  The
     acceptance ratio is pivots(devex)/pivots(partial): < 1 means Devex
     saved pivots over the windowed Dantzig scan. *)
  let zp = Hashtbl.find pivots "dantzig-pricing" in
  let pp = Hashtbl.find pivots "partial-pricing" in
  let dp = Hashtbl.find pivots "devex-pricing" in
  let ratio num den = float_of_int num /. float_of_int (max 1 den) in
  Report.row "%-34s pivots dantzig=%d partial=%d devex=%d (devex/partial %.3f)\n"
    (Printf.sprintf "lp-%s pricing-rules" label)
    zp pp dp (ratio dp pp);
  record
    ~kernel:(Printf.sprintf "lp-%s-devex-vs-partial-vs-dantzig" label)
    ~size:(size_of std) ~wall_s:0.0
    [
      ("dantzig_pivots", string_of_int zp);
      ("partial_pivots", string_of_int pp);
      ("devex_pivots", string_of_int dp);
      ("pivot_ratio_devex_over_partial", flt (ratio dp pp));
      ("pivot_ratio_devex_over_dantzig", flt (ratio dp zp));
      ( "pivots_per_sec_ratio_devex_over_partial",
        flt (Hashtbl.find rates "devex-pricing" /. Hashtbl.find rates "partial-pricing") );
    ]

(* ---------------------------------------------------------------- *)
(* B&B kernel: nodes/sec cold (seed behaviour) vs warm-started       *)

let bb_kernel ~label ~node_limit ~time_limit ?(with_dense = true) (std : Model.std) =
  let run name opts =
    let t0 = Unix.gettimeofday () in
    let out = Branch_bound.solve ~options:opts std in
    let dt = Unix.gettimeofday () -. t0 in
    let nodes_per_sec = float_of_int out.Branch_bound.nodes /. dt in
    Report.row
      "%-34s %8.3fs  %4d nodes (%d warm, %d dual)  %6.1f nodes/s  %6d pivots (%d dual)\n" name
      dt out.Branch_bound.nodes out.Branch_bound.warm_started_nodes
      out.Branch_bound.dual_restarted_nodes nodes_per_sec out.Branch_bound.lp_iterations
      out.Branch_bound.dual_pivots;
    record ~kernel:name ~size:(size_of std) ~wall_s:dt
      [
        ("nodes", string_of_int out.Branch_bound.nodes);
        ("warm_started_nodes", string_of_int out.Branch_bound.warm_started_nodes);
        ("dual_restarted_nodes", string_of_int out.Branch_bound.dual_restarted_nodes);
        ("dual_pivots", string_of_int out.Branch_bound.dual_pivots);
        ("bland_pivots", string_of_int out.Branch_bound.bland_pivots);
        ("nodes_per_sec", flt nodes_per_sec);
        ("lp_pivots", string_of_int out.Branch_bound.lp_iterations);
        ("pivots_per_sec", flt (float_of_int out.Branch_bound.lp_iterations /. dt));
        ("best_bound", flt out.Branch_bound.best_bound);
      ];
    (out, nodes_per_sec)
  in
  let base = { Branch_bound.default_options with Branch_bound.node_limit; time_limit } in
  let agree a b =
    a.Branch_bound.status = b.Branch_bound.status
    && Float.abs (a.Branch_bound.best_bound -. b.Branch_bound.best_bound)
       <= 1e-4 *. Float.max 1.0 (Float.abs a.Branch_bound.best_bound)
  in
  let speedup name num_rate den_rate ok =
    Report.row "%-34s %.2fx nodes/s speedup, bounds agree: %b\n"
      (Printf.sprintf "bb-%s %s" label name)
      (num_rate /. den_rate) ok;
    record
      ~kernel:(Printf.sprintf "bb-%s-%s" label name)
      ~size:(size_of std) ~wall_s:0.0
      [ ("nodes_per_sec_ratio", flt (num_rate /. den_rate)); ("bounds_agree", string_of_bool ok) ]
  in
  (* current default: warm dual-simplex restarts on the factorized basis *)
  let dual, dual_rate = run (Printf.sprintf "bb-%s-warm-dual-lu" label) base in
  (* the historical baselines both run on the dense inverse (O(m^3) per
     refactorization), so they are gated off at region-scale model sizes *)
  if with_dense then begin
    (* seed behaviour: cold starts, full pricing, dense inverse *)
    let cold, cold_rate =
      run
        (Printf.sprintf "bb-%s-cold" label)
        {
          base with
          Branch_bound.warm_start = false;
          lp_pricing = Simplex.Dantzig;
          lp_backend = Ras_mip.Basis.Dense;
          dual_restart = false;
        }
    in
    (* PR-1 behaviour: warm primal restarts on the dense inverse *)
    let primal, primal_rate =
      run
        (Printf.sprintf "bb-%s-warm-primal-dense" label)
        { base with Branch_bound.lp_backend = Ras_mip.Basis.Dense; dual_restart = false }
    in
    speedup "warm-vs-cold" dual_rate cold_rate (agree cold dual);
    speedup "dual-vs-primal" dual_rate primal_rate (agree primal dual)
  end;
  (* Devex weights across warm restarts: carry the parent's reference
     framework into the child vs reset it — the ISSUE asks for both to be
     measured.  Same search tree either way (pricing changes pivot order
     inside each node LP, not the node sequence, when both find optima). *)
  let carry, carry_rate =
    run
      (Printf.sprintf "bb-%s-devex-carry" label)
      { base with Branch_bound.lp_devex_carry = true }
  in
  let reset, reset_rate =
    run
      (Printf.sprintf "bb-%s-devex-reset" label)
      { base with Branch_bound.lp_devex_carry = false }
  in
  Report.row "%-34s %.2fx nodes/s (carry/reset), pivots carry=%d reset=%d, bounds agree: %b\n"
    (Printf.sprintf "bb-%s devex-carry-vs-reset" label)
    (carry_rate /. reset_rate) carry.Branch_bound.lp_iterations
    reset.Branch_bound.lp_iterations (agree carry reset);
  record
    ~kernel:(Printf.sprintf "bb-%s-devex-carry-vs-reset" label)
    ~size:(size_of std) ~wall_s:0.0
    [
      ("nodes_per_sec_ratio", flt (carry_rate /. reset_rate));
      ("carry_lp_pivots", string_of_int carry.Branch_bound.lp_iterations);
      ("reset_lp_pivots", string_of_int reset.Branch_bound.lp_iterations);
      ("bounds_agree", string_of_bool (agree carry reset));
    ]

(* ---------------------------------------------------------------- *)
(* POP decomposition kernel: monolith vs k concurrent partitions     *)

let decompose_kernel ~label ~node_limit ~time_limit preset =
  let formulation, std = scenario_formulation preset in
  let initial = Ras.Formulation.status_quo formulation in
  let opts =
    {
      Branch_bound.default_options with
      Branch_bound.node_limit;
      time_limit;
      initial = Some initial;
    }
  in
  let domains = Domain.recommended_domain_count () in
  let t0 = Unix.gettimeofday () in
  let mono = Branch_bound.solve ~options:opts std in
  let mono_dt = Unix.gettimeofday () -. t0 in
  Report.row "%-34s %8.3fs  obj %.2f  %d nodes  (1 domain)\n"
    (Printf.sprintf "decompose-%s-monolith" label)
    mono_dt mono.Branch_bound.objective mono.Branch_bound.nodes;
  record
    ~kernel:(Printf.sprintf "decompose-%s-monolith" label)
    ~size:(size_of std) ~wall_s:mono_dt
    [
      ("k", "1");
      ("domains", "1");
      ("objective", flt mono.Branch_bound.objective);
      ("nodes", string_of_int mono.Branch_bound.nodes);
    ];
  List.iter
    (fun k ->
      let part = Ras.Formulation.partition_vars formulation ~parts:k in
      let t0 = Unix.gettimeofday () in
      let r =
        Ras_mip.Decompose.solve ~options:opts ~num_parts:k
          ~var_part:(fun v -> part.(v))
          std
      in
      let dt = Unix.gettimeofday () -. t0 in
      let out = r.Ras_mip.Decompose.outcome and ds = r.Ras_mip.Decompose.stats in
      let feasible = out.Branch_bound.solution <> None in
      (* product behaviour (Phases): the merged solution goes through the
         formulation-aware repair before use, so quality is measured there *)
      let repaired_obj =
        match out.Branch_bound.solution with
        | Some x ->
          let repaired = Ras.Formulation.repair formulation x in
          let acc = ref std.Model.obj_offset in
          Array.iteri (fun v c -> acc := !acc +. (c *. repaired.(v))) std.Model.obj;
          !acc
        | None -> infinity
      in
      let speedup = mono_dt /. dt in
      let obj_ratio =
        if Float.is_finite repaired_obj && Float.is_finite mono.Branch_bound.objective
        then repaired_obj /. mono.Branch_bound.objective
        else nan
      in
      Report.row
        "%-34s %8.3fs  %.2fx vs monolith  obj-ratio %.3f  feasible %b  %d repairs (%d \
         unresolved)  (%d domains)\n"
        (Printf.sprintf "decompose-%s-k%d" label k)
        dt speedup obj_ratio feasible ds.Ras_mip.Decompose.merge_repairs
        ds.Ras_mip.Decompose.unresolved_rows domains;
      record
        ~kernel:(Printf.sprintf "decompose-%s-k%d" label k)
        ~size:(size_of std) ~wall_s:dt
        [
          ("k", string_of_int k);
          ("domains", string_of_int domains);
          ("speedup_vs_monolith", flt speedup);
          ("objective", flt out.Branch_bound.objective);
          ("repaired_objective", flt repaired_obj);
          ("objective_ratio", flt obj_ratio);
          ("feasible", string_of_bool feasible);
          ("coupled_rows", string_of_int ds.Ras_mip.Decompose.coupled_rows);
          ("merge_repairs", string_of_int ds.Ras_mip.Decompose.merge_repairs);
          ("unresolved_rows", string_of_int ds.Ras_mip.Decompose.unresolved_rows);
          ("nodes", string_of_int out.Branch_bound.nodes);
        ])
    [ 2; 4; 8 ]

(* ---------------------------------------------------------------- *)
(* Continuous-loop kernel: cold rounds vs persistent cross-round     *)
(* solver state (the tentpole quantity: per-round wall time under    *)
(* small churn)                                                      *)

let continuous_loop_kernel ~label ~rounds preset =
  (* phase 2 re-selects its reservation slice every round and never uses
     the cross-round state, so the loop kernel isolates phase 1 *)
  (* Interactive tolerance (0.1% relative gap): the continuous-loop regime
     from the paper — each round needs a near-optimal allocation, not a
     proven-exact one.  Cold and incremental runs share the setting, so the
     comparison stays apples-to-apples: the incremental side wins when last
     round's patched incumbent proves within tolerance at the root. *)
  let solver =
    {
      Scenarios.interactive_solver with
      Ras.Async_solver.run_phase2 = false;
      mip_gap_rel = 1e-3;
      mip_stall_nodes = 8;
    }
  in
  (* small churn: ~0.3% of servers fail per round and a few reservations
     flip in_use — the RAS continuous-loop regime, not a region rebuild *)
  let churn = 0.003 in
  let flip_prob = 0.05 in
  let collect state =
    Solver_runs.collect ~preset ~solver ~churn ~flip_prob ?incremental:state ~solves:rounds ()
  in
  let report name runs extra =
    let s = Solver_runs.duration_summary runs in
    let mean = Ras_stats.Summary.mean s in
    let p50 = Ras_stats.Summary.percentile s 50.0 in
    let p99 = Ras_stats.Summary.percentile s 99.0 in
    let total = Ras_stats.Summary.total s in
    Report.row "%-34s %8.3fs total  %d rounds  per-round mean %.3fs  p50 %.3fs  p99 %.3fs\n"
      name total rounds mean p50 p99;
    record ~kernel:name ~size:(Printf.sprintf "%s churn=%.3f" label churn) ~wall_s:total
      ([
         ("rounds", string_of_int rounds);
         ("mean_s", flt mean);
         ("p50_s", flt p50);
         ("p99_s", flt p99);
       ]
      @ extra);
    s
  in
  let cold = report (Printf.sprintf "continuous-loop-%s-cold" label) (collect None) [] in
  let state = Ras.Solver_state.create () in
  let inc_runs = collect (Some state) in
  (* cross-round stats come from the committed state history: warm rounds
     only (round 0 through the same state is itself cold) *)
  let hist = Ras.Solver_state.history state in
  let warm_rounds = List.filter (fun r -> r.Ras.Solver_state.diff <> None) hist in
  let reuse =
    match warm_rounds with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun a r -> a +. Ras.Solver_state.basis_reuse_rate r) 0.0 warm_rounds
      /. float_of_int (List.length warm_rounds)
  in
  let pivots_saved =
    List.fold_left (fun a r -> a + r.Ras.Solver_state.pivots_saved) 0 warm_rounds
  in
  let count_seed s =
    List.length (List.filter (fun r -> r.Ras.Solver_state.seed = s) warm_rounds)
  in
  let inc =
    report
      (Printf.sprintf "continuous-loop-%s-incremental" label)
      inc_runs
      [
        ("basis_reuse_rate", flt reuse);
        ("pivots_saved", string_of_int pivots_saved);
        ("seeds_accepted", string_of_int (count_seed Branch_bound.Seed_accepted));
        ("seeds_repaired", string_of_int (count_seed Branch_bound.Seed_repaired));
        ("seeds_rejected", string_of_int (count_seed Branch_bound.Seed_rejected));
      ]
  in
  let ratio at =
    Ras_stats.Summary.percentile cold at /. Ras_stats.Summary.percentile inc at
  in
  Report.row "%-34s %.2fx per-round p50 speedup  %.2fx p99  basis reuse %.0f%%  %d pivots saved\n"
    (Printf.sprintf "continuous-loop-%s incremental-vs-cold" label)
    (ratio 50.0) (ratio 99.0) (100.0 *. reuse) pivots_saved;
  record
    ~kernel:(Printf.sprintf "continuous-loop-%s-incremental-vs-cold" label)
    ~size:(Printf.sprintf "%s churn=%.3f" label churn)
    ~wall_s:0.0
    [
      ("p50_speedup", flt (ratio 50.0));
      ("p99_speedup", flt (ratio 99.0));
      ("mean_speedup", flt (Ras_stats.Summary.mean cold /. Ras_stats.Summary.mean inc));
      ("basis_reuse_rate", flt reuse);
      ("pivots_saved", string_of_int pivots_saved);
    ]

(* ---------------------------------------------------------------- *)
(* Tier-1 reactive restore: event -> healthy-replacement latency     *)

(* The two-tier claim in numbers: after one tier-2 round binds capacity,
   fail [events] reservation-owned servers one at a time and time the
   synchronous mark_down -> replacement repair.  Three latencies compete:
   the tier-1 reactive path (O(affected classes) against the incremental
   availability index), the legacy full-scan search (O(servers), measured
   without mutating via the retained oracle), and the tier-2 baseline — a
   failure that waits for the next loop round pays the round's solve
   latency.  Visited-server / visited-class / allocation counters per event
   pin the O(n) -> O(classes) claim at every preset size. *)
let reactive_restore_kernel ~label ~events preset =
  let module Broker = Ras_broker.Broker in
  let module Region = Ras_topology.Region in
  let region = Scenarios.region_of preset in
  let broker = Broker.create region in
  let requests = Scenarios.requests_of preset region in
  let reservations =
    List.map Ras.Reservation.of_request requests
    @ Ras.Buffers.shared_buffer_reservations region ~fraction:0.02 ~first_id:8000
  in
  let reactive = Ras.Reactive.create broker in
  let mover = Ras.Online_mover.create ~reactive broker in
  Ras.Online_mover.set_reservations mover reservations;
  let solver =
    {
      Scenarios.simulation_solver with
      Ras.Async_solver.run_phase2 = false;
      phase1_time_limit_s = 120.0;
    }
  in
  let snap = Ras.Snapshot.take ~home_of:(Ras.Online_mover.home_of mover) broker reservations in
  let stats = Ras.Async_solver.solve ~params:solver snap in
  ignore (Ras.Online_mover.apply_plan mover stats.Ras.Async_solver.plan);
  (match stats.Ras.Async_solver.price_table with
  | Some p -> Ras.Reactive.set_prices reactive p
  | None -> ());
  let round_s = stats.Ras.Async_solver.duration_s in
  let n = Broker.num_servers broker in
  (* victims: healthy servers bound to guaranteed reservations, spread over
     the region *)
  let bound = ref [] in
  for id = n - 1 downto 0 do
    if Broker.healthy_at broker id then begin
      match Broker.current_owner broker id with
      | Broker.Reservation rid when rid < 8000 -> (
        match
          List.find_opt
            (fun r -> r.Ras.Reservation.id = rid && not (Ras.Reservation.is_buffer r))
            reservations
        with
        | Some res -> bound := (id, res) :: !bound
        | None -> ())
      | _ -> ()
    end
  done;
  let bound = Array.of_list !bound in
  let events = min events (Array.length bound) in
  let stride = if events = 0 then 1 else Array.length bound / events in
  let victims = List.init events (fun i -> bound.(i * stride)) in
  if events = 0 then
    Report.row "%-34s skipped: no bound servers after the setup round\n"
      (Printf.sprintf "reactive-restore-%s" label)
  else begin
    (* without tier-1: the legacy O(n) record-building search, measured
       non-mutatingly via the retained oracle *)
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (id, res) ->
        ignore
          (Ras.Online_mover.find_replacement_reference mover res
             ~failed_hw:region.Region.servers.(id).Region.hw.Ras_topology.Hardware.index))
      victims;
    let scan_s = Unix.gettimeofday () -. t0 in
    (* with tier-1: fail each victim; the mover repairs synchronously inside
       mark_down through the reactive index *)
    Ras.Reactive.reset_counters reactive;
    let done0 = Ras.Online_mover.replacements_done mover in
    let alloc0 = Gc.allocated_bytes () in
    let t1 = Unix.gettimeofday () in
    List.iter
      (fun (id, _) -> Broker.mark_down broker id Ras_failures.Unavail.Unplanned_sw)
      victims;
    let tier1_s = Unix.gettimeofday () -. t1 in
    let alloc = Gc.allocated_bytes () -. alloc0 in
    let c = Ras.Reactive.counters reactive in
    let restored = Ras.Online_mover.replacements_done mover - done0 in
    let fe = float_of_int events in
    let per_event = tier1_s /. fe in
    let scan_per_event = scan_s /. fe in
    Report.row
      "%-34s %d events  %d restored  tier-1 %.6fs/event  scan %.6fs/event (%.0fx)  round %.3fs \
       (%.0fx)\n"
      (Printf.sprintf "reactive-restore-%s" label)
      events restored per_event scan_per_event
      (scan_per_event /. per_event)
      round_s (round_s /. per_event);
    Report.row
      "%-34s visited/event: %.1f servers  %.1f classes  (%d servers, %d buckets)  %.0f B alloc/event\n"
      ""
      (float_of_int c.Ras.Reactive.visited_servers /. fe)
      (float_of_int c.Ras.Reactive.visited_classes /. fe)
      n
      (Ras.Reactive.num_buckets reactive)
      (alloc /. fe);
    record
      ~kernel:(Printf.sprintf "reactive-restore-%s" label)
      ~size:(Printf.sprintf "servers=%d buckets=%d" n (Ras.Reactive.num_buckets reactive))
      ~wall_s:tier1_s
      [
        ("events", string_of_int events);
        ("restored", string_of_int restored);
        ("per_event_s", flt per_event);
        ("scan_per_event_s", flt scan_per_event);
        ("scan_speedup", flt (scan_per_event /. per_event));
        ("baseline_round_s", flt round_s);
        ("round_speedup", flt (round_s /. per_event));
        ("visited_servers_per_event", flt (float_of_int c.Ras.Reactive.visited_servers /. fe));
        ("visited_classes_per_event", flt (float_of_int c.Ras.Reactive.visited_classes /. fe));
        ("alloc_bytes_per_event", flt (alloc /. fe));
      ]
  end

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks (build kernels)                         *)

let tests () =
  let std = lp_problem () in
  let snapshot = scenario_snapshot Scenarios.Small in
  let symmetry = Ras.Symmetry.build snapshot in
  let formulation = Ras.Formulation.build symmetry snapshot.Ras.Snapshot.reservations in
  [
    Test.make ~name:"simplex-lp-120var" (Staged.stage (fun () -> Ras_mip.Simplex.solve std));
    Test.make ~name:"symmetry-build" (Staged.stage (fun () -> Ras.Symmetry.build snapshot));
    Test.make ~name:"formulation-build"
      (Staged.stage (fun () ->
           Ras.Formulation.build symmetry snapshot.Ras.Snapshot.reservations));
    Test.make ~name:"model-compile"
      (Staged.stage (fun () -> Ras_mip.Model.compile formulation.Ras.Formulation.model));
    Test.make ~name:"phase1-heuristic-solve"
      (Staged.stage (fun () ->
           Ras.Phases.run ~mip_node_limit:0 snapshot snapshot.Ras.Snapshot.reservations));
  ]

let run_micro () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 100) ()
  in
  let grouped = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] ->
        Report.row "%-40s %12.0f ns/run\n" name est;
        record ~kernel:name ~size:"micro" ~wall_s:(est *. 1e-9)
          [ ("ns_per_run", flt est) ]
      | Some _ | None -> Report.row "%-40s (no estimate)\n" name)
    results

(* ---------------------------------------------------------------- *)
(* Preset rows: one record per scenario size drives every kernel      *)
(* section below, so a new size inherits the same knob structure      *)
(* instead of a copy-pasted block per kernel.  A zero                 *)
(* repeats/limit/rounds skips that kernel for the row; [with_dense]   *)
(* gates the O(m^3) dense-inverse baselines, intractable at the       *)
(* region-scale row's model size.                                     *)

type preset_row = {
  label : string;
  preset : Scenarios.preset;
  lp_repeats : int;
  bb_node_limit : int;
  bb_time_limit : float;
  loop_rounds : int;
  decompose_node_limit : int;
  decompose_time_limit : float;
  with_dense : bool;
  reactive_events : int;  (* tier-1 restore events; 0 skips the kernel *)
}

(* evaluated at run time so the [Scenarios.quick] flag (set by the CLI) is
   already in effect *)
let preset_rows () =
  [
    {
      label = "small";
      preset = Scenarios.Small;
      lp_repeats = Scenarios.scaled 8;
      bb_node_limit = Scenarios.scaled 120;
      bb_time_limit = 60.0;
      loop_rounds = 0;
      decompose_node_limit = 0;
      decompose_time_limit = 0.0;
      with_dense = true;
      reactive_events = 0;
    };
    {
      label = "medium";
      preset = Scenarios.Medium;
      lp_repeats = 2;
      bb_node_limit = (if !Scenarios.quick then 24 else 60);
      bb_time_limit = 120.0;
      loop_rounds = (if !Scenarios.quick then 4 else 10);
      decompose_node_limit = (if !Scenarios.quick then 24 else 60);
      decompose_time_limit = 120.0;
      with_dense = true;
      reactive_events = (if !Scenarios.quick then 20 else 60);
    };
    {
      label = "wide";
      preset = Scenarios.Wide;
      lp_repeats = 0;
      bb_node_limit = 0;
      bb_time_limit = 0.0;
      loop_rounds = 0;
      decompose_node_limit = (if !Scenarios.quick then 12 else 40);
      decompose_time_limit = 120.0;
      with_dense = true;
      reactive_events = 0;
    };
    (* the north-star row: the 10^6-server preset.  Symmetry aggregation
       keeps the compiled model within ~2x of medium, so every enabled
       kernel runs in the same regime — only the dense O(m^3) baselines
       are gated off. *)
    {
      label = "large";
      preset = Scenarios.Region_scale;
      lp_repeats = (if !Scenarios.quick then 1 else 2);
      bb_node_limit = (if !Scenarios.quick then 8 else 40);
      bb_time_limit = 120.0;
      loop_rounds = (if !Scenarios.quick then 2 else 6);
      decompose_node_limit = 0;
      decompose_time_limit = 0.0;
      with_dense = false;
      reactive_events = (if !Scenarios.quick then 10 else 25);
    };
  ]

let run () =
  json_entries := [];
  Report.heading "Solver kernel benchmarks"
    ~paper:"(methodology) wall-clock kernels behind Figs. 7/8/10/11 and Table 1"
    ~expect:"warm-started B&B >= 2x nodes/s over cold starts at medium scale";
  Report.row "-- bechamel micro-benchmarks --\n";
  run_micro ();
  let rows = List.map (fun r -> (r, lazy (scenario_std r.preset))) (preset_rows ()) in
  Report.row "-- LP pricing (Table-1 scenario sizes) --\n";
  List.iter
    (fun (r, std) ->
      if r.lp_repeats > 0 then
        lp_kernel ~label:r.label ~repeats:r.lp_repeats ~with_dense:r.with_dense
          (Lazy.force std))
    rows;
  Report.row "-- branch-and-bound warm starts --\n";
  List.iter
    (fun (r, std) ->
      if r.bb_node_limit > 0 then
        bb_kernel ~label:r.label ~node_limit:r.bb_node_limit ~time_limit:r.bb_time_limit
          ~with_dense:r.with_dense (Lazy.force std))
    rows;
  Report.row "-- continuous loop: cold vs persistent cross-round state --\n";
  List.iter
    (fun (r, _) ->
      if r.loop_rounds > 0 then
        continuous_loop_kernel ~label:r.label ~rounds:r.loop_rounds r.preset)
    rows;
  Report.row "-- tier-1 reactive restore (event -> replacement) --\n";
  List.iter
    (fun (r, _) ->
      if r.reactive_events > 0 then
        reactive_restore_kernel ~label:r.label ~events:r.reactive_events r.preset)
    rows;
  Report.row "-- POP decomposition (monolith vs k partitions) --\n";
  List.iter
    (fun (r, _) ->
      if r.decompose_node_limit > 0 then
        decompose_kernel ~label:r.label ~node_limit:r.decompose_node_limit
          ~time_limit:r.decompose_time_limit r.preset)
    rows;
  write_json ()
