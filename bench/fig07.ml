(* Fig. 7: distribution of regional allocation (solve) times.  The paper's
   region of several hundred thousand servers solves in a tight band around
   1.8ks (p95 2.2ks, p99 2.45ks), within the one-hour SLO.  Our simulated
   region is ~1000x smaller so absolute times are seconds; the reproduced
   property is the tight distribution (p99 within ~1.4x of the mean) under
   moderate pool changes between solves. *)

module Summary = Ras_stats.Summary

let runs_cache : Solver_runs.run list option ref = ref None

let runs () =
  match !runs_cache with
  | Some r -> r
  | None ->
    let r = Solver_runs.collect ~solves:(Scenarios.scaled 24) () in
    runs_cache := Some r;
    r

let run () =
  Report.heading "Figure 7: allocation time distribution"
    ~paper:"mean 1.8ks, p95 2.2ks, p99 2.45ks — tight, inside the 1h SLO"
    ~expect:"tight distribution (p95/mean < ~1.3, p99/mean < ~1.5) at our reduced scale";
  let s = Solver_runs.duration_summary (runs ()) in
  Report.summary "allocation time (s)" s;
  let mean = Summary.mean s in
  Report.row "p95/mean = %.2f   p99/mean = %.2f   (paper: %.2f and %.2f)\n"
    (Summary.percentile s 95.0 /. mean)
    (Summary.percentile s 99.0 /. mean)
    (2200.0 /. 1800.0) (2450.0 /. 1800.0);
  let hist = Summary.histogram s ~bins:8 in
  Array.iteri
    (fun i c ->
      let lo = hist.Summary.lo +. (float_of_int i *. (hist.Summary.hi -. hist.Summary.lo) /. 8.0) in
      Report.row "  %6.2fs  %s\n" lo (String.make c '#'))
    hist.Summary.counts;
  let nodes, pivots, warm = Solver_runs.solver_totals (runs ()) in
  Report.row "solver kernels: %d B&B nodes (%d warm-started), %d LP pivots across %d solves\n"
    nodes warm pivots
    (List.length (runs ()))
