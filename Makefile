.PHONY: all build test bench bench-quick check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# quick-mode solver-kernel smoke (includes the continuous-loop
# cold-vs-incremental rows); writes BENCH_kernels.json
bench-quick:
	dune exec bench/main.exe -- --quick kernels

# build + tests + quick kernel-bench smoke; the pre-merge gate
check:
	sh scripts/check.sh

clean:
	dune clean
