.PHONY: all build test bench check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# build + tests + quick kernel-bench smoke; the pre-merge gate
check:
	sh scripts/check.sh

clean:
	dune clean
