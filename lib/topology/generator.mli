(** Synthetic region builder.

    Reproduces the structural properties the paper's evaluation depends on:

    - MSBs differ in hardware mixture, and the mixture is skewed by MSB age
      (Fig. 2): the oldest MSBs carry generation-1 hardware that is absent
      from the newest ones, and vice versa — which is what forces some
      services off some MSBs in Fig. 13;
    - racks are hardware-homogeneous, as in real fleets;
    - datacenters receive MSBs in an interleaved deployment order.

    Generation is deterministic in the seed. *)

type params = {
  name : string;
  num_dcs : int;
  msbs_per_dc : int;
  racks_per_msb : int;
  servers_per_rack : int;
  seed : int;
}

val default_params : params
(** 4 datacenters, 9 MSBs each (36 total, like the production region of
    §3.3.1), 12 racks per MSB, 12 servers per rack. *)

val small_params : params
(** A laptop-scale region for tests and the quickstart example: 2 DCs,
    3 MSBs each, 4 racks per MSB, 6 servers per rack. *)

val region_scale_params : params
(** The north-star scale: 4 DCs × 9 MSBs (36, as in the production region
    of §3.3.1) × 580 racks × 48 servers ≈ 1.0M servers.  Rack hardware is
    drawn independently of [servers_per_rack], so shrinking that one field
    yields a structurally identical region at any scale — the property the
    scale-sweep regression tests pin. *)

val generate : params -> Region.t

val extend : Region.t -> new_msbs_per_dc:int -> racks_per_msb:int -> servers_per_rack:int -> seed:int -> Region.t
(** Append newly deployed MSBs to every datacenter, keeping all existing
    indices stable (servers, racks and MSBs only ever gain entries).  The
    new MSBs are the youngest and carry the newest hardware mixture.  Fig. 12
    uses this to model the mid-experiment datacenter expansion. *)

val age_of_msb : Region.t -> int -> float
(** Deployment age in [0, 1]: 0 = oldest MSB of the region, 1 = newest. *)
