type params = {
  name : string;
  num_dcs : int;
  msbs_per_dc : int;
  racks_per_msb : int;
  servers_per_rack : int;
  seed : int;
}

let default_params =
  { name = "region-a"; num_dcs = 4; msbs_per_dc = 9; racks_per_msb = 12; servers_per_rack = 12; seed = 1 }

let small_params =
  { name = "region-small"; num_dcs = 2; msbs_per_dc = 3; racks_per_msb = 4; servers_per_rack = 6; seed = 1 }

(* The north-star scale: 36 MSBs as in the production region of §3.3.1,
   ~10^6 servers.  Because [build_servers] draws each rack's hardware once
   (the RNG sequence never sees [servers_per_rack]), scaling this preset
   down by shrinking [servers_per_rack] keeps the rack/class structure —
   and hence the compiled model — identical; the scale-sweep tests rely on
   exactly that. *)
let region_scale_params =
  {
    name = "region-scale";
    num_dcs = 4;
    msbs_per_dc = 9;
    racks_per_msb = 580;
    servers_per_rack = 48;
    seed = 6;
  }

let category_weight = function
  | Hardware.Compute -> 0.40
  | Hardware.Storage -> 0.18
  | Hardware.Memory -> 0.06
  | Hardware.Flash -> 0.08
  | Hardware.Gpu -> 0.10
  | Hardware.Asic -> 0.05
  | Hardware.Compute_dense -> 0.13

(* Hardware generations have deployment windows: a subtype is only installed
   in MSBs whose age falls inside its generation's window.  This produces the
   Fig. 2 skew (old MSBs have no gen-3 hardware, new MSBs no gen-1). *)
let generation_window = function
  | 1 -> (0.0, 0.6)
  | 2 -> (0.2, 0.9)
  | _ -> (0.5, 1.0)

let subtype_weights ~age =
  Array.map
    (fun h ->
      let lo, hi = generation_window h.Hardware.cpu_generation in
      if age >= lo && age <= hi then category_weight h.Hardware.category else 0.0)
    Hardware.catalog

let age_of_msb (region : Region.t) msb =
  let pos = ref 0 in
  Array.iteri (fun i m -> if m = msb then pos := i) region.Region.msb_deploy_order;
  if region.Region.num_msbs <= 1 then 0.0
  else float_of_int !pos /. float_of_int (region.Region.num_msbs - 1)

(* Build servers for MSBs [first_msb, last_msb); racks are homogeneous in
   hardware, with the rack's subtype drawn from the age-dependent mixture. *)
let build_servers rng ~ages ~first_msb ~last_msb ~racks_per_msb ~servers_per_rack ~first_rack
    ~first_server ~msb_dc =
  let servers = ref [] in
  let rack_msb = ref [] in
  let rack = ref first_rack and server = ref first_server in
  for msb = first_msb to last_msb - 1 do
    let weights = subtype_weights ~age:ages.(msb) in
    for _ = 1 to racks_per_msb do
      let hw = Hardware.catalog.(Ras_stats.Dist.categorical rng weights) in
      rack_msb := msb :: !rack_msb;
      for _ = 1 to servers_per_rack do
        let s =
          { Region.id = !server; hw; loc = { Region.dc = msb_dc msb; msb; rack = !rack } }
        in
        servers := s :: !servers;
        incr server
      done;
      incr rack
    done
  done;
  (List.rev !servers, List.rev !rack_msb)

let generate p =
  let rng = Ras_stats.Rng.create p.seed in
  let num_msbs = p.num_dcs * p.msbs_per_dc in
  (* MSB index equals deployment position; deployment interleaves DCs. *)
  let msb_dc m = m mod p.num_dcs in
  let ages =
    Array.init num_msbs (fun m ->
        if num_msbs <= 1 then 0.0 else float_of_int m /. float_of_int (num_msbs - 1))
  in
  let servers, rack_msbs =
    build_servers rng ~ages ~first_msb:0 ~last_msb:num_msbs ~racks_per_msb:p.racks_per_msb
      ~servers_per_rack:p.servers_per_rack ~first_rack:0 ~first_server:0 ~msb_dc
  in
  {
    Region.name = p.name;
    num_dcs = p.num_dcs;
    num_msbs;
    num_racks = num_msbs * p.racks_per_msb;
    servers = Array.of_list servers;
    msb_dc = Array.init num_msbs msb_dc;
    rack_msb = Array.of_list rack_msbs;
    msb_deploy_order = Array.init num_msbs (fun i -> i);
  }

let extend (region : Region.t) ~new_msbs_per_dc ~racks_per_msb ~servers_per_rack ~seed =
  let rng = Ras_stats.Rng.create seed in
  let extra_msbs = region.Region.num_dcs * new_msbs_per_dc in
  let num_msbs = region.Region.num_msbs + extra_msbs in
  let msb_dc m =
    if m < region.Region.num_msbs then region.Region.msb_dc.(m)
    else (m - region.Region.num_msbs) mod region.Region.num_dcs
  in
  let ages =
    Array.init num_msbs (fun m ->
        if num_msbs <= 1 then 0.0 else float_of_int m /. float_of_int (num_msbs - 1))
  in
  let new_servers, new_rack_msbs =
    build_servers rng ~ages ~first_msb:region.Region.num_msbs ~last_msb:num_msbs ~racks_per_msb
      ~servers_per_rack ~first_rack:region.Region.num_racks
      ~first_server:(Region.num_servers region) ~msb_dc
  in
  {
    region with
    Region.num_msbs;
    num_racks = region.Region.num_racks + (extra_msbs * racks_per_msb);
    servers = Array.append region.Region.servers (Array.of_list new_servers);
    msb_dc = Array.init num_msbs msb_dc;
    rack_msb = Array.append region.Region.rack_msb (Array.of_list new_rack_msbs);
    msb_deploy_order = Array.init num_msbs (fun i -> i);
  }
