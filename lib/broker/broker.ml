module Region = Ras_topology.Region
module Unavail = Ras_failures.Unavail

type owner = Free | Reservation of int | Shared_buffer | Elastic of int

type record = {
  server : Region.server;
  mutable current : owner;
  mutable target : owner;
  mutable down : Unavail.kind option;
  mutable in_use : bool;
}

type event = Went_down of int * Unavail.kind | Came_up of int

(* Per-server state lives in flat columns (one int or one byte per server)
   instead of one heap record per server: at region scale (10^6 servers) the
   record representation costs ~6 words of header+fields per server plus a
   pointer array, while the columns cost ~2.25 words per server total and
   never allocate on reads of the hot fields. *)
type t = {
  mutable reg : Region.t;
  mutable current : int array;  (* owner codes *)
  mutable target : int array;  (* owner codes *)
  mutable down : Bytes.t;  (* 0 = healthy, 1 + kind code otherwise *)
  mutable in_use : Bytes.t;  (* 0 / 1 *)
  mutable subscribers : (event -> unit) list;  (* reversed subscription order *)
  mutable change_subscribers : (int -> unit) list;  (* reversed subscription order *)
}

(* Owner codes: injective int encoding so a column cell is a single
   immediate.  [Free] and [Shared_buffer] take the two codes outside the
   id-carrying residue classes (codes 2 mod 4 and 3 mod 4). *)
let owner_code = function
  | Free -> 0
  | Shared_buffer -> 1
  | Reservation id -> (id * 4) + 2
  | Elastic id -> (id * 4) + 3

let owner_of_code = function
  | 0 -> Free
  | 1 -> Shared_buffer
  | c when c land 3 = 2 -> Reservation ((c - 2) asr 2)
  | c -> Elastic ((c - 3) asr 2)

let kind_code = function
  | Unavail.Planned_maintenance -> 0
  | Unavail.Unplanned_sw -> 1
  | Unavail.Unplanned_hw -> 2
  | Unavail.Correlated -> 3

let kind_of_code = function
  | 0 -> Unavail.Planned_maintenance
  | 1 -> Unavail.Unplanned_sw
  | 2 -> Unavail.Unplanned_hw
  | _ -> Unavail.Correlated

let free_code = 0

let create reg =
  let n = Region.num_servers reg in
  {
    reg;
    current = Array.make n free_code;
    target = Array.make n free_code;
    down = Bytes.make n '\000';
    in_use = Bytes.make n '\000';
    subscribers = [];
    change_subscribers = [];
  }

let region t = t.reg

let num_servers t = Array.length t.current

let check t id fn =
  if id < 0 || id >= Array.length t.current then
    invalid_arg (Printf.sprintf "Broker.%s: unknown server %d" fn id)

(* -- column accessors: the allocation-free read path -- *)

let current_code t id = check t id "current_code"; t.current.(id)

let target_code t id = check t id "target_code"; t.target.(id)

let current_owner t id = owner_of_code (current_code t id)

let down_code t id = check t id "down_code"; Char.code (Bytes.unsafe_get t.down id)

let down_at t id =
  match down_code t id with 0 -> None | c -> Some (kind_of_code (c - 1))

let in_use_at t id = check t id "in_use_at"; Bytes.unsafe_get t.in_use id <> '\000'

let available_code c = c = 0 || c = 1 + kind_code Unavail.Planned_maintenance

let available_at t id = available_code (down_code t id)

let healthy_at t id = down_code t id = 0

(* [record] materializes a view of one server's columns.  It is a copy:
   writes to its mutable fields do not reach the store (mutate through
   {!move}/{!set_target}/{!mark_down}/{!mark_up}/{!set_in_use} instead). *)
let record t id =
  check t id "record";
  {
    server = t.reg.Region.servers.(id);
    current = owner_of_code t.current.(id);
    target = owner_of_code t.target.(id);
    down = down_at t id;
    in_use = in_use_at t id;
  }

let subscribe t f = t.subscribers <- f :: t.subscribers

let subscribe_changes t f = t.change_subscribers <- f :: t.change_subscribers

let notify t ev = List.iter (fun f -> f ev) (List.rev t.subscribers)

let notify_change t id =
  List.iter (fun f -> f id) (List.rev t.change_subscribers)

let set_target t id owner = check t id "set_target"; t.target.(id) <- owner_code owner

let move t id owner =
  check t id "move";
  let code = owner_code owner in
  if t.current.(id) <> code then begin
    t.current.(id) <- code;
    Bytes.unsafe_set t.in_use id '\000';
    notify_change t id
  end

let mark_down t id kind =
  let code = 1 + kind_code kind in
  if down_code t id <> code then begin
    Bytes.unsafe_set t.down id (Char.chr code);
    notify_change t id;
    notify t (Went_down (id, kind))
  end

let mark_up t id =
  if down_code t id <> 0 then begin
    Bytes.unsafe_set t.down id '\000';
    notify_change t id;
    notify t (Came_up id)
  end

let set_in_use t id flag =
  check t id "set_in_use";
  let byte = if flag then '\001' else '\000' in
  if Bytes.unsafe_get t.in_use id <> byte then begin
    Bytes.unsafe_set t.in_use id byte;
    notify_change t id
  end

let extend_region t reg =
  let old_n = num_servers t in
  let n = Region.num_servers reg in
  if n < old_n then invalid_arg "Broker.extend_region: new region is smaller";
  for i = 0 to old_n - 1 do
    if reg.Region.servers.(i).Region.id <> t.reg.Region.servers.(i).Region.id then
      invalid_arg "Broker.extend_region: existing server ids changed"
  done;
  let grow_int col =
    let bigger = Array.make n free_code in
    Array.blit col 0 bigger 0 old_n;
    bigger
  in
  let grow_bytes col =
    let bigger = Bytes.make n '\000' in
    Bytes.blit col 0 bigger 0 old_n;
    bigger
  in
  t.current <- grow_int t.current;
  t.target <- grow_int t.target;
  t.down <- grow_bytes t.down;
  t.in_use <- grow_bytes t.in_use;
  t.reg <- reg;
  for id = old_n to n - 1 do
    notify_change t id
  done

let fold t ~init ~f =
  let acc = ref init in
  for id = 0 to num_servers t - 1 do
    acc := f !acc (record t id)
  done;
  !acc

let iter t ~f =
  for id = 0 to num_servers t - 1 do
    f (record t id)
  done

let servers_with_owner t owner =
  let code = owner_code owner in
  let out = ref [] in
  for id = num_servers t - 1 downto 0 do
    if t.current.(id) = code then out := id :: !out
  done;
  !out

let count_owner t owner =
  let code = owner_code owner in
  let acc = ref 0 in
  Array.iter (fun c -> if c = code then incr acc) t.current;
  !acc

let available (r : record) =
  match r.down with
  | None | Some Unavail.Planned_maintenance -> true
  | Some (Unavail.Unplanned_sw | Unavail.Unplanned_hw | Unavail.Correlated) -> false

let healthy (r : record) = r.down = None
