(** Resource Broker: the authoritative store of server state (paper §3.1-2).

    For every server the broker keeps the fields of Fig. 6's "Solve Input"
    table: the {e current} owner (who holds the server now), the {e target}
    owner (the binding intent written by the Async Solver), whether the
    server is lent out elastically, and its unavailability state.  The Twine
    allocator and the Online Mover subscribe to unavailability changes.

    The production broker is highly-available replicated storage; behaviour
    relevant to allocation is the data model and the subscription contract,
    which this in-memory version preserves.

    Internally the store is columnar — one int or byte column per field,
    indexed by server id — so a region-scale broker (10⁶ servers) costs a
    few flat arrays rather than a million heap records.  {!record}
    materializes a per-server view on demand; the [*_at] / [*_code]
    accessors read the columns without allocating. *)

type owner =
  | Free  (** region free pool *)
  | Reservation of int  (** bound to a guaranteed reservation *)
  | Shared_buffer  (** the shared random-failure buffer (§3.3.1) *)
  | Elastic of int  (** buffer capacity lent to an elastic reservation (§3.4) *)

type record = {
  server : Ras_topology.Region.server;
  mutable current : owner;
  mutable target : owner;
  mutable down : Ras_failures.Unavail.kind option;  (** [None] = healthy *)
  mutable in_use : bool;  (** has running containers (drives movement cost) *)
}

type t

type event = Went_down of int * Ras_failures.Unavail.kind | Came_up of int

val create : Ras_topology.Region.t -> t
(** All servers start [Free], healthy, targets equal to current. *)

val region : t -> Ras_topology.Region.t

val num_servers : t -> int

val record : t -> int -> record
(** Materializes a snapshot of one server's columns.  The returned record is
    a copy: writes to its mutable fields do not reach the store — mutate
    through {!move}/{!set_target}/{!mark_down}/{!mark_up}/{!set_in_use}.
    Raises [Invalid_argument] on an unknown server id. *)

(** {2 Allocation-free column accessors}

    The hot paths (snapshot capture, symmetry aggregation) read server state
    through these instead of materializing {!record}s. *)

val owner_code : owner -> int
(** Injective encoding of {!owner} as an immediate int ([Free] = 0). *)

val owner_of_code : int -> owner
(** Inverse of {!owner_code}. *)

val current_code : t -> int -> int
(** [owner_code] of the server's current owner. *)

val target_code : t -> int -> int

val current_owner : t -> int -> owner

val down_at : t -> int -> Ras_failures.Unavail.kind option

val in_use_at : t -> int -> bool

val available_at : t -> int -> bool
(** Column equivalent of {!available}. *)

val healthy_at : t -> int -> bool

val subscribe : t -> (event -> unit) -> unit
(** Callbacks run synchronously on {!mark_down}/{!mark_up}, in subscription
    order. *)

val subscribe_changes : t -> (int -> unit) -> unit
(** Low-level column-change feed: the callback receives the server id on
    every effective mutation of its columns ({!move}, {!mark_down},
    {!mark_up}, {!set_in_use}, and once per adopted server on
    {!extend_region}).  No-op writes (same owner, same state) do not fire.
    On {!mark_down}/{!mark_up} change callbacks run {e before} the
    {!subscribe} event callbacks, so an index maintained through this feed
    (e.g. {!Ras.Reactive}'s availability pools) is already consistent when
    event handlers run.  Callbacks must not mutate the broker for the same
    id re-entrantly. *)

val set_target : t -> int -> owner -> unit
(** Record binding intent (solver output step 3 in Fig. 6). *)

val move : t -> int -> owner -> unit
(** Change [current] ownership (the Online Mover's capacity-binding step).
    Moving a server across owners preempts its containers: [in_use] resets
    to false unless the owner is unchanged. *)

val mark_down : t -> int -> Ras_failures.Unavail.kind -> unit
(** Idempotent for the same kind; a more severe event may overwrite. *)

val mark_up : t -> int -> unit

val set_in_use : t -> int -> bool -> unit

val extend_region : t -> Ras_topology.Region.t -> unit
(** Adopt an extended region (see {!Ras_topology.Generator.extend}): new
    servers are added as [Free]; existing records are untouched.  Raises
    [Invalid_argument] if the new region does not extend the old one. *)

val fold : t -> init:'a -> f:('a -> record -> 'a) -> 'a

val iter : t -> f:(record -> unit) -> unit

val servers_with_owner : t -> owner -> int list

val count_owner : t -> owner -> int

val available : record -> bool
(** Healthy or under planned maintenance: planned events count as usable
    capacity for the solver (§3.5.1). *)

val healthy : record -> bool
(** No active unavailability at all. *)
