type t = {
  mutable data : float array;
  mutable len : int;
  mutable sum : float;
  mutable run_mean : float;  (* Welford running mean *)
  mutable m2 : float;  (* Welford sum of squared deviations from the mean *)
  mutable sorted : bool;
}

let create () =
  { data = Array.make 16 0.0; len = 0; sum = 0.0; run_mean = 0.0; m2 = 0.0; sorted = true }

let add t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x;
  (* Welford's update: immune to the catastrophic cancellation that the
     naive E[x^2] - E[x]^2 formula suffers on large-offset samples *)
  let delta = x -. t.run_mean in
  t.run_mean <- t.run_mean +. (delta /. float_of_int t.len);
  t.m2 <- t.m2 +. (delta *. (x -. t.run_mean));
  t.sorted <- false

let add_list t xs = List.iter (add t) xs

let count t = t.len

let total t = t.sum

let mean t = if t.len = 0 then nan else t.run_mean

let variance t = if t.len = 0 then nan else t.m2 /. float_of_int t.len

let stddev t = sqrt (max 0.0 (variance t))

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.len in
    Array.sort Float.compare live;
    Array.blit live 0 t.data 0 t.len;
    t.sorted <- true
  end

let min_value t =
  if t.len = 0 then nan
  else begin
    ensure_sorted t;
    t.data.(0)
  end

let max_value t =
  if t.len = 0 then nan
  else begin
    ensure_sorted t;
    t.data.(t.len - 1)
  end

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Summary.percentile: p outside [0, 100]";
  if t.len = 0 then nan
  else begin
    ensure_sorted t;
    let rank = p /. 100.0 *. float_of_int (t.len - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (t.data.(lo) *. (1.0 -. frac)) +. (t.data.(hi) *. frac)
  end

let samples t =
  ensure_sorted t;
  Array.sub t.data 0 t.len

type histogram = { lo : float; hi : float; counts : int array }

let histogram t ~bins =
  if bins <= 0 then invalid_arg "Summary.histogram: bins must be positive";
  if t.len = 0 then invalid_arg "Summary.histogram: empty accumulator";
  let lo = min_value t and hi = max_value t in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  for i = 0 to t.len - 1 do
    let b = int_of_float ((t.data.(i) -. lo) /. width) in
    let b = if b < 0 then 0 else if b >= bins then bins - 1 else b in
    counts.(b) <- counts.(b) + 1
  done;
  { lo; hi; counts }

let pp ppf t =
  if t.len = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f min=%.3f max=%.3f"
      t.len (mean t) (percentile t 50.0) (percentile t 95.0) (percentile t 99.0)
      (min_value t) (max_value t)
