(** POP-style decomposition of a compiled model into [k] independently
    solvable subproblems (Narayanan et al., "Solving large-scale granular
    resource allocation problems efficiently with POP", SOSP 2021 — the
    approach RAS cites for scaling region-wide allocation).

    Variables are assigned to partitions by the caller ([var_part]).  Rows
    whose variables live in a single partition are copied verbatim into that
    subproblem.  Rows that straddle partitions — the coupled region-wide
    capacity rows — are split: each partition gets the row restricted to its
    own variables, with the right-hand side scaled by the partition's share
    of the row's variables (exactly [1/k] when the partition sizes are
    balanced).  Shares sum to 1, so when every subproblem satisfies its
    scaled copy the merged solution satisfies the original row regardless of
    sense.

    Subproblems are solved concurrently on a {!Solver_pool}; the merged
    solution then runs through a bounded greedy repair pass for any coupled
    row a sub-solver left violated (e.g. because a subproblem stopped at a
    limit), and is validated with {!Model.check_solution}. *)

type part_stat = {
  part : int;
  vars : int;
  rows : int;  (** rows in the subproblem, counting scaled coupled copies *)
  objective : float;  (** subproblem incumbent objective; [infinity] if none *)
  status : Branch_bound.status;
  nodes : int;
  lp_iterations : int;
  wall_s : float;
}

type stats = {
  parts : part_stat array;  (** indexed by partition, deterministic order *)
  coupled_rows : int;  (** rows that straddled >= 2 partitions *)
  merge_repairs : int;  (** greedy repair moves applied after merging *)
  unresolved_rows : int;  (** coupled rows still violated after repair *)
  wall_s : float;  (** end-to-end wall clock including merge and repair *)
}

type result = { outcome : Branch_bound.outcome; stats : stats }

val split :
  num_parts:int -> var_part:(int -> int) -> Model.std ->
  (Model.std * int array) array
(** [split ~num_parts ~var_part std] builds the subproblem models.  Each
    element is [(sub_std, to_full)] where [to_full.(j)] is the original
    index of the sub's variable [j].  [var_part v] must return a partition
    in [\[0, num_parts)].  Rows with no variables go to partition 0; empty
    partitions are dropped.  Raises [Invalid_argument] when [num_parts < 1]
    or [var_part] returns an out-of-range partition. *)

val solve :
  ?options:Branch_bound.options ->
  ?pool:Solver_pool.t ->
  ?max_repair_moves:int ->
  num_parts:int ->
  var_part:(int -> int) ->
  Model.std ->
  result
(** Splits, solves the subproblems concurrently (on [pool] when given, else
    on a transient pool sized [min num_parts recommended_domain_count]),
    merges, repairs and validates.  [options] applies to every subproblem;
    [options.initial] is projected onto each sub (invalid projections are
    ignored by {!Branch_bound.solve} itself).

    The outcome's [solution]/[objective] describe the merged full-model
    solution when it validates ([status = Feasible]); otherwise [status =
    Unknown] with no solution.  [best_bound] is [neg_infinity] and [gap]
    [infinity]: subproblem bounds do not compose into a monolith bound
    (callers wanting one should use the monolith LP relaxation).  Node and
    pivot counters are summed across subproblems. *)
