(** Presolve: problem reductions applied before the simplex / branch-and-
    bound see the model.

    Implemented reductions (applied to a fixed point, in rounds):

    - {e fixed-variable elimination}: a variable with [lb = ub] is
      substituted into every row and the objective;
    - {e singleton rows}: a row with a single variable is a bound, which is
      folded into the variable (and the row dropped);
    - {e empty rows}: dropped when trivially satisfiable, or the model is
      declared infeasible;
    - {e bound tightening for integers}: fractional bounds on integer
      variables are rounded inward;
    - {e free-row removal}: rows whose activity bounds already imply the
      constraint are dropped.

    The result keeps the original variable indexing — eliminated variables
    are simply fixed — so solutions need no back-mapping, only
    {!restore}-ing the fixed values. *)

type result =
  | Reduced of {
      std : Model.std;  (** same variable count, tightened bounds, fewer rows *)
      fixed : (int * float) list;  (** variables proven to have one value *)
      dropped_rows : int;
      kept_rows : int array;
          (** original indices of the surviving rows, in output order —
              lets callers project row-indexed artifacts (e.g. a warm
              basis) onto the reduced model *)
    }
  | Proven_infeasible of string  (** human-readable reason *)

val run : Model.std -> result
(** Apply all reductions to a fixed point.  The returned model is
    equivalent: it has the same optimal objective value, and any of its
    optimal solutions is optimal for the original after clamping fixed
    variables (which the tightened bounds already enforce). *)

val restore : fixed:(int * float) list -> float array -> float array
(** Write the fixed values back into a solution vector (in place on a
    copy). *)
