(** Mixed-integer-program modeling layer.

    A model owns variables (continuous or integer, with bounds), linear
    constraints and a linear objective.  It compiles to the dense-bound /
    sparse-column standard form consumed by {!Simplex} and {!Branch_bound}.

    Convenience builders are provided for the two linearizations the RAS
    formulation relies on: [add_pos_part] for [max(0, e)] objective terms and
    [add_max_over] for [max_G (e_G)] terms. *)

type t

type var = int
(** Variable handle: the index assigned by {!add_var}, also the index into
    solution arrays. *)

type kind = Continuous | Integer

type sense = Le | Ge | Eq

val create : unit -> t

val add_var :
  ?name:string -> ?lb:float -> ?ub:float -> ?kind:kind -> t -> var
(** New variable.  Defaults: [lb = 0.], [ub = infinity], [Continuous].
    Raises [Invalid_argument] if [lb > ub]. *)

val add_constraint : ?name:string -> t -> Lin_expr.t -> sense -> float -> int
(** [add_constraint t e sense rhs] adds the row [e sense rhs].  The
    expression's constant is folded into the right-hand side.  Returns the
    row index. *)

val set_objective : t -> Lin_expr.t -> unit
(** Sets the (minimization) objective.  The expression's constant becomes a
    fixed objective offset.  Replaces any previous objective. *)

val add_to_objective : t -> Lin_expr.t -> unit
(** Adds the expression to the current objective. *)

val add_pos_part : ?name:string -> t -> weight:float -> Lin_expr.t -> var
(** [add_pos_part t ~weight e] adds [weight * max(0, e)] to the objective by
    introducing an auxiliary continuous variable [y >= e, y >= 0] with
    objective coefficient [weight].  Correct for [weight >= 0] (raises
    [Invalid_argument] otherwise).  Returns the auxiliary variable. *)

val add_max_over : ?name:string -> t -> weight:float -> Lin_expr.t list -> var
(** [add_max_over t ~weight es] adds [weight * max_i e_i] to the objective
    via an auxiliary variable [z >= e_i] for each [i], with objective
    coefficient [weight >= 0].  The auxiliary variable is also usable in
    further constraints (RAS couples the correlated-failure buffer size into
    the capacity constraint this way).  Returns the auxiliary variable. *)

val num_vars : t -> int
val num_constraints : t -> int
val var_name : t -> var -> string
val var_kind : t -> var -> kind
val var_bounds : t -> var -> float * float
val set_var_bounds : t -> var -> lb:float -> ub:float -> unit
val objective : t -> Lin_expr.t
val objective_offset : t -> float

(** Compiled standard form: minimize [obj . x] subject to sparse rows
    [row sense rhs] and variable bounds.  Produced once; solvers treat it as
    immutable and keep per-node bound copies themselves. *)
type std = {
  nvars : int;
  nrows : int;
  obj : float array;  (** per-variable objective coefficient *)
  obj_offset : float;
  lb : float array;
  ub : float array;
  integer : bool array;
  row_sense : sense array;
  rhs : float array;
  col_ptr : int array;
      (** packed CSC column pointers, length [nvars + 1]: column [j]'s
          nonzeros are [col_ind]/[col_val] slots [col_ptr.(j)] to
          [col_ptr.(j+1) - 1] (row indices sorted ascending) *)
  col_ind : int array;  (** packed CSC row indices *)
  col_val : float array;  (** packed CSC coefficients *)
  row_cols : int array array;  (** per-row column indices (sorted) *)
  row_coefs : float array array;
  var_names : string array;
  row_names : string array;
}

val compile : t -> std
(** Validates variable indices in all rows and the objective, merges
    duplicate coefficients, and builds both row- and column-major sparse
    views. *)

val check_solution : ?tol:float -> std -> float array -> (unit, string) result
(** Verifies bounds, integrality and every row within tolerance (default
    [1e-6]); the error string names the first violated item.  Used by tests
    and by the solver's internal assertions. *)

val pp_stats : Format.formatter -> std -> unit
(** One-line size summary: variables (integer count), rows, non-zeros. *)
