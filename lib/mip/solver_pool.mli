(** Fixed-size pool of OCaml 5 domains for solving independent subproblems
    concurrently.

    Built directly on [Domain], [Mutex] and [Condition] from the standard
    library — no external dependency.  A pool of size [n] owns [n - 1]
    worker domains; the caller's domain is the [n]-th worker, so [map] on a
    pool of size 1 degenerates to an ordinary sequential [Array.map] with no
    domain ever spawned.

    The pool exists for {!Decompose}, which solves the k partitioned MIPs of
    a POP-style split in parallel, but is generic: jobs are arbitrary
    closures.  Jobs must not themselves call {!map} on the same pool. *)

type t

val create : ?domains:int -> unit -> t
(** [create ?domains ()] spawns [domains - 1] worker domains (default
    [Domain.recommended_domain_count ()], clamped to at least 1).  Raises
    [Invalid_argument] if [domains < 1]. *)

val size : t -> int
(** Number of concurrent executors ([domains], counting the caller). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f inputs] applies [f] to every element, running jobs on the
    pool's domains plus the calling domain, and returns results in input
    order (deterministic regardless of scheduling).  If any job raises, the
    first exception (by completion time) is re-raised in the caller after
    all jobs finish or are drained.  Must not be called concurrently from
    two domains on the same pool. *)

val shutdown : t -> unit
(** Joins all worker domains.  Idempotent.  The pool must not be used
    afterwards. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a transient pool, guaranteeing shutdown. *)
