type part_stat = {
  part : int;
  vars : int;
  rows : int;
  objective : float;
  status : Branch_bound.status;
  nodes : int;
  lp_iterations : int;
  wall_s : float;
}

type stats = {
  parts : part_stat array;
  coupled_rows : int;
  merge_repairs : int;
  unresolved_rows : int;
  wall_s : float;
}

type result = { outcome : Branch_bound.outcome; stats : stats }

let tol = 1e-6

(* Builds the per-partition models.  Returns the compiled subproblems (with
   their sub-index -> full-index maps and original partition ids) plus the
   number of coupled rows that had to be split. *)
let split_full ~num_parts ~var_part (std : Model.std) =
  if num_parts < 1 then invalid_arg "Decompose.split: num_parts must be >= 1";
  let n = std.Model.nvars in
  let part_of =
    Array.init n (fun v ->
        let p = var_part v in
        if p < 0 || p >= num_parts then
          invalid_arg
            (Printf.sprintf "Decompose.split: var_part %d -> %d outside [0, %d)" v p
               num_parts);
        p)
  in
  let models = Array.init num_parts (fun _ -> Model.create ()) in
  let sub_index = Array.make n (-1) in
  let to_full = Array.make num_parts [] in
  for v = 0 to n - 1 do
    let p = part_of.(v) in
    let kind = if std.Model.integer.(v) then Model.Integer else Model.Continuous in
    sub_index.(v) <-
      Model.add_var ~name:std.Model.var_names.(v) ~lb:std.Model.lb.(v)
        ~ub:std.Model.ub.(v) ~kind models.(p);
    to_full.(p) <- v :: to_full.(p)
  done;
  (* rows without variables still assert feasibility somewhere concrete *)
  let home =
    let h = ref 0 in
    (try
       for p = 0 to num_parts - 1 do
         if to_full.(p) <> [] then begin
           h := p;
           raise Exit
         end
       done
     with Exit -> ());
    !h
  in
  let coupled = ref 0 in
  for i = 0 to std.Model.nrows - 1 do
    let cols = std.Model.row_cols.(i) and coefs = std.Model.row_coefs.(i) in
    let name = std.Model.row_names.(i) in
    let sense = std.Model.row_sense.(i) and rhs = std.Model.rhs.(i) in
    if Array.length cols = 0 then
      ignore (Model.add_constraint ~name models.(home) (Lin_expr.of_terms []) sense rhs)
    else begin
      let counts = Array.make num_parts 0 in
      Array.iter (fun v -> counts.(part_of.(v)) <- counts.(part_of.(v)) + 1) cols;
      let spread = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 counts in
      if spread = 1 then begin
        let p = part_of.(cols.(0)) in
        let terms =
          Array.to_list (Array.mapi (fun k v -> (coefs.(k), sub_index.(v))) cols)
        in
        ignore (Model.add_constraint ~name models.(p) (Lin_expr.of_terms terms) sense rhs)
      end
      else begin
        (* coupled row: each partition keeps its own variables with the rhs
           scaled by its share of the row.  Shares sum to 1, so sub-feasible
           copies merge into a feasible original row for any sense. *)
        incr coupled;
        let total = float_of_int (Array.length cols) in
        for p = 0 to num_parts - 1 do
          if counts.(p) > 0 then begin
            let share = float_of_int counts.(p) /. total in
            let terms = ref [] in
            Array.iteri
              (fun k v -> if part_of.(v) = p then terms := (coefs.(k), sub_index.(v)) :: !terms)
              cols;
            ignore
              (Model.add_constraint
                 ~name:(Printf.sprintf "%s#%d" name p)
                 models.(p) (Lin_expr.of_terms !terms) sense (rhs *. share))
          end
        done
      end
    end
  done;
  (* objective restricted per partition; the offset stays with the monolith *)
  let obj_terms = Array.make num_parts [] in
  for v = 0 to n - 1 do
    let c = std.Model.obj.(v) in
    if c <> 0.0 then obj_terms.(part_of.(v)) <- (c, sub_index.(v)) :: obj_terms.(part_of.(v))
  done;
  let subs = ref [] in
  for p = num_parts - 1 downto 0 do
    if to_full.(p) <> [] then begin
      Model.set_objective models.(p) (Lin_expr.of_terms obj_terms.(p));
      subs := (p, Model.compile models.(p), Array.of_list (List.rev to_full.(p))) :: !subs
    end
  done;
  (Array.of_list !subs, !coupled)

let split ~num_parts ~var_part std =
  let subs, _ = split_full ~num_parts ~var_part std in
  Array.map (fun (_, sub, to_full) -> (sub, to_full)) subs

let activity (std : Model.std) x i =
  let cols = std.Model.row_cols.(i) and coefs = std.Model.row_coefs.(i) in
  let acc = ref 0.0 in
  for k = 0 to Array.length cols - 1 do
    acc := !acc +. (coefs.(k) *. x.(cols.(k)))
  done;
  !acc

let violation (std : Model.std) x i =
  let act = activity std x i in
  let rhs = std.Model.rhs.(i) in
  match std.Model.row_sense.(i) with
  | Model.Le -> act -. rhs > tol
  | Model.Ge -> rhs -. act > tol
  | Model.Eq -> Float.abs (act -. rhs) > tol

(* Greedy bounded repair: walk each violated row's variables in decreasing
   |coefficient| order and push them toward their bounds until the row
   holds.  Inequalities may overshoot safely; equalities move integers in
   whole units and accept a residual when the coefficients cannot express
   the deficit. *)
let repair ?(max_moves = 1000) (std : Model.std) x =
  let moves = ref 0 in
  let adjust i ~need ~dir ~exact =
    let cols = std.Model.row_cols.(i) and coefs = std.Model.row_coefs.(i) in
    let order = Array.init (Array.length cols) Fun.id in
    Array.sort
      (fun a b -> Float.compare (Float.abs coefs.(b)) (Float.abs coefs.(a)))
      order;
    let remaining = ref need in
    let k = ref 0 in
    while !remaining > tol && !k < Array.length order && !moves < max_moves do
      let idx = order.(!k) in
      incr k;
      let j = cols.(idx) and c = coefs.(idx) in
      if Float.abs c > 1e-12 then begin
        (* signed step on x_j that changes the activity by [dir * remaining] *)
        let want = float_of_int dir *. !remaining /. c in
        let headroom =
          if want >= 0.0 then std.Model.ub.(j) -. x.(j) else std.Model.lb.(j) -. x.(j)
        in
        let step =
          if want >= 0.0 then Float.min want (Float.max 0.0 headroom)
          else Float.max want (Float.min 0.0 headroom)
        in
        let step =
          if not std.Model.integer.(j) then step
          else if step >= 0.0 then
            let cap = Float.floor (Float.max 0.0 headroom) in
            if exact then Float.min (Float.floor step) cap
            else Float.min (Float.ceil step) cap
          else
            let cap = Float.ceil (Float.min 0.0 headroom) in
            if exact then Float.max (Float.ceil step) cap
            else Float.max (Float.floor step) cap
        in
        if step <> 0.0 then begin
          x.(j) <- x.(j) +. step;
          remaining := !remaining -. (float_of_int dir *. c *. step);
          incr moves
        end
      end
    done
  in
  let repair_row i =
    let act = activity std x i in
    let rhs = std.Model.rhs.(i) in
    match std.Model.row_sense.(i) with
    | Model.Le -> if act -. rhs > tol then adjust i ~need:(act -. rhs) ~dir:(-1) ~exact:false
    | Model.Ge -> if rhs -. act > tol then adjust i ~need:(rhs -. act) ~dir:1 ~exact:false
    | Model.Eq ->
      if act -. rhs > tol then adjust i ~need:(act -. rhs) ~dir:(-1) ~exact:true
      else if rhs -. act > tol then adjust i ~need:(rhs -. act) ~dir:1 ~exact:true
  in
  let any_violation () =
    let rec loop i = i < std.Model.nrows && (violation std x i || loop (i + 1)) in
    loop 0
  in
  let pass = ref 0 in
  while !pass < 5 && !moves < max_moves && any_violation () do
    incr pass;
    for i = 0 to std.Model.nrows - 1 do
      repair_row i
    done
  done;
  let unresolved = ref 0 in
  for i = 0 to std.Model.nrows - 1 do
    if violation std x i then incr unresolved
  done;
  (!moves, !unresolved)

let solve ?(options = Branch_bound.default_options) ?pool ?(max_repair_moves = 1000)
    ~num_parts ~var_part (std : Model.std) =
  let t0 = Unix.gettimeofday () in
  let subs, coupled_rows = split_full ~num_parts ~var_part std in
  let run (_, sub_std, to_full) =
    let opts =
      match options.Branch_bound.initial with
      | None -> options
      | Some x0 ->
        (* projection of a full-model incumbent; Branch_bound re-checks it
           against the sub's own rows and drops it when invalid *)
        { options with Branch_bound.initial = Some (Array.map (fun v -> x0.(v)) to_full) }
    in
    let t = Unix.gettimeofday () in
    let out = Branch_bound.solve ~options:opts sub_std in
    (out, Unix.gettimeofday () -. t)
  in
  let results =
    match pool with
    | Some p -> Solver_pool.map p run subs
    | None ->
      let domains =
        min (max 1 (Array.length subs)) (max 1 (Domain.recommended_domain_count ()))
      in
      Solver_pool.with_pool ~domains (fun p -> Solver_pool.map p run subs)
  in
  (* merge: sub solutions write through their index maps; variables of subs
     that produced no incumbent fall back to the bound closest to zero *)
  let full =
    Array.init std.Model.nvars (fun v ->
        Float.min std.Model.ub.(v) (Float.max std.Model.lb.(v) 0.0))
  in
  Array.iteri
    (fun k (_, _, to_full) ->
      let out, _ = results.(k) in
      match out.Branch_bound.solution with
      | Some x -> Array.iteri (fun j v -> full.(v) <- x.(j)) to_full
      | None -> ())
    subs;
  let merge_repairs, unresolved_rows = repair ~max_moves:max_repair_moves std full in
  let feasible = Model.check_solution std full = Ok () in
  let objective =
    if not feasible then infinity
    else begin
      let acc = ref std.Model.obj_offset in
      Array.iteri (fun v c -> acc := !acc +. (c *. full.(v))) std.Model.obj;
      !acc
    end
  in
  let sum f = Array.fold_left (fun a (out, _) -> a + f out) 0 results in
  let outcome =
    {
      Branch_bound.status = (if feasible then Branch_bound.Feasible else Branch_bound.Unknown);
      solution = (if feasible then Some full else None);
      objective;
      (* sub bounds do not compose into a monolith bound: each sub ignores
         the others' objective terms and sees scaled capacities *)
      best_bound = neg_infinity;
      gap = infinity;
      nodes = sum (fun o -> o.Branch_bound.nodes);
      lp_iterations = sum (fun o -> o.Branch_bound.lp_iterations);
      warm_started_nodes = sum (fun o -> o.Branch_bound.warm_started_nodes);
      dual_restarted_nodes = sum (fun o -> o.Branch_bound.dual_restarted_nodes);
      dual_pivots = sum (fun o -> o.Branch_bound.dual_pivots);
      bound_flips = sum (fun o -> o.Branch_bound.bound_flips);
      bland_pivots = sum (fun o -> o.Branch_bound.bland_pivots);
      (* worst sub-seed outcome: a single rejected slice means the merged
         warm start was not fully honoured *)
      seed =
        Array.fold_left
          (fun acc (out, _) ->
            match (acc, out.Branch_bound.seed) with
            | Branch_bound.Seed_rejected, _ | _, Branch_bound.Seed_rejected ->
              Branch_bound.Seed_rejected
            | Branch_bound.Seed_repaired, _ | _, Branch_bound.Seed_repaired ->
              Branch_bound.Seed_repaired
            | Branch_bound.Seed_accepted, _ | _, Branch_bound.Seed_accepted ->
              Branch_bound.Seed_accepted
            | Branch_bound.Seed_none, Branch_bound.Seed_none -> Branch_bound.Seed_none)
          Branch_bound.Seed_none results;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  let parts =
    Array.mapi
      (fun k (p, sub_std, _) ->
        let out, wall = results.(k) in
        {
          part = p;
          vars = sub_std.Model.nvars;
          rows = sub_std.Model.nrows;
          objective = out.Branch_bound.objective;
          status = out.Branch_bound.status;
          nodes = out.Branch_bound.nodes;
          lp_iterations = out.Branch_bound.lp_iterations;
          wall_s = wall;
        })
      subs
  in
  {
    outcome;
    stats =
      {
        parts;
        coupled_rows;
        merge_repairs;
        unresolved_rows;
        wall_s = outcome.Branch_bound.elapsed;
      };
  }
