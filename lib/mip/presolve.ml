type result =
  | Reduced of {
      std : Model.std;
      fixed : (int * float) list;
      dropped_rows : int;
      kept_rows : int array;
    }
  | Proven_infeasible of string

let tol = 1e-9

(* Working representation: mutable bounds plus mutable row term lists (kept
   as assoc lists var -> coef) with adjustable rhs and a live flag. *)
type wrow = {
  mutable terms : (int * float) list;
  mutable rhs : float;
  sense : Model.sense;
  name : string;
  mutable live : bool;
}

exception Infeasible of string

let run (std : Model.std) =
  let n = std.Model.nvars in
  let lb = Array.copy std.Model.lb and ub = Array.copy std.Model.ub in
  let obj = Array.copy std.Model.obj in
  let obj_offset = ref std.Model.obj_offset in
  let rows =
    Array.init std.Model.nrows (fun i ->
        {
          terms =
            Array.to_list
              (Array.mapi (fun k c -> (std.Model.row_cols.(i).(k), c)) std.Model.row_coefs.(i));
          rhs = std.Model.rhs.(i);
          sense = std.Model.row_sense.(i);
          name = std.Model.row_names.(i);
          live = true;
        })
  in
  let is_fixed = Array.make n false in
  let changed = ref true in
  let tighten_lb j v =
    if v > lb.(j) +. tol then begin
      lb.(j) <- v;
      changed := true
    end
  in
  let tighten_ub j v =
    if v < ub.(j) -. tol then begin
      ub.(j) <- v;
      changed := true
    end
  in
  let check_bounds j =
    if lb.(j) > ub.(j) +. 1e-7 then
      raise
        (Infeasible
           (Printf.sprintf "variable %s has empty domain [%g, %g]" std.Model.var_names.(j)
              lb.(j) ub.(j)))
  in
  let round_integer j =
    if std.Model.integer.(j) then begin
      if Float.is_finite lb.(j) then begin
        let r = Float.ceil (lb.(j) -. 1e-7) in
        if r > lb.(j) +. tol then begin
          lb.(j) <- r;
          changed := true
        end
      end;
      if Float.is_finite ub.(j) then begin
        let r = Float.floor (ub.(j) +. 1e-7) in
        if r < ub.(j) -. tol then begin
          ub.(j) <- r;
          changed := true
        end
      end
    end
  in
  (* substitute a newly fixed variable out of every live row *)
  let fix_variable j =
    if not is_fixed.(j) then begin
      is_fixed.(j) <- true;
      let v = lb.(j) in
      Array.iter
        (fun r ->
          if r.live then begin
            match List.assoc_opt j r.terms with
            | Some c ->
              r.terms <- List.filter (fun (k, _) -> k <> j) r.terms;
              r.rhs <- r.rhs -. (c *. v)
            | None -> ()
          end)
        rows;
      if obj.(j) <> 0.0 then begin
        obj_offset := !obj_offset +. (obj.(j) *. v);
        obj.(j) <- 0.0
      end;
      changed := true
    end
  in
  let activity_bounds r =
    List.fold_left
      (fun (lo, hi) (j, c) ->
        (* a (near-)zero coefficient contributes nothing — and multiplying
           it against an infinite bound would poison both accumulators with
           NaN, silently disabling redundancy/infeasibility detection for
           the whole row *)
        if Float.abs c <= tol then (lo, hi)
        else
          let term_lo, term_hi =
            if c >= 0.0 then (c *. lb.(j), c *. ub.(j)) else (c *. ub.(j), c *. lb.(j))
          in
          (lo +. term_lo, hi +. term_hi))
      (0.0, 0.0) r.terms
  in
  let dropped = ref 0 in
  let drop r =
    if r.live then begin
      r.live <- false;
      incr dropped;
      changed := true
    end
  in
  let rounds = ref 0 in
  (try
     while !changed && !rounds < 10 do
       changed := false;
       incr rounds;
       for j = 0 to n - 1 do
         round_integer j;
         check_bounds j;
         if (not is_fixed.(j)) && Float.is_finite lb.(j) && ub.(j) -. lb.(j) <= tol then
           fix_variable j
       done;
       Array.iter
         (fun r ->
           if r.live then begin
             match r.terms with
             | [] ->
               (* empty row: trivially true or the model is infeasible *)
               let ok =
                 match r.sense with
                 | Model.Le -> 0.0 <= r.rhs +. 1e-7
                 | Model.Ge -> 0.0 >= r.rhs -. 1e-7
                 | Model.Eq -> Float.abs r.rhs <= 1e-7
               in
               if ok then drop r
               else raise (Infeasible (Printf.sprintf "row %s is unsatisfiable" r.name))
             | [ (j, c) ] when Float.abs c > tol ->
               (* singleton row becomes a bound *)
               let b = r.rhs /. c in
               (match (r.sense, c > 0.0) with
               | Model.Le, true | Model.Ge, false -> tighten_ub j b
               | Model.Le, false | Model.Ge, true -> tighten_lb j b
               | Model.Eq, _ ->
                 tighten_lb j b;
                 tighten_ub j b);
               check_bounds j;
               drop r
             | _ ->
               (* redundant-row detection from activity bounds *)
               let lo, hi = activity_bounds r in
               (match r.sense with
               | Model.Le ->
                 if hi <= r.rhs +. 1e-7 then drop r
                 else if lo > r.rhs +. 1e-7 then
                   raise (Infeasible (Printf.sprintf "row %s cannot be satisfied" r.name))
               | Model.Ge ->
                 if lo >= r.rhs -. 1e-7 then drop r
                 else if hi < r.rhs -. 1e-7 then
                   raise (Infeasible (Printf.sprintf "row %s cannot be satisfied" r.name))
               | Model.Eq ->
                 if lo > r.rhs +. 1e-7 || hi < r.rhs -. 1e-7 then
                   raise (Infeasible (Printf.sprintf "row %s cannot be satisfied" r.name)))
           end)
         rows
     done;
     (* rebuild a compact std with identical variable indexing *)
     let kept = ref [] in
     Array.iteri (fun i r -> if r.live then kept := i :: !kept) rows;
     let kept_rows = Array.of_list (List.rev !kept) in
     let live_rows = Array.to_list rows |> List.filter (fun r -> r.live) in
     let nrows = List.length live_rows in
     let row_cols = Array.make nrows [||] and row_coefs = Array.make nrows [||] in
     let row_sense = Array.make nrows Model.Le and rhs = Array.make nrows 0.0 in
     let row_names = Array.make nrows "" in
     List.iteri
       (fun i r ->
         let terms = List.sort compare r.terms in
         row_cols.(i) <- Array.of_list (List.map fst terms);
         row_coefs.(i) <- Array.of_list (List.map snd terms);
         row_sense.(i) <- r.sense;
         rhs.(i) <- r.rhs;
         row_names.(i) <- r.name)
       live_rows;
     let col_count = Array.make n 0 in
     Array.iter (Array.iter (fun j -> col_count.(j) <- col_count.(j) + 1)) row_cols;
     (* packed CSC, derived exactly as Model.compile derives it *)
     let col_ptr = Array.make (n + 1) 0 in
     for j = 0 to n - 1 do
       col_ptr.(j + 1) <- col_ptr.(j) + col_count.(j)
     done;
     let col_ind = Array.make col_ptr.(n) 0 in
     let col_val = Array.make col_ptr.(n) 0.0 in
     let fill = Array.blit col_ptr 0 col_count 0 n; col_count in
     Array.iteri
       (fun i cols ->
         Array.iteri
           (fun k j ->
             col_ind.(fill.(j)) <- i;
             col_val.(fill.(j)) <- row_coefs.(i).(k);
             fill.(j) <- fill.(j) + 1)
           cols)
       row_cols;
     let fixed = ref [] in
     for j = n - 1 downto 0 do
       if is_fixed.(j) then fixed := (j, lb.(j)) :: !fixed
     done;
     Reduced
       {
         std =
           {
             std with
             Model.nrows;
             obj;
             obj_offset = !obj_offset;
             lb;
             ub;
             row_sense;
             rhs;
             col_ptr;
             col_ind;
             col_val;
             row_cols;
             row_coefs;
             row_names;
           };
         fixed = !fixed;
         dropped_rows = !dropped;
         kept_rows;
       }
   with Infeasible reason -> Proven_infeasible reason)

let restore ~fixed solution =
  let out = Array.copy solution in
  List.iter (fun (j, v) -> out.(j) <- v) fixed;
  out
