(* Factorized simplex basis.  Two representations behind one interface:

   - Lu: sparse LU computed with Markowitz pivoting (threshold partial
     pivoting for stability, minimum fill-in cost for sparsity), extended
     between refactorizations by a product-form eta file.  All solves run
     through the triangular factors and the etas, touching factor nonzeros
     only.
   - Dense: the dense Gauss-Jordan basis inverse the solver originally
     maintained, kept verbatim as the differential-testing oracle.

   Index conventions (shared with Simplex): the basis matrix B is m x m with
   rows = constraint rows and column i = constraint column basis.(i) (a
   "basis position").  FTRAN inputs are row-indexed and outputs basis-
   position-indexed; BTRAN is the reverse. *)

type kind = Dense | Lu

(* Solve-kernel selection, orthogonal to [kind].  [Hypersparse] runs the
   triangular solves by graph traversal over the factor patterns, touching
   only steps reachable from the right-hand side's nonzeros; [Dense_oracle]
   runs the same arithmetic as full scans over every step.  Both perform
   bit-identical floating-point operations on every reachable entry (the
   skipped entries are structural zeros), so they are differentially
   comparable pivot-for-pivot — the oracle is what pins the traversal
   code. *)
type kernels = Hypersparse | Dense_oracle

let kernels_of_env () =
  match Sys.getenv_opt "RAS_LP_KERNELS" with
  | Some ("dense" | "DENSE" | "dense-oracle" | "dense_oracle") -> Dense_oracle
  | Some _ | None -> Hypersparse

(* Sparse vector: a packed, ascending index list over a dense value scratch
   (zero outside the pattern).  The solve results below are returned in
   svecs owned by the factorization; each is valid until the next call of
   the same solve direction on the same [t]. *)
module Svec = struct
  type t = { mutable n : int; idx : int array; vals : float array }

  let make m = { n = 0; idx = Array.make m 0; vals = Array.make m 0.0 }

  (* zero the backing store and forget the pattern *)
  let clear t =
    for u = 0 to t.n - 1 do
      t.vals.(t.idx.(u)) <- 0.0
    done;
    t.n <- 0
end

exception Singular

(* Product-form eta from the pivot alpha = B^-1 a_q entering at basis
   position [er]: E = I - (alpha - e_r) e_r^T / alpha_r, so the new inverse
   is E B^-1.  Stored sparse: off-pivot nonzeros of alpha plus the pivot. *)
type eta = {
  er : int;
  epiv : float;
  erows : int array;  (* basis positions i <> er with alpha_i <> 0 *)
  evals : float array;
}

type lu = {
  rperm : int array;  (* elimination step -> constraint row *)
  rpos : int array;  (* constraint row -> elimination step *)
  cperm : int array;  (* elimination step -> basis position *)
  cpos : int array;  (* basis position -> elimination step *)
  lrows : int array array;  (* L column k: constraint rows below the pivot *)
  lvals : float array array;  (* matching multipliers *)
  ucols : int array array;  (* U row k: later elimination steps *)
  uvals : float array array;
  udiag : float array;
  (* pattern-only views for the hypersparse reachability passes: [lsteps] is
     [lrows] with constraint rows mapped to their elimination steps, and
     [ltr]/[utr] are the transposed patterns of [lsteps]/[ucols] (step j ->
     steps k < j whose L column / U row contains j) *)
  lsteps : int array array;
  ltr : int array array;
  utr : int array array;
  mutable etas : eta array;
  mutable neta : int;
  mutable ennz : int;
}

type dense = { mutable inv : float array array; nzbuf : int array }

type repr = Dense_r of dense | Lu_r of lu

type t = {
  m : int;
  knd : kind;
  mutable kern : kernels;
  mutable repr : repr;
  mutable updates : int;
  update_limit : int;
  mutable err : float;
  mutable refactors : int;
  (* solve scratch owned by the factorization: the two svec results (FTRAN
     and BTRAN directions are separate so a pivot can hold both at once), a
     step-indexed workspace [wz] kept all-zero between calls, its pattern
     [wzi], a traversal worklist, position/step marks, and a dense-path
     buffer [wd] for the full-scan solves *)
  sf : Svec.t;
  sb : Svec.t;
  wz : float array;
  wzi : int array;
  wstk : int array;
  wmark : int array;
  mutable wstamp : int;
  wd : float array;
  (* per-solve kernel counters (reset by {!reset_stats}) *)
  mutable ftran_calls : int;
  mutable ftran_nnz : int;
  mutable btran_calls : int;
  mutable btran_nnz : int;
  (* invoked after every successful refactorization: the owning solve hangs
     state off the factorization's lifetime (Devex pricing weights are only
     meaningful relative to the basis they were accumulated on, so the
     simplex resets them here) *)
  mutable on_refactor : unit -> unit;
}

(* Update-chain budgets: the dense rank-one update is cheap and accurate
   enough to run for a long time (the historical refactor-every-300-pivots
   policy); the eta file also costs one pass per solve, so it is kept
   short. *)
let dense_update_limit = 300
let lu_update_limit = 48

(* Accumulated-error threshold: each accepted pivot contributes an estimate
   proportional to its growth factor; crossing this forces refactorization
   even when the chain is short. *)
let err_limit = 1e-8

(* A pivot below either bound cannot be applied stably: absolute floor, and
   a relative test against the largest entry of the FTRAN'd column. *)
let pivot_abs_min = 1e-9
let pivot_rel_min = 1e-7

let identity_dense m =
  Array.init m (fun i -> Array.init m (fun k -> if i = k then 1.0 else 0.0))

let identity_lu m =
  {
    rperm = Array.init m Fun.id;
    rpos = Array.init m Fun.id;
    cperm = Array.init m Fun.id;
    cpos = Array.init m Fun.id;
    lrows = Array.make m [||];
    lvals = Array.make m [||];
    ucols = Array.make m [||];
    uvals = Array.make m [||];
    udiag = Array.make m 1.0;
    lsteps = Array.make m [||];
    ltr = Array.make m [||];
    utr = Array.make m [||];
    etas = [||];
    neta = 0;
    ennz = 0;
  }

let create ?kernels knd ~m =
  {
    m;
    knd;
    kern = (match kernels with Some k -> k | None -> kernels_of_env ());
    repr =
      (match knd with
      | Dense -> Dense_r { inv = identity_dense m; nzbuf = Array.make m 0 }
      | Lu -> Lu_r (identity_lu m));
    updates = 0;
    update_limit = (match knd with Dense -> dense_update_limit | Lu -> lu_update_limit);
    err = 0.0;
    refactors = 0;
    sf = Svec.make m;
    sb = Svec.make m;
    wz = Array.make m 0.0;
    wzi = Array.make m 0;
    wstk = Array.make m 0;
    wmark = Array.make m (-1);
    wstamp = 0;
    wd = Array.make m 0.0;
    ftran_calls = 0;
    ftran_nnz = 0;
    btran_calls = 0;
    btran_nnz = 0;
    on_refactor = ignore;
  }

let kind t = t.knd
let dim t = t.m
let kernels t = t.kern
let set_kernels t k = t.kern <- k

type solve_stats = {
  ftran_calls : int;
  ftran_nnz : int;
  btran_calls : int;
  btran_nnz : int;
}

let solve_stats (t : t) =
  {
    ftran_calls = t.ftran_calls;
    ftran_nnz = t.ftran_nnz;
    btran_calls = t.btran_calls;
    btran_nnz = t.btran_nnz;
  }

let reset_stats (t : t) =
  t.ftran_calls <- 0;
  t.ftran_nnz <- 0;
  t.btran_calls <- 0;
  t.btran_nnz <- 0
let set_refactor_hook t f = t.on_refactor <- f
let updates_since_refactor t = t.updates
let refactor_count t = t.refactors

let eta_nnz t = match t.repr with Dense_r _ -> 0 | Lu_r lu -> lu.ennz

let should_refactorize t = t.updates >= t.update_limit || t.err > err_limit

let set_identity t =
  (match t.repr with
  | Dense_r d -> d.inv <- identity_dense t.m
  | Lu_r _ -> t.repr <- Lu_r (identity_lu t.m));
  t.updates <- 0;
  t.err <- 0.0

let copy t =
  {
    t with
    (* the hook points into the donor solve's state; a copy starts detached *)
    on_refactor = ignore;
    (* solve scratch and counters are per-holder, never shared *)
    sf = Svec.make t.m;
    sb = Svec.make t.m;
    wz = Array.make t.m 0.0;
    wzi = Array.make t.m 0;
    wstk = Array.make t.m 0;
    wmark = Array.make t.m (-1);
    wstamp = 0;
    wd = Array.make t.m 0.0;
    ftran_calls = 0;
    ftran_nnz = 0;
    btran_calls = 0;
    btran_nnz = 0;
    repr =
      (match t.repr with
      | Dense_r d -> Dense_r { inv = Array.map Array.copy d.inv; nzbuf = Array.make t.m 0 }
      | Lu_r lu ->
        Lu_r
          {
            lu with
            rperm = Array.copy lu.rperm;
            rpos = Array.copy lu.rpos;
            cperm = Array.copy lu.cperm;
            cpos = Array.copy lu.cpos;
            etas = Array.sub lu.etas 0 lu.neta;
            (* factor bodies (lrows .. udiag) are immutable after
               factorization, so sharing them between copies is safe *)
          });
  }

(* ------------------------------------------------------------------ *)
(* Dense backend: Gauss-Jordan refactorization and rank-one updates    *)

let dense_refactorize m ~basis ~col =
  let b = Array.make_matrix m m 0.0 in
  for i = 0 to m - 1 do
    col basis.(i) (fun r c -> b.(r).(i) <- c)
  done;
  let inv = Array.init m (fun i -> Array.init m (fun k -> if i = k then 1.0 else 0.0)) in
  for c = 0 to m - 1 do
    let best = ref c in
    for r = c + 1 to m - 1 do
      if Float.abs b.(r).(c) > Float.abs b.(!best).(c) then best := r
    done;
    if Float.abs b.(!best).(c) < 1e-12 then raise Singular;
    if !best <> c then begin
      let tmp = b.(c) in
      b.(c) <- b.(!best);
      b.(!best) <- tmp;
      let tmp = inv.(c) in
      inv.(c) <- inv.(!best);
      inv.(!best) <- tmp
    end;
    let piv = b.(c).(c) in
    for k = 0 to m - 1 do
      b.(c).(k) <- b.(c).(k) /. piv;
      inv.(c).(k) <- inv.(c).(k) /. piv
    done;
    for r = 0 to m - 1 do
      if r <> c then begin
        let f = b.(r).(c) in
        if f <> 0.0 then
          for k = 0 to m - 1 do
            b.(r).(k) <- b.(r).(k) -. (f *. b.(c).(k));
            inv.(r).(k) <- inv.(r).(k) -. (f *. inv.(c).(k))
          done
      end
    done
  done;
  inv

(* Rank-one update of the explicit inverse through the nonzero pattern of
   the scaled pivot row (sparse whenever the basis is near an identity, the
   common warm-start case). *)
let dense_update m d ~alpha ~row =
  let piv = alpha.(row) in
  let brow = d.inv.(row) in
  let nz = d.nzbuf in
  let nnz = ref 0 in
  for k = 0 to m - 1 do
    let v = brow.(k) in
    if v <> 0.0 then begin
      brow.(k) <- v /. piv;
      nz.(!nnz) <- k;
      incr nnz
    end
  done;
  let nnz = !nnz in
  let sparse_row = 2 * nnz < m in
  for i = 0 to m - 1 do
    if i <> row then begin
      let f = alpha.(i) in
      if f <> 0.0 then begin
        let bi = d.inv.(i) in
        if sparse_row then
          for u = 0 to nnz - 1 do
            let k = nz.(u) in
            bi.(k) <- bi.(k) -. (f *. brow.(k))
          done
        else
          for k = 0 to m - 1 do
            bi.(k) <- bi.(k) -. (f *. brow.(k))
          done
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Sparse LU factorization with Markowitz pivoting                      *)

(* Threshold for accepting a pivot relative to its column's largest entry:
   larger = more stable, smaller = sparser factors. *)
let markowitz_tau = 0.1

(* How many smallest-count candidate columns to examine per step. *)
let markowitz_cands = 4

let lu_refactorize ?deficient m ~basis ~col =
  (* Working matrix: rows as parallel growable (col, val) arrays; column
     patterns as growable row lists that may carry stale entries (lazily
     compacted against the row store).

     When [deficient] is supplied, a rank-deficient basis does not raise
     {!Singular}: columns that prove dependent (empty or numerically zero
     once eliminated against the pivots chosen so far) are dropped, and
     after the main elimination each leftover row [r] gets a unit column
     [e_r] at one of the dropped basis positions.  Because a leftover row
     was never a pivot row, [e_r] passes through every eliminated step
     untouched (no pivot row has an entry in it), so the tail steps factor
     trivially with pivot value 1 and empty L/U rows.  The (position, row)
     substitutions are reported through [deficient] so the caller can
     patch its basis bookkeeping. *)
  let rcol = Array.make m [||] and rval = Array.make m [||] in
  let rlen = Array.make m 0 in
  let crow = Array.make m [||] in
  let clen = Array.make m 0 in
  let row_push r c v =
    let n = rlen.(r) in
    if n = Array.length rcol.(r) then begin
      let cap = Stdlib.max 4 (2 * n) in
      let nc = Array.make cap 0 and nv = Array.make cap 0.0 in
      Array.blit rcol.(r) 0 nc 0 n;
      Array.blit rval.(r) 0 nv 0 n;
      rcol.(r) <- nc;
      rval.(r) <- nv
    end;
    rcol.(r).(n) <- c;
    rval.(r).(n) <- v;
    rlen.(r) <- n + 1
  in
  let col_push c r =
    let n = clen.(c) in
    if n = Array.length crow.(c) then begin
      let cap = Stdlib.max 4 (2 * n) in
      let nr = Array.make cap 0 in
      Array.blit crow.(c) 0 nr 0 n;
      crow.(c) <- nr
    end;
    crow.(c).(n) <- r;
    clen.(c) <- n + 1
  in
  let row_find r c =
    let a = rcol.(r) and n = rlen.(r) in
    let rec go i = if i >= n then -1 else if a.(i) = c then i else go (i + 1) in
    go 0
  in
  let row_delete r idx =
    let n = rlen.(r) - 1 in
    rcol.(r).(idx) <- rcol.(r).(n);
    rval.(r).(idx) <- rval.(r).(n);
    rlen.(r) <- n
  in
  for i = 0 to m - 1 do
    col basis.(i) (fun r v ->
        if v <> 0.0 then begin
          row_push r i v;
          col_push i r
        end)
  done;
  let row_active = Array.make m true and col_active = Array.make m true in
  (* scratch for compacted column entries *)
  let cand_rows = Array.make m 0 and cand_vals = Array.make m 0.0 in
  let seen = Array.make m (-1) in
  let tick = ref 0 in
  (* Rebuild column c's list from live row entries (dedup via [seen]);
     returns the live count with (row, value) pairs in the scratch arrays. *)
  let compact_col c =
    incr tick;
    let t0 = !tick in
    let a = crow.(c) in
    let n = ref 0 in
    for u = 0 to clen.(c) - 1 do
      let r = a.(u) in
      if row_active.(r) && seen.(r) <> t0 then begin
        let idx = row_find r c in
        if idx >= 0 then begin
          seen.(r) <- t0;
          a.(!n) <- r;
          cand_rows.(!n) <- r;
          cand_vals.(!n) <- rval.(r).(idx);
          incr n
        end
      end
    done;
    clen.(c) <- !n;
    !n
  in
  (* outputs *)
  let rperm = Array.make m 0 and rpos = Array.make m 0 in
  let cperm = Array.make m 0 and cpos = Array.make m 0 in
  let lrows = Array.make m [||] and lvals = Array.make m [||] in
  let ucols = Array.make m [||] and uvals = Array.make m [||] in
  let udiag = Array.make m 0.0 in
  (* per-step scratch *)
  let urow_c = Array.make m 0 and urow_v = Array.make m 0.0 in
  let lrow_r = Array.make m 0 and lrow_v = Array.make m 0.0 in
  let repair = deficient <> None in
  let dropped = ref [] in
  (* basis positions dropped as dependent (repair mode only) *)
  let kstep = ref 0 in
  let ncols_left = ref m in
  while !ncols_left > 0 do
    (* --- pivot selection: best Markowitz cost among eligible entries of a
       few smallest-count active columns --- *)
    let cands = Array.make markowitz_cands (-1) in
    let ncand = ref 0 in
    for c = 0 to m - 1 do
      if col_active.(c) then begin
        (* insertion into the sorted candidate window by (possibly stale,
           hence over-estimated) column count *)
        let i = ref !ncand in
        while !i > 0 && clen.(cands.(!i - 1)) > clen.(c) do
          if !i < markowitz_cands then cands.(!i) <- cands.(!i - 1);
          decr i
        done;
        if !i < markowitz_cands then begin
          cands.(!i) <- c;
          if !ncand < markowitz_cands then incr ncand
        end
      end
    done;
    if !ncand = 0 then raise Singular;
    let best_r = ref (-1) and best_c = ref (-1) and best_v = ref 0.0 in
    let best_cost = ref max_int and best_mag = ref 0.0 in
    for t = 0 to !ncand - 1 do
      let c = cands.(t) in
      if c >= 0 && col_active.(c) then begin
        let n = compact_col c in
        let colmax = ref 0.0 in
        for u = 0 to n - 1 do
          let a = Float.abs cand_vals.(u) in
          if a > !colmax then colmax := a
        done;
        if n = 0 || !colmax < 1e-12 then begin
          if not repair then raise Singular;
          (* dependent on the pivots chosen so far: drop from the basis *)
          col_active.(c) <- false;
          decr ncols_left;
          dropped := c :: !dropped
        end
        else begin
          let thresh = markowitz_tau *. !colmax in
          for u = 0 to n - 1 do
            let v = cand_vals.(u) in
            let a = Float.abs v in
            if a >= thresh then begin
              let r = cand_rows.(u) in
              let cost = (rlen.(r) - 1) * (n - 1) in
              if cost < !best_cost || (cost = !best_cost && a > !best_mag) then begin
                best_cost := cost;
                best_mag := a;
                best_r := r;
                best_c := c;
                best_v := v
              end
            end
          done
        end
      end
    done;
    if !best_r < 0 then begin
      (* every candidate this round proved dependent: in repair mode they
         were dropped above (so the reselection loop makes progress), in
         strict mode the basis is singular *)
      if not repair then raise Singular
    end
    else begin
    let k = !kstep in
    incr kstep;
    decr ncols_left;
    let prow = !best_r and pcol = !best_c and pv = !best_v in
    rperm.(k) <- prow;
    rpos.(prow) <- k;
    cperm.(k) <- pcol;
    cpos.(pcol) <- k;
    row_active.(prow) <- false;
    col_active.(pcol) <- false;
    udiag.(k) <- pv;
    (* --- U row k: the pivot row's remaining live entries --- *)
    let un = ref 0 in
    for idx = 0 to rlen.(prow) - 1 do
      let c = rcol.(prow).(idx) in
      if col_active.(c) then begin
        urow_c.(!un) <- c;
        urow_v.(!un) <- rval.(prow).(idx);
        incr un
      end
    done;
    let un = !un in
    ucols.(k) <- Array.sub urow_c 0 un;
    uvals.(k) <- Array.sub urow_v 0 un;
    (* --- eliminate the pivot column from the remaining active rows --- *)
    let ln = ref 0 in
    let pn = compact_col pcol in
    for u = 0 to pn - 1 do
      let r = cand_rows.(u) and f = cand_vals.(u) in
      let l = f /. pv in
      lrow_r.(!ln) <- r;
      lrow_v.(!ln) <- l;
      incr ln;
      (let idx = row_find r pcol in
       if idx >= 0 then row_delete r idx);
      for w = 0 to un - 1 do
        let c = ucols.(k).(w) and uv = uvals.(k).(w) in
        let idx = row_find r c in
        if idx >= 0 then begin
          let old = rval.(r).(idx) in
          let nv = old -. (l *. uv) in
          if Float.abs nv <= 1e-14 *. (Float.abs old +. Float.abs (l *. uv)) then
            row_delete r idx
          else rval.(r).(idx) <- nv
        end
        else begin
          let nv = -.(l *. uv) in
          if nv <> 0.0 then begin
            row_push r c nv;
            col_push c r
          end
        end
      done
    done;
    lrows.(k) <- Array.sub lrow_r 0 !ln;
    lvals.(k) <- Array.sub lrow_v 0 !ln
    end
  done;
  (* --- repair tail: one unit column per leftover row, placed at the
     dropped positions.  Leftover rows were never pivot rows, so their
     unit columns are untouched by the eliminated steps and factor with
     pivot 1 and empty L/U rows (already the initialized defaults). --- *)
  let replaced = Array.make m false in
  (match !dropped with
  | [] -> ()
  | drops ->
    let repairs = ref [] in
    let remaining = ref drops in
    for r = 0 to m - 1 do
      if row_active.(r) then begin
        match !remaining with
        | [] -> raise Singular (* more leftover rows than dropped columns *)
        | pos :: rest ->
          remaining := rest;
          let k = !kstep in
          incr kstep;
          row_active.(r) <- false;
          replaced.(pos) <- true;
          rperm.(k) <- r;
          rpos.(r) <- k;
          cperm.(k) <- pos;
          cpos.(pos) <- k;
          udiag.(k) <- 1.0;
          repairs := (pos, r) :: !repairs
      end
    done;
    if !remaining <> [] then raise Singular;
    (match deficient with
    | Some cell -> cell := List.rev !repairs
    | None -> assert false));
  (* convert U column ids from basis positions to elimination steps; entries
     in replaced columns are dropped — the unit column that now occupies the
     position is zero in every pivot row *)
  for k = 0 to m - 1 do
    let uc = ucols.(k) and uv = uvals.(k) in
    let n = ref 0 in
    for t = 0 to Array.length uc - 1 do
      if not replaced.(uc.(t)) then begin
        uc.(!n) <- cpos.(uc.(t));
        uv.(!n) <- uv.(t);
        incr n
      end
    done;
    if !n < Array.length uc then begin
      ucols.(k) <- Array.sub uc 0 !n;
      uvals.(k) <- Array.sub uv 0 !n
    end
  done;
  (* pattern-only step views and their transposes, for the hypersparse
     reachability passes (O(nnz) once per refactorization) *)
  let lsteps = Array.make m [||] in
  let lcnt = Array.make m 0 and ucnt = Array.make m 0 in
  for k = 0 to m - 1 do
    lsteps.(k) <- Array.map (fun r -> rpos.(r)) lrows.(k);
    Array.iter (fun j -> lcnt.(j) <- lcnt.(j) + 1) lsteps.(k);
    Array.iter (fun j -> ucnt.(j) <- ucnt.(j) + 1) ucols.(k)
  done;
  let ltr = Array.init m (fun j -> Array.make lcnt.(j) 0) in
  let utr = Array.init m (fun j -> Array.make ucnt.(j) 0) in
  Array.fill lcnt 0 m 0;
  Array.fill ucnt 0 m 0;
  for k = 0 to m - 1 do
    Array.iter
      (fun j ->
        ltr.(j).(lcnt.(j)) <- k;
        lcnt.(j) <- lcnt.(j) + 1)
      lsteps.(k);
    Array.iter
      (fun j ->
        utr.(j).(ucnt.(j)) <- k;
        ucnt.(j) <- ucnt.(j) + 1)
      ucols.(k)
  done;
  {
    rperm;
    rpos;
    cperm;
    cpos;
    lrows;
    lvals;
    ucols;
    uvals;
    udiag;
    lsteps;
    ltr;
    utr;
    etas = [||];
    neta = 0;
    ennz = 0;
  }

let refactorize t ~basis ~col =
  (* build first, install second: a Singular raise leaves [t] unchanged *)
  (match t.knd with
  | Dense ->
    let inv = dense_refactorize t.m ~basis ~col in
    (match t.repr with Dense_r d -> d.inv <- inv | Lu_r _ -> assert false)
  | Lu -> t.repr <- Lu_r (lu_refactorize t.m ~basis ~col));
  t.updates <- 0;
  t.err <- 0.0;
  t.refactors <- t.refactors + 1;
  t.on_refactor ()

let refactorize_repaired t ~basis ~col =
  match t.knd with
  | Dense ->
    (* the dense backend has no repair path; a singular basis raises as in
       {!refactorize} and the caller falls back to a cold start *)
    refactorize t ~basis ~col;
    []
  | Lu ->
    let repairs = ref [] in
    t.repr <- Lu_r (lu_refactorize ~deficient:repairs t.m ~basis ~col);
    t.updates <- 0;
    t.err <- 0.0;
    t.refactors <- t.refactors + 1;
    t.on_refactor ();
    !repairs

(* ------------------------------------------------------------------ *)
(* LU solves                                                           *)

(* x := B0^-1 x through the triangular factors, where x arrives indexed by
   constraint row and leaves indexed by basis position.  [z] is a caller
   scratch of length m (overwritten). *)
let lu_solve lu m z x =
  (* forward: L z = P x, updating the row-indexed workspace in place (every
     L column only touches rows that pivot later) *)
  for k = 0 to m - 1 do
    let zk = x.(lu.rperm.(k)) in
    z.(k) <- zk;
    if zk <> 0.0 then begin
      let lr = lu.lrows.(k) and lv = lu.lvals.(k) in
      for u = 0 to Array.length lr - 1 do
        x.(lr.(u)) <- x.(lr.(u)) -. (lv.(u) *. zk)
      done
    end
  done;
  (* back: U y = z in place *)
  for k = m - 1 downto 0 do
    let uc = lu.ucols.(k) and uv = lu.uvals.(k) in
    let acc = ref z.(k) in
    for u = 0 to Array.length uc - 1 do
      acc := !acc -. (uv.(u) *. z.(uc.(u)))
    done;
    z.(k) <- !acc /. lu.udiag.(k)
  done;
  (* permute back to basis positions, reusing the input array *)
  for k = 0 to m - 1 do
    x.(lu.cperm.(k)) <- z.(k)
  done

let apply_etas lu x =
  for e = 0 to lu.neta - 1 do
    let eta = lu.etas.(e) in
    let xr = x.(eta.er) /. eta.epiv in
    x.(eta.er) <- xr;
    if xr <> 0.0 then begin
      let rs = eta.erows and vs = eta.evals in
      for u = 0 to Array.length rs - 1 do
        x.(rs.(u)) <- x.(rs.(u)) -. (vs.(u) *. xr)
      done
    end
  done

(* y := B0^-T y: input indexed by basis position, output by constraint row.
   [d] is a caller scratch of length m (overwritten). *)
let lu_solve_t lu m d y =
  for k = 0 to m - 1 do
    d.(k) <- y.(lu.cperm.(k))
  done;
  (* U^T d' = d, ascending *)
  for k = 0 to m - 1 do
    let dk = d.(k) /. lu.udiag.(k) in
    d.(k) <- dk;
    if dk <> 0.0 then begin
      let uc = lu.ucols.(k) and uv = lu.uvals.(k) in
      for u = 0 to Array.length uc - 1 do
        d.(uc.(u)) <- d.(uc.(u)) -. (uv.(u) *. dk)
      done
    end
  done;
  (* L^T e = d, descending *)
  for k = m - 1 downto 0 do
    let lr = lu.lrows.(k) and lv = lu.lvals.(k) in
    let acc = ref d.(k) in
    for u = 0 to Array.length lr - 1 do
      acc := !acc -. (lv.(u) *. d.(lu.rpos.(lr.(u))))
    done;
    d.(k) <- !acc
  done;
  for k = 0 to m - 1 do
    y.(lu.rperm.(k)) <- d.(k)
  done

let apply_etas_t lu y =
  for e = lu.neta - 1 downto 0 do
    let eta = lu.etas.(e) in
    let rs = eta.erows and vs = eta.evals in
    let s = ref 0.0 in
    for u = 0 to Array.length rs - 1 do
      s := !s +. (vs.(u) *. y.(rs.(u)))
    done;
    y.(eta.er) <- (y.(eta.er) -. !s) /. eta.epiv
  done

(* ------------------------------------------------------------------ *)
(* Hypersparse traversal machinery                                     *)

(* When the reach of a right-hand side exceeds this fraction of the steps,
   graph traversal stops paying for itself (sort + worklist overhead on a
   nearly-dense vector) and the solve falls back to the full scan for that
   pass.  Results are unchanged either way — the scan performs the same
   arithmetic — so the cap is purely a performance knob. *)
let hyper_cap m = 16 + (m asr 2)

(* In-place ascending sort of a.(lo..hi); the reach sets it orders are
   duplicate-free. *)
let rec qsort_ints (a : int array) lo hi =
  if hi - lo > 12 then begin
    let p = a.((lo + hi) lsr 1) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while a.(!i) < p do
        incr i
      done;
      while a.(!j) > p do
        decr j
      done;
      if !i <= !j then begin
        let tmp = a.(!i) in
        a.(!i) <- a.(!j);
        a.(!j) <- tmp;
        incr i;
        decr j
      end
    done;
    qsort_ints a lo !j;
    qsort_ints a !i hi
  end
  else
    for i = lo + 1 to hi do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done

(* Drain the worklist (stack holds [sp] marked seed steps) over the step
   adjacency [succ], collecting every reachable step into [out].  Returns
   the reach size, or -1 once it exceeds [cap] (the caller falls back to the
   full scan; the stale marks are invalidated by the next stamp bump). *)
let drain_reach (succ : int array array) mark stamp (stack : int array) sp
    (out : int array) cap =
  let n = ref 0 in
  let sp = ref sp in
  let overflow = ref false in
  while (not !overflow) && !sp > 0 do
    decr sp;
    let k = stack.(!sp) in
    out.(!n) <- k;
    incr n;
    if !n > cap then overflow := true
    else begin
      let s = succ.(k) in
      for u = 0 to Array.length s - 1 do
        let j = s.(u) in
        if mark.(j) <> stamp then begin
          mark.(j) <- stamp;
          stack.(!sp) <- j;
          incr sp
        end
      done
    end
  done;
  if !overflow then -1 else !n

(* Forward pass L z = P x over the row-indexed workspace [vals], writing the
   step-indexed result into [t.wz] and its (sorted, possibly zero-carrying)
   pattern into [t.wzi].  Rows of [vals] touched by the pass are zeroed on
   the way out.  Returns the pattern length, or -1 when the pass ran as a
   full scan (the workspace then holds all m steps and [vals] is fully
   cleared). *)
let l_forward t lu nseed =
  let m = t.m in
  let vals = t.sf.Svec.vals in
  let z = t.wz and pat = t.wzi in
  let nl =
    if t.kern = Hypersparse then
      drain_reach lu.lsteps t.wmark t.wstamp t.wstk nseed pat (hyper_cap m)
    else -1
  in
  if nl >= 0 then begin
    qsort_ints pat 0 (nl - 1);
    for u = 0 to nl - 1 do
      let k = pat.(u) in
      let zk = vals.(lu.rperm.(k)) in
      z.(k) <- zk;
      if zk <> 0.0 then begin
        let lr = lu.lrows.(k) and lv = lu.lvals.(k) in
        for w = 0 to Array.length lr - 1 do
          vals.(lr.(w)) <- vals.(lr.(w)) -. (lv.(w) *. zk)
        done
      end
    done;
    (* every touched row is the rperm image of a reached step *)
    for u = 0 to nl - 1 do
      vals.(lu.rperm.(pat.(u))) <- 0.0
    done;
    nl
  end
  else begin
    (* full scan: identical arithmetic over all steps, collecting the
       nonzero pattern as it appears *)
    let n = ref 0 in
    for k = 0 to m - 1 do
      let zk = vals.(lu.rperm.(k)) in
      z.(k) <- zk;
      if zk <> 0.0 then begin
        pat.(!n) <- k;
        incr n;
        let lr = lu.lrows.(k) and lv = lu.lvals.(k) in
        for w = 0 to Array.length lr - 1 do
          vals.(lr.(w)) <- vals.(lr.(w)) -. (lv.(w) *. zk)
        done
      end
    done;
    Array.fill vals 0 m 0.0;
    !n
  end

(* Back-substitution U y = z over the step workspace, given the (sorted)
   candidate pattern from the forward pass.  Extends the pattern to the
   reach over the transposed U rows and processes it in descending step
   order; falls back to the full descending scan when the reach densifies.
   Returns the final pattern length, or -1 for "all m steps". *)
let u_backward t lu np =
  let m = t.m in
  let z = t.wz and pat = t.wzi in
  let nu =
    if t.kern = Hypersparse && np >= 0 then begin
      t.wstamp <- t.wstamp + 1;
      let stamp = t.wstamp in
      let sp = ref 0 in
      for u = 0 to np - 1 do
        let k = pat.(u) in
        t.wmark.(k) <- stamp;
        t.wstk.(!sp) <- k;
        incr sp
      done;
      drain_reach lu.utr t.wmark stamp t.wstk !sp pat (hyper_cap m)
    end
    else -1
  in
  if nu >= 0 then begin
    qsort_ints pat 0 (nu - 1);
    for u = nu - 1 downto 0 do
      let k = pat.(u) in
      let uc = lu.ucols.(k) and uv = lu.uvals.(k) in
      let acc = ref z.(k) in
      for w = 0 to Array.length uc - 1 do
        acc := !acc -. (uv.(w) *. z.(uc.(w)))
      done;
      z.(k) <- !acc /. lu.udiag.(k)
    done;
    nu
  end
  else begin
    for k = m - 1 downto 0 do
      let uc = lu.ucols.(k) and uv = lu.uvals.(k) in
      let acc = ref z.(k) in
      for w = 0 to Array.length uc - 1 do
        acc := !acc -. (uv.(w) *. z.(uc.(w)))
      done;
      z.(k) <- !acc /. lu.udiag.(k)
    done;
    -1
  end

(* Scatter the step workspace into [sv] through [perm] (dropping exact
   zeros), clear the workspace, and leave the pattern sorted ascending. *)
let emit_steps t (perm : int array) nu (sv : Svec.t) =
  let m = t.m in
  let z = t.wz and pat = t.wzi in
  let vals = sv.Svec.vals and idx = sv.Svec.idx in
  let n = ref 0 in
  if nu >= 0 then begin
    for u = 0 to nu - 1 do
      let k = pat.(u) in
      let zk = z.(k) in
      z.(k) <- 0.0;
      if zk <> 0.0 then begin
        let p = perm.(k) in
        vals.(p) <- zk;
        idx.(!n) <- p;
        incr n
      end
    done
  end
  else
    for k = 0 to m - 1 do
      let zk = z.(k) in
      z.(k) <- 0.0;
      if zk <> 0.0 then begin
        let p = perm.(k) in
        vals.(p) <- zk;
        idx.(!n) <- p;
        incr n
      end
    done;
  qsort_ints idx 0 (!n - 1);
  sv.Svec.n <- !n

(* Sparse (pattern-tracked) product-form eta application over [sv]'s
   position-indexed values.  Performs the same arithmetic as {!apply_etas}
   on the nonzero entries; positions the dense code would only have written
   a signed zero into are skipped, which the output filter erases anyway. *)
let apply_etas_sparse t lu (sv : Svec.t) =
  if lu.neta > 0 then begin
    let vals = sv.Svec.vals and idx = sv.Svec.idx in
    t.wstamp <- t.wstamp + 1;
    let stamp = t.wstamp in
    let mark = t.wmark in
    for u = 0 to sv.Svec.n - 1 do
      mark.(idx.(u)) <- stamp
    done;
    let n = ref sv.Svec.n in
    for e = 0 to lu.neta - 1 do
      let eta = lu.etas.(e) in
      if mark.(eta.er) = stamp then begin
        let xr = vals.(eta.er) /. eta.epiv in
        vals.(eta.er) <- xr;
        if xr <> 0.0 then begin
          let rs = eta.erows and vs = eta.evals in
          for u = 0 to Array.length rs - 1 do
            let p = rs.(u) in
            vals.(p) <- vals.(p) -. (vs.(u) *. xr);
            if mark.(p) <> stamp then begin
              mark.(p) <- stamp;
              idx.(!n) <- p;
              incr n
            end
          done
        end
      end
    done;
    (* re-filter: eta arithmetic can cancel entries to exact zero, and the
       pattern gained the scatter targets *)
    let k = ref 0 in
    for u = 0 to !n - 1 do
      let p = idx.(u) in
      if vals.(p) <> 0.0 then begin
        idx.(!k) <- p;
        incr k
      end
      else vals.(p) <- 0.0
    done;
    qsort_ints idx 0 (!k - 1);
    sv.Svec.n <- !k
  end

(* The transposed twin, position-indexed input: same arithmetic as
   {!apply_etas_t} wherever it matters (an unwritten position differs from
   the dense result only in the sign of zero). *)
let apply_etas_t_sparse t lu (sv : Svec.t) =
  if lu.neta > 0 then begin
    let vals = sv.Svec.vals and idx = sv.Svec.idx in
    t.wstamp <- t.wstamp + 1;
    let stamp = t.wstamp in
    let mark = t.wmark in
    for u = 0 to sv.Svec.n - 1 do
      mark.(idx.(u)) <- stamp
    done;
    let n = ref sv.Svec.n in
    for e = lu.neta - 1 downto 0 do
      let eta = lu.etas.(e) in
      let rs = eta.erows and vs = eta.evals in
      let s = ref 0.0 in
      for u = 0 to Array.length rs - 1 do
        s := !s +. (vs.(u) *. vals.(rs.(u)))
      done;
      if mark.(eta.er) = stamp || !s <> 0.0 then begin
        vals.(eta.er) <- (vals.(eta.er) -. !s) /. eta.epiv;
        if mark.(eta.er) <> stamp then begin
          mark.(eta.er) <- stamp;
          idx.(!n) <- eta.er;
          incr n
        end
      end
    done;
    let k = ref 0 in
    for u = 0 to !n - 1 do
      let p = idx.(u) in
      if vals.(p) <> 0.0 then begin
        idx.(!k) <- p;
        incr k
      end
      else vals.(p) <- 0.0
    done;
    qsort_ints idx 0 (!k - 1);
    sv.Svec.n <- !k
  end

(* ------------------------------------------------------------------ *)
(* Public solves                                                       *)

let ftran_dense t b =
  match t.repr with
  | Dense_r d ->
    let out = Array.make t.m 0.0 in
    for i = 0 to t.m - 1 do
      let bi = d.inv.(i) in
      let acc = ref 0.0 in
      for k = 0 to t.m - 1 do
        acc := !acc +. (bi.(k) *. b.(k))
      done;
      out.(i) <- !acc
    done;
    out
  | Lu_r lu ->
    let x = Array.copy b in
    lu_solve lu t.m t.wd x;
    apply_etas lu x;
    x

let ftran_col t rows coefs =
  match t.repr with
  | Dense_r d ->
    let out = Array.make t.m 0.0 in
    let ne = Array.length rows in
    for i = 0 to t.m - 1 do
      let bi = d.inv.(i) in
      let acc = ref 0.0 in
      for k = 0 to ne - 1 do
        acc := !acc +. (bi.(rows.(k)) *. coefs.(k))
      done;
      out.(i) <- !acc
    done;
    out
  | Lu_r lu ->
    let x = Array.make t.m 0.0 in
    for k = 0 to Array.length rows - 1 do
      x.(rows.(k)) <- x.(rows.(k)) +. coefs.(k)
    done;
    lu_solve lu t.m t.wd x;
    apply_etas lu x;
    x

let ftran_unit t r =
  match t.repr with
  | Dense_r d ->
    let out = Array.make t.m 0.0 in
    for i = 0 to t.m - 1 do
      out.(i) <- d.inv.(i).(r)
    done;
    out
  | Lu_r lu ->
    let x = Array.make t.m 0.0 in
    x.(r) <- 1.0;
    lu_solve lu t.m t.wd x;
    apply_etas lu x;
    x

let btran_dense t c =
  match t.repr with
  | Dense_r d ->
    let y = Array.make t.m 0.0 in
    for i = 0 to t.m - 1 do
      let ci = c.(i) in
      if ci <> 0.0 then begin
        let bi = d.inv.(i) in
        for k = 0 to t.m - 1 do
          y.(k) <- y.(k) +. (ci *. bi.(k))
        done
      end
    done;
    y
  | Lu_r lu ->
    let y = Array.copy c in
    apply_etas_t lu y;
    lu_solve_t lu t.m t.wd y;
    y

let btran_dense_into t c y =
  match t.repr with
  | Dense_r d ->
    Array.fill y 0 t.m 0.0;
    for i = 0 to t.m - 1 do
      let ci = c.(i) in
      if ci <> 0.0 then begin
        let bi = d.inv.(i) in
        for k = 0 to t.m - 1 do
          y.(k) <- y.(k) +. (ci *. bi.(k))
        done
      end
    done
  | Lu_r lu ->
    Array.blit c 0 y 0 t.m;
    apply_etas_t lu y;
    lu_solve_t lu t.m t.wd y

let row_of_inverse t r =
  match t.repr with
  | Dense_r d -> Array.copy d.inv.(r)
  | Lu_r lu ->
    let y = Array.make t.m 0.0 in
    y.(r) <- 1.0;
    apply_etas_t lu y;
    lu_solve_t lu t.m t.wd y;
    y

(* ------------------------------------------------------------------ *)
(* Sparse-result solves (the simplex hot path)                         *)

(* B^-1 a for the sparse column in rows/coefs slots [off .. off+len-1].
   Result in [t]'s FTRAN svec: valid until the next ftran_*_sparse on
   [t]. *)
let ftran_sparse t (rows : int array) (coefs : float array) ~off ~len =
  let sv = t.sf in
  Svec.clear sv;
  (match t.repr with
  | Dense_r d ->
    (* dense-inverse oracle: row-times-column products, compacted *)
    let vals = sv.Svec.vals and idx = sv.Svec.idx in
    let n = ref 0 in
    for i = 0 to t.m - 1 do
      let bi = d.inv.(i) in
      let acc = ref 0.0 in
      for k = 0 to len - 1 do
        acc := !acc +. (bi.(rows.(off + k)) *. coefs.(off + k))
      done;
      if !acc <> 0.0 then begin
        vals.(i) <- !acc;
        idx.(!n) <- i;
        incr n
      end
    done;
    sv.Svec.n <- !n
  | Lu_r lu ->
    let vals = sv.Svec.vals in
    t.wstamp <- t.wstamp + 1;
    let stamp = t.wstamp in
    let nseed = ref 0 in
    for k = 0 to len - 1 do
      let r = rows.(off + k) in
      vals.(r) <- vals.(r) +. coefs.(off + k);
      let s = lu.rpos.(r) in
      if t.wmark.(s) <> stamp then begin
        t.wmark.(s) <- stamp;
        t.wstk.(!nseed) <- s;
        incr nseed
      end
    done;
    let np = l_forward t lu !nseed in
    let nu = u_backward t lu np in
    emit_steps t lu.cperm nu sv;
    apply_etas_sparse t lu sv);
  t.ftran_calls <- t.ftran_calls + 1;
  t.ftran_nnz <- t.ftran_nnz + sv.Svec.n;
  sv

let ftran_col_sparse t rows coefs ~off ~len = ftran_sparse t rows coefs ~off ~len

let ftran_unit_sparse t r =
  let sv = t.sf in
  Svec.clear sv;
  (match t.repr with
  | Dense_r d ->
    let vals = sv.Svec.vals and idx = sv.Svec.idx in
    let n = ref 0 in
    for i = 0 to t.m - 1 do
      let v = d.inv.(i).(r) in
      if v <> 0.0 then begin
        vals.(i) <- v;
        idx.(!n) <- i;
        incr n
      end
    done;
    sv.Svec.n <- !n
  | Lu_r lu ->
    sv.Svec.vals.(r) <- 1.0;
    t.wstamp <- t.wstamp + 1;
    let s = lu.rpos.(r) in
    t.wmark.(s) <- t.wstamp;
    t.wstk.(0) <- s;
    let np = l_forward t lu 1 in
    let nu = u_backward t lu np in
    emit_steps t lu.cperm nu sv;
    apply_etas_sparse t lu sv);
  t.ftran_calls <- t.ftran_calls + 1;
  t.ftran_nnz <- t.ftran_nnz + sv.Svec.n;
  sv

(* Row r of B^-1 (equivalently B^-T e_r) as a sparse row-indexed vector.
   Result in [t]'s BTRAN svec: valid until the next btran_unit_sparse on
   [t], and in particular across an interleaved FTRAN. *)
let btran_unit_sparse t r =
  let sv = t.sb in
  Svec.clear sv;
  (match t.repr with
  | Dense_r d ->
    let vals = sv.Svec.vals and idx = sv.Svec.idx in
    let bi = d.inv.(r) in
    let n = ref 0 in
    for k = 0 to t.m - 1 do
      let v = bi.(k) in
      if v <> 0.0 then begin
        vals.(k) <- v;
        idx.(!n) <- k;
        incr n
      end
    done;
    sv.Svec.n <- !n
  | Lu_r lu ->
    let vals = sv.Svec.vals in
    vals.(r) <- 1.0;
    sv.Svec.idx.(0) <- r;
    sv.Svec.n <- 1;
    apply_etas_t_sparse t lu sv;
    (* transfer the position-indexed pattern into the step workspace *)
    let z = t.wz and pat = t.wzi in
    t.wstamp <- t.wstamp + 1;
    let stamp = t.wstamp in
    let sp = ref 0 in
    for u = 0 to sv.Svec.n - 1 do
      let p = sv.Svec.idx.(u) in
      let k = lu.cpos.(p) in
      z.(k) <- vals.(p);
      vals.(p) <- 0.0;
      t.wmark.(k) <- stamp;
      t.wstk.(!sp) <- k;
      incr sp
    done;
    sv.Svec.n <- 0;
    (* U^T forward, ascending over the reach (successors are later steps) *)
    let nu =
      if t.kern = Hypersparse then
        drain_reach lu.ucols t.wmark stamp t.wstk !sp pat (hyper_cap t.m)
      else -1
    in
    let nu =
      if nu >= 0 then begin
        qsort_ints pat 0 (nu - 1);
        for u = 0 to nu - 1 do
          let k = pat.(u) in
          let dk = z.(k) /. lu.udiag.(k) in
          z.(k) <- dk;
          if dk <> 0.0 then begin
            let uc = lu.ucols.(k) and uv = lu.uvals.(k) in
            for w = 0 to Array.length uc - 1 do
              z.(uc.(w)) <- z.(uc.(w)) -. (uv.(w) *. dk)
            done
          end
        done;
        nu
      end
      else begin
        for k = 0 to t.m - 1 do
          let dk = z.(k) /. lu.udiag.(k) in
          z.(k) <- dk;
          if dk <> 0.0 then begin
            let uc = lu.ucols.(k) and uv = lu.uvals.(k) in
            for w = 0 to Array.length uc - 1 do
              z.(uc.(w)) <- z.(uc.(w)) -. (uv.(w) *. dk)
            done
          end
        done;
        -1
      end
    in
    (* L^T backward, descending over the reach through the transposed L
       pattern (each gather reads only later steps, already final) *)
    let nl =
      if nu >= 0 then begin
        t.wstamp <- t.wstamp + 1;
        let stamp = t.wstamp in
        let sp = ref 0 in
        for u = 0 to nu - 1 do
          let k = pat.(u) in
          t.wmark.(k) <- stamp;
          t.wstk.(!sp) <- k;
          incr sp
        done;
        drain_reach lu.ltr t.wmark stamp t.wstk !sp pat (hyper_cap t.m)
      end
      else -1
    in
    let nl =
      if nl >= 0 then begin
        qsort_ints pat 0 (nl - 1);
        for u = nl - 1 downto 0 do
          let k = pat.(u) in
          let lr = lu.lrows.(k) and lv = lu.lvals.(k) in
          let acc = ref z.(k) in
          for w = 0 to Array.length lr - 1 do
            acc := !acc -. (lv.(w) *. z.(lu.rpos.(lr.(w))))
          done;
          z.(k) <- !acc
        done;
        nl
      end
      else begin
        for k = t.m - 1 downto 0 do
          let lr = lu.lrows.(k) and lv = lu.lvals.(k) in
          let acc = ref z.(k) in
          for w = 0 to Array.length lr - 1 do
            acc := !acc -. (lv.(w) *. z.(lu.rpos.(lr.(w))))
          done;
          z.(k) <- !acc
        done;
        -1
      end
    in
    emit_steps t lu.rperm nl sv);
  t.btran_calls <- t.btran_calls + 1;
  t.btran_nnz <- t.btran_nnz + sv.Svec.n;
  sv

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)

let update t ~alpha ~row =
  let m = t.m in
  let piv = alpha.(row) in
  let apiv = Float.abs piv in
  let amax = ref 0.0 in
  for i = 0 to m - 1 do
    let a = Float.abs alpha.(i) in
    if a > !amax then amax := a
  done;
  if apiv < pivot_abs_min || apiv < pivot_rel_min *. !amax then false
  else if t.updates >= t.update_limit then false
  else begin
    (match t.repr with
    | Dense_r d -> dense_update m d ~alpha ~row
    | Lu_r lu ->
      let nnz = ref 0 in
      for i = 0 to m - 1 do
        if i <> row && alpha.(i) <> 0.0 then incr nnz
      done;
      let rs = Array.make !nnz 0 and vs = Array.make !nnz 0.0 in
      let p = ref 0 in
      for i = 0 to m - 1 do
        if i <> row && alpha.(i) <> 0.0 then begin
          rs.(!p) <- i;
          vs.(!p) <- alpha.(i);
          incr p
        end
      done;
      if lu.neta = Array.length lu.etas then begin
        let cap = Stdlib.max 8 (2 * lu.neta) in
        let bigger =
          Array.make cap { er = 0; epiv = 1.0; erows = [||]; evals = [||] }
        in
        Array.blit lu.etas 0 bigger 0 lu.neta;
        lu.etas <- bigger
      end;
      lu.etas.(lu.neta) <- { er = row; epiv = piv; erows = rs; evals = vs };
      lu.neta <- lu.neta + 1;
      lu.ennz <- lu.ennz + !nnz + 1);
    t.updates <- t.updates + 1;
    t.err <- t.err +. (1e-16 *. (!amax /. apiv));
    true
  end

(* {!update} on a sparse alpha: the stability guards and the eta are derived
   from the pattern alone (svec patterns carry no exact zeros, so the
   resulting eta is identical to the dense scan's).  The {!Dense} backend
   reads the svec's dense backing store directly. *)
let update_sparse t ~(alpha : Svec.t) ~row =
  let piv = alpha.Svec.vals.(row) in
  let apiv = Float.abs piv in
  let amax = ref 0.0 in
  for u = 0 to alpha.Svec.n - 1 do
    let a = Float.abs alpha.Svec.vals.(alpha.Svec.idx.(u)) in
    if a > !amax then amax := a
  done;
  if apiv < pivot_abs_min || apiv < pivot_rel_min *. !amax then false
  else if t.updates >= t.update_limit then false
  else begin
    (match t.repr with
    | Dense_r d -> dense_update t.m d ~alpha:alpha.Svec.vals ~row
    | Lu_r lu ->
      let nnz = ref 0 in
      for u = 0 to alpha.Svec.n - 1 do
        if alpha.Svec.idx.(u) <> row then incr nnz
      done;
      let rs = Array.make !nnz 0 and vs = Array.make !nnz 0.0 in
      let p = ref 0 in
      for u = 0 to alpha.Svec.n - 1 do
        let i = alpha.Svec.idx.(u) in
        if i <> row then begin
          rs.(!p) <- i;
          vs.(!p) <- alpha.Svec.vals.(i);
          incr p
        end
      done;
      if lu.neta = Array.length lu.etas then begin
        let cap = Stdlib.max 8 (2 * lu.neta) in
        let bigger =
          Array.make cap { er = 0; epiv = 1.0; erows = [||]; evals = [||] }
        in
        Array.blit lu.etas 0 bigger 0 lu.neta;
        lu.etas <- bigger
      end;
      lu.etas.(lu.neta) <- { er = row; epiv = piv; erows = rs; evals = vs };
      lu.neta <- lu.neta + 1;
      lu.ennz <- lu.ennz + !nnz + 1);
    t.updates <- t.updates + 1;
    t.err <- t.err +. (1e-16 *. (!amax /. apiv));
    true
  end
