type section = Preamble | Objective | Rows | Bounds | General | Done

exception Parse_error of string

let fail line msg = raise (Parse_error (Printf.sprintf "%s: %S" msg line))

let is_space c = c = ' ' || c = '\t' || c = '\r'

let tokens line =
  let out = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c -> if is_space c then flush () else Buffer.add_char buf c)
    line;
  flush ();
  List.rev !out

let float_of_token line t =
  match t with
  | "-inf" -> neg_infinity
  | "+inf" | "inf" -> infinity
  | _ -> ( try float_of_string t with Failure _ -> fail line "expected a number")

(* Linear expression tokens: [c1 x1 + c2 x2 - c3 x3 ...] or ["0"].  The
   writer always emits an explicit coefficient before each name. *)
let parse_terms line ~var_index toks =
  let rec loop sign acc = function
    | [] -> List.rev acc
    | "+" :: rest -> loop 1.0 acc rest
    | "-" :: rest -> loop (-1.0) acc rest
    | [ "0" ] when acc = [] -> []
    | coef :: name :: rest ->
      let c = sign *. float_of_token line coef in
      let v =
        match Hashtbl.find_opt var_index name with
        | Some v -> v
        | None -> fail line (Printf.sprintf "unknown variable %s" name)
      in
      loop 1.0 ((v, c) :: acc) rest
    | [ tok ] -> fail line (Printf.sprintf "dangling token %s" tok)
  in
  loop 1.0 [] toks

type wrow = {
  name : string;
  terms : (int * float) list;
  sense : Model.sense;
  rhs : float;
}

let parse text =
  try
    let lines = String.split_on_char '\n' text in
    (* Pass 1: the Bounds section defines variable order; General marks
       integrality. *)
    let var_order = ref [] and var_bounds = Hashtbl.create 64 in
    let integers = Hashtbl.create 16 in
    let section = ref Preamble in
    List.iter
      (fun line ->
        match tokens line with
        | [] -> ()
        | [ "Minimize" ] -> section := Objective
        | [ "Subject"; "To" ] -> section := Rows
        | [ "Bounds" ] -> section := Bounds
        | [ "General" ] -> section := General
        | [ "End" ] -> section := Done
        | toks -> (
          match !section with
          | Bounds -> (
            (* A name may appear on several Bounds lines; it must enter
               [var_order] exactly once (a duplicate would skew every later
               variable's index), and repeated declarations intersect. *)
            let add_bound name lo hi =
              (match Hashtbl.find_opt var_bounds name with
              | None ->
                var_order := name :: !var_order;
                Hashtbl.replace var_bounds name (lo, hi)
              | Some (lo0, hi0) ->
                Hashtbl.replace var_bounds name (Float.max lo0 lo, Float.min hi0 hi));
              let lo, hi = Hashtbl.find var_bounds name in
              if lo > hi then
                fail line (Printf.sprintf "contradictory bounds for %s" name)
            in
            match toks with
            | [ name; "="; v ] ->
              let v = float_of_token line v in
              add_bound name v v
            | [ lo; "<="; name; "<="; hi ] ->
              add_bound name (float_of_token line lo) (float_of_token line hi)
            | _ -> fail line "malformed bound")
          | General -> (
            match toks with
            | [ name ] -> Hashtbl.replace integers name ()
            | _ -> fail line "malformed integer declaration")
          | Preamble | Objective | Rows | Done -> ()))
      lines;
    let names = Array.of_list (List.rev !var_order) in
    let nvars = Array.length names in
    let var_index = Hashtbl.create nvars in
    Array.iteri (fun i n -> Hashtbl.replace var_index n i) names;
    (* Pass 2: objective and rows. *)
    let obj_terms = ref [] and rows = ref [] in
    let section = ref Preamble in
    List.iter
      (fun line ->
        match tokens line with
        | [] -> ()
        | [ "Minimize" ] -> section := Objective
        | [ "Subject"; "To" ] -> section := Rows
        | [ "Bounds" ] -> section := Bounds
        | [ "General" ] -> section := General
        | [ "End" ] -> section := Done
        | toks -> (
          match !section with
          | Objective -> (
            match toks with
            | label :: rest when String.length label > 0 && label.[String.length label - 1] = ':'
              ->
              obj_terms := !obj_terms @ parse_terms line ~var_index rest
            | rest -> obj_terms := !obj_terms @ parse_terms line ~var_index rest)
          | Rows -> (
            let label, rest =
              match toks with
              | label :: rest when String.length label > 0 && label.[String.length label - 1] = ':'
                ->
                (String.sub label 0 (String.length label - 1), rest)
              | _ -> fail line "row without a label"
            in
            (* split at the comparison operator *)
            let rec split acc = function
              | "<=" :: rhs -> (List.rev acc, Model.Le, rhs)
              | ">=" :: rhs -> (List.rev acc, Model.Ge, rhs)
              | "=" :: rhs -> (List.rev acc, Model.Eq, rhs)
              | tok :: rest -> split (tok :: acc) rest
              | [] -> fail line "row without a comparison"
            in
            let lhs, sense, rhs_toks = split [] rest in
            match rhs_toks with
            | [ rhs ] ->
              rows :=
                {
                  name = label;
                  terms = parse_terms line ~var_index lhs;
                  sense;
                  rhs = float_of_token line rhs;
                }
                :: !rows
            | _ -> fail line "malformed right-hand side")
          | Preamble | Bounds | General | Done -> ()))
      lines;
    let rows = Array.of_list (List.rev !rows) in
    (* Build the std via the Model layer so CSC/CSR views are consistent. *)
    let m = Model.create () in
    Array.iteri
      (fun i name ->
        let lb, ub = Hashtbl.find var_bounds name in
        let kind = if Hashtbl.mem integers name then Model.Integer else Model.Continuous in
        let v = Model.add_var ~name ~lb ~ub ~kind m in
        if v <> i then
          raise
            (Parse_error
               (Printf.sprintf "internal: variable order corrupted at %s (index %d, expected %d)"
                  name v i)))
      names;
    Array.iter
      (fun r ->
        let e = Lin_expr.of_terms (List.map (fun (v, c) -> (c, v)) r.terms) in
        ignore (Model.add_constraint ~name:r.name m e r.sense r.rhs))
      rows;
    Model.set_objective m (Lin_expr.of_terms (List.map (fun (v, c) -> (c, v)) !obj_terms));
    Ok (Model.compile m)
  with
  | Parse_error msg -> Error msg
  | Invalid_argument msg -> Error msg

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg
