let sanitize name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  if s = "" then "_" else s

let to_buffer buf ?(name = "RAS") (std : Model.std) =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "NAME          %s\n" (sanitize name);
  add "ROWS\n";
  add " N  OBJ\n";
  for i = 0 to std.Model.nrows - 1 do
    let tag =
      match std.Model.row_sense.(i) with Model.Le -> 'L' | Model.Ge -> 'G' | Model.Eq -> 'E'
    in
    add " %c  %s\n" tag (sanitize std.Model.row_names.(i))
  done;
  add "COLUMNS\n";
  let in_integer_block = ref false in
  let marker_count = ref 0 in
  let set_integer flag =
    if flag <> !in_integer_block then begin
      incr marker_count;
      add "    MARKER%d   'MARKER'                 '%s'\n" !marker_count
        (if flag then "INTORG" else "INTEND");
      in_integer_block := flag
    end
  in
  for j = 0 to std.Model.nvars - 1 do
    set_integer std.Model.integer.(j);
    let vname = sanitize std.Model.var_names.(j) in
    if std.Model.obj.(j) <> 0.0 then add "    %-10s OBJ       %.12g\n" vname std.Model.obj.(j);
    for k = std.Model.col_ptr.(j) to std.Model.col_ptr.(j + 1) - 1 do
      add "    %-10s %-10s %.12g\n" vname
        (sanitize std.Model.row_names.(std.Model.col_ind.(k)))
        std.Model.col_val.(k)
    done
  done;
  set_integer false;
  add "RHS\n";
  for i = 0 to std.Model.nrows - 1 do
    if std.Model.rhs.(i) <> 0.0 then
      add "    RHS        %-10s %.12g\n" (sanitize std.Model.row_names.(i)) std.Model.rhs.(i)
  done;
  add "BOUNDS\n";
  for j = 0 to std.Model.nvars - 1 do
    let vname = sanitize std.Model.var_names.(j) in
    let lo = std.Model.lb.(j) and hi = std.Model.ub.(j) in
    if lo = hi then add " FX BND        %-10s %.12g\n" vname lo
    else begin
      (* MPS default is [0, +inf): only emit deviations *)
      if Float.is_finite lo then begin
        if lo <> 0.0 then add " LO BND        %-10s %.12g\n" vname lo
      end
      else add " MI BND        %-10s\n" vname;
      if Float.is_finite hi then add " UP BND        %-10s %.12g\n" vname hi
    end
  done;
  add "ENDATA\n"

let to_string ?name std =
  let buf = Buffer.create 4096 in
  to_buffer buf ?name std;
  Buffer.contents buf

let to_channel ?name oc std = output_string oc (to_string ?name std)
