(* Name-keyed diff/patch kernel between two compiled models, plus the basis
   and incumbent mapping that makes cross-round warm restarts possible.

   Matching is by variable/row *name*, not index: the formulation layer
   guarantees stable names across rounds (class keys, reservation ids), so
   index churn from entities appearing or disappearing does not inflate the
   diff.  Duplicate names within one model are matched by occurrence order,
   which keeps the diff well-defined on arbitrary inputs. *)

type stats = {
  vars_added : int;
  vars_removed : int;
  rows_added : int;
  rows_removed : int;
  bounds_changed : int;
  obj_changed : int;
  rhs_changed : int;
  coefs_changed : int;
  structure_identical : bool;
}

let total_changes s =
  s.vars_added + s.vars_removed + s.rows_added + s.rows_removed + s.bounds_changed
  + s.obj_changed + s.rhs_changed + s.coefs_changed

let pp_stats ppf s =
  Format.fprintf ppf "vars +%d/-%d rows +%d/-%d bounds %d obj %d rhs %d coefs %d%s"
    s.vars_added s.vars_removed s.rows_added s.rows_removed s.bounds_changed s.obj_changed
    s.rhs_changed s.coefs_changed
    (if s.structure_identical then " (same structure)" else "")

(* Per-entity final values are stored outright (not as option patches): the
   arrays are tiny next to the model itself and make [apply] a single pass. *)

type var_spec = {
  vsrc : int;  (* prev var index, or -1 when added *)
  vname : string;
  vlb : float;
  vub : float;
  vinteger : bool;
  vobj : float;
}

(* [Translated]: the row's content equals the prev row's entries translated
   to next indices (removed-variable entries dropped) and re-sorted — apply
   rebuilds it from prev.  [Content]: anything else, stored verbatim. *)
type row_body = Translated | Content of { cols : int array; coefs : float array }

type row_spec = {
  rsrc : int;  (* prev row index, or -1 when added *)
  rname : string;
  rsense : Model.sense;
  rrhs : float;
  rbody : row_body;
}

type t = {
  nvars : int;
  nrows : int;
  obj_offset : float;
  vars : var_spec array;
  rows : row_spec array;
  var_dst : int array;  (* prev var -> next var, -1 when removed *)
  row_dst : int array;  (* prev row -> next row, -1 when removed *)
  dstats : stats;
}

let stats t = t.dstats

(* Match [next_names] against [prev_names] by name, duplicates in occurrence
   order.  Returns (src per next index, dst per prev index). *)
let match_names prev_names next_names =
  let np = Array.length prev_names and nn = Array.length next_names in
  let pool : (string, int list ref) Hashtbl.t = Hashtbl.create (2 * np) in
  (* build FIFO pools in descending index order so list heads are ascending *)
  for i = np - 1 downto 0 do
    match Hashtbl.find_opt pool prev_names.(i) with
    | Some l -> l := i :: !l
    | None -> Hashtbl.replace pool prev_names.(i) (ref [ i ])
  done;
  let src = Array.make nn (-1) and dst = Array.make np (-1) in
  for j = 0 to nn - 1 do
    match Hashtbl.find_opt pool next_names.(j) with
    | Some ({ contents = i :: rest } as l) ->
      l := rest;
      src.(j) <- i;
      dst.(i) <- j
    | Some { contents = [] } | None -> ()
  done;
  (src, dst)

(* Prev row entries translated to next variable indices (removed variables
   dropped), sorted ascending — the order a fresh compile produces, since
   row terms are normalized by variable index. *)
let translate_row (prev : Model.std) var_dst r =
  let cols = prev.Model.row_cols.(r) and coefs = prev.Model.row_coefs.(r) in
  let kept = ref [] in
  for k = Array.length cols - 1 downto 0 do
    let d = var_dst.(cols.(k)) in
    if d >= 0 then kept := (d, coefs.(k)) :: !kept
  done;
  let arr = Array.of_list !kept in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  arr

let same_content translated cols coefs =
  Array.length translated = Array.length cols
  && begin
       let ok = ref true in
       Array.iteri
         (fun k (c, v) -> if c <> cols.(k) || v <> coefs.(k) then ok := false)
         translated;
       !ok
     end

let diff ~(prev : Model.std) ~(next : Model.std) =
  let var_src, var_dst = match_names prev.Model.var_names next.Model.var_names in
  let row_src, row_dst = match_names prev.Model.row_names next.Model.row_names in
  let vars_added = ref 0 and bounds_changed = ref 0 and obj_changed = ref 0 in
  let vars =
    Array.init next.Model.nvars (fun j ->
        let s = var_src.(j) in
        if s < 0 then incr vars_added
        else begin
          if prev.Model.lb.(s) <> next.Model.lb.(j) || prev.Model.ub.(s) <> next.Model.ub.(j)
          then incr bounds_changed;
          if prev.Model.obj.(s) <> next.Model.obj.(j) then incr obj_changed
        end;
        {
          vsrc = s;
          vname = next.Model.var_names.(j);
          vlb = next.Model.lb.(j);
          vub = next.Model.ub.(j);
          vinteger = next.Model.integer.(j);
          vobj = next.Model.obj.(j);
        })
  in
  let rows_added = ref 0 and rhs_changed = ref 0 and coefs_changed = ref 0 in
  let rows =
    Array.init next.Model.nrows (fun i ->
        let s = row_src.(i) in
        let body =
          if s < 0 then begin
            incr rows_added;
            Content
              {
                cols = Array.copy next.Model.row_cols.(i);
                coefs = Array.copy next.Model.row_coefs.(i);
              }
          end
          else begin
            if
              prev.Model.rhs.(s) <> next.Model.rhs.(i)
              || prev.Model.row_sense.(s) <> next.Model.row_sense.(i)
            then incr rhs_changed;
            let translated = translate_row prev var_dst s in
            if same_content translated next.Model.row_cols.(i) next.Model.row_coefs.(i) then
              Translated
            else begin
              incr coefs_changed;
              Content
                {
                  cols = Array.copy next.Model.row_cols.(i);
                  coefs = Array.copy next.Model.row_coefs.(i);
                }
            end
          end
        in
        {
          rsrc = s;
          rname = next.Model.row_names.(i);
          rsense = next.Model.row_sense.(i);
          rrhs = next.Model.rhs.(i);
          rbody = body;
        })
  in
  if prev.Model.obj_offset <> next.Model.obj_offset then incr obj_changed;
  let identity src n = Array.length src = n && Array.for_all (fun x -> x >= 0) src
                       && Array.for_all2 ( = ) src (Array.init (Array.length src) Fun.id) in
  let structure_identical =
    next.Model.nvars = prev.Model.nvars
    && next.Model.nrows = prev.Model.nrows
    && identity var_src prev.Model.nvars
    && identity row_src prev.Model.nrows
  in
  {
    nvars = next.Model.nvars;
    nrows = next.Model.nrows;
    obj_offset = next.Model.obj_offset;
    vars;
    rows;
    var_dst;
    row_dst;
    dstats =
      {
        vars_added = !vars_added;
        vars_removed = Array.fold_left (fun a d -> if d < 0 then a + 1 else a) 0 var_dst;
        rows_added = !rows_added;
        rows_removed = Array.fold_left (fun a d -> if d < 0 then a + 1 else a) 0 row_dst;
        bounds_changed = !bounds_changed;
        obj_changed = !obj_changed;
        rhs_changed = !rhs_changed;
        coefs_changed = !coefs_changed;
        structure_identical;
      };
  }

let apply ~(prev : Model.std) t =
  if
    Array.length t.var_dst <> prev.Model.nvars || Array.length t.row_dst <> prev.Model.nrows
  then invalid_arg "Incremental.apply: diff was computed against a different model";
  let nvars = t.nvars and nrows = t.nrows in
  let row_cols = Array.make nrows [||] and row_coefs = Array.make nrows [||] in
  for i = 0 to nrows - 1 do
    match t.rows.(i).rbody with
    | Content { cols; coefs } ->
      row_cols.(i) <- Array.copy cols;
      row_coefs.(i) <- Array.copy coefs
    | Translated ->
      let entries = translate_row prev t.var_dst t.rows.(i).rsrc in
      row_cols.(i) <- Array.map fst entries;
      row_coefs.(i) <- Array.map snd entries
  done;
  (* column-major views derived exactly as Model.compile derives them: size
     by count, then fill in row order *)
  let col_count = Array.make nvars 0 in
  Array.iter (fun cols -> Array.iter (fun v -> col_count.(v) <- col_count.(v) + 1) cols) row_cols;
  let col_ptr = Array.make (nvars + 1) 0 in
  for v = 0 to nvars - 1 do
    col_ptr.(v + 1) <- col_ptr.(v) + col_count.(v)
  done;
  let col_ind = Array.make col_ptr.(nvars) 0 in
  let col_val = Array.make col_ptr.(nvars) 0.0 in
  let col_fill = Array.blit col_ptr 0 col_count 0 nvars; col_count in
  for i = 0 to nrows - 1 do
    let cols = row_cols.(i) and coefs = row_coefs.(i) in
    for k = 0 to Array.length cols - 1 do
      let v = cols.(k) in
      let f = col_fill.(v) in
      col_ind.(f) <- i;
      col_val.(f) <- coefs.(k);
      col_fill.(v) <- f + 1
    done
  done;
  {
    Model.nvars;
    nrows;
    obj = Array.map (fun v -> v.vobj) t.vars;
    obj_offset = t.obj_offset;
    lb = Array.map (fun v -> v.vlb) t.vars;
    ub = Array.map (fun v -> v.vub) t.vars;
    integer = Array.map (fun v -> v.vinteger) t.vars;
    row_sense = Array.map (fun r -> r.rsense) t.rows;
    rhs = Array.map (fun r -> r.rrhs) t.rows;
    col_ptr;
    col_ind;
    col_val;
    row_cols;
    row_coefs;
    var_names = Array.map (fun v -> v.vname) t.vars;
    row_names = Array.map (fun r -> r.rname) t.rows;
  }

(* ------------------------------------------------------------------ *)
(* Basis mapping                                                       *)

let prev_nvars t = Array.length t.var_dst
let prev_nrows t = Array.length t.row_dst

(* prev column (structural or slack) -> next column, -1 when departed *)
let col_dst t c =
  let pn = prev_nvars t in
  if c < pn then t.var_dst.(c)
  else begin
    let d = t.row_dst.(c - pn) in
    if d < 0 then -1 else t.nvars + d
  end

let map_basis t ~(prev_basis : Simplex.warm_basis) =
  let pn = prev_nvars t and pm = prev_nrows t in
  let ntotal = t.nvars + t.nrows in
  if
    Array.length prev_basis.Simplex.wcols <> pm
    || Array.length prev_basis.Simplex.wstatus <> pn + pm
  then None
  else begin
    let wstatus = Array.make ntotal Simplex.At_lower in
    (* surviving nonbasic columns keep their resting bound; the simplex
       restart re-normalizes against the new bounds *)
    for c = 0 to pn + pm - 1 do
      let d = col_dst t c in
      if d >= 0 then
        match prev_basis.Simplex.wstatus.(c) with
        | Simplex.Basic -> ()  (* set below iff actually installed *)
        | s -> wstatus.(d) <- s
    done;
    let wcols = Array.make t.nrows (-1) in
    let used = Array.make ntotal false in
    let reused = ref 0 in
    (* first pass: install every surviving basic column in its surviving
       row.  A carried basic column can itself be a slack — possibly the
       slack of a *different* next row — so repairs must wait until all
       carries are known or they could collide with one. *)
    for i = 0 to t.nrows - 1 do
      let src = t.rows.(i).rsrc in
      let candidate = if src < 0 then -1 else col_dst t prev_basis.Simplex.wcols.(src) in
      if candidate >= 0 && not used.(candidate) then begin
        wcols.(i) <- candidate;
        used.(candidate) <- true;
        incr reused
      end
    done;
    (* second pass: new rows, and rows whose basic column departed, are
       repaired with their own slack when it is free, else any free slack.
       The result is always duplicate-free; in the rare repair-with-foreign-
       slack case the basis can come out singular, which [Simplex.try_warm]
       detects (falling back to a cold start) — slower, never wrong. *)
    let next_free = ref 0 in
    for i = 0 to t.nrows - 1 do
      if wcols.(i) < 0 then begin
        let own = t.nvars + i in
        let c =
          if not used.(own) then own
          else begin
            while used.(t.nvars + !next_free) do
              incr next_free
            done;
            t.nvars + !next_free
          end
        in
        wcols.(i) <- c;
        used.(c) <- true
      end
    done;
    Array.iter (fun c -> wstatus.(c) <- Simplex.Basic) wcols;
    (* the factorization survives only when the basis matrix is untouched:
       same index spaces and no coefficient changes (rhs/bound/objective
       deltas do not enter B) *)
    let wfac =
      if t.dstats.structure_identical && t.dstats.coefs_changed = 0 then
        prev_basis.Simplex.wfac
      else None
    in
    Some ({ Simplex.wcols; wstatus; wfac; wdevex = None }, !reused)
  end

let map_solution t x =
  if Array.length x < prev_nvars t then
    invalid_arg "Incremental.map_solution: solution does not match the diffed model";
  Array.init t.nvars (fun j ->
      let { vsrc; vlb; vub; _ } = t.vars.(j) in
      (* surviving values are clamped into the new bounds (a shrunk class
         lowers assignment-count ubs); new variables start at the bound
         closest to zero *)
      let v = if vsrc >= 0 then x.(vsrc) else 0.0 in
      Float.max vlb (Float.min vub v))
