type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type options = {
  time_limit : float;
  node_limit : int;
  gap_abs : float;
  gap_rel : float;
  stall_node_limit : int;
  int_tol : float;
  heuristic_period : int;
  initial : float array option;
  root_basis : Simplex.warm_basis option;
  warm_start : bool;
  lp_pricing : Simplex.pricing;
  lp_devex_carry : bool;
  lp_backend : Basis.kind;
  lp_kernels : Basis.kernels option;
  dual_restart : bool;
}

let default_options =
  {
    time_limit = infinity;
    node_limit = 100_000;
    gap_abs = 1e-6;
    gap_rel = 1e-9;
    stall_node_limit = 0;
    int_tol = 1e-6;
    heuristic_period = 20;
    initial = None;
    root_basis = None;
    warm_start = true;
    lp_pricing = Simplex.Devex;
    lp_devex_carry = false;
    lp_backend = Basis.Lu;
    lp_kernels = None;
    dual_restart = true;
  }

type seed_status = Seed_none | Seed_accepted | Seed_repaired | Seed_rejected

type outcome = {
  status : status;
  solution : float array option;
  objective : float;
  best_bound : float;
  gap : float;
  nodes : int;
  lp_iterations : int;
  warm_started_nodes : int;
  dual_restarted_nodes : int;
  dual_pivots : int;
  bound_flips : int;
  bland_pivots : int;
  seed : seed_status;
  elapsed : float;
}

(* ---------------------------------------------------------------- *)
(* Minimal binary min-heap keyed by node bound.                      *)

module Heap = struct
  type 'a t = { mutable data : (float * 'a) array; mutable len : int; dummy : float * 'a }

  let create dummy = { data = [||]; len = 0; dummy }

  let is_empty h = h.len = 0

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h key v =
    if h.len = Array.length h.data then begin
      let cap = max 16 (2 * h.len) in
      let bigger = Array.make cap h.dummy in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- (key, v);
    let i = ref h.len in
    h.len <- h.len + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.data.(0) <- h.data.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
          if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
          if !smallest <> !i then begin
            swap h !i !smallest;
            i := !smallest
          end
          else continue := false
        done
      end;
      (* clear the vacated slot: a popped node's bound arrays (and basis
         snapshot) must become collectable once its subtree is drained *)
      h.data.(h.len) <- h.dummy;
      Some top
    end

  let min_key h = if h.len = 0 then None else Some (fst h.data.(0))
end

(* ---------------------------------------------------------------- *)

type node = {
  nlb : float array;
  nub : float array;
  depth : int;
  wb : Simplex.warm_basis option;  (* parent's optimal basis, inverse stripped *)
}

let fractionality v = Float.abs (v -. Float.round v)

(* Most-fractional branching: [fractionality] is the distance to the nearest
   integer, so maximizing it picks the variable closest to half-integral. *)
let pick_branch_var (std : Model.std) ~int_tol x =
  let best = ref (-1) and best_score = ref int_tol in
  for j = 0 to std.nvars - 1 do
    if std.integer.(j) then begin
      let score = fractionality x.(j) in
      if score > !best_score then begin
        best := j;
        best_score := score
      end
    end
  done;
  if !best < 0 then None else Some !best

(* Nearest-integer rounding probe: clamp to node bounds; accept only if the
   full solution checker passes. *)
let rounding_probe (std : Model.std) node x =
  let y = Array.copy x in
  for j = 0 to std.nvars - 1 do
    if std.integer.(j) then begin
      let r = Float.round y.(j) in
      let r = Float.max node.nlb.(j) (Float.min node.nub.(j) r) in
      y.(j) <- r
    end
  done;
  match Model.check_solution std y with
  | Ok () ->
    let obj = ref std.obj_offset in
    for j = 0 to std.nvars - 1 do
      obj := !obj +. (std.obj.(j) *. y.(j))
    done;
    Some (y, !obj)
  | Error _ -> None

let integral (std : Model.std) ~int_tol x =
  let ok = ref true in
  for j = 0 to std.nvars - 1 do
    if std.integer.(j) && fractionality x.(j) > int_tol then ok := false
  done;
  !ok

let tighten_integer_bounds (std : Model.std) lb ub =
  for j = 0 to std.nvars - 1 do
    if std.integer.(j) then begin
      if Float.is_finite lb.(j) then lb.(j) <- Float.ceil (lb.(j) -. 1e-9);
      if Float.is_finite ub.(j) then ub.(j) <- Float.floor (ub.(j) +. 1e-9)
    end
  done

let solve_presolved ?(options = default_options) (std : Model.std) =
  let start = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. start in
  let incumbent = ref None and incumbent_obj = ref infinity in
  let nodes = ref 0 and lp_iters = ref 0 and warm_nodes = ref 0 in
  let dual_nodes = ref 0 and dual_pivots = ref 0 in
  let bland_pivots = ref 0 and bound_flips = ref 0 in
  (* every node LP is the same shape, so one workspace serves the whole
     tree: the solver's per-node allocations collapse to O(1) arrays *)
  let lp_ws = Simplex.create_workspace () in
  let inexact = ref false in
  (* an LP node hit its iteration limit: optimality can no longer be proven *)
  let dummy_node = { nlb = [||]; nub = [||]; depth = 0; wb = None } in
  let open_nodes = Heap.create (0.0, dummy_node) in
  (* One-entry basis-factorization cache keyed by physical equality on the
     stripped snapshot stored in the nodes: the plunged child is processed
     immediately after its parent, so it reuses the parent's LU factors (and
     eta file) for free; nodes popped from the heap later re-factorize from
     their stored basis columns instead (still far cheaper than a cold
     phase-1 start). *)
  let fac_cache : (Simplex.warm_basis * Basis.t) option ref = ref None in
  let root_lb = Array.copy std.lb and root_ub = Array.copy std.ub in
  tighten_integer_bounds std root_lb root_ub;
  let last_improve = ref 0 in
  let update_incumbent x obj =
    if obj < !incumbent_obj -. 1e-12 then begin
      incumbent := Some x;
      incumbent_obj := obj;
      last_improve := !nodes
    end
  in
  let gap_closed bound =
    Float.is_finite !incumbent_obj
    && (!incumbent_obj -. bound <= options.gap_abs
        || !incumbent_obj -. bound
           <= options.gap_rel *. Float.max 1.0 (Float.abs !incumbent_obj))
  in
  let unbounded = ref false in
  (* Node selection is best-bound with depth-first plunging: after branching,
     the child on the rounding side of the fractional variable is explored
     immediately (the plunge stack), which finds integral incumbents far
     faster than pure best-first on near-integral allocation problems. *)
  let plunge : (float * node) list ref = ref [] in
  let process node parent_bound =
    if parent_bound < !incumbent_obj && not (gap_closed parent_bound) then begin
      incr nodes;
      let basis =
        if not options.warm_start then None
        else
          match node.wb with
          | None -> None
          | Some wb -> (
            match !fac_cache with
            | Some (key, fac) when key == wb -> Some { wb with Simplex.wfac = Some fac }
            | _ -> Some wb)
      in
      (match basis with Some _ -> incr warm_nodes | None -> ());
      match
        Simplex.solve ~pricing:options.lp_pricing
          ~devex_carry:options.lp_devex_carry ~backend:options.lp_backend
          ?kernels:options.lp_kernels ~ws:lp_ws
          ~dual_simplex:options.dual_restart ?basis ~lb:node.nlb ~ub:node.nub std
      with
      | Simplex.Infeasible _ -> ()
      | Simplex.Unbounded -> unbounded := true
      | Simplex.Iteration_limit _ -> inexact := true
      | Simplex.Optimal
          { x; obj; iterations; dual_iterations; bland_iterations; basis = final_basis; kstats; _ }
        ->
        lp_iters := !lp_iters + iterations;
        bland_pivots := !bland_pivots + bland_iterations;
        bound_flips := !bound_flips + kstats.Simplex.bound_flips;
        if dual_iterations > 0 then begin
          incr dual_nodes;
          dual_pivots := !dual_pivots + dual_iterations
        end;
        if obj < !incumbent_obj -. options.gap_abs then begin
          if integral std ~int_tol:options.int_tol x then begin
            (* round off the tiny fractional noise before storing *)
            let y = Array.copy x in
            for j = 0 to std.nvars - 1 do
              if std.integer.(j) then y.(j) <- Float.round y.(j)
            done;
            update_incumbent y obj
          end
          else begin
            if !nodes mod options.heuristic_period = 1 then begin
              match rounding_probe std node x with
              | Some (y, hobj) -> update_incumbent y hobj
              | None -> ()
            end;
            match pick_branch_var std ~int_tol:options.int_tol x with
            | None -> ()
            | Some j ->
              (* both children share one stripped snapshot of this node's
                 optimal basis; the factorization lives only in the cache *)
              let stripped = { final_basis with Simplex.wfac = None } in
              (match final_basis.Simplex.wfac with
              | Some fac -> fac_cache := Some (stripped, fac)
              | None -> ());
              let wb = if options.warm_start then Some stripped else None in
              let v = x.(j) in
              let down_ub = Array.copy node.nub in
              down_ub.(j) <- Float.floor v;
              let up_lb = Array.copy node.nlb in
              up_lb.(j) <- Float.ceil v;
              let down_ok = Float.floor v >= node.nlb.(j) -. 1e-9 in
              let up_ok = Float.ceil v <= node.nub.(j) +. 1e-9 in
              let down = { nlb = node.nlb; nub = down_ub; depth = node.depth + 1; wb } in
              let up = { nlb = up_lb; nub = node.nub; depth = node.depth + 1; wb } in
              let frac = v -. Float.floor v in
              let near, near_ok, far, far_ok =
                if frac < 0.5 then (down, down_ok, up, up_ok)
                else (up, up_ok, down, down_ok)
              in
              if far_ok then Heap.push open_nodes obj far;
              if near_ok then plunge := (obj, near) :: !plunge
          end
        end
    end
  in
  let seed_status = ref Seed_none in
  (match options.initial with
  | Some x0 when Array.length x0 = std.nvars -> (
    let objective_of y =
      let obj = ref std.obj_offset in
      for j = 0 to std.nvars - 1 do
        obj := !obj +. (std.obj.(j) *. y.(j))
      done;
      !obj
    in
    match Model.check_solution std x0 with
    | Ok () ->
      seed_status := Seed_accepted;
      update_incumbent (Array.copy x0) (objective_of x0)
    | Error _ -> (
      (* A stale seed — e.g. last round's incumbent after churn moved the
         bounds — gets one bounded repair attempt: clamp into the root
         node's (integer-tightened) bounds and round integer variables.
         Only the full checker decides; a still-invalid seed is counted
         as rejected and branch-and-bound proceeds unseeded. *)
      let y = Array.copy x0 in
      for j = 0 to std.nvars - 1 do
        let v = Float.max root_lb.(j) (Float.min root_ub.(j) y.(j)) in
        y.(j) <-
          (if std.integer.(j) then
             Float.max root_lb.(j) (Float.min root_ub.(j) (Float.round v))
           else v)
      done;
      match Model.check_solution std y with
      | Ok () ->
        seed_status := Seed_repaired;
        update_incumbent y (objective_of y)
      | Error _ -> seed_status := Seed_rejected))
  | Some _ -> seed_status := Seed_rejected
  | None -> ());
  if options.node_limit > 0 then
    process { nlb = root_lb; nub = root_ub; depth = 0; wb = options.root_basis } neg_infinity;
  let max_plunge_depth = 100 in
  let stop = ref !unbounded in
  while not !stop do
    if elapsed () > options.time_limit || !nodes >= options.node_limit then stop := true
    else if
      (* stalled: the incumbent has not improved for [stall_node_limit]
         consecutive nodes.  This is the continuous-loop stopping rule —
         a near-optimal carried seed makes every round stop almost
         immediately, while a poorly-seeded search keeps running as long
         as it keeps finding better allocations. *)
      options.stall_node_limit > 0
      && !incumbent <> None
      && !nodes - !last_improve >= options.stall_node_limit
    then stop := true
    else begin
      (match !plunge with
      | (bound, node) :: rest ->
        plunge := rest;
        if bound >= !incumbent_obj || gap_closed bound then ()
        else if node.depth > max_plunge_depth then Heap.push open_nodes bound node
        else process node bound
      | [] -> (
        match Heap.pop open_nodes with
        | None -> stop := true
        | Some (bound, node) ->
          if bound >= !incumbent_obj || gap_closed bound then stop := true
            (* best-first: every remaining node is at least this bad *)
          else process node bound));
      if !unbounded then stop := true
    end
  done;
  (* drain the plunge stack into the heap so the final bound is correct *)
  List.iter (fun (bound, node) -> Heap.push open_nodes bound node) !plunge;
  let best_bound =
    if !unbounded then neg_infinity
    else
      match Heap.min_key open_nodes with
      | Some b -> Float.min b !incumbent_obj
      | None -> !incumbent_obj
  in
  let status =
    if !unbounded then Unbounded
    else
      match !incumbent with
      | Some _ ->
        if Heap.is_empty open_nodes && not !inexact then Optimal
        else if gap_closed best_bound && not !inexact then Optimal
        else Feasible
      | None ->
        if Heap.is_empty open_nodes && not !inexact then Infeasible else Unknown
  in
  {
    status;
    solution = !incumbent;
    objective = !incumbent_obj;
    best_bound;
    gap = (if !incumbent = None then infinity else !incumbent_obj -. best_bound);
    nodes = !nodes;
    lp_iterations = !lp_iters;
    warm_started_nodes = !warm_nodes;
    dual_restarted_nodes = !dual_nodes;
    dual_pivots = !dual_pivots;
    bound_flips = !bound_flips;
    bland_pivots = !bland_pivots;
    seed = !seed_status;
    elapsed = elapsed ();
  }

(* Project a caller-supplied root basis of the {e original} model onto the
   presolved one: variables keep their indices (presolve preserves them),
   slack columns are renumbered to the surviving rows, and basis positions
   of dropped rows vanish.  Rows whose carried column disappeared get a free
   slack; any resulting rank deficiency is the simplex's repairing
   refactorization's problem.  [None] when the variable spaces disagree. *)
let project_root_basis ~kept_rows (reduced : Model.std) (wb : Simplex.warm_basis) =
  let nvars = reduced.Model.nvars and m = reduced.Model.nrows in
  let old_m = Array.length wb.Simplex.wcols in
  let old_nvars = Array.length wb.Simplex.wstatus - old_m in
  if old_nvars <> nvars || Array.length kept_rows <> m then None
  else begin
    let slack_map = Array.make old_m (-1) in
    Array.iteri (fun newi oldi -> slack_map.(oldi) <- newi) kept_rows;
    let remap c =
      if c < nvars then c
      else
        let r = slack_map.(c - nvars) in
        if r < 0 then -1 else nvars + r
    in
    let ntotal = nvars + m in
    let used = Array.make ntotal false in
    let wcols = Array.make m (-1) in
    Array.iteri
      (fun newi oldi ->
        let c = remap wb.Simplex.wcols.(oldi) in
        if c >= 0 && not used.(c) then begin
          wcols.(newi) <- c;
          used.(c) <- true
        end)
      kept_rows;
    let next_free = ref 0 in
    for i = 0 to m - 1 do
      if wcols.(i) < 0 then begin
        let own = nvars + i in
        let c =
          if not used.(own) then own
          else begin
            while used.(nvars + !next_free) do
              incr next_free
            done;
            nvars + !next_free
          end
        in
        wcols.(i) <- c;
        used.(c) <- true
      end
    done;
    let wstatus = Array.make ntotal Simplex.At_lower in
    Array.blit wb.Simplex.wstatus 0 wstatus 0 nvars;
    Array.iteri
      (fun newi oldi -> wstatus.(nvars + newi) <- wb.Simplex.wstatus.(old_nvars + oldi))
      kept_rows;
    for j = 0 to ntotal - 1 do
      if used.(j) then wstatus.(j) <- Simplex.Basic
      else if wstatus.(j) = Simplex.Basic then wstatus.(j) <- Simplex.At_lower
    done;
    (* the factorization and devex weights belong to the unprojected
       basis / column space; never carry them *)
    Some { Simplex.wcols; wstatus; wfac = None; wdevex = None }
  end

let solve ?(options = default_options) (std : Model.std) =
  (* presolve first: bound tightening and row elimination are pure wins for
     every node's LP, and trivially infeasible models are rejected without
     touching the simplex *)
  match Presolve.run std with
  | Presolve.Proven_infeasible _ ->
    {
      status = Infeasible;
      solution = None;
      objective = infinity;
      best_bound = infinity;
      gap = infinity;
      nodes = 0;
      lp_iterations = 0;
      warm_started_nodes = 0;
      dual_restarted_nodes = 0;
      dual_pivots = 0;
      bound_flips = 0;
      bland_pivots = 0;
      seed = (if options.initial = None then Seed_none else Seed_rejected);
      elapsed = 0.0;
    }
  | Presolve.Reduced { std = reduced; fixed; kept_rows; _ } ->
    let options =
      match options.root_basis with
      | Some wb -> { options with root_basis = project_root_basis ~kept_rows reduced wb }
      | None -> options
    in
    let outcome = solve_presolved ~options reduced in
    (match outcome.solution with
    | Some x -> { outcome with solution = Some (Presolve.restore ~fixed x) }
    | None -> outcome)
