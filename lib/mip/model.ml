type var = int

type kind = Continuous | Integer

type sense = Le | Ge | Eq

type row = { rname : string; expr : Lin_expr.t; rsense : sense; rrhs : float }

type vinfo = { vname : string; mutable vlb : float; mutable vub : float; vkind : kind }

type t = {
  mutable vars : vinfo array;
  mutable nvars : int;
  mutable rows : row list;  (* reversed *)
  mutable nrows : int;
  mutable obj : Lin_expr.t;
}

let create () = { vars = Array.make 16 { vname = ""; vlb = 0.; vub = 0.; vkind = Continuous }; nvars = 0; rows = []; nrows = 0; obj = Lin_expr.zero }

let add_var ?name ?(lb = 0.0) ?(ub = infinity) ?(kind = Continuous) t =
  if lb > ub then invalid_arg "Model.add_var: lb > ub";
  if t.nvars = Array.length t.vars then begin
    let bigger = Array.make (2 * t.nvars) t.vars.(0) in
    Array.blit t.vars 0 bigger 0 t.nvars;
    t.vars <- bigger
  end;
  let id = t.nvars in
  let vname = match name with Some n -> n | None -> Printf.sprintf "x%d" id in
  t.vars.(id) <- { vname; vlb = lb; vub = ub; vkind = kind };
  t.nvars <- t.nvars + 1;
  id

let add_constraint ?name t expr rsense rhs =
  let id = t.nrows in
  let rname = match name with Some n -> n | None -> Printf.sprintf "r%d" id in
  let rrhs = rhs -. Lin_expr.get_constant expr in
  t.rows <- { rname; expr; rsense; rrhs } :: t.rows;
  t.nrows <- t.nrows + 1;
  id

let set_objective t e = t.obj <- e

let add_to_objective t e = t.obj <- Lin_expr.add t.obj e

let add_pos_part ?name t ~weight e =
  if weight < 0.0 then invalid_arg "Model.add_pos_part: negative weight";
  let y = add_var ?name ~lb:0.0 t in
  (* y >= e  <=>  e - y <= 0; the defining row inherits the auxiliary
     variable's (stable) name so cross-round diffs can match it by name *)
  let rname = Printf.sprintf "%s_def" t.vars.(y).vname in
  let _ = add_constraint ~name:rname t (Lin_expr.sub e (Lin_expr.var y)) Le 0.0 in
  add_to_objective t (Lin_expr.term weight y);
  y

let add_max_over ?name t ~weight es =
  if weight < 0.0 then invalid_arg "Model.add_max_over: negative weight";
  let z = add_var ?name ~lb:0.0 t in
  let vname = t.vars.(z).vname in
  let bound i e =
    ignore
      (add_constraint
         ~name:(Printf.sprintf "%s_def%d" vname i)
         t (Lin_expr.sub e (Lin_expr.var z)) Le 0.0)
  in
  List.iteri bound es;
  add_to_objective t (Lin_expr.term weight z);
  z

let num_vars t = t.nvars

let num_constraints t = t.nrows

let check_var t v fn =
  if v < 0 || v >= t.nvars then
    invalid_arg (Printf.sprintf "Model.%s: variable %d out of range" fn v)

let var_name t v = check_var t v "var_name"; t.vars.(v).vname

let var_kind t v = check_var t v "var_kind"; t.vars.(v).vkind

let var_bounds t v = check_var t v "var_bounds"; (t.vars.(v).vlb, t.vars.(v).vub)

let set_var_bounds t v ~lb ~ub =
  check_var t v "set_var_bounds";
  if lb > ub then invalid_arg "Model.set_var_bounds: lb > ub";
  t.vars.(v).vlb <- lb;
  t.vars.(v).vub <- ub

let objective t = t.obj

let objective_offset t = Lin_expr.get_constant t.obj

type std = {
  nvars : int;
  nrows : int;
  obj : float array;
  obj_offset : float;
  lb : float array;
  ub : float array;
  integer : bool array;
  row_sense : sense array;
  rhs : float array;
  col_ptr : int array;
  col_ind : int array;
  col_val : float array;
  row_cols : int array array;
  row_coefs : float array array;
  var_names : string array;
  row_names : string array;
}

let compile (t : t) =
  let nvars = t.nvars and nrows = t.nrows in
  let obj = Array.make nvars 0.0 in
  let set_obj (c, v) =
    if v < 0 || v >= nvars then invalid_arg "Model.compile: objective references unknown variable";
    obj.(v) <- obj.(v) +. c
  in
  List.iter set_obj (Lin_expr.terms t.obj);
  let rows = Array.of_list (List.rev t.rows) in
  let row_sense = Array.map (fun r -> r.rsense) rows in
  let rhs = Array.map (fun r -> r.rrhs) rows in
  let row_names = Array.map (fun r -> r.rname) rows in
  let row_cols = Array.make nrows [||] and row_coefs = Array.make nrows [||] in
  (* Column counts first so we can size the CSC arrays exactly. *)
  let col_count = Array.make nvars 0 in
  let terms_of = Array.make nrows [] in
  Array.iteri
    (fun i r ->
      let ts = Lin_expr.terms r.expr in
      terms_of.(i) <- ts;
      let count (c, v) =
        if v < 0 || v >= nvars then
          invalid_arg (Printf.sprintf "Model.compile: row %s references unknown variable %d" r.rname v);
        if c <> 0.0 then col_count.(v) <- col_count.(v) + 1
      in
      List.iter count ts)
    rows;
  (* packed CSC: col_ptr.(v) .. col_ptr.(v+1)-1 index into col_ind/col_val *)
  let col_ptr = Array.make (nvars + 1) 0 in
  for v = 0 to nvars - 1 do
    col_ptr.(v + 1) <- col_ptr.(v) + col_count.(v)
  done;
  let nnz = col_ptr.(nvars) in
  let col_ind = Array.make nnz 0 in
  let col_val = Array.make nnz 0.0 in
  let col_fill = Array.blit col_ptr 0 col_count 0 nvars; col_count in
  Array.iteri
    (fun i _ ->
      let ts = List.filter (fun (c, _) -> c <> 0.0) terms_of.(i) in
      row_cols.(i) <- Array.of_list (List.map snd ts);
      row_coefs.(i) <- Array.of_list (List.map fst ts);
      let fill (c, v) =
        let k = col_fill.(v) in
        col_ind.(k) <- i;
        col_val.(k) <- c;
        col_fill.(v) <- k + 1
      in
      List.iter fill ts)
    rows;
  {
    nvars;
    nrows;
    obj;
    obj_offset = Lin_expr.get_constant t.obj;
    lb = Array.init nvars (fun v -> t.vars.(v).vlb);
    ub = Array.init nvars (fun v -> t.vars.(v).vub);
    integer = Array.init nvars (fun v -> t.vars.(v).vkind = Integer);
    row_sense;
    rhs;
    col_ptr;
    col_ind;
    col_val;
    row_cols;
    row_coefs;
    var_names = Array.init nvars (fun v -> t.vars.(v).vname);
    row_names;
  }

let check_solution ?(tol = 1e-6) std x =
  if Array.length x <> std.nvars then Error "solution length mismatch"
  else begin
    let error = ref None in
    let fail msg = if !error = None then error := Some msg in
    for v = 0 to std.nvars - 1 do
      if x.(v) < std.lb.(v) -. tol then
        fail (Printf.sprintf "%s below lower bound (%g < %g)" std.var_names.(v) x.(v) std.lb.(v));
      if x.(v) > std.ub.(v) +. tol then
        fail (Printf.sprintf "%s above upper bound (%g > %g)" std.var_names.(v) x.(v) std.ub.(v));
      if std.integer.(v) && Float.abs (x.(v) -. Float.round x.(v)) > tol then
        fail (Printf.sprintf "%s not integral (%g)" std.var_names.(v) x.(v))
    done;
    for i = 0 to std.nrows - 1 do
      let lhs = ref 0.0 in
      let cols = std.row_cols.(i) and coefs = std.row_coefs.(i) in
      for k = 0 to Array.length cols - 1 do
        lhs := !lhs +. (coefs.(k) *. x.(cols.(k)))
      done;
      let violated =
        match std.row_sense.(i) with
        | Le -> !lhs > std.rhs.(i) +. tol
        | Ge -> !lhs < std.rhs.(i) -. tol
        | Eq -> Float.abs (!lhs -. std.rhs.(i)) > tol
      in
      if violated then
        fail (Printf.sprintf "row %s violated (lhs=%g rhs=%g)" std.row_names.(i) !lhs std.rhs.(i))
    done;
    match !error with None -> Ok () | Some msg -> Error msg
  end

let pp_stats ppf std =
  let nint = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 std.integer in
  let nnz = std.col_ptr.(std.nvars) in
  Format.fprintf ppf "vars=%d (int=%d) rows=%d nnz=%d" std.nvars nint std.nrows nnz
