(** Factorized simplex basis: FTRAN/BTRAN and rank-one updates behind one
    interface, with two interchangeable representations.

    - {!Lu} (the production backend): a sparse LU factorization computed with
      Markowitz pivoting at refactorization time, extended by product-form
      eta updates after each simplex pivot.  FTRAN/BTRAN run through the
      triangular factors and the eta file in O(nnz) instead of O(m²), and
      refactorization rebuilds the factors in roughly O(nnz·fill) instead of
      the O(m³) dense elimination.
    - {!Dense} (the reference backend): the explicitly maintained dense
      Gauss–Jordan basis inverse the solver shipped with.  It is kept as the
      differential-testing oracle (see [test/test_differential.ml]) and for
      benchmarking the factorized path against
      ([bench/kernels.ml] eta-vs-dense rows).

    Both representations answer the same queries, so {!Simplex} is written
    against this module only and the backend is a solver option.

    A factorization goes stale in two ways, and {!update} /
    {!should_refactorize} encode the refactorization policy:
    - the update chain grows past its budget (eta file length for {!Lu},
      update count for {!Dense}), or the accumulated error estimate from
      small pivots crosses a threshold — {!should_refactorize} turns true;
    - a single proposed pivot element is too small to apply stably —
      {!update} refuses (returns [false]) without touching the
      factorization, and the caller must refactorize from the new basis
      instead of dividing by a near-zero. *)

type kind = Dense | Lu

type kernels = Hypersparse | Dense_oracle
(** Solve-kernel selection, orthogonal to {!kind}.  [Hypersparse] runs the
    triangular solves of the {!Lu} backend as graph traversals over the
    factor patterns (Gilbert–Peierls-style reachability), touching only the
    steps reachable from the right-hand side's nonzeros; [Dense_oracle]
    runs the very same arithmetic as full scans over every step.  The two
    perform bit-identical floating-point operations on every reachable
    entry — the entries a traversal skips are structural zeros — so a solve
    under either kernel takes the same pivot sequence, which is what the
    sparse-vs-dense differential battery asserts.  A traversal whose reach
    densifies past a fraction of the steps falls back to the full scan for
    that pass (the fully-dense-column worst case), again without changing
    any result. *)

val kernels_of_env : unit -> kernels
(** Kernel mode forced by the [RAS_LP_KERNELS] environment variable
    ("dense" selects {!Dense_oracle}); {!Hypersparse} when unset.  CI runs
    the test suite once under each. *)

(** Sparse vector over a dense backing store: [idx.(0..n-1)] lists the
    nonzero positions in ascending order and [vals] is zero outside them.
    The sparse solves below return svecs owned by the factorization; each
    is valid until the next solve of the same direction on the same
    {!t}. *)
module Svec : sig
  type t = { mutable n : int; idx : int array; vals : float array }

  val make : int -> t
  val clear : t -> unit
end

type t
(** Mutable factorization state for one m×m basis.  Not thread-safe; copy
    with {!copy} to share across solves (branch-and-bound snapshot
    adoption). *)

exception Singular
(** Raised by {!refactorize} when the basis matrix is (numerically)
    singular.  The factorization is left unchanged. *)

val create : ?kernels:kernels -> kind -> m:int -> t
(** Fresh factorization of the m×m identity (the all-slack basis).
    [kernels] defaults to {!kernels_of_env}. *)

val kind : t -> kind
val dim : t -> int
val kernels : t -> kernels

val set_kernels : t -> kernels -> unit
(** Switch the solve kernel; takes effect on the next solve call (the
    factors themselves are kernel-agnostic). *)

val set_identity : t -> unit
(** Reset to the identity factorization (cold all-slack start). *)

val refactorize :
  t -> basis:int array -> col:(int -> (int -> float -> unit) -> unit) -> unit
(** [refactorize t ~basis ~col] rebuilds the factorization from scratch for
    the matrix whose [i]-th column is column [basis.(i)] of the constraint
    matrix; [col j f] must call [f row coef] for every nonzero of column
    [j].  Clears the eta file / update counter.  Raises {!Singular} (state
    unchanged) when elimination cannot complete. *)

val refactorize_repaired :
  t -> basis:int array -> col:(int -> (int -> float -> unit) -> unit) -> (int * int) list
(** Like {!refactorize}, but a rank-deficient basis is repaired rather than
    rejected ({!Lu} backend only): columns that prove linearly dependent
    during elimination are replaced by unit columns of the rows left
    without a pivot, and the factorization completes for the repaired
    matrix.  Returns the [(position, row)] substitutions — the caller must
    install row [row]'s slack at basis position [position] in its own
    bookkeeping; the empty list means the basis was already nonsingular.
    This is what makes a cross-round mapped basis usable after row
    removals: projecting out rows can make carried columns dependent, and
    the repair keeps the independent majority instead of discarding the
    whole warm start.  The {!Dense} backend takes the strict path and
    raises {!Singular}. *)

val ftran_col : t -> int array -> float array -> float array
(** [ftran_col t rows coefs] returns B⁻¹a for the sparse column a given by
    parallel [rows]/[coefs] arrays (the simplex entering column). *)

val ftran_unit : t -> int -> float array
(** [ftran_unit t r] is {!ftran_col} on the unit column e_r (slack
    columns). *)

val ftran_dense : t -> float array -> float array
(** [ftran_dense t b] returns B⁻¹b for a dense right-hand side [b] indexed
    by constraint row; the result is indexed by basis position (used to
    recompute the basic-variable values). *)

val btran_dense : t -> float array -> float array
(** [btran_dense t c] returns B⁻ᵀc: the simplex multipliers y solving
    yᵀB = cᵀ for a cost vector [c] indexed by basis position.  The result
    is indexed by constraint row. *)

val btran_dense_into : t -> float array -> float array -> unit
(** [btran_dense_into t c y] is {!btran_dense} storing its result into the
    caller buffer [y] (length m, fully overwritten) instead of allocating;
    [c] and [y] must not alias.  The simplex phase-1 dual recompute runs
    every iteration, and this keeps it allocation-free. *)

val row_of_inverse : t -> int -> float array
(** [row_of_inverse t r] is row [r] of B⁻¹ (equivalently B⁻ᵀe_r): the
    vector behind the dual-simplex pivot row and the incremental dual
    update. *)

val ftran_col_sparse : t -> int array -> float array -> off:int -> len:int -> Svec.t
(** [ftran_col_sparse t ind val_ ~off ~len] is {!ftran_col} on the packed
    column slice [ind]/[val_].[off .. off+len-1], returned as a sparse
    vector (see {!Svec} for the ownership rule).  Under {!Hypersparse} the
    triangular passes visit only the steps reachable from the column's
    nonzeros. *)

val ftran_unit_sparse : t -> int -> Svec.t
(** {!ftran_col_sparse} on the unit column e_r (slack columns). *)

val btran_unit_sparse : t -> int -> Svec.t
(** Sparse {!row_of_inverse}: row [r] of B⁻¹ as a sparse row-indexed
    vector, in the factorization's BTRAN svec (separate from the FTRAN
    svec, so a pivot may hold both at once). *)

val update_sparse : t -> alpha:Svec.t -> row:int -> bool
(** {!update} taking the FTRAN result in sparse form: the eta (and the
    stability guards) are built from the pattern without scanning the full
    column. *)

type solve_stats = {
  ftran_calls : int;
  ftran_nnz : int;  (** total result nonzeros over all sparse FTRANs *)
  btran_calls : int;
  btran_nnz : int;
}
(** Sparse-solve counters since creation / the last {!reset_stats}: the
    bench kernel rows derive [avg_ftran_nnz]/[avg_btran_nnz] from these. *)

val solve_stats : t -> solve_stats
val reset_stats : t -> unit

val update : t -> alpha:float array -> row:int -> bool
(** [update t ~alpha ~row] records the basis change that replaces the
    column in basis position [row], where [alpha] = B⁻¹a_q is the FTRAN of
    the entering column (so [alpha.(row)] is the pivot element).  Returns
    [false] — leaving the factorization unchanged — when the pivot element
    is too small in absolute or relative terms to apply stably; the caller
    must then {!refactorize} from the updated basis.  For {!Lu} a
    successful update appends one eta to the product-form file; for
    {!Dense} it performs the Gauss–Jordan rank-one update of the inverse. *)

val should_refactorize : t -> bool
(** The update chain has exhausted its budget (eta-file length, dense
    update count) or the accumulated pivot-error estimate crossed its
    threshold: the caller should refactorize at the next safe point. *)

val updates_since_refactor : t -> int

val eta_nnz : t -> int
(** Total nonzeros in the eta file (0 for {!Dense}): the memory and
    per-solve cost of the update chain, exposed for stats and tests. *)

val refactor_count : t -> int

val set_refactor_hook : t -> (unit -> unit) -> unit
(** [set_refactor_hook t f] registers [f] to run after every successful
    {!refactorize} of [t].  There is one hook slot per factorization; the
    owning solve uses it to invalidate state that is only meaningful
    relative to the basis the factors were built from — the {!Simplex}
    Devex pricer resets its reference-framework weights here.  {!copy}
    deliberately does not carry the hook (a copied factorization starts
    detached), and a failed refactorization ({!Singular}) does not fire
    it. *)

val copy : t -> t
(** Deep copy; the copy can be mutated independently.  The refactor hook is
    not copied (see {!set_refactor_hook}). *)
