(** Bounded-variable simplex for linear programs in {!Model.std} form.

    The implementation is a revised simplex over a factorized basis
    ({!Basis}: sparse Markowitz LU with product-form eta updates, or the
    dense Gauss–Jordan inverse kept as a reference backend):

    - slack columns are appended internally (one per row) so the working
      problem is [min c.x  s.t.  Ax + s = b] with bounds on every column;
    - infeasible starts are handled by a piecewise-linear phase 1 that
      minimizes the total bound violation of basic variables (no artificial
      columns are added);
    - three pricing rules are available (see {!pricing}): a full Dantzig
      scan, candidate-list partial pricing over a rotating window, and
      Devex approximate steepest-edge (the default); every rule switches
      to Bland's rule after a run of degenerate pivots, which guarantees
      termination; the simplex multipliers are cached and updated
      incrementally after phase-2 pivots instead of being recomputed by a
      full BTRAN every iteration;
    - the basis is refactorized when the update chain exhausts its budget or
      accumulated pivot error crosses a threshold (see {!Basis}), and before
      declaring optimality, bounding numerical drift;
    - solves can be warm-started from the final basis of a previous solve of
      the same model with different bounds — this is how {!Branch_bound}
      restarts each child node from its parent's optimal basis;
    - a warm-started basis that is still dual feasible (the branch-and-bound
      child pattern: parent-optimal basis, tightened bounds) is
      re-optimized by a dual simplex phase — typically a handful of pivots —
      before the primal phases run; the dual phase bails out to the primal
      path on any numerical doubt, so it is purely an accelerator.

    Integrality markers in the input are ignored: this is the LP relaxation
    solver used by {!Branch_bound}. *)

type pricing =
  | Dantzig  (** Full scan, most-negative reduced cost.  The textbook rule;
                 O(n) reduced costs per iteration and prone to long stalls
                 on degenerate problems. *)
  | Partial  (** Candidate-list partial pricing: Dantzig scores within a
                 rotating window of columns, falling back to a full scan
                 when the window prices out. *)
  | Devex
      (** Forrest–Goldfarb approximate steepest-edge.  Each nonbasic
          column carries a reference-framework weight [w_j ≥ 1]
          approximating [‖B⁻¹A_j‖²] over a reference basis; the entering
          column maximizes [d_j²/w_j].  Weights are updated from the
          pivot's FTRAN/BTRAN vectors (no extra column passes: the
          neighbour update is folded into the next pricing scan) and the
          framework is reset — all weights back to 1 — on
          refactorization, on entry to Bland mode, when the accuracy
          estimate strikes out, and on [devex_reset_period].  Fewer
          pivots than Dantzig/Partial on degenerate problems at the cost
          of a full-width scan per iteration. *)
(** Entering-variable selection rule for the primal phases. *)

type col_status = Basic | At_lower | At_upper | Nb_free
(** Where a column currently rests: basic, pinned at a bound, or free at
    zero. *)

type warm_basis = {
  wcols : int array;  (** [wcols.(i)] is the column basic in row [i] (slack
                          columns are [nvars + row]). *)
  wstatus : col_status array;
      (** One entry per column including slacks; nonbasic entries record
          which bound the column rests on. *)
  wfac : Basis.t option;
      (** The basis factorization matching [wcols], when available.
          Supplying it lets a restart skip refactorization; dropping it (set
          to [None]) keeps a stored snapshot at O(columns) memory.  It is
          adopted (copied) only when its {!Basis.kind} matches the solve's
          [backend] and its dimension matches the model; otherwise the
          restart refactorizes from [wcols].  When present it must genuinely
          be the factorization of the [wcols] basis — it is not
          cross-checked. *)
  wdevex : float array option;
      (** Devex reference-framework weights at the end of the solve
          ([None] unless the solve priced with {!Devex}).  A restart
          adopts them only when [solve ~devex_carry:true] and the warm
          basis was actually installed; otherwise the restart begins from
          a fresh framework (all weights 1). *)
}
(** A restartable snapshot of a simplex basis.  Obtained from
    {!result.Optimal} and fed back through [solve ~basis]; the solver
    validates the structural fields and silently falls back to a cold start
    on any mismatch, so a stale snapshot degrades performance, not
    correctness. *)

type kernel_stats = {
  avg_ftran_nnz : float;
      (** Mean nonzeros per sparse FTRAN result over the whole solve.  The
          hypersparse win is exactly this (and its BTRAN twin) staying far
          below the row count [m]; under {!Basis.Dense_oracle} the work is
          O(m) regardless, but the counters still measure result density. *)
  avg_btran_nnz : float;
  bound_flips : int;
      (** Nonbasic bound flips performed by the long-step (bound-flip) dual
          ratio test during the dual re-optimization phase.  Each flip
          retires one breakpoint without a basis change; a cluster of flips
          plus one pivot replaces what a textbook dual ratio test does in
          many pivots. *)
}
(** Solve-kernel counters for one solve, reported by {!result.Optimal} and
    surfaced in the bench kernel rows. *)

type workspace
(** Reusable per-solve scratch: all the O(rows + columns) working arrays a
    solve allocates.  Pass the same workspace to consecutive [solve] calls
    on same-shaped models (the branch-and-bound node loop) to make the
    solver's own allocation per solve O(1) arrays instead of O(solve
    count × problem size); a dimension mismatch transparently reallocates.
    A workspace must not be shared across concurrent solves (one per
    domain). *)

val create_workspace : unit -> workspace
(** An empty workspace; arrays are sized on first use. *)

type result =
  | Optimal of {
      x : float array;
      obj : float;
      iterations : int;
      dual_iterations : int;
      bland_iterations : int;
      duals : float array;
      basis : warm_basis;
      kstats : kernel_stats;
    }
      (** [x] has one entry per structural variable; [obj] includes the
          model's objective offset; [duals] holds one simplex multiplier per
          row — the shadow price of the constraint at the optimum (zero for
          non-binding rows).  [iterations] counts every pivot;
          [dual_iterations] is the subset performed by the dual-simplex
          restart phase, and [bland_iterations] the primal subset taken
          under the Bland anti-cycling fallback (nonzero means the solve
          hit a degenerate stall).  [basis] is the final basis (with its
          factorization) for warm-starting related solves. *)
  | Infeasible of { infeasibility : int }
      (** Phase 1 converged with the given number of still-violated basic
          variables. *)
  | Unbounded
  | Iteration_limit of { feasible : bool; obj : float }
      (** The iteration budget ran out; [obj] is meaningful only when
          [feasible]. *)

val solve :
  ?max_iters:int ->
  ?feas_tol:float ->
  ?dual_tol:float ->
  ?pricing:pricing ->
  ?devex_carry:bool ->
  ?degen_limit:int ->
  ?devex_reset_period:int ->
  ?trace:(iteration:int -> min_devex_weight:float -> unit) ->
  ?backend:Basis.kind ->
  ?kernels:Basis.kernels ->
  ?ws:workspace ->
  ?dual_simplex:bool ->
  ?basis:warm_basis ->
  ?lb:float array ->
  ?ub:float array ->
  Model.std ->
  result
(** [solve std] solves the LP relaxation.  [lb]/[ub] override the structural
    variable bounds without touching [std] (this is how branch-and-bound
    explores nodes).  [basis] warm-starts from a previous solve's final
    basis (see {!warm_basis}).  [pricing] selects the entering-variable
    rule (default {!Devex}); [devex_carry] lets a warm start adopt the
    snapshot's Devex weights instead of resetting the framework (default
    [false]: reset).  [degen_limit] is the number of consecutive
    degenerate pivots tolerated before switching to Bland's rule (default
    100; [0] switches on the first degenerate pivot — used by the cycling
    tests).  [devex_reset_period] > 0 forces a framework reset every that
    many iterations (default [0]: never; used by the reset-equivalence
    property tests).  [trace], when supplied and pricing is {!Devex}, is
    called after every primal pivot with the iteration count and the
    minimum weight over all columns (test instrumentation).  [backend]
    selects the basis representation ([Basis.Lu] by default; [Basis.Dense]
    is the reference oracle used by the differential tests).  [kernels]
    selects the triangular-solve kernels ({!Basis.Hypersparse} /
    {!Basis.Dense_oracle}); the default comes from
    {!Basis.kernels_of_env}, and the two modes take bit-identical pivot
    sequences (the sparse-vs-dense differential battery's invariant).
    [ws] supplies a reusable {!workspace}.  [dual_simplex:false] disables
    the dual re-optimization phase on warm starts (the differential
    reference configuration).  Defaults: [max_iters] scales with problem
    size, [feas_tol = 1e-7], [dual_tol = 1e-7]. *)
