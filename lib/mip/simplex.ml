(* Column status.  A column is either basic (its value is determined by the
   basis equations) or nonbasic pinned at one of its bounds; free nonbasic
   columns sit at zero. *)
type col_status = Basic | At_lower | At_upper | Nb_free

(* Entering-column selection rule.  Dantzig and Partial score candidates by
   |reduced cost| (over every column / over a rotating window); Devex scores
   by d^2 / w_j with reference-framework weights approximating the
   steepest-edge norms (Forrest-Goldfarb). *)
type pricing = Dantzig | Partial | Devex

(* A restartable basis snapshot: which column is basic in each row plus the
   bound every nonbasic column rests on.  [wfac] optionally carries the
   matching basis factorization so a restart can skip refactorization;
   holders that keep many snapshots alive (the branch-and-bound node queue)
   drop it to stay O(ntotal) per snapshot.  [wdevex] optionally carries the
   final Devex weights so a warm restart can keep pricing in the parent's
   reference framework instead of re-referencing to all-ones. *)
type warm_basis = {
  wcols : int array;  (* wcols.(i) = column basic in row i *)
  wstatus : col_status array;  (* one entry per column incl. slacks *)
  wfac : Basis.t option;  (* basis factorization matching wcols *)
  wdevex : float array option;  (* Devex weights at the final basis *)
}

(* Hot-path kernel counters for one solve: average FTRAN/BTRAN result
   nonzeros (the hypersparse win is exactly these staying far below m) and
   the number of nonbasic bound flips the long-step dual ratio test
   performed. *)
type kernel_stats = {
  avg_ftran_nnz : float;
  avg_btran_nnz : float;
  bound_flips : int;
}

type result =
  | Optimal of {
      x : float array;
      obj : float;
      iterations : int;
      dual_iterations : int;
      bland_iterations : int;
      duals : float array;
      basis : warm_basis;
      kstats : kernel_stats;
    }
  | Infeasible of { infeasibility : int }
  | Unbounded
  | Iteration_limit of { feasible : bool; obj : float }

type state = {
  std : Model.std;
  m : int;
  ntotal : int;  (* structural columns + one slack per row *)
  lb : float array;
  ub : float array;
  obj : float array;
  status : col_status array;
  xval : float array;
  basis : int array;  (* basis.(i) = column basic in row i *)
  mutable fac : Basis.t;  (* factorized basis (LU+eta or dense inverse) *)
  feas_tol : float;
  dual_tol : float;
  pivot_tol : float;
  mutable bland : bool;  (* anti-cycling mode *)
  mutable degenerate_run : int;
  degen_limit : int;  (* consecutive degenerate pivots before Bland mode *)
  mutable iterations : int;
  mutable dual_pivots : int;
  mutable bland_pivots : int;  (* pivots whose entering column Bland chose *)
  mutable bound_flips : int;  (* long-step dual ratio-test bound flips *)
  (* cached simplex multipliers y = c_B^T B^-1: recomputed by BTRAN in
     phase 1 (the phase-1 cost vector moves with the iterate) and after
     refactorization, updated incrementally after phase-2 pivots *)
  dual : float array;
  mutable dual_valid : bool;
  mutable dual_phase1 : bool;
  (* solver-owned scratch (reusable across solves through {!workspace}):
     basic-cost buffer for the dual BTRAN, dual ratio-test candidate lists,
     and the accumulated bound-flip column (row-indexed dense + packed
     pattern fed straight to the sparse FTRAN) *)
  cb : float array;  (* m *)
  cand_j : int array;  (* ntotal *)
  cand_d : float array;
  cand_a : float array;  (* |pivot-row entry| *)
  cand_r : float array;  (* dual ratio *)
  cand_ord : int array;
  frhs : float array;  (* m, all-zero between uses *)
  fpat : int array;  (* m *)
  fval : float array;  (* m *)
  fmark : int array;  (* m, row-dedup stamps for the flip column *)
  mutable fstamp : int;
  (* cached reduced costs d_j = c_j - y . A_j under [dual]: maintained
     incrementally across pivots by [update_prices_after_pivot] — in phase
     1 only while no bystander basic crosses a violation boundary (see
     [phase1_costs_shift]) — and otherwise rebuilt in one row-major pass
     skipping zero multiplier rows.  The pricing scan never forms a
     column-times-dual dot product. *)
  dvec : float array;  (* ntotal *)
  mutable dvec_valid : bool;
  (* pivot-row pricing scratch: prod.(j) = (e_r B^-1) . A_j over the
     columns the pivot row touches, with a packed pattern and dedup
     stamps (prod is garbage off-pattern; [fstamp] serves both mark
     arrays) *)
  prod : float array;  (* ntotal *)
  prod_pat : int array;  (* ntotal *)
  pmark : int array;  (* ntotal *)
  (* entering-column selection *)
  pricing : pricing;
  (* partial-pricing rotation state *)
  price_window : int;
  mutable price_cursor : int;
  (* Devex phase-2 candidate list: the set of improving nonbasic columns,
     maintained incrementally.  A column's candidacy can only change when
     its reduced cost or status changes, and every such change flows
     through the sparse pivot-row pricing pass (or a bound flip of the
     column itself) — so the per-iteration pricing scan walks this list
     instead of all of ntotal, dropping dead entries as it goes.  The
     invariant is one-sided: every improving column is in the list; the
     list may also hold stale non-improving entries until a scan prunes
     them.  [cl_mark.(j) = cl_gen] means j is in the list; rebuilt from a
     full scan whenever the reduced-cost cache itself is rebuilt. *)
  clist : int array;  (* ntotal *)
  mutable clist_n : int;
  cl_mark : int array;  (* ntotal *)
  mutable cl_gen : int;
  mutable clist_valid : bool;
  (* Devex reference-framework state.  [devex_w.(j)] approximates the
     steepest-edge weight of column j relative to the basis at the last
     reference reset; weights of basic columns are frozen until they leave.
     The exact Forrest-Goldfarb update needs the pivot row over every
     nonbasic column, which this revised simplex never forms densely;
     instead each pivot's sparse pivot-row pricing pass (the same one that
     updates the cached reduced costs) folds w_j <- max(w_j, g * (rho .
     A_j)^2) over exactly the columns the row touches — off-row columns
     have rho . A_j = 0 and their weights are untouched by construction. *)
  devex_w : float array;
  mutable devex_strikes : int;  (* weight-accuracy violations observed *)
  mutable devex_gen : int;  (* bumped by every reference reset *)
  devex_reset_period : int;  (* forced re-reference every N pivots; 0 = off *)
  trace : (iteration:int -> min_devex_weight:float -> unit) option;
}

(* -------------------------------------------------------------------- *)
(* Column access: structural columns come from the compiled sparse form;
   slack column [nvars + i] is the unit vector e_i.                      *)

let col_iter st j f =
  if j < st.std.nvars then begin
    let p = st.std.col_ptr in
    let ind = st.std.col_ind and vl = st.std.col_val in
    for k = p.(j) to p.(j + 1) - 1 do
      f ind.(k) vl.(k)
    done
  end
  else f (j - st.std.nvars) 1.0

(* alpha = B^-1 * A_j through the factorization, as a sparse vector in the
   factorization's FTRAN scratch (valid until the next FTRAN). *)
let ftran st j =
  if j < st.std.nvars then begin
    let off = st.std.col_ptr.(j) in
    Basis.ftran_col_sparse st.fac st.std.col_ind st.std.col_val ~off
      ~len:(st.std.col_ptr.(j + 1) - off)
  end
  else Basis.ftran_unit_sparse st.fac (j - st.std.nvars)

(* -------------------------------------------------------------------- *)
(* Basis maintenance                                                     *)

(* Restart the Devex reference framework: all weights one (the current
   basis becomes the reference basis).  Fired on a cold (re)start, on entry
   to Bland mode, when the accuracy check has struck out, and on a forced
   periodic re-reference.  Routine refactorization deliberately does NOT
   reset: it changes the factors, not the basis, so the reference framework
   the weights were accumulated under is still the truth — wiping them
   there measurably inflated Devex pivot counts. *)
let reset_devex st =
  Array.fill st.devex_w 0 st.ntotal 1.0;
  st.devex_strikes <- 0;
  st.devex_gen <- st.devex_gen + 1

(* Devex accuracy policy.  At pivot time the exact steepest-edge measure of
   the entering column, 1 + ||alpha||², is available for free from the
   FTRAN.  The reference-framework weight approximates the norm over a
   subset of that sum, so it should never exceed the exact measure by much;
   when the stored weight overshoots it by [devex_weight_slack] the
   framework has drifted — one strike — and [devex_max_strikes] strikes
   force a reset. *)
let devex_weight_slack = 3.0
let devex_max_strikes = 3

(* Sparsity-aware tie-breaking for the Devex scan: among candidates whose
   scores are within this factor of the best seen, prefer the column with
   the fewest nonzeros.  The reference-framework weights are coarse
   approximations, so a small score band is inside the rule's own noise —
   but entering a sparser column buys a cheaper FTRAN, a sparser eta and a
   sparser pivot row for every downstream update, which is where the wall
   clock actually goes on hypersparse models. *)
let devex_sparsity_band = 1.5

(* Rebuild the factorization from scratch for the current basis columns.
   Bounds numerical drift from the update chain.  Raises Basis.Singular
   (leaving the factors unchanged) when elimination breaks down. *)
let refactor st =
  Basis.refactorize st.fac ~basis:st.basis ~col:(col_iter st);
  st.dual_valid <- false;
  st.dvec_valid <- false

let recompute_basics st =
  (* x_B = B^-1 (rhs - sum over nonbasic columns of A_j x_j) *)
  let r = Array.copy st.std.rhs in
  for j = 0 to st.ntotal - 1 do
    if st.status.(j) <> Basic && st.xval.(j) <> 0.0 then begin
      let v = st.xval.(j) in
      col_iter st j (fun row c -> r.(row) <- r.(row) -. (c *. v))
    end
  done;
  let vals = Basis.ftran_dense st.fac r in
  for i = 0 to st.m - 1 do
    st.xval.(st.basis.(i)) <- vals.(i)
  done

(* -------------------------------------------------------------------- *)
(* Pricing                                                               *)

let infeasibility_of st b =
  let x = st.xval.(b) in
  if x < st.lb.(b) -. st.feas_tol then st.lb.(b) -. x
  else if x > st.ub.(b) +. st.feas_tol then x -. st.ub.(b)
  else 0.0

let total_infeasibility st =
  let total = ref 0.0 and count = ref 0 in
  for i = 0 to st.m - 1 do
    let v = infeasibility_of st st.basis.(i) in
    if v > 0.0 then begin
      total := !total +. v;
      incr count
    end
  done;
  (!total, !count)

(* Phase-1 cost of the basic variable in row [i]: the gradient of its bound
   violation.  Nonbasic columns always have zero phase-1 cost. *)
let phase1_cost st i =
  let b = st.basis.(i) in
  let x = st.xval.(b) in
  if x < st.lb.(b) -. st.feas_tol then -1.0
  else if x > st.ub.(b) +. st.feas_tol then 1.0
  else 0.0

(* Simplex multipliers into the caller buffer [dst] (length m), through the
   solver-owned basic-cost scratch: no allocation on the phase-1 path that
   runs this every iteration. *)
let compute_duals_into st ~phase1 dst =
  let cb = st.cb in
  for i = 0 to st.m - 1 do
    cb.(i) <- (if phase1 then phase1_cost st i else st.obj.(st.basis.(i)))
  done;
  Basis.btran_dense_into st.fac cb dst

(* The BTRAN that used to run every iteration is hoisted into a cached dual
   vector, updated by one sparse unit-BTRAN per pivot (see
   [update_prices_after_pivot]).  Phase-1 pivots keep the cache too as long
   as the step moved no bystander basic across a violation boundary (the
   cost vector is the violation gradient of the iterate; see
   [phase1_costs_shift]); boundary-crossing steps, phase changes and fresh
   refactorizations pay the full recompute. *)
let ensure_duals st ~phase1 =
  if (not st.dual_valid) || st.dual_phase1 <> phase1 then begin
    compute_duals_into st ~phase1 st.dual;
    st.dual_valid <- true;
    st.dual_phase1 <- phase1
  end

(* prod.(j) = row . A_j over every column, from ONE row-major pass over the
   sparse B^-1 row's pattern: each touched row contributes to the columns
   it intersects (compiled row arrays) plus its own slack.  Returns the
   pattern length; prod holds garbage off-pattern, so readers must stay on
   [prod_pat] (or check [pmark] against the stamp this call leaves in
   [st.fstamp]).  Cost is the total nonzero count of the touched rows —
   independent of ntotal, the hypersparse analogue of pricing a dense pivot
   row against every column. *)
let price_row st (row : Basis.Svec.t) =
  st.fstamp <- st.fstamp + 1;
  let stamp = st.fstamp in
  let prod = st.prod and pat = st.prod_pat and mark = st.pmark in
  let nvars = st.std.nvars in
  let row_cols = st.std.row_cols and row_coefs = st.std.row_coefs in
  let np = ref 0 in
  for u = 0 to row.Basis.Svec.n - 1 do
    let r = row.Basis.Svec.idx.(u) in
    let br = row.Basis.Svec.vals.(r) in
    let cols = row_cols.(r) and coefs = row_coefs.(r) in
    for k = 0 to Array.length cols - 1 do
      let j = cols.(k) in
      let v = br *. coefs.(k) in
      if mark.(j) <> stamp then begin
        mark.(j) <- stamp;
        pat.(!np) <- j;
        incr np;
        prod.(j) <- v
      end
      else prod.(j) <- prod.(j) +. v
    done;
    (* the slack of row r is e_r: touched exactly once, by row r itself *)
    let j = nvars + r in
    mark.(j) <- stamp;
    pat.(!np) <- j;
    incr np;
    prod.(j) <- br
  done;
  !np

(* Rebuild the cached reduced costs from the cached duals in one row-major
   pass that skips zero multiplier rows: d_j = c_j - sum_r y_r A_rj.  The
   old per-column dots paid O(nnz(A)) unconditionally; this pays only for
   the rows y actually weights — under phase-1 costs y is supported on the
   violated rows' BTRAN footprint.  Runs on refactorization, phase entry,
   and the phase-1 steps that shift a bystander's violation gradient. *)
let recompute_dvec st ~phase1 =
  let d = st.dvec and y = st.dual in
  let nvars = st.std.nvars in
  if phase1 then Array.fill d 0 st.ntotal 0.0
  else Array.blit st.obj 0 d 0 st.ntotal;
  let row_cols = st.std.row_cols and row_coefs = st.std.row_coefs in
  for r = 0 to st.m - 1 do
    let yr = y.(r) in
    if yr <> 0.0 then begin
      let cols = row_cols.(r) and coefs = row_coefs.(r) in
      for k = 0 to Array.length cols - 1 do
        let j = cols.(k) in
        d.(j) <- d.(j) -. (yr *. coefs.(k))
      done;
      d.(nvars + r) <- d.(nvars + r) -. yr
    end
  done

(* Make both price caches (duals and reduced costs) valid for [phase1].
   When the duals had to be recomputed (phase change, refactorization,
   phase-1 iterate moved) the reduced costs follow. *)
let ensure_prices st ~phase1 =
  let fresh = (not st.dual_valid) || st.dual_phase1 <> phase1 in
  ensure_duals st ~phase1;
  if fresh || not st.dvec_valid then begin
    recompute_dvec st ~phase1;
    st.dvec_valid <- true;
    (* the reduced costs jumped wholesale; the candidate list built on the
       old values no longer bounds the improving set *)
    st.clist_valid <- false
  end

(* Direction the entering variable would move, or None if it is not an
   improving candidate.  Columns with a zero-width range never enter. *)
let entering_direction st ~d j =
  if st.ub.(j) -. st.lb.(j) <= 0.0 then None
  else
    match st.status.(j) with
    | Basic -> None
    | At_lower -> if d < -.st.dual_tol then Some 1.0 else None
    | At_upper -> if d > st.dual_tol then Some (-1.0) else None
    | Nb_free ->
      if d < -.st.dual_tol then Some 1.0
      else if d > st.dual_tol then Some (-1.0)
      else None

(* Candidate-list maintenance (Devex phase-2 pricing).  [rebuild_clist]
   seeds the list with every improving column in one full scan — bumping
   the membership generation retires all old marks at once.  [clist_add]
   admits a column whose reduced cost or status just changed; non-improving
   and already-listed columns are refused, so list entries are distinct and
   the list can never outgrow ntotal.  Dead entries are pruned lazily by
   the pricing scan itself. *)
let rebuild_clist st =
  st.cl_gen <- st.cl_gen + 1;
  st.clist_n <- 0;
  let dvec = st.dvec in
  for j = 0 to st.ntotal - 1 do
    if st.status.(j) <> Basic then begin
      let d = dvec.(j) in
      match entering_direction st ~d j with
      | Some _ ->
        st.cl_mark.(j) <- st.cl_gen;
        st.clist.(st.clist_n) <- j;
        st.clist_n <- st.clist_n + 1
      | None -> ()
    end
  done;
  st.clist_valid <- true

let clist_add st j =
  if st.clist_valid && st.cl_mark.(j) <> st.cl_gen && st.status.(j) <> Basic
  then begin
    let d = st.dvec.(j) in
    match entering_direction st ~d j with
    | Some _ ->
      st.cl_mark.(j) <- st.cl_gen;
      st.clist.(st.clist_n) <- j;
      st.clist_n <- st.clist_n + 1
    | None -> ()
  end

(* Shared phase-2 pivot epilogue for the price caches.  After the pivot in
   [row] (entering column [q], leaving column [leaving], entering reduced
   cost [d]):
   - y' = y + d * (new B^-1 pivot row), the product-form dual update;
   - d_j' = d_j - d * (row . A_j) for every nonbasic column, via the
     sparse pivot-row pricing pass — columns off the row's pattern are
     untouched (their row entry is a structural zero);
   - the leaving column re-enters the nonbasic set with its exact update
     d_leaving' = lshift - d * (row . A_leaving): its cached entry went
     stale while basic, and [lshift] carries the change in its own cost on
     leaving — zero in phase 2 (a variable keeps its objective cost), but
     in phase 1 a violated basic leaving at its bound sheds its +-1
     violation gradient, which shifts its reduced cost by the negated
     pre-pivot cost;
   - when [fold_g] carries the entering column's reference weight, the
     Forrest-Goldfarb Devex update w_j <- max(w_j, g * (row . A_j)^2)
     rides the same pass.
   [upd_dual] is false on pivots that invalidated the caches (a phase-1
   step that moved a bystander basic across a violation boundary), where
   only the weight fold runs.  Must run after the factorization has
   absorbed the pivot. *)
let update_prices_after_pivot st ~row ~q ~leaving ~d ~lshift ~upd_dual ~fold_g =
  let brow = Basis.btran_unit_sparse st.fac row in
  if upd_dual && d <> 0.0 then begin
    let y = st.dual in
    for u = 0 to brow.Basis.Svec.n - 1 do
      let k = brow.Basis.Svec.idx.(u) in
      y.(k) <- y.(k) +. (d *. brow.Basis.Svec.vals.(k))
    done
  end;
  let upd_dvec = upd_dual && st.dvec_valid in
  let dofold = match fold_g with Some _ -> true | None -> false in
  if upd_dvec || dofold then begin
    let np = price_row st brow in
    let stamp = st.fstamp in
    let g = match fold_g with Some g -> g | None -> 0.0 in
    let dvec = st.dvec and prod = st.prod and pat = st.prod_pat in
    for u = 0 to np - 1 do
      let jj = pat.(u) in
      (* basic columns: reduced costs are rebuilt on leaving (below) and
         Devex freezes their weights until they leave *)
      if st.status.(jj) <> Basic then begin
        let a = prod.(jj) in
        if upd_dvec && d <> 0.0 then begin
          dvec.(jj) <- dvec.(jj) -. (d *. a);
          (* the moved reduced cost may have made jj an improving candidate *)
          clist_add st jj
        end;
        if dofold then begin
          let w' = g *. a *. a in
          if w' > st.devex_w.(jj) then st.devex_w.(jj) <- w'
        end
      end
    done;
    if upd_dvec then begin
      dvec.(leaving) <-
        lshift
        -. (if st.pmark.(leaving) = stamp then d *. prod.(leaving) else 0.0);
      dvec.(q) <- 0.0;
      clist_add st leaving
    end
  end

(* Entering-column choice.  Every regime reads the cached reduced-cost
   vector — no column is ever dotted against the duals here.  Four regimes:
   - Bland's rule (anti-cycling): lowest-index improving column, full scan;
   - full Dantzig: best |reduced cost| over every column (the seed scheme,
     kept selectable for benchmarking);
   - partial pricing: scan a rotating window from [price_cursor]; once an
     improving candidate is seen, stop at the window boundary and take the
     best so far.  Only a completely dry full rotation declares dual
     feasibility, so optimality claims are unchanged;
   - Devex (default): score d^2 / w_j under the approximate steepest-edge
     weights (maintained eagerly by the pivot epilogue, see
     [update_prices_after_pivot]).  Phase 2 scans the incrementally
     maintained candidate list — typically a small fraction of ntotal —
     pruning entries that stopped improving as it goes; an empty scan means
     dual feasibility exactly because the list provably contains every
     improving column.  Phase 1 rebuilds the reduced costs every iteration,
     so no list survives long enough to pay there: full scan. *)
let choose_entering st ~phase1 =
  ensure_prices st ~phase1;
  let dvec = st.dvec in
  if st.bland then begin
    let rec scan j =
      if j >= st.ntotal then None
      else if st.status.(j) = Basic then scan (j + 1)
      else
        let d = dvec.(j) in
        match entering_direction st ~d j with
        | Some dir -> Some (j, dir, d)
        | None -> scan (j + 1)
    in
    scan 0
  end
  else
    match st.pricing with
    | Dantzig ->
    let best = ref None and best_score = ref 0.0 in
    for j = 0 to st.ntotal - 1 do
      if st.status.(j) <> Basic then begin
        let d = dvec.(j) in
        match entering_direction st ~d j with
        | Some dir ->
          let score = Float.abs d in
          if score > !best_score then begin
            best_score := score;
            best := Some (j, dir, d)
          end
        | None -> ()
      end
    done;
    !best
    | Devex ->
    if not st.clist_valid then rebuild_clist st;
    let nvars = st.std.Model.nvars and cp = st.std.Model.col_ptr in
    let nnz_of j = if j < nvars then cp.(j + 1) - cp.(j) else 1 in
    let band = devex_sparsity_band in
    let best = ref None and best_score = ref 0.0 and best_nnz = ref max_int in
    let kept = ref 0 in
    for u = 0 to st.clist_n - 1 do
      let j = st.clist.(u) in
      let d = dvec.(j) in
      match entering_direction st ~d j with
      | Some dir ->
        st.clist.(!kept) <- j;
        incr kept;
        let score = d *. d /. st.devex_w.(j) in
        let nz = nnz_of j in
        let better =
          score > !best_score *. band
          || (score *. band > !best_score && nz < !best_nnz)
        in
        if better then begin
          best_score := Float.max score !best_score;
          best_nnz := nz;
          best := Some (j, dir, d)
        end
      | None ->
        (* prune: unmark so the column can re-enter when its reduced cost
           moves again (generation 0 is never current) *)
        st.cl_mark.(j) <- 0
    done;
    st.clist_n <- !kept;
    !best
    | Partial ->
    let n = st.ntotal in
    let best_j = ref (-1) and best_dir = ref 1.0 and best_d = ref 0.0 in
    let best_score = ref 0.0 in
    let k = ref 0 in
    let stop = ref false in
    while (not !stop) && !k < n do
      let j =
        let c = st.price_cursor + !k in
        if c >= n then c - n else c
      in
      incr k;
      if st.status.(j) <> Basic then begin
        let d = dvec.(j) in
        match entering_direction st ~d j with
        | Some dir ->
          let score = Float.abs d in
          if score > !best_score then begin
            best_score := score;
            best_j := j;
            best_dir := dir;
            best_d := d
          end
        | None -> ()
      end;
      if !best_j >= 0 && !k >= st.price_window then stop := true
    done;
    if !best_j < 0 then None
    else begin
      (* rotate so the next iteration prices a fresh section *)
      st.price_cursor <-
        (let c = st.price_cursor + !k in
         if c >= n then c - n else c);
      Some (!best_j, !best_dir, !best_d)
    end

(* -------------------------------------------------------------------- *)
(* Ratio test                                                            *)

type block =
  | No_block
  | Entering_flip of float
  | Leaving of { row : int; step : float; bound : col_status }

(* In phase 1 an infeasible basic variable only blocks when it reaches the
   bound it violates (at which point it leaves the basis feasible); moving
   away from feasibility never blocks because the pricing step already
   accounted for that gradient. *)
let ratio_test st (alpha : Basis.Svec.t) ~dir ~phase1 j =
  let eps = st.pivot_tol in
  let t_enter =
    match st.status.(j) with
    | Nb_free -> infinity
    | _ ->
      let range = st.ub.(j) -. st.lb.(j) in
      if Float.is_finite range then range else infinity
  in
  let best_step = ref t_enter and best_row = ref (-1) and best_bound = ref At_lower in
  let best_pivot = ref 0.0 in
  (* The pattern is sorted ascending, so candidates are met in the same row
     order as the dense 0..m-1 scan; rows outside the pattern hold exact
     zeros, which |a| > eps rejected anyway — tie-breaking is unchanged. *)
  for u = 0 to alpha.Basis.Svec.n - 1 do
    let i = alpha.Basis.Svec.idx.(u) in
    let a = alpha.Basis.Svec.vals.(i) in
    if Float.abs a > eps then begin
      let b = st.basis.(i) in
      let delta = -.dir *. a in
      let x = st.xval.(b) in
      let lo = st.lb.(b) and hi = st.ub.(b) in
      let candidate =
        if phase1 && x < lo -. st.feas_tol then
          (* below its lower bound: blocks only when climbing back to it *)
          (if delta > eps then Some ((lo -. x) /. delta, At_lower) else None)
        else if phase1 && x > hi +. st.feas_tol then
          (if delta < -.eps then Some ((hi -. x) /. delta, At_upper) else None)
        else if delta > eps then
          (if Float.is_finite hi then Some ((hi -. x) /. delta, At_upper) else None)
        else if Float.is_finite lo then Some ((lo -. x) /. delta, At_lower)
        else None
      in
      match candidate with
      | None -> ()
      | Some (step, bound) ->
        let step = max 0.0 step in
        (* Prefer strictly smaller steps; on (near-)ties keep the row with
           the largest pivot magnitude for numerical stability. *)
        let better =
          if !best_row < 0 then step <= !best_step
          else if step < !best_step -. 1e-9 then true
          else if step <= !best_step +. 1e-9 then Float.abs a > !best_pivot
          else false
        in
        if better then begin
          best_step := min step !best_step;
          best_row := i;
          best_bound := bound;
          best_pivot := Float.abs a
        end
    end
  done;
  if !best_row >= 0 then Leaving { row = !best_row; step = !best_step; bound = !best_bound }
  else if Float.is_finite t_enter then Entering_flip t_enter
  else No_block

(* -------------------------------------------------------------------- *)
(* Setup (forward-declared pieces used by pivot application)             *)

(* Nonbasic resting point for column [j] given a preferred bound: fall back
   to whichever bound is finite (closest to zero, like a cold start) when
   the preferred one is not. *)
let set_nonbasic st j preferred =
  let lo = st.lb.(j) and hi = st.ub.(j) in
  let at_lower () = st.status.(j) <- At_lower; st.xval.(j) <- lo in
  let at_upper () = st.status.(j) <- At_upper; st.xval.(j) <- hi in
  let free () = st.status.(j) <- Nb_free; st.xval.(j) <- 0.0 in
  match preferred with
  | At_lower when Float.is_finite lo -> at_lower ()
  | At_upper when Float.is_finite hi -> at_upper ()
  | _ ->
    if Float.is_finite lo && (Float.abs lo <= Float.abs hi || not (Float.is_finite hi)) then
      at_lower ()
    else if Float.is_finite hi then at_upper ()
    else free ()

(* All-slack starting basis: every structural column nonbasic at its best
   bound, identity basis factorization. *)
let set_cold st =
  for j = 0 to st.std.nvars - 1 do
    set_nonbasic st j At_lower
  done;
  for i = 0 to st.m - 1 do
    st.basis.(i) <- st.std.nvars + i;
    st.status.(st.std.nvars + i) <- Basic
  done;
  Basis.set_identity st.fac;
  st.dual_valid <- false;
  st.dvec_valid <- false;
  (* the basis jumped wholesale; any accumulated pricing state is stale *)
  if st.pricing = Devex then reset_devex st;
  recompute_basics st

(* -------------------------------------------------------------------- *)
(* Pivot application                                                     *)

let apply_move st (alpha : Basis.Svec.t) ~dir ~step j =
  if step <> 0.0 then begin
    st.xval.(j) <- st.xval.(j) +. (dir *. step);
    for u = 0 to alpha.Basis.Svec.n - 1 do
      let i = alpha.Basis.Svec.idx.(u) in
      let a = alpha.Basis.Svec.vals.(i) in
      if a <> 0.0 then begin
        let b = st.basis.(i) in
        st.xval.(b) <- st.xval.(b) -. (a *. dir *. step)
      end
    done
  end

(* Would this pivot's basic-variable movement change any phase-1 cost
   besides the pivot row's?  The phase-1 cost vector is the violation
   gradient of the basic variables (see [phase1_cost]); the incremental
   price update absorbs the pivot-row cost swap exactly — the same algebra
   as phase 2's objective swap — but knows nothing about other rows.  The
   phase-1 ratio test stops at the first blocking boundary, so in the
   common case no other basic crosses a violation boundary and the price
   caches survive the pivot; this detects the exceptions (degenerate ties
   parking a second basic exactly on its bound, sub-[pivot_tol] entries
   drifting across one) so the caller can fall back to the rebuild.  Must
   run before [apply_move] — it reads the pre-move basic values.  Pass
   [row = -1] for a bound flip, where every pattern row is a bystander. *)
let phase1_costs_shift st (alpha : Basis.Svec.t) ~row ~dir ~step =
  let shifted = ref false in
  let u = ref 0 in
  while (not !shifted) && !u < alpha.Basis.Svec.n do
    let i = alpha.Basis.Svec.idx.(!u) in
    incr u;
    if i <> row then begin
      let a = alpha.Basis.Svec.vals.(i) in
      if a <> 0.0 then begin
        let b = st.basis.(i) in
        let x0 = st.xval.(b) in
        let x1 = x0 -. (a *. dir *. step) in
        let lo = st.lb.(b) -. st.feas_tol and hi = st.ub.(b) +. st.feas_tol in
        let cat x = if x < lo then -1 else if x > hi then 1 else 0 in
        if cat x0 <> cat x1 then shifted := true
      end
    end
  done;
  !shifted

(* Absorb the basis change into the factorization.  When the update is
   refused (pivot too small, update budget exhausted) refactorize from the
   already-updated basis columns; if even that fails the basis is
   numerically hopeless and the solve restarts cold — correctness over
   speed on a path that never fires in practice. *)
let absorb_pivot st (alpha : Basis.Svec.t) ~row =
  if not (Basis.update_sparse st.fac ~alpha ~row) then begin
    match refactor st with
    | () -> recompute_basics st
    | exception Basis.Singular -> set_cold st
  end

let pivot st alpha ~row j ~bound =
  let leaving = st.basis.(row) in
  st.status.(leaving) <- bound;
  (* pin the leaving variable exactly on its bound to avoid drift *)
  (st.xval.(leaving) <-
     match bound with
     | At_lower -> st.lb.(leaving)
     | At_upper -> st.ub.(leaving)
     | Basic | Nb_free -> st.xval.(leaving));
  st.basis.(row) <- j;
  st.status.(j) <- Basic;
  absorb_pivot st alpha ~row

(* -------------------------------------------------------------------- *)
(* Warm starts                                                           *)

(* Restart from a caller-supplied basis: validate, install statuses and
   nonbasic resting points (normalized against the possibly-tightened
   bounds), then either adopt the supplied factorization or refactorize.
   Returns false — leaving the caller to fall back to a cold start — on any
   structural mismatch or a singular basis. *)
let try_warm st (wb : warm_basis) =
  if Array.length wb.wcols <> st.m || Array.length wb.wstatus <> st.ntotal then false
  else begin
    let in_basis = Array.make st.ntotal false in
    let ok = ref true in
    Array.iter
      (fun c ->
        if c < 0 || c >= st.ntotal || in_basis.(c) then ok := false else in_basis.(c) <- true)
      wb.wcols;
    if not !ok then false
    else begin
      Array.blit wb.wcols 0 st.basis 0 st.m;
      for j = 0 to st.ntotal - 1 do
        if in_basis.(j) then st.status.(j) <- Basic
        else set_nonbasic st j wb.wstatus.(j)
      done;
      let adopted =
        match wb.wfac with
        | Some f when Basis.kind f = Basis.kind st.fac && Basis.dim f = st.m ->
          st.fac <- Basis.copy f;
          true
        | Some _ | None -> false
      in
      match
        if adopted then []
        else Basis.refactorize_repaired st.fac ~basis:st.basis ~col:(col_iter st)
      with
      | repairs ->
        (* Dependent carried columns (a cross-round basis projected onto a
           model with removed rows) were replaced by slacks of the rows the
           elimination left unpivoted; mirror the substitutions here. *)
        List.iter
          (fun (pos, row) ->
            let displaced = st.basis.(pos) in
            let slack = st.std.nvars + row in
            st.basis.(pos) <- slack;
            st.status.(slack) <- Basic;
            set_nonbasic st displaced wb.wstatus.(displaced))
          repairs;
        st.dual_valid <- false;
        st.dvec_valid <- false;
        recompute_basics st;
        true
      | exception Basis.Singular -> false
    end
  end

(* Reusable per-solve scratch: every O(m)/O(ntotal) array a solve needs, so
   a caller that solves many same-shaped LPs (the branch-and-bound node
   loop) allocates them once instead of per solve.  The basis factorization
   is deliberately not here — it escapes into the returned [warm_basis].
   A workspace whose dimensions do not match the model is re-allocated
   transparently, so one workspace can serve heterogeneous solves at the
   cost of losing reuse across shape changes. *)
type workspace = {
  mutable ws_m : int;
  mutable ws_n : int;  (* ntotal = nvars + nrows *)
  mutable ws_lb : float array;
  mutable ws_ub : float array;
  mutable ws_obj : float array;
  mutable ws_status : col_status array;
  mutable ws_xval : float array;
  mutable ws_basis : int array;
  mutable ws_dual : float array;
  mutable ws_cb : float array;
  mutable ws_cand_j : int array;
  mutable ws_cand_d : float array;
  mutable ws_cand_a : float array;
  mutable ws_cand_r : float array;
  mutable ws_cand_ord : int array;
  mutable ws_frhs : float array;
  mutable ws_fpat : int array;
  mutable ws_fval : float array;
  mutable ws_fmark : int array;
  mutable ws_devex_w : float array;
  mutable ws_dvec : float array;
  mutable ws_prod : float array;
  mutable ws_prod_pat : int array;
  mutable ws_pmark : int array;
  mutable ws_clist : int array;
  mutable ws_cl_mark : int array;
}

let create_workspace () =
  {
    ws_m = -1;
    ws_n = -1;
    ws_lb = [||];
    ws_ub = [||];
    ws_obj = [||];
    ws_status = [||];
    ws_xval = [||];
    ws_basis = [||];
    ws_dual = [||];
    ws_cb = [||];
    ws_cand_j = [||];
    ws_cand_d = [||];
    ws_cand_a = [||];
    ws_cand_r = [||];
    ws_cand_ord = [||];
    ws_frhs = [||];
    ws_fpat = [||];
    ws_fval = [||];
    ws_fmark = [||];
    ws_devex_w = [||];
    ws_dvec = [||];
    ws_prod = [||];
    ws_prod_pat = [||];
    ws_pmark = [||];
    ws_clist = [||];
    ws_cl_mark = [||];
  }

let initial_state ?(feas_tol = 1e-7) ?(dual_tol = 1e-7) ?lb_override ?ub_override ?basis ?ws
    ~kernels ~pricing ~devex_carry ~degen_limit ~devex_reset_period ~trace ~backend
    (std : Model.std) =
  let m = std.nrows in
  let nvars = std.nvars in
  let ntotal = nvars + m in
  let w = match ws with Some w -> w | None -> create_workspace () in
  if w.ws_m <> m || w.ws_n <> ntotal then begin
    w.ws_m <- m;
    w.ws_n <- ntotal;
    w.ws_lb <- Array.make ntotal 0.0;
    w.ws_ub <- Array.make ntotal 0.0;
    w.ws_obj <- Array.make ntotal 0.0;
    w.ws_status <- Array.make ntotal At_lower;
    w.ws_xval <- Array.make ntotal 0.0;
    w.ws_basis <- Array.make m 0;
    w.ws_dual <- Array.make m 0.0;
    w.ws_cb <- Array.make m 0.0;
    w.ws_cand_j <- Array.make ntotal 0;
    w.ws_cand_d <- Array.make ntotal 0.0;
    w.ws_cand_a <- Array.make ntotal 0.0;
    w.ws_cand_r <- Array.make ntotal 0.0;
    w.ws_cand_ord <- Array.make ntotal 0;
    w.ws_frhs <- Array.make m 0.0;
    w.ws_fpat <- Array.make m 0;
    w.ws_fval <- Array.make m 0.0;
    w.ws_fmark <- Array.make m 0;
    w.ws_devex_w <- Array.make ntotal 1.0;
    w.ws_dvec <- Array.make ntotal 0.0;
    w.ws_prod <- Array.make ntotal 0.0;
    w.ws_prod_pat <- Array.make ntotal 0;
    w.ws_pmark <- Array.make ntotal 0;
    w.ws_clist <- Array.make ntotal 0;
    w.ws_cl_mark <- Array.make ntotal 0
  end
  else begin
    (* reused scratch: restore the invariants fresh arrays provide — frhs
       all-zero, the mark arrays unstamped (this solve's stamps restart at
       1), Devex weights back to the unit framework.  prod and dvec need no
       reset: prod is garbage off-pattern by contract and dvec is rebuilt
       before its first read. *)
    Array.fill w.ws_frhs 0 m 0.0;
    Array.fill w.ws_fmark 0 m 0;
    Array.fill w.ws_pmark 0 ntotal 0;
    Array.fill w.ws_cl_mark 0 ntotal 0;
    Array.fill w.ws_devex_w 0 ntotal 1.0
  end;
  let lb = w.ws_lb and ub = w.ws_ub in
  let slb = match lb_override with Some a -> a | None -> std.lb in
  let sub = match ub_override with Some a -> a | None -> std.ub in
  Array.blit slb 0 lb 0 nvars;
  Array.blit sub 0 ub 0 nvars;
  for i = 0 to m - 1 do
    (* Row a.x + s = rhs: Le rows get s in [0, inf), Ge rows s in (-inf, 0],
       Eq rows a fixed slack. *)
    let j = nvars + i in
    match std.row_sense.(i) with
    | Model.Le ->
      lb.(j) <- 0.0;
      ub.(j) <- infinity
    | Model.Ge ->
      lb.(j) <- neg_infinity;
      ub.(j) <- 0.0
    | Model.Eq ->
      lb.(j) <- 0.0;
      ub.(j) <- 0.0
  done;
  let obj = w.ws_obj in
  Array.blit std.obj 0 obj 0 nvars;
  Array.fill obj nvars m 0.0;
  let basis_arr = w.ws_basis in
  for i = 0 to m - 1 do
    basis_arr.(i) <- nvars + i
  done;
  let st =
    {
      std;
      m;
      ntotal;
      lb;
      ub;
      obj;
      status = w.ws_status;
      xval = w.ws_xval;
      basis = basis_arr;
      fac = Basis.create ~kernels backend ~m;
      feas_tol;
      dual_tol;
      pivot_tol = 1e-9;
      bland = false;
      degenerate_run = 0;
      degen_limit;
      iterations = 0;
      dual_pivots = 0;
      bland_pivots = 0;
      bound_flips = 0;
      dual = w.ws_dual;
      dual_valid = false;
      dual_phase1 = false;
      cb = w.ws_cb;
      cand_j = w.ws_cand_j;
      cand_d = w.ws_cand_d;
      cand_a = w.ws_cand_a;
      cand_r = w.ws_cand_r;
      cand_ord = w.ws_cand_ord;
      frhs = w.ws_frhs;
      fpat = w.ws_fpat;
      fval = w.ws_fval;
      fmark = w.ws_fmark;
      fstamp = 0;
      dvec = w.ws_dvec;
      dvec_valid = false;
      prod = w.ws_prod;
      prod_pat = w.ws_prod_pat;
      pmark = w.ws_pmark;
      clist = w.ws_clist;
      clist_n = 0;
      cl_mark = w.ws_cl_mark;
      cl_gen = 0;
      clist_valid = false;
      pricing;
      price_window = Stdlib.max 256 (ntotal / 4);
      price_cursor = 0;
      devex_w = w.ws_devex_w;
      devex_strikes = 0;
      devex_gen = 0;
      devex_reset_period;
      trace;
    }
  in
  let warmed = match basis with Some wb -> try_warm st wb | None -> false in
  (* a warm-adopted factorization copy inherits the donor's kernel mode;
     this solve's choice must win *)
  Basis.set_kernels st.fac kernels;
  Basis.reset_stats st.fac;
  if not warmed then set_cold st;
  if pricing = Devex then begin
    (* weights survive refactorization (the basis is unchanged, so the
       reference framework still holds); only basis jumps and the accuracy
       strikes reset them — see [reset_devex] *)
    match basis with
    | Some { wdevex = Some w; _ } when warmed && devex_carry && Array.length w = ntotal ->
      (* keep pricing in the donor solve's reference framework *)
      Array.blit w 0 st.devex_w 0 ntotal
    | _ -> ()
  end;
  (st, warmed)

let objective_value st =
  let acc = ref st.std.obj_offset in
  for j = 0 to st.std.nvars - 1 do
    acc := !acc +. (st.std.obj.(j) *. st.xval.(j))
  done;
  !acc

let extract st = Array.sub st.xval 0 st.std.nvars

(* The snapshot must own its arrays: the state's are workspace-backed and
   the next solve through the same workspace would scribble over them. *)
let final_basis st =
  {
    wcols = Array.copy st.basis;
    wstatus = Array.copy st.status;
    wfac = Some st.fac;
    wdevex = (if st.pricing = Devex then Some (Array.copy st.devex_w) else None);
  }

let kernel_stats_of st =
  let s = Basis.solve_stats st.fac in
  let avg calls nnz = if calls = 0 then 0.0 else float_of_int nnz /. float_of_int calls in
  {
    avg_ftran_nnz = avg s.Basis.ftran_calls s.Basis.ftran_nnz;
    avg_btran_nnz = avg s.Basis.btran_calls s.Basis.btran_nnz;
    bound_flips = st.bound_flips;
  }

(* -------------------------------------------------------------------- *)
(* Dual simplex                                                          *)

(* A warm-started basis whose bounds were tightened (the branch-and-bound
   child pattern) is primal infeasible but still dual feasible: the
   reduced costs did not move.  This check gates the dual phase; a basis
   that fails it (e.g. a stale snapshot under a different objective) falls
   through to the ordinary primal phase 1. *)
let dual_feasible_now st =
  ensure_prices st ~phase1:false;
  let tol = 10.0 *. st.dual_tol in
  let ok = ref true in
  let j = ref 0 in
  while !ok && !j < st.ntotal do
    let jj = !j in
    (if st.status.(jj) <> Basic && st.ub.(jj) -. st.lb.(jj) > 0.0 then
       let d = st.dvec.(jj) in
       match st.status.(jj) with
       | At_lower -> if d < -.tol then ok := false
       | At_upper -> if d > tol then ok := false
       | Nb_free -> if Float.abs d > tol then ok := false
       | Basic -> ());
    incr j
  done;
  !ok

(* Breakpoint order for the dual ratio test: ratio ascending, then larger
   |pivot-row entry| (numerical stability), then column index (a strict
   total order, so the sort is deterministic). *)
let cand_before st i j =
  let ri = st.cand_r.(i) and rj = st.cand_r.(j) in
  if ri < rj then true
  else if ri > rj then false
  else
    let ai = st.cand_a.(i) and aj = st.cand_a.(j) in
    if ai > aj then true
    else if ai < aj then false
    else st.cand_j.(i) < st.cand_j.(j)

(* In-place quicksort of the candidate permutation [ord.(lo0..hi0)] under
   [cand_before]; insertion sort below a small cutoff. *)
let sort_candidates st ord lo0 hi0 =
  let rec go lo hi =
    if hi - lo <= 11 then
      for i = lo + 1 to hi do
        let v = ord.(i) in
        let k = ref (i - 1) in
        while !k >= lo && cand_before st v ord.(!k) do
          ord.(!k + 1) <- ord.(!k);
          decr k
        done;
        ord.(!k + 1) <- v
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      let a = ord.(lo) and b = ord.(mid) and c = ord.(hi) in
      let p =
        if cand_before st a b then
          if cand_before st b c then b else if cand_before st a c then c else a
        else if cand_before st a c then a
        else if cand_before st b c then c
        else b
      in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while cand_before st ord.(!i) p do
          incr i
        done;
        while cand_before st p ord.(!j) do
          decr j
        done;
        if !i <= !j then begin
          let tmp = ord.(!i) in
          ord.(!i) <- ord.(!j);
          ord.(!j) <- tmp;
          incr i;
          decr j
        end
      done;
      if lo < !j then go lo !j;
      if !i < hi then go !i hi
    end
  in
  if hi0 > lo0 then go lo0 hi0

(* Dual simplex re-optimization: drive out primal infeasibilities while the
   reduced costs stay dual feasible.  Each iteration picks the most
   violated basic variable as the leaving row, prices the pivot row
   (rho = e_r^T B^-1 via sparse BTRAN, then one pass over the nonbasic
   columns for both the row entries and the reduced costs), runs the
   long-step (bound-flip) dual ratio test over the sorted breakpoints, and
   pivots.  A boxed breakpoint whose flip keeps the dual slope positive is
   flipped to its opposite bound instead of pivoted on — the classic
   branch-and-bound child pattern, where a tightened bound makes a cluster
   of cheap flips plus one pivot out of what plain Dantzig-dual would take
   many pivots to do.  All flips of one pass are priced into a single
   accumulated sparse FTRAN.  On any numerical doubt — no eligible column,
   a pivot-row / FTRAN disagreement, a long degenerate stall — it simply
   stops: the primal loop behind it is fully general and finishes the
   solve, so the dual phase is purely an accelerator. *)
let dual_phase st ~max_iters =
  let m = st.m in
  let budget = ref (200 + (2 * m)) in
  let stalled = ref 0 in
  let running = ref true in
  while !running && st.iterations < max_iters && !budget > 0 do
    decr budget;
    if Basis.should_refactorize st.fac then begin
      match refactor st with
      | () -> recompute_basics st
      | exception Basis.Singular -> running := false
    end;
    if !running then begin
      (* leaving row: largest bound violation *)
      let r = ref (-1) and worst = ref 0.0 in
      for i = 0 to m - 1 do
        let v = infeasibility_of st st.basis.(i) in
        if v > !worst then begin
          worst := v;
          r := i
        end
      done;
      if !r < 0 then running := false (* primal feasible: the dual phase is done *)
      else begin
        let r = !r in
        let b = st.basis.(r) in
        let xb = st.xval.(b) in
        let v =
          if xb < st.lb.(b) -. st.feas_tol then xb -. st.lb.(b)
          else xb -. st.ub.(b)
        in
        ensure_prices st ~phase1:false;
        let rho = Basis.btran_unit_sparse st.fac r in
        (* Price the pivot row once, row-major: only the columns the row
           actually touches can be breakpoints (everything else has a
           structurally zero row entry), and their reduced costs come from
           the maintained cache — the old O(ntotal) column-dot pass is
           gone.  Candidate order differs from the old ascending-j scan,
           but [cand_before] is a strict total order (ties fall through to
           the column index), so the sorted sequence is identical. *)
        let np = price_row st rho in
        let nc = ref 0 in
        for u = 0 to np - 1 do
          let j = st.prod_pat.(u) in
          if st.status.(j) <> Basic && st.ub.(j) -. st.lb.(j) > 0.0 then begin
            let a = st.prod.(j) in
            if Float.abs a > st.pivot_tol then begin
              let eligible =
                match st.status.(j) with
                | At_lower -> v *. a > 0.0 (* entering may only increase *)
                | At_upper -> v *. a < 0.0 (* entering may only decrease *)
                | Nb_free -> true
                | Basic -> false
              in
              if eligible then begin
                let d = st.dvec.(j) in
                let k = !nc in
                st.cand_j.(k) <- j;
                st.cand_d.(k) <- d;
                st.cand_a.(k) <- Float.abs a;
                st.cand_r.(k) <- Float.abs d /. Float.abs a;
                st.cand_ord.(k) <- k;
                nc := k + 1
              end
            end
          end
        done;
        if !nc = 0 then running := false
          (* dual ray (primal infeasible) or numerics: let the primal
             phase 1 deliver the verdict *)
        else begin
          let nc = !nc in
          sort_candidates st st.cand_ord 0 (nc - 1);
          (* Long-step walk over the sorted breakpoints.  The dual slope
             starts at the infeasibility |v|; flipping the boxed candidate k
             past its breakpoint shrinks it by |a_k| * range_k.  Flip while
             the slope stays positive; the pivot lands on the first
             breakpoint that would exhaust it (or cannot flip). *)
          let slope = ref (Float.abs v) in
          let nflip = ref 0 in
          let stop = ref false in
          while (not !stop) && !nflip < nc do
            let k = st.cand_ord.(!nflip) in
            let j = st.cand_j.(k) in
            let range = st.ub.(j) -. st.lb.(j) in
            let boxed = st.status.(j) <> Nb_free && Float.is_finite range in
            if boxed && !slope -. (st.cand_a.(k) *. range) > st.feas_tol then begin
              slope := !slope -. (st.cand_a.(k) *. range);
              incr nflip
            end
            else stop := true
          done;
          if not !stop then running := false
            (* every breakpoint flips: a dual ray (primal infeasible).
               Apply nothing and let phase 1 deliver the verdict. *)
          else begin
            let kq = st.cand_ord.(!nflip) in
            let q = st.cand_j.(kq) in
            let dq = st.cand_d.(kq) in
            let rq = st.cand_r.(kq) in
            if !nflip > 0 then begin
              (* Move every flipped nonbasic to its opposite bound,
                 accumulate the combined column delta (dedup'd row pattern
                 via stamps), and restore the basic values with ONE sparse
                 FTRAN of the accumulated right-hand side. *)
              st.fstamp <- st.fstamp + 1;
              let stamp = st.fstamp in
              let nf = ref 0 in
              for i = 0 to !nflip - 1 do
                let k = st.cand_ord.(i) in
                let j = st.cand_j.(k) in
                let dx =
                  match st.status.(j) with
                  | At_lower ->
                    st.status.(j) <- At_upper;
                    st.xval.(j) <- st.ub.(j);
                    st.ub.(j) -. st.lb.(j)
                  | At_upper ->
                    st.status.(j) <- At_lower;
                    st.xval.(j) <- st.lb.(j);
                    st.lb.(j) -. st.ub.(j)
                  | Basic | Nb_free -> 0.0
                in
                if dx <> 0.0 then
                  col_iter st j (fun row c ->
                      if st.fmark.(row) <> stamp then begin
                        st.fmark.(row) <- stamp;
                        st.fpat.(!nf) <- row;
                        incr nf
                      end;
                      st.frhs.(row) <- st.frhs.(row) +. (c *. dx))
              done;
              (* compact (dropping cancellations), restoring frhs to all
                 zeros for the next use *)
              let nf2 = ref 0 in
              for u = 0 to !nf - 1 do
                let row = st.fpat.(u) in
                let vv = st.frhs.(row) in
                st.frhs.(row) <- 0.0;
                if vv <> 0.0 then begin
                  st.fpat.(!nf2) <- row;
                  st.fval.(!nf2) <- vv;
                  incr nf2
                end
              done;
              if !nf2 > 0 then begin
                let dxb = Basis.ftran_col_sparse st.fac st.fpat st.fval ~off:0 ~len:!nf2 in
                for u = 0 to dxb.Basis.Svec.n - 1 do
                  let i = dxb.Basis.Svec.idx.(u) in
                  let bi = st.basis.(i) in
                  st.xval.(bi) <- st.xval.(bi) -. dxb.Basis.Svec.vals.(i)
                done
              end;
              st.bound_flips <- st.bound_flips + !nflip
              (* the basis is unchanged, so the cached duals stay valid *)
            end;
            (* the flips moved the basic values: re-derive the leaving
               variable's violation before pivoting on it *)
            let xb = st.xval.(b) in
            let v' =
              if xb < st.lb.(b) -. st.feas_tol then xb -. st.lb.(b)
              else if xb > st.ub.(b) +. st.feas_tol then xb -. st.ub.(b)
              else 0.0
            in
            if v' = 0.0 || (v' < 0.0) <> (v < 0.0) then
              (* the flips alone repaired (or overshot) this row's
                 violation; a pivot on the stale ratio would be wrong, so
                 rescan for the next most-violated row *)
              stalled := 0
            else begin
              let alpha = ftran st q in
              let arq = alpha.Basis.Svec.vals.(r) in
              if Float.abs arq < st.pivot_tol then begin
                (* the priced row entry and the FTRAN'd column disagree:
                   refresh the factorization, then give the primal path the
                   problem if it keeps happening *)
                (try refactor st with Basis.Singular -> ());
                recompute_basics st;
                incr stalled;
                if !stalled > 3 then running := false
              end
              else begin
                let step = v' /. arq in
                st.xval.(q) <- st.xval.(q) +. step;
                for u = 0 to alpha.Basis.Svec.n - 1 do
                  let i = alpha.Basis.Svec.idx.(u) in
                  let a = alpha.Basis.Svec.vals.(i) in
                  if a <> 0.0 then begin
                    let bi = st.basis.(i) in
                    st.xval.(bi) <- st.xval.(bi) -. (a *. step)
                  end
                done;
                (* the leaving variable lands exactly on its violated bound *)
                let bound = if v' < 0.0 then At_lower else At_upper in
                st.status.(b) <- bound;
                (st.xval.(b) <-
                   match bound with At_lower -> st.lb.(b) | _ -> st.ub.(b));
                st.basis.(r) <- q;
                st.status.(q) <- Basic;
                absorb_pivot st alpha ~row:r;
                st.iterations <- st.iterations + 1;
                st.dual_pivots <- st.dual_pivots + 1;
                if st.dual_valid then
                  update_prices_after_pivot st ~row:r ~q ~leaving:b ~d:dq
                    ~lshift:0.0 ~upd_dual:true ~fold_g:None;
                if rq <= st.dual_tol then begin
                  (* dual-degenerate pivot: no dual objective progress *)
                  incr stalled;
                  if !stalled > 100 then running := false
                end
                else stalled := 0
              end
            end
          end
        end
      end
    end
  done

(* -------------------------------------------------------------------- *)
(* Driver                                                                *)

(* Trivial case: no constraints means each variable sits at whichever bound
   minimizes its objective coefficient. *)
let solve_unconstrained std lb ub =
  let n = (std : Model.std).nvars in
  let x = Array.make n 0.0 in
  let unbounded = ref false in
  for j = 0 to n - 1 do
    let c = std.obj.(j) in
    if c > 0.0 then
      if Float.is_finite lb.(j) then x.(j) <- lb.(j) else unbounded := true
    else if c < 0.0 then
      if Float.is_finite ub.(j) then x.(j) <- ub.(j) else unbounded := true
    else if Float.is_finite lb.(j) && lb.(j) > 0.0 then x.(j) <- lb.(j)
    else if Float.is_finite ub.(j) && ub.(j) < 0.0 then x.(j) <- ub.(j)
  done;
  if !unbounded then Unbounded
  else begin
    let obj = ref std.obj_offset in
    for j = 0 to n - 1 do
      obj := !obj +. (std.obj.(j) *. x.(j))
    done;
    Optimal
      {
        x;
        obj = !obj;
        iterations = 0;
        dual_iterations = 0;
        bland_iterations = 0;
        duals = [||];
        basis = { wcols = [||]; wstatus = [||]; wfac = None; wdevex = None };
        kstats = { avg_ftran_nnz = 0.0; avg_btran_nnz = 0.0; bound_flips = 0 };
      }
  end

let solve ?max_iters ?(feas_tol = 1e-7) ?(dual_tol = 1e-7) ?(pricing = Devex)
    ?(devex_carry = false) ?(degen_limit = 100) ?(devex_reset_period = 0) ?trace
    ?(backend = Basis.Lu) ?kernels ?ws ?(dual_simplex = true) ?basis ?lb ?ub (std : Model.std) =
  let kernels = match kernels with Some k -> k | None -> Basis.kernels_of_env () in
  (* A variable fixed-range check also covers per-node bound conflicts. *)
  let lbs = match lb with Some a -> a | None -> std.lb in
  let ubs = match ub with Some a -> a | None -> std.ub in
  let conflict = ref false in
  for j = 0 to std.nvars - 1 do
    if lbs.(j) > ubs.(j) +. feas_tol then conflict := true
  done;
  if !conflict then Infeasible { infeasibility = 1 }
  else if std.nrows = 0 then solve_unconstrained std lbs ubs
  else begin
    let st, warmed =
      initial_state ~feas_tol ~dual_tol ?lb_override:lb ?ub_override:ub ?basis ?ws ~kernels
        ~pricing ~devex_carry ~degen_limit ~devex_reset_period ~trace ~backend std
    in
    let max_iters =
      match max_iters with
      | Some n -> n
      | None -> 20000 + (60 * (st.m + st.ntotal))
    in
    (* Dual re-optimization: a warm basis whose bounds were tightened is
       typically primal infeasible but still dual feasible, and a handful
       of dual pivots restores optimality — the branch-and-bound child
       restart pattern.  Cold starts and dual-infeasible bases skip
       straight to the primal phases. *)
    if warmed && dual_simplex then begin
      let _, infeas0 = total_infeasibility st in
      if infeas0 > 0 && dual_feasible_now st then dual_phase st ~max_iters
    end;
    let result = ref None in
    while !result = None && st.iterations < max_iters do
      st.iterations <- st.iterations + 1;
      if
        st.pricing = Devex && st.devex_reset_period > 0
        && st.iterations mod st.devex_reset_period = 0
      then reset_devex st;
      if Basis.should_refactorize st.fac then begin
        (try refactor st with Basis.Singular -> ());
        recompute_basics st
      end;
      let _, infeas_count = total_infeasibility st in
      let phase1 = infeas_count > 0 in
      match choose_entering st ~phase1 with
      | None ->
        if phase1 then begin
          (* Confirm infeasibility on a freshly factorized basis. *)
          if Basis.updates_since_refactor st.fac > 0 then begin
            match refactor st with
            | () ->
              recompute_basics st;
              let _, recount = total_infeasibility st in
              if recount > 0 then result := Some (Infeasible { infeasibility = recount })
            | exception Basis.Singular ->
              result := Some (Infeasible { infeasibility = infeas_count })
          end
          else result := Some (Infeasible { infeasibility = infeas_count })
        end
        else begin
          (* Confirm optimality on a fresh factorization. *)
          let confirmed =
            if Basis.updates_since_refactor st.fac = 0 then true
            else
              match refactor st with
              | () ->
                recompute_basics st;
                false (* re-price on the fresh factors *)
              | exception Basis.Singular -> true
          in
          if confirmed then begin
            let duals = Array.make st.m 0.0 in
            compute_duals_into st ~phase1:false duals;
            result :=
              Some
                (Optimal
                   {
                     x = extract st;
                     obj = objective_value st;
                     iterations = st.iterations;
                     dual_iterations = st.dual_pivots;
                     bland_iterations = st.bland_pivots;
                     duals;
                     basis = final_basis st;
                     kstats = kernel_stats_of st;
                   })
          end
        end
      | Some (j, dir, d) -> begin
        let alpha = ftran st j in
        match ratio_test st alpha ~dir ~phase1 j with
        | No_block ->
          if phase1 then begin
            (* Numerically suspect: refactor and retry; a persistent miss is
               reported as infeasible rather than looping forever. *)
            let fresh = Basis.updates_since_refactor st.fac = 0 in
            (try refactor st with Basis.Singular -> ());
            recompute_basics st;
            if fresh then result := Some (Infeasible { infeasibility = infeas_count })
          end
          else result := Some Unbounded
        | Entering_flip step ->
          (* a bound flip keeps the basis, the duals and the reduced costs —
             unless a phase-1 flip marched some basic across a violation
             boundary, shifting the phase-1 cost vector *)
          let p1_shift =
            phase1
            && ((not (st.dual_valid && st.dvec_valid))
               || phase1_costs_shift st alpha ~row:(-1) ~dir ~step)
          in
          apply_move st alpha ~dir ~step j;
          (st.status.(j) <-
             match st.status.(j) with
             | At_lower -> At_upper
             | At_upper -> At_lower
             | s -> s);
          if p1_shift then begin
            st.dual_valid <- false;
            st.dvec_valid <- false
          end
          else
            (* the flip changed the column's status, hence its candidacy
               test; re-admit it if it still improves (list pruning would
               otherwise drop it next scan) *)
            clist_add st j
        | Leaving { row; step; bound } ->
          let was_bland = st.bland in
          if step <= st.feas_tol then begin
            st.degenerate_run <- st.degenerate_run + 1;
            if st.degenerate_run > st.degen_limit && not st.bland then begin
              st.bland <- true;
              (* Bland's rule ignores the weights; restart the reference
                 framework from whatever basis Bland mode leaves us in. *)
              if st.pricing = Devex then reset_devex st
            end
          end
          else begin
            st.degenerate_run <- 0;
            st.bland <- false
          end;
          (* Phase-1 cache survival: decided against the pre-move basic
             values.  A phase-1 pivot whose bystander basics all keep their
             violation category is algebraically a phase-2 pivot with a
             cost swap in the pivot row, and the price caches ride the
             standard incremental update; [lshift] carries the leaving
             variable's shed violation gradient (see
             [update_prices_after_pivot]).  Only the exceptional steps pay
             the full rebuild. *)
          let p1_shift =
            phase1
            && ((not (st.dual_valid && st.dvec_valid))
               || phase1_costs_shift st alpha ~row ~dir ~step)
          in
          let lshift = if phase1 then -.(phase1_cost st row) else 0.0 in
          if was_bland then st.bland_pivots <- st.bland_pivots + 1;
          apply_move st alpha ~dir ~step j;
          (* Devex bookkeeping needs pre-pivot data: the entering column's
             stored weight, the pivot element, and the leaving variable. *)
          let devex_live = st.pricing = Devex && not st.bland in
          let gen0 = st.devex_gen in
          let entering_w =
            if devex_live then Float.max 1.0 st.devex_w.(j) else 1.0
          in
          let leaving = st.basis.(row) in
          let arq = alpha.Basis.Svec.vals.(row) in
          pivot st alpha ~row j ~bound;
          let need_dual = st.dual_valid && not p1_shift in
          if p1_shift then begin
            st.dual_valid <- false;
            st.dvec_valid <- false
          end;
          (* [pivot] may have fallen back to a cold restart (refused update
             and singular refactorization), which resets the framework —
             stale Devex bookkeeping must not be applied on top. *)
          let devex_live = devex_live && st.devex_gen = gen0 in
          if devex_live then begin
            (* Devex accuracy: the exact steepest-edge measure of the
               entering column, 1 + ||alpha||², is free from the FTRAN (the
               svec is still live — the pivot only ran the factor update,
               which does not touch it); the stored weight overshooting it
               means the framework has drifted. *)
            let se = ref 1.0 in
            for u = 0 to alpha.Basis.Svec.n - 1 do
              let a = alpha.Basis.Svec.vals.(alpha.Basis.Svec.idx.(u)) in
              se := !se +. (a *. a)
            done;
            if entering_w > devex_weight_slack *. !se then begin
              st.devex_strikes <- st.devex_strikes + 1;
              if st.devex_strikes > devex_max_strikes then reset_devex st
            end;
            (* Forrest–Goldfarb: the leaving variable re-enters the
               nonbasic set with weight max(1, ĝ/α_rq²); the other
               nonbasic weights fold in during the pivot-row pricing pass
               below. *)
            if st.devex_gen = gen0 then
              st.devex_w.(leaving) <- Float.max 1.0 (entering_w /. (arq *. arq))
          end;
          let devex_live = devex_live && st.devex_gen = gen0 in
          (* One sparse BTRAN + one row-major pricing pass serve the
             incremental dual update, the reduced-cost update, and the
             Devex weight fold. *)
          if need_dual || devex_live then
            update_prices_after_pivot st ~row ~q:j ~leaving ~d ~lshift
              ~upd_dual:need_dual
              ~fold_g:(if devex_live then Some entering_w else None);
          (match st.trace with
          | Some f when st.pricing = Devex ->
            let mw = ref infinity in
            for k = 0 to st.ntotal - 1 do
              if st.devex_w.(k) < !mw then mw := st.devex_w.(k)
            done;
            f ~iteration:st.iterations ~min_devex_weight:!mw
          | Some _ | None -> ())
      end
    done;
    match !result with
    | Some r -> r
    | None ->
      let _, infeas_count = total_infeasibility st in
      Iteration_limit { feasible = infeas_count = 0; obj = objective_value st }
  end
