(* Column status.  A column is either basic (its value is determined by the
   basis equations) or nonbasic pinned at one of its bounds; free nonbasic
   columns sit at zero. *)
type col_status = Basic | At_lower | At_upper | Nb_free

(* A restartable basis snapshot: which column is basic in each row plus the
   bound every nonbasic column rests on.  [wbinv] optionally carries the
   matching basis inverse so a restart can skip the O(m^3) refactorization;
   holders that keep many snapshots alive (the branch-and-bound node queue)
   drop it to stay O(ntotal) per snapshot. *)
type warm_basis = {
  wcols : int array;  (* wcols.(i) = column basic in row i *)
  wstatus : col_status array;  (* one entry per column incl. slacks *)
  wbinv : float array array option;  (* basis inverse matching wcols *)
}

type result =
  | Optimal of {
      x : float array;
      obj : float;
      iterations : int;
      duals : float array;
      basis : warm_basis;
    }
  | Infeasible of { infeasibility : int }
  | Unbounded
  | Iteration_limit of { feasible : bool; obj : float }

type state = {
  std : Model.std;
  m : int;
  ntotal : int;  (* structural columns + one slack per row *)
  lb : float array;
  ub : float array;
  obj : float array;
  status : col_status array;
  xval : float array;
  basis : int array;  (* basis.(i) = column basic in row i *)
  mutable binv : float array array;  (* dense basis inverse, m x m *)
  feas_tol : float;
  dual_tol : float;
  pivot_tol : float;
  mutable bland : bool;  (* anti-cycling mode *)
  mutable degenerate_run : int;
  mutable iterations : int;
  (* cached simplex multipliers y = c_B^T B^-1: recomputed from scratch in
     phase 1 (the phase-1 cost vector moves with the iterate) and after
     refactorization, updated incrementally after phase-2 pivots *)
  mutable dual : float array;
  mutable dual_valid : bool;
  mutable dual_phase1 : bool;
  (* candidate-list pricing state *)
  partial : bool;
  price_window : int;
  mutable price_cursor : int;
  nzbuf : int array;  (* scratch: nonzero pattern of the pivot row *)
}

(* -------------------------------------------------------------------- *)
(* Column access: structural columns come from the compiled sparse form;
   slack column [nvars + i] is the unit vector e_i.                      *)

let col_iter st j f =
  if j < st.std.nvars then begin
    let rows = st.std.col_rows.(j) and coefs = st.std.col_coefs.(j) in
    for k = 0 to Array.length rows - 1 do
      f rows.(k) coefs.(k)
    done
  end
  else f (j - st.std.nvars) 1.0

(* alpha = B^-1 * A_j.  Row-major order: each alpha entry is a dot product
   of one [binv] row with the sparse column, so the inner loop stays inside
   a single row. *)
let ftran st j =
  let alpha = Array.make st.m 0.0 in
  if j < st.std.nvars then begin
    let rows = st.std.col_rows.(j) and coefs = st.std.col_coefs.(j) in
    let ne = Array.length rows in
    for i = 0 to st.m - 1 do
      let bi = st.binv.(i) in
      let acc = ref 0.0 in
      for k = 0 to ne - 1 do
        acc := !acc +. (bi.(rows.(k)) *. coefs.(k))
      done;
      alpha.(i) <- !acc
    done
  end
  else begin
    let r = j - st.std.nvars in
    for i = 0 to st.m - 1 do
      alpha.(i) <- st.binv.(i).(r)
    done
  end;
  alpha

(* -------------------------------------------------------------------- *)
(* Basis maintenance                                                     *)

exception Singular_basis

(* Rebuild the basis inverse from scratch by Gauss-Jordan elimination with
   partial pivoting, then recompute basic values exactly.  Bounds numerical
   drift from the product-form updates. *)
let refactor st =
  let m = st.m in
  let b = Array.make_matrix m m 0.0 in
  for i = 0 to m - 1 do
    col_iter st st.basis.(i) (fun r c -> b.(r).(i) <- c)
  done;
  let inv = Array.init m (fun i -> Array.init m (fun k -> if i = k then 1.0 else 0.0)) in
  for col = 0 to m - 1 do
    (* partial pivot *)
    let best = ref col in
    for r = col + 1 to m - 1 do
      if Float.abs b.(r).(col) > Float.abs b.(!best).(col) then best := r
    done;
    if Float.abs b.(!best).(col) < 1e-12 then raise Singular_basis;
    if !best <> col then begin
      let tmp = b.(col) in b.(col) <- b.(!best); b.(!best) <- tmp;
      let tmp = inv.(col) in inv.(col) <- inv.(!best); inv.(!best) <- tmp
    end;
    let piv = b.(col).(col) in
    for k = 0 to m - 1 do
      b.(col).(k) <- b.(col).(k) /. piv;
      inv.(col).(k) <- inv.(col).(k) /. piv
    done;
    for r = 0 to m - 1 do
      if r <> col then begin
        let f = b.(r).(col) in
        if f <> 0.0 then
          for k = 0 to m - 1 do
            b.(r).(k) <- b.(r).(k) -. (f *. b.(col).(k));
            inv.(r).(k) <- inv.(r).(k) -. (f *. inv.(col).(k))
          done
      end
    done
  done;
  st.binv <- inv;
  st.dual_valid <- false

let recompute_basics st =
  (* x_B = B^-1 (rhs - sum over nonbasic columns of A_j x_j) *)
  let r = Array.copy st.std.rhs in
  for j = 0 to st.ntotal - 1 do
    if st.status.(j) <> Basic && st.xval.(j) <> 0.0 then begin
      let v = st.xval.(j) in
      col_iter st j (fun row c -> r.(row) <- r.(row) -. (c *. v))
    end
  done;
  for i = 0 to st.m - 1 do
    let acc = ref 0.0 in
    let brow = st.binv.(i) in
    for k = 0 to st.m - 1 do
      acc := !acc +. (brow.(k) *. r.(k))
    done;
    st.xval.(st.basis.(i)) <- !acc
  done

(* -------------------------------------------------------------------- *)
(* Pricing                                                               *)

let infeasibility_of st b =
  let x = st.xval.(b) in
  if x < st.lb.(b) -. st.feas_tol then st.lb.(b) -. x
  else if x > st.ub.(b) +. st.feas_tol then x -. st.ub.(b)
  else 0.0

let total_infeasibility st =
  let total = ref 0.0 and count = ref 0 in
  for i = 0 to st.m - 1 do
    let v = infeasibility_of st st.basis.(i) in
    if v > 0.0 then begin
      total := !total +. v;
      incr count
    end
  done;
  (!total, !count)

(* Phase-1 cost of the basic variable in row [i]: the gradient of its bound
   violation.  Nonbasic columns always have zero phase-1 cost. *)
let phase1_cost st i =
  let b = st.basis.(i) in
  let x = st.xval.(b) in
  if x < st.lb.(b) -. st.feas_tol then -1.0
  else if x > st.ub.(b) +. st.feas_tol then 1.0
  else 0.0

let dual_values st ~phase1 =
  let y = Array.make st.m 0.0 in
  for i = 0 to st.m - 1 do
    let cb = if phase1 then phase1_cost st i else st.obj.(st.basis.(i)) in
    if cb <> 0.0 then begin
      let brow = st.binv.(i) in
      for k = 0 to st.m - 1 do
        y.(k) <- y.(k) +. (cb *. brow.(k))
      done
    end
  done;
  y

(* The BTRAN that used to run every iteration is hoisted into a cached dual
   vector: phase-2 pivots update it in O(m) (see [update_duals_after_pivot]);
   only phase 1 — whose cost vector depends on the iterate — and freshly
   refactorized bases pay the full O(m^2) recomputation. *)
let ensure_duals st ~phase1 =
  if (not st.dual_valid) || st.dual_phase1 <> phase1 then begin
    st.dual <- dual_values st ~phase1;
    st.dual_valid <- true;
    st.dual_phase1 <- phase1
  end

(* After the pivot in row [row] with entering reduced cost [d]:
   y' = y + (d / alpha_row) * (old B^-1 row) = y + d * (new B^-1 row),
   because the pivot has already scaled that row by 1/alpha_row.  Valid only
   in phase 2, where the basic cost vector changes by the pivot alone. *)
let update_duals_after_pivot st ~row ~d =
  if d <> 0.0 then begin
    let brow = st.binv.(row) in
    let y = st.dual in
    for k = 0 to st.m - 1 do
      y.(k) <- y.(k) +. (d *. brow.(k))
    done
  end

let reduced_cost st y ~phase1 j =
  let c = if phase1 then 0.0 else st.obj.(j) in
  let acc = ref c in
  col_iter st j (fun r coef -> acc := !acc -. (y.(r) *. coef));
  !acc

(* Direction the entering variable would move, or None if it is not an
   improving candidate.  Columns with a zero-width range never enter. *)
let entering_direction st ~d j =
  if st.ub.(j) -. st.lb.(j) <= 0.0 then None
  else
    match st.status.(j) with
    | Basic -> None
    | At_lower -> if d < -.st.dual_tol then Some 1.0 else None
    | At_upper -> if d > st.dual_tol then Some (-1.0) else None
    | Nb_free ->
      if d < -.st.dual_tol then Some 1.0
      else if d > st.dual_tol then Some (-1.0)
      else None

(* Entering-column choice.  Three regimes:
   - Bland's rule (anti-cycling): lowest-index improving column, full scan;
   - full Dantzig: best |reduced cost| over every column (the seed scheme,
     kept selectable for benchmarking);
   - candidate-list partial pricing (default): scan a rotating window from
     [price_cursor]; once an improving candidate is seen, stop at the window
     boundary and take the best so far.  Only a completely dry full rotation
     declares dual feasibility, so optimality claims are unchanged. *)
let choose_entering st ~phase1 =
  let y = st.dual in
  if st.bland then begin
    let rec scan j =
      if j >= st.ntotal then None
      else if st.status.(j) = Basic then scan (j + 1)
      else
        let d = reduced_cost st y ~phase1 j in
        match entering_direction st ~d j with
        | Some dir -> Some (j, dir, d)
        | None -> scan (j + 1)
    in
    scan 0
  end
  else if not st.partial then begin
    let best = ref None and best_score = ref 0.0 in
    for j = 0 to st.ntotal - 1 do
      if st.status.(j) <> Basic then begin
        let d = reduced_cost st y ~phase1 j in
        match entering_direction st ~d j with
        | Some dir ->
          let score = Float.abs d in
          if score > !best_score then begin
            best_score := score;
            best := Some (j, dir, d)
          end
        | None -> ()
      end
    done;
    !best
  end
  else begin
    let n = st.ntotal in
    let best_j = ref (-1) and best_dir = ref 1.0 and best_d = ref 0.0 in
    let best_score = ref 0.0 in
    let k = ref 0 in
    let stop = ref false in
    while (not !stop) && !k < n do
      let j =
        let c = st.price_cursor + !k in
        if c >= n then c - n else c
      in
      incr k;
      if st.status.(j) <> Basic then begin
        let d = reduced_cost st y ~phase1 j in
        match entering_direction st ~d j with
        | Some dir ->
          let score = Float.abs d in
          if score > !best_score then begin
            best_score := score;
            best_j := j;
            best_dir := dir;
            best_d := d
          end
        | None -> ()
      end;
      if !best_j >= 0 && !k >= st.price_window then stop := true
    done;
    if !best_j < 0 then None
    else begin
      (* rotate so the next iteration prices a fresh section *)
      st.price_cursor <-
        (let c = st.price_cursor + !k in
         if c >= n then c - n else c);
      Some (!best_j, !best_dir, !best_d)
    end
  end

(* -------------------------------------------------------------------- *)
(* Ratio test                                                            *)

type block =
  | No_block
  | Entering_flip of float
  | Leaving of { row : int; step : float; bound : col_status }

(* In phase 1 an infeasible basic variable only blocks when it reaches the
   bound it violates (at which point it leaves the basis feasible); moving
   away from feasibility never blocks because the pricing step already
   accounted for that gradient. *)
let ratio_test st alpha ~dir ~phase1 j =
  let eps = st.pivot_tol in
  let t_enter =
    match st.status.(j) with
    | Nb_free -> infinity
    | _ ->
      let range = st.ub.(j) -. st.lb.(j) in
      if Float.is_finite range then range else infinity
  in
  let best_step = ref t_enter and best_row = ref (-1) and best_bound = ref At_lower in
  let best_pivot = ref 0.0 in
  for i = 0 to st.m - 1 do
    let a = alpha.(i) in
    if Float.abs a > eps then begin
      let b = st.basis.(i) in
      let delta = -.dir *. a in
      let x = st.xval.(b) in
      let lo = st.lb.(b) and hi = st.ub.(b) in
      let candidate =
        if phase1 && x < lo -. st.feas_tol then
          (* below its lower bound: blocks only when climbing back to it *)
          (if delta > eps then Some ((lo -. x) /. delta, At_lower) else None)
        else if phase1 && x > hi +. st.feas_tol then
          (if delta < -.eps then Some ((hi -. x) /. delta, At_upper) else None)
        else if delta > eps then
          (if Float.is_finite hi then Some ((hi -. x) /. delta, At_upper) else None)
        else if Float.is_finite lo then Some ((lo -. x) /. delta, At_lower)
        else None
      in
      match candidate with
      | None -> ()
      | Some (step, bound) ->
        let step = max 0.0 step in
        (* Prefer strictly smaller steps; on (near-)ties keep the row with
           the largest pivot magnitude for numerical stability. *)
        let better =
          if !best_row < 0 then step <= !best_step
          else if step < !best_step -. 1e-9 then true
          else if step <= !best_step +. 1e-9 then Float.abs a > !best_pivot
          else false
        in
        if better then begin
          best_step := min step !best_step;
          best_row := i;
          best_bound := bound;
          best_pivot := Float.abs a
        end
    end
  done;
  if !best_row >= 0 then Leaving { row = !best_row; step = !best_step; bound = !best_bound }
  else if Float.is_finite t_enter then Entering_flip t_enter
  else No_block

(* -------------------------------------------------------------------- *)
(* Pivot application                                                     *)

let apply_move st alpha ~dir ~step j =
  if step <> 0.0 then begin
    st.xval.(j) <- st.xval.(j) +. (dir *. step);
    for i = 0 to st.m - 1 do
      let a = alpha.(i) in
      if a <> 0.0 then begin
        let b = st.basis.(i) in
        st.xval.(b) <- st.xval.(b) -. (a *. dir *. step)
      end
    done
  end

let pivot st alpha ~row j ~bound =
  let leaving = st.basis.(row) in
  st.status.(leaving) <- bound;
  (* pin the leaving variable exactly on its bound to avoid drift *)
  (st.xval.(leaving) <-
     match bound with
     | At_lower -> st.lb.(leaving)
     | At_upper -> st.ub.(leaving)
     | Basic | Nb_free -> st.xval.(leaving));
  st.basis.(row) <- j;
  st.status.(j) <- Basic;
  let piv = alpha.(row) in
  let brow = st.binv.(row) in
  (* scale the pivot row, recording its nonzero pattern; early in a solve —
     and for every warm-started child re-solve — the basis inverse is still
     close to a permuted identity, so routine pivots touch a few columns
     instead of the full dense row *)
  let nz = st.nzbuf in
  let nnz = ref 0 in
  for k = 0 to st.m - 1 do
    let v = brow.(k) in
    if v <> 0.0 then begin
      brow.(k) <- v /. piv;
      nz.(!nnz) <- k;
      incr nnz
    end
  done;
  let nnz = !nnz in
  let sparse_row = 2 * nnz < st.m in
  for i = 0 to st.m - 1 do
    if i <> row then begin
      let f = alpha.(i) in
      if f <> 0.0 then begin
        let bi = st.binv.(i) in
        if sparse_row then
          for t = 0 to nnz - 1 do
            let k = nz.(t) in
            bi.(k) <- bi.(k) -. (f *. brow.(k))
          done
        else
          for k = 0 to st.m - 1 do
            bi.(k) <- bi.(k) -. (f *. brow.(k))
          done
      end
    end
  done

(* -------------------------------------------------------------------- *)
(* Setup                                                                 *)

(* Nonbasic resting point for column [j] given a preferred bound: fall back
   to whichever bound is finite (closest to zero, like a cold start) when
   the preferred one is not. *)
let set_nonbasic st j preferred =
  let lo = st.lb.(j) and hi = st.ub.(j) in
  let at_lower () = st.status.(j) <- At_lower; st.xval.(j) <- lo in
  let at_upper () = st.status.(j) <- At_upper; st.xval.(j) <- hi in
  let free () = st.status.(j) <- Nb_free; st.xval.(j) <- 0.0 in
  match preferred with
  | At_lower when Float.is_finite lo -> at_lower ()
  | At_upper when Float.is_finite hi -> at_upper ()
  | _ ->
    if Float.is_finite lo && (Float.abs lo <= Float.abs hi || not (Float.is_finite hi)) then
      at_lower ()
    else if Float.is_finite hi then at_upper ()
    else free ()

(* All-slack starting basis: every structural column nonbasic at its best
   bound, identity basis inverse. *)
let set_cold st =
  for j = 0 to st.std.nvars - 1 do
    set_nonbasic st j At_lower
  done;
  for i = 0 to st.m - 1 do
    st.basis.(i) <- st.std.nvars + i;
    st.status.(st.std.nvars + i) <- Basic
  done;
  st.binv <- Array.init st.m (fun i -> Array.init st.m (fun k -> if i = k then 1.0 else 0.0));
  st.dual_valid <- false;
  recompute_basics st

(* Restart from a caller-supplied basis: validate, install statuses and
   nonbasic resting points (normalized against the possibly-tightened
   bounds), then either adopt the supplied inverse or refactorize.  Returns
   false — leaving the caller to fall back to a cold start — on any
   structural mismatch or a singular basis. *)
let try_warm st (wb : warm_basis) =
  if Array.length wb.wcols <> st.m || Array.length wb.wstatus <> st.ntotal then false
  else begin
    let in_basis = Array.make st.ntotal false in
    let ok = ref true in
    Array.iter
      (fun c ->
        if c < 0 || c >= st.ntotal || in_basis.(c) then ok := false else in_basis.(c) <- true)
      wb.wcols;
    let binv_ok =
      match wb.wbinv with
      | None -> true
      | Some b -> Array.length b = st.m && (st.m = 0 || Array.length b.(0) = st.m)
    in
    if (not !ok) || not binv_ok then false
    else begin
      Array.blit wb.wcols 0 st.basis 0 st.m;
      for j = 0 to st.ntotal - 1 do
        if in_basis.(j) then st.status.(j) <- Basic
        else set_nonbasic st j wb.wstatus.(j)
      done;
      match
        (match wb.wbinv with
        | Some b -> st.binv <- Array.map Array.copy b
        | None -> refactor st)
      with
      | () ->
        st.dual_valid <- false;
        recompute_basics st;
        true
      | exception Singular_basis -> false
    end
  end

let initial_state ?(feas_tol = 1e-7) ?(dual_tol = 1e-7) ?lb_override ?ub_override ?basis
    ~partial (std : Model.std) =
  let m = std.nrows in
  let nvars = std.nvars in
  let ntotal = nvars + m in
  let lb = Array.make ntotal 0.0 and ub = Array.make ntotal 0.0 in
  let slb = match lb_override with Some a -> a | None -> std.lb in
  let sub = match ub_override with Some a -> a | None -> std.ub in
  Array.blit slb 0 lb 0 nvars;
  Array.blit sub 0 ub 0 nvars;
  for i = 0 to m - 1 do
    (* Row a.x + s = rhs: Le rows get s in [0, inf), Ge rows s in (-inf, 0],
       Eq rows a fixed slack. *)
    let j = nvars + i in
    match std.row_sense.(i) with
    | Model.Le ->
      lb.(j) <- 0.0;
      ub.(j) <- infinity
    | Model.Ge ->
      lb.(j) <- neg_infinity;
      ub.(j) <- 0.0
    | Model.Eq ->
      lb.(j) <- 0.0;
      ub.(j) <- 0.0
  done;
  let obj = Array.make ntotal 0.0 in
  Array.blit std.obj 0 obj 0 nvars;
  let st =
    {
      std;
      m;
      ntotal;
      lb;
      ub;
      obj;
      status = Array.make ntotal At_lower;
      xval = Array.make ntotal 0.0;
      basis = Array.init m (fun i -> nvars + i);
      binv = [||];
      feas_tol;
      dual_tol;
      pivot_tol = 1e-9;
      bland = false;
      degenerate_run = 0;
      iterations = 0;
      dual = Array.make m 0.0;
      dual_valid = false;
      dual_phase1 = false;
      partial;
      price_window = Stdlib.max 256 (ntotal / 4);
      price_cursor = 0;
      nzbuf = Array.make m 0;
    }
  in
  let warmed = match basis with Some wb -> try_warm st wb | None -> false in
  if not warmed then set_cold st;
  (st, warmed)

let objective_value st =
  let acc = ref st.std.obj_offset in
  for j = 0 to st.std.nvars - 1 do
    acc := !acc +. (st.std.obj.(j) *. st.xval.(j))
  done;
  !acc

let extract st = Array.sub st.xval 0 st.std.nvars

let final_basis st = { wcols = st.basis; wstatus = st.status; wbinv = Some st.binv }

(* Trivial case: no constraints means each variable sits at whichever bound
   minimizes its objective coefficient. *)
let solve_unconstrained std lb ub =
  let n = (std : Model.std).nvars in
  let x = Array.make n 0.0 in
  let unbounded = ref false in
  for j = 0 to n - 1 do
    let c = std.obj.(j) in
    if c > 0.0 then
      if Float.is_finite lb.(j) then x.(j) <- lb.(j) else unbounded := true
    else if c < 0.0 then
      if Float.is_finite ub.(j) then x.(j) <- ub.(j) else unbounded := true
    else if Float.is_finite lb.(j) && lb.(j) > 0.0 then x.(j) <- lb.(j)
    else if Float.is_finite ub.(j) && ub.(j) < 0.0 then x.(j) <- ub.(j)
  done;
  if !unbounded then Unbounded
  else begin
    let obj = ref std.obj_offset in
    for j = 0 to n - 1 do
      obj := !obj +. (std.obj.(j) *. x.(j))
    done;
    Optimal
      {
        x;
        obj = !obj;
        iterations = 0;
        duals = [||];
        basis = { wcols = [||]; wstatus = [||]; wbinv = None };
      }
  end

let solve ?max_iters ?(feas_tol = 1e-7) ?(dual_tol = 1e-7) ?(partial_pricing = true) ?basis ?lb
    ?ub (std : Model.std) =
  (* A variable fixed-range check also covers per-node bound conflicts. *)
  let lbs = match lb with Some a -> a | None -> std.lb in
  let ubs = match ub with Some a -> a | None -> std.ub in
  let conflict = ref false in
  for j = 0 to std.nvars - 1 do
    if lbs.(j) > ubs.(j) +. feas_tol then conflict := true
  done;
  if !conflict then Infeasible { infeasibility = 1 }
  else if std.nrows = 0 then solve_unconstrained std lbs ubs
  else begin
    let st, _warmed =
      initial_state ~feas_tol ~dual_tol ?lb_override:lb ?ub_override:ub ?basis
        ~partial:partial_pricing std
    in
    let max_iters =
      match max_iters with
      | Some n -> n
      | None -> 20000 + (60 * (st.m + st.ntotal))
    in
    let refactor_every = 300 in
    let since_refactor = ref 0 in
    let result = ref None in
    while !result = None && st.iterations < max_iters do
      st.iterations <- st.iterations + 1;
      if !since_refactor >= refactor_every then begin
        (try refactor st with Singular_basis -> ());
        recompute_basics st;
        since_refactor := 0
      end;
      let _, infeas_count = total_infeasibility st in
      let phase1 = infeas_count > 0 in
      ensure_duals st ~phase1;
      match choose_entering st ~phase1 with
      | None ->
        if phase1 then begin
          (* Confirm infeasibility on a freshly factorized basis. *)
          if !since_refactor > 0 then begin
            (try refactor st with Singular_basis -> ());
            recompute_basics st;
            since_refactor := 0;
            let _, recount = total_infeasibility st in
            if recount > 0 then result := Some (Infeasible { infeasibility = recount })
          end
          else result := Some (Infeasible { infeasibility = infeas_count })
        end
        else if !since_refactor > 0 then begin
          (* Confirm optimality on a fresh factorization. *)
          (try refactor st with Singular_basis -> ());
          recompute_basics st;
          since_refactor := 0
        end
        else begin
          let duals = dual_values st ~phase1:false in
          result :=
            Some
              (Optimal
                 {
                   x = extract st;
                   obj = objective_value st;
                   iterations = st.iterations;
                   duals;
                   basis = final_basis st;
                 })
        end
      | Some (j, dir, d) -> begin
        let alpha = ftran st j in
        match ratio_test st alpha ~dir ~phase1 j with
        | No_block ->
          if phase1 then begin
            (* Numerically suspect: refactor and retry; a persistent miss is
               reported as infeasible rather than looping forever. *)
            (try refactor st with Singular_basis -> ());
            recompute_basics st;
            if !since_refactor = 0 then
              result := Some (Infeasible { infeasibility = infeas_count });
            since_refactor := 0
          end
          else result := Some Unbounded
        | Entering_flip step ->
          apply_move st alpha ~dir ~step j;
          (st.status.(j) <-
             match st.status.(j) with
             | At_lower -> At_upper
             | At_upper -> At_lower
             | s -> s);
          (* a bound flip keeps the basis and, in phase 2, the duals; the
             phase-1 cost vector may shift with the moved basic values *)
          if phase1 then st.dual_valid <- false;
          incr since_refactor
        | Leaving { row; step; bound } ->
          if step <= st.feas_tol then begin
            st.degenerate_run <- st.degenerate_run + 1;
            if st.degenerate_run > 100 then st.bland <- true
          end
          else begin
            st.degenerate_run <- 0;
            st.bland <- false
          end;
          apply_move st alpha ~dir ~step j;
          pivot st alpha ~row j ~bound;
          if phase1 then st.dual_valid <- false
          else if st.dual_valid then update_duals_after_pivot st ~row ~d;
          incr since_refactor
      end
    done;
    match !result with
    | Some r -> r
    | None ->
      let _, infeas_count = total_infeasibility st in
      Iteration_limit { feasible = infeas_count = 0; obj = objective_value st }
  end
