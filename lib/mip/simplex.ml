(* Column status.  A column is either basic (its value is determined by the
   basis equations) or nonbasic pinned at one of its bounds; free nonbasic
   columns sit at zero. *)
type col_status = Basic | At_lower | At_upper | Nb_free

(* Entering-column selection rule.  Dantzig and Partial score candidates by
   |reduced cost| (over every column / over a rotating window); Devex scores
   by d^2 / w_j with reference-framework weights approximating the
   steepest-edge norms (Forrest-Goldfarb). *)
type pricing = Dantzig | Partial | Devex

(* A restartable basis snapshot: which column is basic in each row plus the
   bound every nonbasic column rests on.  [wfac] optionally carries the
   matching basis factorization so a restart can skip refactorization;
   holders that keep many snapshots alive (the branch-and-bound node queue)
   drop it to stay O(ntotal) per snapshot.  [wdevex] optionally carries the
   final Devex weights so a warm restart can keep pricing in the parent's
   reference framework instead of re-referencing to all-ones. *)
type warm_basis = {
  wcols : int array;  (* wcols.(i) = column basic in row i *)
  wstatus : col_status array;  (* one entry per column incl. slacks *)
  wfac : Basis.t option;  (* basis factorization matching wcols *)
  wdevex : float array option;  (* Devex weights at the final basis *)
}

type result =
  | Optimal of {
      x : float array;
      obj : float;
      iterations : int;
      dual_iterations : int;
      bland_iterations : int;
      duals : float array;
      basis : warm_basis;
    }
  | Infeasible of { infeasibility : int }
  | Unbounded
  | Iteration_limit of { feasible : bool; obj : float }

type state = {
  std : Model.std;
  m : int;
  ntotal : int;  (* structural columns + one slack per row *)
  lb : float array;
  ub : float array;
  obj : float array;
  status : col_status array;
  xval : float array;
  basis : int array;  (* basis.(i) = column basic in row i *)
  mutable fac : Basis.t;  (* factorized basis (LU+eta or dense inverse) *)
  feas_tol : float;
  dual_tol : float;
  pivot_tol : float;
  mutable bland : bool;  (* anti-cycling mode *)
  mutable degenerate_run : int;
  degen_limit : int;  (* consecutive degenerate pivots before Bland mode *)
  mutable iterations : int;
  mutable dual_pivots : int;
  mutable bland_pivots : int;  (* pivots whose entering column Bland chose *)
  (* cached simplex multipliers y = c_B^T B^-1: recomputed by BTRAN in
     phase 1 (the phase-1 cost vector moves with the iterate) and after
     refactorization, updated incrementally after phase-2 pivots *)
  mutable dual : float array;
  mutable dual_valid : bool;
  mutable dual_phase1 : bool;
  (* entering-column selection *)
  pricing : pricing;
  (* candidate-list pricing state *)
  price_window : int;
  mutable price_cursor : int;
  (* Devex reference-framework state.  [devex_w.(j)] approximates the
     steepest-edge weight of column j relative to the basis at the last
     reference reset; weights of basic columns are frozen until they leave.
     The exact Forrest-Goldfarb update needs the pivot row over every
     nonbasic column, which this revised simplex never forms; instead the
     pivot stores the new B^-1 pivot row ([devex_pending]) and the next full
     pricing scan folds the update w_j <- max(w_j, g * (rho . A_j)^2) into
     the reduced-cost pass it does anyway — every nonbasic column is
     visited exactly once per pivot, at no extra column traversals. *)
  devex_w : float array;
  mutable devex_pending : float array option;  (* new B^-1 pivot row *)
  mutable devex_pending_g : float;  (* reference weight of the pivot *)
  mutable devex_strikes : int;  (* weight-accuracy violations observed *)
  mutable devex_gen : int;  (* bumped by every reference reset *)
  devex_reset_period : int;  (* forced re-reference every N pivots; 0 = off *)
  trace : (iteration:int -> min_devex_weight:float -> unit) option;
}

(* -------------------------------------------------------------------- *)
(* Column access: structural columns come from the compiled sparse form;
   slack column [nvars + i] is the unit vector e_i.                      *)

let col_iter st j f =
  if j < st.std.nvars then begin
    let rows = st.std.col_rows.(j) and coefs = st.std.col_coefs.(j) in
    for k = 0 to Array.length rows - 1 do
      f rows.(k) coefs.(k)
    done
  end
  else f (j - st.std.nvars) 1.0

(* alpha = B^-1 * A_j through the factorization. *)
let ftran st j =
  if j < st.std.nvars then Basis.ftran_col st.fac st.std.col_rows.(j) st.std.col_coefs.(j)
  else Basis.ftran_unit st.fac (j - st.std.nvars)

(* -------------------------------------------------------------------- *)
(* Basis maintenance                                                     *)

(* Restart the Devex reference framework: all weights one (the current
   basis becomes the reference basis), no pending pivot-row update.  Fired
   on refactorization (via the {!Basis} hook installed in [initial_state]),
   on entry to Bland mode, when the accuracy check has struck out, and on a
   forced periodic re-reference. *)
let reset_devex st =
  Array.fill st.devex_w 0 st.ntotal 1.0;
  st.devex_pending <- None;
  st.devex_strikes <- 0;
  st.devex_gen <- st.devex_gen + 1

(* Devex accuracy policy.  At pivot time the exact steepest-edge measure of
   the entering column, 1 + ||alpha||², is available for free from the
   FTRAN.  The reference-framework weight approximates the norm over a
   subset of that sum, so it should never exceed the exact measure by much;
   when the stored weight overshoots it by [devex_weight_slack] the
   framework has drifted — one strike — and [devex_max_strikes] strikes
   force a reset. *)
let devex_weight_slack = 3.0
let devex_max_strikes = 3

(* Rebuild the factorization from scratch for the current basis columns.
   Bounds numerical drift from the update chain.  Raises Basis.Singular
   (leaving the factors unchanged) when elimination breaks down. *)
let refactor st =
  Basis.refactorize st.fac ~basis:st.basis ~col:(col_iter st);
  st.dual_valid <- false

let recompute_basics st =
  (* x_B = B^-1 (rhs - sum over nonbasic columns of A_j x_j) *)
  let r = Array.copy st.std.rhs in
  for j = 0 to st.ntotal - 1 do
    if st.status.(j) <> Basic && st.xval.(j) <> 0.0 then begin
      let v = st.xval.(j) in
      col_iter st j (fun row c -> r.(row) <- r.(row) -. (c *. v))
    end
  done;
  let vals = Basis.ftran_dense st.fac r in
  for i = 0 to st.m - 1 do
    st.xval.(st.basis.(i)) <- vals.(i)
  done

(* -------------------------------------------------------------------- *)
(* Pricing                                                               *)

let infeasibility_of st b =
  let x = st.xval.(b) in
  if x < st.lb.(b) -. st.feas_tol then st.lb.(b) -. x
  else if x > st.ub.(b) +. st.feas_tol then x -. st.ub.(b)
  else 0.0

let total_infeasibility st =
  let total = ref 0.0 and count = ref 0 in
  for i = 0 to st.m - 1 do
    let v = infeasibility_of st st.basis.(i) in
    if v > 0.0 then begin
      total := !total +. v;
      incr count
    end
  done;
  (!total, !count)

(* Phase-1 cost of the basic variable in row [i]: the gradient of its bound
   violation.  Nonbasic columns always have zero phase-1 cost. *)
let phase1_cost st i =
  let b = st.basis.(i) in
  let x = st.xval.(b) in
  if x < st.lb.(b) -. st.feas_tol then -1.0
  else if x > st.ub.(b) +. st.feas_tol then 1.0
  else 0.0

let dual_values st ~phase1 =
  let cb = Array.make st.m 0.0 in
  for i = 0 to st.m - 1 do
    cb.(i) <- (if phase1 then phase1_cost st i else st.obj.(st.basis.(i)))
  done;
  Basis.btran_dense st.fac cb

(* The BTRAN that used to run every iteration is hoisted into a cached dual
   vector: phase-2 pivots update it in one sparse unit-BTRAN (see
   [update_duals_after_pivot]); only phase 1 — whose cost vector depends on
   the iterate — and freshly refactorized bases pay the full recompute. *)
let ensure_duals st ~phase1 =
  if (not st.dual_valid) || st.dual_phase1 <> phase1 then begin
    st.dual <- dual_values st ~phase1;
    st.dual_valid <- true;
    st.dual_phase1 <- phase1
  end

(* After the pivot in row [row] with entering reduced cost [d]:
   y' = y + d * (new B^-1 row), the product-form identity
   y' = y + (d / alpha_row) * (old B^-1 row).  Valid only in phase 2, where
   the basic cost vector changes by the pivot alone.  Must run after the
   factorization has absorbed the pivot. *)
let update_duals_after_pivot st ~row ~d =
  if d <> 0.0 then begin
    let brow = Basis.row_of_inverse st.fac row in
    let y = st.dual in
    for k = 0 to st.m - 1 do
      y.(k) <- y.(k) +. (d *. brow.(k))
    done
  end

let reduced_cost st y ~phase1 j =
  let c = if phase1 then 0.0 else st.obj.(j) in
  let acc = ref c in
  col_iter st j (fun r coef -> acc := !acc -. (y.(r) *. coef));
  !acc

(* Direction the entering variable would move, or None if it is not an
   improving candidate.  Columns with a zero-width range never enter. *)
let entering_direction st ~d j =
  if st.ub.(j) -. st.lb.(j) <= 0.0 then None
  else
    match st.status.(j) with
    | Basic -> None
    | At_lower -> if d < -.st.dual_tol then Some 1.0 else None
    | At_upper -> if d > st.dual_tol then Some (-1.0) else None
    | Nb_free ->
      if d < -.st.dual_tol then Some 1.0
      else if d > st.dual_tol then Some (-1.0)
      else None

(* Entering-column choice.  Four regimes:
   - Bland's rule (anti-cycling): lowest-index improving column, full scan;
   - full Dantzig: best |reduced cost| over every column (the seed scheme,
     kept selectable for benchmarking);
   - candidate-list partial pricing: scan a rotating window from
     [price_cursor]; once an improving candidate is seen, stop at the window
     boundary and take the best so far.  Only a completely dry full rotation
     declares dual feasibility, so optimality claims are unchanged;
   - Devex (default): full scan scoring d^2 / w_j under the approximate
     steepest-edge weights, folding the previous pivot's weight update into
     the same pass (see the [devex_pending] comment on [state]). *)
let choose_entering st ~phase1 =
  let y = st.dual in
  if st.bland then begin
    let rec scan j =
      if j >= st.ntotal then None
      else if st.status.(j) = Basic then scan (j + 1)
      else
        let d = reduced_cost st y ~phase1 j in
        match entering_direction st ~d j with
        | Some dir -> Some (j, dir, d)
        | None -> scan (j + 1)
    in
    scan 0
  end
  else
    match st.pricing with
    | Dantzig ->
    let best = ref None and best_score = ref 0.0 in
    for j = 0 to st.ntotal - 1 do
      if st.status.(j) <> Basic then begin
        let d = reduced_cost st y ~phase1 j in
        match entering_direction st ~d j with
        | Some dir ->
          let score = Float.abs d in
          if score > !best_score then begin
            best_score := score;
            best := Some (j, dir, d)
          end
        | None -> ()
      end
    done;
    !best
    | Devex ->
    (* One pass over the nonbasic columns computes the reduced cost and —
       when a pivot-row update is pending — the pivot-row entry
       rho . A_j, applying w_j <- max(w_j, g * (rho . A_j)^2) before the
       column is scored.  Clearing [devex_pending] afterwards keeps the
       update applied exactly once per pivot. *)
    let best = ref None and best_score = ref 0.0 in
    let pend = st.devex_pending and g = st.devex_pending_g in
    for j = 0 to st.ntotal - 1 do
      if st.status.(j) <> Basic then begin
        let c = if phase1 then 0.0 else st.obj.(j) in
        let d = ref c in
        (match pend with
        | Some rho ->
          let a = ref 0.0 in
          col_iter st j (fun r coef ->
              d := !d -. (y.(r) *. coef);
              a := !a +. (rho.(r) *. coef));
          let w' = g *. !a *. !a in
          if w' > st.devex_w.(j) then st.devex_w.(j) <- w'
        | None -> col_iter st j (fun r coef -> d := !d -. (y.(r) *. coef)));
        let d = !d in
        match entering_direction st ~d j with
        | Some dir ->
          let score = d *. d /. st.devex_w.(j) in
          if score > !best_score then begin
            best_score := score;
            best := Some (j, dir, d)
          end
        | None -> ()
      end
    done;
    st.devex_pending <- None;
    !best
    | Partial ->
    let n = st.ntotal in
    let best_j = ref (-1) and best_dir = ref 1.0 and best_d = ref 0.0 in
    let best_score = ref 0.0 in
    let k = ref 0 in
    let stop = ref false in
    while (not !stop) && !k < n do
      let j =
        let c = st.price_cursor + !k in
        if c >= n then c - n else c
      in
      incr k;
      if st.status.(j) <> Basic then begin
        let d = reduced_cost st y ~phase1 j in
        match entering_direction st ~d j with
        | Some dir ->
          let score = Float.abs d in
          if score > !best_score then begin
            best_score := score;
            best_j := j;
            best_dir := dir;
            best_d := d
          end
        | None -> ()
      end;
      if !best_j >= 0 && !k >= st.price_window then stop := true
    done;
    if !best_j < 0 then None
    else begin
      (* rotate so the next iteration prices a fresh section *)
      st.price_cursor <-
        (let c = st.price_cursor + !k in
         if c >= n then c - n else c);
      Some (!best_j, !best_dir, !best_d)
    end

(* -------------------------------------------------------------------- *)
(* Ratio test                                                            *)

type block =
  | No_block
  | Entering_flip of float
  | Leaving of { row : int; step : float; bound : col_status }

(* In phase 1 an infeasible basic variable only blocks when it reaches the
   bound it violates (at which point it leaves the basis feasible); moving
   away from feasibility never blocks because the pricing step already
   accounted for that gradient. *)
let ratio_test st alpha ~dir ~phase1 j =
  let eps = st.pivot_tol in
  let t_enter =
    match st.status.(j) with
    | Nb_free -> infinity
    | _ ->
      let range = st.ub.(j) -. st.lb.(j) in
      if Float.is_finite range then range else infinity
  in
  let best_step = ref t_enter and best_row = ref (-1) and best_bound = ref At_lower in
  let best_pivot = ref 0.0 in
  for i = 0 to st.m - 1 do
    let a = alpha.(i) in
    if Float.abs a > eps then begin
      let b = st.basis.(i) in
      let delta = -.dir *. a in
      let x = st.xval.(b) in
      let lo = st.lb.(b) and hi = st.ub.(b) in
      let candidate =
        if phase1 && x < lo -. st.feas_tol then
          (* below its lower bound: blocks only when climbing back to it *)
          (if delta > eps then Some ((lo -. x) /. delta, At_lower) else None)
        else if phase1 && x > hi +. st.feas_tol then
          (if delta < -.eps then Some ((hi -. x) /. delta, At_upper) else None)
        else if delta > eps then
          (if Float.is_finite hi then Some ((hi -. x) /. delta, At_upper) else None)
        else if Float.is_finite lo then Some ((lo -. x) /. delta, At_lower)
        else None
      in
      match candidate with
      | None -> ()
      | Some (step, bound) ->
        let step = max 0.0 step in
        (* Prefer strictly smaller steps; on (near-)ties keep the row with
           the largest pivot magnitude for numerical stability. *)
        let better =
          if !best_row < 0 then step <= !best_step
          else if step < !best_step -. 1e-9 then true
          else if step <= !best_step +. 1e-9 then Float.abs a > !best_pivot
          else false
        in
        if better then begin
          best_step := min step !best_step;
          best_row := i;
          best_bound := bound;
          best_pivot := Float.abs a
        end
    end
  done;
  if !best_row >= 0 then Leaving { row = !best_row; step = !best_step; bound = !best_bound }
  else if Float.is_finite t_enter then Entering_flip t_enter
  else No_block

(* -------------------------------------------------------------------- *)
(* Setup (forward-declared pieces used by pivot application)             *)

(* Nonbasic resting point for column [j] given a preferred bound: fall back
   to whichever bound is finite (closest to zero, like a cold start) when
   the preferred one is not. *)
let set_nonbasic st j preferred =
  let lo = st.lb.(j) and hi = st.ub.(j) in
  let at_lower () = st.status.(j) <- At_lower; st.xval.(j) <- lo in
  let at_upper () = st.status.(j) <- At_upper; st.xval.(j) <- hi in
  let free () = st.status.(j) <- Nb_free; st.xval.(j) <- 0.0 in
  match preferred with
  | At_lower when Float.is_finite lo -> at_lower ()
  | At_upper when Float.is_finite hi -> at_upper ()
  | _ ->
    if Float.is_finite lo && (Float.abs lo <= Float.abs hi || not (Float.is_finite hi)) then
      at_lower ()
    else if Float.is_finite hi then at_upper ()
    else free ()

(* All-slack starting basis: every structural column nonbasic at its best
   bound, identity basis factorization. *)
let set_cold st =
  for j = 0 to st.std.nvars - 1 do
    set_nonbasic st j At_lower
  done;
  for i = 0 to st.m - 1 do
    st.basis.(i) <- st.std.nvars + i;
    st.status.(st.std.nvars + i) <- Basic
  done;
  Basis.set_identity st.fac;
  st.dual_valid <- false;
  (* the basis jumped wholesale; any accumulated pricing state is stale *)
  if st.pricing = Devex then reset_devex st;
  recompute_basics st

(* -------------------------------------------------------------------- *)
(* Pivot application                                                     *)

let apply_move st alpha ~dir ~step j =
  if step <> 0.0 then begin
    st.xval.(j) <- st.xval.(j) +. (dir *. step);
    for i = 0 to st.m - 1 do
      let a = alpha.(i) in
      if a <> 0.0 then begin
        let b = st.basis.(i) in
        st.xval.(b) <- st.xval.(b) -. (a *. dir *. step)
      end
    done
  end

(* Absorb the basis change into the factorization.  When the update is
   refused (pivot too small, update budget exhausted) refactorize from the
   already-updated basis columns; if even that fails the basis is
   numerically hopeless and the solve restarts cold — correctness over
   speed on a path that never fires in practice. *)
let absorb_pivot st alpha ~row =
  if not (Basis.update st.fac ~alpha ~row) then begin
    match refactor st with
    | () -> recompute_basics st
    | exception Basis.Singular -> set_cold st
  end

let pivot st alpha ~row j ~bound =
  let leaving = st.basis.(row) in
  st.status.(leaving) <- bound;
  (* pin the leaving variable exactly on its bound to avoid drift *)
  (st.xval.(leaving) <-
     match bound with
     | At_lower -> st.lb.(leaving)
     | At_upper -> st.ub.(leaving)
     | Basic | Nb_free -> st.xval.(leaving));
  st.basis.(row) <- j;
  st.status.(j) <- Basic;
  absorb_pivot st alpha ~row

(* -------------------------------------------------------------------- *)
(* Warm starts                                                           *)

(* Restart from a caller-supplied basis: validate, install statuses and
   nonbasic resting points (normalized against the possibly-tightened
   bounds), then either adopt the supplied factorization or refactorize.
   Returns false — leaving the caller to fall back to a cold start — on any
   structural mismatch or a singular basis. *)
let try_warm st (wb : warm_basis) =
  if Array.length wb.wcols <> st.m || Array.length wb.wstatus <> st.ntotal then false
  else begin
    let in_basis = Array.make st.ntotal false in
    let ok = ref true in
    Array.iter
      (fun c ->
        if c < 0 || c >= st.ntotal || in_basis.(c) then ok := false else in_basis.(c) <- true)
      wb.wcols;
    if not !ok then false
    else begin
      Array.blit wb.wcols 0 st.basis 0 st.m;
      for j = 0 to st.ntotal - 1 do
        if in_basis.(j) then st.status.(j) <- Basic
        else set_nonbasic st j wb.wstatus.(j)
      done;
      let adopted =
        match wb.wfac with
        | Some f when Basis.kind f = Basis.kind st.fac && Basis.dim f = st.m ->
          st.fac <- Basis.copy f;
          true
        | Some _ | None -> false
      in
      match
        if adopted then []
        else Basis.refactorize_repaired st.fac ~basis:st.basis ~col:(col_iter st)
      with
      | repairs ->
        (* Dependent carried columns (a cross-round basis projected onto a
           model with removed rows) were replaced by slacks of the rows the
           elimination left unpivoted; mirror the substitutions here. *)
        List.iter
          (fun (pos, row) ->
            let displaced = st.basis.(pos) in
            let slack = st.std.nvars + row in
            st.basis.(pos) <- slack;
            st.status.(slack) <- Basic;
            set_nonbasic st displaced wb.wstatus.(displaced))
          repairs;
        st.dual_valid <- false;
        recompute_basics st;
        true
      | exception Basis.Singular -> false
    end
  end

let initial_state ?(feas_tol = 1e-7) ?(dual_tol = 1e-7) ?lb_override ?ub_override ?basis
    ~pricing ~devex_carry ~degen_limit ~devex_reset_period ~trace ~backend (std : Model.std) =
  let m = std.nrows in
  let nvars = std.nvars in
  let ntotal = nvars + m in
  let lb = Array.make ntotal 0.0 and ub = Array.make ntotal 0.0 in
  let slb = match lb_override with Some a -> a | None -> std.lb in
  let sub = match ub_override with Some a -> a | None -> std.ub in
  Array.blit slb 0 lb 0 nvars;
  Array.blit sub 0 ub 0 nvars;
  for i = 0 to m - 1 do
    (* Row a.x + s = rhs: Le rows get s in [0, inf), Ge rows s in (-inf, 0],
       Eq rows a fixed slack. *)
    let j = nvars + i in
    match std.row_sense.(i) with
    | Model.Le ->
      lb.(j) <- 0.0;
      ub.(j) <- infinity
    | Model.Ge ->
      lb.(j) <- neg_infinity;
      ub.(j) <- 0.0
    | Model.Eq ->
      lb.(j) <- 0.0;
      ub.(j) <- 0.0
  done;
  let obj = Array.make ntotal 0.0 in
  Array.blit std.obj 0 obj 0 nvars;
  let st =
    {
      std;
      m;
      ntotal;
      lb;
      ub;
      obj;
      status = Array.make ntotal At_lower;
      xval = Array.make ntotal 0.0;
      basis = Array.init m (fun i -> nvars + i);
      fac = Basis.create backend ~m;
      feas_tol;
      dual_tol;
      pivot_tol = 1e-9;
      bland = false;
      degenerate_run = 0;
      degen_limit;
      iterations = 0;
      dual_pivots = 0;
      bland_pivots = 0;
      dual = Array.make m 0.0;
      dual_valid = false;
      dual_phase1 = false;
      pricing;
      price_window = Stdlib.max 256 (ntotal / 4);
      price_cursor = 0;
      devex_w = Array.make ntotal 1.0;
      devex_pending = None;
      devex_pending_g = 1.0;
      devex_strikes = 0;
      devex_gen = 0;
      devex_reset_period;
      trace;
    }
  in
  let warmed = match basis with Some wb -> try_warm st wb | None -> false in
  if not warmed then set_cold st;
  if pricing = Devex then begin
    (* weights live and die with the factorized basis: any refactorization
       re-references the framework (installed after the warm attempt so the
       adopted factorization copy gets this solve's hook) *)
    Basis.set_refactor_hook st.fac (fun () -> reset_devex st);
    match basis with
    | Some { wdevex = Some w; _ } when warmed && devex_carry && Array.length w = ntotal ->
      (* keep pricing in the donor solve's reference framework *)
      Array.blit w 0 st.devex_w 0 ntotal
    | _ -> ()
  end;
  (st, warmed)

let objective_value st =
  let acc = ref st.std.obj_offset in
  for j = 0 to st.std.nvars - 1 do
    acc := !acc +. (st.std.obj.(j) *. st.xval.(j))
  done;
  !acc

let extract st = Array.sub st.xval 0 st.std.nvars

let final_basis st =
  {
    wcols = st.basis;
    wstatus = st.status;
    wfac = Some st.fac;
    wdevex = (if st.pricing = Devex then Some (Array.copy st.devex_w) else None);
  }

(* -------------------------------------------------------------------- *)
(* Dual simplex                                                          *)

(* A warm-started basis whose bounds were tightened (the branch-and-bound
   child pattern) is primal infeasible but still dual feasible: the
   reduced costs did not move.  This check gates the dual phase; a basis
   that fails it (e.g. a stale snapshot under a different objective) falls
   through to the ordinary primal phase 1. *)
let dual_feasible_now st =
  ensure_duals st ~phase1:false;
  let y = st.dual in
  let tol = 10.0 *. st.dual_tol in
  let ok = ref true in
  let j = ref 0 in
  while !ok && !j < st.ntotal do
    let jj = !j in
    (if st.status.(jj) <> Basic && st.ub.(jj) -. st.lb.(jj) > 0.0 then
       let d = reduced_cost st y ~phase1:false jj in
       match st.status.(jj) with
       | At_lower -> if d < -.tol then ok := false
       | At_upper -> if d > tol then ok := false
       | Nb_free -> if Float.abs d > tol then ok := false
       | Basic -> ());
    incr j
  done;
  !ok

(* Dual simplex re-optimization: drive out primal infeasibilities while the
   reduced costs stay dual feasible.  Each iteration picks the most
   violated basic variable as the leaving row, prices the pivot row
   (rho = e_r^T B^-1 via BTRAN, then one pass over the nonbasic columns for
   both the row entries and the reduced costs), runs the dual ratio test
   (min |d_j|/|alpha_rj| over sign-eligible columns, larger pivot on ties),
   and pivots.  On any numerical doubt — no eligible column, a pivot-row /
   FTRAN disagreement, a long degenerate stall — it simply stops: the
   primal loop behind it is fully general and finishes the solve, so the
   dual phase is purely an accelerator. *)
let dual_phase st ~max_iters =
  let m = st.m in
  let budget = ref (200 + (2 * m)) in
  let stalled = ref 0 in
  let running = ref true in
  while !running && st.iterations < max_iters && !budget > 0 do
    decr budget;
    if Basis.should_refactorize st.fac then begin
      match refactor st with
      | () -> recompute_basics st
      | exception Basis.Singular -> running := false
    end;
    if !running then begin
      (* leaving row: largest bound violation *)
      let r = ref (-1) and worst = ref 0.0 in
      for i = 0 to m - 1 do
        let v = infeasibility_of st st.basis.(i) in
        if v > !worst then begin
          worst := v;
          r := i
        end
      done;
      if !r < 0 then running := false (* primal feasible: the dual phase is done *)
      else begin
        let r = !r in
        let b = st.basis.(r) in
        let xb = st.xval.(b) in
        let v, bound =
          if xb < st.lb.(b) -. st.feas_tol then (xb -. st.lb.(b), At_lower)
          else (xb -. st.ub.(b), At_upper)
        in
        ensure_duals st ~phase1:false;
        let y = st.dual in
        let rho = Basis.row_of_inverse st.fac r in
        let best_j = ref (-1) and best_ratio = ref infinity in
        let best_mag = ref 0.0 and best_d = ref 0.0 in
        for j = 0 to st.ntotal - 1 do
          if st.status.(j) <> Basic && st.ub.(j) -. st.lb.(j) > 0.0 then begin
            (* one column pass for both the reduced cost and the row entry *)
            let d = ref st.obj.(j) and arj = ref 0.0 in
            col_iter st j (fun row c ->
                d := !d -. (y.(row) *. c);
                arj := !arj +. (rho.(row) *. c));
            let a = !arj in
            if Float.abs a > st.pivot_tol then begin
              let eligible =
                match st.status.(j) with
                | At_lower -> v *. a > 0.0 (* entering may only increase *)
                | At_upper -> v *. a < 0.0 (* entering may only decrease *)
                | Nb_free -> true
                | Basic -> false
              in
              if eligible then begin
                let ratio = Float.abs !d /. Float.abs a in
                let better =
                  if ratio < !best_ratio -. 1e-10 then true
                  else if ratio <= !best_ratio +. 1e-10 then Float.abs a > !best_mag
                  else false
                in
                if better then begin
                  best_j := j;
                  best_ratio := ratio;
                  best_mag := Float.abs a;
                  best_d := !d
                end
              end
            end
          end
        done;
        if !best_j < 0 then running := false
          (* dual ray (primal infeasible) or numerics: let the primal
             phase 1 deliver the verdict *)
        else begin
          let q = !best_j in
          let alpha = ftran st q in
          let arq = alpha.(r) in
          if Float.abs arq < st.pivot_tol then begin
            (* the priced row entry and the FTRAN'd column disagree:
               refresh the factorization, then give the primal path the
               problem if it keeps happening *)
            (try refactor st with Basis.Singular -> ());
            recompute_basics st;
            incr stalled;
            if !stalled > 3 then running := false
          end
          else begin
            let step = v /. arq in
            st.xval.(q) <- st.xval.(q) +. step;
            for i = 0 to m - 1 do
              let a = alpha.(i) in
              if a <> 0.0 then begin
                let bi = st.basis.(i) in
                st.xval.(bi) <- st.xval.(bi) -. (a *. step)
              end
            done;
            (* the leaving variable lands exactly on its violated bound *)
            st.status.(b) <- bound;
            (st.xval.(b) <-
               match bound with At_lower -> st.lb.(b) | _ -> st.ub.(b));
            st.basis.(r) <- q;
            st.status.(q) <- Basic;
            absorb_pivot st alpha ~row:r;
            st.iterations <- st.iterations + 1;
            st.dual_pivots <- st.dual_pivots + 1;
            if st.dual_valid then update_duals_after_pivot st ~row:r ~d:!best_d;
            if !best_ratio <= st.dual_tol then begin
              (* dual-degenerate pivot: no dual objective progress *)
              incr stalled;
              if !stalled > 100 then running := false
            end
            else stalled := 0
          end
        end
      end
    end
  done

(* -------------------------------------------------------------------- *)
(* Driver                                                                *)

(* Trivial case: no constraints means each variable sits at whichever bound
   minimizes its objective coefficient. *)
let solve_unconstrained std lb ub =
  let n = (std : Model.std).nvars in
  let x = Array.make n 0.0 in
  let unbounded = ref false in
  for j = 0 to n - 1 do
    let c = std.obj.(j) in
    if c > 0.0 then
      if Float.is_finite lb.(j) then x.(j) <- lb.(j) else unbounded := true
    else if c < 0.0 then
      if Float.is_finite ub.(j) then x.(j) <- ub.(j) else unbounded := true
    else if Float.is_finite lb.(j) && lb.(j) > 0.0 then x.(j) <- lb.(j)
    else if Float.is_finite ub.(j) && ub.(j) < 0.0 then x.(j) <- ub.(j)
  done;
  if !unbounded then Unbounded
  else begin
    let obj = ref std.obj_offset in
    for j = 0 to n - 1 do
      obj := !obj +. (std.obj.(j) *. x.(j))
    done;
    Optimal
      {
        x;
        obj = !obj;
        iterations = 0;
        dual_iterations = 0;
        bland_iterations = 0;
        duals = [||];
        basis = { wcols = [||]; wstatus = [||]; wfac = None; wdevex = None };
      }
  end

let solve ?max_iters ?(feas_tol = 1e-7) ?(dual_tol = 1e-7) ?(pricing = Devex)
    ?(devex_carry = false) ?(degen_limit = 100) ?(devex_reset_period = 0) ?trace
    ?(backend = Basis.Lu) ?(dual_simplex = true) ?basis ?lb ?ub (std : Model.std) =
  (* A variable fixed-range check also covers per-node bound conflicts. *)
  let lbs = match lb with Some a -> a | None -> std.lb in
  let ubs = match ub with Some a -> a | None -> std.ub in
  let conflict = ref false in
  for j = 0 to std.nvars - 1 do
    if lbs.(j) > ubs.(j) +. feas_tol then conflict := true
  done;
  if !conflict then Infeasible { infeasibility = 1 }
  else if std.nrows = 0 then solve_unconstrained std lbs ubs
  else begin
    let st, warmed =
      initial_state ~feas_tol ~dual_tol ?lb_override:lb ?ub_override:ub ?basis
        ~pricing ~devex_carry ~degen_limit ~devex_reset_period ~trace ~backend std
    in
    let max_iters =
      match max_iters with
      | Some n -> n
      | None -> 20000 + (60 * (st.m + st.ntotal))
    in
    (* Dual re-optimization: a warm basis whose bounds were tightened is
       typically primal infeasible but still dual feasible, and a handful
       of dual pivots restores optimality — the branch-and-bound child
       restart pattern.  Cold starts and dual-infeasible bases skip
       straight to the primal phases. *)
    if warmed && dual_simplex then begin
      let _, infeas0 = total_infeasibility st in
      if infeas0 > 0 && dual_feasible_now st then dual_phase st ~max_iters
    end;
    let result = ref None in
    while !result = None && st.iterations < max_iters do
      st.iterations <- st.iterations + 1;
      if
        st.pricing = Devex && st.devex_reset_period > 0
        && st.iterations mod st.devex_reset_period = 0
      then reset_devex st;
      if Basis.should_refactorize st.fac then begin
        (try refactor st with Basis.Singular -> ());
        recompute_basics st
      end;
      let _, infeas_count = total_infeasibility st in
      let phase1 = infeas_count > 0 in
      ensure_duals st ~phase1;
      match choose_entering st ~phase1 with
      | None ->
        if phase1 then begin
          (* Confirm infeasibility on a freshly factorized basis. *)
          if Basis.updates_since_refactor st.fac > 0 then begin
            match refactor st with
            | () ->
              recompute_basics st;
              let _, recount = total_infeasibility st in
              if recount > 0 then result := Some (Infeasible { infeasibility = recount })
            | exception Basis.Singular ->
              result := Some (Infeasible { infeasibility = infeas_count })
          end
          else result := Some (Infeasible { infeasibility = infeas_count })
        end
        else begin
          (* Confirm optimality on a fresh factorization. *)
          let confirmed =
            if Basis.updates_since_refactor st.fac = 0 then true
            else
              match refactor st with
              | () ->
                recompute_basics st;
                false (* re-price on the fresh factors *)
              | exception Basis.Singular -> true
          in
          if confirmed then begin
            let duals = dual_values st ~phase1:false in
            result :=
              Some
                (Optimal
                   {
                     x = extract st;
                     obj = objective_value st;
                     iterations = st.iterations;
                     dual_iterations = st.dual_pivots;
                     bland_iterations = st.bland_pivots;
                     duals;
                     basis = final_basis st;
                   })
          end
        end
      | Some (j, dir, d) -> begin
        let alpha = ftran st j in
        match ratio_test st alpha ~dir ~phase1 j with
        | No_block ->
          if phase1 then begin
            (* Numerically suspect: refactor and retry; a persistent miss is
               reported as infeasible rather than looping forever. *)
            let fresh = Basis.updates_since_refactor st.fac = 0 in
            (try refactor st with Basis.Singular -> ());
            recompute_basics st;
            if fresh then result := Some (Infeasible { infeasibility = infeas_count })
          end
          else result := Some Unbounded
        | Entering_flip step ->
          apply_move st alpha ~dir ~step j;
          (st.status.(j) <-
             match st.status.(j) with
             | At_lower -> At_upper
             | At_upper -> At_lower
             | s -> s);
          (* a bound flip keeps the basis and, in phase 2, the duals; the
             phase-1 cost vector may shift with the moved basic values *)
          if phase1 then st.dual_valid <- false
        | Leaving { row; step; bound } ->
          let was_bland = st.bland in
          if step <= st.feas_tol then begin
            st.degenerate_run <- st.degenerate_run + 1;
            if st.degenerate_run > st.degen_limit && not st.bland then begin
              st.bland <- true;
              (* Bland's rule ignores the weights; restart the reference
                 framework from whatever basis Bland mode leaves us in. *)
              if st.pricing = Devex then reset_devex st
            end
          end
          else begin
            st.degenerate_run <- 0;
            st.bland <- false
          end;
          if was_bland then st.bland_pivots <- st.bland_pivots + 1;
          apply_move st alpha ~dir ~step j;
          (* Devex bookkeeping needs pre-pivot data: the entering column's
             stored weight, the pivot element, and the leaving variable. *)
          let devex_live = st.pricing = Devex && not st.bland in
          let gen0 = st.devex_gen in
          let entering_w =
            if devex_live then Float.max 1.0 st.devex_w.(j) else 1.0
          in
          let leaving = st.basis.(row) in
          let arq = alpha.(row) in
          pivot st alpha ~row j ~bound;
          let need_dual = (not phase1) && st.dual_valid in
          if phase1 then st.dual_valid <- false;
          (* [pivot] may have refactorized (refused update), which fires the
             reset hook and bumps the generation — a stale pending row from
             before the reset must not be installed. *)
          let devex_live = devex_live && st.devex_gen = gen0 in
          if need_dual || devex_live then begin
            (* Both the incremental dual update and the lazy Devex weight
               update consume the post-pivot B⁻¹ pivot row; one BTRAN
               serves both. *)
            let brow = Basis.row_of_inverse st.fac row in
            if need_dual && d <> 0.0 then begin
              let y = st.dual in
              for k = 0 to st.m - 1 do
                y.(k) <- y.(k) +. (d *. brow.(k))
              done
            end;
            if devex_live then begin
              let se = ref 1.0 in
              for i = 0 to st.m - 1 do
                se := !se +. (alpha.(i) *. alpha.(i))
              done;
              if entering_w > devex_weight_slack *. !se then begin
                st.devex_strikes <- st.devex_strikes + 1;
                if st.devex_strikes > devex_max_strikes then reset_devex st
              end;
              if st.devex_gen = gen0 then begin
                (* Forrest–Goldfarb: the leaving variable re-enters the
                   nonbasic set with weight max(1, ĝ/α_rq²); every other
                   nonbasic weight is folded in lazily at the next pricing
                   scan through [devex_pending]. *)
                st.devex_w.(leaving) <- Float.max 1.0 (entering_w /. (arq *. arq));
                st.devex_pending <- Some brow;
                st.devex_pending_g <- entering_w
              end
            end
          end;
          (match st.trace with
          | Some f when st.pricing = Devex ->
            let mw = ref infinity in
            for k = 0 to st.ntotal - 1 do
              if st.devex_w.(k) < !mw then mw := st.devex_w.(k)
            done;
            f ~iteration:st.iterations ~min_devex_weight:!mw
          | Some _ | None -> ())
      end
    done;
    match !result with
    | Some r -> r
    | None ->
      let _, infeas_count = total_infeasibility st in
      Iteration_limit { feasible = infeas_count = 0; obj = objective_value st }
  end
