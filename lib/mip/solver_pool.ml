type t = {
  jobs : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  have_work : Condition.t;
  mutable quit : bool;
  mutable workers : unit Domain.t array;
  size : int;
}

let worker_loop pool () =
  let rec next () =
    Mutex.lock pool.mutex;
    let rec wait () =
      match Queue.take_opt pool.jobs with
      | Some job ->
        Mutex.unlock pool.mutex;
        job ();
        next ()
      | None ->
        if pool.quit then Mutex.unlock pool.mutex
        else begin
          Condition.wait pool.have_work pool.mutex;
          wait ()
        end
    in
    wait ()
  in
  next ()

let create ?domains () =
  let size =
    match domains with
    | Some n ->
      if n < 1 then invalid_arg "Solver_pool.create: domains must be >= 1";
      n
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let pool =
    {
      jobs = Queue.create ();
      mutex = Mutex.create ();
      have_work = Condition.create ();
      quit = false;
      workers = [||];
      size;
    }
  in
  pool.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (worker_loop pool));
  pool

let size t = t.size

let map t f inputs =
  let n = Array.length inputs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let first_error = Atomic.make None in
    let done_mutex = Mutex.create () and all_done = Condition.create () in
    let run_one i =
      (try results.(i) <- Some (f inputs.(i))
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set first_error None (Some (e, bt))));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* last job out wakes the caller, which may already be waiting *)
        Mutex.lock done_mutex;
        Condition.broadcast all_done;
        Mutex.unlock done_mutex
      end
    in
    if Array.length t.workers = 0 then
      for i = 0 to n - 1 do
        run_one i
      done
    else begin
      Mutex.lock t.mutex;
      for i = 1 to n - 1 do
        Queue.add (fun () -> run_one i) t.jobs
      done;
      Condition.broadcast t.have_work;
      Mutex.unlock t.mutex;
      run_one 0;
      (* help drain the shared queue instead of blocking immediately *)
      let rec help () =
        Mutex.lock t.mutex;
        match Queue.take_opt t.jobs with
        | Some job ->
          Mutex.unlock t.mutex;
          job ();
          help ()
        | None -> Mutex.unlock t.mutex
      in
      help ();
      Mutex.lock done_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait all_done done_mutex
      done;
      Mutex.unlock done_mutex
    end;
    (match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (fun r -> match r with Some v -> v | None -> assert false)
      results
  end

let shutdown t =
  Mutex.lock t.mutex;
  let was_quit = t.quit in
  t.quit <- true;
  Condition.broadcast t.have_work;
  Mutex.unlock t.mutex;
  if not was_quit then Array.iter Domain.join t.workers

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
