(** Cross-round incremental re-solve kernel.

    RAS's allocation is {e continuously} optimized: each solver round sees
    nearly the same region as the last one, perturbed by a handful of
    failures, recoveries and capacity deltas.  This module turns that
    continuity into solver work saved.  Given the previous round's compiled
    {!Model.std} and the new round's, it computes a {e name-keyed} diff
    (variables and rows are matched by their stable names, so index churn
    from entities appearing or disappearing produces minimal diffs), and
    from the diff derives:

    - a patched model ({!apply}) bit-identical to the fresh compile — the
      correctness contract the property tests pin;
    - a mapped warm basis ({!map_basis}): surviving basic columns stay
      basic in their surviving rows, new columns enter nonbasic at a bound,
      and rows whose basic column departed are repaired with their own
      slack — always a structurally valid basis, so the worst case is a
      slower (never wrong) restart;
    - a patched incumbent ({!map_solution}) to seed branch-and-bound.

    Callers re-optimize the mapped basis with the existing simplex phases:
    rhs/bound deltas leave it dual feasible (the dual-simplex phase
    finishes in a few pivots), objective deltas leave it primal feasible
    (the primal phase finishes from a near-optimal vertex). *)

type stats = {
  vars_added : int;
  vars_removed : int;
  rows_added : int;
  rows_removed : int;
  bounds_changed : int;  (** surviving variables whose lb/ub moved *)
  obj_changed : int;  (** surviving variables whose objective coefficient moved *)
  rhs_changed : int;  (** surviving rows whose rhs or sense moved *)
  coefs_changed : int;  (** surviving rows whose coefficient content moved *)
  structure_identical : bool;
      (** no additions/removals and both index orders coincide: the models
          share one variable/row index space (values may still differ) *)
}

val total_changes : stats -> int
(** Sum of all change counters — 0 means the two models are identical. *)

val pp_stats : Format.formatter -> stats -> unit

type t
(** A diff from a [prev] model to a [next] model, keyed by variable and row
    names.  Entities with equal names are matched (duplicate names within
    one model are disambiguated by occurrence order); everything else is an
    addition or removal. *)

val diff : prev:Model.std -> next:Model.std -> t

val stats : t -> stats

val apply : prev:Model.std -> t -> Model.std
(** Reconstructs [next] from [prev] plus the diff.  The result is
    bit-identical to the [next] passed to {!diff} — same arrays in the same
    order — which the property tests verify over randomized churn
    sequences. *)

val map_basis :
  t -> prev_basis:Simplex.warm_basis -> (Simplex.warm_basis * int) option
(** Maps a warm basis of [prev] onto [next]'s column space.  Returns the
    mapped basis and the number of rows whose basic column was carried over
    (the basis-reuse count; the remainder were repaired with their row's
    slack).  [None] when the snapshot does not structurally match [prev]
    (wrong dimensions) — the caller falls back to a cold start.

    The basis factorization is carried only when the diff leaves the basis
    matrix untouched ([structure_identical] and no coefficient changes);
    otherwise it is dropped and the restart refactorizes.  Devex weights
    are never carried across rounds. *)

val map_solution : t -> float array -> float array
(** Patches a [prev] solution vector into [next]'s variable space: surviving
    variables keep their value clamped into the new bounds, new variables
    start at the bound closest to zero.  The result is a {e seed} — it may
    violate constraints after churn and must go through repair /
    {!Model.check_solution} before being trusted. *)
