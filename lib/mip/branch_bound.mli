(** Branch-and-bound mixed-integer solver over the {!Simplex} LP relaxation.

    Nodes carry their own bound arrays; best-bound (best-first) node
    selection; branching on the most fractional integer variable; a
    nearest-integer rounding heuristic probes for incumbents.  The solver
    honours wall-clock and node limits and reports the remaining optimality
    gap — RAS deliberately runs its solver with a timeout and reasons about
    the gap (paper §4.1.2, Fig. 9), so the gap is a first-class output.

    Every non-root node's LP is warm-started from its parent's optimal
    basis (see {!Simplex.warm_basis}): because a bound tightening leaves the
    parent-optimal basis dual feasible, the child typically re-optimizes in
    a handful of dual-simplex pivots instead of a full cold two-phase solve.
    Nodes store basis snapshots without the factorization; a one-entry cache
    keeps the most recent parent's factors so plunged children restart for
    free, while heap revisits re-factorize. *)

type status =
  | Optimal  (** proven optimal within tolerances *)
  | Feasible  (** stopped at a limit with an incumbent *)
  | Infeasible
  | Unbounded
  | Unknown  (** stopped at a limit with no incumbent *)

type options = {
  time_limit : float;  (** seconds of wall clock; [infinity] disables *)
  node_limit : int;
  gap_abs : float;  (** stop when [incumbent - best_bound <= gap_abs] *)
  gap_rel : float;  (** or [<= gap_rel * max 1 |incumbent|] *)
  stall_node_limit : int;
      (** stop once the incumbent has not improved for this many
          consecutive nodes (0 disables).  The soft-penalty allocation
          MIPs carry a structural integrality gap the bound cannot close,
          so gap-based stopping never fires; stalling is the stopping rule
          the continuous loop uses — a near-optimal cross-round seed makes
          the re-solve terminate after a handful of nodes *)
  int_tol : float;  (** integrality tolerance on LP values *)
  heuristic_period : int;  (** run the rounding heuristic every N nodes *)
  initial : float array option;
      (** a known (possibly stale) solution to seed the incumbent.  The
          seed is checked with {!Model.check_solution}; an invalid one —
          e.g. last round's incumbent after churn — gets one bounded
          repair attempt (clamp into root bounds, round integers) and is
          otherwise rejected.  The outcome's [seed] field reports which
          happened; a stale seed never raises. *)
  root_basis : Simplex.warm_basis option;
      (** warm basis for the {e root} node's LP — typically the optimal
          basis of a relaxation the caller already solved (the phase-1
          root LP, or last round's root via {!Incremental.map_basis}).
          Advisory: the simplex validates it and falls back to a cold
          root solve on any mismatch.  Child nodes are unaffected (they
          warm-start from their parent as controlled by [warm_start]). *)
  warm_start : bool;
      (** restart child LPs from the parent's optimal basis; disable to get
          the cold-start behaviour (equivalence testing, benchmarking) *)
  lp_pricing : Simplex.pricing;
      (** entering-variable rule for every node LP, forwarded to
          {!Simplex.solve}'s [pricing] *)
  lp_devex_carry : bool;
      (** when pricing with {!Simplex.Devex}, warm-started children adopt
          the parent's reference-framework weights instead of resetting
          them (forwarded to {!Simplex.solve}'s [devex_carry]).  Off by
          default: benchmarking showed identical pivot counts either way
          on the Table-1 MIPs (dual restarts do the re-optimization work)
          with carry paying extra weight-copying per node *)
  lp_backend : Basis.kind;
      (** basis representation for every node LP ({!Basis.Lu} by default;
          {!Basis.Dense} is the differential-testing oracle) *)
  lp_kernels : Basis.kernels option;
      (** triangular-solve kernels for every node LP, forwarded to
          {!Simplex.solve}'s [kernels]; [None] (the default) defers to
          {!Basis.kernels_of_env} *)
  dual_restart : bool;
      (** re-optimize warm-started children with the dual simplex phase;
          disable to get PR-1's primal-restart behaviour (benchmarking,
          differential testing) *)
}

val default_options : options
(** [time_limit = infinity], [node_limit = 100_000], [gap_abs = 1e-6],
    [gap_rel = 1e-9], [int_tol = 1e-6], [heuristic_period = 20], no initial
    solution, [warm_start = true], [lp_pricing = Simplex.Devex],
    [lp_devex_carry = false], [lp_backend = Basis.Lu],
    [lp_kernels = None], [dual_restart = true]. *)

type seed_status =
  | Seed_none  (** no initial solution was supplied *)
  | Seed_accepted  (** the seed passed {!Model.check_solution} as given *)
  | Seed_repaired
      (** the seed was invalid but the clamp-and-round repair made it
          feasible; the repaired point became the starting incumbent *)
  | Seed_rejected
      (** the seed stayed invalid after repair (or had the wrong length,
          or the model was proven infeasible in presolve); the search
          started unseeded *)

type outcome = {
  status : status;
  solution : float array option;  (** incumbent, one entry per variable *)
  objective : float;  (** incumbent objective; [infinity] when none *)
  best_bound : float;  (** proven lower bound on the optimum *)
  gap : float;  (** [objective - best_bound]; [infinity] when no incumbent *)
  nodes : int;
  lp_iterations : int;
  warm_started_nodes : int;
      (** nodes whose LP restarted from a parent basis rather than cold *)
  dual_restarted_nodes : int;
      (** warm-started nodes whose LP re-optimized via dual-simplex pivots *)
  dual_pivots : int;  (** total dual-simplex pivots across all node LPs *)
  bound_flips : int;
      (** total nonbasic bound flips performed by the long-step dual ratio
          test across all node LPs (see {!Simplex.kernel_stats}) *)
  bland_pivots : int;
      (** total primal pivots taken under the Bland anti-cycling fallback
          across all node LPs (nonzero means some node hit a degenerate
          stall) *)
  seed : seed_status;  (** what became of [options.initial] *)
  elapsed : float;  (** seconds *)
}

val solve : ?options:options -> Model.std -> outcome
(** Solves [min obj.x] over the compiled model, honouring integrality
    markers.  A model with no integer variables reduces to a single LP
    solve. *)
