type 'a entry = { time : float; seq : int; payload : 'a }

(* Slots at or above [len] hold [None] so that a popped entry's payload never
   stays reachable through the backing array — the same space-leak class fixed
   in Branch_bound's Heap.pop. *)
type 'a t = { mutable data : 'a entry option array; mutable len : int; mutable next_seq : int }

let create () = { data = [||]; len = 0; next_seq = 0 }

let is_empty t = t.len = 0

let length t = t.len

let get t i = match t.data.(i) with Some e -> e | None -> assert false

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.len = Array.length t.data then begin
    let cap = max 16 (2 * t.len) in
    let bigger = Array.make cap None in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- Some entry;
  let i = ref t.len in
  t.len <- t.len + 1;
  while !i > 0 && before (get t !i) (get t ((!i - 1) / 2)) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = get t 0 in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      let i = ref 0 and continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && before (get t l) (get t !smallest) then smallest := l;
        if r < t.len && before (get t r) (get t !smallest) then smallest := r;
        if !smallest <> !i then begin
          swap t !i !smallest;
          i := !smallest
        end
        else continue := false
      done
    end;
    (* clear the vacated slot: the popped (or moved) entry must not outlive
       the caller's use of its payload *)
    t.data.(t.len) <- None;
    Some (top.time, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some (get t 0).time
