module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware
module Engine = Ras_sim.Engine
module Unavail = Ras_failures.Unavail

type apply_stats = { moved_in_use : int; moved_unused : int; skipped_unavailable : int }

type t = {
  broker : Broker.t;
  engine : Engine.t option;
  reactive : Reactive.t option;
  mutable reservations : Reservation.t list;
  loans : (int, Broker.owner) Hashtbl.t;  (* lent server -> home owner *)
  mutable preempt : int -> unit;
  mutable replacements_done : int;
  mutable replacements_failed : int;
}

let set_reservations t reservations = t.reservations <- reservations

let on_preempt t f = t.preempt <- f

let home_of t id = Hashtbl.find_opt t.loans id

let reactive t = t.reactive

let reservation_of t id =
  List.find_opt (fun r -> r.Reservation.id = id && not (Reservation.is_buffer r)) t.reservations

(* Move one server, preempting its containers when in use and clearing any
   loan bookkeeping. *)
let do_move t id owner =
  let r = Broker.record t.broker id in
  if r.Broker.current <> owner then begin
    if r.Broker.in_use then t.preempt id;
    Hashtbl.remove t.loans id;
    Broker.move t.broker id owner
  end

(* The original replacement search, kept verbatim as the differential oracle
   for the columnar and reactive paths: one full record-building broker scan
   per failure event. *)
let find_replacement_reference t res ~failed_hw =
  let candidate_score (r : Broker.record) ~lent =
    (* a lent server may be reclaimed even while running opportunistic
       containers — that is the elastic contract (§3.4) *)
    if (not (Broker.healthy r)) || (r.Broker.in_use && not lent) then None
    else begin
      let hw = r.Broker.server.Region.hw in
      if res.Reservation.rru_of hw <= 0.0 then None
      else begin
        let same_subtype = hw.Ras_topology.Hardware.index = failed_hw in
        Some
          ( (if same_subtype then 0 else 1),
            (if lent then 1 else 0),
            (if r.Broker.in_use then 1 else 0),
            r.Broker.server.Region.id )
      end
    end
  in
  let best = ref None in
  Broker.iter t.broker ~f:(fun r ->
      let id = r.Broker.server.Region.id in
      let scored =
        match r.Broker.current with
        | Broker.Shared_buffer -> candidate_score r ~lent:false
        | Broker.Elastic _ when Hashtbl.find_opt t.loans id = Some Broker.Shared_buffer ->
          candidate_score r ~lent:true
        | Broker.Free | Broker.Reservation _ | Broker.Elastic _ -> None
      in
      match scored with
      | Some score -> (
        match !best with
        | Some (s, _) when s <= score -> ()
        | _ -> best := Some (score, id))
      | None -> ());
  Option.map snd !best

let code_buffer = Broker.owner_code Broker.Shared_buffer

(* Best revocable loan whose home is the shared buffer: O(outstanding
   loans), which both the columnar and the reactive paths share as their
   elastic fallback.  Scored with the legacy tuple so preference classes
   match the reference exactly. *)
let best_lent_candidate t res ~failed_hw =
  let region = Broker.region t.broker in
  let best = ref None in
  Hashtbl.iter
    (fun id home ->
      if home = Broker.Shared_buffer && Broker.healthy_at t.broker id then begin
        match Broker.current_owner t.broker id with
        | Broker.Elastic _ ->
          let hw = region.Region.servers.(id).Region.hw in
          if res.Reservation.rru_of hw > 0.0 then begin
            let score =
              ( (if hw.Hw.index = failed_hw then 0 else 1),
                1,
                (if Broker.in_use_at t.broker id then 1 else 0),
                id )
            in
            match !best with
            | Some (s, _) when s <= score -> ()
            | _ -> best := Some (score, id)
          end
        | Broker.Free | Broker.Reservation _ | Broker.Shared_buffer -> ()
      end)
    t.loans;
  !best

(* Columnar replacement search: same candidates and scoring as the
   reference, reading the broker columns instead of materializing records.
   Shared-buffer servers come from the column scan; lent servers from the
   loan table. *)
let find_replacement_scan t res ~failed_hw =
  let region = Broker.region t.broker in
  let n = Broker.num_servers t.broker in
  let rru_by_hw = Array.map res.Reservation.rru_of Hw.catalog in
  let best = ref (best_lent_candidate t res ~failed_hw) in
  for id = 0 to n - 1 do
    if
      Broker.current_code t.broker id = code_buffer
      && Broker.healthy_at t.broker id
      && not (Broker.in_use_at t.broker id)
    then begin
      let hwi = region.Region.servers.(id).Region.hw.Hw.index in
      if rru_by_hw.(hwi) > 0.0 then begin
        let score = ((if hwi = failed_hw then 0 else 1), 0, 0, id) in
        match !best with
        | Some (s, _) when s <= score -> ()
        | _ -> best := Some (score, id)
      end
    end
  done;
  Option.map snd !best

(* Tier-1 replacement: the reactive index answers the shared-buffer side in
   O(classes); the elastic fallback stays O(loans).  The two candidates are
   compared with the legacy tuple, so the preference class (same subtype
   first, buffer before loans, idle before in-use) is identical to the
   reference — only the tie-break inside a class differs (dual price
   instead of lowest id). *)
let find_replacement_reactive t ri res ~failed_hw =
  let region = Broker.region t.broker in
  let from_buffer =
    match Reactive.find_replacement ri res ~failed_hw with
    | None -> None
    | Some id ->
      let hwi = region.Region.servers.(id).Region.hw.Hw.index in
      Some (((if hwi = failed_hw then 0 else 1), 0, 0, id), id)
  in
  match (from_buffer, best_lent_candidate t res ~failed_hw) with
  | Some (s1, id1), Some (s2, id2) -> Some (if s1 <= s2 then id1 else id2)
  | Some (_, id), None | None, Some (_, id) -> Some id
  | None, None -> None

let find_replacement t res ~failed_hw =
  match t.reactive with
  | Some ri -> find_replacement_reactive t ri res ~failed_hw
  | None -> find_replacement_scan t res ~failed_hw

let replace_failed t id =
  let r = Broker.record t.broker id in
  match r.Broker.current with
  | Broker.Reservation rid -> (
    match reservation_of t rid with
    | None -> ()
    | Some res -> (
      let failed_hw = r.Broker.server.Region.hw.Ras_topology.Hardware.index in
      match find_replacement t res ~failed_hw with
      | Some replacement ->
        do_move t replacement (Broker.Reservation rid);
        Broker.set_target t.broker replacement (Broker.Reservation rid);
        (* swap semantics: the dead server leaves the reservation for the
           shared buffer, so the reservation's capacity accounting sees one
           replacement — not the replacement plus a dead member that would
           double-count the moment the server heals *)
        do_move t id Broker.Shared_buffer;
        Broker.set_target t.broker id Broker.Shared_buffer;
        t.replacements_done <- t.replacements_done + 1
      | None -> t.replacements_failed <- t.replacements_failed + 1))
  | Broker.Free | Broker.Shared_buffer | Broker.Elastic _ -> ()

let create ?engine ?reactive broker =
  let t =
    {
      broker;
      engine;
      reactive;
      reservations = [];
      loans = Hashtbl.create 256;
      preempt = (fun _ -> ());
      replacements_done = 0;
      replacements_failed = 0;
    }
  in
  (match reactive with
  | Some ri when Reactive.broker ri != broker ->
    invalid_arg "Online_mover.create: reactive index is bound to a different broker"
  | Some _ | None -> ());
  let on_event = function
    (* random failures only: planned maintenance and correlated failures are
       absorbed by capacity already inside the reservations (§3.3.1) *)
    | Broker.Went_down (id, (Unavail.Unplanned_sw | Unavail.Unplanned_hw as kind)) -> (
      ignore kind;
      (* replacement within one minute (§3.3.1) *)
      match t.engine with
      | Some engine ->
        Engine.schedule engine
          ~at:(Engine.now engine +. (1.0 /. 60.0))
          (fun _ ->
            let r = Broker.record t.broker id in
            if not (Broker.healthy r) then replace_failed t id)
      | None -> replace_failed t id)
    | Broker.Went_down _ | Broker.Came_up _ -> ()
  in
  Broker.subscribe broker on_event;
  t

let apply_plan t (plan : Concretize.plan) =
  List.iter (fun (id, owner) -> Broker.set_target t.broker id owner) plan.Concretize.targets;
  let stats = ref { moved_in_use = 0; moved_unused = 0; skipped_unavailable = 0 } in
  List.iter
    (fun (m : Concretize.move) ->
      let r = Broker.record t.broker m.Concretize.server in
      if not (Broker.available r) then
        stats := { !stats with skipped_unavailable = !stats.skipped_unavailable + 1 }
      else begin
        let in_use = r.Broker.in_use in
        do_move t m.Concretize.server m.Concretize.to_;
        if in_use then stats := { !stats with moved_in_use = !stats.moved_in_use + 1 }
        else stats := { !stats with moved_unused = !stats.moved_unused + 1 }
      end)
    plan.Concretize.moves;
  !stats

let lend_idle t ~elastic_id ~max_servers =
  if max_servers <= 0 then 0
  else begin
    match t.reactive with
    | Some ri ->
      (* tier-1 donor pick: drain the cheapest buffer buckets, O(classes +
         servers lent) *)
      let ids = Reactive.take_idle_buffer ri ~max_servers in
      List.iter
        (fun id ->
          Hashtbl.replace t.loans id Broker.Shared_buffer;
          Broker.move t.broker id (Broker.Elastic elastic_id))
        ids;
      List.length ids
    | None ->
      (* columnar scan in id order (the reference behaviour), stopping at
         [max_servers] instead of walking the whole region *)
      let n = Broker.num_servers t.broker in
      let lent = ref 0 and id = ref 0 in
      while !lent < max_servers && !id < n do
        if
          Broker.current_code t.broker !id = code_buffer
          && Broker.healthy_at t.broker !id
          && not (Broker.in_use_at t.broker !id)
        then begin
          Hashtbl.replace t.loans !id Broker.Shared_buffer;
          Broker.move t.broker !id (Broker.Elastic elastic_id);
          incr lent
        end;
        incr id
      done;
      !lent
  end

let revoke t ~elastic_id =
  (* O(outstanding loans): the loan table is the authoritative set of lent
     servers, so revocation never needs a broker scan *)
  let to_revoke =
    Hashtbl.fold
      (fun id _home acc ->
        if Broker.current_owner t.broker id = Broker.Elastic elastic_id then id :: acc
        else acc)
      t.loans []
    |> List.sort compare
  in
  let revoked = ref 0 in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.loans id with
      | Some home ->
        let r = Broker.record t.broker id in
        if r.Broker.in_use then t.preempt id;
        Hashtbl.remove t.loans id;
        Broker.move t.broker id home;
        incr revoked
      | None -> ())
    to_revoke;
  !revoked

let loans_outstanding t = Hashtbl.length t.loans

let replacements_done t = t.replacements_done

let replacements_failed t = t.replacements_failed
