(** Tier-1 reactive repair (ROADMAP "two-tiered online optimization";
    paper §3.3.1's "replacement within one minute" promise).

    Between tier-2 rounds of the Async Solver, events — server failures,
    urgent capacity grants, elastic revokes — must be answered immediately,
    and at region scale (10⁶ servers) answering them by scanning the broker
    is itself a bug: one full scan per event silently undoes the columnar
    refactor.  This module keeps an {e incrementally maintained} index of
    available capacity, bucketed by (MSB, hardware subtype) — the same
    scope as the phase-1 symmetry classes — and repairs the current
    assignment per event in O(classes), not O(servers):

    - the index subscribes to {!Ras_broker.Broker.subscribe_changes}, so
      every ownership / health / in-use mutation updates the affected
      bucket in O(1), no matter which code path performed it;
    - candidate buckets are scored with the dual prices the last tier-2
      solve already produced ({!Solver_state.price_table}): the repair
      takes equivalent servers from the scope tier-2 valued least, which is
      what keeps the next round's objective drift small;
    - picking a server out of a bucket is O(1).

    The legacy full-scan implementations ({!Emergency.grant_reference},
    {!Online_mover.find_replacement_reference}) are retained as
    differential oracles, the same pattern as {!Symmetry.build_reference}. *)

type counters = {
  events : int;  (** tier-1 operations served (replacements + grants) *)
  visited_classes : int;  (** candidate buckets examined across events *)
  visited_servers : int;  (** candidate servers examined / taken *)
  index_updates : int;  (** broker change notifications absorbed *)
}

type grant = {
  requested_rru : float;
  granted_rru : float;
  servers : int list;
  took_from_buffer : int;
  visited : int;
      (** candidate servers examined while granting — the per-event cost
          the O(n)-scan regression tests pin *)
}

type t

val create : Ras_broker.Broker.t -> t
(** Builds the availability index in one pass over the broker columns and
    subscribes to its change feed; from then on the index tracks every
    mutation incrementally.  One instance per broker. *)

val broker : t -> Ras_broker.Broker.t

val set_prices : t -> Solver_state.price_table -> unit
(** Install the dual prices of the latest tier-2 solve
    ({!Async_solver.stats.price_table} or {!Solver_state.prices}).  Without
    prices every bucket scores 0 and repair falls back to deterministic
    (same-subtype first, lowest bucket) choice. *)

val prices : t -> Solver_state.price_table option

val num_buckets : t -> int
(** num_msbs x hardware-catalog size: the per-event visit bound. *)

val available_in_bucket : t -> source:[ `Free | `Buffer ] -> msb:int -> hw:int -> int
(** Current pool size of one bucket (test/oracle hook). *)

val find_replacement : t -> Reservation.t -> failed_hw:int -> int option
(** A healthy, idle shared-buffer server the reservation can use: same
    hardware subtype preferred, then cheapest dual price.  O(classes);
    does not move the server.  [None] when no buffer bucket has supply —
    callers may still fall back to revoking elastic loans (an O(loans)
    concern the Online Mover owns). *)

val take_idle_buffer : t -> max_servers:int -> int list
(** Up to [max_servers] healthy idle shared-buffer servers, cheapest
    buckets first (the elastic-lending donor pick).  Does not move them. *)

val grant : t -> reservation:Reservation.t -> rru:float -> allow_buffer:bool -> grant
(** The tier-1 urgent grant: binds servers (current and target) directly to
    the reservation until [rru] is covered, free pool first, then — only
    with [allow_buffer] — the shared buffer, draining cheapest-priced
    buckets first.  O(classes + servers granted). *)

val counters : t -> counters
(** Cumulative counters since creation or the last {!reset_counters}. *)

val reset_counters : t -> unit

val rebuild : t -> unit
(** Drop and rebuild the index from the broker columns (O(servers)).
    Happens automatically when the broker adopts an extended region; the
    oracle tests also use it to prove the incremental index never drifts
    from a fresh build. *)
