module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware
module Broker = Ras_broker.Broker
module Branch_bound = Ras_mip.Branch_bound

let reservation_report (snapshot : Snapshot.t) res =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let total = Snapshot.current_rru snapshot res in
  add "%s (reservation %d)\n" res.Reservation.name res.Reservation.id;
  add "  capacity: %.1f RRU bound / %.1f requested%s\n" total res.Reservation.capacity_rru
    (if total >= res.Reservation.capacity_rru then "" else "  ** SHORT **");
  (* hardware mix *)
  let hw_counts = Array.make Hw.count 0 in
  for id = 0 to Snapshot.num_servers snapshot - 1 do
    if Snapshot.usable_at snapshot id then begin
      let hw = (Snapshot.server snapshot id).Region.hw in
      if Snapshot.owned_by_code res (Snapshot.current_code snapshot id) hw then
        hw_counts.(hw.Hw.index) <- hw_counts.(hw.Hw.index) + 1
    end
  done;
  add "  hardware:";
  Array.iteri
    (fun i c -> if c > 0 then add " %s x%d" Hw.catalog.(i).Hw.code c)
    hw_counts;
  add "\n";
  (* MSB spread *)
  let per_msb = Snapshot.rru_by_msb snapshot res in
  let max_share = Snapshot.max_msb_share snapshot res in
  let used_msbs = Array.fold_left (fun acc v -> if v > 0.0 then acc + 1 else acc) 0 per_msb in
  if Float.is_nan max_share then add "  spread: no capacity bound yet\n"
  else begin
    add "  spread: %d/%d MSBs, max MSB share %.1f%% (limit alpha_F = %.1f%%)%s\n" used_msbs
      (Array.length per_msb) (100.0 *. max_share)
      (100.0 *. res.Reservation.msb_spread_limit)
      (if max_share > res.Reservation.msb_spread_limit +. 1e-9 then "  ** OVER **" else "");
    if res.Reservation.embedded_buffer then begin
      let max_msb = Array.fold_left Float.max 0.0 per_msb in
      let survives = total -. max_msb >= res.Reservation.capacity_rru -. 1e-9 in
      add "  embedded buffer: %s (capacity after worst MSB loss: %.1f / %.1f needed)\n"
        (if survives then "covers one MSB failure" else "** CANNOT cover an MSB failure **")
        (total -. max_msb) res.Reservation.capacity_rru
    end
  end;
  (* storage quorum spread *)
  (match res.Reservation.hard_msb_cap with
  | Some cap when total > 0.0 ->
    let per_msb = Snapshot.rru_by_msb snapshot res in
    let worst = Array.fold_left Float.max 0.0 per_msb /. total in
    add "  quorum spread: max MSB holds %.1f%% of total (hard cap %.1f%%)%s\n" (100.0 *. worst)
      (100.0 *. cap)
      (if worst > cap +. 1e-9 then "  ** QUORUM AT RISK **" else "")
  | Some _ | None -> ());
  (* datacenter affinity *)
  if res.Reservation.dc_affinity <> [] then begin
    let per_dc = Snapshot.rru_by_dc snapshot res in
    List.iter
      (fun (dc, target) ->
        let share = if total > 0.0 then per_dc.(dc) /. res.Reservation.capacity_rru else 0.0 in
        add "  affinity: DC%d holds %.1f%% of requested capacity (target %.1f%% +/- %.1f%%)\n" dc
          (100.0 *. share) (100.0 *. target)
          (100.0 *. res.Reservation.affinity_tolerance))
      res.Reservation.dc_affinity
  end;
  Buffer.contents buf

let shortfall_reason (snapshot : Snapshot.t) res ~shortfall =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "reservation %d (%s) is short %.1f RRU: " res.Reservation.id res.Reservation.name shortfall;
  let acceptable_total = ref 0.0 and acceptable_free = ref 0.0 and acceptable_types = ref 0 in
  Array.iter
    (fun hw ->
      if res.Reservation.rru_of hw > 0.0 then incr acceptable_types)
    Hw.catalog;
  let free_code = Broker.owner_code Broker.Free in
  for id = 0 to Snapshot.num_servers snapshot - 1 do
    let value = res.Reservation.rru_of (Snapshot.server snapshot id).Region.hw in
    if value > 0.0 && Snapshot.usable_at snapshot id then begin
      acceptable_total := !acceptable_total +. value;
      if Snapshot.current_code snapshot id = free_code then
        acceptable_free := !acceptable_free +. value
    end
  done;
  if !acceptable_types = 0 then add "no hardware subtype in the catalog is acceptable."
  else if !acceptable_total < res.Reservation.capacity_rru then
    add
      "only %.1f RRU of acceptable hardware exists region-wide (%d subtypes acceptable); the \
       request cannot be met without new hardware."
      !acceptable_total !acceptable_types
  else if !acceptable_free <= 0.0 then
    add
      "acceptable hardware exists (%.1f RRU across %d subtypes) but none is free; capacity is \
       held by other reservations or buffers."
      !acceptable_total !acceptable_types
  else
    add
      "%.1f RRU of acceptable hardware is free, but spread/buffer constraints prevent using it \
       without violating placement goals."
      !acceptable_free;
  Buffer.contents buf

let timing_line label (t : Phases.timing) =
  Printf.sprintf "  %s: total %.2fs = ras-build %.2fs + solver-build %.2fs + initial %.2fs + MIP %.2fs"
    label (Phases.total_s t) t.Phases.ras_build_s t.Phases.solver_build_s t.Phases.initial_state_s
    t.Phases.mip_s

let solve_report (stats : Async_solver.stats) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "solve finished in %.2fs\n" stats.Async_solver.duration_s;
  let p1 = stats.Async_solver.phase1 in
  add "%s\n" (timing_line "phase 1" p1.Phases.timing);
  add "    %d grouped vars (%d raw), %d rows, MIP nodes %d\n" p1.Phases.grouped_vars
    p1.Phases.raw_vars p1.Phases.rows p1.Phases.outcome.Branch_bound.nodes;
  add
    "  solver kernels: %d B&B nodes (%d warm-started, %d dual-restarted), %d LP pivots (%d \
     dual, %d bland)\n"
    stats.Async_solver.solver_nodes stats.Async_solver.solver_warm_starts
    stats.Async_solver.solver_dual_restarts stats.Async_solver.solver_lp_iterations
    stats.Async_solver.solver_dual_pivots stats.Async_solver.solver_bland_pivots;
  (match stats.Async_solver.incremental with
  | Some r ->
    add "  incremental: %s\n" (Format.asprintf "%a" Solver_state.pp_round r)
  | None -> ());
  (match stats.Async_solver.decompose with
  | Some d ->
    add
      "  decomposition: %d partitions, %d coupled rows split, %d merge repairs (%d rows \
       unresolved), %.2fs\n"
      (Array.length d.Ras_mip.Decompose.parts)
      d.Ras_mip.Decompose.coupled_rows d.Ras_mip.Decompose.merge_repairs
      d.Ras_mip.Decompose.unresolved_rows d.Ras_mip.Decompose.wall_s;
    Array.iter
      (fun p ->
        add "    part %d: %d vars, %d rows, obj %.2f, %d nodes, %.2fs\n"
          p.Ras_mip.Decompose.part p.Ras_mip.Decompose.vars p.Ras_mip.Decompose.rows
          p.Ras_mip.Decompose.objective p.Ras_mip.Decompose.nodes
          p.Ras_mip.Decompose.wall_s)
      d.Ras_mip.Decompose.parts
  | None -> ());
  (match stats.Async_solver.phase2 with
  | Some p2 ->
    add "%s\n" (timing_line "phase 2" p2.Phases.timing);
    add "    %d grouped vars (%d raw), %d rows\n" p2.Phases.grouped_vars p2.Phases.raw_vars
      p2.Phases.rows
  | None -> add "  phase 2: skipped (no rack goal violations)\n");
  add "  moves: %d in-use, %d unused\n" stats.Async_solver.moves_in_use
    stats.Async_solver.moves_unused;
  add "  optimality gap: %.1f preemption-units; all fixable constraints proven fixed: %b\n"
    stats.Async_solver.gap_preemptions stats.Async_solver.proven_constraints_fixed;
  if stats.Async_solver.shortfalls = [] then add "  all capacity constraints satisfied\n"
  else
    List.iter
      (fun (rid, v) -> add "  UNMET: reservation %d short %.1f RRU\n" rid v)
      stats.Async_solver.shortfalls;
  Buffer.contents buf

let shadow_prices ?(top = 10) (phase : Phases.result) =
  let duals = phase.Phases.lp_duals in
  let std = phase.Phases.compiled in
  if Array.length duals <> std.Ras_mip.Model.nrows then []
  else begin
    let priced = ref [] in
    Array.iteri
      (fun i d ->
        if Float.abs d > 1e-6 then
          priced := (std.Ras_mip.Model.row_names.(i), d) :: !priced)
      duals;
    let sorted =
      List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a)) !priced
    in
    List.filteri (fun i _ -> i < top) sorted
  end
