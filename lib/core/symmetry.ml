module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware
module Broker = Ras_broker.Broker

type cls = {
  index : int;
  msb : int;
  rack : int option;
  hw : int;
  in_use : bool;
  attr : int;
  members : int array;
}

type t = { classes : cls array; region : Region.t; snapshot : Snapshot.t }

type key = { kmsb : int; krack : int; khw : int; kuse : bool; kattr : int }

let build ?(rack_level = false) ?(include_server = fun _ -> true) (snapshot : Snapshot.t) =
  let groups : (key, int list ref) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (v : Snapshot.server_view) ->
      if v.Snapshot.usable && include_server v then begin
        let loc = v.Snapshot.server.Region.loc in
        let key =
          {
            kmsb = loc.Region.msb;
            krack = (if rack_level then loc.Region.rack else -1);
            khw = v.Snapshot.server.Region.hw.Hw.index;
            kuse = v.Snapshot.in_use;
            kattr = v.Snapshot.attr;
          }
        in
        match Hashtbl.find_opt groups key with
        | Some members -> members := v.Snapshot.server.Region.id :: !members
        | None -> Hashtbl.replace groups key (ref [ v.Snapshot.server.Region.id ])
      end)
    snapshot.Snapshot.servers;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) groups [] in
  let keys = List.sort compare keys in
  let classes =
    List.mapi
      (fun index key ->
        let members = Array.of_list (List.sort compare !(Hashtbl.find groups key)) in
        {
          index;
          msb = key.kmsb;
          rack = (if key.krack >= 0 then Some key.krack else None);
          hw = key.khw;
          in_use = key.kuse;
          attr = key.kattr;
          members;
        })
      keys
  in
  { classes = Array.of_list classes; region = snapshot.Snapshot.region; snapshot }

(* Stable identity of a class: every field of the grouping key, none of the
   dense index.  Used to name model variables and rows, so that the same
   logical class keeps the same name across snapshots even when classes
   appear or disappear and the dense indices shift — the property the
   cross-round incremental diff relies on. *)
let class_name c =
  let rack = match c.rack with Some r -> Printf.sprintf "k%d" r | None -> "" in
  Printf.sprintf "m%d%sh%du%da%d" c.msb rack c.hw (if c.in_use then 1 else 0) c.attr

let size c = Array.length c.members

let hw_of c = Hw.catalog.(c.hw)

let current_count t c owner =
  Array.fold_left
    (fun acc id ->
      let v = t.snapshot.Snapshot.servers.(id) in
      if v.Snapshot.current = owner then acc + 1 else acc)
    0 c.members

let num_classes t = Array.length t.classes

let total_members t = Array.fold_left (fun acc c -> acc + size c) 0 t.classes

let acceptable_count reservations hw =
  List.fold_left
    (fun acc r -> if Reservation.accepts r Hw.catalog.(hw) then acc + 1 else acc)
    0 reservations

let raw_variable_count t ~reservations =
  Array.fold_left
    (fun acc c -> acc + (size c * acceptable_count reservations c.hw))
    0 t.classes

let grouped_variable_count t ~reservations =
  Array.fold_left (fun acc c -> acc + acceptable_count reservations c.hw) 0 t.classes
