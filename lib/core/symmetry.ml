module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware
module Broker = Ras_broker.Broker

type cls = {
  index : int;
  msb : int;
  rack : int option;
  hw : int;
  in_use : bool;
  attr : int;
  members : int array;
}

type t = {
  classes : cls array;
  region : Region.t;
  snapshot : Snapshot.t;
  owner_counts : (int, int) Hashtbl.t array;
}

type key = { kmsb : int; krack : int; khw : int; kuse : bool; kattr : int }

let cls_of_key index key members =
  {
    index;
    msb = key.kmsb;
    rack = (if key.krack >= 0 then Some key.krack else None);
    hw = key.khw;
    in_use = key.kuse;
    attr = key.kattr;
    members;
  }

(* Per-class histogram of current-owner codes over the members, so
   [current_count] is a table lookup instead of a scan of the member list
   (which at region scale is hit once per (class, reservation) pair during
   formulation). *)
let count_owners snapshot classes =
  Array.map
    (fun c ->
      let h = Hashtbl.create 8 in
      Array.iter
        (fun id ->
          let code = Snapshot.current_code snapshot id in
          match Hashtbl.find_opt h code with
          | Some n -> Hashtbl.replace h code (n + 1)
          | None -> Hashtbl.add h code 1)
        c.members;
      h)
    classes

let finish snapshot classes =
  {
    classes;
    region = snapshot.Snapshot.region;
    snapshot;
    owner_counts = count_owners snapshot classes;
  }

(* Streaming build: one pass over server ids reading the snapshot columns
   (no per-server view records on the default path), grouping into classes
   via a key table.  Member arrays are filled in a second pass over a
   per-server group-index scratch column, so ids come out ascending for free
   and the optional filter runs exactly once per server. *)
let build ?(rack_level = false) ?include_server (snapshot : Snapshot.t) =
  let n = Snapshot.num_servers snapshot in
  let group_of_key : (key, int) Hashtbl.t = Hashtbl.create 256 in
  let keys : key list ref = ref [] in
  let num_groups = ref 0 in
  (* group index per server, -1 = excluded *)
  let group = Array.make n (-1) in
  let keep =
    match include_server with
    | None -> fun _ -> true
    | Some f -> fun id -> f (Snapshot.view snapshot id)
  in
  for id = 0 to n - 1 do
    if Snapshot.usable_at snapshot id && keep id then begin
      let s = Snapshot.server snapshot id in
      let loc = s.Region.loc in
      let key =
        {
          kmsb = loc.Region.msb;
          krack = (if rack_level then loc.Region.rack else -1);
          khw = s.Region.hw.Hw.index;
          kuse = Snapshot.in_use_at snapshot id;
          kattr = Snapshot.attr_at snapshot id;
        }
      in
      match Hashtbl.find_opt group_of_key key with
      | Some g -> group.(id) <- g
      | None ->
        let g = !num_groups in
        incr num_groups;
        Hashtbl.add group_of_key key g;
        keys := key :: !keys;
        group.(id) <- g
    end
  done;
  (* class order is the sorted key order, as in the reference build: the
     dense indices (and the name list order) must not depend on which server
     id happened to introduce each class *)
  let sorted_keys = List.sort compare !keys in
  let class_of_group = Array.make !num_groups (-1) in
  List.iteri
    (fun index key -> class_of_group.(Hashtbl.find group_of_key key) <- index)
    sorted_keys;
  let counts = Array.make !num_groups 0 in
  Array.iter (fun g -> if g >= 0 then counts.(class_of_group.(g)) <- counts.(class_of_group.(g)) + 1) group;
  let members = Array.init !num_groups (fun c -> Array.make counts.(c) 0) in
  let fill = Array.make !num_groups 0 in
  for id = 0 to n - 1 do
    let g = group.(id) in
    if g >= 0 then begin
      let c = class_of_group.(g) in
      members.(c).(fill.(c)) <- id;
      fill.(c) <- fill.(c) + 1
    end
  done;
  let classes =
    Array.of_list
      (List.mapi (fun index key -> cls_of_key index key members.(index)) sorted_keys)
  in
  finish snapshot classes

(* The pre-streaming implementation, kept verbatim as the differential
   oracle for the aggregation-equivalence battery (test_region_scale.ml):
   materializes every server view and groups member-id lists through the
   key table, exactly as builds did before the columnar refactor. *)
let build_reference ?(rack_level = false) ?(include_server = fun _ -> true)
    (snapshot : Snapshot.t) =
  let groups : (key, int list ref) Hashtbl.t = Hashtbl.create 256 in
  Snapshot.iter_views snapshot ~f:(fun (v : Snapshot.server_view) ->
      if v.Snapshot.usable && include_server v then begin
        let loc = v.Snapshot.server.Region.loc in
        let key =
          {
            kmsb = loc.Region.msb;
            krack = (if rack_level then loc.Region.rack else -1);
            khw = v.Snapshot.server.Region.hw.Hw.index;
            kuse = v.Snapshot.in_use;
            kattr = v.Snapshot.attr;
          }
        in
        match Hashtbl.find_opt groups key with
        | Some members -> members := v.Snapshot.server.Region.id :: !members
        | None -> Hashtbl.replace groups key (ref [ v.Snapshot.server.Region.id ])
      end);
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) groups [] in
  let keys = List.sort compare keys in
  let classes =
    List.mapi
      (fun index key ->
        let members = Array.of_list (List.sort compare !(Hashtbl.find groups key)) in
        cls_of_key index key members)
      keys
  in
  finish snapshot (Array.of_list classes)

(* Stable identity of a class: every field of the grouping key, none of the
   dense index.  Used to name model variables and rows, so that the same
   logical class keeps the same name across snapshots even when classes
   appear or disappear and the dense indices shift — the property the
   cross-round incremental diff relies on. *)
let class_name c =
  let rack = match c.rack with Some r -> Printf.sprintf "k%d" r | None -> "" in
  Printf.sprintf "m%d%sh%du%da%d" c.msb rack c.hw (if c.in_use then 1 else 0) c.attr

let size c = Array.length c.members

let hw_of c = Hw.catalog.(c.hw)

let current_count t c owner =
  match Hashtbl.find_opt t.owner_counts.(c.index) (Broker.owner_code owner) with
  | Some n -> n
  | None -> 0

let num_classes t = Array.length t.classes

let total_members t = Array.fold_left (fun acc c -> acc + size c) 0 t.classes

let acceptable_count reservations hw =
  List.fold_left
    (fun acc r -> if Reservation.accepts r Hw.catalog.(hw) then acc + 1 else acc)
    0 reservations

let raw_variable_count t ~reservations =
  Array.fold_left
    (fun acc c -> acc + (size c * acceptable_count reservations c.hw))
    0 t.classes

let grouped_variable_count t ~reservations =
  Array.fold_left (fun acc c -> acc + acceptable_count reservations c.hw) 0 t.classes
