module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware

type grant = Reactive.grant = {
  requested_rru : float;
  granted_rru : float;
  servers : int list;
  took_from_buffer : int;
  visited : int;
}

(* The original full-scan grant, kept verbatim (modulo the [visited]
   counter) as the differential oracle for the columnar and reactive paths:
   it iterates every server per source even after the request is covered,
   materializing a record each time. *)
let grant_reference broker ~reservation ~rru ~allow_buffer =
  let owner = Broker.Reservation reservation.Reservation.id in
  let granted = ref 0.0 and servers = ref [] and from_buffer = ref 0 and visited = ref 0 in
  let try_take ~source =
    Broker.iter broker ~f:(fun r ->
        incr visited;
        if !granted < rru && r.Broker.current = source && Broker.healthy r && not r.Broker.in_use
        then begin
          let v = reservation.Reservation.rru_of r.Broker.server.Region.hw in
          if v > 0.0 then begin
            let id = r.Broker.server.Region.id in
            Broker.move broker id owner;
            Broker.set_target broker id owner;
            granted := !granted +. v;
            servers := id :: !servers;
            if source = Broker.Shared_buffer then incr from_buffer
          end
        end)
  in
  try_take ~source:Broker.Free;
  if !granted < rru && allow_buffer then try_take ~source:Broker.Shared_buffer;
  {
    requested_rru = rru;
    granted_rru = !granted;
    servers = List.rev !servers;
    took_from_buffer = !from_buffer;
    visited = !visited;
  }

let code_free = Broker.owner_code Broker.Free
let code_buffer = Broker.owner_code Broker.Shared_buffer

let grant ?reactive broker ~reservation ~rru ~allow_buffer =
  match reactive with
  | Some ri -> Reactive.grant ri ~reservation ~rru ~allow_buffer
  | None ->
    (* columnar scan, terminating as soon as the request is covered: same
       grants as {!grant_reference} (ascending id, free pool first) without
       the per-server record builds or the post-coverage tail *)
    let owner = Broker.Reservation reservation.Reservation.id in
    let region = Broker.region broker in
    let n = Broker.num_servers broker in
    let rru_by_hw = Array.map reservation.Reservation.rru_of Hw.catalog in
    let granted = ref 0.0 and servers = ref [] and from_buffer = ref 0 and visited = ref 0 in
    let try_take ~code ~buffer =
      let id = ref 0 in
      while !granted < rru && !id < n do
        incr visited;
        if
          Broker.current_code broker !id = code
          && Broker.healthy_at broker !id
          && not (Broker.in_use_at broker !id)
        then begin
          let v = rru_by_hw.(region.Region.servers.(!id).Region.hw.Hw.index) in
          if v > 0.0 then begin
            Broker.move broker !id owner;
            Broker.set_target broker !id owner;
            granted := !granted +. v;
            servers := !id :: !servers;
            if buffer then incr from_buffer
          end
        end;
        incr id
      done
    in
    try_take ~code:code_free ~buffer:false;
    if !granted < rru && allow_buffer then try_take ~code:code_buffer ~buffer:true;
    {
      requested_rru = rru;
      granted_rru = !granted;
      servers = List.rev !servers;
      took_from_buffer = !from_buffer;
      visited = !visited;
    }
