module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware
module Service = Ras_workload.Service
module Capacity_request = Ras_workload.Capacity_request

type decision = Accepted | Rejected of string

type event = Submitted of int * decision | Modified of int * decision | Deleted of int

type t = {
  accepted : (int, Capacity_request.t) Hashtbl.t;
  mutable events : event list;  (* newest first *)
  mutable supply_hist : (Snapshot.t * int array) option;
      (* usable-per-subtype histogram of the last snapshot seen (keyed by
         physical identity): admission folds supply over it instead of
         walking 10^6 servers per submit/modify *)
}

let create () = { accepted = Hashtbl.create 32; events = []; supply_hist = None }

let buffer_overhead (region : Region.t) (req : Capacity_request.t) =
  if req.Capacity_request.embedded_buffer && region.Region.num_msbs > 1 then
    1.0 +. (1.0 /. float_of_int (region.Region.num_msbs - 1))
  else 1.0

(* |catalog| RRU evaluations against the usable histogram — the per-server
   form of this loop was an O(n) record build on every submit/modify *)
let supply_of_hist hist service =
  let acc = ref 0.0 in
  Array.iteri
    (fun i n ->
      if n > 0 then acc := !acc +. (float_of_int n *. Service.rru_of service Hw.catalog.(i)))
    hist;
  !acc

let usable_hist t snapshot =
  match t.supply_hist with
  | Some (s, h) when s == snapshot -> h
  | Some _ | None ->
    let h = Snapshot.usable_hw_histogram snapshot in
    t.supply_hist <- Some (snapshot, h);
    h

(* What other accepted requests already claim of this service's acceptable
   supply: conservatively, any request accepting an overlapping hardware
   subtype claims its full demand from the shared pool. *)
let committed_overlapping t snapshot service ~excluding =
  let overlaps (other : Capacity_request.t) =
    Array.exists
      (fun hw ->
        Service.rru_of service hw > 0.0
        && Service.rru_of other.Capacity_request.service hw > 0.0)
      Hw.catalog
  in
  Hashtbl.fold
    (fun id (other : Capacity_request.t) acc ->
      if id <> excluding && overlaps other then
        acc
        +. (other.Capacity_request.rru
           *. buffer_overhead snapshot.Snapshot.region other)
      else acc)
    t.accepted 0.0

let validate t (snapshot : Snapshot.t) (req : Capacity_request.t) ~excluding =
  let service = req.Capacity_request.service in
  let types =
    Array.fold_left
      (fun acc hw -> if Service.rru_of service hw > 0.0 then acc + 1 else acc)
      0 Hw.catalog
  in
  if types = 0 then
    Rejected
      (Printf.sprintf
         "no hardware subtype in the region's catalog is acceptable to service %s (categories \
          or CPU-generation limits rule everything out)"
         service.Service.name)
  else begin
    let supply = supply_of_hist (usable_hist t snapshot) service in
    let need = req.Capacity_request.rru *. buffer_overhead snapshot.Snapshot.region req in
    if supply < need then
      Rejected
        (Printf.sprintf
           "the region holds only %.1f acceptable RRUs (across %d subtypes) but the request \
            needs %.1f including its failure-buffer overhead; add hardware or relax the \
            acceptability constraints"
           supply types need)
    else begin
      let committed = committed_overlapping t snapshot service ~excluding in
      if supply -. committed < need then
        Rejected
          (Printf.sprintf
             "acceptable hardware exists (%.1f RRUs) but %.1f is already committed to \
              overlapping reservations, leaving %.1f < the %.1f needed; free capacity or \
              downsize another reservation"
             supply committed (supply -. committed) need)
      else Accepted
    end
  end

let submit t snapshot req =
  let decision = validate t snapshot req ~excluding:min_int in
  (match decision with
  | Accepted -> Hashtbl.replace t.accepted req.Capacity_request.id req
  | Rejected _ -> ());
  t.events <- Submitted (req.Capacity_request.id, decision) :: t.events;
  decision

let modify t snapshot req =
  let decision = validate t snapshot req ~excluding:req.Capacity_request.id in
  (match decision with
  | Accepted -> Hashtbl.replace t.accepted req.Capacity_request.id req
  | Rejected _ -> ());
  t.events <- Modified (req.Capacity_request.id, decision) :: t.events;
  decision

let delete t id =
  let existed = Hashtbl.mem t.accepted id in
  if existed then begin
    Hashtbl.remove t.accepted id;
    t.events <- Deleted id :: t.events
  end;
  existed

let requests t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.accepted []
  |> List.sort (fun a b -> compare a.Capacity_request.id b.Capacity_request.id)

let find t id = Hashtbl.find_opt t.accepted id

let log t = List.rev t.events
