module Model = Ras_mip.Model
module Lin = Ras_mip.Lin_expr
module Broker = Ras_broker.Broker
module Region = Ras_topology.Region

type params = {
  move_cost_unused : float;
  move_cost_in_use : float;
  spread_penalty : float;
  buffer_cost : float;
  capacity_slack_cost : float;
  affinity_slack_cost : float;
  assignment_cost : float;
  wear_penalty : float;
}

let default_params =
  {
    move_cost_unused = 1.0;
    move_cost_in_use = 10.0;
    spread_penalty = 40.0;
    buffer_cost = 8.0;
    capacity_slack_cost = 10_000.0;
    affinity_slack_cost = 2_000.0;
    (* a tiny per-assigned-server cost keeps optima from over-allocating:
       without it, parking free servers in a reservation is costless and LP
       vertices become arbitrarily generous *)
    assignment_cost = 0.01;
    (* section 5.2: cost per wear-bucket level of giving a worn-flash server
       to an IO-heavy reservation *)
    wear_penalty = 2.0;
  }

type pair = { cls : Symmetry.cls; res : Reservation.t; var : Model.var }

type t = {
  model : Model.t;
  symmetry : Symmetry.t;
  reservations : Reservation.t list;
  pairs : pair list;
  capacity_slack : (int * Model.var) list;
  buffer_var : (int * Model.var) list;
  aux_defs : (Model.var * Lin.t list) list;
      (** every auxiliary variable with the expressions it upper-bounds:
          its optimal value given the assignment variables is
          [max(0, max_i e_i)]; definitions are in ascending variable order
          and only reference earlier variables, so a full solution vector
          can be reconstructed from assignment counts alone *)
  params : params;
  rack_level : bool;
}

let owner_of res =
  match res.Reservation.kind with
  | Reservation.Guaranteed -> Broker.Reservation res.Reservation.id
  | Reservation.Random_failure_buffer _ -> Broker.Shared_buffer

let build ?(params = default_params) ?(rack_level = false) (symmetry : Symmetry.t) reservations =
  let model = Model.create () in
  let pairs = ref [] in
  let per_class_vars = Array.make (Symmetry.num_classes symmetry) [] in
  (* per reservation id: terms (V, var, cls) *)
  let res_terms : (int, (float * Model.var * Symmetry.cls) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun res -> Hashtbl.replace res_terms res.Reservation.id (ref []))
    reservations;
  (* assignment variables *)
  Array.iter
    (fun (cls : Symmetry.cls) ->
      let hw = Symmetry.hw_of cls in
      List.iter
        (fun res ->
          let v = res.Reservation.rru_of hw in
          if v > 0.0 then begin
            (* names are keyed by the stable class key, never the dense
               class index: across snapshot deltas the surviving classes
               keep their names, so cross-round model diffs stay minimal *)
            let name =
              Printf.sprintf "n_%s_r%d" (Symmetry.class_name cls) res.Reservation.id
            in
            let var =
              Model.add_var ~name ~lb:0.0
                ~ub:(float_of_int (Symmetry.size cls))
                ~kind:Model.Integer model
            in
            pairs := { cls; res; var } :: !pairs;
            per_class_vars.(cls.Symmetry.index) <- var :: per_class_vars.(cls.Symmetry.index);
            let wear_cost =
              params.wear_penalty *. res.Reservation.io_intensity
              *. float_of_int cls.Symmetry.attr
            in
            Model.add_to_objective model (Lin.term (params.assignment_cost +. wear_cost) var);
            let terms = Hashtbl.find res_terms res.Reservation.id in
            terms := (v, var, cls) :: !terms
          end)
        reservations)
      symmetry.Symmetry.classes;
  (* expression (5): class supply *)
  Array.iteri
    (fun idx vars ->
      if vars <> [] then begin
        let e = Lin.of_terms (List.map (fun v -> (1.0, v)) vars) in
        let cls = symmetry.Symmetry.classes.(idx) in
        ignore
          (Model.add_constraint
             ~name:(Printf.sprintf "supply_%s" (Symmetry.class_name cls))
             model e Model.Le
             (float_of_int (Symmetry.size cls)))
      end)
    per_class_vars;
  let capacity_slack = ref [] and buffer_var = ref [] in
  let aux_defs = ref [] in
  let pos_part ~name ~weight e =
    let v = Model.add_pos_part ~name model ~weight e in
    aux_defs := (v, [ e ]) :: !aux_defs;
    v
  in
  let max_over ~name ~weight es =
    let v = Model.add_max_over ~name model ~weight es in
    aux_defs := (v, es) :: !aux_defs;
    v
  in
  let slack_var ~name ~weight defs =
    let v = Model.add_var ~name ~lb:0.0 model in
    Model.add_to_objective model (Lin.term weight v);
    aux_defs := (v, defs) :: !aux_defs;
    v
  in
  let group_terms terms ~scope_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (v, var, cls) ->
        let g = scope_of cls in
        let existing = try Hashtbl.find tbl g with Not_found -> [] in
        Hashtbl.replace tbl g ((v, var) :: existing))
      terms;
    Hashtbl.fold (fun g ts acc -> (g, Lin.of_terms ts) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun res ->
      let rid = res.Reservation.id in
      let terms = !(Hashtbl.find res_terms rid) in
      let total = Lin.of_terms (List.map (fun (v, var, _) -> (v, var)) terms) in
      let by_msb = group_terms terms ~scope_of:(fun c -> c.Symmetry.msb) in
      let cr = res.Reservation.capacity_rru in
      (* expressions (4) + (6): embedded correlated-failure buffer *)
      let z_term =
        if res.Reservation.embedded_buffer && symmetry.Symmetry.region.Region.num_msbs > 1 then begin
          let z =
            max_over
              ~name:(Printf.sprintf "zbuf_r%d" rid)
              ~weight:params.buffer_cost
              (List.map snd by_msb)
          in
          buffer_var := (rid, z) :: !buffer_var;
          Lin.term (-1.0) z
        end
        else Lin.zero
      in
      (* capacity constraint, softened (§3.5.1) *)
      let slack =
        slack_var
          ~name:(Printf.sprintf "cap_slack_r%d" rid)
          ~weight:params.capacity_slack_cost
          [ Lin.sub (Lin.constant cr) (Lin.add total z_term) ]
      in
      capacity_slack := (rid, slack) :: !capacity_slack;
      ignore
        (Model.add_constraint
           ~name:(Printf.sprintf "capacity_r%d" rid)
           model
           (Lin.add (Lin.add total z_term) (Lin.var slack))
           Model.Ge cr);
      (* expression (3): MSB spread *)
      let alpha_f = res.Reservation.msb_spread_limit in
      List.iter
        (fun (msb, e) ->
          ignore
            (pos_part
               ~name:(Printf.sprintf "over_r%d_m%d" rid msb)
               ~weight:params.spread_penalty
               (Lin.sub e (Lin.constant (alpha_f *. cr)))))
        by_msb;
      (* paragraph 3.3.2: storage quorum spread - a hard (softened) cap on
         any MSB's fraction of the reservation's total capacity, so
         replicated stores keep quorum through an MSB loss *)
      (match res.Reservation.hard_msb_cap with
      | Some cap ->
        List.iter
          (fun (msb, e) ->
            let excess = Lin.sub e (Lin.scale cap total) in
            let slack =
              slack_var
                ~name:(Printf.sprintf "quorum_slack_r%d_m%d" rid msb)
                ~weight:params.capacity_slack_cost [ excess ]
            in
            ignore
              (Model.add_constraint
                 ~name:(Printf.sprintf "quorum_r%d_m%d" rid msb)
                 model
                 (Lin.sub excess (Lin.var slack))
                 Model.Le 0.0))
          by_msb
      | None -> ());
      (* expression (2): rack spread, phase-2 goal *)
      (match (rack_level, res.Reservation.rack_spread_limit) with
      | true, Some alpha_k ->
        let by_rack =
          group_terms terms ~scope_of:(fun c ->
              match c.Symmetry.rack with Some r -> r | None -> -1)
        in
        List.iter
          (fun (rack, e) ->
            if rack >= 0 then
              ignore
                (pos_part
                   ~name:(Printf.sprintf "overk_r%d_k%d" rid rack)
                   ~weight:params.spread_penalty
                   (Lin.sub e (Lin.constant (alpha_k *. cr)))))
          by_rack
      | _, _ -> ());
      (* expression (7): datacenter affinity, softened two-sided *)
      if res.Reservation.dc_affinity <> [] then begin
        let by_dc =
          group_terms terms ~scope_of:(fun c ->
              symmetry.Symmetry.region.Region.msb_dc.(c.Symmetry.msb))
        in
        let theta = res.Reservation.affinity_tolerance in
        List.iter
          (fun (dc, target) ->
            let e = try List.assoc dc by_dc with Not_found -> Lin.zero in
            let s_lo =
              slack_var
                ~name:(Printf.sprintf "aff_lo_r%d_d%d" rid dc)
                ~weight:params.affinity_slack_cost
                [ Lin.sub (Lin.constant ((target -. theta) *. cr)) e ]
            in
            let s_hi =
              slack_var
                ~name:(Printf.sprintf "aff_hi_r%d_d%d" rid dc)
                ~weight:params.affinity_slack_cost
                [ Lin.sub e (Lin.constant ((target +. theta) *. cr)) ]
            in
            ignore
              (Model.add_constraint
                 ~name:(Printf.sprintf "affge_r%d_d%d" rid dc)
                 model (Lin.add e (Lin.var s_lo)) Model.Ge
                 ((target -. theta) *. cr));
            ignore
              (Model.add_constraint
                 ~name:(Printf.sprintf "affle_r%d_d%d" rid dc)
                 model (Lin.sub e (Lin.var s_hi)) Model.Le
                 ((target +. theta) *. cr)))
          res.Reservation.dc_affinity
      end;
      (* expression (1): stability *)
      let owner = owner_of res in
      List.iter
        (fun (_, var, cls) ->
          let n0 = Symmetry.current_count symmetry cls owner in
          if n0 > 0 then begin
            let cost =
              if cls.Symmetry.in_use then params.move_cost_in_use else params.move_cost_unused
            in
            ignore
              (pos_part
                 ~name:(Printf.sprintf "move_%s_r%d" (Symmetry.class_name cls) rid)
                 ~weight:cost
                 (Lin.sub (Lin.constant (float_of_int n0)) (Lin.var var)))
          end)
        terms)
    reservations;
  {
    model;
    symmetry;
    reservations;
    pairs = List.rev !pairs;
    capacity_slack = !capacity_slack;
    buffer_var = !buffer_var;
    aux_defs = List.rev !aux_defs;
    params;
    rack_level;
  }

(* Reconstruct a full solution vector from assignment counts: auxiliary
   variables all take their cheapest feasible value [max(0, max_i e_i)];
   definitions only reference earlier variables so one ascending pass
   suffices. *)
let encode t counts_of =
  let vec = Array.make (Model.num_vars t.model) 0.0 in
  List.iter (fun p -> vec.(p.var) <- float_of_int (counts_of p)) t.pairs;
  List.iter
    (fun (v, exprs) ->
      let value =
        List.fold_left (fun acc e -> Float.max acc (Lin.eval e (fun i -> vec.(i)))) 0.0 exprs
      in
      vec.(v) <- value)
    t.aux_defs;
  vec

let status_quo t =
  encode t (fun p ->
      let owner = owner_of p.res in
      Symmetry.current_count t.symmetry p.cls owner)

(* Largest-remainder rounding of an LP-relaxation solution: per class, floor
   every count, then hand the class's remaining LP mass back to the pairs
   with the largest fractional parts.  Supply can only decrease, so the
   result is always feasible once auxiliaries are re-encoded. *)
let round_lp t lp_solution =
  let by_class = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let existing = try Hashtbl.find by_class p.cls.Symmetry.index with Not_found -> [] in
      Hashtbl.replace by_class p.cls.Symmetry.index (p :: existing))
    t.pairs;
  let counts = Hashtbl.create 256 in
  Hashtbl.iter
    (fun _ ps ->
      let floors =
        List.map
          (fun p ->
            let x = Float.max 0.0 lp_solution.(p.var) in
            let fl = Float.floor (x +. 1e-9) in
            (p, int_of_float fl, x -. fl))
          ps
      in
      let total_lp = List.fold_left (fun acc p -> acc +. Float.max 0.0 lp_solution.(p.var)) 0.0 ps in
      let floor_sum = List.fold_left (fun acc (_, fl, _) -> acc + fl) 0 floors in
      let extra = int_of_float (Float.round total_lp) - floor_sum in
      let by_remainder =
        List.sort (fun (_, _, ra) (_, _, rb) -> compare rb ra) floors
      in
      List.iteri
        (fun i (p, fl, _) ->
          let c = if i < extra then fl + 1 else fl in
          Hashtbl.replace counts (p.cls.Symmetry.index, p.res.Reservation.id) c)
        by_remainder)
    by_class;
  encode t (fun p ->
      try Hashtbl.find counts (p.cls.Symmetry.index, p.res.Reservation.id) with Not_found -> 0)

let num_assignment_vars t = List.length t.pairs

type assignment = { counts : (Symmetry.cls * Reservation.t * int) list }

let decode t solution =
  let counts =
    List.filter_map
      (fun p ->
        let v = int_of_float (Float.round solution.(p.var)) in
        if v > 0 then Some (p.cls, p.res, v) else None)
      t.pairs
  in
  { counts }

let capacity_shortfalls t solution =
  List.filter_map
    (fun (rid, slack) ->
      let v = solution.(slack) in
      if v > 1e-6 then Some (rid, v) else None)
    t.capacity_slack

(* Spread local search: repeatedly move one server of the reservation out of
   its fullest MSB into an acceptable class with free supply in a less-loaded
   MSB, whenever that lowers the reservation's max-MSB capacity (expressions
   3/4/6 all improve).  Works on a counts table in place. *)
let improve_spread t ~counts ~class_used =
  let region = t.symmetry.Symmetry.region in
  let num_msbs = region.Region.num_msbs in
  let pairs_of_res = Hashtbl.create 32 in
  List.iter
    (fun p ->
      let existing = try Hashtbl.find pairs_of_res p.res.Reservation.id with Not_found -> [] in
      Hashtbl.replace pairs_of_res p.res.Reservation.id (p :: existing))
    t.pairs;
  let value p = p.res.Reservation.rru_of (Symmetry.hw_of p.cls) in
  let count_of p = !(Hashtbl.find counts (p.cls.Symmetry.index, p.res.Reservation.id)) in
  let set p delta =
    let r = Hashtbl.find counts (p.cls.Symmetry.index, p.res.Reservation.id) in
    r := !r + delta;
    class_used.(p.cls.Symmetry.index) <- class_used.(p.cls.Symmetry.index) + delta
  in
  List.iter
    (fun res ->
      if res.Reservation.embedded_buffer then begin
        let my_pairs = try Hashtbl.find pairs_of_res res.Reservation.id with Not_found -> [] in
        let msb_rru = Array.make num_msbs 0.0 in
        List.iter
          (fun p ->
            msb_rru.(p.cls.Symmetry.msb) <-
              msb_rru.(p.cls.Symmetry.msb) +. (value p *. float_of_int (count_of p)))
          my_pairs;
        let improved = ref true and guard = ref 0 in
        while !improved && !guard < 500 do
          improved := false;
          incr guard;
          (* fullest MSB *)
          let max_msb = ref 0 in
          for m = 1 to num_msbs - 1 do
            if msb_rru.(m) > msb_rru.(!max_msb) then max_msb := m
          done;
          if msb_rru.(!max_msb) > 0.0 then begin
            (* best single-server move out of it *)
            let best = ref None in
            List.iter
              (fun p_from ->
                if p_from.cls.Symmetry.msb = !max_msb && count_of p_from > 0 then
                  List.iter
                    (fun p_to ->
                      if
                        p_to.cls.Symmetry.msb <> !max_msb
                        && class_used.(p_to.cls.Symmetry.index) < Symmetry.size p_to.cls
                      then begin
                        let new_src = msb_rru.(!max_msb) -. value p_from in
                        let new_dst = msb_rru.(p_to.cls.Symmetry.msb) +. value p_to in
                        (* the move must lower this reservation's max share
                           and must not shrink its total capacity *)
                        if
                          Float.max new_src new_dst < msb_rru.(!max_msb) -. 1e-9
                          && value p_to >= value p_from -. 1e-9
                        then begin
                          let headroom = msb_rru.(!max_msb) -. Float.max new_src new_dst in
                          (* idle servers move for a tenth of the cost of
                             in-use ones (expression 1), so prefer them *)
                          let key = ((if p_from.cls.Symmetry.in_use then 0 else 1), headroom) in
                          match !best with
                          | Some (k, _, _) when k >= key -> ()
                          | _ -> best := Some (key, p_from, p_to)
                        end
                      end)
                    my_pairs)
              my_pairs;
            match !best with
            | Some (_, p_from, p_to) ->
              set p_from (-1);
              set p_to 1;
              msb_rru.(p_from.cls.Symmetry.msb) <-
                msb_rru.(p_from.cls.Symmetry.msb) -. value p_from;
              msb_rru.(p_to.cls.Symmetry.msb) <- msb_rru.(p_to.cls.Symmetry.msb) +. value p_to;
              improved := true
            | None -> ()
          end
        done
      end)
    t.reservations

(* Affinity local search: for reservations with datacenter affinity, swap
   servers between datacenters (one dropped, one picked up from unassigned
   supply) until every declared datacenter's share is inside
   [(A - theta) C_r, (A + theta) C_r] or no swap helps. *)
let improve_affinity t ~counts ~class_used =
  let region = t.symmetry.Symmetry.region in
  let dc_of cls = region.Region.msb_dc.(cls.Symmetry.msb) in
  let pairs_of_res = Hashtbl.create 32 in
  List.iter
    (fun p ->
      let existing = try Hashtbl.find pairs_of_res p.res.Reservation.id with Not_found -> [] in
      Hashtbl.replace pairs_of_res p.res.Reservation.id (p :: existing))
    t.pairs;
  let value p = p.res.Reservation.rru_of (Symmetry.hw_of p.cls) in
  let count_of p = !(Hashtbl.find counts (p.cls.Symmetry.index, p.res.Reservation.id)) in
  let set p delta =
    let r = Hashtbl.find counts (p.cls.Symmetry.index, p.res.Reservation.id) in
    r := !r + delta;
    class_used.(p.cls.Symmetry.index) <- class_used.(p.cls.Symmetry.index) + delta
  in
  List.iter
    (fun res ->
      if res.Reservation.dc_affinity <> [] then begin
        let my_pairs = try Hashtbl.find pairs_of_res res.Reservation.id with Not_found -> [] in
        let cr = res.Reservation.capacity_rru in
        let theta = res.Reservation.affinity_tolerance in
        let dc_rru = Array.make region.Region.num_dcs 0.0 in
        List.iter
          (fun p -> dc_rru.(dc_of p.cls) <- dc_rru.(dc_of p.cls) +. (value p *. float_of_int (count_of p)))
          my_pairs;
        let declared = res.Reservation.dc_affinity in
        let lo d = match List.assoc_opt d declared with Some a -> (a -. theta) *. cr | None -> 0.0 in
        let hi d =
          match List.assoc_opt d declared with Some a -> (a +. theta) *. cr | None -> infinity
        in
        let violation () =
          Array.to_list dc_rru
          |> List.mapi (fun d v -> Float.max 0.0 (lo d -. v) +. Float.max 0.0 (v -. hi d))
          |> List.fold_left ( +. ) 0.0
        in
        let guard = ref 0 and progress = ref true in
        while violation () > 1e-6 && !progress && !guard < 500 do
          progress := false;
          incr guard;
          (* best swap: drop one server in dc_from, add one in dc_to *)
          let best = ref None in
          let before = violation () in
          List.iter
            (fun p_from ->
              if count_of p_from > 0 then
                List.iter
                  (fun p_to ->
                    if
                      dc_of p_to.cls <> dc_of p_from.cls
                      && class_used.(p_to.cls.Symmetry.index) < Symmetry.size p_to.cls
                    then begin
                      let df = dc_of p_from.cls and dt = dc_of p_to.cls in
                      dc_rru.(df) <- dc_rru.(df) -. value p_from;
                      dc_rru.(dt) <- dc_rru.(dt) +. value p_to;
                      let after = violation () in
                      dc_rru.(df) <- dc_rru.(df) +. value p_from;
                      dc_rru.(dt) <- dc_rru.(dt) -. value p_to;
                      (* keep total capacity: only allow swaps that do not
                         shrink the reservation *)
                      if after < before -. 1e-9 && value p_to >= value p_from -. 1e-9 then begin
                        let key = ((if p_from.cls.Symmetry.in_use then 1 else 0), after) in
                        match !best with
                        | Some (k, _, _) when k <= key -> ()
                        | _ -> best := Some (key, p_from, p_to)
                      end
                    end)
                  my_pairs)
            my_pairs;
          match !best with
          | Some (_, p_from, p_to) ->
            set p_from (-1);
            set p_to 1;
            dc_rru.(dc_of p_from.cls) <- dc_rru.(dc_of p_from.cls) -. value p_from;
            dc_rru.(dc_of p_to.cls) <- dc_rru.(dc_of p_to.cls) +. value p_to;
            progress := true
          | None -> ()
        done
      end)
    t.reservations

(* Greedy capacity repair: rounding can strand fractional mass of scarce
   hardware classes, leaving reservations short.  Walk every short
   reservation and top it up from (a) unassigned class supply, preferring
   under-loaded MSBs and the highest-value class, then (b) donors that would
   remain above their own requested capacity after giving a server up. *)
let repair t solution =
  let nclasses = Array.length t.symmetry.Symmetry.classes in
  let num_msbs = t.symmetry.Symmetry.region.Region.num_msbs in
  let counts = Hashtbl.create 256 in
  let class_used = Array.make nclasses 0 in
  let res_total = Hashtbl.create 32 in
  List.iter
    (fun res -> Hashtbl.replace res_total res.Reservation.id (ref 0.0))
    t.reservations;
  List.iter
    (fun p ->
      let c = int_of_float (Float.round solution.(p.var)) in
      Hashtbl.replace counts (p.cls.Symmetry.index, p.res.Reservation.id) (ref c);
      class_used.(p.cls.Symmetry.index) <- class_used.(p.cls.Symmetry.index) + c;
      let v = p.res.Reservation.rru_of (Symmetry.hw_of p.cls) in
      let total = Hashtbl.find res_total p.res.Reservation.id in
      total := !total +. (v *. float_of_int c))
    t.pairs;
  let value p = p.res.Reservation.rru_of (Symmetry.hw_of p.cls) in
  let count_of p = !(Hashtbl.find counts (p.cls.Symmetry.index, p.res.Reservation.id)) in
  let bump p delta =
    let r = Hashtbl.find counts (p.cls.Symmetry.index, p.res.Reservation.id) in
    r := !r + delta;
    class_used.(p.cls.Symmetry.index) <- class_used.(p.cls.Symmetry.index) + delta;
    let total = Hashtbl.find res_total p.res.Reservation.id in
    total := !total +. (value p *. float_of_int delta)
  in
  let pairs_of_res = Hashtbl.create 32 in
  List.iter
    (fun p ->
      let existing =
        try Hashtbl.find pairs_of_res p.res.Reservation.id with Not_found -> []
      in
      Hashtbl.replace pairs_of_res p.res.Reservation.id (p :: existing))
    t.pairs;
  let pairs_of_class = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let existing =
        try Hashtbl.find pairs_of_class p.cls.Symmetry.index with Not_found -> []
      in
      Hashtbl.replace pairs_of_class p.cls.Symmetry.index (p :: existing))
    t.pairs;
  (* Shed over-assignment first: a stale cross-round seed can leave a class
     holding more servers than it has members (its membership shrank under
     churn).  Drop one server at a time — from the reservation with the
     most surplus over its own request, so the drop is least likely to
     create a shortfall — until every class fits; the top-up loop below
     then restores any capacity this sheds.  A no-op on supply-feasible
     inputs. *)
  for c = 0 to nclasses - 1 do
    let size = Symmetry.size t.symmetry.Symmetry.classes.(c) in
    let guard = ref 0 in
    while class_used.(c) > size && !guard < 10_000 do
      incr guard;
      let ps = try Hashtbl.find pairs_of_class c with Not_found -> [] in
      let best = ref None in
      List.iter
        (fun p ->
          if count_of p > 0 then begin
            let surplus =
              !(Hashtbl.find res_total p.res.Reservation.id) -. p.res.Reservation.capacity_rru
            in
            match !best with
            | Some (bs, _) when bs >= surplus -> ()
            | _ -> best := Some (surplus, p)
          end)
        ps;
      match !best with
      | Some (_, p) -> bump p (-1)
      | None -> guard := 10_000 (* unreachable: class_used > 0 implies a positive count *)
    done
  done;
  (* a donor must keep a safety margin over its own request so stealing never
     creates a new violation elsewhere *)
  let donor_floor res =
    if res.Reservation.embedded_buffer && num_msbs > 1 then
      res.Reservation.capacity_rru *. (1.0 +. (1.2 /. float_of_int (num_msbs - 1)))
    else res.Reservation.capacity_rru
  in
  List.iter
    (fun res ->
      let rid = res.Reservation.id in
      let my_pairs = try Hashtbl.find pairs_of_res rid with Not_found -> [] in
      let cr = res.Reservation.capacity_rru in
      let total = Hashtbl.find res_total rid in
      let msb_rru = Array.make num_msbs 0.0 in
      List.iter
        (fun p ->
          msb_rru.(p.cls.Symmetry.msb) <-
            msb_rru.(p.cls.Symmetry.msb) +. (value p *. float_of_int (count_of p)))
        my_pairs;
      let buffered = res.Reservation.embedded_buffer && num_msbs > 1 in
      (* expression (6): what the reservation keeps after losing its fullest
         MSB must cover the request; without an embedded buffer plain total
         suffices *)
      let surviving () =
        if buffered then !total -. Array.fold_left Float.max 0.0 msb_rru else !total
      in
      (* deficit reduction if one server of pair [p] were added *)
      let gain p =
        if not buffered then value p
        else begin
          let old_max = Array.fold_left Float.max 0.0 msb_rru in
          let new_max = Float.max old_max (msb_rru.(p.cls.Symmetry.msb) +. value p) in
          !total +. value p -. new_max -. surviving ()
        end
      in
      let guard = ref 0 in
      let progress = ref true in
      while surviving () < cr -. 1e-6 && !progress && !guard < 2000 do
        progress := false;
        incr guard;
        (* free supply: candidate with the best deficit reduction *)
        let best_free = ref None in
        List.iter
          (fun p ->
            if class_used.(p.cls.Symmetry.index) < Symmetry.size p.cls then begin
              let g = gain p in
              if g > 1e-9 then
                match !best_free with
                | Some (bg, _) when bg >= g -> ()
                | _ -> best_free := Some (g, p)
            end)
          my_pairs;
        match !best_free with
        | Some (_, p) ->
          bump p 1;
          msb_rru.(p.cls.Symmetry.msb) <- msb_rru.(p.cls.Symmetry.msb) +. value p;
          progress := true
        | None ->
          (* donors: anyone who keeps its safety margin after giving one up *)
          let best_donor = ref None in
          List.iter
            (fun my_p ->
              let g = gain my_p in
              if g > 1e-9 then begin
                let others =
                  try Hashtbl.find pairs_of_class my_p.cls.Symmetry.index with Not_found -> []
                in
                List.iter
                  (fun donor ->
                    if donor.res.Reservation.id <> rid && count_of donor > 0 then begin
                      let donor_total = !(Hashtbl.find res_total donor.res.Reservation.id) in
                      if donor_total -. value donor >= donor_floor donor.res -. 1e-6 then begin
                        (* stealing an idle server avoids a preemption *)
                        let key = ((if donor.cls.Symmetry.in_use then 0 else 1), g) in
                        match !best_donor with
                        | Some (bk, _, _) when bk >= key -> ()
                        | _ -> best_donor := Some (key, my_p, donor)
                      end
                    end)
                  others
              end)
            my_pairs;
          (match !best_donor with
          | Some (_, my_p, donor) ->
            bump donor (-1);
            bump my_p 1;
            msb_rru.(my_p.cls.Symmetry.msb) <- msb_rru.(my_p.cls.Symmetry.msb) +. value my_p;
            progress := true
          | None -> ())
      done)
    t.reservations;
  improve_spread t ~counts ~class_used;
  improve_affinity t ~counts ~class_used;
  encode t (fun p -> count_of p)
let movement_units t solution ~in_use =
  List.fold_left
    (fun acc p ->
      if p.cls.Symmetry.in_use = in_use then begin
        let owner = owner_of p.res in
        let n0 = Symmetry.current_count t.symmetry p.cls owner in
        if n0 > 0 then acc +. Float.max 0.0 (float_of_int n0 -. solution.(p.var)) else acc
      end
      else acc)
    0.0 t.pairs

(* POP-style variable partitioning for Ras_mip.Decompose: reservations are
   dealt round-robin across partitions in decreasing capacity order (so each
   partition gets a comparable slice of demand), every assignment / slack /
   buffer variable follows its reservation, and auxiliary variables follow
   the first variable their defining expressions reference — aux_defs is in
   ascending variable order, so that variable is always placed already. *)
let partition_vars t ~parts =
  if parts < 1 then invalid_arg "Formulation.partition_vars: parts must be >= 1";
  let n = Model.num_vars t.model in
  let assign = Array.make n 0 in
  let res_part = Hashtbl.create 32 in
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare b.Reservation.capacity_rru a.Reservation.capacity_rru with
        | 0 -> compare a.Reservation.id b.Reservation.id
        | c -> c)
      t.reservations
  in
  List.iteri (fun i res -> Hashtbl.replace res_part res.Reservation.id (i mod parts)) sorted;
  let part_of_res rid = match Hashtbl.find_opt res_part rid with Some p -> p | None -> 0 in
  List.iter (fun p -> assign.(p.var) <- part_of_res p.res.Reservation.id) t.pairs;
  List.iter (fun (rid, v) -> assign.(v) <- part_of_res rid) t.capacity_slack;
  List.iter (fun (rid, v) -> assign.(v) <- part_of_res rid) t.buffer_var;
  List.iter
    (fun (v, exprs) ->
      let found = ref None in
      List.iter
        (fun e ->
          if !found = None then
            List.iter
              (fun (_, u) -> if !found = None && u < v then found := Some assign.(u))
              (Lin.terms e))
        exprs;
      assign.(v) <- (match !found with Some p -> p | None -> 0))
    t.aux_defs;
  assign
