module Model = Ras_mip.Model
module Simplex = Ras_mip.Simplex
module Incremental = Ras_mip.Incremental
module Branch_bound = Ras_mip.Branch_bound

type round_stats = {
  round : int;
  diff : Incremental.stats option;
  basis_rows_reused : int;
  basis_rows_total : int;
  seed : Branch_bound.seed_status;
  root_pivots : int;
  cold_root_pivots : int;
  pivots_saved : int;
}

let basis_reuse_rate r =
  if r.basis_rows_total = 0 then 0.0
  else float_of_int r.basis_rows_reused /. float_of_int r.basis_rows_total

let pp_round ppf r =
  let seed =
    match r.seed with
    | Branch_bound.Seed_none -> "none"
    | Branch_bound.Seed_accepted -> "accepted"
    | Branch_bound.Seed_repaired -> "repaired"
    | Branch_bound.Seed_rejected -> "rejected"
  in
  Format.fprintf ppf "round %d: " r.round;
  (match r.diff with
  | None -> Format.fprintf ppf "cold"
  | Some d -> Format.fprintf ppf "diff {%a}" Incremental.pp_stats d);
  Format.fprintf ppf ", basis %d/%d rows reused (%.0f%%), seed %s, root pivots %d (saved %d)"
    r.basis_rows_reused r.basis_rows_total
    (100.0 *. basis_reuse_rate r)
    seed r.root_pivots r.pivots_saved

(* ---- price table: the tier-1 repair policy's view of the last solve ----

   Duals are keyed by compiled row names, which encode the stable symmetry
   class key ("supply_m3h5u1a0") and the reservation id ("capacity_r12").
   The table aggregates supply-row duals per (msb, hw) scope — the scope the
   reactive pools are bucketed by — taking the max |dual| over the in_use /
   attr variants, so a class whose servers the solver fully values keeps its
   whole (msb, hw) bucket expensive. *)

type price_table = {
  price_round : int;
  class_prices : (int, float) Hashtbl.t;  (* msb * Hw.count + hw -> max |supply dual| *)
  capacity_prices : (int, float) Hashtbl.t;  (* reservation id -> capacity-row dual *)
}

let hw_count = Ras_topology.Hardware.count

(* "supply_m<msb>[k<rack>]h<hw>u<0|1>a<attr>" -> (msb, hw); rack-level rows
   fold into their (msb, hw) bucket like everything else *)
let parse_supply name =
  let n = String.length name in
  let prefix = "supply_m" in
  let np = String.length prefix in
  if n <= np || not (String.starts_with ~prefix name) then None
  else begin
    let digits i =
      let j = ref i in
      while !j < n && name.[!j] >= '0' && name.[!j] <= '9' do incr j done;
      if !j = i then None else Some (int_of_string (String.sub name i (!j - i)), !j)
    in
    match digits np with
    | None -> None
    | Some (msb, i) -> (
      let i = if i < n && name.[i] = 'k' then match digits (i + 1) with Some (_, j) -> j | None -> i else i in
      if i >= n || name.[i] <> 'h' then None
      else match digits (i + 1) with None -> None | Some (hw, _) -> Some (msb, hw))
  end

let parse_capacity name =
  match String.index_opt name 'r' with
  | Some i when String.starts_with ~prefix:"capacity_r" name -> (
    match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
    | Some rid -> Some rid
    | None -> None)
  | Some _ | None -> None

let price_table ?(round = 0) ~row_names ~duals () =
  let t =
    {
      price_round = round;
      class_prices = Hashtbl.create 256;
      capacity_prices = Hashtbl.create 32;
    }
  in
  let n = Int.min (Array.length row_names) (Array.length duals) in
  for i = 0 to n - 1 do
    let d = duals.(i) in
    if Float.abs d > 1e-12 then begin
      match parse_supply row_names.(i) with
      | Some (msb, hw) ->
        let key = (msb * hw_count) + hw in
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt t.class_prices key) in
        if Float.abs d > prev then Hashtbl.replace t.class_prices key (Float.abs d)
      | None -> (
        match parse_capacity row_names.(i) with
        | Some rid -> Hashtbl.replace t.capacity_prices rid d
        | None -> ())
    end
  done;
  t

let class_price t ~msb ~hw =
  Option.value ~default:0.0 (Hashtbl.find_opt t.class_prices ((msb * hw_count) + hw))

let capacity_price t rid =
  Option.value ~default:0.0 (Hashtbl.find_opt t.capacity_prices rid)

type cached = {
  cstd : Model.std;
  cbasis : Simplex.warm_basis option;
  cincumbent : float array option;
}

type t = {
  mutable prev : cached option;
  mutable rounds : int;
  mutable cold_root_pivots : int;
  mutable stats : round_stats list;  (* reversed *)
  mutable pprices : price_table option;
}

let create () =
  { prev = None; rounds = 0; cold_root_pivots = 0; stats = []; pprices = None }

let prices t = t.pprices

let round t = t.rounds

let last_round t = match t.stats with [] -> None | r :: _ -> Some r

let history t = List.rev t.stats

type warm = {
  wdiff : Incremental.stats;
  wbasis : Simplex.warm_basis option;
  wrows_reused : int;
  wseed : float array option;
}

let prepare t ~next =
  match t.prev with
  | None -> None
  | Some { cstd; cbasis; cincumbent } ->
    let d = Incremental.diff ~prev:cstd ~next in
    let wbasis, wrows_reused =
      match cbasis with
      | None -> (None, 0)
      | Some prev_basis -> (
        match Incremental.map_basis d ~prev_basis with
        | Some (b, reused) -> (Some b, reused)
        | None -> (None, 0))
    in
    let wseed =
      match cincumbent with
      | Some x when Array.length x = cstd.Model.nvars -> Some (Incremental.map_solution d x)
      | Some _ | None -> None
    in
    Some { wdiff = Incremental.stats d; wbasis; wrows_reused; wseed }

let commit t ?prices ~std ~basis ~incumbent ~diff ~rows_reused ~seed ~root_pivots () =
  if t.rounds = 0 then t.cold_root_pivots <- root_pivots;
  (match prices with
  | Some p -> t.pprices <- Some p
  | None -> ());  (* a dual-less round keeps the previous (stale but advisory) table *)
  let r =
    {
      round = t.rounds;
      diff;
      basis_rows_reused = rows_reused;
      basis_rows_total = std.Model.nrows;
      seed;
      root_pivots;
      cold_root_pivots = t.cold_root_pivots;
      pivots_saved = (if t.rounds = 0 then 0 else Int.max 0 (t.cold_root_pivots - root_pivots));
    }
  in
  t.stats <- r :: t.stats;
  t.rounds <- t.rounds + 1;
  t.prev <- Some { cstd = std; cbasis = basis; cincumbent = incumbent }
