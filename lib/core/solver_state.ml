module Model = Ras_mip.Model
module Simplex = Ras_mip.Simplex
module Incremental = Ras_mip.Incremental
module Branch_bound = Ras_mip.Branch_bound

type round_stats = {
  round : int;
  diff : Incremental.stats option;
  basis_rows_reused : int;
  basis_rows_total : int;
  seed : Branch_bound.seed_status;
  root_pivots : int;
  cold_root_pivots : int;
  pivots_saved : int;
}

let basis_reuse_rate r =
  if r.basis_rows_total = 0 then 0.0
  else float_of_int r.basis_rows_reused /. float_of_int r.basis_rows_total

let pp_round ppf r =
  let seed =
    match r.seed with
    | Branch_bound.Seed_none -> "none"
    | Branch_bound.Seed_accepted -> "accepted"
    | Branch_bound.Seed_repaired -> "repaired"
    | Branch_bound.Seed_rejected -> "rejected"
  in
  Format.fprintf ppf "round %d: " r.round;
  (match r.diff with
  | None -> Format.fprintf ppf "cold"
  | Some d -> Format.fprintf ppf "diff {%a}" Incremental.pp_stats d);
  Format.fprintf ppf ", basis %d/%d rows reused (%.0f%%), seed %s, root pivots %d (saved %d)"
    r.basis_rows_reused r.basis_rows_total
    (100.0 *. basis_reuse_rate r)
    seed r.root_pivots r.pivots_saved

type cached = {
  cstd : Model.std;
  cbasis : Simplex.warm_basis option;
  cincumbent : float array option;
}

type t = {
  mutable prev : cached option;
  mutable rounds : int;
  mutable cold_root_pivots : int;
  mutable stats : round_stats list;  (* reversed *)
}

let create () = { prev = None; rounds = 0; cold_root_pivots = 0; stats = [] }

let round t = t.rounds

let last_round t = match t.stats with [] -> None | r :: _ -> Some r

let history t = List.rev t.stats

type warm = {
  wdiff : Incremental.stats;
  wbasis : Simplex.warm_basis option;
  wrows_reused : int;
  wseed : float array option;
}

let prepare t ~next =
  match t.prev with
  | None -> None
  | Some { cstd; cbasis; cincumbent } ->
    let d = Incremental.diff ~prev:cstd ~next in
    let wbasis, wrows_reused =
      match cbasis with
      | None -> (None, 0)
      | Some prev_basis -> (
        match Incremental.map_basis d ~prev_basis with
        | Some (b, reused) -> (Some b, reused)
        | None -> (None, 0))
    in
    let wseed =
      match cincumbent with
      | Some x when Array.length x = cstd.Model.nvars -> Some (Incremental.map_solution d x)
      | Some _ | None -> None
    in
    Some { wdiff = Incremental.stats d; wbasis; wrows_reused; wseed }

let commit t ~std ~basis ~incumbent ~diff ~rows_reused ~seed ~root_pivots =
  if t.rounds = 0 then t.cold_root_pivots <- root_pivots;
  let r =
    {
      round = t.rounds;
      diff;
      basis_rows_reused = rows_reused;
      basis_rows_total = std.Model.nrows;
      seed;
      root_pivots;
      cold_root_pivots = t.cold_root_pivots;
      pivots_saved = (if t.rounds = 0 then 0 else Int.max 0 (t.cold_root_pivots - root_pivots));
    }
  in
  t.stats <- r :: t.stats;
  t.rounds <- t.rounds + 1;
  t.prev <- Some { cstd = std; cbasis = basis; cincumbent = incumbent }
