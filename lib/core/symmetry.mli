(** Server equivalence classes (paper §3.5.2, "Exploit symmetry").

    Servers that are identical under the model — same hardware subtype, same
    location scope, same in-use state — have identical coefficients in every
    constraint and objective, so one integer count variable per (class,
    reservation) replaces their individual binary assignment variables.

    Phase 1 groups at MSB scope (rack ignored), which is what makes
    region-scale problems tractable; phase 2 keys classes by rack for the
    reservations it refines.  A server's current owner is {e not} part of
    the key: the per-owner member counts give the movement baseline
    [N0_{c,r}] instead, which keeps the class count independent of the
    number of reservations. *)

type cls = {
  index : int;  (** dense index within the build *)
  msb : int;
  rack : int option;  (** [Some r] when built rack-level *)
  hw : int;  (** hardware catalog index *)
  in_use : bool;
  attr : int;  (** generic placement attribute (e.g. SSD wear bucket) *)
  members : int array;  (** server ids, ascending *)
}

type t = {
  classes : cls array;
  region : Ras_topology.Region.t;
  snapshot : Snapshot.t;
  owner_counts : (int, int) Hashtbl.t array;
      (** per class index: histogram of member current-owner codes
          ({!Ras_broker.Broker.owner_code}), making {!current_count} O(1) *)
}

val build :
  ?rack_level:bool ->
  ?include_server:(Snapshot.server_view -> bool) ->
  Snapshot.t ->
  t
(** Classes over the snapshot's usable servers (optionally filtered
    further).  Defaults: MSB-level, all usable servers.  Streams over the
    snapshot columns: per-server work is O(1) and, absent a filter, no
    per-server view records are materialized. *)

val build_reference :
  ?rack_level:bool ->
  ?include_server:(Snapshot.server_view -> bool) ->
  Snapshot.t ->
  t
(** The pre-streaming implementation (materializes every server view and
    groups id lists), kept as the differential oracle: [build] must agree
    with it class-for-class, member-for-member on any snapshot. *)

val class_name : cls -> string
(** Stable textual identity of the class, built from every grouping-key
    field and none of the dense index (e.g. ["m3k2h5u1a0"]).  Two builds
    over different snapshots give the same name to the same logical class,
    which is what keeps model variable/row names — and therefore the
    cross-round {!Ras_mip.Incremental} diffs — stable under churn. *)

val size : cls -> int

val hw_of : cls -> Ras_topology.Hardware.t

val current_count : t -> cls -> Ras_broker.Broker.owner -> int
(** [N0]: how many members are currently owned by the given owner. *)

val num_classes : t -> int

val total_members : t -> int

val raw_variable_count : t -> reservations:Reservation.t list -> int
(** Assignment variables a per-server formulation would need (|usable
    servers| x |acceptable reservations|) — the paper's Fig. 10/11 x-axis. *)

val grouped_variable_count : t -> reservations:Reservation.t list -> int
(** Assignment variables after symmetry grouping. *)
