module Broker = Ras_broker.Broker

type move = { server : int; from_ : Broker.owner; to_ : Broker.owner; was_in_use : bool }

type plan = { moves : move list; targets : (int * Broker.owner) list }

let owner_of_res res =
  match res.Reservation.kind with
  | Reservation.Guaranteed -> Broker.Reservation res.Reservation.id
  | Reservation.Random_failure_buffer _ -> Broker.Shared_buffer

let plan (f : Formulation.t) (assignment : Formulation.assignment) =
  let snapshot = f.Formulation.symmetry.Symmetry.snapshot in
  let current id = Snapshot.current snapshot id in
  (* per class: quotas per owner *)
  let quotas_of_class : (int, (Broker.owner * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (cls, res, count) ->
      let owner = owner_of_res res in
      let q =
        match Hashtbl.find_opt quotas_of_class cls.Symmetry.index with
        | Some q -> q
        | None ->
          let q = ref [] in
          Hashtbl.replace quotas_of_class cls.Symmetry.index q;
          q
      in
      q := (owner, count) :: !q)
    assignment.Formulation.counts;
  let moves = ref [] and targets = ref [] in
  Array.iter
    (fun (cls : Symmetry.cls) ->
      let quotas =
        match Hashtbl.find_opt quotas_of_class cls.Symmetry.index with
        | Some q -> List.sort compare !q
        | None -> []
      in
      let members = Array.to_list cls.Symmetry.members in
      (* stability first: fill each owner's quota with servers it already has *)
      let kept : (int, Broker.owner) Hashtbl.t = Hashtbl.create 16 in
      let remaining_quota = ref [] in
      List.iter
        (fun (owner, want) ->
          let have = List.filter (fun id -> current id = owner) members in
          let keep, _ =
            List.fold_left
              (fun (acc, k) id -> if k < want then (id :: acc, k + 1) else (acc, k))
              ([], 0) have
          in
          List.iter (fun id -> Hashtbl.replace kept id owner) keep;
          let missing = want - List.length keep in
          if missing > 0 then remaining_quota := (owner, missing) :: !remaining_quota)
        quotas;
      (* surplus pool: members not kept anywhere; free servers first, then by id *)
      let surplus = List.filter (fun id -> not (Hashtbl.mem kept id)) members in
      let free_first =
        List.stable_sort
          (fun a b ->
            let fa = current a = Broker.Free and fb = current b = Broker.Free in
            if fa = fb then compare a b else if fa then -1 else 1)
          surplus
      in
      let pool = ref free_first in
      List.iter
        (fun (owner, missing) ->
          let taken = ref 0 in
          let rest = ref [] in
          List.iter
            (fun id ->
              if !taken < missing then begin
                Hashtbl.replace kept id owner;
                incr taken
              end
              else rest := id :: !rest)
            !pool;
          pool := List.rev !rest)
        (List.sort compare !remaining_quota);
      (* whatever is left returns to the free pool *)
      List.iter (fun id -> if not (Hashtbl.mem kept id) then Hashtbl.replace kept id Broker.Free) members;
      List.iter
        (fun id ->
          let target = Hashtbl.find kept id in
          targets := (id, target) :: !targets;
          if target <> current id then
            moves :=
              {
                server = id;
                from_ = current id;
                to_ = target;
                was_in_use = Snapshot.in_use_at snapshot id;
              }
              :: !moves)
        members)
    f.Formulation.symmetry.Symmetry.classes;
  {
    moves = List.sort (fun a b -> compare a.server b.server) !moves;
    targets = List.sort compare !targets;
  }

let moves_in_use plan =
  List.fold_left (fun acc m -> if m.was_in_use then acc + 1 else acc) 0 plan.moves

let moves_unused plan =
  List.fold_left (fun acc m -> if m.was_in_use then acc else acc + 1) 0 plan.moves
