module Broker = Ras_broker.Broker
module Region = Ras_topology.Region

type server_view = {
  server : Region.server;
  current : Broker.owner;
  in_use : bool;
  usable : bool;
  attr : int;
}

(* Server state is columnar (int/byte column per field, indexed by server
   id): a region-scale snapshot costs a handful of flat arrays instead of
   10^6 view records, and capture from the (equally columnar) broker is a
   tight loop with no per-server allocation. *)
type t = {
  region : Region.t;
  current : int array;  (* Broker.owner_code per server *)
  in_use : Bytes.t;
  usable : Bytes.t;
  attr : int array;
  reservations : Reservation.t list;
}

let take ?home_of ?attr_of broker reservations =
  let n = Broker.num_servers broker in
  let current =
    match home_of with
    | None -> Array.init n (fun id -> Broker.current_code broker id)
    | Some home_of ->
      Array.init n (fun id ->
          match home_of id with
          | Some home -> Broker.owner_code home
          | None -> Broker.current_code broker id)
  in
  let in_use = Bytes.make n '\000' in
  let usable = Bytes.make n '\000' in
  for id = 0 to n - 1 do
    if Broker.in_use_at broker id then Bytes.unsafe_set in_use id '\001';
    if Broker.available_at broker id then Bytes.unsafe_set usable id '\001'
  done;
  let attr =
    match attr_of with
    | None -> Array.make n 0
    | Some attr_of -> Array.init n attr_of
  in
  { region = Broker.region broker; current; in_use; usable; attr; reservations }

let num_servers t = Array.length t.current

let server t id = t.region.Region.servers.(id)

let current_code t id = t.current.(id)

let current t id = Broker.owner_of_code t.current.(id)

let in_use_at t id = Bytes.unsafe_get t.in_use id <> '\000'

let usable_at t id = Bytes.unsafe_get t.usable id <> '\000'

let attr_at t id = t.attr.(id)

let hw_index_at t id = t.region.Region.servers.(id).Region.hw.Ras_topology.Hardware.index

let usable_hw_histogram t =
  let counts = Array.make Ras_topology.Hardware.count 0 in
  for id = 0 to num_servers t - 1 do
    if usable_at t id then begin
      let h = hw_index_at t id in
      counts.(h) <- counts.(h) + 1
    end
  done;
  counts

let view t id =
  {
    server = server t id;
    current = current t id;
    in_use = in_use_at t id;
    usable = usable_at t id;
    attr = t.attr.(id);
  }

let with_current t current =
  if Array.length current <> Array.length t.current then
    invalid_arg "Snapshot.with_current: column length mismatch";
  { t with current }

let iter_views t ~f =
  for id = 0 to num_servers t - 1 do
    f (view t id)
  done

let fold_views t ~init ~f =
  let acc = ref init in
  for id = 0 to num_servers t - 1 do
    acc := f !acc (view t id)
  done;
  !acc

let usable_servers t =
  let out = ref [] in
  for id = num_servers t - 1 downto 0 do
    if usable_at t id then out := view t id :: !out
  done;
  !out

(* Buffer reservations are per hardware category, so category membership
   (rru_of > 0) identifies which buffer reservation holds a [Shared_buffer]
   server.  Code-based so the rru folds below never decode owners. *)
let owned_by_code res code hw =
  if code = Broker.owner_code Broker.Shared_buffer then
    Reservation.is_buffer res && res.Reservation.rru_of hw > 0.0
  else
    code = Broker.owner_code (Broker.Reservation res.Reservation.id)
    && not (Reservation.is_buffer res)

let owned_by res (v : server_view) =
  owned_by_code res (Broker.owner_code v.current) v.server.Region.hw

let current_rru t res =
  let acc = ref 0.0 in
  for id = 0 to num_servers t - 1 do
    if usable_at t id then begin
      let hw = (server t id).Region.hw in
      if owned_by_code res t.current.(id) hw then
        acc := !acc +. res.Reservation.rru_of hw
    end
  done;
  !acc

let rru_by_msb t res =
  let out = Array.make t.region.Region.num_msbs 0.0 in
  for id = 0 to num_servers t - 1 do
    if usable_at t id then begin
      let s = server t id in
      let hw = s.Region.hw in
      if owned_by_code res t.current.(id) hw then begin
        let m = s.Region.loc.Region.msb in
        out.(m) <- out.(m) +. res.Reservation.rru_of hw
      end
    end
  done;
  out

let rru_by_dc t res =
  let out = Array.make t.region.Region.num_dcs 0.0 in
  for id = 0 to num_servers t - 1 do
    if usable_at t id then begin
      let s = server t id in
      let hw = s.Region.hw in
      if owned_by_code res t.current.(id) hw then begin
        let d = s.Region.loc.Region.dc in
        out.(d) <- out.(d) +. res.Reservation.rru_of hw
      end
    end
  done;
  out

let max_msb_share t res =
  let per_msb = rru_by_msb t res in
  let total = Array.fold_left ( +. ) 0.0 per_msb in
  if total <= 0.0 then nan
  else Array.fold_left Float.max 0.0 per_msb /. total
