module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Hw = Ras_topology.Hardware

type counters = {
  events : int;
  visited_classes : int;
  visited_servers : int;
  index_updates : int;
}

type grant = {
  requested_rru : float;
  granted_rru : float;
  servers : int list;
  took_from_buffer : int;
  visited : int;
}

(* growable int vector with O(1) push and swap-remove: one pool per
   (msb, hw) bucket *)
type vec = { mutable data : int array; mutable len : int }

let vec_make () = { data = Array.make 8 0; len = 0 }

let vec_push v x =
  if v.len = Array.length v.data then begin
    let d = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 d 0 v.len;
    v.data <- d
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let code_free = Broker.owner_code Broker.Free
let code_buffer = Broker.owner_code Broker.Shared_buffer

(* membership byte per server *)
let m_none = 0
let m_free = 1
let m_buffer = 2

type t = {
  tbroker : Broker.t;
  mutable num_msbs : int;
  mutable free_pools : vec array;  (* bucket -> healthy idle Free servers *)
  mutable buf_pools : vec array;  (* bucket -> healthy idle Shared_buffer servers *)
  mutable membership : Bytes.t;  (* server id -> m_none / m_free / m_buffer *)
  mutable slot : int array;  (* server id -> its index inside its pool *)
  mutable bucket : int array;  (* server id -> msb * Hw.count + hw (static) *)
  mutable pprices : Solver_state.price_table option;
  mutable c_events : int;
  mutable c_visited_classes : int;
  mutable c_visited_servers : int;
  mutable c_index_updates : int;
}

let broker t = t.tbroker

let set_prices t p = t.pprices <- Some p

let prices t = t.pprices

let num_buckets t = t.num_msbs * Hw.count

let pools_of t m = if m = m_free then t.free_pools else t.buf_pools

let desired_pool t id =
  if (not (Broker.healthy_at t.tbroker id)) || Broker.in_use_at t.tbroker id then m_none
  else begin
    let c = Broker.current_code t.tbroker id in
    if c = code_free then m_free else if c = code_buffer then m_buffer else m_none
  end

let detach t id =
  let m = Bytes.get_uint8 t.membership id in
  if m <> m_none then begin
    let v = (pools_of t m).(t.bucket.(id)) in
    let i = t.slot.(id) in
    let last = v.len - 1 in
    let moved = v.data.(last) in
    v.data.(i) <- moved;
    t.slot.(moved) <- i;
    v.len <- last;
    Bytes.set_uint8 t.membership id m_none
  end

let attach t id m =
  let v = (pools_of t m).(t.bucket.(id)) in
  vec_push v id;
  t.slot.(id) <- v.len - 1;
  Bytes.set_uint8 t.membership id m

let rebuild t =
  let region = Broker.region t.tbroker in
  let n = Broker.num_servers t.tbroker in
  t.num_msbs <- region.Region.num_msbs;
  let nbuckets = t.num_msbs * Hw.count in
  t.free_pools <- Array.init nbuckets (fun _ -> vec_make ());
  t.buf_pools <- Array.init nbuckets (fun _ -> vec_make ());
  t.membership <- Bytes.make n '\000';
  t.slot <- Array.make n 0;
  t.bucket <-
    Array.init n (fun id ->
        let s = region.Region.servers.(id) in
        (s.Region.loc.Region.msb * Hw.count) + s.Region.hw.Hw.index);
  for id = 0 to n - 1 do
    let m = desired_pool t id in
    if m <> m_none then attach t id m
  done

let on_change t id =
  t.c_index_updates <- t.c_index_updates + 1;
  if id >= Array.length t.bucket then rebuild t (* region grew: re-index once *)
  else begin
    let m = Bytes.get_uint8 t.membership id in
    let m' = desired_pool t id in
    if m <> m' then begin
      detach t id;
      if m' <> m_none then attach t id m'
    end
  end

let create broker =
  let t =
    {
      tbroker = broker;
      num_msbs = 0;
      free_pools = [||];
      buf_pools = [||];
      membership = Bytes.empty;
      slot = [||];
      bucket = [||];
      pprices = None;
      c_events = 0;
      c_visited_classes = 0;
      c_visited_servers = 0;
      c_index_updates = 0;
    }
  in
  rebuild t;
  Broker.subscribe_changes broker (fun id -> on_change t id);
  t

let bucket_price t b =
  match t.pprices with
  | None -> 0.0
  | Some p -> Solver_state.class_price p ~msb:(b / Hw.count) ~hw:(b mod Hw.count)

let available_in_bucket t ~source ~msb ~hw =
  let pools = match source with `Free -> t.free_pools | `Buffer -> t.buf_pools in
  let b = (msb * Hw.count) + hw in
  if b < 0 || b >= Array.length pools then 0 else pools.(b).len

let find_replacement t res ~failed_hw =
  t.c_events <- t.c_events + 1;
  let best = ref None in
  for hw = 0 to Hw.count - 1 do
    if res.Reservation.rru_of Hw.catalog.(hw) > 0.0 then
      for msb = 0 to t.num_msbs - 1 do
        let b = (msb * Hw.count) + hw in
        t.c_visited_classes <- t.c_visited_classes + 1;
        let v = t.buf_pools.(b) in
        if v.len > 0 then begin
          let score = ((if hw = failed_hw then 0 else 1), bucket_price t b, b) in
          match !best with
          | Some (s, _) when s <= score -> ()
          | Some _ | None -> best := Some (score, v)
        end
      done
  done;
  match !best with
  | None -> None
  | Some (_, v) ->
    t.c_visited_servers <- t.c_visited_servers + 1;
    Some v.data.(v.len - 1)

let take_idle_buffer t ~max_servers =
  t.c_events <- t.c_events + 1;
  let cands = ref [] in
  for b = Array.length t.buf_pools - 1 downto 0 do
    t.c_visited_classes <- t.c_visited_classes + 1;
    if t.buf_pools.(b).len > 0 then cands := (bucket_price t b, b) :: !cands
  done;
  let out = ref [] and taken = ref 0 in
  List.iter
    (fun (_, b) ->
      let pool = t.buf_pools.(b) in
      let i = ref (pool.len - 1) in
      while !taken < max_servers && !i >= 0 do
        out := pool.data.(!i) :: !out;
        incr taken;
        decr i
      done)
    (List.sort compare !cands);
  t.c_visited_servers <- t.c_visited_servers + !taken;
  List.rev !out

let grant t ~reservation ~rru ~allow_buffer =
  t.c_events <- t.c_events + 1;
  let owner = Broker.Reservation reservation.Reservation.id in
  let granted = ref 0.0 and servers = ref [] and from_buffer = ref 0 and visited = ref 0 in
  let take_from pools ~buffer =
    let cands = ref [] in
    for hw = Hw.count - 1 downto 0 do
      let v = reservation.Reservation.rru_of Hw.catalog.(hw) in
      if v > 0.0 then
        for msb = t.num_msbs - 1 downto 0 do
          let b = (msb * Hw.count) + hw in
          t.c_visited_classes <- t.c_visited_classes + 1;
          if pools.(b).len > 0 then cands := (bucket_price t b, b, v) :: !cands
        done
    done;
    List.iter
      (fun (_, b, v) ->
        let pool = pools.(b) in
        (* each move fires the change feed, which swap-removes the taken
           server from [pool] — the loop terminates on the shrinking len *)
        while !granted < rru && pool.len > 0 do
          let id = pool.data.(pool.len - 1) in
          incr visited;
          Broker.move t.tbroker id owner;
          Broker.set_target t.tbroker id owner;
          granted := !granted +. v;
          servers := id :: !servers;
          if buffer then incr from_buffer
        done)
      (List.sort compare !cands)
  in
  take_from t.free_pools ~buffer:false;
  if !granted < rru && allow_buffer then take_from t.buf_pools ~buffer:true;
  t.c_visited_servers <- t.c_visited_servers + !visited;
  {
    requested_rru = rru;
    granted_rru = !granted;
    servers = List.rev !servers;
    took_from_buffer = !from_buffer;
    visited = !visited;
  }

let counters t =
  {
    events = t.c_events;
    visited_classes = t.c_visited_classes;
    visited_servers = t.c_visited_servers;
    index_updates = t.c_index_updates;
  }

let reset_counters t =
  t.c_events <- 0;
  t.c_visited_classes <- 0;
  t.c_visited_servers <- 0;
  t.c_index_updates <- 0
