(** The Async Solver (Fig. 6, paper §3.5): a full region solve, run off the
    critical path under a time budget, producing a server-to-reservation
    binding plan.

    Two-phase solving (§3.5.2): phase 1 optimizes the whole region at MSB
    granularity (no rack goals, coarser symmetry classes); phase 2 re-solves
    with rack goals for the worst ~10% of reservations by rack objective —
    capped so the grouped variable count stays bounded — starting from the
    phase-1 result, with every other reservation's servers frozen. *)

type params = {
  formulation : Formulation.params;
  phase1_time_limit_s : float;
  phase2_time_limit_s : float;
  node_limit : int;  (** branch-and-bound nodes per phase *)
  mip_gap_rel : float;
      (** relative optimality gap for both phases' tree searches (forwarded
          to {!Phases.run}).  The default is near-exact; continuous-loop
          deployments run at an interactive tolerance (e.g. [1e-3]) so a
          carried cross-round incumbent that is still within tolerance
          stops the search at the root *)
  mip_stall_nodes : int;
      (** stop a phase's tree search once the incumbent has not improved
          for this many nodes (0 disables; forwarded to {!Phases.run}).
          This is the stopping rule that fires in practice: the allocation
          MIPs' soft-penalty integrality gap never closes, so a round ends
          either here or at [node_limit].  With cross-round state the seed
          is already near-optimal and rounds stop after a handful of
          nodes *)
  run_phase2 : bool;
  phase2_fraction : float;  (** reservations refined in phase 2 *)
  phase2_var_cap : int;  (** grouped assignment-variable cap for phase 2 *)
  decompose : int option;
      (** [Some k] with [k > 1] solves phase 1 POP-decomposed into [k]
          concurrent subproblems (see {!Ras_mip.Decompose}); [None] (the
          default) keeps the monolithic solve.  Phase 2 is never
          decomposed — its rack-scoped slice is too small to pay the split
          overhead. *)
}

val default_params : params

type stats = {
  phase1 : Phases.result;
  phase2 : Phases.result option;  (** [None] when no rack goal needed fixing *)
  plan : Concretize.plan;  (** merged plan, moves relative to the snapshot *)
  duration_s : float;  (** whole-solve wall clock (the Fig. 7 quantity) *)
  shortfalls : (int * float) list;
      (** per-reservation softened capacity violations still present *)
  moves_in_use : int;
  moves_unused : int;
  gap_preemptions : float;
      (** remaining optimality gap expressed in in-use server preemption
          units (Fig. 9's x-axis is this cost scale) *)
  proven_constraints_fixed : bool;
      (** the bound proves no additional softened constraint could have been
          fixed by running longer (Fig. 9: true for ~99% of solves) *)
  solver_nodes : int;  (** branch-and-bound nodes across both phases *)
  solver_lp_iterations : int;  (** simplex pivots across both phases *)
  solver_warm_starts : int;
      (** nodes whose LP restarted from a parent basis (see
          {!Ras_mip.Branch_bound}); the warm-start hit rate of this solve *)
  solver_dual_restarts : int;
      (** warm-started nodes that re-optimized via the dual-simplex phase *)
  solver_dual_pivots : int;  (** dual-simplex pivots across both phases *)
  solver_bland_pivots : int;
      (** primal pivots taken under the Bland anti-cycling fallback across
          both phases — nonzero flags degenerate stalls in the node LPs *)
  decompose : Ras_mip.Decompose.stats option;
      (** phase-1 decomposition statistics when [params.decompose] was
          active (mirrors [phase1.decompose]) *)
  incremental : Solver_state.round_stats option;
      (** phase-1 cross-round warm-start statistics when [?state] was
          given (mirrors [phase1.incremental]) *)
  price_table : Solver_state.price_table option;
      (** phase-1 root-LP dual prices keyed for the tier-1 reactive layer —
          feed to {!Reactive.set_prices} after applying the plan; [None]
          when the root LP did not reach optimality *)
}

val solve :
  ?params:params ->
  ?include_server:(Snapshot.server_view -> bool) ->
  ?state:Solver_state.t ->
  Snapshot.t ->
  stats
(** [include_server] restricts the assignable server pool (on top of the
    availability constraint); used to roll RAS out to a subset of the fleet
    while the rest stays under legacy management (Fig. 12's gradual
    enablement).

    [state] is the persistent cross-round solver state of the continuous
    loop: pass the same {!Solver_state.t} to every round and phase 1
    warm-starts from the previous round's basis and incumbent (see
    {!Phases.run}).  Phase 2 always solves cold — its reservation slice is
    re-selected each round. *)
