(** The Online Mover (Fig. 6): executes solver plans, provides replacement
    servers within a minute of unplanned failures, and runs the two
    efficiency optimizations of §3.2 — shared buffers and opportunistic
    (elastic) capacity.

    Elastic lending (§3.4) is an overlay: a lent server's broker owner
    becomes [Elastic id] while the mover remembers its {e home} owner; the
    Async Solver sees lent servers at their home owner (via {!home_of}), so
    loans never perturb the optimization.  Whenever failure handling needs
    buffer capacity, loans are revoked. *)

type t

type apply_stats = {
  moved_in_use : int;  (** moves that preempted running containers *)
  moved_unused : int;
  skipped_unavailable : int;  (** planned moves whose server was down *)
}

val create : ?engine:Ras_sim.Engine.t -> ?reactive:Reactive.t -> Ras_broker.Broker.t -> t
(** Subscribes to broker unavailability events.  With an engine, failure
    replacements are scheduled one simulated minute after the failure (the
    paper's replacement SLO); without one they happen synchronously.

    With [?reactive] (a tier-1 index over the same broker — raises
    [Invalid_argument] otherwise), replacement search and elastic-lending
    donor selection run against the incrementally-maintained availability
    pools in O(affected classes); without it they are columnar broker scans.
    Either way the per-event work no longer materializes one record per
    server. *)

val reactive : t -> Reactive.t option

val find_replacement : t -> Reservation.t -> failed_hw:int -> int option
(** The replacement a failure of hardware-subtype [failed_hw] inside the
    reservation would pick right now (no state change): a healthy
    shared-buffer server — same subtype preferred — or, failing that, a
    revocable elastic loan whose home is the shared buffer.  The preference
    classes (same subtype > other subtype, buffer > loan, idle > in-use)
    match {!find_replacement_reference} exactly; within a class the reactive
    path picks by dual price where the scans pick the lowest id. *)

val find_replacement_reference : t -> Reservation.t -> failed_hw:int -> int option
(** The original O(servers) record-building scan, retained as the
    differential oracle for {!find_replacement} (the
    {!Symmetry.build_reference} pattern). *)

val set_reservations : t -> Reservation.t list -> unit
(** The mover needs reservation specs to pick acceptable replacements. *)

val on_preempt : t -> (int -> unit) -> unit
(** Called with the server id before an in-use server changes owner; the
    container allocator uses this to evict and re-queue containers. *)

val apply_plan : t -> Concretize.plan -> apply_stats
(** Execute the binding intent: set targets, then move every server whose
    current owner differs.  Unavailable servers keep the recorded target and
    are picked up by a later solve once they return. *)

val home_of : t -> int -> Ras_broker.Broker.owner option
(** Lending overlay for {!Snapshot.take}. *)

val lend_idle : t -> elastic_id:int -> max_servers:int -> int
(** Lend healthy, idle shared-buffer servers to an elastic reservation;
    returns how many were lent. *)

val revoke : t -> elastic_id:int -> int
(** Return every loan of the elastic reservation to its home owner. *)

val loans_outstanding : t -> int

val replacements_done : t -> int
(** Successful shared-buffer replacements since creation. *)

val replacements_failed : t -> int
(** Failures for which no acceptable buffer server (even after revoking
    loans) was available — §5.4's "random failures exceeding planned
    limits". *)
