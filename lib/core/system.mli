(** End-to-end RAS system: broker + health + Async Solver + Online Mover +
    per-reservation Twine allocators, driven by a discrete-event engine.

    This is the harness every simulation figure runs on.  It implements the
    resource-management flow of Fig. 6: capacity requests arrive, the solver
    re-evaluates bindings on a fixed period (hourly in production), the
    mover executes plans and failure replacements, container jobs fill
    reservations so that movement costs and churn are realistic, and metric
    time series are sampled every simulated hour. *)

type config = {
  solve_period_h : float;
  solver : Async_solver.params;
  shared_buffer_fraction : float;  (** 2% in production (§3.3.1) *)
  elastic_id : int option;  (** lend idle buffer servers to this elastic id *)
  job_fill_fraction : float;
      (** fraction of each reservation's requested RRUs filled with 1-RRU
          containers after each solve (0 disables container simulation) *)
  metrics_period_h : float;
}

val default_config : config
(** Hourly solves, 2% shared buffer, elastic lending on (id 9000), 80% job
    fill, hourly metrics. *)

type t

val create : ?config:config -> Ras_broker.Broker.t -> t
(** Builds shared-buffer reservations for the broker's region and installs
    the mover.  Does not schedule anything yet; see {!start}. *)

val engine : t -> Ras_sim.Engine.t
val broker : t -> Ras_broker.Broker.t
val metrics : t -> Ras_sim.Metrics.t
val mover : t -> Online_mover.t
val reactive : t -> Reactive.t
(** The tier-1 reactive index the system maintains over its broker; each
    {!solve_now} refreshes its dual-price table. *)

val reservations : t -> Reservation.t list

val add_request : t -> Ras_workload.Capacity_request.t -> unit
(** Register a capacity request; it is fulfilled by the next solve. *)

val resize_request : t -> Ras_workload.Capacity_request.t -> unit
(** Replace the stored request with the same id (a capacity resize from the
    portal): the reservation keeps its identity and servers; the next solve
    adjusts the binding.  Unknown ids are ignored. *)

val remove_reservation : t -> int -> unit
(** Delete a reservation; its servers return to the free pool. *)

val install_failures : t -> Ras_failures.Unavail.t list -> unit

val start : t -> unit
(** Schedule the recurring solve and metric sampling (first solve at t=0). *)

val run : t -> until_h:float -> unit

val solve_now : t -> Async_solver.stats
(** One synchronous solve + plan application (also used by {!start}'s
    recurring event). *)

val snapshot : t -> Snapshot.t
(** Current state, with elastic loans resolved to home owners. *)

val solve_history : t -> Async_solver.stats list
(** All solves so far, oldest first. *)

val allocator : t -> int -> Ras_twine.Allocator.t option

(** Metric series names recorded every [metrics_period_h]:
    ["max_msb_share"] (capacity-weighted, Fig. 12), ["power_variance"]
    (Fig. 14), ["power_headroom"], ["moves_in_use"] / ["moves_unused"]
    (per-hour counts, Fig. 16), ["cross_dc:<name>"] for reservations with
    affinity (Fig. 15), ["unavailable_frac"], ["free_servers"],
    ["loans_outstanding"]. *)
