module Broker = Ras_broker.Broker
module Region = Ras_topology.Region
module Engine = Ras_sim.Engine
module Metrics = Ras_sim.Metrics
module Allocator = Ras_twine.Allocator
module Job = Ras_twine.Job
module Power = Ras_workload.Power
module Traffic = Ras_workload.Traffic
module Capacity_request = Ras_workload.Capacity_request

type config = {
  solve_period_h : float;
  solver : Async_solver.params;
  shared_buffer_fraction : float;
  elastic_id : int option;
  job_fill_fraction : float;
  metrics_period_h : float;
}

let default_config =
  {
    solve_period_h = 1.0;
    solver = Async_solver.default_params;
    shared_buffer_fraction = 0.02;
    elastic_id = Some 9000;
    job_fill_fraction = 0.8;
    metrics_period_h = 1.0;
  }

type t = {
  config : config;
  eng : Engine.t;
  brk : Broker.t;
  rx : Reactive.t;
  mv : Online_mover.t;
  mtr : Metrics.t;
  mutable guaranteed : Reservation.t list;  (* newest first *)
  buffers : Reservation.t list;
  allocators : (int, Allocator.t) Hashtbl.t;
  requests : (int, Capacity_request.t) Hashtbl.t;
  mutable next_job_id : int;
  mutable history : Async_solver.stats list;  (* newest first *)
  mutable moves_in_use_acc : int;
  mutable moves_unused_acc : int;
  mutable last_replacements : int;
}

let engine t = t.eng
let broker t = t.brk
let metrics t = t.mtr
let mover t = t.mv
let reactive t = t.rx

let reservations t = List.rev t.guaranteed @ t.buffers

let create ?(config = default_config) brk =
  let eng = Engine.create () in
  let rx = Reactive.create brk in
  let mv = Online_mover.create ~engine:eng ~reactive:rx brk in
  let buffers =
    Buffers.shared_buffer_reservations (Broker.region brk)
      ~fraction:config.shared_buffer_fraction ~first_id:8000
  in
  let t =
    {
      config;
      eng;
      brk;
      rx;
      mv;
      mtr = Metrics.create ();
      guaranteed = [];
      buffers;
      allocators = Hashtbl.create 32;
      requests = Hashtbl.create 32;
      next_job_id = 1;
      history = [];
      moves_in_use_acc = 0;
      moves_unused_acc = 0;
      last_replacements = 0;
    }
  in
  Online_mover.set_reservations mv (reservations t);
  (* preemption: route to the allocator of the server's current owner *)
  Online_mover.on_preempt mv (fun id ->
      let r = Broker.record brk id in
      match r.Broker.current with
      | Broker.Reservation rid | Broker.Elastic rid -> (
        match Hashtbl.find_opt t.allocators rid with
        | Some alloc -> Allocator.evict_server alloc id
        | None -> ())
      | Broker.Free | Broker.Shared_buffer -> ());
  t

let add_request t req =
  let res = Reservation.of_request req in
  t.guaranteed <- res :: t.guaranteed;
  Hashtbl.replace t.requests res.Reservation.id req;
  Online_mover.set_reservations t.mv (reservations t);
  if t.config.job_fill_fraction > 0.0 && not (Hashtbl.mem t.allocators res.Reservation.id) then begin
    let alloc =
      Allocator.create t.brk ~reservation:res.Reservation.id ~rru_of:res.Reservation.rru_of
    in
    Hashtbl.replace t.allocators res.Reservation.id alloc
  end

(* Resizing keeps the reservation's identity and bound servers; only the
   spec changes, and the next solve grows or trims the binding. *)
let resize_request t req =
  let rid = req.Capacity_request.id in
  if Hashtbl.mem t.requests rid then begin
    Hashtbl.replace t.requests rid req;
    let res = Reservation.of_request req in
    t.guaranteed <-
      List.map (fun r -> if r.Reservation.id = rid then res else r) t.guaranteed;
    Online_mover.set_reservations t.mv (reservations t)
  end

let remove_reservation t rid =
  t.guaranteed <- List.filter (fun r -> r.Reservation.id <> rid) t.guaranteed;
  Hashtbl.remove t.requests rid;
  Hashtbl.remove t.allocators rid;
  Online_mover.set_reservations t.mv (reservations t);
  Broker.iter t.brk ~f:(fun r ->
      if r.Broker.current = Broker.Reservation rid then begin
        Broker.move t.brk r.Broker.server.Region.id Broker.Free;
        Broker.set_target t.brk r.Broker.server.Region.id Broker.Free
      end)

let install_failures t events = ignore (Health.install t.eng t.brk events)

let snapshot t =
  Snapshot.take ~home_of:(Online_mover.home_of t.mv) t.brk (reservations t)

(* Fill each reservation's allocator with 1-RRU containers up to the
   configured fraction of its requested capacity, so that servers carry
   running containers and movement costs are real. *)
let fill_jobs t =
  if t.config.job_fill_fraction > 0.0 then
    List.iter
      (fun res ->
        match Hashtbl.find_opt t.allocators res.Reservation.id with
        | None -> ()
        | Some alloc ->
          ignore (Allocator.retry_pending alloc);
          let want = t.config.job_fill_fraction *. res.Reservation.capacity_rru in
          let have = Allocator.used_rru alloc in
          let missing = int_of_float (Float.floor (want -. have)) in
          if missing > 0 then begin
            let job =
              Job.make ~id:t.next_job_id ~reservation:res.Reservation.id ~replicas:missing
                ~rru_per_replica:1.0 ()
            in
            t.next_job_id <- t.next_job_id + 1;
            (* placement failure is fine: capacity may still be arriving *)
            ignore (Allocator.place_job alloc job)
          end)
      t.guaranteed

let solve_now t =
  let snap = snapshot t in
  let stats = Async_solver.solve ~params:t.config.solver snap in
  (* refresh the tier-1 repair policy with this round's dual prices *)
  (match stats.Async_solver.price_table with
  | Some p -> Reactive.set_prices t.rx p
  | None -> ());
  (* revoke elastic loans touched by the plan before applying it *)
  let apply = Online_mover.apply_plan t.mv stats.Async_solver.plan in
  t.moves_in_use_acc <- t.moves_in_use_acc + apply.Online_mover.moved_in_use;
  t.moves_unused_acc <- t.moves_unused_acc + apply.Online_mover.moved_unused;
  (* hand idle buffers to the elastic reservation *)
  (match t.config.elastic_id with
  | Some eid -> ignore (Online_mover.lend_idle t.mv ~elastic_id:eid ~max_servers:max_int)
  | None -> ());
  fill_jobs t;
  t.history <- stats :: t.history;
  stats

let record_metrics t =
  let now = Engine.now t.eng in
  let snap = snapshot t in
  let frac = Buffers.embedded_buffer_fraction snap in
  if not (Float.is_nan frac) then Metrics.record t.mtr "max_msb_share" ~time:now frac;
  (* power *)
  let usage_of (s : Region.server) =
    let r = Broker.record t.brk s.Region.id in
    match r.Broker.current with
    | Broker.Free -> Power.Idle_free
    | Broker.Shared_buffer -> Power.Assigned_idle
    | Broker.Reservation _ | Broker.Elastic _ ->
      if r.Broker.in_use then Power.Assigned_busy else Power.Assigned_idle
  in
  let draw = Power.msb_power (Broker.region t.brk) ~usage_of in
  Metrics.record t.mtr "power_variance" ~time:now (Power.normalized_variance draw);
  let capacity =
    Power.msb_power (Broker.region t.brk) ~usage_of:(fun _ -> Power.Assigned_busy)
  in
  Metrics.record t.mtr "power_headroom" ~time:now
    (Power.headroom ~capacity_watts:capacity ~draw_watts:draw);
  (* churn: replacements count as unused moves (they move idle buffer servers) *)
  let repl = Online_mover.replacements_done t.mv in
  let new_repl = repl - t.last_replacements in
  t.last_replacements <- repl;
  Metrics.record t.mtr "moves_in_use" ~time:now (float_of_int t.moves_in_use_acc);
  Metrics.record t.mtr "moves_unused" ~time:now (float_of_int (t.moves_unused_acc + new_repl));
  t.moves_in_use_acc <- 0;
  t.moves_unused_acc <- 0;
  (* cross-DC share for reservations with affinity *)
  List.iter
    (fun res ->
      match res.Reservation.dc_affinity with
      | (dc, _) :: _ ->
        let per_dc = Snapshot.rru_by_dc snap res in
        let frac =
          Traffic.cross_dc_working_fraction ~data_dc:dc ~capacity_per_dc:per_dc
            ~requested:res.Reservation.capacity_rru
        in
        if not (Float.is_nan frac) then
          Metrics.record t.mtr
            (Printf.sprintf "cross_dc:%s" res.Reservation.name)
            ~time:now frac
      | [] -> ())
    t.guaranteed;
  (* availability + pool state *)
  let down =
    Broker.fold t.brk ~init:0 ~f:(fun acc r -> if Broker.healthy r then acc else acc + 1)
  in
  Metrics.record t.mtr "unavailable_frac" ~time:now
    (float_of_int down /. float_of_int (Broker.num_servers t.brk));
  Metrics.record t.mtr "free_servers" ~time:now
    (float_of_int (Broker.count_owner t.brk Broker.Free));
  Metrics.record t.mtr "loans_outstanding" ~time:now
    (float_of_int (Online_mover.loans_outstanding t.mv))

let start t =
  Engine.schedule_every t.eng ~first:0.0 ~period:t.config.solve_period_h (fun _ ->
      ignore (solve_now t));
  Engine.schedule_every t.eng ~first:(t.config.metrics_period_h /. 2.0)
    ~period:t.config.metrics_period_h (fun _ -> record_metrics t)

let run t ~until_h = Engine.run_until t.eng until_h

let solve_history t = List.rev t.history

let allocator t rid = Hashtbl.find_opt t.allocators rid
