(** The out-of-band emergency path (paper §5.4, "capacity-request delays").

    When capacity is needed for an urgent outage, waiting up to an hour for
    the Async Solver is not acceptable; RAS allows writing server
    assignments directly to the Resource Broker without obeying all
    placement guarantees.  The next solve then repairs whatever those direct
    writes broke.

    The grant policy is deliberately simple (free pool first, then the
    shared buffer): quality comes later, from the solver.  What must {e not}
    be simple is the cost: a grant is an event-path operation, so scanning
    every server per grant is a bug at region scale.  {!grant} either walks
    the broker columns with early termination, or — given a tier-1
    {!Reactive} index — picks servers in O(affected classes) guided by the
    last solve's dual prices. *)

type grant = Reactive.grant = {
  requested_rru : float;
  granted_rru : float;
  servers : int list;
  took_from_buffer : int;  (** servers pulled from the shared buffer *)
  visited : int;
      (** candidate servers examined: O(grant size) on the columnar path,
          O(classes + grant size) on the reactive path, O(region) for the
          reference oracle *)
}

val grant :
  ?reactive:Reactive.t ->
  Ras_broker.Broker.t ->
  reservation:Reservation.t ->
  rru:float ->
  allow_buffer:bool ->
  grant
(** Bind healthy acceptable servers directly to the reservation (current and
    target both updated) until [rru] is covered or supply runs out.  With
    [allow_buffer] the shared random-failure buffer may be drained —
    dangerous, and exactly the "dipping into buffers" §5.3 warns about, so
    callers must opt in.

    Without [?reactive]: a columnar scan in ascending server id that stops
    as soon as the request is covered — grant-for-grant identical to
    {!grant_reference}.  With [?reactive]: delegates to {!Reactive.grant},
    which drains the cheapest-priced (msb, hw) buckets first; the served
    set may legitimately differ from the scan order while granting the same
    RRU. *)

val grant_reference :
  Ras_broker.Broker.t ->
  reservation:Reservation.t ->
  rru:float ->
  allow_buffer:bool ->
  grant
(** The original O(servers) full-scan implementation, retained as the
    differential oracle (the {!Symmetry.build_reference} pattern): tests
    pin {!grant} against it on cloned brokers. *)
